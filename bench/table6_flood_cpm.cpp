// Table 6 reproduction: TCP SYN-flooding detection, HiFIND vs CPM, counted
// in alarmed intervals.
//
// Paper: NU 1422 (CPM) / 1427 (HiFIND) / 1422 overlap — agreement when
// floods really dominate the intervals. LBL 1426 / 0 / 0 — CPM alarms on
// almost every interval of a scan-heavy, flood-free trace because it cannot
// tell orphan SYNs of scans from orphan SYNs of floods; HiFIND, detecting at
// the flow level, stays silent.
#include <iostream>

#include "baseline/cpm.hpp"
#include "bench_util.hpp"
#include "common/table_printer.hpp"

namespace hifind::bench {
namespace {

void run_dataset(TablePrinter& table, const char* name,
                 const ScenarioConfig& cfg) {
  const Scenario scenario = build_scenario(cfg);

  // HiFIND: intervals with at least one FINAL flood alert.
  Pipeline pipeline(default_pipeline_config());
  const auto results = pipeline.run(scenario.trace);
  std::vector<bool> hifind_flood(results.size(), false);
  for (std::size_t i = 0; i < results.size(); ++i) {
    hifind_flood[i] =
        IntervalResult::count(results[i].final, AttackType::kSynFlooding) > 0;
  }

  // CPM over the same interval grid.
  Cpm cpm{CpmConfig{}};
  IntervalClock clock(60);
  std::vector<bool> cpm_alarm;
  std::uint64_t current = 0;
  bool any = false;
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) {
      cpm_alarm.push_back(cpm.end_interval());
      ++current;
    }
    cpm.observe(p);
  }
  cpm_alarm.push_back(cpm.end_interval());

  std::size_t cpm_count = 0, hifind_count = 0, overlap = 0;
  const std::size_t n = std::min(cpm_alarm.size(), hifind_flood.size());
  for (std::size_t i = 0; i < n; ++i) {
    cpm_count += cpm_alarm[i] ? 1 : 0;
    hifind_count += hifind_flood[i] ? 1 : 0;
    overlap += (cpm_alarm[i] && hifind_flood[i]) ? 1 : 0;
  }
  table.row({name, std::to_string(cpm_count), std::to_string(hifind_count),
             std::to_string(overlap)});
}

void run() {
  TablePrinter table(
      "Table 6. TCP SYN flooding detection comparison (alarmed intervals)");
  table.header({"Data", "CPM", "HiFIND", "Overlap number"});
  run_dataset(table, "NU-like", nu_like_config(61, 1800));
  run_dataset(table, "LBL-like", lbl_like_config(62, 1800));
  table.print(std::cout);
  std::cout << "\nPaper shape: agreement on the flood-rich trace; on the "
               "scan-only LBL-like trace CPM keeps alarming while HiFIND "
               "reports zero floods.\n";
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
