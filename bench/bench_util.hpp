// Shared plumbing for the table/figure reproduction benches.
#pragma once

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "baseline/trw.hpp"
#include "common/interval.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "gen/scenario.hpp"

namespace hifind::bench {

/// Default pipeline configuration for every bench: paper shapes, 60 s
/// intervals, 1 un-responded SYN/s threshold.
inline PipelineConfig default_pipeline_config() {
  PipelineConfig c;
  c.bank.seed = 42;
  c.detector.interval_seconds = 60;
  c.detector.syn_rate_threshold = 1.0;
  return c;
}

/// Sums per-phase alert counts of one attack type across a run.
struct PhaseCounts {
  std::size_t raw{0};
  std::size_t after_2d{0};
  std::size_t final{0};
};

inline PhaseCounts count_phases(const std::vector<IntervalResult>& results,
                                AttackType type) {
  PhaseCounts c;
  for (const auto& r : results) {
    c.raw += IntervalResult::count(r.raw, type);
    c.after_2d += IntervalResult::count(r.after_2d, type);
    c.final += IntervalResult::count(r.final, type);
  }
  return c;
}

/// Runs TRW over a trace with interval flushes; returns it for inspection.
inline Trw run_trw(const Trace& trace, const TrwConfig& config = {}) {
  Trw trw(config);
  IntervalClock clock(60);
  std::uint64_t current = 0;
  bool any = false;
  for (const auto& p : trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) {
      trw.flush(clock.interval_start(++current));
    }
    trw.observe(p);
  }
  trw.flush(trace.stats().last_ts + 61 * kMicrosPerSecond);
  return trw;
}

inline std::string yes_no(bool b) { return b ? "Yes" : "No"; }

}  // namespace hifind::bench
