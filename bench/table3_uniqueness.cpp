// Table 3 reproduction: the uniqueness of different key types.
//
// For each aggregation key and each attack class, the paper marks whether a
// per-key #SYN - #SYN/ACK aggregate can detect the attack. We measure it:
// for each single-attack micro-trace, aggregate exactly by each key type and
// check whether some key tied to the attack exceeds the detection threshold.
// Uniqueness = how many attack classes a key responds to (0.5 for the
// non-spoofed-only flood cases, matching the paper's scoring).
#include <iostream>
#include <map>
#include <unordered_map>

#include "bench_util.hpp"
#include "common/table_printer.hpp"

namespace hifind::bench {
namespace {

enum class Agg { kSipDport, kDipDport, kSipDip, kSip, kDip, kDport };

const char* agg_name(Agg a) {
  switch (a) {
    case Agg::kSipDport: return "{SIP,Dport}";
    case Agg::kDipDport: return "{DIP,Dport}";
    case Agg::kSipDip:   return "{SIP,DIP}";
    case Agg::kSip:      return "{SIP}";
    case Agg::kDip:      return "{DIP}";
    case Agg::kDport:    return "{Dport}";
  }
  return "?";
}

std::uint64_t agg_key(Agg a, const PacketRecord& p) {
  const bool reply = p.is_synack();
  const IPv4 sip = reply ? p.dip : p.sip;
  const IPv4 dip = reply ? p.sip : p.dip;
  const std::uint16_t dport = reply ? p.sport : p.dport;
  switch (a) {
    case Agg::kSipDport: return pack_ip_port(sip, dport);
    case Agg::kDipDport: return pack_ip_port(dip, dport);
    case Agg::kSipDip:   return pack_ip_ip(sip, dip);
    case Agg::kSip:      return sip.addr;
    case Agg::kDip:      return dip.addr;
    case Agg::kDport:    return dport;
  }
  return 0;
}

Scenario micro(EventKind kind, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.duration_seconds = 420;
  cfg.background_cps = 40.0;
  cfg.num_spoofed_floods = kind == EventKind::kSynFloodSpoofed ? 1 : 0;
  cfg.num_fixed_floods = kind == EventKind::kSynFloodFixed ? 1 : 0;
  cfg.num_hscans = kind == EventKind::kHorizontalScan ? 1 : 0;
  cfg.num_vscans = kind == EventKind::kVerticalScan ? 1 : 0;
  cfg.num_block_scans = 0;
  cfg.num_flash_crowds = 0;
  cfg.num_misconfigs = 0;
  cfg.num_server_failures = 0;
  return build_scenario(cfg);
}

/// True if, in some interval of the attack, a key whose facets involve the
/// attack exceeds the per-interval threshold under this aggregation.
bool aggregation_detects(Agg agg, const Scenario& s) {
  const GroundTruthEvent* atk = nullptr;
  for (const auto& e : s.truth.events()) {
    if (is_attack(e.kind)) atk = &e;
  }
  if (atk == nullptr) return false;

  IntervalClock clock(60);
  const double threshold = 60.0;
  std::unordered_map<std::uint64_t, double> counts;
  std::uint64_t current = 0;
  bool any = false;
  auto scan_interval = [&]() {
    const Timestamp a = clock.interval_start(current);
    if (!atk->active_during(a, a + clock.width_us())) return false;
    for (const auto& [key, v] : counts) {
      if (v < threshold) continue;
      // Attribute: does this heavy key involve the attack's fixed facets?
      // For aggregations that erase all the attack's fixed facets we still
      // count it (the aggregate responded), mirroring the paper's analysis.
      return true;
    }
    return false;
  };
  bool detected = false;
  for (const auto& p : s.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) {
      detected |= scan_interval();
      counts.clear();
      ++current;
    }
    const std::int64_t d = syn_delta(p);
    if (d != 0) counts[agg_key(agg, p)] += static_cast<double>(d);
  }
  detected |= scan_interval();
  return detected;
}

void run() {
  const Scenario spoofed = micro(EventKind::kSynFloodSpoofed, 301);
  const Scenario fixed = micro(EventKind::kSynFloodFixed, 302);
  const Scenario hscan = micro(EventKind::kHorizontalScan, 303);
  const Scenario vscan = micro(EventKind::kVerticalScan, 304);

  TablePrinter table(
      "Table 3. Uniqueness of key types (measured; flooding column shows "
      "spoofed/non-spoofed)");
  table.header({"Keys", "SYN flooding", "Hscan", "Vscan", "uniqueness"});

  for (const Agg agg : {Agg::kSipDport, Agg::kDipDport, Agg::kSipDip,
                        Agg::kSip, Agg::kDip, Agg::kDport}) {
    const bool f_spoof = aggregation_detects(agg, spoofed);
    const bool f_fixed = aggregation_detects(agg, fixed);
    const bool h = aggregation_detects(agg, hscan);
    const bool v = aggregation_detects(agg, vscan);
    double uniq = 0.0;
    std::string flood_cell;
    if (f_spoof && f_fixed) {
      flood_cell = "Yes";
      uniq += 1.0;
    } else if (f_fixed) {
      flood_cell = "non-spoofed";
      uniq += 0.5;
    } else {
      flood_cell = "No";
    }
    uniq += h ? 1.0 : 0.0;
    uniq += v ? 1.0 : 0.0;
    char uniq_s[8];
    std::snprintf(uniq_s, sizeof(uniq_s), "%.1f", uniq);
    table.row({agg_name(agg), flood_cell, yes_no(h), yes_no(v), uniq_s});
  }
  table.print(std::cout);
  std::cout << "\nPaper expects uniqueness 1.5/1/1.5/2.5/2/2 for the six "
               "keys in order.\n";
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
