// Sec. 5.5.3 reproduction (recording-throughput half), as google-benchmark.
//
// Paper software numbers: 11M insertions/s for one reversible sketch
// (239M records in 20.6 s), translating to ~3.7 Gbps of worst-case 40-byte
// packets. Each benchmark reports items/s; the derived worst-case line rate
// is items/s * 320 bits.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "detect/hifind.hpp"
#include "detect/sketch_bank.hpp"
#include "gen/scenario.hpp"
#include "sketch/kary_sketch.hpp"
#include "sketch/reverse_inference.hpp"
#include "sketch/reversible_sketch.hpp"
#include "sketch/sketch2d.hpp"

namespace hifind {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, int bits) {
  Pcg32 rng(7);
  const std::uint64_t mask =
      bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next64() & mask;
  return keys;
}

void BM_ReversibleSketchUpdate48(benchmark::State& state) {
  ReversibleSketch s(ReversibleSketchConfig{.key_bits = 48, .num_stages = 6,
                                            .bucket_bits = 12, .seed = 1});
  const auto keys = random_keys(1 << 16, 48);
  std::size_t i = 0;
  for (auto _ : state) {
    s.update(keys[i++ & 0xffff], 1.0);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["worst_case_Gbps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 320e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReversibleSketchUpdate48);

void BM_ReversibleSketchUpdate64(benchmark::State& state) {
  ReversibleSketch s(ReversibleSketchConfig{.key_bits = 64, .num_stages = 6,
                                            .bucket_bits = 16, .seed = 1});
  const auto keys = random_keys(1 << 16, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    s.update(keys[i++ & 0xffff], 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReversibleSketchUpdate64);

void BM_KarySketchUpdate(benchmark::State& state) {
  KarySketch s(KarySketchConfig{.num_stages = 6, .num_buckets = 1u << 14,
                                .seed = 1});
  const auto keys = random_keys(1 << 16, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    s.update(keys[i++ & 0xffff], 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KarySketchUpdate);

void BM_TwoDSketchUpdate(benchmark::State& state) {
  TwoDSketch s(Sketch2dConfig{.num_stages = 5, .x_buckets = 1u << 12,
                              .y_buckets = 64, .seed = 1});
  const auto keys = random_keys(1 << 16, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::uint64_t k = keys[i++ & 0xffff];
    s.update(k, k >> 48, 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoDSketchUpdate);

void BM_SketchBankRecord(benchmark::State& state) {
  // Full data-recording path: every sketch in the bank, per packet.
  SketchBank bank{SketchBankConfig{}};
  Pcg32 rng(3);
  std::vector<PacketRecord> packets(1 << 14);
  for (auto& p : packets) {
    p.sip = IPv4{rng.next()};
    p.dip = IPv4{rng.next()};
    p.sport = static_cast<std::uint16_t>(rng.next());
    p.dport = static_cast<std::uint16_t>(rng.bounded(1024));
    p.flags = rng.chance(0.5) ? kSyn : (kSyn | kAck);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    bank.record(packets[i++ & 0x3fff]);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["worst_case_Gbps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 320e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SketchBankRecord);

void BM_SketchCombine(benchmark::State& state) {
  // Central-site aggregation cost: COMBINE of two paper-shaped banks.
  const SketchBankConfig cfg{};
  SketchBank a(cfg), b(cfg);
  for (auto _ : state) {
    SketchBank combined = SketchBank::combine(
        std::vector<std::pair<double, const SketchBank*>>{{1.0, &a},
                                                          {1.0, &b}});
    benchmark::DoNotOptimize(combined);
  }
}
BENCHMARK(BM_SketchCombine);

void BM_ReverseInference(benchmark::State& state) {
  // Inference cost vs number of concurrent anomalies (paper stress test
  // pushes 100 per interval).
  const auto num_heavy = static_cast<std::size_t>(state.range(0));
  ReversibleSketch s(ReversibleSketchConfig{.key_bits = 48, .num_stages = 6,
                                            .bucket_bits = 12, .seed = 5});
  KarySketch verif(KarySketchConfig{.num_stages = 6,
                                    .num_buckets = 1u << 14, .seed = 6});
  Pcg32 rng(11);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.next64() & ((1ULL << 48) - 1);
    s.update(k, 1.0);
    verif.update(k, 1.0);
  }
  for (std::size_t i = 0; i < num_heavy; ++i) {
    const std::uint64_t k = rng.next64() & ((1ULL << 48) - 1);
    s.update(k, 500.0);
    verif.update(k, 500.0);
  }
  InferenceOptions opts;
  opts.verifier = [&verif](std::uint64_t key, double) {
    return verif.estimate(key) >= 250.0;
  };
  // Top-anomalies mode (paper stress setting): bounds the search tree so
  // the benchmark measures per-anomaly cost rather than the slack-1
  // cross-product blowup at 100 concurrent anomalies in 2^12 buckets.
  opts.max_heavy_per_stage = 100;
  for (auto _ : state) {
    auto r = infer_heavy_keys(s, 250.0, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ReverseInference)->Arg(1)->Arg(10)->Arg(50);

void BM_DetectionInterval(benchmark::State& state) {
  // Full per-interval detection on a realistic attack-rich interval. The
  // whole 7-minute attack mix lands in ONE interval — comparable to the
  // paper's stress test, so run in its top-100 anomalies mode.
  const Scenario scenario = build_scenario(nu_like_config(99, 420));
  const SketchBankConfig bank_cfg{};
  HifindDetectorConfig det_cfg;
  det_cfg.inference.max_heavy_per_stage = 100;
  SketchBank quiet(bank_cfg);   // warmup interval: empty baseline
  SketchBank bank(bank_cfg);    // measured interval: the full attack mix
  for (const auto& p : scenario.trace.packets()) bank.record(p);
  for (auto _ : state) {
    state.PauseTiming();
    HifindDetector detector(det_cfg);
    detector.process(quiet, 0);  // primes forecasters at zero baseline
    state.ResumeTiming();
    auto r = detector.process(bank, 1);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DetectionInterval)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hifind

BENCHMARK_MAIN();
