// Recording-pipeline throughput (paper Sec. 5.5.3), as google-benchmark.
//
// Measures items/s (recordable packets per second) for:
//   - Serial:   SketchBank::record per packet, one thread;
//   - Legacy:   the pre-pipeline ParallelRecorder (mutex+condvar vector
//               queues, per-worker key re-extraction, scalar updates) — kept
//               here verbatim as the regression baseline;
//   - Pipeline: the lock-free SPSC-ring recorder (shared RecordOp
//               extraction, prefetched batch updates);
//   - Sharded:  the shared-nothing recorder (per-worker private SketchBank
//               replicas, each op copied into exactly ONE ring, plain
//               non-atomic stores), same record+drain shape as Pipeline so
//               the two are directly comparable ingest-path numbers — in
//               production the seal merge runs on the epoch thread,
//               overlapped with the next interval exactly like detection
//               itself (close_stall_us is the tripwire if it ever bleeds
//               back into ingest);
//   - ShardMerge: the seal-time SketchBank::merge_shards reduction alone,
//               isolating what the epoch thread absorbs per seal (a
//               function of bank size, not traffic volume — it amortizes
//               over the interval);
//   - UnsheddedIngest/OverloadedIngest: the full OverlappedPipeline ingest
//     path (offer + close, epochs overlapped) without and with the load
//     shedder escalated by a tight recording budget. The overloaded variant
//     must SUSTAIN offered load well past the unshedded saturation rate —
//     shed ops cost one hash — while holding coverage above the configured
//     floor and close_stall_us at 0 (the ISSUE acceptance gates);
//   - UpdateScalar/UpdateBatch: single-sketch scalar update() vs
//     update_batch() on the bank's largest reversible sketch (64-bit keys,
//     2^16 buckets) and on a verification-shaped k-ary sketch.
//
// bench/run_record_pipeline.py runs this binary and distills
// BENCH_throughput.json; future PRs regress against that file.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/interval.hpp"
#include "common/rng.hpp"
#include "detect/overlapped.hpp"
#include "detect/parallel_recorder.hpp"
#include "detect/sketch_bank.hpp"
#include "gen/scenario.hpp"
#include "sketch/reversible_sketch.hpp"
#include "sketch/sketch_ops.hpp"

namespace hifind {
namespace {

// ---------------------------------------------------------------------------
// Legacy recorder: the exact pre-pipeline implementation (mutex+condvar
// std::vector queues; every worker re-extracts keys via record_masked).
class LegacyParallelRecorder {
 public:
  LegacyParallelRecorder(SketchBank& bank, unsigned num_threads)
      : bank_(bank) {
    const unsigned n = std::clamp(num_threads, 1u,
                                  SketchBank::kNumSketchGroups);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      workers_.push_back(std::make_unique<Worker>());
    }
    for (unsigned g = 0; g < SketchBank::kNumSketchGroups; ++g) {
      workers_[g % n]->mask |= 1u << g;
    }
    for (auto& w : workers_) {
      w->thread =
          std::thread([this, worker = w.get()] { run_worker(*worker); });
    }
    batch_.reserve(kBatchSize);
  }

  ~LegacyParallelRecorder() {
    drain();
    for (auto& w : workers_) {
      {
        std::lock_guard<std::mutex> lock(w->mu);
        w->stop = true;
      }
      w->cv.notify_all();
    }
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
  }

  void offer(const PacketRecord& p) {
    batch_.push_back(p);
    if (batch_.size() >= kBatchSize) flush_batch();
  }

  void drain() {
    flush_batch();
    for (auto& w : workers_) {
      std::unique_lock<std::mutex> lock(w->mu);
      w->cv.wait(lock, [&w] { return w->idle && w->queue.empty(); });
    }
  }

 private:
  struct Worker {
    std::thread thread;
    unsigned mask{0};
    std::mutex mu;
    std::condition_variable cv;
    std::vector<PacketRecord> queue;
    bool stop{false};
    bool idle{true};
  };

  void flush_batch() {
    if (batch_.empty()) return;
    for (auto& w : workers_) {
      std::lock_guard<std::mutex> lock(w->mu);
      w->queue.insert(w->queue.end(), batch_.begin(), batch_.end());
      w->idle = false;
      w->cv.notify_all();
    }
    batch_.clear();
  }

  void run_worker(Worker& w) {
    std::vector<PacketRecord> local;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(w.mu);
        w.cv.wait(lock, [&w] { return w.stop || !w.queue.empty(); });
        if (w.queue.empty()) {
          if (w.stop) return;
          continue;
        }
        local.swap(w.queue);
      }
      for (const PacketRecord& p : local) {
        bank_.record_masked(p, w.mask);
      }
      local.clear();
      {
        std::lock_guard<std::mutex> lock(w.mu);
        if (w.queue.empty()) {
          w.idle = true;
          w.cv.notify_all();
        }
      }
    }
  }

  SketchBank& bank_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<PacketRecord> batch_;
  static constexpr std::size_t kBatchSize = 1024;
};

// ---------------------------------------------------------------------------

/// Worst-case interval: every packet is a SYN or SYN-ACK, so every packet
/// touches every sketch (non-recordable packets are nearly free either way).
std::vector<PacketRecord> recordable_stream(std::size_t n) {
  Pcg32 rng(3);
  std::vector<PacketRecord> packets(n);
  for (auto& p : packets) {
    p.sip = IPv4{rng.next()};
    p.dip = IPv4{rng.next()};
    p.sport = static_cast<std::uint16_t>(rng.next());
    p.dport = static_cast<std::uint16_t>(rng.bounded(1024));
    p.flags = rng.chance(0.5) ? kSyn : (kSyn | kAck);
  }
  return packets;
}

constexpr std::size_t kStreamLen = 1 << 15;

void BM_SerialRecord(benchmark::State& state) {
  SketchBank bank{SketchBankConfig{}};
  const auto stream = recordable_stream(kStreamLen);
  for (auto _ : state) {
    for (const auto& p : stream) bank.record(p);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_SerialRecord)->UseRealTime();

void BM_LegacyRecorder(benchmark::State& state) {
  SketchBank bank{SketchBankConfig{}};
  const auto stream = recordable_stream(kStreamLen);
  LegacyParallelRecorder rec(bank,
                             static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    for (const auto& p : stream) rec.offer(p);
    rec.drain();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_LegacyRecorder)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_PipelineRecorder(benchmark::State& state) {
  SketchBank bank{SketchBankConfig{}};
  const auto stream = recordable_stream(kStreamLen);
  ParallelRecorder rec(bank, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    for (const auto& p : stream) rec.offer(p);
    rec.drain();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
  state.counters["worst_case_Gbps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(stream.size()) * 320e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineRecorder)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ShardedRecorder(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const auto stream = recordable_stream(kStreamLen);
  std::vector<std::unique_ptr<SketchBank>> banks;
  std::vector<SketchBank*> shards;
  for (unsigned i = 0; i < n; ++i) {
    banks.push_back(std::make_unique<SketchBank>(SketchBankConfig{}));
    shards.push_back(banks.back().get());
  }
  ShardedRecorder rec(shards);
  for (auto _ : state) {
    for (const auto& p : stream) rec.offer(p);
    rec.drain();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
  state.counters["worst_case_Gbps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(stream.size()) * 320e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedRecorder)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ShardMerge(benchmark::State& state) {
  // Merge cost alone, on shards pre-loaded with a full worst-case interval
  // dealt round-robin (so per-shard occupancy mirrors the recorder's).
  const unsigned n = static_cast<unsigned>(state.range(0));
  const auto stream = recordable_stream(kStreamLen);
  std::vector<std::unique_ptr<SketchBank>> banks;
  std::vector<SketchBank*> shards;
  for (unsigned i = 0; i < n; ++i) {
    banks.push_back(std::make_unique<SketchBank>(SketchBankConfig{}));
    shards.push_back(banks.back().get());
  }
  for (std::size_t i = 0; i < stream.size(); ++i) {
    shards[i % n]->record(stream[i]);
  }
  SketchBank merged{SketchBankConfig{}};
  for (auto _ : state) {
    merged.merge_shards(
        std::span<const SketchBank* const>(shards.data(), shards.size()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardMerge)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// ---------------------------------------------------------------------------
// Overload: full pipeline ingest (offer + close) with and without shedding.

/// One pipeline per bench run. The bank is small and the detection threshold
/// is out of reach so epochs stay trivial: this measures the INGEST path,
/// and any epoch bleed-back into it shows up as close_stall_us != 0.
OverlappedPipelineConfig ingest_pipe_cfg(std::uint64_t shed_budget) {
  OverlappedPipelineConfig cfg;
  cfg.bank.seed = 42;
  cfg.bank.rs48.bucket_bits = 12;
  cfg.bank.rs64.bucket_bits = 8;
  cfg.bank.verification.num_buckets = 1u << 10;
  cfg.bank.original.num_buckets = 1u << 10;
  cfg.bank.twod.x_buckets = 1u << 8;
  cfg.bank.twod.y_buckets = 16;
  cfg.detector.interval_seconds = 60;
  cfg.detector.syn_rate_threshold = 1e9;
  cfg.record_threads = 2;
  cfg.shed.budget_ops_per_interval = shed_budget;
  return cfg;
}

void ingest_bench(benchmark::State& state, std::uint64_t shed_budget) {
  OverlappedPipeline pipe(ingest_pipe_cfg(shed_budget));
  const auto stream = recordable_stream(kStreamLen);
  double coverage = 1.0;
  std::uint32_t level_max = 0;
  for (auto _ : state) {
    for (const auto& p : stream) pipe.offer(p);
    pipe.close_interval();
    // Pace the closes like production does (60 s of traffic per close, not
    // back-to-back): let the epoch drain OUTSIDE the timed region so
    // close_stall_us reports genuine epoch bleed-back into ingest, not the
    // bench's own pathological close rate.
    state.PauseTiming();
    pipe.wait_epoch_idle();
    for (const IntervalResult& r : pipe.take_results()) {
      coverage = r.coverage.sample_coverage;
      level_max = std::max(level_max, r.coverage.shed_level_max);
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
  state.counters["close_stall_us"] =
      static_cast<double>(pipe.close_stall_us());
  state.counters["sample_coverage"] = coverage;
  state.counters["shed_level_max"] = static_cast<double>(level_max);
}

void BM_UnsheddedIngest(benchmark::State& state) {
  ingest_bench(state, /*shed_budget=*/0);
}
BENCHMARK(BM_UnsheddedIngest)->UseRealTime();

void BM_OverloadedIngest(benchmark::State& state) {
  // Budget at 1/16 of the interval's offered ops: the shedder escalates to
  // ~level 4, so most ops cost one mix64 + branch and ingest must sustain
  // a multiple of the unshedded saturation rate.
  ingest_bench(state, /*shed_budget=*/kStreamLen / 16);
}
BENCHMARK(BM_OverloadedIngest)->UseRealTime();

std::vector<KeyDelta> random_ops(std::size_t n, int bits) {
  Pcg32 rng(7);
  const std::uint64_t mask =
      bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  std::vector<KeyDelta> ops(n);
  for (auto& op : ops) {
    op.key = rng.next64() & mask;
    op.delta = 1.0;
  }
  return ops;
}

void BM_UpdateScalarRS64(benchmark::State& state) {
  ReversibleSketch s(ReversibleSketchConfig{.key_bits = 64, .num_stages = 6,
                                            .bucket_bits = 16, .seed = 1});
  const auto ops = random_ops(kStreamLen, 64);
  for (auto _ : state) {
    for (const auto& op : ops) s.update(op.key, op.delta);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ops.size()));
}
BENCHMARK(BM_UpdateScalarRS64);

void BM_UpdateBatchRS64(benchmark::State& state) {
  ReversibleSketch s(ReversibleSketchConfig{.key_bits = 64, .num_stages = 6,
                                            .bucket_bits = 16, .seed = 1});
  const auto ops = random_ops(kStreamLen, 64);
  for (auto _ : state) {
    s.update_batch(ops);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ops.size()));
}
BENCHMARK(BM_UpdateBatchRS64);

void BM_UpdateScalarKary(benchmark::State& state) {
  KarySketch s(KarySketchConfig{.num_stages = 6, .num_buckets = 1u << 14,
                                .seed = 1});
  const auto ops = random_ops(kStreamLen, 64);
  for (auto _ : state) {
    for (const auto& op : ops) s.update(op.key, op.delta);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ops.size()));
}
BENCHMARK(BM_UpdateScalarKary);

void BM_UpdateBatchKary(benchmark::State& state) {
  KarySketch s(KarySketchConfig{.num_stages = 6, .num_buckets = 1u << 14,
                                .seed = 1});
  const auto ops = random_ops(kStreamLen, 64);
  for (auto _ : state) {
    s.update_batch(ops);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ops.size()));
}
BENCHMARK(BM_UpdateBatchKary);

// ---------------------------------------------------------------------------
// Million-flow (TLB-stress) scenario: the gen/ preset whose spoofed floods
// draw a fresh uniform 32-bit source per SYN, so the measured interval
// carries `distinct` distinct client IPs. Recording it walks every sketch's
// counter array at maximum entropy — the memory-hierarchy regime the
// vectorized index precomputation and hugepage placement target.

/// RecordOps of the preset's measured interval [120 s, 180 s). Cached per
/// distinct-count: scenario synthesis costs far more than one bench pass.
const std::vector<RecordOp>& million_flow_ops(std::size_t distinct) {
  static std::map<std::size_t, std::vector<RecordOp>> cache;
  auto it = cache.find(distinct);
  if (it != cache.end()) return it->second;
  const Scenario scenario = build_scenario(million_flow_config(7, distinct));
  std::vector<RecordOp> ops;
  ops.reserve(distinct + distinct / 4);
  const Timestamp lo = Timestamp{120} * kMicrosPerSecond;
  const Timestamp hi = Timestamp{180} * kMicrosPerSecond;
  for (const PacketRecord& p : scenario.trace.packets()) {
    if (p.ts < lo || p.ts >= hi) continue;
    RecordOp op;
    if (make_record_op(p, 1.0, op)) ops.push_back(op);
  }
  return cache.emplace(distinct, std::move(ops)).first->second;
}

void million_flow_bench(benchmark::State& state, BatchIndexMode mode) {
  const auto& ops = million_flow_ops(static_cast<std::size_t>(state.range(0)));
  SketchBank bank{SketchBankConfig{}};
  set_batch_index_mode(mode);
  for (auto _ : state) {
    bank.record_ops(ops, SketchBank::kGroupAll);
  }
  set_batch_index_mode(BatchIndexMode::kVectorized);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ops.size()));
  state.counters["distinct_clients"] = static_cast<double>(state.range(0));
  state.counters["interval_ops"] = static_cast<double>(ops.size());
}

void BM_MillionFlowVectorized(benchmark::State& state) {
  million_flow_bench(state, BatchIndexMode::kVectorized);
}
// 2^21 ~= 2.1M distinct clients is the headline row; 2^18 is the reduced
// variant CI's bench smoke filters to (scenario synthesis stays ~seconds).
BENCHMARK(BM_MillionFlowVectorized)
    ->Arg(1 << 21)
    ->Arg(1 << 18)
    ->UseRealTime();

void BM_MillionFlowLegacy(benchmark::State& state) {
  million_flow_bench(state, BatchIndexMode::kLegacy);
}
BENCHMARK(BM_MillionFlowLegacy)->Arg(1 << 21)->Arg(1 << 18)->UseRealTime();

}  // namespace
}  // namespace hifind

BENCHMARK_MAIN();
