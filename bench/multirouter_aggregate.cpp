// Sec. 5.3.2 reproduction: aggregated detection over multiple routers.
//
// The NU-like trace is split over 3 edge routers with per-packet load
// balancing (each packet takes a uniformly random router, so a connection's
// SYN and SYN/ACK separate with probability 2/3). Expected results:
//   - HiFIND on the COMBINED sketches == HiFIND single-router, exactly;
//   - TRW run per-router with summed alerts gains false positives
//     (split benign connections look like failures) relative to TRW on the
//     whole traffic.
#include <iostream>
#include <set>

#include "bench_util.hpp"
#include "common/table_printer.hpp"
#include "router/distributed.hpp"

namespace hifind::bench {
namespace {

void run() {
  const Scenario scenario = build_scenario(nu_like_config(91, 1200));
  const PipelineConfig pc = default_pipeline_config();

  // Single-router reference.
  Pipeline single(pc);
  const auto ref = single.run(scenario.trace);

  // Distributed: 3 routers, per-packet random split, central COMBINE.
  DistributedMonitor mon(3, pc.bank, pc.detector);
  IntervalClock clock(60);
  std::vector<IntervalResult> agg;
  std::uint64_t current = 0;
  bool any = false;
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) agg.push_back(mon.end_interval(current++));
    mon.feed(p);
  }
  agg.push_back(mon.end_interval(current));

  std::size_t ref_alerts = 0, agg_alerts = 0, identical = 0;
  for (std::size_t i = 0; i < ref.size() && i < agg.size(); ++i) {
    ref_alerts += ref[i].final.size();
    agg_alerts += agg[i].final.size();
    bool same = ref[i].final.size() == agg[i].final.size();
    for (std::size_t j = 0; same && j < ref[i].final.size(); ++j) {
      same = ref[i].final[j].key == agg[i].final[j].key &&
             ref[i].final[j].type == agg[i].final[j].type;
    }
    identical += same ? 1 : 0;
  }

  // TRW: whole-traffic vs per-router + summed.
  const Trw whole = run_trw(scenario.trace);
  std::vector<Trw> split;
  for (int i = 0; i < 3; ++i) split.emplace_back(TrwConfig{});
  PacketSplitter splitter(3, 17);
  for (const auto& p : scenario.trace.packets()) {
    split[splitter.route(p)].observe(p);
  }
  const Timestamp end = scenario.trace.stats().last_ts + 61 * kMicrosPerSecond;
  std::set<std::uint32_t> whole_sips, split_sips;
  for (const auto& a : whole.alerts()) whole_sips.insert(a.sip.addr);
  for (auto& t : split) {
    t.flush(end);
    for (const auto& a : t.alerts()) split_sips.insert(a.sip.addr);
  }
  std::set<std::uint32_t> real_scanners;
  for (const auto& e : scenario.truth.events()) {
    if (is_attack(e.kind) && e.sip) real_scanners.insert(e.sip->addr);
  }
  auto fp_count = [&](const std::set<std::uint32_t>& sips) {
    std::size_t fp = 0;
    for (const auto s : sips) fp += real_scanners.contains(s) ? 0 : 1;
    return fp;
  };

  TablePrinter table("Sec 5.3.2. Aggregated detection over 3 routers "
                     "(per-packet load balancing)");
  table.header({"Method", "Alerts (single)", "Alerts (split)",
                "Identical intervals", "False-positive sources"});
  table.row({"HiFIND (COMBINE)", std::to_string(ref_alerts),
             std::to_string(agg_alerts),
             std::to_string(identical) + "/" + std::to_string(ref.size()),
             "-"});
  table.row({"TRW (per-router sum)", std::to_string(whole_sips.size()),
             std::to_string(split_sips.size()), "-",
             std::to_string(fp_count(whole_sips)) + " -> " +
                 std::to_string(fp_count(split_sips))});
  table.print(std::cout);

  std::cout << "\nPer-interval shipped state: "
            << mon.bytes_shipped_per_interval() / 1e6
            << " MB of sketches, CONSTANT in traffic volume. Shipping "
               "packets instead scales with the link: one minute of a "
               "10 Gbps link is 75 GB (paper Sec. 3.1's argument for "
               "shipping sketches).\n";
  std::cout << (identical == ref.size()
                    ? "PASS: aggregated HiFIND detection is exactly the "
                      "single-router result.\n"
                    : "FAIL: aggregated HiFIND detection diverged!\n");
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
