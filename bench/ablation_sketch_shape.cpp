// Ablation: reversible-sketch shape (stages H, bucket bits) vs accuracy and
// inference behaviour — the systematic study behind the paper's Sec. 5.1
// parameter choices (H = 6, 2^12 buckets for 48-bit keys).
//
// Fixed workload: 30k background keys (+1 each) and 20 planted heavy keys
// (+500). For each shape: mean absolute estimate error over the heavy keys,
// inference recall, raw candidate count (near-collision inflation) and
// inference wall time.
#include <chrono>
#include <cmath>
#include <iostream>

#include "common/rng.hpp"
#include "common/table_printer.hpp"
#include "sketch/reverse_inference.hpp"

namespace hifind::bench {
namespace {

struct Shape {
  std::size_t stages;
  int bucket_bits;
};

void run() {
  TablePrinter table(
      "Ablation: RS shape vs accuracy/inference (48-bit keys, 30k background "
      "+ 20x500 heavy, threshold 250)");
  table.header({"H", "buckets", "mem (hw)", "est err", "recall",
                "raw candidates", "infer ms"});

  const Shape shapes[] = {{3, 12}, {4, 12}, {5, 12}, {6, 12},
                          {6, 6},  {6, 18}, {8, 12}};
  for (const Shape& shape : shapes) {
    ReversibleSketchConfig cfg;
    cfg.key_bits = 48;
    cfg.num_stages = shape.stages;
    cfg.bucket_bits = shape.bucket_bits;
    cfg.seed = 7;
    ReversibleSketch s(cfg);

    Pcg32 rng(42);
    for (int i = 0; i < 30000; ++i) {
      s.update(rng.next64() & ((1ULL << 48) - 1), 1.0);
    }
    std::vector<std::uint64_t> heavy;
    for (int i = 0; i < 20; ++i) {
      heavy.push_back(rng.next64() & ((1ULL << 48) - 1));
      s.update(heavy.back(), 500.0);
    }

    double err = 0.0;
    for (const std::uint64_t k : heavy) {
      err += std::abs(s.estimate(k) - 500.0);
    }
    err /= static_cast<double>(heavy.size());

    const auto t0 = std::chrono::steady_clock::now();
    const InferenceResult r = infer_heavy_keys(s, 250.0);
    const auto t1 = std::chrono::steady_clock::now();
    std::size_t found = 0;
    for (const std::uint64_t k : heavy) {
      for (const HeavyKey& h : r.keys) found += h.key == k ? 1 : 0;
    }

    char err_s[16], ms_s[16], recall_s[16];
    std::snprintf(err_s, sizeof(err_s), "%.1f", err);
    std::snprintf(ms_s, sizeof(ms_s), "%.1f",
                  std::chrono::duration<double, std::milli>(t1 - t0).count());
    std::snprintf(recall_s, sizeof(recall_s), "%zu/20", found);
    table.row({std::to_string(shape.stages),
               "2^" + std::to_string(shape.bucket_bits),
               std::to_string((std::size_t{1} << shape.bucket_bits) *
                              shape.stages * 4 / 1024) +
                   "K",
               err_s, recall_s, std::to_string(r.keys.size()), ms_s});
  }
  table.print(std::cout);
  std::cout << "\nReading: too few buckets (2^6) destroys estimates; more "
               "stages cut near-collision candidates but cost memory and "
               "update accesses — H=6 @ 2^12 (the paper's choice) is the "
               "knee.\n";
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
