// Table 1 reproduction: functionality comparison.
//
// Paper's matrix (Yes/No per detector per attack class):
//   HiFIND        spoofed DoS: Yes  non-spoofed DoS: Yes  Hscan: Yes  Vscan: Yes
//   TRW(-AC)      No                No                    Yes         (Yes)
//   CPM           Yes (high FP w/ port scans)             No          No
//   Backscatter   Yes               No                    No          No
//   Superspreader No                No                    Yes         No
//
// Method: four micro-scenarios, each one attack class over identical benign
// background. A detector scores "Yes" if it raises an alert attributable to
// the attack (for CPM, an interval alarm during the attack; for Backscatter,
// a spoofed-uniform verdict for the victim's un-responded SYN sources).
#include <iostream>
#include <set>

#include "baseline/backscatter.hpp"
#include "baseline/cpm.hpp"
#include "baseline/pcf.hpp"
#include "baseline/superspreader.hpp"
#include "bench_util.hpp"
#include "common/table_printer.hpp"

namespace hifind::bench {
namespace {

struct MicroScenario {
  const char* name;
  EventKind kind;
  Scenario scenario;
};

Scenario micro(EventKind kind, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.duration_seconds = 480;
  cfg.background_cps = 60.0;
  cfg.num_spoofed_floods = kind == EventKind::kSynFloodSpoofed ? 1 : 0;
  cfg.num_fixed_floods = kind == EventKind::kSynFloodFixed ? 1 : 0;
  cfg.num_hscans = kind == EventKind::kHorizontalScan ? 1 : 0;
  cfg.num_vscans = kind == EventKind::kVerticalScan ? 1 : 0;
  cfg.num_block_scans = 0;
  cfg.num_flash_crowds = 0;
  cfg.num_misconfigs = 0;
  cfg.num_server_failures = 0;
  return build_scenario(cfg);
}

/// The injected attack event of the micro-scenario.
const GroundTruthEvent& the_attack(const Scenario& s) {
  static GroundTruthEvent none;
  for (const auto& e : s.truth.events()) {
    if (is_attack(e.kind)) return e;
  }
  return none;
}

bool hifind_detects(const Scenario& s, EventKind kind) {
  Pipeline pipeline(default_pipeline_config());
  const auto results = pipeline.run(s.trace);
  const EvaluationSummary sum = evaluate(results, s.truth, IntervalClock(60));
  (void)kind;
  return sum.attack_events_detected >= 1;
}

bool trw_detects(const Scenario& s) {
  const GroundTruthEvent& atk = the_attack(s);
  const Trw trw = run_trw(s.trace);
  for (const auto& a : trw.alerts()) {
    if (atk.sip && a.sip.addr == atk.sip->addr) return true;
  }
  return false;
}

bool cpm_alarms_during_attack(const Scenario& s) {
  const GroundTruthEvent& atk = the_attack(s);
  Cpm cpm{CpmConfig{}};
  IntervalClock clock(60);
  std::uint64_t current = 0;
  bool alarmed_during = false;
  for (const auto& p : s.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    while (current < iv) {
      const bool alarm = cpm.end_interval();
      const Timestamp a = clock.interval_start(current);
      if (alarm && atk.active_during(a, a + clock.width_us())) {
        alarmed_during = true;
      }
      ++current;
    }
    cpm.observe(p);
  }
  return alarmed_during;
}

bool backscatter_validates(const Scenario& s) {
  const GroundTruthEvent& atk = the_attack(s);
  if (!atk.dip) return false;
  BackscatterValidator v;
  for (const auto& p : s.trace.packets()) {
    if (p.is_syn() && p.dip.addr == atk.dip->addr &&
        (!atk.dport || p.dport == *atk.dport) &&
        p.ts >= atk.start && p.ts < atk.end) {
      v.add_source(p.sip);
    }
  }
  return v.verdict().spoofed_uniform;
}

bool pcf_detects(const Scenario& s) {
  // PCF flags a partial-completion imbalance on the victim host key; it has
  // no notion of attack type. Reset per interval like the other detectors.
  const GroundTruthEvent& atk = the_attack(s);
  if (!atk.dip) return false;  // Hscans have no single victim host
  Pcf pcf{PcfConfig{}};
  IntervalClock clock(60);
  std::uint64_t current = 0;
  bool detected = false;
  for (const auto& p : s.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    while (current < iv) {
      detected |= pcf.suspicious(atk.dip->addr);
      pcf.clear();
      ++current;
    }
    pcf.observe(p);
  }
  return detected || pcf.suspicious(atk.dip->addr);
}

bool superspreader_detects(const Scenario& s) {
  const GroundTruthEvent& atk = the_attack(s);
  SuperspreaderDetector d{SuperspreaderConfig{.k = 100, .sample_rate = 0.5}};
  for (const auto& p : s.trace.packets()) d.observe(p);
  for (const auto& a : d.alerts()) {
    if (atk.sip && a.sip.addr == atk.sip->addr) return true;
  }
  return false;
}

void run() {
  std::vector<MicroScenario> scenarios;
  scenarios.push_back({"Spoofed DoS", EventKind::kSynFloodSpoofed,
                       micro(EventKind::kSynFloodSpoofed, 101)});
  scenarios.push_back({"Non-spoofed DoS", EventKind::kSynFloodFixed,
                       micro(EventKind::kSynFloodFixed, 102)});
  scenarios.push_back({"Hscan", EventKind::kHorizontalScan,
                       micro(EventKind::kHorizontalScan, 103)});
  scenarios.push_back({"Vscan", EventKind::kVerticalScan,
                       micro(EventKind::kVerticalScan, 104)});

  TablePrinter table(
      "Table 1. Functionality comparison (measured on single-attack "
      "micro-scenarios)");
  table.header({"Approaches", "Spoofed DoS", "Non-spoofed DoS", "Hscan",
                "Vscan"});

  std::vector<std::string> hifind_row{"HiFIND"}, trw_row{"TRW"},
      cpm_row{"CPM"}, bs_row{"Backscatter"}, ss_row{"Superspreader"},
      pcf_row{"PCF (extension)"};
  for (auto& ms : scenarios) {
    hifind_row.push_back(yes_no(hifind_detects(ms.scenario, ms.kind)));
    trw_row.push_back(yes_no(trw_detects(ms.scenario)));
    cpm_row.push_back(yes_no(cpm_alarms_during_attack(ms.scenario)));
    bs_row.push_back(yes_no(backscatter_validates(ms.scenario)));
    ss_row.push_back(yes_no(superspreader_detects(ms.scenario)));
    pcf_row.push_back(yes_no(pcf_detects(ms.scenario)));
  }
  table.row(hifind_row);
  table.row(trw_row);
  table.row(cpm_row);
  table.row(bs_row);
  table.row(ss_row);
  table.row(pcf_row);
  table.print(std::cout);
  std::cout << "\nPaper expects: HiFIND all Yes; TRW scans only; CPM floods"
               " (and scan FPs); Backscatter spoofed floods only;"
               " Superspreader Hscan only. PCF (paper Sec. 2 related work)"
               " sees host-level imbalances — floods and vscans — but cannot"
               " name keys or types.\n";
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
