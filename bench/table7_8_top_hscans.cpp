// Tables 7 & 8 reproduction: the top-5 and bottom-5 horizontal scans (by
// change magnitude) with destination port, breadth (#DIP) and cause.
//
// The paper lists e.g. SQLSnake on 1433 sweeping 56275 targets at the top
// and Nachi/MSBlast/Sasser sweeps of ~62-64 targets at the bottom. Our
// generator injects scans with the same cause labels and a log-uniform
// breadth distribution, and the ground-truth ledger supplies the "Cause"
// column the paper's authors assigned manually.
#include <algorithm>
#include <iostream>
#include <map>
#include <set>

#include "bench_util.hpp"
#include "common/table_printer.hpp"

namespace hifind::bench {
namespace {

struct ScanRecord {
  std::uint64_t key{0};  // {SIP,Dport}
  double magnitude{0};   // peak per-interval change
  std::set<std::uint32_t> dips;
  std::string cause{"(unexplained)"};
};

void run() {
  ScenarioConfig cfg = nu_like_config(71, 1800);
  cfg.num_hscans = 30;
  const Scenario scenario = build_scenario(cfg);

  Pipeline pipeline(default_pipeline_config());
  const auto results = pipeline.run(scenario.trace);
  IntervalClock clock(60);

  // Aggregate final hscan alerts by {SIP,Dport}; magnitude = peak change.
  std::map<std::uint64_t, ScanRecord> scans;
  for (const auto& r : results) {
    for (const auto& a : r.final) {
      if (a.type != AttackType::kHorizontalScan) continue;
      ScanRecord& rec = scans[a.key];
      rec.key = a.key;
      rec.magnitude = std::max(rec.magnitude, a.magnitude);
      if (rec.cause == "(unexplained)") {
        if (const auto ev = match_alert(a, scenario.truth, clock)) {
          rec.cause = ev->label;
        }
      }
    }
  }
  // Breadth: count the distinct destinations each flagged source probed.
  for (const auto& p : scenario.trace.packets()) {
    if (!p.is_syn()) continue;
    const auto it = scans.find(pack_ip_port(p.sip, p.dport));
    if (it != scans.end()) it->second.dips.insert(p.dip.addr);
  }

  std::vector<ScanRecord> ordered;
  ordered.reserve(scans.size());
  for (auto& [key, rec] : scans) ordered.push_back(rec);
  std::sort(ordered.begin(), ordered.end(),
            [](const ScanRecord& a, const ScanRecord& b) {
              return a.magnitude > b.magnitude;
            });

  // One row per scanner: a block scan raises dozens of per-port {SIP,Dport}
  // alerts; the paper's tables list distinct attack sources.
  std::vector<ScanRecord> by_source;
  {
    std::set<std::uint32_t> seen;
    for (const ScanRecord& r : ordered) {
      if (seen.insert(unpack_key_ip(r.key).addr).second) {
        by_source.push_back(r);
      }
    }
  }

  auto emit = [&](const char* title, std::size_t from, std::size_t to) {
    TablePrinter table(title);
    table.header({"Anonymized SIP", "Dport", "#DIP", "peak change", "Cause"});
    for (std::size_t i = from; i < to && i < by_source.size(); ++i) {
      const ScanRecord& r = by_source[i];
      table.row({to_string(unpack_key_ip(r.key)),
                 std::to_string(unpack_key_port(r.key)),
                 std::to_string(r.dips.size()),
                 std::to_string(static_cast<long long>(r.magnitude)),
                 r.cause});
    }
    table.print(std::cout);
    std::cout << '\n';
  };

  std::cout << "Detected horizontal scans: " << ordered.size()
            << " {SIP,Dport} keys from " << by_source.size()
            << " distinct sources\n\n";
  emit("Table 7. Top 5 Hscans by change magnitude", 0, 5);
  emit("Table 8. Bottom 5 Hscans by change magnitude",
       by_source.size() > 5 ? by_source.size() - 5 : 0, by_source.size());
  std::cout << "Paper shape: top scans sweep tens of thousands of targets "
               "(SQLSnake/SSH/MySQL-bot class), bottom scans sweep a few "
               "dozen (Nachi/Sasser/NetBIOS class); every row carries an "
               "attributable cause.\n";
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
