// Sec. 5.5.2 reproduction: memory accesses per packet.
//
// Paper: 15 accesses/packet for a 48-bit reversible sketch, 16 for a 64-bit
// one (their count includes the per-word hash SRAM reads of the modular
// hashing pipeline), and 5 per 2D sketch (one per matrix). We print both
// accountings for every sketch in the bank: counter accesses (one bucket
// read-modify-write per stage) and word-hash table reads.
//
// `--json` emits the same counts as one JSON object on stdout instead of
// the table; bench/run_record_pipeline.py folds that into
// BENCH_throughput.json so the access counts land next to the throughput
// numbers they explain.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/table_printer.hpp"
#include "detect/sketch_bank.hpp"

namespace hifind::bench {
namespace {

void run_json() {
  const SketchBank bank{SketchBankConfig{}};
  auto rs_counts = [&](const InvertibleSketch& rs, std::size_t* c,
                       std::size_t* w) {
    *c = rs.accesses_per_update();
    *w = rs.kind() == SketchBackendKind::kReversible
             ? rs.reversible().word_hash_reads_per_update()
             : 0;
  };
  std::size_t c48 = 0, w48 = 0, c64 = 0, w64 = 0;
  rs_counts(bank.rs_sip_dport(), &c48, &w48);
  rs_counts(bank.rs_sip_dip(), &c64, &w64);
  std::printf("{\n");
  std::printf("  \"rs48_counter_accesses\": %zu,\n", c48);
  std::printf("  \"rs48_word_hash_reads\": %zu,\n", w48);
  std::printf("  \"rs48_total\": %zu,\n", c48 + w48);
  std::printf("  \"rs64_counter_accesses\": %zu,\n", c64);
  std::printf("  \"rs64_word_hash_reads\": %zu,\n", w64);
  std::printf("  \"rs64_total\": %zu,\n", c64 + w64);
  std::printf("  \"verif_kary\": %zu,\n",
              bank.verif_sip_dport().accesses_per_update());
  std::printf("  \"os_kary\": %zu,\n",
              bank.os_dip_dport().accesses_per_update());
  std::printf("  \"twod\": %zu,\n",
              bank.twod_sipdip_dport().accesses_per_update());
  std::printf("  \"bank_per_packet\": %zu,\n", bank.accesses_per_packet());
  std::printf("  \"paper_rs48\": 15, \"paper_rs64\": 16, \"paper_2d\": 5\n");
  std::printf("}\n");
}

void run() {
  const SketchBank bank{SketchBankConfig{}};

  TablePrinter table("Sec 5.5.2. Memory accesses per recorded packet");
  table.header({"Sketch", "counter accesses", "word-hash reads", "total"});

  auto rs_row = [&](const char* name, const InvertibleSketch& rs) {
    const std::size_t c = rs.accesses_per_update();
    // Word-hash table reads are a reversible-backend artifact; the compact
    // backend hashes the full key directly.
    const std::size_t w = rs.kind() == SketchBackendKind::kReversible
                              ? rs.reversible().word_hash_reads_per_update()
                              : 0;
    table.row({name, std::to_string(c), std::to_string(w),
               std::to_string(c + w)});
  };
  rs_row("RS({SIP,Dport}) 48-bit", bank.rs_sip_dport());
  rs_row("RS({DIP,Dport}) 48-bit", bank.rs_dip_dport());
  rs_row("RS({SIP,DIP}) 64-bit", bank.rs_sip_dip());
  table.row({"verification k-ary (x3)",
             std::to_string(bank.verif_sip_dport().accesses_per_update()),
             "0",
             std::to_string(bank.verif_sip_dport().accesses_per_update())});
  table.row({"OS({DIP,Dport})",
             std::to_string(bank.os_dip_dport().accesses_per_update()), "0",
             std::to_string(bank.os_dip_dport().accesses_per_update())});
  table.row({"2D {SIP,DIP}x{Dport}",
             std::to_string(bank.twod_sipdip_dport().accesses_per_update()),
             "0",
             std::to_string(bank.twod_sipdip_dport().accesses_per_update())});
  table.row({"2D {SIP,Dport}x{DIP}",
             std::to_string(bank.twod_sipdport_dip().accesses_per_update()),
             "0",
             std::to_string(bank.twod_sipdport_dip().accesses_per_update())});
  table.print(std::cout);

  std::cout << "\nWhole bank, per SYN/SYN-ACK packet: "
            << bank.accesses_per_packet()
            << " counter accesses across all sketches (recordable in "
               "parallel or pipelined per sketch — paper Sec. 5.5.2).\n";
  std::cout << "Paper's comparable figures: 15/packet (48-bit RS, counting "
               "hash reads), 16/packet (64-bit RS), 5/packet per 2D "
               "sketch.\n";
}

}  // namespace
}  // namespace hifind::bench

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--json") == 0) {
    hifind::bench::run_json();
  } else {
    hifind::bench::run();
  }
  return 0;
}
