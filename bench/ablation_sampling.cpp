// Ablation: packet sampling vs full-stream sketching.
//
// The paper's Sec. 2 dismisses vendor "multi-gigabit statistical IDSes"
// because they rely on packet sampling. This bench quantifies the claim on
// our traces: sample packets at rate 1/N, record survivors with weight N
// (unbiased counters), and measure what detection loses. Floods (thousands
// of SYNs) survive heavy sampling; scans near the threshold disappear —
// sampling throws away exactly the per-flow evidence flow-level detection
// needs. Sketches let HiFIND keep rate 1 at line speed, which is the point.
#include <iostream>

#include "bench_util.hpp"
#include "common/table_printer.hpp"

namespace hifind::bench {
namespace {

EvaluationSummary run_sampled(const Scenario& scenario, double rate,
                              std::uint64_t seed) {
  PipelineConfig pc = default_pipeline_config();
  // Scaled-up sampled counters are noisy: a single surviving stray SYN at
  // weight 1/rate can clear the threshold, flooding inference with spurious
  // heavy buckets. Run in top-anomalies mode so the comparison measures
  // detection power, not inference patience.
  pc.detector.inference.max_heavy_per_stage = 100;
  SketchBank bank(pc.bank);
  HifindDetector detector(pc.detector);
  IntervalClock clock(60);
  Pcg32 rng(seed);

  std::vector<IntervalResult> results;
  std::uint64_t current = 0;
  bool any = false;
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) {
      results.push_back(detector.process(bank, current++));
      bank.clear();
    }
    if (rate >= 1.0 || rng.chance(rate)) {
      bank.record(p, 1.0 / rate);
    }
  }
  results.push_back(detector.process(bank, current));
  return evaluate(results, scenario.truth, clock);
}

void run() {
  const Scenario scenario = build_scenario(nu_like_config(93, 900));

  TablePrinter table(
      "Ablation: packet sampling (record 1/N of packets at weight N)");
  table.header({"sampling", "final alerts", "precision", "event recall"});
  for (const double rate : {1.0, 0.5, 0.1, 0.05}) {
    const EvaluationSummary s = run_sampled(scenario, rate, 4242);
    char name[16], prec[16], rec[16];
    std::snprintf(name, sizeof(name), "1/%.0f", 1.0 / rate);
    std::snprintf(prec, sizeof(prec), "%.3f", s.precision());
    std::snprintf(rec, sizeof(rec), "%.3f", s.event_recall());
    table.row({name, std::to_string(s.alerts_total), prec, rec});
  }
  table.print(std::cout);
  std::cout << "\nReading: recall should fall with the sampling rate as "
               "near-threshold scans drop below detectability, while the "
               "(large) floods survive — the paper's argument against "
               "sampling-based IDSes.\n";
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
