#!/usr/bin/env python3
"""Runs the record_pipeline benchmark and distills BENCH_throughput.json.

Usage:
    python3 bench/run_record_pipeline.py [--build-dir build] [--out BENCH_throughput.json]

The output file records items/s (recordable packets per second) for the
serial path, the legacy mutex/condvar recorder, the lock-free shared-bank
pipeline, and the shared-nothing sharded recorder (ingest path: record +
drain, directly comparable to the pipeline numbers; the seal merge runs on
the epoch thread in production) at 1/2/4/8 requested threads, plus the
seal-time shard-merge rate (merges/s, a function of bank size not traffic),
scalar-vs-batch single-sketch update rates, the derived speedups the
acceptance gates care about:
    pipeline_vs_legacy_4t  >= 1.5 expected
    sharded_vs_shared_8t   >= 1.5 expected (on a multi-core host)
    batch_vs_scalar_rs64   >= 1.2 expected
    batch_vs_scalar_kary   >= 0.97 REQUIRED (gated here): at the bench
        shape (786 KiB, below the 2 MiB staging threshold) update_batch
        routes to the identical scalar loop, so this is a parity check
        within measurement noise — a real regression (staging applied to a
        cache-resident shape) shows up as a ~0.96x systematic loss plus
        noise and still trips it
and scaling_efficiency: sharded[N] / (N * sharded[1]) per thread count —
1.0 is perfect shared-nothing scaling; the shared-bank pipeline cannot
approach it because every op is copied into every worker's ring.

The overload section covers the full OverlappedPipeline ingest path with and
without load shedding (BM_UnsheddedIngest / BM_OverloadedIngest):
    overload_vs_unshedded  >= 2.0 expected (shed ops cost one hash)
    sample_coverage        >= 1/64 (the default max_level=6 floor)
    close_stall_us         == 0 (epochs never bleed into ingest)

The million_flow section covers the TLB-stress scenario (millions of
distinct client IPs per interval, bench/million_flow_alerts + the
BM_MillionFlow* variants): full-bank ingest with vectorized batch-index
precomputation vs the legacy per-op index loops, gated
    million_flow_vectorized_vs_legacy >= --million-flow-gate (default 1.15;
        CI smoke passes 1.0 at the reduced flow count)
plus the shard/alert identity result of bench/million_flow_alerts (serial vs
1/2/4/8 shards, vectorized vs legacy indexing — must be bit-identical), and
the per-packet access counts from bench/accesses_per_packet --json.

On a single-CPU host, scaling_efficiency and sharded_vs_shared_8t are marked
informational ("informational_metrics" in the output): thread counts above 1
oversubscribe the only core, so those ratios measure scheduler behavior, not
the recorder.

All numbers come from the same binaries in the same run, on the same machine.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import check_release_build


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_throughput.json")
    parser.add_argument(
        "--min-time",
        default="1.0",
        help="google-benchmark --benchmark_min_time per case (seconds)",
    )
    parser.add_argument(
        "--kary-batch-gate",
        type=float,
        default=0.97,
        help="minimum batch_vs_scalar_kary speedup (default 0.97: the bench "
        "shape sits below the staging threshold so both paths run the same "
        "scalar loop — this is a parity-within-noise check; CI smoke runs "
        "pass a still wider tolerance for noisy runners)",
    )
    parser.add_argument(
        "--rs64-batch-gate",
        type=float,
        default=1.5,
        help="minimum batch_vs_scalar_rs64 speedup (default 1.5 — the "
        "vectorized index precomputation's bar; CI smoke runs pass 1.0 "
        "for noisy runners)",
    )
    parser.add_argument(
        "--million-flow-gate",
        type=float,
        default=1.15,
        help="minimum vectorized-vs-legacy ingest speedup on the "
        "million-flow scenario, measured at the LARGEST flow count the "
        "benchmark ran (default 1.15; CI smoke runs the reduced count "
        "and passes 1.0)",
    )
    parser.add_argument(
        "--benchmark-filter",
        default="",
        help="passed through as --benchmark_filter (CI smoke uses it to "
        "drop the full-size million-flow variant)",
    )
    parser.add_argument(
        "--million-alerts-clients",
        type=int,
        default=1 << 17,
        help="distinct clients/interval for the million_flow_alerts "
        "shard-identity run (reduced by default so the check stays fast)",
    )
    parser.add_argument(
        "--allow-non-release",
        action="store_true",
        help="run against a non-Release build anyway; output is marked "
        'non-gating ("gating": false) and all gates are skipped',
    )
    args = parser.parse_args()

    build_type, gating = check_release_build(args.build_dir,
                                             args.allow_non_release)

    binary = os.path.join(args.build_dir, "bench", "record_pipeline")
    if not os.path.exists(binary):
        print(f"error: {binary} not found — build the repo first", file=sys.stderr)
        return 1

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = tmp.name
    try:
        cmd = [
            binary,
            f"--benchmark_min_time={args.min_time}",
            "--benchmark_format=json",
            f"--benchmark_out={raw_path}",
            "--benchmark_out_format=json",
        ]
        if args.benchmark_filter:
            cmd.append(f"--benchmark_filter={args.benchmark_filter}")
        subprocess.run(cmd, check=True)
        with open(raw_path) as f:
            raw = json.load(f)
    finally:
        os.unlink(raw_path)

    # Shard/alert identity on the (reduced) million-flow scenario: serial vs
    # 1/2/4/8 shards and vectorized vs legacy batch indexing. The binary
    # exits non-zero when any stream differs; we parse its JSON either way so
    # the mismatch detail lands in the output.
    alerts_binary = os.path.join(args.build_dir, "bench", "million_flow_alerts")
    million_alerts = None
    if os.path.exists(alerts_binary):
        proc = subprocess.run(
            [alerts_binary, str(args.million_alerts_clients)],
            capture_output=True,
            text=True,
        )
        try:
            million_alerts = json.loads(proc.stdout)
        except json.JSONDecodeError:
            print(f"warning: unparseable million_flow_alerts output:\n"
                  f"{proc.stdout}", file=sys.stderr)
    else:
        print(f"warning: {alerts_binary} not built — shard identity "
              "unchecked", file=sys.stderr)

    # Per-packet access counts (Sec. 5.5.2) alongside the throughput they
    # explain.
    accesses_binary = os.path.join(args.build_dir, "bench",
                                   "accesses_per_packet")
    accesses = None
    if os.path.exists(accesses_binary):
        proc = subprocess.run(
            [accesses_binary, "--json"], capture_output=True, text=True)
        try:
            accesses = json.loads(proc.stdout)
        except json.JSONDecodeError:
            print("warning: unparseable accesses_per_packet --json output",
                  file=sys.stderr)
    else:
        print(f"warning: {accesses_binary} not built — access counts "
              "omitted", file=sys.stderr)

    items = {}
    counters = {}
    for bench in raw["benchmarks"]:
        if bench.get("run_type") == "aggregate":
            continue
        # Multithreaded recorder benches use UseRealTime(), which suffixes
        # the benchmark name; the rate is items per wall-clock second.
        name = bench["name"].removesuffix("/real_time")
        items[name] = bench.get("items_per_second")
        counters[name] = {
            k: bench[k]
            for k in ("close_stall_us", "sample_coverage", "shed_level_max")
            if k in bench
        }

    def threaded(prefix: str) -> dict:
        out = {}
        for name, rate in items.items():
            m = re.fullmatch(re.escape(prefix) + r"/(\d+)", name)
            if m:
                out[m.group(1)] = rate
        return out

    result = {
        "generated_by": "bench/run_record_pipeline.py",
        "benchmark": "bench/record_pipeline.cpp",
        "gating": gating,
        "context": {
            "date": raw["context"]["date"],
            "num_cpus": raw["context"]["num_cpus"],
            "mhz_per_cpu": raw["context"].get("mhz_per_cpu"),
            # The CMake cache, not google-benchmark's library_build_type:
            # the cache is the ground truth check_release_build gated on.
            "build_type": build_type,
        },
        "items_per_second": {
            "serial": items.get("BM_SerialRecord"),
            "legacy": threaded("BM_LegacyRecorder"),
            "pipeline": threaded("BM_PipelineRecorder"),
            "sharded": threaded("BM_ShardedRecorder"),
            "shard_merge": threaded("BM_ShardMerge"),
            "update_scalar_rs64": items.get("BM_UpdateScalarRS64"),
            "update_batch_rs64": items.get("BM_UpdateBatchRS64"),
            "update_scalar_kary": items.get("BM_UpdateScalarKary"),
            "update_batch_kary": items.get("BM_UpdateBatchKary"),
        },
        # Full-pipeline ingest under overload: offered packets/s sustained,
        # the per-interval shed coverage, and the close-stall backpressure
        # accrued over the whole run (must stay 0 — shedding exists so that
        # overload never reaches the epoch handoff).
        "overload": {
            "unshedded_items_per_second": items.get("BM_UnsheddedIngest"),
            "overloaded_items_per_second": items.get("BM_OverloadedIngest"),
            "unshedded": counters.get("BM_UnsheddedIngest"),
            "overloaded": counters.get("BM_OverloadedIngest"),
        },
        # TLB-stress scenario: full-bank ingest with millions of distinct
        # client IPs per interval, vectorized batch-index precomputation vs
        # the legacy per-op index loops, keyed by distinct-client count.
        "million_flow": {
            "vectorized_items_per_second": threaded("BM_MillionFlowVectorized"),
            "legacy_items_per_second": threaded("BM_MillionFlowLegacy"),
            "alerts": million_alerts,
        },
        "accesses_per_packet": accesses,
    }

    def ratio(a, b):
        return round(a / b, 3) if a and b else None

    ips = result["items_per_second"]
    result["speedup"] = {
        "pipeline_vs_legacy_4t": ratio(
            ips["pipeline"].get("4"), ips["legacy"].get("4")
        ),
        "pipeline_vs_serial_4t": ratio(ips["pipeline"].get("4"), ips["serial"]),
        "sharded_vs_shared_8t": ratio(
            ips["sharded"].get("8"), ips["pipeline"].get("8")
        ),
        "sharded_vs_serial_8t": ratio(ips["sharded"].get("8"), ips["serial"]),
        "batch_vs_scalar_rs64": ratio(
            ips["update_batch_rs64"], ips["update_scalar_rs64"]
        ),
        "batch_vs_scalar_kary": ratio(
            ips["update_batch_kary"], ips["update_scalar_kary"]
        ),
        "overload_vs_unshedded": ratio(
            result["overload"]["overloaded_items_per_second"],
            result["overload"]["unshedded_items_per_second"],
        ),
    }
    # Vectorized vs legacy ingest per million-flow size; the gate reads the
    # largest size the benchmark ran.
    mf = result["million_flow"]
    mf["vectorized_vs_legacy"] = {
        n: ratio(rate, mf["legacy_items_per_second"].get(n))
        for n, rate in sorted(mf["vectorized_items_per_second"].items(),
                              key=lambda kv: int(kv[0]))
    }
    # Shared-nothing scaling: sharded[N] / (N * sharded[1]). With private
    # replicas there is no shared hot-path state, so any gap from 1.0 is
    # producer-side deal-out, memory bandwidth, or core oversubscription —
    # not coherence traffic.
    base = ips["sharded"].get("1")
    result["scaling_efficiency"] = {
        n: ratio(rate, int(n) * base) if base else None
        for n, rate in sorted(ips["sharded"].items(), key=lambda kv: int(kv[0]))
    }
    # On a single-CPU host every multi-threaded configuration timeslices one
    # core, so cross-thread ratios say nothing about the recorder. Mark them
    # informational (consumers and CI gates must skip them) rather than
    # letting a 1-core container look like a scaling regression.
    if raw["context"]["num_cpus"] == 1:
        result["informational_metrics"] = {
            "scaling_efficiency": "single-CPU host: threads timeslice one "
            "core, efficiency measures the scheduler",
            "sharded_vs_shared_8t": "single-CPU host: both recorders "
            "oversubscribe one core at 8 threads",
        }
        print("single-CPU host: scaling_efficiency and sharded_vs_shared_8t "
              "are informational (not gated)", file=sys.stderr)

    tmp_out = args.out + ".tmp"
    with open(tmp_out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    os.replace(tmp_out, args.out)
    print(json.dumps(result["speedup"], indent=2))
    print("million_flow vectorized_vs_legacy:",
          json.dumps(result["million_flow"]["vectorized_vs_legacy"]))
    print(f"wrote {args.out}")

    if not gating:
        print("non-Release build: gates skipped, output marked non-gating",
              file=sys.stderr)
        return 0

    failures = []
    # Acceptance gate: batching must never lose to the scalar loop. The k-ary
    # shape regressed to 0.84x once (prefetch staging on a cache-resident
    # sketch); this keeps that from coming back silently.
    kary = result["speedup"]["batch_vs_scalar_kary"]
    if kary is None or kary < args.kary_batch_gate:
        failures.append(f"batch_vs_scalar_kary = {kary} "
                        f"(< {args.kary_batch_gate})")
    # The vectorized index precomputation's single-sketch bar.
    rs64 = result["speedup"]["batch_vs_scalar_rs64"]
    if rs64 is None or rs64 < args.rs64_batch_gate:
        failures.append(f"batch_vs_scalar_rs64 = {rs64} "
                        f"(< {args.rs64_batch_gate})")
    # Million-flow ingest: vectorized indexing must beat the legacy path at
    # the largest flow count measured (TLB-stress regime).
    mf_speedups = result["million_flow"]["vectorized_vs_legacy"]
    if mf_speedups:
        top = max(mf_speedups, key=int)
        mf = mf_speedups[top]
        if mf is None or mf < args.million_flow_gate:
            failures.append(f"million_flow vectorized_vs_legacy[{top}] = "
                            f"{mf} (< {args.million_flow_gate})")
    else:
        failures.append("million_flow benchmarks missing from run")
    # Correctness rider: the shard/alert identity check must have run clean.
    alerts = result["million_flow"]["alerts"]
    if alerts is None or not alerts.get("all_match"):
        failures.append("million_flow_alerts: shard/legacy-index alert "
                        "streams not bit-identical (or check not run)")
    if failures:
        for f in failures:
            print(f"GATE FAILED: {f}", file=sys.stderr)
        return 1
    print(f"gates passed: batch_vs_scalar_kary >= {args.kary_batch_gate}, "
          f"batch_vs_scalar_rs64 >= {args.rs64_batch_gate}, "
          f"million_flow vectorized_vs_legacy >= {args.million_flow_gate}, "
          "million-flow alert streams bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
