#!/usr/bin/env python3
"""Runs the record_pipeline benchmark and distills BENCH_throughput.json.

Usage:
    python3 bench/run_record_pipeline.py [--build-dir build] [--out BENCH_throughput.json]

The output file records items/s (recordable packets per second) for the
serial path, the legacy mutex/condvar recorder, the lock-free shared-bank
pipeline, and the shared-nothing sharded recorder (ingest path: record +
drain, directly comparable to the pipeline numbers; the seal merge runs on
the epoch thread in production) at 1/2/4/8 requested threads, plus the
seal-time shard-merge rate (merges/s, a function of bank size not traffic),
scalar-vs-batch single-sketch update rates, the derived speedups the
acceptance gates care about:
    pipeline_vs_legacy_4t  >= 1.5 expected
    sharded_vs_shared_8t   >= 1.5 expected (on a multi-core host)
    batch_vs_scalar_rs64   >= 1.2 expected
    batch_vs_scalar_kary   >= 1.0 REQUIRED (gated here): update_batch must
        never lose to the scalar loop on any sketch shape
and scaling_efficiency: sharded[N] / (N * sharded[1]) per thread count —
1.0 is perfect shared-nothing scaling; the shared-bank pipeline cannot
approach it because every op is copied into every worker's ring.

The overload section covers the full OverlappedPipeline ingest path with and
without load shedding (BM_UnsheddedIngest / BM_OverloadedIngest):
    overload_vs_unshedded  >= 2.0 expected (shed ops cost one hash)
    sample_coverage        >= 1/64 (the default max_level=6 floor)
    close_stall_us         == 0 (epochs never bleed into ingest)
All numbers come from the same binary in the same run, on the same machine.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import check_release_build


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_throughput.json")
    parser.add_argument(
        "--min-time",
        default="1.0",
        help="google-benchmark --benchmark_min_time per case (seconds)",
    )
    parser.add_argument(
        "--kary-batch-gate",
        type=float,
        default=1.0,
        help="minimum batch_vs_scalar_kary speedup (default 1.0; CI smoke "
        "runs pass a small tolerance below parity for noisy runners)",
    )
    parser.add_argument(
        "--allow-non-release",
        action="store_true",
        help="run against a non-Release build anyway; output is marked "
        'non-gating ("gating": false) and all gates are skipped',
    )
    args = parser.parse_args()

    build_type, gating = check_release_build(args.build_dir,
                                             args.allow_non_release)

    binary = os.path.join(args.build_dir, "bench", "record_pipeline")
    if not os.path.exists(binary):
        print(f"error: {binary} not found — build the repo first", file=sys.stderr)
        return 1

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = tmp.name
    try:
        subprocess.run(
            [
                binary,
                f"--benchmark_min_time={args.min_time}",
                "--benchmark_format=json",
                f"--benchmark_out={raw_path}",
                "--benchmark_out_format=json",
            ],
            check=True,
        )
        with open(raw_path) as f:
            raw = json.load(f)
    finally:
        os.unlink(raw_path)

    items = {}
    counters = {}
    for bench in raw["benchmarks"]:
        if bench.get("run_type") == "aggregate":
            continue
        # Multithreaded recorder benches use UseRealTime(), which suffixes
        # the benchmark name; the rate is items per wall-clock second.
        name = bench["name"].removesuffix("/real_time")
        items[name] = bench.get("items_per_second")
        counters[name] = {
            k: bench[k]
            for k in ("close_stall_us", "sample_coverage", "shed_level_max")
            if k in bench
        }

    def threaded(prefix: str) -> dict:
        out = {}
        for name, rate in items.items():
            m = re.fullmatch(re.escape(prefix) + r"/(\d+)", name)
            if m:
                out[m.group(1)] = rate
        return out

    result = {
        "generated_by": "bench/run_record_pipeline.py",
        "benchmark": "bench/record_pipeline.cpp",
        "gating": gating,
        "context": {
            "date": raw["context"]["date"],
            "num_cpus": raw["context"]["num_cpus"],
            "mhz_per_cpu": raw["context"].get("mhz_per_cpu"),
            # The CMake cache, not google-benchmark's library_build_type:
            # the cache is the ground truth check_release_build gated on.
            "build_type": build_type,
        },
        "items_per_second": {
            "serial": items.get("BM_SerialRecord"),
            "legacy": threaded("BM_LegacyRecorder"),
            "pipeline": threaded("BM_PipelineRecorder"),
            "sharded": threaded("BM_ShardedRecorder"),
            "shard_merge": threaded("BM_ShardMerge"),
            "update_scalar_rs64": items.get("BM_UpdateScalarRS64"),
            "update_batch_rs64": items.get("BM_UpdateBatchRS64"),
            "update_scalar_kary": items.get("BM_UpdateScalarKary"),
            "update_batch_kary": items.get("BM_UpdateBatchKary"),
        },
        # Full-pipeline ingest under overload: offered packets/s sustained,
        # the per-interval shed coverage, and the close-stall backpressure
        # accrued over the whole run (must stay 0 — shedding exists so that
        # overload never reaches the epoch handoff).
        "overload": {
            "unshedded_items_per_second": items.get("BM_UnsheddedIngest"),
            "overloaded_items_per_second": items.get("BM_OverloadedIngest"),
            "unshedded": counters.get("BM_UnsheddedIngest"),
            "overloaded": counters.get("BM_OverloadedIngest"),
        },
    }

    def ratio(a, b):
        return round(a / b, 3) if a and b else None

    ips = result["items_per_second"]
    result["speedup"] = {
        "pipeline_vs_legacy_4t": ratio(
            ips["pipeline"].get("4"), ips["legacy"].get("4")
        ),
        "pipeline_vs_serial_4t": ratio(ips["pipeline"].get("4"), ips["serial"]),
        "sharded_vs_shared_8t": ratio(
            ips["sharded"].get("8"), ips["pipeline"].get("8")
        ),
        "sharded_vs_serial_8t": ratio(ips["sharded"].get("8"), ips["serial"]),
        "batch_vs_scalar_rs64": ratio(
            ips["update_batch_rs64"], ips["update_scalar_rs64"]
        ),
        "batch_vs_scalar_kary": ratio(
            ips["update_batch_kary"], ips["update_scalar_kary"]
        ),
        "overload_vs_unshedded": ratio(
            result["overload"]["overloaded_items_per_second"],
            result["overload"]["unshedded_items_per_second"],
        ),
    }
    # Shared-nothing scaling: sharded[N] / (N * sharded[1]). With private
    # replicas there is no shared hot-path state, so any gap from 1.0 is
    # producer-side deal-out, memory bandwidth, or core oversubscription —
    # not coherence traffic.
    base = ips["sharded"].get("1")
    result["scaling_efficiency"] = {
        n: ratio(rate, int(n) * base) if base else None
        for n, rate in sorted(ips["sharded"].items(), key=lambda kv: int(kv[0]))
    }

    tmp_out = args.out + ".tmp"
    with open(tmp_out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    os.replace(tmp_out, args.out)
    print(json.dumps(result["speedup"], indent=2))
    print(f"wrote {args.out}")

    if not gating:
        print("non-Release build: gates skipped, output marked non-gating",
              file=sys.stderr)
        return 0

    # Acceptance gate: batching must never lose to the scalar loop. The k-ary
    # shape regressed to 0.84x once (prefetch staging on a cache-resident
    # sketch); this keeps that from coming back silently.
    kary = result["speedup"]["batch_vs_scalar_kary"]
    if kary is None or kary < args.kary_batch_gate:
        print(f"GATE FAILED: batch_vs_scalar_kary = {kary} "
              f"(< {args.kary_batch_gate})", file=sys.stderr)
        return 1
    print(f"gates passed: batch_vs_scalar_kary >= {args.kary_batch_gate}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
