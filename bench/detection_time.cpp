// Sec. 5.5.3 reproduction (detection-time half): per-interval detection
// latency on the NU-like trace, plus the paper's stress test.
//
// Paper: 0.34 s average detection per 1-minute interval (std 0.64 s, max
// 12.91 s); stress test (trace compressed 60x, top-100 anomalies per
// interval) averages 35.61 s with max 46.90 s — still under the interval.
// We time HifindDetector::process per interval and, for the stress test,
// feed an entire hour of attack-rich traffic into single intervals.
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/table_printer.hpp"

namespace hifind::bench {
namespace {

struct LatencyStats {
  double mean_s{0}, std_s{0}, max_s{0};
  std::size_t intervals{0};
};

LatencyStats measure(const Scenario& scenario, std::uint32_t compress) {
  PipelineConfig pc = default_pipeline_config();
  if (compress > 1) {
    // The paper's stress mode caps work at the "top N anomalies" per
    // interval. We use N = 50 per stage: at N = 100 in a 2^12-bucket stage
    // the slack-1 search still visits ~10^8 nodes per inference (the
    // cross-product regime), which faithfully reproduces the paper's
    // tens-of-seconds stress numbers but makes a poor recurring benchmark.
    pc.detector.inference.max_heavy_per_stage = 50;
  }
  SketchBank bank(pc.bank);
  HifindDetector detector(pc.detector);
  IntervalClock clock(60u * compress);  // compress=60 packs 1h into 1 interval

  std::vector<double> times;
  std::uint64_t current = 0;
  bool any = false;
  auto close_interval = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    detector.process(bank, current);
    const auto t1 = std::chrono::steady_clock::now();
    times.push_back(std::chrono::duration<double>(t1 - t0).count());
    bank.clear();
  };
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) {
      close_interval();
      ++current;
    }
    bank.record(p);
  }
  close_interval();

  LatencyStats s;
  s.intervals = times.size();
  for (const double t : times) {
    s.mean_s += t;
    s.max_s = std::max(s.max_s, t);
  }
  s.mean_s /= static_cast<double>(times.size());
  for (const double t : times) {
    s.std_s += (t - s.mean_s) * (t - s.mean_s);
  }
  s.std_s = std::sqrt(s.std_s / static_cast<double>(times.size()));
  return s;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

void run() {
  const Scenario nu = build_scenario(nu_like_config(95, 1800));

  const LatencyStats normal = measure(nu, 1);
  // Stress: compress the trace so each detection interval carries 10x the
  // traffic and anomalies (the paper compressed 60x a day-long trace; ours
  // is 30 minutes, so 10x puts several attacks into every interval).
  const LatencyStats stress = measure(nu, 10);

  TablePrinter table("Sec 5.5.3. Detection time per interval (seconds)");
  table.header({"Run", "intervals", "mean", "stddev", "max"});
  table.row({"NU-like, 1-min intervals", std::to_string(normal.intervals),
             fmt(normal.mean_s), fmt(normal.std_s), fmt(normal.max_s)});
  table.row({"stress (10x compressed)", std::to_string(stress.intervals),
             fmt(stress.mean_s), fmt(stress.std_s), fmt(stress.max_s)});
  table.print(std::cout);
  std::cout << "\nPaper: 0.34 s mean / 12.91 s max per 1-min interval; "
               "35.61 s mean / 46.90 s max under 60x compression — detection "
               "always completes within the interval. The property to check "
               "here: max detection time << interval length.\n";
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
