// Ablation: what each false-positive reduction stage contributes.
//
// Runs the NU-like scenario with Phase 2 (2D classification) and each
// Phase-3 heuristic toggled individually, reporting final alert counts,
// ground-truth precision and event recall. The design claims to check:
//   - Phase 2 removes scan alerts caused by floods without losing real scans;
//   - each Phase-3 filter (ratio / service history / SYN surge /
//     persistence) removes a distinct benign-anomaly class;
//   - the full stack reaches ~perfect precision at small recall cost.
#include <iostream>

#include "bench_util.hpp"
#include "common/table_printer.hpp"

namespace hifind::bench {
namespace {

struct Variant {
  const char* name;
  HifindDetectorConfig config;
};

void run() {
  const Scenario scenario = build_scenario(nu_like_config(81, 900));
  const IntervalClock clock(60);

  const HifindDetectorConfig base = default_pipeline_config().detector;
  std::vector<Variant> variants;
  {
    Variant v{"full pipeline", base};
    variants.push_back(v);
  }
  {
    Variant v{"no phase 2 (2D)", base};
    v.config.enable_phase2 = false;
    variants.push_back(v);
  }
  {
    Variant v{"no phase 3 (all flood filters)", base};
    v.config.enable_phase3 = false;
    variants.push_back(v);
  }
  {
    Variant v{"no ratio filter", base};
    v.config.min_syn_ratio = 0.0;
    variants.push_back(v);
  }
  {
    Variant v{"no service-history filter", base};
    v.config.min_service_history = -1.0;
    variants.push_back(v);
  }
  {
    Variant v{"no SYN-surge filter", base};
    v.config.min_syn_surge_fraction = -1e9;
    variants.push_back(v);
  }
  {
    Variant v{"no persistence filter", base};
    v.config.min_persist_intervals = 1;
    variants.push_back(v);
  }

  TablePrinter table("Ablation: contribution of each FP-reduction stage "
                     "(NU-like trace)");
  table.header({"variant", "final alerts", "matched", "benign-cause",
                "unexplained", "precision", "event recall"});
  for (const Variant& v : variants) {
    PipelineConfig pc = default_pipeline_config();
    pc.detector = v.config;
    Pipeline pipeline(pc);
    const auto results = pipeline.run(scenario.trace);
    const EvaluationSummary s = evaluate(results, scenario.truth, clock);
    char precision[16], recall[16];
    std::snprintf(precision, sizeof(precision), "%.3f", s.precision());
    std::snprintf(recall, sizeof(recall), "%.3f", s.event_recall());
    table.row({v.name, std::to_string(s.alerts_total),
               std::to_string(s.alerts_matched),
               std::to_string(s.alerts_benign_cause),
               std::to_string(s.alerts_unexplained), precision, recall});
  }
  table.print(std::cout);
  std::cout << "\nReading: disabling a stage should raise benign-cause or "
               "unexplained alerts while recall stays ~flat; the full "
               "pipeline should dominate on precision.\n";
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
