// Table 9 reproduction: memory comparison under worst-case traffic
// (all-40-byte packets at full link utilization, every packet a distinct
// spoofed flow).
//
// Paper (bytes):
//                         2.5Gbps/1min  2.5Gbps/5min  10Gbps/1min  10Gbps/5min
//   HiFIND w/ sketch      13.2M         13.2M         13.2M        13.2M
//   HiFIND w/ complete    10.3G         51.6G         41.25G       206G
//   TRW                   5.63G         28G           22.5G        112.5G
//
// We print the same grid from the analytic worst-case model (per-entry costs
// documented in core/memory_model.hpp) plus the MEASURED size of our sketch
// bank in both hardware (32-bit counters, the paper's accounting) and
// software (doubles) form.
#include <iostream>

#include "common/table_printer.hpp"
#include "core/memory_model.hpp"
#include "detect/sketch_bank.hpp"

namespace hifind::bench {
namespace {

void run() {
  const SketchBank bank{SketchBankConfig{}};
  const double sketch_hw = static_cast<double>(bank.memory_bytes_hw());

  TablePrinter table("Table 9. Memory comparison (bytes), worst-case "
                     "40-byte-packet traffic");
  table.header({"Methods", "2.5G/1min", "2.5G/5min", "10G/1min",
                "10G/5min"});

  const WorstCaseTraffic grid[] = {
      {.link_gbps = 2.5, .window_minutes = 1},
      {.link_gbps = 2.5, .window_minutes = 5},
      {.link_gbps = 10, .window_minutes = 1},
      {.link_gbps = 10, .window_minutes = 5},
  };

  std::vector<std::string> sketch_row{"HiFIND w/ sketch"};
  std::vector<std::string> complete_row{"HiFIND w/ complete info"};
  std::vector<std::string> trw_row{"TRW"};
  for (const auto& t : grid) {
    sketch_row.push_back(format_bytes(sketch_hw));
    complete_row.push_back(
        format_bytes(static_cast<double>(complete_info_bytes(t))));
    trw_row.push_back(format_bytes(static_cast<double>(trw_bytes(t))));
  }
  table.row(sketch_row);
  table.row(complete_row);
  table.row(trw_row);
  table.print(std::cout);

  std::cout << "\nMeasured sketch-bank footprint: "
            << format_bytes(static_cast<double>(bank.memory_bytes_hw()))
            << " with 32-bit hardware counters (paper reports 13.2M), "
            << format_bytes(static_cast<double>(bank.memory_bytes()))
            << " as built in software (64-bit double counters).\n";
  std::cout << "Sketch memory is constant in link speed and window; the "
               "flow-table alternatives grow to tens/hundreds of GB.\n";
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
