// Overload soak: sustained attack-heavy bursts at a multiple of ring
// capacity through the overlapped pipeline with adaptive shedding, printing
// one JSON document with per-interval shed/stall/coverage telemetry.
// bench/run_overload_soak.py runs it in CI (smoke profile) and asserts the
// overload contract: shedding fires, coverage holds the configured floor,
// and close stall stays bounded while the offered load does not.
//
// Usage: overload_soak [intervals] [burst_ring_factor]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "detect/overlapped.hpp"
#include "detect/overload_injector.hpp"

namespace hifind {
namespace {

constexpr std::size_t kRing = 1024;

int run_soak(std::uint64_t intervals, double burst_ring_factor) {
  OverlappedPipelineConfig pc;
  // Full-size sketch bank: an undersized bank turns a spoofed-source flood
  // into false-heavy buckets whose reverse inference dominates the epoch —
  // the soak must measure overload handling, not sketch misconfiguration.
  pc.bank.seed = 42;
  pc.bank.twod.x_buckets = 1u << 10;
  pc.detector.interval_seconds = 60;
  pc.detector.syn_rate_threshold = 1.0;
  pc.detector.min_persist_intervals = 2;
  pc.record_threads = 2;
  pc.ring_capacity = kRing;
  // Budget at half the ring: the burst overshoots it by 2 * factor, so the
  // shedder escalates hard every attack interval.
  pc.shed.budget_ops_per_interval = kRing / 2;

  OverloadScenarioConfig sc;
  sc.kind = OverloadScenarioConfig::Kind::kBurstBeyondRings;
  sc.intervals = intervals;
  sc.ring_capacity = kRing;
  sc.burst_ring_factor = burst_ring_factor;

  OverloadInjector injector(sc);
  OverlappedPipeline pipe(pc);
  const OverloadRun run = injector.run(pipe);

  std::printf("{\n");
  std::printf("  \"scenario\": \"%s\",\n", overload_scenario_name(sc.kind));
  std::printf("  \"intervals\": %llu,\n",
              static_cast<unsigned long long>(sc.intervals));
  std::printf("  \"ring_capacity\": %zu,\n", kRing);
  std::printf("  \"burst_ring_factor\": %g,\n", sc.burst_ring_factor);
  std::printf("  \"shed_budget_ops\": %llu,\n",
              static_cast<unsigned long long>(
                  pc.shed.budget_ops_per_interval));
  std::printf("  \"coverage_floor\": %g,\n", pc.shed.min_coverage());
  std::printf("  \"total_close_stall_us\": %llu,\n",
              static_cast<unsigned long long>(run.total_close_stall_us));
  std::printf("  \"per_interval\": [\n");
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    const IntervalResult& r = run.results[i];
    const OverloadIntervalStats& s = run.intervals[i];
    std::printf(
        "    {\"interval\": %llu, \"attack_syns\": %llu, \"shed\": %s, "
        "\"sample_coverage\": %.6f, \"shed_level_max\": %u, "
        "\"close_stall_us\": %llu, \"final_alerts\": %zu, "
        "\"refined_alerts\": %zu, \"confirmed\": %llu, \"killed\": %llu, "
        "\"ring_full_spins\": %llu}%s\n",
        static_cast<unsigned long long>(r.interval),
        static_cast<unsigned long long>(s.attack_syns),
        r.coverage.shed ? "true" : "false", r.coverage.sample_coverage,
        r.coverage.shed_level_max,
        static_cast<unsigned long long>(s.close_stall_us), r.final.size(),
        r.refined.size(),
        static_cast<unsigned long long>(r.refinement.confirmed),
        static_cast<unsigned long long>(r.refinement.killed),
        static_cast<unsigned long long>(r.epoch.ring_full_spins),
        i + 1 < run.results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace hifind

int main(int argc, char** argv) {
  const std::uint64_t intervals =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 24;
  const double burst_ring_factor = argc > 2 ? std::atof(argv[2]) : 4.0;
  if (intervals == 0 || burst_ring_factor <= 0.0) {
    std::fprintf(stderr,
                 "usage: overload_soak [intervals>0] [burst_ring_factor>0]\n");
    return 2;
  }
  return hifind::run_soak(intervals, burst_ring_factor);
}
