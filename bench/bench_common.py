"""Shared plumbing for the bench runner scripts.

Build-type gating: committed BENCH_*.json numbers are meaningless from a
Debug or unspecified build (asserts, -O0, iterator debugging), so every
runner refuses to run against a non-Release build tree unless the caller
explicitly opts in — and opted-in results are loudly marked non-gating so
CI and reviewers cannot mistake them for real numbers.
"""

import os
import sys

RELEASE_BUILD_TYPES = {"Release", "RelWithDebInfo", "MinSizeRel"}


def cmake_build_type(build_dir: str):
    """Reads CMAKE_BUILD_TYPE out of the build tree's CMakeCache.txt (the
    ground truth for how the binaries in it were compiled)."""
    path = os.path.join(build_dir, "CMakeCache.txt")
    try:
        with open(path) as f:
            for line in f:
                if line.startswith("CMAKE_BUILD_TYPE:"):
                    return line.split("=", 1)[1].strip() or None
    except OSError:
        return None
    return None


def check_release_build(build_dir: str, allow_non_release: bool):
    """Returns (build_type, gating). Exits with an error unless the build is
    a Release-family build or the caller passed --allow-non-release (in
    which case gating is False and the caller must mark its output)."""
    build_type = cmake_build_type(build_dir)
    if build_type in RELEASE_BUILD_TYPES:
        return build_type, True
    if allow_non_release:
        print(
            f"warning: benchmarking a non-Release build "
            f"(CMAKE_BUILD_TYPE={build_type!r}); results will be marked "
            'non-gating ("gating": false) and must not be committed as '
            "BENCH_*.json",
            file=sys.stderr,
        )
        return build_type, False
    print(
        f"error: refusing to benchmark a non-Release build tree "
        f"({build_dir!r} has CMAKE_BUILD_TYPE={build_type!r}).\n"
        "Configure with -DCMAKE_BUILD_TYPE=Release (or RelWithDebInfo/"
        "MinSizeRel), or pass --allow-non-release to record loudly-marked "
        "non-gating numbers.",
        file=sys.stderr,
    )
    sys.exit(1)
