// Ablation: detection-threshold sweep.
//
// The paper fixes the threshold at 1 un-responded SYN per second (Sec. 5.1)
// for both datasets. This sweep shows the trade-off that sits behind the
// choice: lower thresholds catch slower scans (higher event recall) but let
// sketch noise and benign failure bursts through (lower precision) and blow
// up inference work; higher thresholds miss the stealthy tail the paper's
// Table 5 discussion acknowledges losing to TRW.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "common/table_printer.hpp"

namespace hifind::bench {
namespace {

void run() {
  const Scenario scenario = build_scenario(nu_like_config(85, 900));
  const IntervalClock clock(60);

  TablePrinter table("Ablation: threshold sweep (NU-like trace; paper uses "
                     "1.0 un-responded SYN/s)");
  table.header({"threshold (SYN/s)", "final alerts", "precision",
                "event recall", "run time (s)"});
  // Thresholds below ~0.5/s make nearly every bursty benign key anomalous;
  // even in top-N mode the slack-1 search over hundreds of heavy buckets per
  // 2^12-bucket stage is intractable (cross-product growth — see DESIGN.md),
  // which is itself a finding: the paper's 1/s threshold is also what keeps
  // inference cheap.
  for (const double t : {0.5, 1.0, 2.0, 4.0}) {
    PipelineConfig pc = default_pipeline_config();
    pc.detector.syn_rate_threshold = t;
    // Top-anomalies mode keeps inference cost proportional at aggressive
    // thresholds (how a real deployment would run them).
    pc.detector.inference.max_heavy_per_stage = 100;
    Pipeline pipeline(pc);
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = pipeline.run(scenario.trace);
    const auto t1 = std::chrono::steady_clock::now();
    const EvaluationSummary s = evaluate(results, scenario.truth, clock);
    char tc[16], prec[16], rec[16], secs[16];
    std::snprintf(tc, sizeof(tc), "%.2f", t);
    std::snprintf(prec, sizeof(prec), "%.3f", s.precision());
    std::snprintf(rec, sizeof(rec), "%.3f", s.event_recall());
    std::snprintf(secs, sizeof(secs), "%.1f",
                  std::chrono::duration<double>(t1 - t0).count());
    table.row({tc, std::to_string(s.alerts_total), prec, rec, secs});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
