#!/usr/bin/env python3
"""Runs the overload soak and asserts the overload-resilience contract.

Usage:
    python3 bench/run_overload_soak.py [--build-dir build] [--intervals 24]
        [--burst-ring-factor 4.0] [--out overload_soak.json]
        [--max-stall-ms 5000]

Drives bench/overload_soak (attack-heavy bursts at a multiple of ring
capacity through the OverlappedPipeline with adaptive shedding) and fails
unless:
  * shedding FIRED on every attack interval after warm-up (the offered load
    is a hard multiple of the per-interval budget, so a quiet shedder means
    the trigger is broken);
  * per-interval sample_coverage never fell below the configured floor
    (2^-max_level — the shedder refuses to go blinder than that);
  * total close stall stayed under --max-stall-ms (overload must be absorbed
    by sampling, not by backpressuring the ingest thread);
  * the flood was still DETECTED: confirmed refinement verdicts appear once
    the exact-flow table has full-interval evidence.
The raw per-interval JSON is written to --out for CI artifact upload.
"""

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import check_release_build


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--intervals", type=int, default=24)
    parser.add_argument("--burst-ring-factor", type=float, default=4.0)
    parser.add_argument("--out", default="overload_soak.json")
    parser.add_argument("--max-stall-ms", type=float, default=5000.0)
    parser.add_argument(
        "--allow-non-release",
        action="store_true",
        help="run against a non-Release build anyway; output is marked "
        'non-gating ("gating": false) and the timing/coverage gates are '
        "skipped",
    )
    args = parser.parse_args()

    build_type, gating = check_release_build(args.build_dir,
                                             args.allow_non_release)

    binary = os.path.join(args.build_dir, "bench", "overload_soak")
    if not os.path.exists(binary):
        print(f"error: {binary} not found — build the repo first", file=sys.stderr)
        return 1

    proc = subprocess.run(
        [binary, str(args.intervals), str(args.burst_ring_factor)],
        check=True,
        capture_output=True,
        text=True,
    )
    report = json.loads(proc.stdout)
    report["gating"] = gating
    report["build_type"] = build_type
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")

    floor = report["coverage_floor"]
    per_interval = report["per_interval"]
    failures = []

    attack_intervals = [s for s in per_interval if s["attack_syns"] > 0]
    if not attack_intervals:
        failures.append("no attack intervals ran — scenario misconfigured")
    unshed = [s["interval"] for s in attack_intervals if not s["shed"]]
    if unshed:
        failures.append(
            f"shedder never fired on attack intervals {unshed} despite "
            f"{args.burst_ring_factor}x-ring bursts"
        )

    low = [
        (s["interval"], s["sample_coverage"])
        for s in per_interval
        if s["sample_coverage"] < floor
    ]
    if low:
        failures.append(f"sample_coverage fell below floor {floor}: {low}")

    stall_ms = report["total_close_stall_us"] / 1000.0
    if stall_ms > args.max_stall_ms:
        failures.append(
            f"total close stall {stall_ms:.1f} ms exceeds "
            f"--max-stall-ms {args.max_stall_ms}"
        )

    confirmed = sum(s["confirmed"] for s in per_interval)
    if confirmed == 0:
        failures.append(
            "no refinement-confirmed alerts in the whole soak — the flood "
            "was shed into invisibility or refinement never ran"
        )

    summary = {
        "intervals": len(per_interval),
        "attack_intervals": len(attack_intervals),
        "shed_level_max": max(s["shed_level_max"] for s in per_interval),
        "min_sample_coverage": min(s["sample_coverage"] for s in per_interval),
        "coverage_floor": floor,
        "total_close_stall_ms": round(stall_ms, 3),
        "confirmed_alerts": confirmed,
        "ring_full_spins": sum(s["ring_full_spins"] for s in per_interval),
    }
    print(json.dumps(summary, indent=2))

    if not gating:
        print("non-Release build: gates skipped, output marked non-gating",
              file=sys.stderr)
        return 0

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    print("overload soak: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
