// Table 4 reproduction: detection results under three phases, plus the
// Sec. 5.4 backscatter validation of the final SYN-flooding detections.
//
// Paper (alert counts over the trace):
//            Phase1(raw)  Phase2(2D)  Phase3(flood heuristics)
//   NU   flood   157          157         32
//        Hscan   988          936         936
//        Vscan    73           19         19
//   LBL  flood    35           35          0
//        Hscan   736          699        699
//        Vscan    40            1          1
//
// The shape to reproduce: Phase 2 cuts scan FPs (especially Vscan), Phase 3
// cuts flood FPs (to zero on the flood-free LBL-like trace).
#include <iostream>
#include <unordered_map>

#include "baseline/backscatter.hpp"
#include "bench_util.hpp"
#include "common/table_printer.hpp"

namespace hifind::bench {
namespace {

struct DataSetResult {
  std::string name;
  std::vector<IntervalResult> results;
  const Scenario* scenario;
};

void add_rows(TablePrinter& table, const DataSetResult& d) {
  const struct {
    const char* label;
    AttackType type;
  } kRows[] = {{"SYN flooding", AttackType::kSynFlooding},
               {"Hscan", AttackType::kHorizontalScan},
               {"Vscan", AttackType::kVerticalScan}};
  for (const auto& row : kRows) {
    const PhaseCounts c = count_phases(d.results, row.type);
    table.row({d.name, row.label, std::to_string(c.raw),
               std::to_string(c.after_2d), std::to_string(c.final)});
  }
}

/// Sec. 5.4 validation: for each distinct final flood victim, test the
/// un-responded SYN sources with the backscatter uniformity validator.
void validate_floods(const DataSetResult& d) {
  std::unordered_map<std::uint64_t, bool> victims;  // key -> validated
  for (const auto& r : d.results) {
    for (const auto& a : r.final) {
      if (a.type == AttackType::kSynFlooding) victims[a.key] = false;
    }
  }
  std::size_t validated = 0;
  for (auto& [key, ok] : victims) {
    BackscatterValidator v;
    const IPv4 dip = unpack_key_ip(key);
    const std::uint16_t dport = unpack_key_port(key);
    for (const auto& p : d.scenario->trace.packets()) {
      if (p.is_syn() && p.dip == dip && p.dport == dport) {
        v.add_source(p.sip);
      }
    }
    ok = v.verdict().spoofed_uniform;
    validated += ok ? 1 : 0;
  }
  std::cout << d.name << ": " << victims.size()
            << " distinct flood victims detected; " << validated
            << " validated as spoofed-uniform by backscatter "
            << "(non-spoofed floods legitimately fail the uniformity "
               "test).\n";
}

void run() {
  const Scenario nu = build_scenario(nu_like_config(11, 1800));
  const Scenario lbl = build_scenario(lbl_like_config(12, 1800));

  Pipeline nu_pipe(default_pipeline_config());
  Pipeline lbl_pipe(default_pipeline_config());
  DataSetResult nu_res{"NU-like", nu_pipe.run(nu.trace), &nu};
  DataSetResult lbl_res{"LBL-like", lbl_pipe.run(lbl.trace), &lbl};

  TablePrinter table("Table 4. Detection results under three phases");
  table.header({"Traces", "Attack type", "Phase1: Raw", "Phase2: Port scan",
                "Phase3: Flooding"});
  add_rows(table, nu_res);
  add_rows(table, lbl_res);
  table.print(std::cout);

  std::cout << "\nGround-truth accuracy (final phase):\n";
  for (const auto* d : {&nu_res, &lbl_res}) {
    const Scenario& s = d->name == "NU-like" ? nu : lbl;
    const EvaluationSummary sum =
        evaluate(d->results, s.truth, IntervalClock(60));
    std::cout << "  " << d->name << ": " << sum.alerts_matched << "/"
              << sum.alerts_total << " alerts explained by injected attacks, "
              << sum.alerts_benign_cause << " by benign anomalies, "
              << sum.alerts_unexplained << " unexplained; event recall "
              << sum.attack_events_detected << "/" << sum.attack_events
              << ".\n";
  }

  std::cout << "\nSec 5.4 backscatter validation of detected floods:\n";
  validate_floods(nu_res);
  validate_floods(lbl_res);
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
