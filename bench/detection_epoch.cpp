// Interval-close (detection-epoch) latency bench.
//
// Replays a NU-like scenario and times HifindDetector::process per interval
// under several epoch configurations, against an in-bench reconstruction of
// the pre-fusion serial epoch (copy-based forecaster steps, separate
// heavy-bucket scan, serial inferences). Emits one JSON object on stdout;
// bench/run_detection_epoch.py wraps it into BENCH_detect_epoch.json.
//
// Fairness notes, all of which bias the comparison AGAINST the fused epoch:
//  * the legacy path stops after the three inferences (the set logic and
//    phase 2/3 screens are excluded), while the measured process() runs the
//    complete epoch through phase 3;
//  * the legacy forecaster's accumulate/scale calls go through the same
//    runtime-dispatched SIMD kernels as everything else, so the baseline
//    already enjoys the vector backend ("legacy_scalar" additionally pins
//    the scalar backend, approximating the seed build's plain loops).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/interval.hpp"
#include "detect/hifind.hpp"
#include "detect/sketch_bank.hpp"
#include "sketch/reverse_inference.hpp"
#include "sketch/simd_ops.hpp"

namespace hifind::bench {
namespace {

/// The seed's EWMA forecaster, kept verbatim as the baseline: every step
/// copies the observed sketch for the error, then rolls the forecast with a
/// scale and an accumulate pass (3 full counter traversals + an allocation,
/// vs the fused kernel's single pass).
template <class SketchT>
class LegacyEwmaForecaster {
 public:
  explicit LegacyEwmaForecaster(double alpha) : alpha_(alpha) {}

  std::optional<SketchT> step(const SketchT& observed) {
    if (!forecast_) {
      forecast_.emplace(observed);
      return std::nullopt;
    }
    SketchT error(observed);
    error.accumulate(*forecast_, -1.0);
    forecast_->scale(1.0 - alpha_);
    forecast_->accumulate(observed, alpha_);
    return error;
  }

 private:
  double alpha_;
  std::optional<SketchT> forecast_;
};

/// The pre-fusion serial epoch: 7 copy-based forecaster steps, then for each
/// RS error a full heavy_buckets counter scan + verified inference, serially.
class LegacyEpoch {
 public:
  explicit LegacyEpoch(const HifindDetectorConfig& config)
      : config_(config),
        f_sip_dport_(config.ewma_alpha),
        f_dip_dport_(config.ewma_alpha),
        f_sip_dip_(config.ewma_alpha),
        fv_sip_dport_(config.ewma_alpha),
        fv_dip_dport_(config.ewma_alpha),
        fv_sip_dip_(config.ewma_alpha),
        f_os_(config.ewma_alpha) {}

  /// Returns the number of inferred keys (kept live so nothing is optimized
  /// away), or -1 on a warm-up interval.
  long close(const SketchBank& bank) {
    const double t = config_.interval_threshold();
    auto e_sip_dport = f_sip_dport_.step(bank.rs_sip_dport());
    auto e_dip_dport = f_dip_dport_.step(bank.rs_dip_dport());
    auto e_sip_dip = f_sip_dip_.step(bank.rs_sip_dip());
    auto ev_sip_dport = fv_sip_dport_.step(bank.verif_sip_dport());
    auto ev_dip_dport = fv_dip_dport_.step(bank.verif_dip_dport());
    auto ev_sip_dip = fv_sip_dip_.step(bank.verif_sip_dip());
    auto e_os = f_os_.step(bank.os_dip_dport());
    if (!e_sip_dport || !e_dip_dport || !e_sip_dip) return -1;
    long keys = 0;
    keys += infer(*e_dip_dport, *ev_dip_dport, t);
    keys += infer(*e_sip_dip, *ev_sip_dip, t);
    keys += infer(*e_sip_dport, *ev_sip_dport, t);
    return keys;
  }

 private:
  long infer(const ReversibleSketch& error, const KarySketch& verif_error,
             double threshold) {
    InferenceOptions options = config_.inference;
    options.verifier = [&verif_error, threshold](std::uint64_t key, double) {
      return verif_error.estimate(key) >= threshold;
    };
    return static_cast<long>(
        infer_heavy_keys(error, threshold, options).keys.size());
  }

  HifindDetectorConfig config_;
  LegacyEwmaForecaster<ReversibleSketch> f_sip_dport_;
  LegacyEwmaForecaster<ReversibleSketch> f_dip_dport_;
  LegacyEwmaForecaster<ReversibleSketch> f_sip_dip_;
  LegacyEwmaForecaster<KarySketch> fv_sip_dport_;
  LegacyEwmaForecaster<KarySketch> fv_dip_dport_;
  LegacyEwmaForecaster<KarySketch> fv_sip_dip_;
  LegacyEwmaForecaster<KarySketch> f_os_;
};

struct CloseStats {
  double p50_ms{0}, p99_ms{0}, mean_ms{0};
  std::size_t intervals{0};
  std::size_t final_alerts{0};  ///< 0 for the legacy path (no phases run)
};

double percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

CloseStats finish(std::vector<double>& times_ms, std::size_t alerts) {
  // Drop the (fast) warm-up closes so the percentiles describe full epochs.
  if (times_ms.size() > 2) times_ms.erase(times_ms.begin(), times_ms.begin() + 2);
  CloseStats s;
  s.intervals = times_ms.size();
  for (const double t : times_ms) s.mean_ms += t;
  s.mean_ms /= static_cast<double>(times_ms.size());
  s.p50_ms = percentile(times_ms, 0.50);
  s.p99_ms = percentile(times_ms, 0.99);
  s.final_alerts = alerts;
  return s;
}

/// Replays the scenario, timing each interval close with `close`.
template <class CloseFn>
CloseStats replay(const Scenario& scenario, const SketchBankConfig& bank_cfg,
                  std::uint32_t interval_seconds, CloseFn&& close) {
  SketchBank bank(bank_cfg);
  IntervalClock clock(interval_seconds);
  std::vector<double> times_ms;
  std::size_t alerts = 0;
  std::uint64_t current = 0;
  bool any = false;
  auto close_interval = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    alerts += close(bank, current);
    const auto t1 = std::chrono::steady_clock::now();
    times_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    bank.clear();
  };
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) {
      close_interval();
      ++current;
    }
    bank.record(p);
  }
  close_interval();
  return finish(times_ms, alerts);
}

CloseStats run_detector(const Scenario& scenario, const PipelineConfig& pc,
                        std::size_t epoch_threads) {
  HifindDetectorConfig dc = pc.detector;
  dc.epoch_threads = epoch_threads;
  HifindDetector detector(dc);
  return replay(scenario, pc.bank, dc.interval_seconds,
                [&](const SketchBank& bank, std::uint64_t interval) {
                  return detector.process(bank, interval).final.size();
                });
}

CloseStats run_legacy(const Scenario& scenario, const PipelineConfig& pc) {
  LegacyEpoch epoch(pc.detector);
  return replay(scenario, pc.bank, pc.detector.interval_seconds,
                [&](const SketchBank& bank, std::uint64_t) {
                  // Key count is not comparable to alert counts; report 0.
                  (void)epoch.close(bank);
                  return std::size_t{0};
                });
}

void emit(const char* name, const CloseStats& s, bool last = false) {
  std::printf(
      "    \"%s\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"mean_ms\": %.4f, "
      "\"intervals\": %zu, \"final_alerts\": %zu}%s\n",
      name, s.p50_ms, s.p99_ms, s.mean_ms, s.intervals, s.final_alerts,
      last ? "" : ",");
}

int run() {
  const PipelineConfig pc = default_pipeline_config();
  const Scenario scenario = build_scenario(nu_like_config(7, 3600));

  // Seed-faithful baseline: the legacy epoch on the scalar backend (the seed
  // had no runtime-dispatched kernels at all).
  simd::set_force_scalar(true);
  const CloseStats legacy_scalar = run_legacy(scenario, pc);
  simd::set_force_scalar(false);
  const CloseStats legacy = run_legacy(scenario, pc);

  const CloseStats fused_1t = run_detector(scenario, pc, 1);
  const CloseStats fused_2t = run_detector(scenario, pc, 2);
  const CloseStats fused_4t = run_detector(scenario, pc, 4);
  const CloseStats fused_8t = run_detector(scenario, pc, 8);

  // Determinism sanity: identical alert streams at every thread count.
  const bool alerts_match = fused_1t.final_alerts == fused_2t.final_alerts &&
                            fused_1t.final_alerts == fused_4t.final_alerts &&
                            fused_1t.final_alerts == fused_8t.final_alerts;

  std::printf("{\n");
  std::printf("  \"simd_backend\": \"%s\",\n", simd::active_backend());
  std::printf("  \"alerts_match_across_threads\": %s,\n",
              alerts_match ? "true" : "false");
  std::printf("  \"configs\": {\n");
  emit("legacy_scalar", legacy_scalar);
  emit("legacy", legacy);
  emit("fused_1t", fused_1t);
  emit("fused_2t", fused_2t);
  emit("fused_4t", fused_4t);
  emit("fused_8t", fused_8t, /*last=*/true);
  std::printf("  }\n}\n");
  return alerts_match ? 0 : 1;
}

}  // namespace
}  // namespace hifind::bench

int main() { return hifind::bench::run(); }
