// Interval-close (detection-epoch) latency bench.
//
// Replays a NU-like scenario and times the INGEST-BLOCKING portion of each
// interval close under several pipeline configurations, against an in-bench
// reconstruction of the pre-fusion serial epoch (copy-based forecaster
// steps, separate heavy-bucket scan, serial inferences). For the fused
// variants that is all of process(); for the double-buffered overlapped
// variants it is close_interval() only — the epoch runs off the ingest path
// and its duration is reported separately. Emits one JSON object on stdout;
// bench/run_detection_epoch.py wraps it into BENCH_detect_epoch.json.
//
// Fairness notes, all of which bias the comparison AGAINST the fused epoch:
//  * the legacy path stops after the three inferences (the set logic and
//    phase 2/3 screens are excluded), while the measured process() runs the
//    complete epoch through phase 3;
//  * the legacy forecaster's accumulate/scale calls go through the same
//    runtime-dispatched SIMD kernels as everything else, so the baseline
//    already enjoys the vector backend ("legacy_scalar" additionally pins
//    the scalar backend, approximating the seed build's plain loops).
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/interval.hpp"
#include "detect/hifind.hpp"
#include "detect/overlapped.hpp"
#include "detect/sketch_bank.hpp"
#include "sketch/reverse_inference.hpp"
#include "sketch/simd_ops.hpp"

namespace hifind::bench {
namespace {

/// The seed's EWMA forecaster, kept verbatim as the baseline: every step
/// copies the observed sketch for the error, then rolls the forecast with a
/// scale and an accumulate pass (3 full counter traversals + an allocation,
/// vs the fused kernel's single pass).
template <class SketchT>
class LegacyEwmaForecaster {
 public:
  explicit LegacyEwmaForecaster(double alpha) : alpha_(alpha) {}

  std::optional<SketchT> step(const SketchT& observed) {
    if (!forecast_) {
      forecast_.emplace(observed);
      return std::nullopt;
    }
    SketchT error(observed);
    error.accumulate(*forecast_, -1.0);
    forecast_->scale(1.0 - alpha_);
    forecast_->accumulate(observed, alpha_);
    return error;
  }

 private:
  double alpha_;
  std::optional<SketchT> forecast_;
};

/// The pre-fusion serial epoch: 7 copy-based forecaster steps, then for each
/// RS error a full heavy_buckets counter scan + verified inference, serially.
class LegacyEpoch {
 public:
  explicit LegacyEpoch(const HifindDetectorConfig& config)
      : config_(config),
        f_sip_dport_(config.ewma_alpha),
        f_dip_dport_(config.ewma_alpha),
        f_sip_dip_(config.ewma_alpha),
        fv_sip_dport_(config.ewma_alpha),
        fv_dip_dport_(config.ewma_alpha),
        fv_sip_dip_(config.ewma_alpha),
        f_os_(config.ewma_alpha) {}

  /// Returns the number of inferred keys (kept live so nothing is optimized
  /// away), or -1 on a warm-up interval.
  long close(const SketchBank& bank) {
    const double t = config_.interval_threshold();
    auto e_sip_dport = f_sip_dport_.step(bank.rs_sip_dport());
    auto e_dip_dport = f_dip_dport_.step(bank.rs_dip_dport());
    auto e_sip_dip = f_sip_dip_.step(bank.rs_sip_dip());
    auto ev_sip_dport = fv_sip_dport_.step(bank.verif_sip_dport());
    auto ev_dip_dport = fv_dip_dport_.step(bank.verif_dip_dport());
    auto ev_sip_dip = fv_sip_dip_.step(bank.verif_sip_dip());
    auto e_os = f_os_.step(bank.os_dip_dport());
    if (!e_sip_dport || !e_dip_dport || !e_sip_dip) return -1;
    long keys = 0;
    keys += infer(*e_dip_dport, *ev_dip_dport, t);
    keys += infer(*e_sip_dip, *ev_sip_dip, t);
    keys += infer(*e_sip_dport, *ev_sip_dport, t);
    return keys;
  }

 private:
  long infer(const InvertibleSketch& error, const KarySketch& verif_error,
             double threshold) {
    InferenceOptions options = config_.inference;
    options.verifier = [&verif_error, threshold](std::uint64_t key, double) {
      return verif_error.estimate(key) >= threshold;
    };
    return static_cast<long>(
        infer_heavy_keys(error, threshold, options).keys.size());
  }

  HifindDetectorConfig config_;
  LegacyEwmaForecaster<InvertibleSketch> f_sip_dport_;
  LegacyEwmaForecaster<InvertibleSketch> f_dip_dport_;
  LegacyEwmaForecaster<InvertibleSketch> f_sip_dip_;
  LegacyEwmaForecaster<KarySketch> fv_sip_dport_;
  LegacyEwmaForecaster<KarySketch> fv_dip_dport_;
  LegacyEwmaForecaster<KarySketch> fv_sip_dip_;
  LegacyEwmaForecaster<KarySketch> f_os_;
};

struct CloseStats {
  double p50_ms{0}, p99_ms{0}, mean_ms{0};
  std::size_t intervals{0};
  std::size_t final_alerts{0};  ///< 0 for the legacy path (no phases run)
  std::size_t epoch_threads{0};  ///< detector pool threads for this variant
  /// Overlapped pipeline only: the epoch's own duration (it runs off the
  /// ingest path, so it is NOT part of the close percentiles above) and the
  /// total backpressure close_interval() absorbed waiting for a prior epoch.
  double epoch_p50_ms{0}, epoch_p99_ms{0};
  std::uint64_t close_stall_us{0};
  bool overlapped{false};
  /// Total streaming-search work units across the run (the calibration
  /// datum behind EpochBudget::work_units_per_ms).
  std::size_t inference_work{0};
};

double percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

CloseStats finish(std::vector<double>& times_ms, std::size_t alerts) {
  // Drop the (fast) warm-up closes so the percentiles describe full epochs.
  if (times_ms.size() > 2) times_ms.erase(times_ms.begin(), times_ms.begin() + 2);
  CloseStats s;
  s.intervals = times_ms.size();
  for (const double t : times_ms) s.mean_ms += t;
  s.mean_ms /= static_cast<double>(times_ms.size());
  s.p50_ms = percentile(times_ms, 0.50);
  s.p99_ms = percentile(times_ms, 0.99);
  s.final_alerts = alerts;
  return s;
}

/// Replays the scenario, timing each interval close with `close`.
template <class CloseFn>
CloseStats replay(const Scenario& scenario, const SketchBankConfig& bank_cfg,
                  std::uint32_t interval_seconds, CloseFn&& close) {
  SketchBank bank(bank_cfg);
  IntervalClock clock(interval_seconds);
  std::vector<double> times_ms;
  std::size_t alerts = 0;
  std::uint64_t current = 0;
  bool any = false;
  auto close_interval = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    alerts += close(bank, current);
    const auto t1 = std::chrono::steady_clock::now();
    times_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    bank.clear();
  };
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) {
      close_interval();
      ++current;
    }
    bank.record(p);
  }
  close_interval();
  return finish(times_ms, alerts);
}

CloseStats run_detector(const Scenario& scenario, const PipelineConfig& pc,
                        std::size_t epoch_threads,
                        const EpochBudget& budget = {}) {
  HifindDetectorConfig dc = pc.detector;
  dc.epoch_threads = epoch_threads;
  dc.budget = budget;
  HifindDetector detector(dc);
  std::size_t work = 0;
  CloseStats s = replay(scenario, pc.bank, dc.interval_seconds,
                        [&](const SketchBank& bank, std::uint64_t interval) {
                          const IntervalResult r =
                              detector.process(bank, interval);
                          work += r.epoch.inference_work;
                          return r.final.size();
                        });
  s.epoch_threads = epoch_threads;
  s.inference_work = work;
  return s;
}

/// Replays the scenario through the double-buffered pipeline. The close
/// percentiles time close_interval() ONLY — the ingest-blocking seal. The
/// epoch itself runs in the background; the replay (which has no line time)
/// then waits for it OUTSIDE the timed region, modeling the interval's worth
/// of recording a live deployment does while the epoch runs. That wait is
/// reported separately as the epoch duration, and any time a close DID have
/// to wait for a straggling epoch shows up in close_stall_us.
CloseStats run_overlapped(const Scenario& scenario, const PipelineConfig& pc,
                          unsigned record_threads, std::size_t epoch_threads) {
  OverlappedPipelineConfig cfg;
  cfg.bank = pc.bank;
  cfg.detector = pc.detector;
  cfg.detector.epoch_threads = epoch_threads;
  cfg.record_threads = record_threads;
  OverlappedPipeline pipe(cfg);
  IntervalClock clock(cfg.detector.interval_seconds);
  std::vector<double> close_ms;
  std::vector<double> epoch_ms;
  std::uint64_t current = 0;
  bool any = false;
  auto close_one = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    pipe.close_interval();
    const auto t1 = std::chrono::steady_clock::now();
    pipe.wait_epoch_idle();
    const auto t2 = std::chrono::steady_clock::now();
    close_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    epoch_ms.push_back(
        std::chrono::duration<double, std::milli>(t2 - t1).count());
  };
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) {
      close_one();
      ++current;
    }
    pipe.offer(p);
  }
  close_one();
  pipe.wait_epoch_idle();
  std::size_t alerts = 0;
  std::size_t work = 0;
  for (const IntervalResult& r : pipe.take_results()) {
    alerts += r.final.size();
    work += r.epoch.inference_work;
  }
  CloseStats s = finish(close_ms, alerts);
  if (epoch_ms.size() > 2) {
    epoch_ms.erase(epoch_ms.begin(), epoch_ms.begin() + 2);
  }
  s.epoch_p50_ms = percentile(epoch_ms, 0.50);
  s.epoch_p99_ms = percentile(epoch_ms, 0.99);
  s.close_stall_us = pipe.close_stall_us();
  s.epoch_threads = epoch_threads;
  s.overlapped = true;
  s.inference_work = work;
  return s;
}

// ---- Per-backend reversal ablation ---------------------------------------
//
// Times REVERSE alone — begin/run_chunk/take_result over the three RS error
// sketches, verifier included — per interval, on an attack-heavy scenario,
// once per backend. The accuracy columns come from a separate full-detector
// run on the same scenario scored against the ground-truth ledger, so the
// latency numbers are not polluted by forecaster or phase-2/3 work and the
// recall numbers are end-to-end.
struct ReversalStats {
  double p50_ms{0}, p99_ms{0}, mean_ms{0};
  std::size_t intervals{0};
  std::size_t keys{0};          ///< heavy keys recovered across the run
  std::size_t memory_bytes{0};  ///< three invertible sketches, 8B counters
  std::size_t final_alerts{0};
  double event_recall{0};
  double precision{0};
};

/// NU preset scaled up: many simultaneous floods and scans, i.e. many heavy
/// buckets per stage — the worst case for the modular-hash DFS sweep (bucket
/// cross-products) and the stress case the ≥5x reversal gate is measured on.
ScenarioConfig attack_heavy_config() {
  ScenarioConfig c = nu_like_config(7, 1800);
  c.num_spoofed_floods = 10;
  c.num_fixed_floods = 8;
  c.num_hscans = 60;
  c.num_vscans = 16;
  c.num_block_scans = 2;
  return c;
}

ReversalStats run_reversal_ablation(const Scenario& scenario,
                                    const PipelineConfig& base,
                                    SketchBackendKind kind) {
  PipelineConfig pc = base;
  pc.bank.backend = kind;
  const HifindDetectorConfig& dc = pc.detector;
  const double t = dc.interval_threshold();

  ReversalStats out;
  {
    const SketchBank probe(pc.bank);
    out.memory_bytes = probe.rs_sip_dport().memory_bytes() +
                       probe.rs_dip_dport().memory_bytes() +
                       probe.rs_sip_dip().memory_bytes();
  }

  // Pass 1: reversal latency. Copy-based forecasters reproduce the error
  // sketches outside the timed region; only the three REVERSE runs (with the
  // same verification screen the detector applies) are on the clock.
  LegacyEwmaForecaster<InvertibleSketch> f1(dc.ewma_alpha), f2(dc.ewma_alpha),
      f3(dc.ewma_alpha);
  LegacyEwmaForecaster<KarySketch> v1(dc.ewma_alpha), v2(dc.ewma_alpha),
      v3(dc.ewma_alpha);
  ReverseEngine engine;
  std::vector<double> times_ms;
  replay(scenario, pc.bank, dc.interval_seconds,
         [&](const SketchBank& bank, std::uint64_t) -> std::size_t {
           auto e1 = f1.step(bank.rs_dip_dport());
           auto e2 = f2.step(bank.rs_sip_dip());
           auto e3 = f3.step(bank.rs_sip_dport());
           auto ev1 = v1.step(bank.verif_dip_dport());
           auto ev2 = v2.step(bank.verif_sip_dip());
           auto ev3 = v3.step(bank.verif_sip_dport());
           if (!e1 || !e2 || !e3) return 0;
           const std::array<const InvertibleSketch*, 3> errors{&*e1, &*e2,
                                                               &*e3};
           const std::array<const KarySketch*, 3> verifs{&*ev1, &*ev2, &*ev3};
           const auto t0 = std::chrono::steady_clock::now();
           for (std::size_t i = 0; i < 3; ++i) {
             InferenceOptions options = dc.inference;
             options.verifier = [v = verifs[i], t](std::uint64_t key, double) {
               return v->estimate(key) >= t;
             };
             engine.begin(*errors[i], t, options);
             while (!engine.run_chunk(~std::size_t{0})) {
             }
             out.keys += engine.take_result().keys.size();
           }
           const auto t1 = std::chrono::steady_clock::now();
           times_ms.push_back(
               std::chrono::duration<double, std::milli>(t1 - t0).count());
           return 0;
         });
  out.intervals = times_ms.size();
  for (const double ms : times_ms) out.mean_ms += ms;
  if (!times_ms.empty()) {
    out.mean_ms /= static_cast<double>(times_ms.size());
    out.p50_ms = percentile(times_ms, 0.50);
    out.p99_ms = percentile(times_ms, 0.99);
  }

  // Pass 2: end-to-end accuracy through the full detector on this backend.
  HifindDetector detector(dc);
  std::vector<IntervalResult> results;
  replay(scenario, pc.bank, dc.interval_seconds,
         [&](const SketchBank& bank, std::uint64_t interval) {
           results.push_back(detector.process(bank, interval));
           return results.back().final.size();
         });
  for (const IntervalResult& r : results) out.final_alerts += r.final.size();
  const IntervalClock clock(dc.interval_seconds);
  const EvaluationSummary ev = evaluate(results, scenario.truth, clock);
  out.event_recall = ev.event_recall();
  out.precision = ev.precision();
  return out;
}

void emit_reversal(const char* name, const ReversalStats& s,
                   bool last = false) {
  std::printf(
      "    \"%s\": {\"reversal_p50_ms\": %.5f, \"reversal_p99_ms\": %.5f, "
      "\"reversal_mean_ms\": %.5f, \"intervals\": %zu, \"keys\": %zu, "
      "\"memory_bytes\": %zu, \"final_alerts\": %zu, \"event_recall\": %.4f, "
      "\"precision\": %.4f}%s\n",
      name, s.p50_ms, s.p99_ms, s.mean_ms, s.intervals, s.keys,
      s.memory_bytes, s.final_alerts, s.event_recall, s.precision,
      last ? "" : ",");
}

CloseStats run_legacy(const Scenario& scenario, const PipelineConfig& pc) {
  LegacyEpoch epoch(pc.detector);
  return replay(scenario, pc.bank, pc.detector.interval_seconds,
                [&](const SketchBank& bank, std::uint64_t) {
                  // Key count is not comparable to alert counts; report 0.
                  (void)epoch.close(bank);
                  return std::size_t{0};
                });
}

void emit(const char* name, const CloseStats& s, bool last = false) {
  std::printf(
      "    \"%s\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"mean_ms\": %.4f, "
      "\"intervals\": %zu, \"final_alerts\": %zu, \"epoch_threads\": %zu",
      name, s.p50_ms, s.p99_ms, s.mean_ms, s.intervals, s.final_alerts,
      s.epoch_threads);
  if (s.overlapped) {
    std::printf(
        ", \"epoch_p50_ms\": %.4f, \"epoch_p99_ms\": %.4f, "
        "\"close_stall_us\": %llu",
        s.epoch_p50_ms, s.epoch_p99_ms,
        static_cast<unsigned long long>(s.close_stall_us));
  }
  std::printf("}%s\n", last ? "" : ",");
}

int run() {
  const PipelineConfig pc = default_pipeline_config();
  const Scenario scenario = build_scenario(nu_like_config(7, 3600));

  // Seed-faithful baseline: the legacy epoch on the scalar backend (the seed
  // had no runtime-dispatched kernels at all).
  simd::set_force_scalar(true);
  const CloseStats legacy_scalar = run_legacy(scenario, pc);
  simd::set_force_scalar(false);
  const CloseStats legacy = run_legacy(scenario, pc);

  const CloseStats fused_1t = run_detector(scenario, pc, 1);
  const CloseStats fused_2t = run_detector(scenario, pc, 2);
  const CloseStats fused_4t = run_detector(scenario, pc, 4);
  const CloseStats fused_8t = run_detector(scenario, pc, 8);

  // Double-buffered pipeline: close_interval() percentiles time only the
  // ingest-blocking seal; the epoch runs off-path (reported separately).
  const CloseStats overlapped_1r1e = run_overlapped(scenario, pc, 1, 1);
  const CloseStats overlapped_2r2e = run_overlapped(scenario, pc, 2, 2);

  // Budgeted epoch: same scenario under a hard close-time budget. The
  // deadline is sized from the default calibration constant; what matters
  // here is that the run completes, alerts stay deterministic, and the
  // truncation shows up in the work numbers below.
  EpochBudget budget;
  budget.deadline_ms = 2.0;
  const CloseStats budgeted_1t = run_detector(scenario, pc, 1, budget);
  const CloseStats budgeted_4t = run_detector(scenario, pc, 4, budget);

  // Determinism sanity: identical alert streams at every thread count, on
  // both the fused and the budgeted (truncated) path, and the overlapped
  // pipeline must reproduce the serial alert stream exactly.
  const bool alerts_match = fused_1t.final_alerts == fused_2t.final_alerts &&
                            fused_1t.final_alerts == fused_4t.final_alerts &&
                            fused_1t.final_alerts == fused_8t.final_alerts &&
                            budgeted_1t.final_alerts ==
                                budgeted_4t.final_alerts;
  const bool overlapped_matches_serial =
      overlapped_1r1e.final_alerts == fused_1t.final_alerts &&
      overlapped_2r2e.final_alerts == fused_1t.final_alerts;

  // Reversal ablation: both backends against the attack-heavy scenario.
  // The ≥5x p99 gate and the recall-parity check live in
  // run_detection_epoch.py; this bench just reports the measurements.
  const Scenario attack_scenario = build_scenario(attack_heavy_config());
  const ReversalStats rev_reference = run_reversal_ablation(
      attack_scenario, pc, SketchBackendKind::kReversible);
  const ReversalStats rev_compact =
      run_reversal_ablation(attack_scenario, pc, SketchBackendKind::kCompact);
  const double reversal_speedup_p99 =
      rev_compact.p99_ms > 0.0 ? rev_reference.p99_ms / rev_compact.p99_ms
                               : 0.0;
  const double reversal_speedup_p50 =
      rev_compact.p50_ms > 0.0 ? rev_reference.p50_ms / rev_compact.p50_ms
                               : 0.0;

  // Calibration datum for EpochBudget::work_units_per_ms: streaming-search
  // work units the unbudgeted serial epoch retired per millisecond of close
  // time on this host.
  const double total_close_ms =
      fused_1t.mean_ms * static_cast<double>(fused_1t.intervals);
  const double work_rate =
      total_close_ms > 0.0
          ? static_cast<double>(fused_1t.inference_work) / total_close_ms
          : 0.0;

  std::printf("{\n");
  std::printf("  \"simd_backend\": \"%s\",\n", simd::active_backend());
  std::printf("  \"alerts_match_across_threads\": %s,\n",
              alerts_match ? "true" : "false");
  std::printf("  \"overlapped_alerts_match_serial\": %s,\n",
              overlapped_matches_serial ? "true" : "false");
  std::printf("  \"budget_work_rate_units_per_ms\": %.1f,\n", work_rate);
  std::printf("  \"budgeted_deadline_ms\": %.1f,\n", budget.deadline_ms);
  std::printf("  \"reversal_ablation\": {\n");
  std::printf("    \"scenario\": \"nu_like_attack_heavy\",\n");
  std::printf("    \"compact_speedup_p50\": %.2f,\n", reversal_speedup_p50);
  std::printf("    \"compact_speedup_p99\": %.2f,\n", reversal_speedup_p99);
  emit_reversal("reversible", rev_reference);
  emit_reversal("compact", rev_compact, /*last=*/true);
  std::printf("  },\n");
  std::printf("  \"configs\": {\n");
  emit("legacy_scalar", legacy_scalar);
  emit("legacy", legacy);
  emit("fused_1t", fused_1t);
  emit("fused_2t", fused_2t);
  emit("fused_4t", fused_4t);
  emit("fused_8t", fused_8t);
  emit("budgeted_1t", budgeted_1t);
  emit("budgeted_4t", budgeted_4t);
  emit("overlapped_1r1e", overlapped_1r1e);
  emit("overlapped_2r2e", overlapped_2r2e, /*last=*/true);
  std::printf("  }\n}\n");
  return alerts_match && overlapped_matches_serial ? 0 : 1;
}

}  // namespace
}  // namespace hifind::bench

int main() { return hifind::bench::run(); }
