// Figure 4 reproduction: bi-modal distribution of the number of unique
// destination ports visited, for {SIP,DIP} pairs with more than 50
// un-responded SYNs in a 1-minute interval.
//
// The paper's claim (verified on NU + Fermi data): such pairs either touch
// 1-2 ports (SYN floods / misconfigured apps) or many ports (vertical
// scans) — almost never in between. This bi-modality is what justifies the
// 2D-sketch concentration test.
#include <iostream>
#include <map>
#include <set>
#include <unordered_map>

#include "bench_util.hpp"
#include "common/table_printer.hpp"

namespace hifind::bench {
namespace {

void run() {
  const Scenario scenario = build_scenario(nu_like_config(777, 1800));
  IntervalClock clock(60);

  struct PairState {
    double unresponded{0};
    std::set<std::uint16_t> ports;
  };
  std::unordered_map<std::uint64_t, PairState> pairs;
  std::map<std::size_t, std::size_t> histogram;  // unique ports -> count

  std::uint64_t current = 0;
  bool any = false;
  auto close_interval = [&] {
    for (const auto& [key, st] : pairs) {
      if (st.unresponded > 50.0) {
        ++histogram[st.ports.size()];
      }
    }
    pairs.clear();
  };
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) {
      close_interval();
      ++current;
    }
    const std::int64_t d = syn_delta(p);
    if (d == 0) continue;
    const bool reply = p.is_synack();
    const IPv4 sip = reply ? p.dip : p.sip;
    const IPv4 dip = reply ? p.sip : p.dip;
    const std::uint16_t dport = reply ? p.sport : p.dport;
    PairState& st = pairs[pack_ip_ip(sip, dip)];
    st.unresponded += static_cast<double>(d);
    if (d > 0) st.ports.insert(dport);
  }
  close_interval();

  // Bucket the histogram the way the figure reads: 1, 2, 3, 4-10, 11-100,
  // >100 unique ports.
  struct Bucket {
    const char* label;
    std::size_t lo, hi;
    std::size_t count{0};
  };
  Bucket buckets[] = {{"1 port", 1, 1, 0},      {"2 ports", 2, 2, 0},
                      {"3 ports", 3, 3, 0},     {"4-10 ports", 4, 10, 0},
                      {"11-100 ports", 11, 100, 0},
                      {">100 ports", 101, SIZE_MAX, 0}};
  std::size_t total = 0;
  for (const auto& [ports, count] : histogram) {
    for (auto& b : buckets) {
      if (ports >= b.lo && ports <= b.hi) b.count += count;
    }
    total += count;
  }

  TablePrinter table(
      "Figure 4. #unique Dports for {SIP,DIP} pairs with >50 un-responded "
      "SYNs per 1-min interval (NU-like trace)");
  table.header({"unique ports", "pair-intervals", "share", "bar"});
  for (const auto& b : buckets) {
    const double share =
        total ? static_cast<double>(b.count) / static_cast<double>(total) : 0;
    table.row({b.label, std::to_string(b.count),
               std::to_string(static_cast<int>(share * 100)) + "%",
               std::string(static_cast<std::size_t>(share * 50), '#')});
  }
  table.print(std::cout);

  const std::size_t low_mode =
      buckets[0].count + buckets[1].count + buckets[2].count;
  const std::size_t high_mode = buckets[4].count + buckets[5].count;
  const std::size_t middle = buckets[3].count;
  std::cout << "\nBi-modality check: low mode (<=3 ports) = " << low_mode
            << ", middle (4-10) = " << middle << ", high mode (>10) = "
            << high_mode << "\n";
  std::cout << (low_mode > 3 * middle && high_mode > middle
                    ? "PASS: distribution is bi-modal as in the paper.\n"
                    : "NOTE: distribution not clearly bi-modal on this "
                      "seed.\n");
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
