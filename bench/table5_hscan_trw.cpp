// Table 5 reproduction: horizontal-scan detection, HiFIND vs TRW,
// aggregated by source IP.
//
// Paper: NU 497 (TRW) / 512 (HiFIND) / 488 overlap; LBL 695/699/692 — i.e.
// near-total overlap with small one-sided residues: HiFIND additionally
// catches scanners mixing successes with failures (TRW's walk absorbs the
// successes), TRW additionally catches slow multi-interval scans below
// HiFIND's per-interval threshold.
#include <iostream>
#include <set>

#include "bench_util.hpp"
#include "common/table_printer.hpp"

namespace hifind::bench {
namespace {

void run_dataset(TablePrinter& table, const char* name,
                 const ScenarioConfig& cfg) {
  const Scenario scenario = build_scenario(cfg);

  Pipeline pipeline(default_pipeline_config());
  const auto results = pipeline.run(scenario.trace);
  const std::set<std::uint32_t> hifind_sips =
      distinct_scan_sources(results, AttackType::kHorizontalScan);

  const Trw trw = run_trw(scenario.trace);
  std::set<std::uint32_t> trw_sips;
  for (const auto& a : trw.alerts()) trw_sips.insert(a.sip.addr);

  std::size_t overlap = 0;
  for (const auto s : hifind_sips) overlap += trw_sips.contains(s) ? 1 : 0;

  table.row({name, std::to_string(trw_sips.size()),
             std::to_string(hifind_sips.size()), std::to_string(overlap)});

  // Ground truth: how many flagged sources are real scanners?
  std::set<std::uint32_t> real_scanners;
  for (const auto& e : scenario.truth.events()) {
    if ((e.kind == EventKind::kHorizontalScan ||
         e.kind == EventKind::kBlockScan) &&
        e.sip) {
      real_scanners.insert(e.sip->addr);
    }
  }
  std::size_t hifind_true = 0, trw_true = 0;
  for (const auto s : hifind_sips) {
    hifind_true += real_scanners.contains(s) ? 1 : 0;
  }
  for (const auto s : trw_sips) trw_true += real_scanners.contains(s) ? 1 : 0;
  std::cout << "  " << name << ": injected scanners = "
            << real_scanners.size() << "; HiFIND true positives = "
            << hifind_true << "/" << hifind_sips.size()
            << "; TRW true positives = " << trw_true << "/"
            << trw_sips.size() << " (TRW extras are mostly failing P2P "
            << "peers it cannot distinguish from scanners)\n";
}

void run() {
  TablePrinter table(
      "Table 5. Horizontal scan detection comparison, aggregated by SIP");
  table.header({"Data", "TRW", "HiFIND", "Overlap number"});
  std::cout << "Per-dataset notes:\n";
  run_dataset(table, "NU-like", nu_like_config(51, 1800));
  run_dataset(table, "LBL-like", lbl_like_config(52, 1800));
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nPaper shape: counts within a few percent of each other "
               "with near-total overlap.\n";
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
