// Ablation: forecast model (EWMA vs moving average vs Holt linear).
//
// The paper adopts EWMA (Eq. 1); the sketch change-detection literature it
// builds on (IMC'03) also evaluates moving-average and Holt models. The
// interesting regime is a RAMPING baseline — e.g. the morning traffic rise
// on a campus edge — where plain EWMA lags and its forecast error
// accumulates false mass. We synthesize a trace whose benign load doubles
// linearly over 20 minutes with a mid-ramp flood, and compare models.
#include <iostream>

#include "bench_util.hpp"
#include "common/table_printer.hpp"
#include "gen/attacks.hpp"
#include "gen/background.hpp"

namespace hifind::bench {
namespace {

/// Trace with linearly ramping background (cps0 -> cps1) and one flood.
Scenario ramping_scenario(std::uint64_t seed, double cps0, double cps1,
                          std::uint32_t minutes) {
  NetworkModelConfig net_cfg;
  net_cfg.seed = mix64(seed);
  Scenario scenario(net_cfg);
  Pcg32 rng(seed);

  for (std::uint32_t m = 0; m < minutes; ++m) {
    BackgroundConfig bg;
    bg.connections_per_second =
        cps0 + (cps1 - cps0) * m / static_cast<double>(minutes - 1);
    bg.seed = mix64(seed ^ (m + 1));
    Trace chunk;
    generate_background(bg, scenario.network, 60 * kMicrosPerSecond, {},
                        chunk, scenario.truth);
    for (PacketRecord p : chunk.packets()) {
      p.ts += Timestamp{m} * 60 * kMicrosPerSecond;
      scenario.trace.push_back(p);
    }
  }

  SynFloodSpec flood;
  const Service& victim = scenario.network.services()[0];
  flood.victim_ip = victim.ip;
  flood.victim_port = victim.port;
  flood.start = Timestamp{minutes / 2} * 60 * kMicrosPerSecond;
  flood.duration = 180 * kMicrosPerSecond;
  flood.rate_pps = 400;
  inject_syn_flood(flood, scenario.network, rng, scenario.trace,
                   scenario.truth);
  scenario.trace.sort();
  return scenario;
}

void run() {
  const Scenario scenario = ramping_scenario(87, 40.0, 160.0, 20);
  const IntervalClock clock(60);

  TablePrinter table(
      "Ablation: forecast model under a ramping baseline (40->160 cps over "
      "20 min, one mid-ramp flood)");
  table.header({"model", "final alerts", "matched", "unexplained",
                "flood detected"});
  const struct {
    const char* name;
    ForecastModel model;
  } kModels[] = {{"EWMA (paper)", ForecastModel::kEwma},
                 {"moving average (w=5)", ForecastModel::kMovingAverage},
                 {"Holt linear", ForecastModel::kHolt}};
  for (const auto& m : kModels) {
    PipelineConfig pc = default_pipeline_config();
    pc.detector.forecast_model = m.model;
    Pipeline pipeline(pc);
    const auto results = pipeline.run(scenario.trace);
    const EvaluationSummary s = evaluate(results, scenario.truth, clock);
    table.row({m.name, std::to_string(s.alerts_total),
               std::to_string(s.alerts_matched),
               std::to_string(s.alerts_unexplained),
               s.attack_events_detected > 0 ? "Yes" : "No"});
  }
  table.print(std::cout);
  std::cout << "\nReading: all models must catch the flood; the comparison "
               "is in unexplained (ramp-induced) alerts, where trend-aware "
               "models should not be worse than EWMA.\n";
}

}  // namespace
}  // namespace hifind::bench

int main() {
  hifind::bench::run();
  return 0;
}
