// Million-flow shard-identity driver.
//
// The BM_MillionFlow variants in record_pipeline.cpp measure ingest
// throughput on the TLB-stress preset; this driver proves the CORRECTNESS
// half of the acceptance bar: on the same million-flow scenario (reduced
// distinct-client count so the run stays CI-sized), the sharded overlapped
// pipeline emits BIT-IDENTICAL alerts to the serial record -> process ->
// clear loop at 1/2/4/8 shards, and the vectorized batch-index path emits
// the same alert stream as the legacy per-op index loops. Emits one JSON
// object on stdout (mirroring detection_epoch.cpp); run_record_pipeline.py
// folds it into BENCH_throughput.json's million_flow section. Exit status is
// 0 only if every comparison matched and the scenario actually alerted.
//
// Usage: million_flow_alerts [distinct_clients_per_interval]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "detect/overlapped.hpp"
#include "sketch/simd_ops.hpp"

namespace hifind::bench {
namespace {

using RecordMode = OverlappedPipelineConfig::RecordMode;

/// Serial reference: one bank, record -> process -> clear per interval.
std::vector<IntervalResult> replay_serial(const Scenario& scenario,
                                          const PipelineConfig& pc) {
  SketchBank bank(pc.bank);
  HifindDetector detector(pc.detector);
  IntervalClock clock(pc.detector.interval_seconds);
  std::vector<IntervalResult> results;
  std::uint64_t current = 0;
  bool any = false;
  auto close_interval = [&] {
    results.push_back(detector.process(bank, current));
    bank.clear();
  };
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) {
      close_interval();
      ++current;
    }
    bank.record(p);
  }
  close_interval();
  return results;
}

/// Sharded overlapped pipeline at `shards` record threads.
std::vector<IntervalResult> replay_sharded(const Scenario& scenario,
                                           const PipelineConfig& pc,
                                           unsigned shards) {
  OverlappedPipelineConfig cfg;
  cfg.bank = pc.bank;
  cfg.detector = pc.detector;
  cfg.record_mode = RecordMode::kShardedReplicas;
  cfg.record_threads = shards;
  OverlappedPipeline pipe(cfg);
  IntervalClock clock(pc.detector.interval_seconds);
  std::uint64_t current = 0;
  bool any = false;
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!any) {
      current = iv;
      any = true;
    }
    while (current < iv) {
      pipe.close_interval();
      ++current;
    }
    pipe.offer(p);
  }
  pipe.close_interval();
  pipe.wait_epoch_idle();
  return pipe.take_results();
}

/// Bit-identity across every phase list (same fields the determinism tests
/// compare; `refined` collapses to `final` in both drivers since no exact-
/// flow evidence exists before the first flagged interval's successor).
bool identical(const std::vector<IntervalResult>& a,
               const std::vector<IntervalResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].interval != b[i].interval || a[i].raw != b[i].raw ||
        a[i].after_2d != b[i].after_2d || a[i].final != b[i].final ||
        !(a[i].epoch == b[i].epoch)) {
      return false;
    }
  }
  return true;
}

int run(std::size_t distinct) {
  const PipelineConfig pc = default_pipeline_config();
  const Scenario scenario = build_scenario(million_flow_config(7, distinct));

  const std::vector<IntervalResult> serial = replay_serial(scenario, pc);
  std::size_t raw_alerts = 0, final_alerts = 0;
  for (const auto& r : serial) {
    raw_alerts += r.raw.size();
    final_alerts += r.final.size();
  }

  // Tentpole cross-check: the legacy per-op index loops must reproduce the
  // vectorized (default) alert stream exactly.
  set_batch_index_mode(BatchIndexMode::kLegacy);
  const bool legacy_index_match =
      identical(serial, replay_serial(scenario, pc));
  set_batch_index_mode(BatchIndexMode::kVectorized);

  constexpr unsigned kShardCounts[] = {1, 2, 4, 8};
  bool shard_match[std::size(kShardCounts)];
  bool all_shards_match = true;
  for (std::size_t i = 0; i < std::size(kShardCounts); ++i) {
    shard_match[i] =
        identical(serial, replay_sharded(scenario, pc, kShardCounts[i]));
    all_shards_match = all_shards_match && shard_match[i];
  }

  // The floods land in the last interval, so raw alerts MUST fire there;
  // final may legitimately be empty (min_persist_intervals needs two).
  const bool non_vacuous = raw_alerts > 0;
  const bool ok = non_vacuous && legacy_index_match && all_shards_match;

  std::printf("{\n");
  std::printf("  \"scenario\": \"million_flow\",\n");
  std::printf("  \"distinct_clients_per_interval\": %zu,\n", distinct);
  std::printf("  \"packets\": %zu,\n", scenario.trace.packets().size());
  std::printf("  \"intervals\": %zu,\n", serial.size());
  std::printf("  \"raw_alerts\": %zu,\n", raw_alerts);
  std::printf("  \"final_alerts\": %zu,\n", final_alerts);
  std::printf("  \"legacy_index_alerts_match\": %s,\n",
              legacy_index_match ? "true" : "false");
  std::printf("  \"shard_alerts_match\": {");
  for (std::size_t i = 0; i < std::size(kShardCounts); ++i) {
    std::printf("%s\"%u\": %s", i ? ", " : "", kShardCounts[i],
                shard_match[i] ? "true" : "false");
  }
  std::printf("},\n");
  std::printf("  \"all_match\": %s\n", ok ? "true" : "false");
  std::printf("}\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hifind::bench

int main(int argc, char** argv) {
  std::size_t distinct = 1u << 17;  // reduced default: CI-sized, ~2.2M pkts
  if (argc > 1) distinct = static_cast<std::size_t>(std::atoll(argv[1]));
  return hifind::bench::run(distinct);
}
