#!/usr/bin/env python3
"""Runs the detection_epoch bench and distills BENCH_detect_epoch.json.

Usage:
    python3 bench/run_detection_epoch.py [--build-dir build] [--out BENCH_detect_epoch.json]

The bench replays a fixed NU-like scenario and times the ingest-blocking
portion of each interval close under:
    legacy_scalar   — pre-fusion serial epoch, scalar kernels (seed-faithful)
    legacy          — pre-fusion serial epoch, dispatched SIMD kernels
    fused_Nt        — fused allocation-free epoch on N task-pool threads
                      (the close blocks ingest for the whole epoch)
    budgeted_Nt     — fused epoch under a hard deterministic work budget
    overlapped_RrEe — double-buffered pipeline, R recording threads, E epoch
                      threads: the close times only the seal (drain +
                      history sync + rebind); the epoch runs in the
                      background and is reported as epoch_p50/p99_ms

The distilled JSON records p50/p99/mean close latency per configuration
(with the epoch thread count per variant), the overlapped variants'
close_stall_us backpressure counters, and the derived speedups the
acceptance gates care about:
    speedup_p50.fused_1t_vs_legacy          >= 2.0 expected (fusion alone)
    speedup_close_p99.overlapped_*_vs_fused_1t >= 5.0 REQUIRED (gated here):
        the tail of the ingest-blocking close must drop at least 5x once
        the epoch moves off the ingest path
plus two determinism bits that must both be true: bit-identical alerts at
every thread count (alerts_match_across_threads) and the overlapped pipeline
reproducing the serial alert stream (overlapped_alerts_match_serial).

The bench also runs a per-backend reversal-latency ablation on an
attack-heavy variant of the scenario (reversal_ablation in the JSON):
REVERSE wall time p50/p99, keys recovered, sketch memory, and the full
detection run's event recall and precision for the reference reversible
backend and the compact invertible backend. Two more gates ride on it:
    reversal_ablation.compact_speedup_p99 >= --reversal-gate (default 5.0):
        the compact backend's direct candidate extraction must beat the
        modular-hash reversal sweep at least 5x at p99
    compact event_recall >= reversible event_recall - --recall-budget:
        the speedup may not be bought with missed heavy keys
Refuses to run against a non-Release build tree (see bench_common.py);
--allow-non-release records loudly-marked non-gating numbers instead.
"""

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import check_release_build


def cpu_context() -> dict:
    """CPU counts, reported honestly: the machine's total and the subset this
    process may actually run on (containers/cgroups often pin far fewer)."""
    total = os.cpu_count()
    try:
        available = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        available = total
    return {"num_cpus": total, "num_cpus_available": available}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_detect_epoch.json")
    parser.add_argument(
        "--p99-gate",
        type=float,
        default=5.0,
        help="minimum overlapped-vs-fused close-p99 improvement (default 5.0)",
    )
    parser.add_argument(
        "--reversal-gate",
        type=float,
        default=5.0,
        help="minimum compact-vs-reversible reversal-p99 speedup on the "
        "attack-heavy scenario (default 5.0)",
    )
    parser.add_argument(
        "--recall-budget",
        type=float,
        default=0.05,
        help="largest event-recall drop the compact backend may show vs the "
        "reference on the attack-heavy scenario (default 0.05)",
    )
    parser.add_argument(
        "--allow-non-release",
        action="store_true",
        help="run against a non-Release build anyway; output is marked "
        'non-gating ("gating": false) and all gates are skipped',
    )
    args = parser.parse_args()

    build_type, gating = check_release_build(args.build_dir,
                                             args.allow_non_release)

    binary = os.path.join(args.build_dir, "bench", "detection_epoch")
    if not os.path.exists(binary):
        print(f"error: {binary} not found — build the repo first", file=sys.stderr)
        return 1

    proc = subprocess.run([binary], capture_output=True, text=True)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print("error: detection_epoch bench failed (alert mismatch?)",
              file=sys.stderr)
        sys.stdout.write(proc.stdout)
        return 1
    raw = json.loads(proc.stdout)

    configs = raw["configs"]

    def ratio(baseline: str, contender: str, metric: str = "p50_ms"):
        b = configs.get(baseline, {}).get(metric)
        c = configs.get(contender, {}).get(metric)
        return round(b / c, 3) if b and c else None

    speedup_close_p99 = {
        "overlapped_1r1e_vs_fused_1t": ratio("fused_1t", "overlapped_1r1e",
                                             "p99_ms"),
        "overlapped_2r2e_vs_fused_1t": ratio("fused_1t", "overlapped_2r2e",
                                             "p99_ms"),
        "budgeted_1t_vs_fused_1t": ratio("fused_1t", "budgeted_1t", "p99_ms"),
    }

    reversal = raw.get("reversal_ablation", {})

    result = {
        "generated_by": "bench/run_detection_epoch.py",
        "benchmark": "bench/detection_epoch.cpp",
        "gating": gating,
        "context": {
            **cpu_context(),
            "simd_backend": raw.get("simd_backend"),
            "build_type": build_type,
        },
        "alerts_match_across_threads": raw.get("alerts_match_across_threads"),
        "overlapped_alerts_match_serial": raw.get(
            "overlapped_alerts_match_serial"),
        "budget_work_rate_units_per_ms": raw.get(
            "budget_work_rate_units_per_ms"),
        "budgeted_deadline_ms": raw.get("budgeted_deadline_ms"),
        "close_latency_ms": configs,
        "close_p99_ms": {
            name: cfg.get("p99_ms") for name, cfg in configs.items()
        },
        "close_stall_us": {
            name: cfg["close_stall_us"]
            for name, cfg in configs.items()
            if "close_stall_us" in cfg
        },
        "speedup_p50": {
            "fused_1t_vs_legacy": ratio("legacy", "fused_1t"),
            "fused_1t_vs_legacy_scalar": ratio("legacy_scalar", "fused_1t"),
            "fused_2t_vs_legacy": ratio("legacy", "fused_2t"),
            "fused_4t_vs_legacy": ratio("legacy", "fused_4t"),
            "fused_4t_vs_legacy_scalar": ratio("legacy_scalar", "fused_4t"),
            "fused_8t_vs_legacy": ratio("legacy", "fused_8t"),
        },
        "speedup_close_p99": speedup_close_p99,
        "reversal_ablation": reversal,
    }

    tmp_out = args.out + ".tmp"
    with open(tmp_out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    os.replace(tmp_out, args.out)
    print(json.dumps({"speedup_p50": result["speedup_p50"],
                      "speedup_close_p99": speedup_close_p99}, indent=2))
    print(f"wrote {args.out}")

    if not gating:
        print("non-Release build: gates skipped, output marked non-gating",
              file=sys.stderr)
        return 0

    # Acceptance gates. The overlapped close tail must improve at least
    # --p99-gate x over the fused close on the same scenario, both
    # determinism bits must hold, and the compact backend must beat the
    # reference reversal by --reversal-gate x at p99 on the attack-heavy
    # scenario without giving up more than --recall-budget of event recall.
    failures = []
    for key in ("overlapped_1r1e_vs_fused_1t", "overlapped_2r2e_vs_fused_1t"):
        r = speedup_close_p99.get(key)
        if r is None or r < args.p99_gate:
            failures.append(f"{key} = {r} (< {args.p99_gate})")
    if not result["alerts_match_across_threads"]:
        failures.append("alerts_match_across_threads is false")
    if not result["overlapped_alerts_match_serial"]:
        failures.append("overlapped_alerts_match_serial is false")
    rev_speedup = reversal.get("compact_speedup_p99")
    if rev_speedup is None or rev_speedup < args.reversal_gate:
        failures.append(
            f"reversal compact_speedup_p99 = {rev_speedup} "
            f"(< {args.reversal_gate})")
    ref_recall = reversal.get("reversible", {}).get("event_recall")
    compact_recall = reversal.get("compact", {}).get("event_recall")
    if ref_recall is None or compact_recall is None:
        failures.append("reversal ablation missing event_recall")
    elif compact_recall < ref_recall - args.recall_budget:
        failures.append(
            f"compact event_recall {compact_recall} below reference "
            f"{ref_recall} - budget {args.recall_budget}")
    if failures:
        for f_ in failures:
            print(f"GATE FAILED: {f_}", file=sys.stderr)
        return 1
    print(f"gates passed: overlapped close p99 >= {args.p99_gate}x better, "
          f"alerts deterministic, compact reversal >= {args.reversal_gate}x "
          f"at p99 with recall within {args.recall_budget}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
