#!/usr/bin/env python3
"""Runs the detection_epoch bench and distills BENCH_detect_epoch.json.

Usage:
    python3 bench/run_detection_epoch.py [--build-dir build] [--out BENCH_detect_epoch.json]

The bench replays a fixed NU-like scenario and times the ingest-blocking
portion of each interval close under:
    legacy_scalar   — pre-fusion serial epoch, scalar kernels (seed-faithful)
    legacy          — pre-fusion serial epoch, dispatched SIMD kernels
    fused_Nt        — fused allocation-free epoch on N task-pool threads
                      (the close blocks ingest for the whole epoch)
    budgeted_Nt     — fused epoch under a hard deterministic work budget
    overlapped_RrEe — double-buffered pipeline, R recording threads, E epoch
                      threads: the close times only the seal (drain +
                      history sync + rebind); the epoch runs in the
                      background and is reported as epoch_p50/p99_ms

The distilled JSON records p50/p99/mean close latency per configuration
(with the epoch thread count per variant), the overlapped variants'
close_stall_us backpressure counters, and the derived speedups the
acceptance gates care about:
    speedup_p50.fused_1t_vs_legacy          >= 2.0 expected (fusion alone)
    speedup_close_p99.overlapped_*_vs_fused_1t >= 5.0 REQUIRED (gated here):
        the tail of the ingest-blocking close must drop at least 5x once
        the epoch moves off the ingest path
plus two determinism bits that must both be true: bit-identical alerts at
every thread count (alerts_match_across_threads) and the overlapped pipeline
reproducing the serial alert stream (overlapped_alerts_match_serial).
"""

import argparse
import json
import os
import subprocess
import sys


def cpu_context() -> dict:
    """CPU counts, reported honestly: the machine's total and the subset this
    process may actually run on (containers/cgroups often pin far fewer)."""
    total = os.cpu_count()
    try:
        available = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        available = total
    return {"num_cpus": total, "num_cpus_available": available}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_detect_epoch.json")
    parser.add_argument(
        "--p99-gate",
        type=float,
        default=5.0,
        help="minimum overlapped-vs-fused close-p99 improvement (default 5.0)",
    )
    args = parser.parse_args()

    binary = os.path.join(args.build_dir, "bench", "detection_epoch")
    if not os.path.exists(binary):
        print(f"error: {binary} not found — build the repo first", file=sys.stderr)
        return 1

    proc = subprocess.run([binary], capture_output=True, text=True)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print("error: detection_epoch bench failed (alert mismatch?)",
              file=sys.stderr)
        sys.stdout.write(proc.stdout)
        return 1
    raw = json.loads(proc.stdout)

    configs = raw["configs"]

    def ratio(baseline: str, contender: str, metric: str = "p50_ms"):
        b = configs.get(baseline, {}).get(metric)
        c = configs.get(contender, {}).get(metric)
        return round(b / c, 3) if b and c else None

    speedup_close_p99 = {
        "overlapped_1r1e_vs_fused_1t": ratio("fused_1t", "overlapped_1r1e",
                                             "p99_ms"),
        "overlapped_2r2e_vs_fused_1t": ratio("fused_1t", "overlapped_2r2e",
                                             "p99_ms"),
        "budgeted_1t_vs_fused_1t": ratio("fused_1t", "budgeted_1t", "p99_ms"),
    }

    result = {
        "generated_by": "bench/run_detection_epoch.py",
        "benchmark": "bench/detection_epoch.cpp",
        "context": {
            **cpu_context(),
            "simd_backend": raw.get("simd_backend"),
        },
        "alerts_match_across_threads": raw.get("alerts_match_across_threads"),
        "overlapped_alerts_match_serial": raw.get(
            "overlapped_alerts_match_serial"),
        "budget_work_rate_units_per_ms": raw.get(
            "budget_work_rate_units_per_ms"),
        "budgeted_deadline_ms": raw.get("budgeted_deadline_ms"),
        "close_latency_ms": configs,
        "close_p99_ms": {
            name: cfg.get("p99_ms") for name, cfg in configs.items()
        },
        "close_stall_us": {
            name: cfg["close_stall_us"]
            for name, cfg in configs.items()
            if "close_stall_us" in cfg
        },
        "speedup_p50": {
            "fused_1t_vs_legacy": ratio("legacy", "fused_1t"),
            "fused_1t_vs_legacy_scalar": ratio("legacy_scalar", "fused_1t"),
            "fused_2t_vs_legacy": ratio("legacy", "fused_2t"),
            "fused_4t_vs_legacy": ratio("legacy", "fused_4t"),
            "fused_4t_vs_legacy_scalar": ratio("legacy_scalar", "fused_4t"),
            "fused_8t_vs_legacy": ratio("legacy", "fused_8t"),
        },
        "speedup_close_p99": speedup_close_p99,
    }

    tmp_out = args.out + ".tmp"
    with open(tmp_out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    os.replace(tmp_out, args.out)
    print(json.dumps({"speedup_p50": result["speedup_p50"],
                      "speedup_close_p99": speedup_close_p99}, indent=2))
    print(f"wrote {args.out}")

    # Acceptance gates. The overlapped close tail must improve at least
    # --p99-gate x over the fused close on the same scenario, and both
    # determinism bits must hold.
    failures = []
    for key in ("overlapped_1r1e_vs_fused_1t", "overlapped_2r2e_vs_fused_1t"):
        r = speedup_close_p99.get(key)
        if r is None or r < args.p99_gate:
            failures.append(f"{key} = {r} (< {args.p99_gate})")
    if not result["alerts_match_across_threads"]:
        failures.append("alerts_match_across_threads is false")
    if not result["overlapped_alerts_match_serial"]:
        failures.append("overlapped_alerts_match_serial is false")
    if failures:
        for f_ in failures:
            print(f"GATE FAILED: {f_}", file=sys.stderr)
        return 1
    print(f"gates passed: overlapped close p99 >= {args.p99_gate}x better, "
          "alerts deterministic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
