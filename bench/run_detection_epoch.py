#!/usr/bin/env python3
"""Runs the detection_epoch bench and distills BENCH_detect_epoch.json.

Usage:
    python3 bench/run_detection_epoch.py [--build-dir build] [--out BENCH_detect_epoch.json]

The bench replays a fixed NU-like scenario and times each interval close
(the detection epoch: 7 forecaster steps, 3 verified inferences, 3 alert
phases) under:
    legacy_scalar — pre-fusion serial epoch, scalar kernels (seed-faithful)
    legacy        — pre-fusion serial epoch, dispatched SIMD kernels
    fused_Nt      — fused allocation-free epoch on N task-pool threads

The distilled JSON records p50/p99/mean close latency per configuration and
the derived speedups the acceptance gates care about:
    fused_1t_vs_legacy        >= 2.0 expected (fusion alone, any host)
    fused_4t_vs_legacy_scalar >= 2.0 expected on a >= 8-core host
plus alerts_match_across_threads, which must be true (bit-identical alerts
at every thread count).
"""

import argparse
import json
import os
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_detect_epoch.json")
    args = parser.parse_args()

    binary = os.path.join(args.build_dir, "bench", "detection_epoch")
    if not os.path.exists(binary):
        print(f"error: {binary} not found — build the repo first", file=sys.stderr)
        return 1

    proc = subprocess.run([binary], capture_output=True, text=True)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print("error: detection_epoch bench failed (alert mismatch?)",
              file=sys.stderr)
        sys.stdout.write(proc.stdout)
        return 1
    raw = json.loads(proc.stdout)

    configs = raw["configs"]

    def ratio(baseline: str, contender: str):
        b = configs.get(baseline, {}).get("p50_ms")
        c = configs.get(contender, {}).get("p50_ms")
        return round(b / c, 3) if b and c else None

    result = {
        "generated_by": "bench/run_detection_epoch.py",
        "benchmark": "bench/detection_epoch.cpp",
        "context": {
            "num_cpus": os.cpu_count(),
            "simd_backend": raw.get("simd_backend"),
        },
        "alerts_match_across_threads": raw.get("alerts_match_across_threads"),
        "close_latency_ms": configs,
        "speedup_p50": {
            "fused_1t_vs_legacy": ratio("legacy", "fused_1t"),
            "fused_1t_vs_legacy_scalar": ratio("legacy_scalar", "fused_1t"),
            "fused_2t_vs_legacy": ratio("legacy", "fused_2t"),
            "fused_4t_vs_legacy": ratio("legacy", "fused_4t"),
            "fused_4t_vs_legacy_scalar": ratio("legacy_scalar", "fused_4t"),
            "fused_8t_vs_legacy": ratio("legacy", "fused_8t"),
        },
    }

    tmp_out = args.out + ".tmp"
    with open(tmp_out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    os.replace(tmp_out, args.out)
    print(json.dumps(result["speedup_p50"], indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
