// live_monitor: a simulated online deployment.
//
// Emulates the paper's Figure 1(a) setup: a monitor attached to an edge
// router, recording continuously and detecting once per interval. Traffic is
// generated minute-by-minute with a drifting benign load plus attacks that
// switch on and off, and the monitor prints a terse ops-style status line
// per interval — what a NOC operator of the appliance would watch.
//
// Build & run:  ./build/examples/live_monitor [minutes]
#include <cstdio>
#include <iostream>
#include <string>

#include "core/pipeline.hpp"
#include "gen/attacks.hpp"
#include "gen/background.hpp"
#include "gen/network_model.hpp"

int main(int argc, char** argv) {
  using namespace hifind;
  const int minutes = argc > 1 ? std::max(3, std::atoi(argv[1])) : 15;

  const NetworkModel net{NetworkModelConfig{.seed = 7}};
  Pcg32 rng(2027);
  PipelineConfig config;
  Pipeline pipeline(config);

  pipeline.on_interval([](const IntervalResult& r) {
    std::printf("t=%02llum  raw=%-3zu 2d=%-3zu final=%-3zu",
                static_cast<unsigned long long>(r.interval), r.raw.size(),
                r.after_2d.size(), r.final.size());
    if (r.final.empty()) {
      std::printf("  ok\n");
      return;
    }
    std::printf("  ALERTS:\n");
    for (const Alert& a : r.final) {
      std::printf("        %s\n", a.describe().c_str());
    }
  });

  for (int m = 0; m < minutes; ++m) {
    const Timestamp t0 = static_cast<Timestamp>(m) * 60 * kMicrosPerSecond;
    Trace minute_trace;
    GroundTruthLedger scratch;

    // Benign load drifts sinusoidally around 60 connections/s.
    BackgroundConfig bg;
    bg.connections_per_second = 60.0 + 20.0 * ((m % 10) / 10.0);
    bg.seed = 1000 + static_cast<std::uint64_t>(m);
    Trace chunk;
    generate_background(bg, net, 60 * kMicrosPerSecond, {}, chunk, scratch);

    // Minutes 5-7: a spoofed flood against the most popular service.
    if (m >= 5 && m < 8) {
      SynFloodSpec flood;
      flood.victim_ip = net.services()[0].ip;
      flood.victim_port = net.services()[0].port;
      flood.start = 0;
      flood.duration = 60 * kMicrosPerSecond;
      flood.rate_pps = 400;
      inject_syn_flood(flood, net, rng, chunk, scratch);
    }
    // Minutes 9-10: an inbound SQLSnake-style horizontal scan.
    if (m >= 9 && m < 11) {
      HscanSpec scan;
      scan.attacker = IPv4(66, 77, 88, 99);
      scan.dport = 1433;
      scan.num_targets = 900;
      scan.start = 0;
      scan.duration = 60 * kMicrosPerSecond;
      inject_horizontal_scan(scan, net, rng, chunk, scratch);
    }

    chunk.sort();
    for (PacketRecord p : chunk.packets()) {
      p.ts += t0;  // shift the minute into wall-clock position
      pipeline.offer(p);
    }
  }
  pipeline.finish();

  std::cout << "\n(Expected: quiet minutes, flood alerts naming the victim "
               "service in minutes 6-8, scan alerts naming 66.77.88.99:1433 "
               "in minutes 10-11 — each one interval after onset because "
               "detection compares against the forecast.)\n";
  return 0;
}
