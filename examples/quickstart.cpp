// Quickstart: the five-minute tour of the HiFIND public API.
//
//   1. Build a synthetic labelled trace (you would read packets off a tap).
//   2. Construct a Pipeline: a SketchBank (the paper's nine sketches) plus
//      the three-phase detector.
//   3. Stream the packets through; collect per-interval alerts.
//   4. Score the run against ground truth.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "gen/scenario.hpp"

int main() {
  using namespace hifind;

  // 1. A 10-minute campus-edge trace with a couple of injected attacks.
  ScenarioConfig scenario_cfg = nu_like_config(/*seed=*/2024,
                                               /*duration_seconds=*/600);
  scenario_cfg.num_spoofed_floods = 1;
  scenario_cfg.num_fixed_floods = 1;
  scenario_cfg.num_hscans = 3;
  scenario_cfg.num_vscans = 1;
  const Scenario scenario = build_scenario(scenario_cfg);
  std::cout << "Trace: " << scenario.trace.size() << " packets, "
            << scenario.truth.attacks().size() << " injected attacks\n\n";

  // 2. Paper-default configuration: 13MB sketch bank, 60 s intervals,
  //    threshold of 1 un-responded SYN per second.
  PipelineConfig config;
  config.detector.interval_seconds = 60;
  config.detector.syn_rate_threshold = 1.0;
  Pipeline pipeline(config);

  // 3. Stream packets; print alerts as each interval closes.
  pipeline.on_interval([](const IntervalResult& r) {
    for (const Alert& alert : r.final) {
      std::cout << "[interval " << r.interval << "] " << alert.describe()
                << '\n';
    }
  });
  for (const PacketRecord& packet : scenario.trace.packets()) {
    pipeline.offer(packet);
  }
  pipeline.finish();

  // 4. How did we do?
  const EvaluationSummary score =
      evaluate(pipeline.results(), scenario.truth, IntervalClock(60));
  std::cout << "\nDetected " << score.attack_events_detected << "/"
            << score.attack_events << " injected attacks; "
            << score.alerts_unexplained << " unexplained false alarms.\n";
  std::cout << "Sketch memory: "
            << pipeline.bank().memory_bytes_hw() / 1e6
            << " MB (hardware counters) — independent of traffic volume.\n";
  return 0;
}
