// multi_vantage: aggregated detection across edge routers (paper Fig. 1b/c,
// Sec. 3.1, Sec. 5.3.2).
//
// A campus with three edge routers and per-packet load balancing: each
// packet — including the two halves of one handshake — takes a random
// router. Each router records into its own SketchBank; once a minute the
// central site COMBINEs the banks (a few MB each, not packet traces) and
// runs one detector on the sum. The demo shows the aggregated verdicts are
// IDENTICAL to a hypothetical single router seeing everything, while a
// per-flow IDS (TRW) run per-router degrades badly.
//
// A second act covers the imperfect network: the same trace collected
// through the resilient layer (router/collector.hpp) while router 2
// suffers a three-interval outage. Detection keeps running on the rescaled
// partial sums, and every interval's CoverageReport says exactly which
// routers made it into the combine.
//
// Build & run:  ./build/examples/multi_vantage
#include <iostream>
#include <set>

#include "baseline/trw.hpp"
#include "core/pipeline.hpp"
#include "gen/scenario.hpp"
#include "router/collector.hpp"
#include "router/distributed.hpp"
#include "router/faulty_channel.hpp"

int main() {
  using namespace hifind;

  ScenarioConfig cfg = nu_like_config(/*seed=*/31337, /*duration=*/600);
  cfg.num_hscans = 4;
  cfg.num_vscans = 1;
  const Scenario scenario = build_scenario(cfg);

  const PipelineConfig pc;  // paper defaults

  // Reference: one router sees everything.
  Pipeline single(pc);
  const auto reference = single.run(scenario.trace);

  // Reality: three routers, random per-packet split, central aggregation.
  DistributedMonitor monitor(3, pc.bank, pc.detector);
  IntervalClock clock(pc.detector.interval_seconds);
  std::vector<IntervalResult> aggregated;
  std::uint64_t interval = 0;
  bool started = false;
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!started) {
      interval = iv;
      started = true;
    }
    while (interval < iv) {
      aggregated.push_back(monitor.end_interval(interval++));
    }
    monitor.feed(p);
  }
  aggregated.push_back(monitor.end_interval(interval));

  std::size_t identical = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    bool same = reference[i].final.size() == aggregated[i].final.size();
    for (std::size_t j = 0; same && j < reference[i].final.size(); ++j) {
      same = reference[i].final[j].key == aggregated[i].final[j].key;
    }
    identical += same ? 1 : 0;
    for (const Alert& a : aggregated[i].final) {
      std::cout << "[aggregated, interval " << i << "] " << a.describe()
                << '\n';
    }
  }
  std::cout << "\nIdentical intervals (aggregated vs single vantage): "
            << identical << "/" << reference.size() << '\n';
  std::cout << "State shipped to the central site per interval: "
            << monitor.bytes_shipped_per_interval() / 1e6 << " MB total "
            << "(3 sketch banks) — independent of traffic volume.\n";

  // Contrast: TRW per router, alerts summed.
  Trw whole{TrwConfig{}};
  std::vector<Trw> per_router;
  for (int i = 0; i < 3; ++i) per_router.emplace_back(TrwConfig{});
  PacketSplitter splitter(3, 9);
  for (const auto& p : scenario.trace.packets()) {
    whole.observe(p);
    per_router[splitter.route(p)].observe(p);
  }
  const Timestamp end =
      scenario.trace.stats().last_ts + 61 * kMicrosPerSecond;
  whole.flush(end);
  std::set<std::uint32_t> whole_sips, split_sips;
  for (const auto& a : whole.alerts()) whole_sips.insert(a.sip.addr);
  for (auto& t : per_router) {
    t.flush(end);
    for (const auto& a : t.alerts()) split_sips.insert(a.sip.addr);
  }
  std::cout << "\nTRW flagged sources — whole traffic: " << whole_sips.size()
            << ", per-router sum under load balancing: " << split_sips.size()
            << " (the inflation is benign traffic whose handshake halves "
               "landed on different routers).\n";

  // Act two: the same trace through the fault-tolerant collection layer,
  // with router 2 dark for three intervals mid-trace. Banks travel as
  // checksummed HFB2 frames through a FaultyChannel; the collector waits
  // out stragglers, then finalizes on the partial sum and says so.
  std::cout << "\n--- resilient collection with an injected outage ---\n";
  DistributedMonitor edge(3, pc.bank, pc.detector);
  FaultyChannel channel(3, /*seed=*/7);
  ResilientAggregator central(
      [] {
        CollectorConfig c;
        c.num_routers = 3;
        c.deadline_polls = 1;
        return c;
      }(),
      pc.bank, pc.detector,
      [&channel](std::size_t router, std::uint64_t iv) {
        return channel.fetch(router, iv);
      });

  auto ship_boundary = [&](std::uint64_t iv) {
    for (std::size_t r = 0; r < edge.num_routers(); ++r) {
      channel.ship(r, iv, edge.ship_and_clear(r, iv));
    }
    channel.advance_to(iv);
    for (const IntervalResult& res : central.end_interval(iv)) {
      std::cout << "interval " << res.interval << ": "
                << res.coverage.describe() << ", " << res.final.size()
                << " alert(s)\n";
      for (const Alert& a : res.final) std::cout << "    " << a.describe()
                                                 << '\n';
    }
  };

  started = false;
  interval = 0;
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!started) {
      interval = iv;
      started = true;
      // Router 2 goes dark for three intervals in the middle of the trace.
      channel.set_outage(2, iv + 3, iv + 5);
    }
    while (interval < iv) ship_boundary(interval++);
    edge.feed(p);
  }
  ship_boundary(interval);
  ship_boundary(interval + 1);  // flush the last interval past its deadline

  const auto& stats = central.collector().stats();
  std::cout << "collector: " << stats.frames_received << " frames received, "
            << stats.intervals_degraded
            << " interval(s) finalized degraded — detection never stopped, "
               "and every degraded interval is labeled.\n";
  return 0;
}
