// attack_forensics: root-cause analysis on a detected anomaly (paper Sec. 4
// and Sec. 5.4).
//
// After detection names an anomalous key, the operator's questions are:
// WHICH attack class is it (to pick a mitigation), and is the source
// spoofed? This demo detects a mixed-attack interval, then for each alert
// walks the classification evidence the way the paper does:
//   - the 2D-sketch column selected by the key, with its concentration test
//     (top-5-of-64 share vs phi=0.8) — flood vs scan;
//   - the backscatter uniformity verdict on the victim's SYN sources —
//     spoofed vs real attacker;
//   - the mitigation key HiFIND hands to the blocking layer.
//
// Build & run:  ./build/examples/attack_forensics
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "baseline/backscatter.hpp"
#include "core/pipeline.hpp"
#include "gen/scenario.hpp"

namespace {

using namespace hifind;

/// Prints one 2D-sketch column as a 64-cell spark line plus the verdict.
void explain_column(const TwoDSketch& sketch, std::uint64_t x_key,
                    const char* secondary_name) {
  const auto cells = sketch.column(0, x_key);  // stage 0 as the exhibit
  double total = 0.0, top = 0.0;
  std::vector<double> sorted;
  for (double c : cells) {
    const double v = std::max(c, 0.0);
    sorted.push_back(v);
    total += v;
    top = std::max(top, v);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  double top5 = 0.0;
  for (int i = 0; i < 5; ++i) top5 += sorted[static_cast<std::size_t>(i)];

  std::printf("    %s distribution across 64 buckets: ", secondary_name);
  for (double c : cells) {
    const double v = std::max(c, 0.0);
    const char* glyph = v <= 0        ? "."
                        : v < top / 4 ? "-"
                        : v < top / 2 ? "+"
                                      : "#";
    std::printf("%s", glyph);
  }
  std::printf("\n    top-5 share: %.0f%% (phi=80%%) => %s\n",
              total > 0 ? 100.0 * top5 / total : 0.0,
              sketch.classify(x_key) == ColumnShape::kConcentrated
                  ? "CONCENTRATED (flooding-like)"
                  : "SPREAD (scan-like)");
}

}  // namespace

int main() {
  ScenarioConfig cfg = nu_like_config(/*seed=*/4242, /*duration=*/600);
  cfg.num_spoofed_floods = 1;
  cfg.num_fixed_floods = 1;
  cfg.num_hscans = 1;
  cfg.num_vscans = 1;
  cfg.num_flash_crowds = 0;
  cfg.num_misconfigs = 0;
  const Scenario scenario = build_scenario(cfg);

  // Run the pipeline but keep our own bank copy per interval for forensics
  // (the pipeline clears its bank at each boundary).
  PipelineConfig pc;
  SketchBank bank(pc.bank);
  HifindDetector detector(pc.detector);
  IntervalClock clock(pc.detector.interval_seconds);

  std::uint64_t current = 0;
  bool started = false;
  for (const auto& p : scenario.trace.packets()) {
    const std::uint64_t iv = clock.interval_of(p.ts);
    if (!started) {
      current = iv;
      started = true;
    }
    while (current < iv) {
      const IntervalResult r = detector.process(bank, current);
      for (const Alert& a : r.final) {
        std::cout << "\n=== " << a.describe() << " ===\n";
        switch (a.type) {
          case AttackType::kSynFlooding: {
            std::cout << "  victim service: " << to_string(a.dip()) << ":"
                      << a.dport() << "\n";
            BackscatterValidator v;
            for (const auto& q : scenario.trace.packets()) {
              if (q.is_syn() && q.dip == a.dip() && q.dport == a.dport()) {
                v.add_source(q.sip);
              }
            }
            const auto verdict = v.verdict();
            std::cout << "  backscatter check: " << verdict.distinct_octets
                      << " distinct /8s, top share "
                      << static_cast<int>(verdict.top_octet_share * 100)
                      << "% => "
                      << (verdict.spoofed_uniform
                              ? "SPOOFED sources (filter at victim, SYN "
                                "cookies)"
                              : "real sources (rate-limit / block list)")
                      << "\n";
            std::cout << "  mitigation key: protect {DIP,Dport}\n";
            break;
          }
          case AttackType::kNonSpoofedSynFlooding:
            std::cout << "  attacker identified: " << to_string(a.sip())
                      << " -> block at ingress\n";
            explain_column(bank.twod_sipdport_dip(), a.key, "victim-DIP");
            break;
          case AttackType::kVerticalScan:
            std::cout << "  scanner " << to_string(a.sip())
                      << " sweeping ports on " << to_string(a.dip()) << "\n";
            explain_column(bank.twod_sipdip_dport(), a.key, "Dport");
            std::cout << "  mitigation key: block {SIP} -> {DIP}\n";
            break;
          case AttackType::kHorizontalScan:
            std::cout << "  scanner " << to_string(a.sip())
                      << " sweeping the network on port " << a.dport()
                      << "\n";
            explain_column(bank.twod_sipdport_dip(), a.key, "victim-DIP");
            std::cout << "  mitigation key: block {SIP} on Dport "
                      << a.dport() << "\n";
            break;
        }
      }
      bank.clear();
      ++current;
    }
    bank.record(p);
  }
  std::cout << "\nDone. Each alert came with the flow key needed for "
               "mitigation — the property per-trace or aggregate detectors "
               "cannot provide.\n";
  return 0;
}
