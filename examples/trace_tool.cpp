// trace_tool: generate, inspect, and analyze packet-trace files.
//
// The offline workflow around the library: synthesize a labelled trace once,
// persist it in the HFT1 binary format, and re-run detection or statistics
// against the file — the moral equivalent of the paper's "export netflow,
// replay through HiFIND" loop.
//
//   trace_tool gen <file> [nu|lbl] [seed] [seconds]   synthesize + save
//   trace_tool info <file>                            header statistics
//   trace_tool detect <file>                          run HiFIND, print alerts
//   trace_tool convert <in> <out>                     HFT1 <-> pcap
//
// Files ending in .pcap use the standard pcap format (so captures from
// tcpdump/wireshark feed straight in); anything else uses the native HFT1
// binary format.
//
// Build & run:  ./build/examples/trace_tool gen /tmp/nu.pcap nu 7 600
#include <cstring>
#include <iostream>
#include <string>

#include "core/pipeline.hpp"
#include "gen/scenario.hpp"
#include "packet/netflow_v5.hpp"
#include "packet/pcap.hpp"
#include "packet/trace_io.hpp"

namespace {

using namespace hifind;

bool has_suffix(const std::string& path, const std::string& suffix) {
  return path.size() > suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}
bool is_pcap_path(const std::string& path) {
  return has_suffix(path, ".pcap");
}
bool is_netflow_path(const std::string& path) {
  return has_suffix(path, ".nf5");
}

Trace load(const std::string& path) {
  if (is_netflow_path(path)) {
    return read_netflow_v5(path, nullptr);
  }
  if (is_pcap_path(path)) {
    // No network model available for a raw capture: treat RFC1918 space as
    // internal, a reasonable default for edge captures.
    return read_pcap(
        path,
        [](IPv4 ip) {
          const std::uint32_t a = ip.addr;
          return (a >> 24) == 10 || (a >> 20) == 0xac1 ||
                 (a >> 16) == 0xc0a8;
        },
        nullptr);
  }
  return read_trace(path);
}

void store(const Trace& trace, const std::string& path) {
  if (is_netflow_path(path)) {
    write_netflow_v5(trace, path);
  } else if (is_pcap_path(path)) {
    write_pcap(trace, path);
  } else {
    write_trace(trace, path);
  }
}

int cmd_gen(const std::string& path, const std::string& preset,
            std::uint64_t seed, std::uint32_t seconds) {
  const ScenarioConfig cfg = preset == "lbl" ? lbl_like_config(seed, seconds)
                                             : nu_like_config(seed, seconds);
  const Scenario scenario = build_scenario(cfg);
  store(scenario.trace, path);
  std::cout << "wrote " << scenario.trace.size() << " packets ("
            << scenario.truth.attacks().size() << " attacks) to " << path
            << "\n";
  for (const auto& e : scenario.truth.events()) {
    std::cout << "  [" << e.start / kMicrosPerSecond << "s-"
              << e.end / kMicrosPerSecond << "s] " << event_kind_name(e.kind)
              << " (" << e.label << ")\n";
  }
  return 0;
}

int cmd_convert(const std::string& in, const std::string& out) {
  const Trace trace = load(in);
  store(trace, out);
  std::cout << "converted " << trace.size() << " packets: " << in << " -> "
            << out << "\n";
  return 0;
}

int cmd_info(const std::string& path) {
  const Trace trace = load(path);
  const TraceStats s = trace.stats();
  std::cout << "packets:   " << s.packets << "\n"
            << "tcp:       " << s.tcp_packets << "\n"
            << "syn:       " << s.syn_packets << "\n"
            << "syn/ack:   " << s.synack_packets << "\n"
            << "outbound:  " << s.outbound_packets << "\n"
            << "bytes:     " << s.total_bytes << "\n"
            << "duration:  " << s.duration_seconds() << " s\n"
            << "un-responded SYN rate: "
            << (s.syn_packets > s.synack_packets && s.duration_seconds() > 0
                    ? static_cast<double>(s.syn_packets - s.synack_packets) /
                          s.duration_seconds()
                    : 0.0)
            << " /s\n";
  return 0;
}

int cmd_detect(const std::string& path) {
  const Trace trace = load(path);
  PipelineConfig config;
  Pipeline pipeline(config);
  pipeline.on_interval([](const IntervalResult& r) {
    for (const Alert& a : r.final) {
      std::cout << "[interval " << r.interval << "] " << a.describe() << "\n";
    }
  });
  std::size_t alerts = 0;
  for (const auto& p : trace.packets()) pipeline.offer(p);
  pipeline.finish();
  for (const auto& r : pipeline.results()) alerts += r.final.size();
  std::cout << "intervals: " << pipeline.results().size()
            << ", alerts: " << alerts << "\n";
  return 0;
}

int usage() {
  std::cerr << "usage:\n"
               "  trace_tool gen <file> [nu|lbl] [seed] [seconds]\n"
               "  trace_tool info <file>\n"
               "  trace_tool detect <file>\n"
               "  trace_tool convert <in> <out>\n"
               "(*.pcap = pcap, *.nf5 = NetFlow v5 export, else HFT1)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  try {
    if (cmd == "gen") {
      const std::string preset = argc > 3 ? argv[3] : "nu";
      const std::uint64_t seed =
          argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
      const auto seconds = static_cast<std::uint32_t>(
          argc > 5 ? std::strtoul(argv[5], nullptr, 10) : 600);
      return cmd_gen(path, preset, seed, seconds);
    }
    if (cmd == "info") return cmd_info(path);
    if (cmd == "detect") return cmd_detect(path);
    if (cmd == "convert" && argc > 3) return cmd_convert(path, argv[3]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
