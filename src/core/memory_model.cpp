#include "core/memory_model.hpp"

#include <cstdio>

namespace hifind {

std::size_t complete_info_bytes(const WorstCaseTraffic& t,
                                const FlowTableCosts& costs) {
  const double flows = t.flows();
  const double per_flow =
      static_cast<double>(costs.sip_dport_entry + costs.dip_dport_entry +
                          costs.sip_dip_entry);
  return static_cast<std::size_t>(flows * per_flow);
}

std::size_t trw_bytes(const WorstCaseTraffic& t,
                      const FlowTableCosts& costs) {
  return static_cast<std::size_t>(
      t.flows() * static_cast<double>(costs.trw_source_entry));
}

std::string format_bytes(double bytes) {
  char buf[32];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.4gG", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.4gM", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.4gK", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", bytes);
  }
  return buf;
}

}  // namespace hifind
