// End-to-end single-monitor pipeline: stream packets in, alerts out.
//
// Wires the pieces together exactly as Figure 2 of the paper: continuous
// sketch recording, and once per interval the detection pass (forecast ->
// error -> inference -> classification -> FP filters). Offline traces and
// live streams use the same object: offer() packets in timestamp order and
// interval boundaries are handled internally; finish() flushes the tail
// interval.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/interval.hpp"
#include "detect/hifind.hpp"
#include "detect/sketch_bank.hpp"
#include "packet/trace.hpp"

namespace hifind {

struct PipelineConfig {
  SketchBankConfig bank{};
  HifindDetectorConfig detector{};
};

class Pipeline {
 public:
  explicit Pipeline(const PipelineConfig& config);

  /// Feeds one packet; packets must be offered in non-decreasing timestamp
  /// order. Crossing an interval boundary triggers detection for the closed
  /// interval(s) and invokes the callback (if set) for each result.
  void offer(const PacketRecord& p);

  /// Closes the interval in progress and returns its result (if any packet
  /// was seen). Call once at end of stream.
  std::optional<IntervalResult> finish();

  /// Invoked for each completed interval (alerts may be empty).
  void on_interval(std::function<void(const IntervalResult&)> callback) {
    callback_ = std::move(callback);
  }

  /// Convenience: run a whole trace, returning every interval's result.
  std::vector<IntervalResult> run(const Trace& trace);

  const SketchBank& bank() const { return bank_; }
  const HifindDetectorConfig& detector_config() const {
    return detector_.config();
  }

  /// Collected results so far (also returned by run()).
  const std::vector<IntervalResult>& results() const { return results_; }

 private:
  IntervalResult close_interval(std::uint64_t interval);

  IntervalClock clock_;
  SketchBank bank_;
  HifindDetector detector_;
  std::optional<std::uint64_t> current_interval_;
  std::vector<IntervalResult> results_;
  std::function<void(const IntervalResult&)> callback_;
};

}  // namespace hifind
