// Analytic worst-case memory model (paper Table 9).
//
// Scenario: a link running at 100% utilization with all-40-byte packets,
// every packet a distinct flow (a spoofed SYN flood with a fresh source per
// packet). Under that stream:
//   - HiFIND's sketches stay at their fixed configured size;
//   - a "complete information" recorder needs an entry in each of the three
//     per-key tables for every packet;
//   - TRW needs per-source walk state plus a pending-connection entry per
//     packet (every source is new).
// The model reports bytes for a given link speed and accumulation window, so
// the Table 9 bench can print the paper's 2.5/10 Gbps x 1/5 min grid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace hifind {

struct WorstCaseTraffic {
  double link_gbps{10.0};
  double window_minutes{1.0};
  std::size_t packet_bytes{40};

  /// Packets (= distinct flows) arriving within the window.
  double flows() const {
    return link_gbps * 1e9 / 8.0 / static_cast<double>(packet_bytes) *
           window_minutes * 60.0;
  }
};

/// Per-entry costs of the non-sketch alternatives, stated explicitly so the
/// bench output is auditable. Counts are key + counter, no container
/// overhead — i.e. a LOWER bound favouring the baselines.
struct FlowTableCosts {
  std::size_t sip_dport_entry{6 + 2};   ///< 48-bit key + 16-bit counter
  std::size_t dip_dport_entry{6 + 2};
  std::size_t sip_dip_entry{8 + 2};     ///< 64-bit key + 16-bit counter
  std::size_t trw_source_entry{4 + 8};  ///< SIP + walk state
};

/// Bytes a complete-information (three exact tables) recorder needs.
std::size_t complete_info_bytes(const WorstCaseTraffic& t,
                                const FlowTableCosts& costs = {});

/// Bytes TRW needs (per-source state; every packet a fresh source).
std::size_t trw_bytes(const WorstCaseTraffic& t,
                      const FlowTableCosts& costs = {});

/// Human-readable byte size ("13.2M", "41.2G").
// Defined in memory_model.cpp.
std::string format_bytes(double bytes);

}  // namespace hifind
