#include "core/pipeline.hpp"

namespace hifind {

Pipeline::Pipeline(const PipelineConfig& config)
    : clock_(config.detector.interval_seconds),
      bank_(config.bank),
      detector_(config.detector) {}

void Pipeline::offer(const PacketRecord& p) {
  const std::uint64_t interval = clock_.interval_of(p.ts);
  if (!current_interval_) {
    current_interval_ = interval;
  }
  // Close every interval the stream has moved past (quiet intervals still
  // roll the forecasters — an empty minute is itself a signal).
  while (*current_interval_ < interval) {
    close_interval(*current_interval_);
    ++*current_interval_;
  }
  bank_.record(p);
}

std::optional<IntervalResult> Pipeline::finish() {
  if (!current_interval_) return std::nullopt;
  IntervalResult result = close_interval(*current_interval_);
  current_interval_.reset();
  return result;
}

IntervalResult Pipeline::close_interval(std::uint64_t interval) {
  IntervalResult result = detector_.process(bank_, interval);
  bank_.clear();
  results_.push_back(result);
  if (callback_) callback_(result);
  return result;
}

std::vector<IntervalResult> Pipeline::run(const Trace& trace) {
  for (const auto& p : trace.packets()) offer(p);
  finish();
  return results_;
}

}  // namespace hifind
