#include "core/evaluation.hpp"

namespace hifind {
namespace {

/// Facet agreement between one alert and one event.
bool facets_match(const Alert& alert, const GroundTruthEvent& ev) {
  switch (alert.type) {
    case AttackType::kSynFlooding:
      // Victim-keyed: {DIP, Dport}.
      return ev.dip && ev.dip->addr == alert.dip().addr &&
             (!ev.dport || *ev.dport == alert.dport());
    case AttackType::kNonSpoofedSynFlooding:
      // Attacker-keyed: {SIP, Dport}.
      return ev.sip && ev.sip->addr == alert.sip().addr &&
             (!ev.dport || *ev.dport == alert.dport());
    case AttackType::kHorizontalScan:
      return ev.sip && ev.sip->addr == alert.sip().addr &&
             (!ev.dport || *ev.dport == alert.dport());
    case AttackType::kVerticalScan:
      return ev.sip && ev.sip->addr == alert.sip().addr &&
             (!ev.dip || ev.dip->addr == alert.dip().addr);
  }
  return false;
}

/// Event kinds that can legitimately explain an alert of the given type.
bool kind_explains(AttackType type, EventKind kind) {
  switch (type) {
    case AttackType::kSynFlooding:
      return kind == EventKind::kSynFloodSpoofed ||
             kind == EventKind::kSynFloodFixed ||
             kind == EventKind::kFlashCrowd ||
             kind == EventKind::kMisconfiguration ||
             kind == EventKind::kServerFailure;
    case AttackType::kNonSpoofedSynFlooding:
      return kind == EventKind::kSynFloodFixed;
    case AttackType::kHorizontalScan:
      return kind == EventKind::kHorizontalScan ||
             kind == EventKind::kBlockScan;
    case AttackType::kVerticalScan:
      return kind == EventKind::kVerticalScan ||
             kind == EventKind::kBlockScan ||
             kind == EventKind::kMisconfiguration;
  }
  return false;
}

/// Flooding alerts explained by flash crowds / misconfig / failure windows
/// are *benign-cause* FPs; everything else explained is a true detection.
bool benign_kind(EventKind kind) { return !is_attack(kind); }

}  // namespace

std::optional<std::size_t> match_alert_index(const Alert& alert,
                                             const GroundTruthLedger& truth,
                                             const IntervalClock& clock) {
  const Timestamp a = clock.interval_start(alert.interval);
  const Timestamp b = a + clock.width_us();
  std::optional<std::size_t> benign_match;
  for (std::size_t i = 0; i < truth.events().size(); ++i) {
    const GroundTruthEvent& ev = truth.events()[i];
    if (!ev.active_during(a, b)) continue;
    if (!kind_explains(alert.type, ev.kind)) continue;
    if (!facets_match(alert, ev)) {
      // Misconfig-driven vscan FPs have a per-client SIP the ledger doesn't
      // record; match on the fixed facets the event does carry.
      if (!(alert.type == AttackType::kVerticalScan &&
            ev.kind == EventKind::kMisconfiguration && ev.dip &&
            ev.dip->addr == alert.dip().addr)) {
        continue;
      }
    }
    if (is_attack(ev.kind)) return i;  // real attack wins over benign cause
    if (!benign_match) benign_match = i;
  }
  return benign_match;
}

std::optional<GroundTruthEvent> match_alert(const Alert& alert,
                                            const GroundTruthLedger& truth,
                                            const IntervalClock& clock) {
  const auto idx = match_alert_index(alert, truth, clock);
  if (!idx) return std::nullopt;
  return truth.events()[*idx];
}

std::vector<MatchedAlert> match_alerts(
    const std::vector<IntervalResult>& results,
    const GroundTruthLedger& truth, const IntervalClock& clock,
    bool use_final_phase) {
  std::vector<MatchedAlert> out;
  for (const IntervalResult& r : results) {
    const auto& alerts = use_final_phase ? r.final : r.raw;
    for (const Alert& a : alerts) {
      out.push_back(MatchedAlert{a, match_alert(a, truth, clock)});
    }
  }
  return out;
}

EvaluationSummary evaluate(const std::vector<IntervalResult>& results,
                           const GroundTruthLedger& truth,
                           const IntervalClock& clock, bool use_final_phase) {
  EvaluationSummary s;
  std::vector<bool> event_hit(truth.events().size(), false);

  for (const IntervalResult& r : results) {
    const auto& alerts = use_final_phase ? r.final : r.raw;
    for (const Alert& a : alerts) {
      ++s.alerts_total;
      const auto cause = match_alert_index(a, truth, clock);
      if (!cause) {
        ++s.alerts_unexplained;
        continue;
      }
      if (benign_kind(truth.events()[*cause].kind)) {
        ++s.alerts_benign_cause;
      } else {
        ++s.alerts_matched;
        event_hit[*cause] = true;
      }
    }
  }

  for (std::size_t i = 0; i < truth.events().size(); ++i) {
    if (is_attack(truth.events()[i].kind)) {
      ++s.attack_events;
      if (event_hit[i]) ++s.attack_events_detected;
    }
  }
  return s;
}

std::set<std::uint32_t> distinct_scan_sources(
    const std::vector<IntervalResult>& results, AttackType type,
    bool use_final_phase) {
  std::set<std::uint32_t> sources;
  for (const IntervalResult& r : results) {
    const auto& alerts = use_final_phase ? r.final : r.raw;
    for (const Alert& a : alerts) {
      if (a.type == type) sources.insert(a.sip().addr);
    }
  }
  return sources;
}

}  // namespace hifind
