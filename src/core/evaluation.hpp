// Evaluation against ground truth: alert <-> injected-event matching.
//
// The paper validated detections manually (Sec. 5.4); with a synthetic trace
// we match every alert against the ledger and report exact per-class
// detection and false-positive counts, plus event-level recall (was each
// injected attack caught in at least one interval of its lifetime?).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/interval.hpp"
#include "detect/alerts.hpp"
#include "gen/ground_truth.hpp"

namespace hifind {

/// One alert joined with the event that explains it (if any).
struct MatchedAlert {
  Alert alert;
  std::optional<GroundTruthEvent> cause;  ///< nullopt = unexplained (true FP)
};

/// Aggregate accuracy over a run.
struct EvaluationSummary {
  std::size_t alerts_total{0};
  std::size_t alerts_matched{0};     ///< explained by an injected attack
  std::size_t alerts_benign_cause{0};///< explained by a benign anomaly (FP
                                     ///  with a known source: flash crowd,
                                     ///  misconfig, server failure)
  std::size_t alerts_unexplained{0}; ///< matched nothing (background FP)
  std::size_t attack_events{0};      ///< injected attacks in the window
  std::size_t attack_events_detected{0};

  double precision() const {
    return alerts_total == 0
               ? 1.0
               : static_cast<double>(alerts_matched) /
                     static_cast<double>(alerts_total);
  }
  double event_recall() const {
    return attack_events == 0
               ? 1.0
               : static_cast<double>(attack_events_detected) /
                     static_cast<double>(attack_events);
  }
};

/// Matches one alert against the ledger. An alert matches an event when the
/// event is active during the alert's interval and every fixed facet agrees:
///   flooding alerts   match floods (and, as benign causes, flash crowds /
///                     misconfigs / server failures) on {DIP, Dport};
///   hscan alerts      match hscans/block scans on {SIP, Dport};
///   vscan alerts      match vscans/block scans on {SIP, DIP}.
std::optional<GroundTruthEvent> match_alert(const Alert& alert,
                                            const GroundTruthLedger& truth,
                                            const IntervalClock& clock);

/// As match_alert, but returns the matched event's index into
/// truth.events() — the unambiguous identity evaluate() needs for per-event
/// recall when events share labels and time windows.
std::optional<std::size_t> match_alert_index(const Alert& alert,
                                             const GroundTruthLedger& truth,
                                             const IntervalClock& clock);

/// Joins every alert in the per-interval results with its cause.
std::vector<MatchedAlert> match_alerts(
    const std::vector<IntervalResult>& results,
    const GroundTruthLedger& truth, const IntervalClock& clock,
    bool use_final_phase = true);

/// Full-run scoring (alert precision + event recall).
EvaluationSummary evaluate(const std::vector<IntervalResult>& results,
                           const GroundTruthLedger& truth,
                           const IntervalClock& clock,
                           bool use_final_phase = true);

/// Distinct attacker SIPs among scan alerts of one type across a run —
/// the unit of the paper's Table 5 comparison ("aggregated by source IP").
std::set<std::uint32_t> distinct_scan_sources(
    const std::vector<IntervalResult>& results, AttackType type,
    bool use_final_phase = true);

}  // namespace hifind
