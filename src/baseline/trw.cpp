#include "baseline/trw.hpp"

#include <cmath>
#include <stdexcept>

namespace hifind {

Trw::Trw(const TrwConfig& config) : config_(config) {
  if (config.theta1 >= config.theta0 || config.theta0 >= 1.0 ||
      config.theta1 <= 0.0) {
    throw std::invalid_argument("TRW requires 0 < theta1 < theta0 < 1");
  }
  step_success_ = std::log(config.theta1 / config.theta0);
  step_failure_ = std::log((1.0 - config.theta1) / (1.0 - config.theta0));
  log_eta1_ = std::log(config.detection_prob / config.false_positive_prob);
  log_eta0_ = std::log((1.0 - config.detection_prob) /
                       (1.0 - config.false_positive_prob));
}

void Trw::observe(const PacketRecord& p) {
  if (p.is_syn()) {
    // First contact from this source to this destination?
    Walk& w = walks_[p.sip.addr];
    if (w.decided_scanner) return;
    if (w.contacted.insert(p.dip.addr).second) {
      pending_.emplace(pack_ip_ip(p.sip, p.dip), p.ts);
    }
    return;
  }
  if (p.is_synack()) {
    // Response from p.sip back to initiator p.dip: success of {dip -> sip}.
    const auto it = pending_.find(pack_ip_ip(p.dip, p.sip));
    if (it != pending_.end()) {
      pending_.erase(it);
      score(p.dip, /*success=*/true, p.ts);
    }
    return;
  }
  if (p.is_rst() && !p.outbound) {
    // An inbound RST answering an outbound attempt is also a failure signal
    // in TRW; approximation: treat RST toward a pending initiator as failure.
    const auto it = pending_.find(pack_ip_ip(p.dip, p.sip));
    if (it != pending_.end()) {
      pending_.erase(it);
      score(p.dip, /*success=*/false, p.ts);
    }
  }
}

void Trw::flush(Timestamp now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now >= it->second + config_.failure_timeout_us) {
      const IPv4 sip = unpack_key_sip(it->first);
      it = pending_.erase(it);
      score(sip, /*success=*/false, now);
    } else {
      ++it;
    }
  }
}

void Trw::score(IPv4 sip, bool success, Timestamp when) {
  Walk& w = walks_[sip.addr];
  if (w.decided_scanner) return;
  w.llr += success ? step_success_ : step_failure_;
  if (w.llr >= log_eta1_) {
    w.decided_scanner = true;
    alerts_.push_back(TrwAlert{sip, when});
  } else if (w.llr <= log_eta0_) {
    // Benign decision: accept H0 for the evidence so far and RESTART the
    // walk (Jung et al. Sec. 3) — a host that later turns scanner (e.g.
    // gets infected) must still be detectable.
    w.llr = 0.0;
  }
}

std::size_t Trw::memory_bytes() const {
  // Per-source walk state plus the per-connection first-contact sets and the
  // pending table. Node overhead approximated as two pointers per hash entry.
  const std::size_t node = 2 * sizeof(void*);
  std::size_t total = 0;
  for (const auto& [sip, w] : walks_) {
    total += sizeof(sip) + sizeof(Walk) + node;
    total += w.contacted.size() * (sizeof(std::uint32_t) + node);
  }
  total += pending_.size() *
           (sizeof(std::uint64_t) + sizeof(Timestamp) + node);
  return total;
}

}  // namespace hifind
