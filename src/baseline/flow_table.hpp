// Exact flow-table detector — the paper's "non-sketch method" (Sec. 5.2).
//
// Runs the SAME three-step detection algorithm, EWMA forecasting, 2D
// classification, and Phase-3 heuristics as HifindDetector, but over exact
// per-key hash tables instead of sketches. Two purposes:
//
//  1. Accuracy reference: the paper reports that sketches detect exactly the
//     same attacks as complete per-flow state; our Table 4/5.2 benches verify
//     that claim on synthetic traces by diffing this detector's alerts
//     against the sketch detector's.
//  2. Memory contrast: memory_bytes() grows with the number of live flows —
//     under a spoofed flood it balloons (Table 9's "complete info" row),
//     which is precisely the DoS vulnerability sketches remove.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "detect/alerts.hpp"
#include "detect/fp_filters.hpp"
#include "detect/hifind.hpp"
#include "packet/packet.hpp"

namespace hifind {

/// Exact analogue of HifindDetector. Same config semantics; thresholds,
/// phases and filter parameters are shared via HifindDetectorConfig.
class FlowTableDetector {
 public:
  explicit FlowTableDetector(const HifindDetectorConfig& config);

  /// Feeds one packet of the current interval.
  void observe(const PacketRecord& p);

  /// Closes the interval and runs the three phases.
  IntervalResult end_interval(std::uint64_t interval);

  /// Current resident memory of all per-flow state (Table 9 row).
  std::size_t memory_bytes() const;

  void reset();

 private:
  using CountMap = std::unordered_map<std::uint64_t, double>;
  /// key -> secondary-value -> un-responded count (exact 2D distribution).
  using SpreadMap =
      std::unordered_map<std::uint64_t,
                         std::unordered_map<std::uint32_t, double>>;

  std::vector<Alert> phase1(std::uint64_t interval);
  std::vector<Alert> phase2(const std::vector<Alert>& alerts) const;
  std::vector<Alert> phase3(const std::vector<Alert>& alerts);

  /// EWMA per key: error = current - forecast; returns keys above threshold.
  std::vector<HeavyKey> detect_changes(const CountMap& current,
                                       CountMap& forecast, bool primed) const;

  /// Exact concentration test mirroring TwoDSketch::classify.
  bool concentrated(const SpreadMap& spread, std::uint64_t key) const;

  HifindDetectorConfig config_;
  bool primed_{false};

  // Per-interval exact state (cleared each interval).
  CountMap cur_sip_dport_;
  CountMap cur_dip_dport_;
  CountMap cur_sip_dip_;
  CountMap cur_syn_dip_dport_;  ///< #SYN only (ratio heuristic)
  SpreadMap spread_sipdip_dport_;
  SpreadMap spread_sipdport_dip_;

  /// Step-2 provenance (see HifindDetector::flooding_sip_victim_).
  std::unordered_map<std::uint32_t, std::uint32_t> flooding_sip_victim_;

  // Cross-interval state.
  CountMap fc_sip_dport_;
  CountMap fc_dip_dport_;
  CountMap fc_sip_dip_;
  CountMap fc_syn_dip_dport_;  ///< #SYN forecast (SYN-surge heuristic)
  std::unordered_set<std::uint64_t> synack_history_;  ///< live services
  RatioFilter ratio_filter_;
  PersistenceFilter persistence_filter_;
};

}  // namespace hifind
