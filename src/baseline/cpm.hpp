// CPM — Change-Point Monitoring SYN-flood detection (Wang, Zhang, Shin —
// INFOCOM 2002, "Detecting SYN flooding attacks").
//
// Detects floods from the AGGREGATE traffic only: per interval it computes
//     X_n = (#SYN - #FIN) / F_bar
// where F_bar is an EWMA of the per-interval #FIN (normalization makes the
// statistic traffic-volume independent), then applies a non-parametric CUSUM
//     y_n = max(0, y_{n-1} + X_n - a),
// alarming while y_n > N. Under normal traffic SYNs and FINs balance, so X_n
// hovers near 0; a flood's orphan SYNs push it up.
//
// Its two documented weaknesses are exactly what the HiFIND evaluation
// exercises: (1) no flow key — an alarm names no victim, so nothing can be
// mitigated (Table 1); (2) port scans also produce orphan SYNs, so a
// scan-heavy trace (LBL) raises persistent false flood alarms (Table 6).
#pragma once

#include <cstdint>
#include <vector>

#include "forecast/scalar.hpp"
#include "packet/packet.hpp"

namespace hifind {

struct CpmConfig {
  double cusum_offset{1.0};     ///< a: in-control drift removed per interval
  double cusum_threshold{2.0};  ///< N: alarm level
  double fin_ewma_alpha{0.2};   ///< smoothing of the FIN normalizer
};

class Cpm {
 public:
  explicit Cpm(const CpmConfig& config)
      : config_(config),
        fin_avg_(config.fin_ewma_alpha),
        cusum_(config.cusum_offset, config.cusum_threshold) {}

  /// Feeds one packet of the current interval.
  void observe(const PacketRecord& p) {
    if (p.is_syn()) ++syn_count_;
    // SYN/ACKs also carry SYN; count FIN on its own bit.
    if (p.is_fin()) ++fin_count_;
  }

  /// Closes the interval; returns true if CPM alarms for it.
  bool end_interval() {
    const double fins = static_cast<double>(fin_count_);
    const double f_bar = fin_avg_.primed() ? fin_avg_.mean() : fins;
    const double x =
        (static_cast<double>(syn_count_) - fins) / (f_bar > 1.0 ? f_bar : 1.0);
    fin_avg_.update(fins);
    syn_count_ = 0;
    fin_count_ = 0;
    const bool alarmed = cusum_.update(x);
    alarm_history_.push_back(alarmed);
    return alarmed;
  }

  const std::vector<bool>& alarm_history() const { return alarm_history_; }
  double cusum_value() const { return cusum_.value(); }

  /// CPM keeps three scalars — its memory is negligible by design.
  std::size_t memory_bytes() const { return sizeof(*this); }

 private:
  CpmConfig config_;
  std::uint64_t syn_count_{0};
  std::uint64_t fin_count_{0};
  ScalarEwma fin_avg_;
  Cusum cusum_;
  std::vector<bool> alarm_history_;
};

}  // namespace hifind
