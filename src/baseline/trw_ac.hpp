// TRW-AC — TRW with Approximate Caches (Weaver, Staniford, Paxson —
// USENIX Security 2004, "Very fast containment of scanning worms").
//
// Hardware-oriented variant of TRW: per-connection state lives in a
// fixed-size, direct-mapped *connection cache* indexed by a hash of
// {SIP, DIP}; per-source random-walk state lives in a fixed-size *address
// table* indexed by a hash of SIP. Fixed memory makes the detector crash-
// proof, but collisions alias: when the connection cache fills with spoofed
// half-open entries, a fresh scan attempt can hash onto an entry that looks
// established and is silently not counted — the false-negative mechanism the
// HiFIND paper's Sec. 3.5 quantifies (1M-entry cache, 20% full => 20% of
// scan attempts lost; a 533 Kb/s spoofed stream fills it completely).
#pragma once

#include <cstdint>
#include <vector>

#include "packet/packet.hpp"

namespace hifind {

struct TrwAcConfig {
  std::size_t connection_cache_entries{1u << 20};  ///< paper/Weaver: 1M
  std::size_t address_table_entries{1u << 20};
  double theta0{0.8};
  double theta1{0.2};
  double detection_prob{0.99};
  double false_positive_prob{0.01};
  /// Idle eviction horizon (Weaver's D_conn; HiFIND cites 10 minutes).
  std::uint64_t idle_timeout_us{600 * kMicrosPerSecond};
  std::uint64_t seed{7};
};

struct TrwAcAlert {
  IPv4 sip{};
  Timestamp when{0};
};

class TrwAc {
 public:
  explicit TrwAc(const TrwAcConfig& config);

  void observe(const PacketRecord& p);

  /// Evicts connections idle past the timeout (Weaver's background sweep).
  void flush(Timestamp now);

  const std::vector<TrwAcAlert>& alerts() const { return alerts_; }

  /// Fixed by construction — the design's selling point and its contrast
  /// with Trw::memory_bytes() in Table 9.
  std::size_t memory_bytes() const;

  /// Fraction of connection-cache slots currently occupied.
  double cache_occupancy() const;

  /// Diagnostic: attempts not recorded because their slot aliased another
  /// live connection (the false-negative channel).
  std::uint64_t aliased_attempts() const { return aliased_attempts_; }

 private:
  struct ConnEntry {
    std::uint32_t tag{0};    ///< truncated hash of {SIP,DIP}; 0 = empty
    Timestamp last_seen{0};
    bool established{false};
    std::uint32_t sip{0};    ///< initiator, for scoring on timeout
  };
  struct AddrEntry {
    double llr{0.0};
    bool decided_scanner{false};
  };

  void score(IPv4 sip, bool success, Timestamp when);
  std::size_t conn_slot(std::uint64_t key) const;
  std::uint32_t conn_tag(std::uint64_t key) const;

  TrwAcConfig config_;
  double step_success_;
  double step_failure_;
  double log_eta0_;
  double log_eta1_;
  std::vector<ConnEntry> connections_;
  std::vector<AddrEntry> addresses_;
  std::vector<TrwAcAlert> alerts_;
  std::uint64_t aliased_attempts_{0};
};

}  // namespace hifind
