#include "baseline/flow_table.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace hifind {
namespace {

/// Forecast entries below this are dropped to keep the table from
/// accumulating every key ever seen with a vanishing weight.
constexpr double kForecastPruneEpsilon = 0.01;

}  // namespace

FlowTableDetector::FlowTableDetector(const HifindDetectorConfig& config)
    : config_(config),
      ratio_filter_(config.min_syn_ratio),
      persistence_filter_(config.min_persist_intervals) {}

void FlowTableDetector::observe(const PacketRecord& p) {
  const std::int64_t delta_i = syn_delta(p);
  if (delta_i == 0) return;
  const double delta = static_cast<double>(delta_i);

  const std::uint64_t k_sip_dport = extract_key(KeyKind::SipDport, p);
  const std::uint64_t k_dip_dport = extract_key(KeyKind::DipDport, p);
  const std::uint64_t k_sip_dip = extract_key(KeyKind::SipDip, p);

  cur_sip_dport_[k_sip_dport] += delta;
  cur_dip_dport_[k_dip_dport] += delta;
  cur_sip_dip_[k_sip_dip] += delta;
  if (delta_i > 0) {
    cur_syn_dip_dport_[k_dip_dport] += 1.0;
  } else {
    synack_history_.insert(k_dip_dport);
  }
  spread_sipdip_dport_[k_sip_dip][unpack_key_port(k_sip_dport)] += delta;
  spread_sipdport_dip_[k_sip_dport][unpack_key_ip(k_dip_dport).addr] += delta;
}

std::vector<HeavyKey> FlowTableDetector::detect_changes(const CountMap& current,
                                                        CountMap& forecast,
                                                        bool primed) const {
  std::vector<HeavyKey> heavy;
  if (primed) {
    const double t = config_.interval_threshold();
    for (const auto& [key, value] : current) {
      const auto it = forecast.find(key);
      const double predicted = it == forecast.end() ? 0.0 : it->second;
      const double error = value - predicted;
      if (error >= t) heavy.push_back(HeavyKey{key, error});
    }
  }
  // Roll EWMA: f' = alpha*current + (1-alpha)*f, over the union of keys.
  const double a = config_.ewma_alpha;
  for (auto it = forecast.begin(); it != forecast.end();) {
    const auto cur = current.find(it->first);
    it->second = a * (cur == current.end() ? 0.0 : cur->second) +
                 (1.0 - a) * it->second;
    if (std::abs(it->second) < kForecastPruneEpsilon) {
      it = forecast.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [key, value] : current) {
    if (!forecast.contains(key) && std::abs(a * value) >= kForecastPruneEpsilon) {
      forecast.emplace(key, primed ? a * value : value);
    }
  }
  return heavy;
}

std::vector<Alert> FlowTableDetector::phase1(std::uint64_t interval) {
  std::vector<Alert> alerts;

  std::unordered_set<std::uint32_t> flooding_dips;
  for (const HeavyKey& k :
       detect_changes(cur_dip_dport_, fc_dip_dport_, primed_)) {
    alerts.push_back(Alert{AttackType::kSynFlooding, interval,
                           KeyKind::DipDport, k.key, k.estimate});
    flooding_dips.insert(unpack_key_ip(k.key).addr);
  }

  flooding_sip_victim_.clear();
  std::unordered_set<std::uint32_t> flooding_sips;
  for (const HeavyKey& k : detect_changes(cur_sip_dip_, fc_sip_dip_, primed_)) {
    if (flooding_dips.contains(unpack_key_dip(k.key).addr)) {
      flooding_sips.insert(unpack_key_sip(k.key).addr);
      flooding_sip_victim_.emplace(unpack_key_sip(k.key).addr,
                                   unpack_key_dip(k.key).addr);
    } else {
      alerts.push_back(Alert{AttackType::kVerticalScan, interval,
                             KeyKind::SipDip, k.key, k.estimate});
    }
  }

  for (const HeavyKey& k :
       detect_changes(cur_sip_dport_, fc_sip_dport_, primed_)) {
    if (flooding_sips.contains(unpack_key_ip(k.key).addr)) {
      alerts.push_back(Alert{AttackType::kNonSpoofedSynFlooding, interval,
                             KeyKind::SipDport, k.key, k.estimate});
    } else {
      alerts.push_back(Alert{AttackType::kHorizontalScan, interval,
                             KeyKind::SipDport, k.key, k.estimate});
    }
  }
  return alerts;
}

bool FlowTableDetector::concentrated(const SpreadMap& spread,
                                     std::uint64_t key) const {
  const auto it = spread.find(key);
  if (it == spread.end()) return false;
  std::vector<double> values;
  values.reserve(it->second.size());
  double total = 0.0;
  for (const auto& [secondary, count] : it->second) {
    const double v = std::max(count, 0.0);
    values.push_back(v);
    total += v;
  }
  if (total <= 0.0) return false;
  const std::size_t top_p = std::min(config_.twod_top_p, values.size());
  std::partial_sort(values.begin(),
                    values.begin() + static_cast<std::ptrdiff_t>(top_p),
                    values.end(), std::greater<>());
  double top_sum = 0.0;
  for (std::size_t i = 0; i < top_p; ++i) top_sum += values[i];
  return top_sum > config_.twod_phi * total;
}

std::vector<Alert> FlowTableDetector::phase2(
    const std::vector<Alert>& alerts) const {
  std::vector<Alert> kept;
  kept.reserve(alerts.size());
  for (const Alert& a : alerts) {
    if (a.type == AttackType::kVerticalScan &&
        concentrated(spread_sipdip_dport_, a.key)) {
      continue;
    }
    if (a.type == AttackType::kHorizontalScan &&
        concentrated(spread_sipdport_dip_, a.key)) {
      continue;
    }
    kept.push_back(a);
  }
  return kept;
}

std::vector<Alert> FlowTableDetector::phase3(const std::vector<Alert>& alerts) {
  persistence_filter_.begin_interval();
  std::vector<Alert> kept;
  kept.reserve(alerts.size());
  std::unordered_set<std::uint32_t> surviving_victims;
  for (const Alert& a : alerts) {
    if (a.type != AttackType::kSynFlooding) {
      continue;  // victim-keyed floods first; dependents in a second pass
    }
    const auto syn_it = cur_syn_dip_dport_.find(a.key);
    const double syn_now = syn_it == cur_syn_dip_dport_.end() ? 0.0
                                                              : syn_it->second;
    const auto un_it = cur_dip_dport_.find(a.key);
    const double unresp_now =
        un_it == cur_dip_dport_.end() ? 0.0 : un_it->second;
    const bool ratio_ok = ratio_filter_.keep(syn_now, unresp_now);
    const bool service_ok = synack_history_.contains(a.key);
    const auto fc_it = fc_syn_dip_dport_.find(a.key);
    const double syn_forecast =
        fc_it == fc_syn_dip_dport_.end() ? 0.0 : fc_it->second;
    const bool surge_ok =
        (syn_now - syn_forecast) >=
        config_.min_syn_surge_fraction * a.magnitude;
    const bool persist_ok = persistence_filter_.observe(a.key);
    if (ratio_ok && service_ok && surge_ok && persist_ok) {
      kept.push_back(a);
      surviving_victims.insert(a.dip().addr);
    }
  }
  persistence_filter_.end_interval();

  // Non-spoofed flooding alerts follow their victim's verdict (see
  // HifindDetector::phase3); scans pass through.
  for (const Alert& a : alerts) {
    if (a.type == AttackType::kSynFlooding) continue;
    if (a.type == AttackType::kNonSpoofedSynFlooding) {
      const auto it = flooding_sip_victim_.find(a.sip().addr);
      if (it == flooding_sip_victim_.end() ||
          !surviving_victims.contains(it->second)) {
        continue;
      }
    }
    kept.push_back(a);
  }
  return kept;
}

IntervalResult FlowTableDetector::end_interval(std::uint64_t interval) {
  IntervalResult result;
  result.interval = interval;
  result.raw = phase1(interval);
  result.after_2d =
      config_.enable_phase2 ? phase2(result.raw) : result.raw;
  result.final =
      config_.enable_phase3 ? phase3(result.after_2d) : result.after_2d;
  // Roll the #SYN forecast (read pre-roll by phase3's surge heuristic).
  detect_changes(cur_syn_dip_dport_, fc_syn_dip_dport_, primed_);
  if (!primed_) {
    // First interval primes the forecasters only (mirrors the sketch path).
    result.raw.clear();
    result.after_2d.clear();
    result.final.clear();
    primed_ = true;
  }

  cur_sip_dport_.clear();
  cur_dip_dport_.clear();
  cur_sip_dip_.clear();
  cur_syn_dip_dport_.clear();
  spread_sipdip_dport_.clear();
  spread_sipdport_dip_.clear();
  return result;
}

std::size_t FlowTableDetector::memory_bytes() const {
  const std::size_t node = 2 * sizeof(void*);
  const std::size_t entry = sizeof(std::uint64_t) + sizeof(double) + node;
  std::size_t total =
      (cur_sip_dport_.size() + cur_dip_dport_.size() + cur_sip_dip_.size() +
       cur_syn_dip_dport_.size() + fc_sip_dport_.size() +
       fc_dip_dport_.size() + fc_sip_dip_.size()) *
      entry;
  for (const auto& [key, inner] : spread_sipdip_dport_) {
    total += entry + inner.size() * (sizeof(std::uint32_t) + sizeof(double) +
                                     node);
  }
  for (const auto& [key, inner] : spread_sipdport_dip_) {
    total += entry + inner.size() * (sizeof(std::uint32_t) + sizeof(double) +
                                     node);
  }
  total += synack_history_.size() * (sizeof(std::uint64_t) + node);
  return total;
}

void FlowTableDetector::reset() {
  primed_ = false;
  cur_sip_dport_.clear();
  cur_dip_dport_.clear();
  cur_sip_dip_.clear();
  cur_syn_dip_dport_.clear();
  spread_sipdip_dport_.clear();
  spread_sipdport_dip_.clear();
  fc_sip_dport_.clear();
  fc_dip_dport_.clear();
  fc_sip_dip_.clear();
  fc_syn_dip_dport_.clear();
  synack_history_.clear();
  persistence_filter_ = PersistenceFilter(config_.min_persist_intervals);
}

}  // namespace hifind
