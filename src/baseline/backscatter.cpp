#include "baseline/backscatter.hpp"

namespace hifind {

BackscatterVerdict BackscatterValidator::verdict() const {
  BackscatterVerdict v;
  v.samples = samples_;
  if (samples_ == 0) return v;

  std::uint64_t top = 0;
  for (const auto count : histogram_) {
    if (count > 0) ++v.distinct_octets;
    if (count > top) top = count;
  }
  v.top_octet_share = static_cast<double>(top) / static_cast<double>(samples_);

  const double expected = static_cast<double>(samples_) / 256.0;
  double chi = 0.0;
  for (const auto count : histogram_) {
    const double d = static_cast<double>(count) - expected;
    chi += d * d / (expected > 0 ? expected : 1.0);
  }
  v.chi_square = chi;

  v.spoofed_uniform = samples_ >= config_.min_samples &&
                      v.distinct_octets >= config_.min_distinct_octets &&
                      v.top_octet_share <= config_.max_octet_share;
  return v;
}

}  // namespace hifind
