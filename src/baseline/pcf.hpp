// PCF — Partial Completion Filters (Kompella, Singh, Varghese — IMC 2004,
// "On scalable attack detection in the network").
//
// Cited by the HiFIND paper as the other scalable flow-level approach and
// noted for its limitation: "they do not differentiate among various
// attacks". A PCF is H parallel hash stages of signed counters; each opening
// event (SYN) increments and each completion event (FIN, or SYN/ACK in the
// variant we use to mirror HiFIND's metric) decrements the key's bucket in
// every stage. A key whose MINIMUM stage value exceeds the threshold shows a
// partial-completion imbalance. Crucially, PCF is NOT reversible: it can say
// "some key in these buckets is anomalous" but cannot name it, and it cannot
// tell a flood from a scan — the two capabilities HiFIND adds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "packet/packet.hpp"

namespace hifind {

struct PcfConfig {
  std::size_t num_stages{3};
  std::size_t num_buckets{1u << 12};
  std::uint64_t seed{19};
  double threshold{60.0};  ///< per-interval partial-completion imbalance
};

class Pcf {
 public:
  explicit Pcf(const PcfConfig& config);

  /// Feeds one packet: SYN => +1, SYN/ACK => -1, keyed by victim {DIP}.
  void observe(const PacketRecord& p);

  /// Minimum stage value for a key — the PCF detection statistic.
  double min_estimate(std::uint64_t key) const;

  /// True if the key's imbalance exceeds the threshold.
  bool suspicious(std::uint64_t key) const {
    return min_estimate(key) > config_.threshold;
  }

  /// Number of buckets over threshold in stage 0 — the detector's aggregate
  /// alarm signal (PCF's actual output granularity: buckets, not keys).
  std::size_t alarmed_buckets() const;

  void clear();

  std::size_t memory_bytes() const {
    return counters_.size() * sizeof(double);
  }

 private:
  std::size_t index(std::size_t stage, std::uint64_t key) const {
    return stage * config_.num_buckets +
           hashes_[stage].bucket(key, config_.num_buckets);
  }

  PcfConfig config_;
  std::vector<TabulationHash> hashes_;
  std::vector<double> counters_;
};

}  // namespace hifind
