// Superspreader detection (Venkataraman, Song, Gibbons, Blum — NDSS 2005,
// "New streaming algorithms for fast detection of superspreaders").
//
// A k-superspreader is a source contacting more than k distinct destinations.
// We implement the one-level filtering algorithm: each distinct {SIP, DIP}
// pair is sampled with probability p — *consistently*, by hashing the pair —
// and a source is reported when its number of distinct sampled destinations
// reaches the scaled threshold p*k. Consistent hashing means a pair repeated
// a million times is still sampled at most once, giving distinct-destination
// semantics in sublinear memory.
//
// Table 1's caveat is reproduced by the generator's P2P traffic: a benign
// peer downloading from many hosts is indistinguishable from a scanner here,
// because this detector ignores whether connections SUCCEED.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "packet/packet.hpp"

namespace hifind {

struct SuperspreaderConfig {
  std::uint32_t k{100};       ///< distinct-destination threshold
  double sample_rate{0.25};   ///< p: pair-sampling probability
  std::uint64_t seed{11};
};

struct SuperspreaderAlert {
  IPv4 sip{};
  Timestamp when{0};
};

class SuperspreaderDetector {
 public:
  explicit SuperspreaderDetector(const SuperspreaderConfig& config);

  void observe(const PacketRecord& p);

  const std::vector<SuperspreaderAlert>& alerts() const { return alerts_; }

  std::size_t memory_bytes() const;

 private:
  SuperspreaderConfig config_;
  std::uint64_t sample_cut_;  ///< hash < cut <=> sampled
  double scaled_threshold_;
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint32_t>>
      sampled_dsts_;  // by SIP
  std::unordered_set<std::uint32_t> reported_;
  std::vector<SuperspreaderAlert> alerts_;
};

}  // namespace hifind
