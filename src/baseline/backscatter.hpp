// Backscatter-style validation of SYN-flooding detections (Moore, Voelker,
// Savage — USENIX Security 2001, "Inferring Internet denial-of-service
// activity").
//
// Moore et al. infer DoS victims from the *uniformity* of addresses involved:
// randomly spoofed attack sources are uniform over the address space. The
// HiFIND paper uses this as ground-truth cross-validation for its detected
// floods (Sec. 5.4: 21 of 32 matched). We reproduce the validator: given the
// SYN packets aimed at a claimed victim, test whether their source addresses
// look uniformly spread — many distinct /8 prefixes, no prefix dominating —
// via prefix coverage and a chi-square statistic over the first octet.
// Non-spoofed floods (few real sources) and flash crowds (client populations
// clustered in real prefixes) fail the test.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "packet/packet.hpp"

namespace hifind {

struct BackscatterConfig {
  /// Minimum distinct first-octet (/8) prefixes among sources for the
  /// "uniform" verdict (random 32-bit addresses cover octets fast).
  std::size_t min_distinct_octets{32};
  /// Maximum share of traffic any single /8 may hold.
  double max_octet_share{0.10};
  /// Minimum samples before a verdict is meaningful.
  std::size_t min_samples{50};
};

/// Verdict for one claimed victim.
struct BackscatterVerdict {
  bool spoofed_uniform{false};  ///< sources look randomly spoofed
  std::size_t samples{0};
  std::size_t distinct_octets{0};
  double top_octet_share{0.0};
  double chi_square{0.0};  ///< over first-octet histogram vs uniform
};

/// Accumulates the source addresses of SYNs aimed at one victim and tests
/// them for spoofed-uniform structure.
class BackscatterValidator {
 public:
  explicit BackscatterValidator(const BackscatterConfig& config = {})
      : config_(config) {}

  /// Feed the source address of each un-responded SYN toward the victim.
  void add_source(IPv4 sip) {
    ++histogram_[(sip.addr >> 24) & 0xff];
    ++samples_;
  }

  BackscatterVerdict verdict() const;

  void reset() {
    histogram_.fill(0);
    samples_ = 0;
  }

 private:
  BackscatterConfig config_;
  std::array<std::uint64_t, 256> histogram_{};
  std::size_t samples_{0};
};

}  // namespace hifind
