#include "baseline/trw_ac.hpp"

#include <cmath>
#include <stdexcept>

#include "common/hash.hpp"

namespace hifind {

TrwAc::TrwAc(const TrwAcConfig& config) : config_(config) {
  if (config.connection_cache_entries == 0 ||
      config.address_table_entries == 0) {
    throw std::invalid_argument("TRW-AC tables must be non-empty");
  }
  if (config.theta1 >= config.theta0 || config.theta0 >= 1.0 ||
      config.theta1 <= 0.0) {
    throw std::invalid_argument("TRW-AC requires 0 < theta1 < theta0 < 1");
  }
  step_success_ = std::log(config.theta1 / config.theta0);
  step_failure_ = std::log((1.0 - config.theta1) / (1.0 - config.theta0));
  log_eta1_ = std::log(config.detection_prob / config.false_positive_prob);
  log_eta0_ = std::log((1.0 - config.detection_prob) /
                       (1.0 - config.false_positive_prob));
  connections_.assign(config.connection_cache_entries, ConnEntry{});
  addresses_.assign(config.address_table_entries, AddrEntry{});
}

std::size_t TrwAc::conn_slot(std::uint64_t key) const {
  return static_cast<std::size_t>(mix64(key ^ mix64(config_.seed))) %
         connections_.size();
}

std::uint32_t TrwAc::conn_tag(std::uint64_t key) const {
  // Non-zero truncated tag from an independent mix; 0 marks an empty slot.
  const auto tag = static_cast<std::uint32_t>(
      mix64(key + 0x9e3779b97f4a7c15ULL ^ mix64(config_.seed << 1)) >> 32);
  return tag == 0 ? 1 : tag;
}

void TrwAc::observe(const PacketRecord& p) {
  if (p.is_syn()) {
    const std::uint64_t key = pack_ip_ip(p.sip, p.dip);
    ConnEntry& e = connections_[conn_slot(key)];
    const std::uint32_t tag = conn_tag(key);
    if (e.tag == tag) {
      e.last_seen = p.ts;  // retransmission of a tracked attempt
      return;
    }
    if (e.tag != 0) {
      // Slot occupied by a DIFFERENT connection. An established occupant
      // absorbs the new attempt unrecorded (Weaver's aliasing); a half-open
      // occupant is overwritten, losing ITS evidence instead.
      if (e.established) {
        ++aliased_attempts_;
        return;
      }
      score(IPv4{e.sip}, /*success=*/false, p.ts);  // evicted half-open fails
    }
    e = ConnEntry{tag, p.ts, false, p.sip.addr};
    return;
  }
  if (p.is_synack()) {
    // Response from p.sip to initiator p.dip.
    const std::uint64_t key = pack_ip_ip(p.dip, p.sip);
    ConnEntry& e = connections_[conn_slot(key)];
    if (e.tag == conn_tag(key)) {
      if (!e.established) {
        e.established = true;
        score(p.dip, /*success=*/true, p.ts);
      }
      e.last_seen = p.ts;
    }
  }
}

void TrwAc::flush(Timestamp now) {
  for (ConnEntry& e : connections_) {
    if (e.tag == 0) continue;
    if (now >= e.last_seen + config_.idle_timeout_us) {
      if (!e.established) {
        score(IPv4{e.sip}, /*success=*/false, now);
      }
      e = ConnEntry{};
    }
  }
}

void TrwAc::score(IPv4 sip, bool success, Timestamp when) {
  AddrEntry& a = addresses_[static_cast<std::size_t>(
      mix64(std::uint64_t{sip.addr} ^ mix64(config_.seed + 3))) %
      addresses_.size()];
  if (a.decided_scanner) return;
  a.llr += success ? step_success_ : step_failure_;
  if (a.llr >= log_eta1_) {
    a.decided_scanner = true;
    alerts_.push_back(TrwAcAlert{sip, when});
  } else if (a.llr <= log_eta0_) {
    a.llr = 0.0;  // accept H0 and restart the walk (Jung et al. Sec. 3)
  }
}

std::size_t TrwAc::memory_bytes() const {
  return connections_.size() * sizeof(ConnEntry) +
         addresses_.size() * sizeof(AddrEntry);
}

double TrwAc::cache_occupancy() const {
  std::size_t used = 0;
  for (const ConnEntry& e : connections_) used += e.tag != 0 ? 1 : 0;
  return static_cast<double>(used) / static_cast<double>(connections_.size());
}

}  // namespace hifind
