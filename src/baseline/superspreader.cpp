#include "baseline/superspreader.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/hash.hpp"

namespace hifind {

SuperspreaderDetector::SuperspreaderDetector(const SuperspreaderConfig& config)
    : config_(config) {
  if (config.sample_rate <= 0.0 || config.sample_rate > 1.0) {
    throw std::invalid_argument("superspreader sample_rate must be in (0,1]");
  }
  if (config.k == 0) {
    throw std::invalid_argument("superspreader k must be positive");
  }
  // rate == 1.0 would overflow the double->uint64 cast; saturate explicitly.
  sample_cut_ = config.sample_rate >= 1.0
                    ? std::numeric_limits<std::uint64_t>::max()
                    : static_cast<std::uint64_t>(
                          config.sample_rate *
                          static_cast<double>(
                              std::numeric_limits<std::uint64_t>::max()));
  scaled_threshold_ = config.sample_rate * static_cast<double>(config.k);
}

void SuperspreaderDetector::observe(const PacketRecord& p) {
  if (!p.is_syn()) return;
  const std::uint64_t pair = pack_ip_ip(p.sip, p.dip);
  if (config_.sample_rate < 1.0 &&
      mix64(pair ^ mix64(config_.seed)) >= sample_cut_) {
    return;  // pair not in the consistent sample
  }
  auto& dsts = sampled_dsts_[p.sip.addr];
  dsts.insert(p.dip.addr);
  if (static_cast<double>(dsts.size()) >= scaled_threshold_ &&
      reported_.insert(p.sip.addr).second) {
    alerts_.push_back(SuperspreaderAlert{p.sip, p.ts});
  }
}

std::size_t SuperspreaderDetector::memory_bytes() const {
  const std::size_t node = 2 * sizeof(void*);
  std::size_t total = 0;
  for (const auto& [sip, dsts] : sampled_dsts_) {
    total += sizeof(sip) + node + dsts.size() * (sizeof(std::uint32_t) + node);
  }
  return total;
}

}  // namespace hifind
