// TRW — Threshold Random Walk port-scan detection (Jung, Paxson, Berger,
// Balakrishnan — IEEE S&P 2004). Reproduced as the paper's primary scan
// baseline (Tables 1 and 5) and as the memory baseline of Table 9.
//
// Model: for each remote source, first-contact connection attempts to
// distinct local destinations are Bernoulli trials. A benign host's attempts
// succeed with probability theta0; a scanner's with theta1 < theta0. The
// log-likelihood ratio random walk
//     L(s) += log(theta1/theta0)           on success
//     L(s) += log((1-theta1)/(1-theta0))   on failure
// crosses log(eta1) => declare scanner, crosses log(eta0) => declare benign,
// with eta1 = PD/PF and eta0 = (1-PD)/(1-PF).
//
// The implementation keeps TRUE per-source and per-connection state — that is
// the point: this is the unbounded-memory design whose DoS vulnerability
// HiFIND fixes, and memory_bytes() feeds the Table 9 comparison.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "packet/packet.hpp"

namespace hifind {

struct TrwConfig {
  double theta0{0.8};  ///< benign first-contact success probability
  double theta1{0.2};  ///< scanner first-contact success probability
  double detection_prob{0.99};   ///< PD
  double false_positive_prob{0.01};  ///< PF
  /// A pending first-contact with no SYN/ACK within this horizon counts as a
  /// failure (edge-router view of an unanswered connection attempt).
  std::uint64_t failure_timeout_us{60 * kMicrosPerSecond};
};

/// One source flagged as a scanner.
struct TrwAlert {
  IPv4 sip{};
  Timestamp when{0};
};

class Trw {
 public:
  explicit Trw(const TrwConfig& config);

  /// Feeds one packet in timestamp order.
  void observe(const PacketRecord& p);

  /// Times out stale pending attempts; call at interval boundaries (and once
  /// at end of trace with the final timestamp).
  void flush(Timestamp now);

  /// Sources declared scanners so far (deduplicated; a source alerts once).
  const std::vector<TrwAlert>& alerts() const { return alerts_; }

  /// Approximate resident memory of per-source + per-connection state.
  std::size_t memory_bytes() const;

  std::size_t tracked_sources() const { return walks_.size(); }
  std::size_t pending_connections() const { return pending_.size(); }

 private:
  struct Walk {
    double llr{0.0};
    bool decided_scanner{false};
    std::unordered_set<std::uint32_t> contacted;  ///< first-contact dedup
  };

  void score(IPv4 sip, bool success, Timestamp when);

  TrwConfig config_;
  double step_success_;
  double step_failure_;
  double log_eta0_;
  double log_eta1_;
  std::unordered_map<std::uint32_t, Walk> walks_;              // by SIP
  std::unordered_map<std::uint64_t, Timestamp> pending_;       // by {SIP,DIP}
  std::vector<TrwAlert> alerts_;
};

}  // namespace hifind
