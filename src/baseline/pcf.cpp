#include "baseline/pcf.hpp"

#include <algorithm>
#include <stdexcept>

namespace hifind {

Pcf::Pcf(const PcfConfig& config) : config_(config) {
  if (config_.num_stages == 0 || config_.num_buckets < 2) {
    throw std::invalid_argument("PCF needs >=1 stage and >=2 buckets");
  }
  hashes_.reserve(config_.num_stages);
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    hashes_.emplace_back(mix64(config_.seed) ^ mix64(h + 0x77));
  }
  counters_.assign(config_.num_stages * config_.num_buckets, 0.0);
}

void Pcf::observe(const PacketRecord& p) {
  const std::int64_t d = syn_delta(p);
  if (d == 0) return;
  // Victim-oriented key: the host being connected to.
  const std::uint64_t key =
      p.is_synack() ? p.sip.addr : p.dip.addr;
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    counters_[index(h, key)] += static_cast<double>(d);
  }
}

double Pcf::min_estimate(std::uint64_t key) const {
  double m = counters_[index(0, key)];
  for (std::size_t h = 1; h < config_.num_stages; ++h) {
    m = std::min(m, counters_[index(h, key)]);
  }
  return m;
}

std::size_t Pcf::alarmed_buckets() const {
  std::size_t n = 0;
  for (std::size_t b = 0; b < config_.num_buckets; ++b) {
    n += counters_[b] > config_.threshold ? 1 : 0;
  }
  return n;
}

void Pcf::clear() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
}

}  // namespace hifind
