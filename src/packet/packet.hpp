// Packet-level traffic model.
//
// HiFIND consumes the TCP/IP header fields only — it never inspects payloads
// (paper Sec. 3.3 restricts detection to TCP header combinations). A
// PacketRecord is therefore a 24-byte POD carrying exactly what the detectors
// and generators need; a day of 239M records (the paper's NU trace) fits the
// same representation.
#pragma once

#include <cstdint>

#include "common/interval.hpp"
#include "common/types.hpp"

namespace hifind {

/// TCP control-flag bits, matching the on-the-wire bit positions.
enum TcpFlags : std::uint8_t {
  kFin = 0x01,
  kSyn = 0x02,
  kRst = 0x04,
  kPsh = 0x08,
  kAck = 0x10,
};

/// Transport protocol of a record. Non-TCP traffic flows through the
/// recorders untouched (HiFIND's threat model is TCP-only, paper Sec. 3.2),
/// but generators emit some UDP background to keep filters honest.
enum class Protocol : std::uint8_t { kTcp = 6, kUdp = 17 };

/// One observed packet. `outbound` is true for packets leaving the monitored
/// edge network (e.g. a server's SYN/ACK response); the SYN−SYN/ACK metric
/// needs both directions.
struct PacketRecord {
  Timestamp ts{0};          ///< microseconds since trace start
  IPv4 sip{};               ///< source address
  IPv4 dip{};               ///< destination address
  std::uint16_t sport{0};   ///< source port
  std::uint16_t dport{0};   ///< destination port
  std::uint16_t len{40};    ///< total packet length in bytes
  std::uint8_t flags{0};    ///< TcpFlags bitmask (TCP only)
  Protocol proto{Protocol::kTcp};
  bool outbound{false};

  constexpr bool is_tcp() const { return proto == Protocol::kTcp; }
  /// Pure SYN: connection-open attempt (SYN set, ACK clear).
  constexpr bool is_syn() const {
    return is_tcp() && (flags & kSyn) != 0 && (flags & kAck) == 0;
  }
  /// SYN/ACK: the passive side accepting a connection.
  constexpr bool is_synack() const {
    return is_tcp() && (flags & kSyn) != 0 && (flags & kAck) != 0;
  }
  constexpr bool is_fin() const { return is_tcp() && (flags & kFin) != 0; }
  constexpr bool is_rst() const { return is_tcp() && (flags & kRst) != 0; }
};

/// Extracts the packed sketch key of the requested kind from a packet.
///
/// Direction note: detection keys are defined over *connection initiator*
/// fields. For an outbound SYN/ACK from server S:port P to client C, the
/// connection's {DIP, Dport} is {S, P} — i.e. the SYN/ACK's *source* fields —
/// and its SIP is C, the SYN/ACK's destination. This function performs that
/// reflection so callers can feed packets of both directions uniformly.
constexpr std::uint64_t extract_key(KeyKind kind, const PacketRecord& p) {
  const IPv4 initiator = p.is_synack() ? p.dip : p.sip;
  const IPv4 responder = p.is_synack() ? p.sip : p.dip;
  const std::uint16_t service = p.is_synack() ? p.sport : p.dport;
  switch (kind) {
    case KeyKind::SipDport:
      return pack_ip_port(initiator, service);
    case KeyKind::DipDport:
      return pack_ip_port(responder, service);
    case KeyKind::SipDip:
      return pack_ip_ip(initiator, responder);
  }
  return 0;
}

/// The per-packet update value for the #SYN − #SYN/ACK metric: +1 for a SYN,
/// −1 for a SYN/ACK, 0 otherwise. The sum over an interval of these values,
/// aggregated by key, is the signal all three detection steps threshold.
constexpr std::int64_t syn_delta(const PacketRecord& p) {
  if (p.is_syn()) return +1;
  if (p.is_synack()) return -1;
  return 0;
}

/// One precomputed recording operation: everything every sketch in a bank
/// needs from one SYN / SYN-ACK packet, classified and key-extracted exactly
/// once. The parallel recording pipeline ships RecordOps (not packets) to its
/// workers, so no worker re-derives keys its siblings already derived; the
/// 2D secondary dimensions (Dport, DIP) are unpacked from the stored keys.
struct RecordOp {
  std::uint64_t k_sip_dport;  ///< {SIP, Dport}, 48-bit packed
  std::uint64_t k_dip_dport;  ///< {DIP, Dport}, 48-bit packed
  std::uint64_t k_sip_dip;    ///< {SIP, DIP}, 64-bit packed
  double delta;               ///< syn_delta * weight (what the RS/2D record)
  double weight;              ///< sampling weight (what the OS/history record)
  bool syn;                   ///< true: SYN (OS side); false: SYN-ACK (history)
};

/// Classifies and key-extracts one packet. Returns false — leaving `out`
/// untouched — for packets that move no sketch state (non-SYN/SYN-ACK),
/// mirroring the early-out in serial recording.
constexpr bool make_record_op(const PacketRecord& p, double weight,
                              RecordOp& out) {
  const std::int64_t delta_i = syn_delta(p);
  if (delta_i == 0) return false;
  out.k_sip_dport = extract_key(KeyKind::SipDport, p);
  out.k_dip_dport = extract_key(KeyKind::DipDport, p);
  out.k_sip_dip = extract_key(KeyKind::SipDip, p);
  out.delta = static_cast<double>(delta_i) * weight;
  out.weight = weight;
  out.syn = delta_i > 0;
  return true;
}

}  // namespace hifind
