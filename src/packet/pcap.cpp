#include "packet/pcap.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace hifind {
namespace {

constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;
constexpr std::uint32_t kMagicMicrosSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanosSwapped = 0x4d3cb2a1;

constexpr std::uint32_t kLinkEthernet = 1;
constexpr std::uint32_t kLinkRawIp = 101;

constexpr std::uint16_t kEthertypeIpv4 = 0x0800;
constexpr std::uint8_t kProtoTcp = 6;
constexpr std::uint8_t kProtoUdp = 17;

std::uint32_t bswap32(std::uint32_t v) { return __builtin_bswap32(v); }
std::uint16_t bswap16(std::uint16_t v) { return __builtin_bswap16(v); }

/// File-order-aware 32/16-bit reads from a byte buffer.
struct FileView {
  const unsigned char* data;
  std::size_t size;
  bool swapped;  ///< file byte order differs from host

  std::uint32_t u32_at(std::size_t off) const {
    std::uint32_t v;
    std::memcpy(&v, data + off, 4);
    return swapped ? bswap32(v) : v;
  }
  std::uint16_t u16_at(std::size_t off) const {
    std::uint16_t v;
    std::memcpy(&v, data + off, 2);
    return swapped ? bswap16(v) : v;
  }
};

/// Big-endian (network order) reads inside a frame.
std::uint16_t be16(const unsigned char* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
std::uint32_t be32(const unsigned char* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

/// Parses IPv4+transport headers starting at `p`; returns false (and bumps
/// the right counter) when the frame is not a TCP/UDP-over-IPv4 packet.
bool parse_ip(const unsigned char* p, std::size_t len, PacketRecord& rec,
              PcapReadStats& stats) {
  if (len < 20) {
    ++stats.truncated;
    return false;
  }
  if ((p[0] >> 4) != 4) {
    ++stats.non_ip;
    return false;
  }
  const std::size_t ihl = static_cast<std::size_t>(p[0] & 0x0f) * 4;
  if (ihl < 20 || len < ihl) {
    ++stats.truncated;
    return false;
  }
  const std::uint8_t proto = p[9];
  if (proto != kProtoTcp && proto != kProtoUdp) {
    ++stats.non_tcp_udp;
    return false;
  }
  rec.len = be16(p + 2);  // IP total length
  rec.sip = IPv4{be32(p + 12)};
  rec.dip = IPv4{be32(p + 16)};
  rec.proto = proto == kProtoTcp ? Protocol::kTcp : Protocol::kUdp;

  const unsigned char* t = p + ihl;
  const std::size_t tlen = len - ihl;
  if (proto == kProtoTcp) {
    if (tlen < 14) {
      ++stats.truncated;
      return false;
    }
    rec.sport = be16(t);
    rec.dport = be16(t + 2);
    rec.flags = static_cast<std::uint8_t>(t[13] & 0x3f);
  } else {
    if (tlen < 8) {
      ++stats.truncated;
      return false;
    }
    rec.sport = be16(t);
    rec.dport = be16(t + 2);
    rec.flags = 0;
  }
  return true;
}

}  // namespace

Trace read_pcap(const std::string& path,
                const std::function<bool(IPv4)>& is_internal,
                PcapReadStats* stats_out, bool rebase) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open pcap file: " + path);
  std::vector<char> raw((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
  if (raw.size() < 24) throw std::runtime_error("pcap too short: " + path);
  const auto* bytes = reinterpret_cast<const unsigned char*>(raw.data());

  std::uint32_t magic;
  std::memcpy(&magic, bytes, 4);
  bool swapped = false, nanos = false;
  switch (magic) {
    case kMagicMicros:
      break;
    case kMagicNanos:
      nanos = true;
      break;
    case kMagicMicrosSwapped:
      swapped = true;
      break;
    case kMagicNanosSwapped:
      swapped = true;
      nanos = true;
      break;
    default:
      throw std::runtime_error("not a pcap file (bad magic): " + path);
  }
  const FileView f{bytes, raw.size(), swapped};
  const std::uint32_t linktype = f.u32_at(20);
  std::size_t link_skip;
  if (linktype == kLinkEthernet) {
    link_skip = 14;
  } else if (linktype == kLinkRawIp) {
    link_skip = 0;
  } else {
    throw std::runtime_error("unsupported pcap link type " +
                             std::to_string(linktype) + ": " + path);
  }

  PcapReadStats stats;
  Trace trace;
  bool have_base = false;
  std::uint64_t base_us = 0;
  std::size_t off = 24;
  while (off + 16 <= raw.size()) {
    const std::uint32_t ts_sec = f.u32_at(off);
    const std::uint32_t ts_frac = f.u32_at(off + 4);
    const std::uint32_t incl = f.u32_at(off + 8);
    off += 16;
    if (off + incl > raw.size()) {
      throw std::runtime_error("truncated pcap frame body: " + path);
    }
    ++stats.frames;
    const unsigned char* frame = bytes + off;
    off += incl;

    std::size_t ip_off = link_skip;
    if (linktype == kLinkEthernet) {
      if (incl < 14) {
        ++stats.truncated;
        continue;
      }
      if (be16(frame + 12) != kEthertypeIpv4) {
        ++stats.non_ip;
        continue;
      }
    }
    PacketRecord rec;
    if (!parse_ip(frame + ip_off, incl - ip_off, rec, stats)) continue;

    const std::uint64_t us =
        std::uint64_t{ts_sec} * 1000000 + (nanos ? ts_frac / 1000 : ts_frac);
    if (!have_base) {
      base_us = rebase ? us : 0;
      have_base = true;
    }
    rec.ts = us - base_us;
    rec.outbound = is_internal ? is_internal(rec.sip) : false;
    trace.push_back(rec);
    ++stats.packets;
  }
  if (stats_out != nullptr) *stats_out = stats;
  return trace;
}

void write_pcap(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open pcap for write: " + path);

  auto put32 = [&](std::uint32_t v) {
    os.write(reinterpret_cast<const char*>(&v), 4);
  };
  auto put16 = [&](std::uint16_t v) {
    os.write(reinterpret_cast<const char*>(&v), 2);
  };
  // Global header, host byte order with standard micros magic.
  put32(kMagicMicros);
  put16(2);   // version major
  put16(4);   // version minor
  put32(0);   // thiszone
  put32(0);   // sigfigs
  put32(65535);  // snaplen
  put32(kLinkRawIp);

  for (const auto& p : trace.packets()) {
    const bool tcp = p.proto == Protocol::kTcp;
    const std::size_t transport = tcp ? 20 : 8;
    const std::size_t total = 20 + transport;

    put32(static_cast<std::uint32_t>(p.ts / 1000000));
    put32(static_cast<std::uint32_t>(p.ts % 1000000));
    put32(static_cast<std::uint32_t>(total));  // incl_len
    put32(std::max<std::uint32_t>(static_cast<std::uint32_t>(total), p.len));

    unsigned char hdr[40] = {};
    hdr[0] = 0x45;  // IPv4, IHL 5
    hdr[2] = static_cast<unsigned char>(total >> 8);
    hdr[3] = static_cast<unsigned char>(total & 0xff);
    hdr[8] = 64;  // TTL
    hdr[9] = tcp ? kProtoTcp : kProtoUdp;
    hdr[12] = static_cast<unsigned char>(p.sip.addr >> 24);
    hdr[13] = static_cast<unsigned char>(p.sip.addr >> 16);
    hdr[14] = static_cast<unsigned char>(p.sip.addr >> 8);
    hdr[15] = static_cast<unsigned char>(p.sip.addr);
    hdr[16] = static_cast<unsigned char>(p.dip.addr >> 24);
    hdr[17] = static_cast<unsigned char>(p.dip.addr >> 16);
    hdr[18] = static_cast<unsigned char>(p.dip.addr >> 8);
    hdr[19] = static_cast<unsigned char>(p.dip.addr);
    unsigned char* t = hdr + 20;
    t[0] = static_cast<unsigned char>(p.sport >> 8);
    t[1] = static_cast<unsigned char>(p.sport & 0xff);
    t[2] = static_cast<unsigned char>(p.dport >> 8);
    t[3] = static_cast<unsigned char>(p.dport & 0xff);
    if (tcp) {
      t[12] = 5 << 4;  // data offset 5 words
      t[13] = p.flags;
    } else {
      t[4] = 0;
      t[5] = 8;  // UDP length
    }
    os.write(reinterpret_cast<const char*>(hdr),
             static_cast<std::streamsize>(total));
  }
  if (!os) throw std::runtime_error("short write on pcap: " + path);
}

}  // namespace hifind
