// Self-contained pcap (libpcap savefile) reader/writer.
//
// Lets HiFIND consume real captures (the paper's evaluation substrate is
// router traces; public traces ship as pcap) and export synthetic scenarios
// to standard tools — without a libpcap dependency. Scope:
//   - classic pcap format, microsecond (0xa1b2c3d4) and nanosecond
//     (0xa1b23c4d) magic, both byte orders;
//   - link types Ethernet (DLT_EN10MB = 1) and raw IPv4 (DLT_RAW = 101);
//   - IPv4 + TCP/UDP headers (options skipped via header-length fields);
//     anything else (ARP, IPv6, ICMP, truncated frames) is counted and
//     skipped, never an error — real captures are full of it.
//
// Direction: pcap has no in/out notion, so the reader derives
// PacketRecord::outbound from a caller-supplied predicate over the source
// address (e.g. NetworkModel::is_internal).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "packet/trace.hpp"

namespace hifind {

/// Read statistics: what was kept and what was skipped (and why).
struct PcapReadStats {
  std::size_t frames{0};          ///< frames in the file
  std::size_t packets{0};         ///< converted to PacketRecords
  std::size_t non_ip{0};          ///< non-IPv4 ethertype / version
  std::size_t non_tcp_udp{0};     ///< other IP protocols
  std::size_t truncated{0};       ///< snap length cut the headers off
};

/// Reads a pcap file into a Trace.
///
/// @param is_internal  classifies a source address as inside the monitored
///                     edge network (sets PacketRecord::outbound).
/// @param rebase       when true (default) timestamps are rebased so the
///                     first frame is t = 0 — what you want for epoch-
///                     stamped captures; pass false to keep absolute
///                     microseconds (e.g. for files produced by write_pcap,
///                     preserving interval alignment exactly).
/// Throws std::runtime_error on malformed file structure; unparseable
/// individual frames are skipped and counted.
Trace read_pcap(const std::string& path,
                const std::function<bool(IPv4)>& is_internal,
                PcapReadStats* stats = nullptr, bool rebase = true);

/// Writes a trace as a microsecond-magic, raw-IPv4 (DLT_RAW) pcap file,
/// synthesizing minimal IPv4+TCP/UDP headers from each PacketRecord.
/// Throws std::runtime_error on I/O failure.
void write_pcap(const Trace& trace, const std::string& path);

}  // namespace hifind
