// NetFlow v5 export codec.
//
// The paper's deployment consumed router NetFlow exports, not raw packets
// ("the router exports netflow data continuously which is recorded with
// sketches of HiFIND on the fly", Sec. 5.1). This codec reads files of
// concatenated NetFlow v5 datagrams (the classic 24-byte header + 48-byte
// records, all big-endian) and converts each TCP record carrying a SYN flag
// into the SYN / SYN-ACK packet events the detectors consume — a record
// whose OR'd tcp_flags contain SYN∧ACK was the responder's half of a
// handshake, SYN alone the initiator's. FIN flags emit a closing event so
// CPM's SYN−FIN statistic works from flow data too.
//
// The writer exports a Trace as v5 datagrams (one record per SYN/SYN-ACK/FIN
// packet), letting synthetic scenarios feed any netflow-consuming tool.
#pragma once

#include <cstdint>
#include <string>

#include "packet/trace.hpp"

namespace hifind {

struct NetflowV5ReadStats {
  std::size_t datagrams{0};
  std::size_t records{0};
  std::size_t packets_emitted{0};  ///< SYN/SYN-ACK/FIN events produced
  std::size_t non_tcp{0};          ///< UDP/other records (passed through)
  std::size_t flagless{0};         ///< TCP records with no SYN/FIN bits
};

/// Reads a file of concatenated NetFlow v5 datagrams into a Trace.
/// Timestamps are absolute microseconds derived from each datagram's
/// unix_secs/sysuptime and the records' first-switched offsets, rebased so
/// the earliest record is t = 0. Throws std::runtime_error on structural
/// corruption (bad version, truncated datagram).
Trace read_netflow_v5(const std::string& path,
                      NetflowV5ReadStats* stats = nullptr);

/// Writes a trace as NetFlow v5 datagrams (up to 30 records each, the
/// conventional export packing). Only SYN, SYN-ACK and FIN packets produce
/// records (one each), plus one record per UDP packet; other TCP segments
/// carry no information the v5 flow summary would have kept.
void write_netflow_v5(const Trace& trace, const std::string& path);

}  // namespace hifind
