#include "packet/trace_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace hifind {
namespace {

constexpr char kMagic[4] = {'H', 'F', 'T', '1'};
constexpr std::size_t kRecordBytes = 8 + 4 + 4 + 2 + 2 + 2 + 1 + 1 + 1;

void put_u16(std::vector<char>& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::vector<char>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::vector<char>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(get_u16(p)) |
         (static_cast<std::uint32_t>(get_u16(p + 2)) << 16);
}

std::uint64_t get_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

void write_trace(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open trace file for write: " + path);

  std::vector<char> buf;
  buf.reserve(16 + trace.size() * kRecordBytes);
  buf.insert(buf.end(), kMagic, kMagic + 4);
  put_u32(buf, 1);  // version
  put_u64(buf, trace.size());
  for (const auto& p : trace.packets()) {
    put_u64(buf, p.ts);
    put_u32(buf, p.sip.addr);
    put_u32(buf, p.dip.addr);
    put_u16(buf, p.sport);
    put_u16(buf, p.dport);
    put_u16(buf, p.len);
    buf.push_back(static_cast<char>(p.flags));
    buf.push_back(static_cast<char>(p.proto));
    buf.push_back(static_cast<char>(p.outbound ? 1 : 0));
  }
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!os) throw std::runtime_error("short write on trace file: " + path);
}

Trace read_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open trace file for read: " + path);

  std::vector<char> raw((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
  if (raw.size() < 16 || std::memcmp(raw.data(), kMagic, 4) != 0) {
    throw std::runtime_error("not a HFT1 trace file: " + path);
  }
  const auto* bytes = reinterpret_cast<const unsigned char*>(raw.data());
  const std::uint32_t version = get_u32(bytes + 4);
  if (version != 1) {
    throw std::runtime_error("unsupported trace version in " + path);
  }
  const std::uint64_t count = get_u64(bytes + 8);
  if (raw.size() != 16 + count * kRecordBytes) {
    throw std::runtime_error("truncated trace file: " + path);
  }

  Trace trace;
  trace.reserve(count);
  const unsigned char* p = bytes + 16;
  for (std::uint64_t i = 0; i < count; ++i, p += kRecordBytes) {
    PacketRecord rec;
    rec.ts = get_u64(p);
    rec.sip = IPv4{get_u32(p + 8)};
    rec.dip = IPv4{get_u32(p + 12)};
    rec.sport = get_u16(p + 16);
    rec.dport = get_u16(p + 18);
    rec.len = get_u16(p + 20);
    rec.flags = p[22];
    rec.proto = static_cast<Protocol>(p[23]);
    rec.outbound = p[24] != 0;
    trace.push_back(rec);
  }
  return trace;
}

}  // namespace hifind
