// Binary trace persistence.
//
// Format "HFT1": a 16-byte header (magic, version, packet count) followed by
// fixed-width little-endian packet records. Fields are serialized explicitly
// rather than memcpy'ing the struct, so the on-disk format is independent of
// compiler padding and stable across platforms.
#pragma once

#include <string>

#include "packet/trace.hpp"

namespace hifind {

/// Writes a trace to a file. Throws std::runtime_error on I/O failure.
void write_trace(const Trace& trace, const std::string& path);

/// Reads a trace written by write_trace. Throws std::runtime_error on I/O
/// failure or malformed content (bad magic, truncated body).
Trace read_trace(const std::string& path);

}  // namespace hifind
