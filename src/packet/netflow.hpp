// Netflow-style flow aggregation.
//
// The paper's traces are netflow exports; the exact (non-sketch) baseline and
// several analyses (e.g. Figure 4's per-{SIP,DIP} unique-port histogram) work
// on flow records rather than packets. A FlowRecord summarizes all packets of
// one (sip, dip, sport, dport, proto) 5-tuple within one aggregation window.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "packet/trace.hpp"

namespace hifind {

/// One unidirectional flow record.
struct FlowRecord {
  IPv4 sip{};
  IPv4 dip{};
  std::uint16_t sport{0};
  std::uint16_t dport{0};
  Protocol proto{Protocol::kTcp};
  Timestamp first_ts{0};
  Timestamp last_ts{0};
  std::uint32_t packets{0};
  std::uint64_t bytes{0};
  std::uint8_t flags_or{0};  ///< OR of TCP flags across the flow's packets
};

/// Aggregates a packet span into flow records. Flows never expire within the
/// span — callers feed one detection interval at a time when they need
/// interval-scoped flows.
class FlowAggregator {
 public:
  /// Adds one packet to its flow (creating the flow on first sight).
  void add(const PacketRecord& p);

  /// All flows accumulated so far, in first-seen order.
  std::vector<FlowRecord> flows() const;

  std::size_t flow_count() const { return flows_.size(); }

  /// Estimated resident memory of the aggregation state in bytes; used by the
  /// Table 9 memory comparison ("complete info" row).
  std::size_t memory_bytes() const;

  void clear();

 private:
  struct TupleKey {
    std::uint64_t hi;
    std::uint64_t lo;
    bool operator==(const TupleKey&) const = default;
  };
  struct TupleKeyHash {
    std::size_t operator()(const TupleKey& k) const;
  };

  std::unordered_map<TupleKey, std::size_t, TupleKeyHash> index_;
  std::vector<FlowRecord> flows_;
};

/// Convenience: aggregate an entire trace in one call.
std::vector<FlowRecord> aggregate_flows(const Trace& trace);

}  // namespace hifind
