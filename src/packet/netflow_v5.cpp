#include "packet/netflow_v5.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace hifind {
namespace {

constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kRecordBytes = 48;
constexpr std::uint16_t kVersion = 5;
constexpr std::size_t kMaxRecordsPerDatagram = 30;

std::uint16_t be16(const unsigned char* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
std::uint32_t be32(const unsigned char* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}
void put16(std::vector<unsigned char>& out, std::uint16_t v) {
  out.push_back(static_cast<unsigned char>(v >> 8));
  out.push_back(static_cast<unsigned char>(v & 0xff));
}
void put32(std::vector<unsigned char>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 16));
  put16(out, static_cast<std::uint16_t>(v & 0xffff));
}

}  // namespace

Trace read_netflow_v5(const std::string& path, NetflowV5ReadStats* stats_out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open netflow file: " + path);
  std::vector<char> raw((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
  const auto* bytes = reinterpret_cast<const unsigned char*>(raw.data());

  NetflowV5ReadStats stats;
  Trace trace;
  std::size_t off = 0;
  while (off + kHeaderBytes <= raw.size()) {
    const std::uint16_t version = be16(bytes + off);
    if (version != kVersion) {
      throw std::runtime_error("netflow v5: unexpected version " +
                               std::to_string(version) + " in " + path);
    }
    const std::uint16_t count = be16(bytes + off + 2);
    const std::uint32_t sysuptime_ms = be32(bytes + off + 4);
    const std::uint32_t unix_secs = be32(bytes + off + 8);
    if (count == 0 || count > kMaxRecordsPerDatagram) {
      throw std::runtime_error("netflow v5: implausible record count");
    }
    const std::size_t body = off + kHeaderBytes;
    if (body + std::size_t{count} * kRecordBytes > raw.size()) {
      throw std::runtime_error("netflow v5: truncated datagram in " + path);
    }
    ++stats.datagrams;

    for (std::uint16_t i = 0; i < count; ++i) {
      const unsigned char* r = bytes + body + std::size_t{i} * kRecordBytes;
      ++stats.records;
      const std::uint32_t first_ms = be32(r + 24);
      const std::uint8_t tcp_flags = r[37];
      const std::uint8_t proto = r[38];

      // Absolute microseconds of the flow's first packet: the export time
      // (unix_secs at sysuptime) minus the uptime delta to first-switched.
      const std::int64_t delta_ms = static_cast<std::int64_t>(first_ms) -
                                    static_cast<std::int64_t>(sysuptime_ms);
      const std::int64_t us =
          static_cast<std::int64_t>(unix_secs) * 1000000 + delta_ms * 1000;

      PacketRecord p;
      p.ts = static_cast<Timestamp>(std::max<std::int64_t>(us, 0));
      p.sip = IPv4{be32(r + 0)};
      p.dip = IPv4{be32(r + 4)};
      p.sport = be16(r + 32);
      p.dport = be16(r + 34);
      p.len = 40;

      if (proto == 17) {
        p.proto = Protocol::kUdp;
        trace.push_back(p);
        ++stats.non_tcp;
        continue;
      }
      if (proto != 6) {
        ++stats.non_tcp;
        continue;
      }
      bool emitted = false;
      if ((tcp_flags & kSyn) != 0) {
        PacketRecord syn = p;
        // SYN+ACK in the flow's OR'd flags marks the responder's half.
        syn.flags =
            (tcp_flags & kAck) != 0 ? (kSyn | kAck) : kSyn;
        trace.push_back(syn);
        ++stats.packets_emitted;
        emitted = true;
      }
      if ((tcp_flags & kFin) != 0) {
        PacketRecord fin = p;
        fin.ts = p.ts + 1;  // close strictly after open
        fin.flags = kFin | kAck;
        trace.push_back(fin);
        ++stats.packets_emitted;
        emitted = true;
      }
      if (!emitted) ++stats.flagless;
    }
    off = body + std::size_t{count} * kRecordBytes;
  }
  if (off != raw.size()) {
    throw std::runtime_error("netflow v5: trailing bytes in " + path);
  }

  // Rebase to the earliest event and time-order.
  trace.sort();
  if (!trace.empty()) {
    const Timestamp base = trace[0].ts;
    Trace rebased;
    rebased.reserve(trace.size());
    for (PacketRecord p : trace.packets()) {
      p.ts -= base;
      rebased.push_back(p);
    }
    trace = std::move(rebased);
  }
  if (stats_out != nullptr) *stats_out = stats;
  return trace;
}

void write_netflow_v5(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open netflow file: " + path);

  // Gather exportable events (SYN / SYN-ACK / FIN / UDP).
  std::vector<const PacketRecord*> events;
  for (const auto& p : trace.packets()) {
    if (p.is_syn() || p.is_synack() || p.is_fin() ||
        p.proto == Protocol::kUdp) {
      events.push_back(&p);
    }
  }

  // Fixed epoch for the export stream; per-datagram sysuptime 1 hour.
  constexpr std::uint32_t kUptimeMs = 3600 * 1000;
  std::uint32_t sequence = 0;
  for (std::size_t start = 0; start < events.size();
       start += kMaxRecordsPerDatagram) {
    const auto count = static_cast<std::uint16_t>(
        std::min(kMaxRecordsPerDatagram, events.size() - start));
    // Anchor the datagram's export clock at the LAST record's second so
    // every record's first-switched offset stays within uptime.
    const Timestamp anchor_us = events[start + count - 1]->ts;
    const std::uint32_t unix_secs =
        static_cast<std::uint32_t>(anchor_us / 1000000) + 1;

    std::vector<unsigned char> out;
    out.reserve(kHeaderBytes + std::size_t{count} * kRecordBytes);
    put16(out, kVersion);
    put16(out, count);
    put32(out, kUptimeMs);
    put32(out, unix_secs);
    put32(out, 0);  // unix_nsecs
    put32(out, sequence);
    put16(out, 0);  // engine type/id
    put16(out, 0);  // sampling
    sequence += count;

    for (std::uint16_t i = 0; i < count; ++i) {
      const PacketRecord& p = *events[start + i];
      // first-switched (ms of uptime) s.t. header math inverts exactly:
      // us = unix_secs*1e6 + (first - uptime)*1000.
      const std::int64_t delta_ms =
          (static_cast<std::int64_t>(p.ts) -
           static_cast<std::int64_t>(unix_secs) * 1000000) /
          1000;
      const auto first_ms =
          static_cast<std::uint32_t>(static_cast<std::int64_t>(kUptimeMs) +
                                     delta_ms);
      put32(out, p.sip.addr);
      put32(out, p.dip.addr);
      put32(out, 0);  // nexthop
      put16(out, 0);  // input if
      put16(out, 0);  // output if
      put32(out, 1);  // dPkts
      put32(out, p.len);
      put32(out, first_ms);
      put32(out, first_ms);  // last
      put16(out, p.sport);
      put16(out, p.dport);
      out.push_back(0);  // pad
      out.push_back(p.proto == Protocol::kTcp ? p.flags : 0);
      out.push_back(static_cast<unsigned char>(p.proto));
      out.push_back(0);  // tos
      put16(out, 0);     // src_as
      put16(out, 0);     // dst_as
      out.push_back(0);  // src_mask
      out.push_back(0);  // dst_mask
      put16(out, 0);     // pad2
    }
    os.write(reinterpret_cast<const char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
  }
  if (!os) throw std::runtime_error("short write on netflow file: " + path);
}

}  // namespace hifind
