// In-memory packet traces and summary statistics.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "packet/packet.hpp"

namespace hifind {

/// Aggregate statistics over a trace, for sanity checks and reports.
struct TraceStats {
  std::size_t packets{0};
  std::size_t tcp_packets{0};
  std::size_t syn_packets{0};
  std::size_t synack_packets{0};
  std::size_t outbound_packets{0};
  std::uint64_t total_bytes{0};
  Timestamp first_ts{0};
  Timestamp last_ts{0};

  double duration_seconds() const {
    return last_ts >= first_ts
               ? static_cast<double>(last_ts - first_ts) / kMicrosPerSecond
               : 0.0;
  }
};

/// A packet trace ordered by timestamp. Generators append out of order and
/// call sort() once; consumers iterate in time order.
class Trace {
 public:
  Trace() = default;

  void reserve(std::size_t n) { packets_.reserve(n); }
  void push_back(const PacketRecord& p) { packets_.push_back(p); }

  /// Appends all packets of another trace (used to merge attack traffic into
  /// background traffic). Does not re-sort.
  void append(const Trace& other);

  /// Stable-sorts by timestamp. Stability keeps a SYN before the SYN/ACK the
  /// generator emitted at the same microsecond.
  void sort();

  std::span<const PacketRecord> packets() const { return packets_; }
  std::size_t size() const { return packets_.size(); }
  bool empty() const { return packets_.empty(); }
  const PacketRecord& operator[](std::size_t i) const { return packets_[i]; }

  TraceStats stats() const;

 private:
  std::vector<PacketRecord> packets_;
};

}  // namespace hifind
