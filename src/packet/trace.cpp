#include "packet/trace.hpp"

#include <algorithm>

namespace hifind {

void Trace::append(const Trace& other) {
  packets_.insert(packets_.end(), other.packets_.begin(),
                  other.packets_.end());
}

void Trace::sort() {
  std::stable_sort(
      packets_.begin(), packets_.end(),
      [](const PacketRecord& a, const PacketRecord& b) { return a.ts < b.ts; });
}

TraceStats Trace::stats() const {
  TraceStats s;
  s.packets = packets_.size();
  if (!packets_.empty()) {
    s.first_ts = packets_.front().ts;
    s.last_ts = packets_.back().ts;
  }
  for (const auto& p : packets_) {
    s.total_bytes += p.len;
    if (p.is_tcp()) ++s.tcp_packets;
    if (p.is_syn()) ++s.syn_packets;
    if (p.is_synack()) ++s.synack_packets;
    if (p.outbound) ++s.outbound_packets;
  }
  return s;
}

}  // namespace hifind
