#include "packet/netflow.hpp"

#include "common/hash.hpp"

namespace hifind {

std::size_t FlowAggregator::TupleKeyHash::operator()(const TupleKey& k) const {
  return static_cast<std::size_t>(mix64(k.hi ^ mix64(k.lo)));
}

void FlowAggregator::add(const PacketRecord& p) {
  const TupleKey key{pack_ip_ip(p.sip, p.dip),
                     (std::uint64_t{p.sport} << 32) |
                         (std::uint64_t{p.dport} << 16) |
                         static_cast<std::uint64_t>(p.proto)};
  auto [it, inserted] = index_.try_emplace(key, flows_.size());
  if (inserted) {
    FlowRecord rec;
    rec.sip = p.sip;
    rec.dip = p.dip;
    rec.sport = p.sport;
    rec.dport = p.dport;
    rec.proto = p.proto;
    rec.first_ts = p.ts;
    flows_.push_back(rec);
  }
  FlowRecord& f = flows_[it->second];
  f.last_ts = p.ts;
  ++f.packets;
  f.bytes += p.len;
  if (p.is_tcp()) f.flags_or |= p.flags;
}

std::vector<FlowRecord> FlowAggregator::flows() const { return flows_; }

std::size_t FlowAggregator::memory_bytes() const {
  // Hash-map node overhead approximated as key + index + two pointers.
  const std::size_t per_entry =
      sizeof(TupleKey) + sizeof(std::size_t) + 2 * sizeof(void*);
  return flows_.size() * (sizeof(FlowRecord) + per_entry);
}

void FlowAggregator::clear() {
  index_.clear();
  flows_.clear();
}

std::vector<FlowRecord> aggregate_flows(const Trace& trace) {
  FlowAggregator agg;
  for (const auto& p : trace.packets()) agg.add(p);
  return agg.flows();
}

}  // namespace hifind
