#include "sketch/verification_sketch.hpp"

#include <algorithm>

namespace hifind {

std::vector<HeavyKey> VerificationSketch::filter(
    const std::vector<HeavyKey>& candidates, double threshold) const {
  std::vector<HeavyKey> kept;
  kept.reserve(candidates.size());
  for (const HeavyKey& c : candidates) {
    const double v = sketch_.estimate(c.key);
    if (v >= threshold) {
      kept.push_back(HeavyKey{c.key, std::min(c.estimate, v)});
    }
  }
  return kept;
}

}  // namespace hifind
