// AVX2 backend for simd_ops. Compiled with -mavx2 -ffp-contract=off (and
// WITHOUT -mfma): every vector body uses only vmulpd/vaddpd/vsubpd, whose
// per-lane results are bit-identical to the scalar backend's mul/add/sub —
// the bit-identity contract the detection epoch's determinism rests on.
// Remainder elements (n % 4) run the same scalar expressions.
#if defined(HIFIND_HAVE_AVX2)

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace hifind::simd::detail::avx2 {

void scale(double* y, std::size_t n, double c) {
  const __m256d vc = _mm256_set1_pd(c);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i), vc));
  }
  for (; i < n; ++i) y[i] *= c;
}

void accumulate(double* y, const double* x, std::size_t n, double c) {
  const __m256d vc = _mm256_set1_pd(c);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(vc, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += c * x[i];
}

void axpby(double* y, const double* x, std::size_t n, double a, double b) {
  const __m256d va = _mm256_set1_pd(a);
  const __m256d vb = _mm256_set1_pd(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ay = _mm256_mul_pd(va, _mm256_loadu_pd(y + i));
    const __m256d bx = _mm256_mul_pd(vb, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(ay, bx));
  }
  for (; i < n; ++i) y[i] = (a * y[i]) + (b * x[i]);
}

void ewma_roll(double* fc, const double* obs, double* err, std::size_t n,
               double alpha) {
  const double keep = 1.0 - alpha;
  const __m256d vkeep = _mm256_set1_pd(keep);
  const __m256d valpha = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d o = _mm256_loadu_pd(obs + i);
    const __m256d f = _mm256_loadu_pd(fc + i);
    _mm256_storeu_pd(err + i, _mm256_sub_pd(o, f));
    _mm256_storeu_pd(fc + i, _mm256_add_pd(_mm256_mul_pd(vkeep, f),
                                           _mm256_mul_pd(valpha, o)));
  }
  for (; i < n; ++i) {
    const double o = obs[i];
    err[i] = o - fc[i];
    fc[i] = (keep * fc[i]) + (alpha * o);
  }
}

std::size_t ewma_roll_collect(double* fc, const double* obs, double* err,
                              std::size_t n, double alpha, double cut,
                              std::uint32_t* out_idx) {
  const double keep = 1.0 - alpha;
  const __m256d vkeep = _mm256_set1_pd(keep);
  const __m256d valpha = _mm256_set1_pd(alpha);
  const __m256d vcut = _mm256_set1_pd(cut);
  std::size_t emitted = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d o = _mm256_loadu_pd(obs + i);
    const __m256d f = _mm256_loadu_pd(fc + i);
    const __m256d e = _mm256_sub_pd(o, f);
    _mm256_storeu_pd(err + i, e);
    _mm256_storeu_pd(fc + i, _mm256_add_pd(_mm256_mul_pd(vkeep, f),
                                           _mm256_mul_pd(valpha, o)));
    unsigned m = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(e, vcut, _CMP_GE_OQ)));
    while (m != 0) {
      const int lane = std::countr_zero(m);
      m &= m - 1;
      out_idx[emitted++] = static_cast<std::uint32_t>(i) +
                           static_cast<std::uint32_t>(lane);
    }
  }
  for (; i < n; ++i) {
    const double o = obs[i];
    const double e = o - fc[i];
    err[i] = e;
    fc[i] = (keep * fc[i]) + (alpha * o);
    if (e >= cut) out_idx[emitted++] = static_cast<std::uint32_t>(i);
  }
  return emitted;
}

void holt_roll(double* level, double* trend, const double* obs, double* err,
               std::size_t n, double alpha, double beta) {
  const double keep_a = 1.0 - alpha;
  const double keep_b = 1.0 - beta;
  const __m256d vka = _mm256_set1_pd(keep_a);
  const __m256d va = _mm256_set1_pd(alpha);
  const __m256d vkb = _mm256_set1_pd(keep_b);
  const __m256d vb = _mm256_set1_pd(beta);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d o = _mm256_loadu_pd(obs + i);
    const __m256d l = _mm256_loadu_pd(level + i);
    const __m256d t = _mm256_loadu_pd(trend + i);
    const __m256d f = _mm256_add_pd(l, t);
    _mm256_storeu_pd(err + i, _mm256_sub_pd(o, f));
    const __m256d nl =
        _mm256_add_pd(_mm256_mul_pd(vka, f), _mm256_mul_pd(va, o));
    const __m256d d = _mm256_sub_pd(nl, l);
    _mm256_storeu_pd(trend + i, _mm256_add_pd(_mm256_mul_pd(vkb, t),
                                              _mm256_mul_pd(vb, d)));
    _mm256_storeu_pd(level + i, nl);
  }
  for (; i < n; ++i) {
    const double o = obs[i];
    const double f = level[i] + trend[i];
    err[i] = o - f;
    const double nl = (keep_a * f) + (alpha * o);
    const double d = nl - level[i];
    trend[i] = (keep_b * trend[i]) + (beta * d);
    level[i] = nl;
  }
}

std::size_t holt_roll_collect(double* level, double* trend, const double* obs,
                              double* err, std::size_t n, double alpha,
                              double beta, double cut,
                              std::uint32_t* out_idx) {
  const double keep_a = 1.0 - alpha;
  const double keep_b = 1.0 - beta;
  const __m256d vka = _mm256_set1_pd(keep_a);
  const __m256d va = _mm256_set1_pd(alpha);
  const __m256d vkb = _mm256_set1_pd(keep_b);
  const __m256d vb = _mm256_set1_pd(beta);
  const __m256d vcut = _mm256_set1_pd(cut);
  std::size_t emitted = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d o = _mm256_loadu_pd(obs + i);
    const __m256d l = _mm256_loadu_pd(level + i);
    const __m256d t = _mm256_loadu_pd(trend + i);
    const __m256d f = _mm256_add_pd(l, t);
    const __m256d e = _mm256_sub_pd(o, f);
    _mm256_storeu_pd(err + i, e);
    const __m256d nl =
        _mm256_add_pd(_mm256_mul_pd(vka, f), _mm256_mul_pd(va, o));
    const __m256d d = _mm256_sub_pd(nl, l);
    _mm256_storeu_pd(trend + i, _mm256_add_pd(_mm256_mul_pd(vkb, t),
                                              _mm256_mul_pd(vb, d)));
    _mm256_storeu_pd(level + i, nl);
    unsigned m = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(e, vcut, _CMP_GE_OQ)));
    while (m != 0) {
      const int lane = std::countr_zero(m);
      m &= m - 1;
      out_idx[emitted++] = static_cast<std::uint32_t>(i) +
                           static_cast<std::uint32_t>(lane);
    }
  }
  for (; i < n; ++i) {
    const double o = obs[i];
    const double f = level[i] + trend[i];
    const double e = o - f;
    err[i] = e;
    const double nl = (keep_a * f) + (alpha * o);
    const double d = nl - level[i];
    trend[i] = (keep_b * trend[i]) + (beta * d);
    level[i] = nl;
    if (e >= cut) out_idx[emitted++] = static_cast<std::uint32_t>(i);
  }
  return emitted;
}

void ma_roll(const double* sum, const double* obs, double* err, std::size_t n,
             double inv_n) {
  const __m256d vinv = _mm256_set1_pd(inv_n);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(vinv, _mm256_loadu_pd(sum + i));
    _mm256_storeu_pd(err + i, _mm256_sub_pd(_mm256_loadu_pd(obs + i), prod));
  }
  for (; i < n; ++i) err[i] = obs[i] - inv_n * sum[i];
}

std::size_t ma_roll_collect(const double* sum, const double* obs, double* err,
                            std::size_t n, double inv_n, double cut,
                            std::uint32_t* out_idx) {
  const __m256d vinv = _mm256_set1_pd(inv_n);
  const __m256d vcut = _mm256_set1_pd(cut);
  std::size_t emitted = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(vinv, _mm256_loadu_pd(sum + i));
    const __m256d e = _mm256_sub_pd(_mm256_loadu_pd(obs + i), prod);
    _mm256_storeu_pd(err + i, e);
    unsigned m = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(e, vcut, _CMP_GE_OQ)));
    while (m != 0) {
      const int lane = std::countr_zero(m);
      m &= m - 1;
      out_idx[emitted++] = static_cast<std::uint32_t>(i) +
                           static_cast<std::uint32_t>(lane);
    }
  }
  for (; i < n; ++i) {
    const double e = obs[i] - inv_n * sum[i];
    err[i] = e;
    if (e >= cut) out_idx[emitted++] = static_cast<std::uint32_t>(i);
  }
  return emitted;
}

void tab_hash64(const std::uint64_t* keys, std::size_t n,
                const std::uint64_t* table, int nbytes, std::uint64_t* out) {
  const __m256i byte_mask = _mm256_set1_epi64x(0xff);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    __m256i h = _mm256_setzero_si256();
    for (int b = 0; b < nbytes; ++b) {
      const __m256i idx =
          _mm256_and_si256(_mm256_srli_epi64(k, 8 * b), byte_mask);
      h = _mm256_xor_si256(
          h, _mm256_i64gather_epi64(
                 reinterpret_cast<const long long*>(table + b * 256), idx, 8));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  for (; i < n; ++i) {
    const std::uint64_t k = keys[i];
    std::uint64_t h = 0;
    for (int b = 0; b < nbytes; ++b) {
      h ^= table[b * 256 + ((k >> (8 * b)) & 0xff)];
    }
    out[i] = h;
  }
}

}  // namespace hifind::simd::detail::avx2

#endif  // HIFIND_HAVE_AVX2
