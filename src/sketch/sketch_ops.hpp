// Batched sketch-update operands.
//
// The recording hot path (paper Sec. 5.5.3) applies long runs of independent
// UPDATEs whose bucket indices are data-dependent random accesses into
// multi-megabyte counter arrays — a classic cache-miss-bound loop. The batch
// APIs (`update_batch` on each sketch type) take a block of these operands,
// compute every bucket index first while issuing software prefetches for the
// counter lines, and only then apply the deltas, so the hash work of later
// keys overlaps the memory latency of earlier ones.
//
// Batch updates are BIT-IDENTICAL to the equivalent sequence of scalar
// update() calls: per sketch, counters and stage sums receive the same
// floating-point additions in the same order — prefetching never reorders
// arithmetic.
#pragma once

#include <cstdint>

namespace hifind {

/// One pending 1D-sketch update: add `delta` to `key`'s bucket per stage.
struct KeyDelta {
  std::uint64_t key;
  double delta;
};

/// One pending 2D-sketch update: add `delta` at (x_key, y_key) per stage.
struct KeyDelta2d {
  std::uint64_t x_key;
  std::uint64_t y_key;
  double delta;
};

/// Portable best-effort prefetch of the cache line holding *p (for write).
inline void prefetch_write(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/1);
#else
  (void)p;
#endif
}

/// How update_batch computes bucket indices.
///
/// kVectorized (default) precomputes all (stage, bucket) flat indices for a
/// chunk of operands in one pass through simd::tab_hash64 before touching any
/// counter; kLegacy keeps the original per-operand index loop. Both paths
/// apply deltas in the same per-op, per-stage order, so counters are
/// bit-identical — the toggle exists so benchmarks can measure the
/// index-precomputation win against the prior pipeline path and so property
/// tests can diff the two directly.
enum class BatchIndexMode { kVectorized, kLegacy };

/// Sets the process-wide batch index mode. Like simd::set_force_scalar, this
/// is for tests and benchmarks; not thread-safe against concurrent batches.
void set_batch_index_mode(BatchIndexMode mode);

/// The current batch index mode.
BatchIndexMode batch_index_mode();

}  // namespace hifind
