#include "sketch/reverse_inference.hpp"

#include <bit>
#include <span>

namespace hifind {
namespace {

/// DFS machinery. Works entirely in mangled-key space; unmangles at leaves.
///
/// Performance note: a node's per-stage "consistent heavy buckets" are
/// grouped by their sub-index at the current word position; every child
/// byte's per-stage subset is then exactly one of those groups (the one its
/// word hash selects). Children therefore hold std::spans into the parent's
/// grouping storage — which lives on the stack across the recursion — and
/// the whole search performs no per-branch copying.
class InferenceSearch {
 public:
  InferenceSearch(const ReversibleSketch& sketch, double threshold,
                  const InferenceOptions& options,
                  std::vector<std::vector<std::uint32_t>> stage_buckets)
      : sketch_(sketch),
        threshold_(threshold),
        options_(options),
        num_stages_(sketch.config().num_stages),
        num_words_(sketch.config().num_words()),
        bits_per_word_(sketch.config().bits_per_word()),
        sub_range_(std::size_t{1} << bits_per_word_),
        // Quorum of at least one stage, and the miss-count planes hold at
        // most 15 stages / misses up to 7 in the <=r formula.
        effective_slack_(
            std::min(options.stage_slack,
                     std::min<std::size_t>(num_stages_ - 1, 7))),
        roots_(std::move(stage_buckets)) {
    // One reusable workspace per depth: DFS holds exactly one active node
    // per level, so sibling nodes can share grouping storage. clear() keeps
    // vector capacity, making interior nodes allocation-free after warmup.
    levels_.resize(static_cast<std::size_t>(num_words_));
    for (auto& level : levels_) {
      level.groups.resize(num_stages_ * sub_range_);
      level.child.resize(num_stages_);
    }
  }

  InferenceResult run() {
    InferenceResult result;
    for (const auto& b : roots_) result.heavy_bucket_total += b.size();

    // A key must be heavy in >= H - r stages; if fewer stages have any heavy
    // bucket at all, nothing can qualify.
    std::size_t alive = 0;
    for (const auto& b : roots_) alive += b.empty() ? 0 : 1;
    if (alive + effective_slack_ < num_stages_) return result;

    std::vector<std::span<const std::uint32_t>> consistent(num_stages_);
    for (std::size_t h = 0; h < num_stages_; ++h) consistent[h] = roots_[h];
    descend(0, 0, consistent, result);
    return result;
  }

 private:
  using BucketSpan = std::span<const std::uint32_t>;

  /// Sub-index of bucket `index` at word position w (word 0 = MSB block).
  std::uint32_t sub_index(std::uint32_t index, int w) const {
    const int shift = bits_per_word_ * (num_words_ - 1 - w);
    return (index >> shift) & ((1u << bits_per_word_) - 1u);
  }

  void descend(int word, std::uint64_t prefix,
               const std::vector<BucketSpan>& consistent,
               InferenceResult& result) {
    if (result.truncated) return;
    if (word == num_words_) {
      emit(prefix, consistent, result);
      return;
    }

    // Group each stage's consistent buckets by their sub-index at this word.
    // groups[h * sub_range_ + v] = buckets with sub-index v in stage h.
    auto& groups = levels_[static_cast<std::size_t>(word)].groups;
    for (auto& g : groups) g.clear();
    for (std::size_t h = 0; h < num_stages_; ++h) {
      for (const std::uint32_t b : consistent[h]) {
        groups[h * sub_range_ + sub_index(b, word)].push_back(b);
      }
    }

    // Viable bytes via 256-bit masks: a byte keeps stage h alive iff its
    // word-hash value selects a non-empty group, i.e. iff it is in the union
    // of those values' preimage masks. Count per-byte stage MISSES with a
    // bit-sliced ripple adder (num_stages <= 15 => 4 planes) and keep bytes
    // with miss count <= stage_slack. This replaces the 256 x H inner loop
    // with ~40 word-wide ops per node.
    std::array<std::uint64_t, 4> miss0{}, miss1{}, miss2{}, miss3{};
    for (std::size_t h = 0; h < num_stages_; ++h) {
      std::array<std::uint64_t, 4> alive_mask{};
      const WordHash& wh = sketch_.word_hash(h, word);
      for (std::size_t v = 0; v < sub_range_; ++v) {
        if (groups[h * sub_range_ + v].empty()) continue;
        const auto& m = wh.preimage_mask(static_cast<std::uint8_t>(v));
        for (int i = 0; i < 4; ++i) alive_mask[i] |= m[i];
      }
      for (int i = 0; i < 4; ++i) {
        std::uint64_t carry = ~alive_mask[i];  // this stage's misses
        std::uint64_t t = miss0[i] & carry;
        miss0[i] ^= carry;
        carry = t;
        t = miss1[i] & carry;
        miss1[i] ^= carry;
        carry = t;
        t = miss2[i] & carry;
        miss2[i] ^= carry;
        carry = t;
        miss3[i] |= carry;
      }
    }
    std::array<std::uint64_t, 4> viable{};
    for (int i = 0; i < 4; ++i) {
      std::uint64_t le = 0;
      for (std::size_t r = 0; r <= effective_slack_; ++r) {
        le |= ((r & 1) ? miss0[i] : ~miss0[i]) &
              ((r & 2) ? miss1[i] : ~miss1[i]) &
              ((r & 4) ? miss2[i] : ~miss2[i]) & ~miss3[i];
      }
      viable[i] = le;
    }

    auto& child = levels_[static_cast<std::size_t>(word)].child;
    for (int i = 0; i < 4; ++i) {
      std::uint64_t bits = viable[i];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        const auto byte = static_cast<std::size_t>(i * 64 + bit);
        for (std::size_t h = 0; h < num_stages_; ++h) {
          const std::uint8_t v =
              sketch_.word_hash(h, word).map(static_cast<std::uint8_t>(byte));
          child[h] = groups[h * sub_range_ + v];
        }
        descend(word + 1, (prefix << 8) | byte, child, result);
        if (result.truncated) return;
      }
    }
  }

  void emit(std::uint64_t mangled, const std::vector<BucketSpan>& consistent,
            InferenceResult& result) {
    // At a leaf every surviving stage pins the key to exactly the bucket it
    // hashed into; count survivors once more (defensive — descend() already
    // pruned below the quorum).
    std::size_t alive = 0;
    for (const auto& b : consistent) alive += b.empty() ? 0 : 1;
    if (alive + effective_slack_ < num_stages_) return;

    const std::uint64_t key = sketch_.mangler().unmangle(mangled);
    const double est = sketch_.estimate(key);
    if (est < threshold_) return;  // median across ALL stages must agree
    if (options_.verifier && !options_.verifier(key, est)) return;
    if (result.keys.size() >= options_.max_candidates) {
      result.truncated = true;
      return;
    }
    result.keys.push_back(HeavyKey{key, est});
  }

  const ReversibleSketch& sketch_;
  double threshold_;
  const InferenceOptions& options_;
  std::size_t num_stages_;
  int num_words_;
  int bits_per_word_;
  std::size_t sub_range_;
  std::size_t effective_slack_;
  std::vector<std::vector<std::uint32_t>> roots_;

  struct LevelWorkspace {
    std::vector<std::vector<std::uint32_t>> groups;
    std::vector<BucketSpan> child;
  };
  std::vector<LevelWorkspace> levels_;
};

}  // namespace

std::vector<std::vector<std::uint32_t>> heavy_buckets(
    const ReversibleSketch& sketch, double threshold) {
  const auto& cfg = sketch.config();
  const double k = static_cast<double>(cfg.num_buckets());
  std::vector<std::vector<std::uint32_t>> out(cfg.num_stages);
  for (std::size_t h = 0; h < cfg.num_stages; ++h) {
    // estimate >= t  <=>  bucket >= t*(1 - 1/K) + sum/K
    const double cut = threshold * (1.0 - 1.0 / k) + sketch.stage_sum(h) / k;
    for (std::size_t b = 0; b < cfg.num_buckets(); ++b) {
      if (sketch.bucket_value(h, b) >= cut) {
        out[h].push_back(static_cast<std::uint32_t>(b));
      }
    }
  }
  return out;
}

namespace {

/// Top-N-anomalies mode: keep each stage's largest buckets only. Ties on
/// bucket value break toward the lower bucket index, so the kept set is a
/// deterministic function of the sketch (partial_sort alone leaves
/// equal-valued buckets in unspecified order).
void apply_top_n(const ReversibleSketch& sketch,
                 const InferenceOptions& options,
                 std::vector<std::vector<std::uint32_t>>& buckets) {
  if (options.max_heavy_per_stage == 0) return;
  for (std::size_t h = 0; h < buckets.size(); ++h) {
    auto& stage = buckets[h];
    if (stage.size() <= options.max_heavy_per_stage) continue;
    std::partial_sort(
        stage.begin(),
        stage.begin() +
            static_cast<std::ptrdiff_t>(options.max_heavy_per_stage),
        stage.end(), [&](std::uint32_t a, std::uint32_t b) {
          const double va = sketch.bucket_value(h, a);
          const double vb = sketch.bucket_value(h, b);
          return va > vb || (va == vb && a < b);
        });
    stage.resize(options.max_heavy_per_stage);
    std::sort(stage.begin(), stage.end());
  }
}

}  // namespace

InferenceResult infer_heavy_keys(const ReversibleSketch& sketch,
                                 double threshold,
                                 const InferenceOptions& options) {
  return infer_heavy_keys(sketch, threshold, options,
                          heavy_buckets(sketch, threshold));
}

InferenceResult infer_heavy_keys(
    const ReversibleSketch& sketch, double threshold,
    const InferenceOptions& options,
    std::vector<std::vector<std::uint32_t>> stage_buckets) {
  apply_top_n(sketch, options, stage_buckets);
  InferenceSearch search(sketch, threshold, options, std::move(stage_buckets));
  return search.run();
}

}  // namespace hifind
