#include "sketch/reverse_inference.hpp"

#include <algorithm>
#include <bit>

namespace hifind {
namespace {

/// Pops (and returns) the lowest set bit of a 256-bit mask, or -1 when the
/// mask is empty. Ascending byte order keeps the DFS traversal — and with it
/// every truncation decision — deterministic.
int pop_lowest_byte(std::array<std::uint64_t, 4>& mask) {
  for (int i = 0; i < 4; ++i) {
    if (mask[i] != 0) {
      const int bit = std::countr_zero(mask[i]);
      mask[i] &= mask[i] - 1;
      return i * 64 + bit;
    }
  }
  return -1;
}

/// Top-N-anomalies mode: keep each stage's largest buckets only. Ties on
/// bucket value break toward the lower bucket index, so the kept set is a
/// deterministic function of the sketch (partial_sort alone leaves
/// equal-valued buckets in unspecified order). Returns the number of heavy
/// buckets dropped across all stages.
std::size_t apply_top_n(const ReversibleSketch& sketch,
                        const InferenceOptions& options,
                        std::vector<std::vector<std::uint32_t>>& buckets) {
  if (options.max_heavy_per_stage == 0) return 0;
  std::size_t dropped = 0;
  for (std::size_t h = 0; h < buckets.size(); ++h) {
    auto& stage = buckets[h];
    if (stage.size() <= options.max_heavy_per_stage) continue;
    std::partial_sort(
        stage.begin(),
        stage.begin() +
            static_cast<std::ptrdiff_t>(options.max_heavy_per_stage),
        stage.end(), [&](std::uint32_t a, std::uint32_t b) {
          const double va = sketch.bucket_value(h, a);
          const double vb = sketch.bucket_value(h, b);
          return va > vb || (va == vb && a < b);
        });
    dropped += stage.size() - options.max_heavy_per_stage;
    stage.resize(options.max_heavy_per_stage);
    std::sort(stage.begin(), stage.end());
  }
  return dropped;
}

}  // namespace

std::vector<std::vector<std::uint32_t>> heavy_buckets(
    const ReversibleSketch& sketch, double threshold) {
  const auto& cfg = sketch.config();
  const double k = static_cast<double>(cfg.num_buckets());
  std::vector<std::vector<std::uint32_t>> out(cfg.num_stages);
  for (std::size_t h = 0; h < cfg.num_stages; ++h) {
    // estimate >= t  <=>  bucket >= t*(1 - 1/K) + sum/K
    const double cut = threshold * (1.0 - 1.0 / k) + sketch.stage_sum(h) / k;
    for (std::size_t b = 0; b < cfg.num_buckets(); ++b) {
      if (sketch.bucket_value(h, b) >= cut) {
        out[h].push_back(static_cast<std::uint32_t>(b));
      }
    }
  }
  return out;
}

std::uint32_t StreamingInference::sub_index(std::uint32_t index, int w) const {
  const int shift = bits_per_word_ * (num_words_ - 1 - w);
  return (index >> shift) & ((1u << bits_per_word_) - 1u);
}

void StreamingInference::begin(const ReversibleSketch& sketch,
                               double threshold,
                               const InferenceOptions& options,
                               std::vector<std::vector<std::uint32_t>>
                                   stage_buckets) {
  sketch_ = &sketch;
  threshold_ = threshold;
  options_ = options;
  const auto& cfg = sketch.config();
  num_stages_ = cfg.num_stages;
  num_words_ = cfg.num_words();
  bits_per_word_ = cfg.bits_per_word();
  sub_range_ = std::size_t{1} << bits_per_word_;
  // Quorum of at least one stage, and the miss-count planes hold at most
  // 15 stages / misses up to 7 in the <=r formula.
  effective_slack_ = std::min(options.stage_slack,
                              std::min<std::size_t>(num_stages_ - 1, 7));
  result_ = InferenceResult{};
  depth_ = -1;
  done_ = true;

  roots_ = std::move(stage_buckets);
  result_.heavy_buckets_dropped = apply_top_n(sketch, options_, roots_);
  for (const auto& b : roots_) result_.heavy_bucket_total += b.size();

  // One reusable workspace per depth: the DFS holds exactly one active node
  // per level, so sibling nodes share grouping storage. clear() inside
  // enter_level keeps vector capacity, making the steady state
  // allocation-free on stable shapes.
  levels_.resize(static_cast<std::size_t>(num_words_));
  for (auto& level : levels_) {
    level.groups.resize(num_stages_ * sub_range_);
  }
  child_.resize(num_stages_);
  root_spans_.resize(num_stages_);

  // A key must be heavy in >= H - r stages; if fewer stages have any heavy
  // bucket at all, nothing can qualify.
  std::size_t alive = 0;
  for (const auto& b : roots_) alive += b.empty() ? 0 : 1;
  if (alive + effective_slack_ < num_stages_) return;  // done_, empty result

  for (std::size_t h = 0; h < num_stages_; ++h) root_spans_[h] = roots_[h];
  enter_level(0, 0, root_spans_);
  depth_ = 0;
  done_ = false;
}

void StreamingInference::begin(const ReversibleSketch& sketch,
                               double threshold,
                               const InferenceOptions& options) {
  begin(sketch, threshold, options, heavy_buckets(sketch, threshold));
}

void StreamingInference::enter_level(int w, std::uint64_t prefix,
                                     std::span<const BucketSpan> consistent) {
  Level& lvl = levels_[static_cast<std::size_t>(w)];

  // Group each stage's consistent buckets by their sub-index at this word.
  // groups[h * sub_range_ + v] = buckets with sub-index v in stage h.
  auto& groups = lvl.groups;
  for (auto& g : groups) g.clear();
  std::size_t grouped = 0;
  for (std::size_t h = 0; h < num_stages_; ++h) {
    for (const std::uint32_t b : consistent[h]) {
      groups[h * sub_range_ + sub_index(b, w)].push_back(b);
    }
    grouped += consistent[h].size();
  }

  // Viable bytes via 256-bit masks: a byte keeps stage h alive iff its
  // word-hash value selects a non-empty group, i.e. iff it is in the union
  // of those values' preimage masks. Count per-byte stage MISSES with a
  // bit-sliced ripple adder (num_stages <= 15 => 4 planes) and keep bytes
  // with miss count <= stage_slack. This replaces the 256 x H inner loop
  // with ~40 word-wide ops per node.
  std::array<std::uint64_t, 4> miss0{}, miss1{}, miss2{}, miss3{};
  for (std::size_t h = 0; h < num_stages_; ++h) {
    std::array<std::uint64_t, 4> alive_mask{};
    const WordHash& wh = sketch_->word_hash(h, w);
    for (std::size_t v = 0; v < sub_range_; ++v) {
      if (groups[h * sub_range_ + v].empty()) continue;
      const auto& m = wh.preimage_mask(static_cast<std::uint8_t>(v));
      for (int i = 0; i < 4; ++i) alive_mask[i] |= m[i];
    }
    for (int i = 0; i < 4; ++i) {
      std::uint64_t carry = ~alive_mask[i];  // this stage's misses
      std::uint64_t t = miss0[i] & carry;
      miss0[i] ^= carry;
      carry = t;
      t = miss1[i] & carry;
      miss1[i] ^= carry;
      carry = t;
      t = miss2[i] & carry;
      miss2[i] ^= carry;
      carry = t;
      miss3[i] |= carry;
    }
  }
  for (int i = 0; i < 4; ++i) {
    std::uint64_t le = 0;
    for (std::size_t r = 0; r <= effective_slack_; ++r) {
      le |= ((r & 1) ? miss0[i] : ~miss0[i]) &
            ((r & 2) ? miss1[i] : ~miss1[i]) &
            ((r & 4) ? miss2[i] : ~miss2[i]) & ~miss3[i];
    }
    lvl.viable[i] = le;
  }
  lvl.prefix = prefix;

  // Work meter: one unit for the node plus one per bucket regrouped (the
  // node's dominant cost). Deterministic — a pure function of the search
  // state, never of timing.
  result_.work_used += 1 + grouped;
}

void StreamingInference::emit(std::uint64_t mangled) {
  result_.work_used += 2;  // estimate + screen
  // At a leaf every surviving stage pins the key to exactly the bucket it
  // hashed into; count survivors once more (defensive — the descent already
  // pruned below the quorum).
  std::size_t alive = 0;
  for (const auto& b : child_) alive += b.empty() ? 0 : 1;
  if (alive + effective_slack_ < num_stages_) return;

  const std::uint64_t key = sketch_->mangler().unmangle(mangled);
  const double est = sketch_->estimate(key);
  if (est < threshold_) return;  // median across ALL stages must agree
  if (options_.verifier && !options_.verifier(key, est)) return;
  if (result_.keys.size() >= options_.max_candidates) {
    result_.truncated = true;
    done_ = true;
    return;
  }
  result_.keys.push_back(HeavyKey{key, est});
}

bool StreamingInference::run_chunk(std::size_t quantum) {
  if (done_) return true;
  const std::size_t chunk_start = result_.work_used;
  while (result_.work_used - chunk_start < quantum) {
    if (depth_ < 0) {  // every subtree explored
      done_ = true;
      break;
    }
    if (options_.max_work != 0 && result_.work_used >= options_.max_work) {
      result_.work_exhausted = true;
      done_ = true;
      break;
    }
    Level& lvl = levels_[static_cast<std::size_t>(depth_)];
    const int byte = pop_lowest_byte(lvl.viable);
    if (byte < 0) {  // level exhausted: backtrack
      --depth_;
      continue;
    }
    const std::uint64_t prefix =
        (lvl.prefix << 8) | static_cast<std::uint64_t>(byte);
    for (std::size_t h = 0; h < num_stages_; ++h) {
      const std::uint8_t v = sketch_->word_hash(h, depth_)
                                 .map(static_cast<std::uint8_t>(byte));
      child_[h] = lvl.groups[h * sub_range_ + v];
    }
    if (depth_ + 1 == num_words_) {
      emit(prefix);
      if (done_) break;  // candidate cap aborts the whole search
    } else {
      enter_level(depth_ + 1, prefix, child_);
      ++depth_;
    }
  }
  return done_;
}

InferenceResult StreamingInference::take_result() {
  InferenceResult out = std::move(result_);
  result_ = InferenceResult{};
  options_ = InferenceOptions{};  // drop any captured verifier
  sketch_ = nullptr;
  depth_ = -1;
  done_ = true;
  return out;
}

InferenceResult infer_heavy_keys(const ReversibleSketch& sketch,
                                 double threshold,
                                 const InferenceOptions& options) {
  return infer_heavy_keys(sketch, threshold, options,
                          heavy_buckets(sketch, threshold));
}

InferenceResult infer_heavy_keys(
    const ReversibleSketch& sketch, double threshold,
    const InferenceOptions& options,
    std::vector<std::vector<std::uint32_t>> stage_buckets) {
  StreamingInference search;
  search.begin(sketch, threshold, options, std::move(stage_buckets));
  while (!search.run_chunk(~std::size_t{0})) {
  }
  return search.take_result();
}

}  // namespace hifind
