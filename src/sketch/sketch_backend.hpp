// Pluggable invertible-sketch backend.
//
// Detection needs exactly six capabilities from its per-key-space sketches —
// UPDATE, ESTIMATE, COMBINE, COMBINE_INTO, REVERSE, and serialize — and
// until this layer existed they were welded to one implementation, the
// Schweller reversible sketch, whose REVERSE is a modular-hash DFS sweep.
// InvertibleSketch is the seam: a closed-set value wrapper over the backends
// that provide those capabilities, selected per SketchBank by config.
//
//   kReversible — ReversibleSketch + StreamingInference (the paper-faithful
//                 reference backend; REVERSE = bucket-intersection DFS).
//   kCompact    — CompactInvertibleSketch + CompactExtraction (Tang-style
//                 bucket-embedded key material; REVERSE = O(key_bits) direct
//                 decode per heavy bucket, no sweep).
//
// A std::variant rather than virtual dispatch: the recording hot path calls
// update()/update_batch() millions of times per second, the fused forecaster
// kernels need raw counter spans (SketchKernelAccess), and the set of
// backends is known at compile time. The wrapper exposes the full flat-array
// sketch surface, so Forecaster<InvertibleSketch>, SketchArena, the SIMD
// kernels, the shard merge, and the wire layer all work unchanged — and the
// backend contract every implementation must honor is:
//
//   * COMBINE linearity: counters are plain linear accumulators and
//     combine/combine_into/accumulate/scale are EXACT whole-array linear
//     algebra (same simd kernels), so shard merges are bit-identical to
//     serial recording and forecasters roll in sketch space.
//   * Resumable REVERSE: the extraction engine exposes
//     begin/run_chunk/take_result with a deterministic work meter, so the
//     epoch budget truncates at a point that is a pure function of
//     (bank, config) — never of chunk size, thread count, or wall clock.
//   * Flat serialization: state is config + one double array
//     (counters()/load_counters()), which the HFB wire frames ship as-is.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>

#include "sketch/compact_invertible.hpp"
#include "sketch/reversible_sketch.hpp"
#include "sketch/sketch_kernels.hpp"

namespace hifind {

enum class SketchBackendKind : std::uint8_t {
  kReversible = 0,  ///< modular-hash reversible sketch + DFS reversal
  kCompact = 1,     ///< compact invertible sketch + direct bucket decode
};

/// "reversible" / "compact" — stable names used by benches, CI and configs.
std::string_view sketch_backend_name(SketchBackendKind kind);

/// Parses a backend name; throws std::invalid_argument on unknown names.
SketchBackendKind sketch_backend_from_name(std::string_view name);

/// Shape of one invertible sketch, backend selection included. Only the
/// selected backend's sub-config is used; both are kept so a SketchBank
/// config can flip backends without re-deriving shapes.
struct InvertibleSketchConfig {
  SketchBackendKind kind{SketchBackendKind::kReversible};
  ReversibleSketchConfig reversible{};
  CompactInvertibleConfig compact{};

  bool operator==(const InvertibleSketchConfig&) const = default;
};

/// The pluggable invertible sketch. Value-semantic; every member dispatches
/// to the selected backend. See the file comment for the backend contract.
class InvertibleSketch {
 public:
  /// Largest COMBINE term count the stack-projected combine_into supports —
  /// sized for SketchBank::kMaxShards + the destination.
  static constexpr std::size_t kMaxTerms = 33;

  explicit InvertibleSketch(const InvertibleSketchConfig& config)
      : config_(config),
        impl_(config.kind == SketchBackendKind::kReversible
                  ? Impl(std::in_place_type<ReversibleSketch>,
                         config.reversible)
                  : Impl(std::in_place_type<CompactInvertibleSketch>,
                         config.compact)) {}

  SketchBackendKind kind() const { return config_.kind; }
  const InvertibleSketchConfig& config() const { return config_; }

  /// Backend-specific views (for serialization and tests). Throws
  /// std::bad_variant_access when the other backend is selected.
  const ReversibleSketch& reversible() const {
    return std::get<ReversibleSketch>(impl_);
  }
  const CompactInvertibleSketch& compact() const {
    return std::get<CompactInvertibleSketch>(impl_);
  }

  void update(std::uint64_t key, double delta) {
    std::visit([&](auto& s) { s.update(key, delta); }, impl_);
  }
  void update_batch(std::span<const KeyDelta> ops) {
    std::visit([&](auto& s) { s.update_batch(ops); }, impl_);
  }
  double estimate(std::uint64_t key) const {
    return std::visit([&](const auto& s) { return s.estimate(key); }, impl_);
  }

  bool combinable_with(const InvertibleSketch& other) const {
    return config_ == other.config_;
  }

  void accumulate(const InvertibleSketch& other, double coeff = 1.0) {
    check_same(other, "accumulate");
    std::visit(
        [&](auto& s) {
          using S = std::remove_reference_t<decltype(s)>;
          s.accumulate(std::get<S>(other.impl_), coeff);
        },
        impl_);
  }
  void scale(double coeff) {
    std::visit([&](auto& s) { s.scale(coeff); }, impl_);
  }
  void clear() {
    std::visit([](auto& s) { s.clear(); }, impl_);
  }

  static InvertibleSketch combine(
      std::span<const std::pair<double, const InvertibleSketch*>> terms) {
    if (terms.empty()) {
      throw std::invalid_argument("InvertibleSketch::combine: no terms");
    }
    InvertibleSketch out(terms.front().second->config());
    out.combine_into(terms);
    return out;
  }

  /// Destination-reuse COMBINE: projects the term list onto the selected
  /// backend (stack storage, up to kMaxTerms) and forwards. Same contract as
  /// the backends': `this` may alias term 0 only.
  void combine_into(
      std::span<const std::pair<double, const InvertibleSketch*>> terms);

  double bucket_value(std::size_t stage, std::size_t bucket) const {
    return std::visit(
        [&](const auto& s) { return s.bucket_value(stage, bucket); }, impl_);
  }
  double stage_sum(std::size_t stage) const {
    return std::visit([&](const auto& s) { return s.stage_sum(stage); },
                      impl_);
  }
  std::span<const double> counters() const {
    return std::visit([](const auto& s) { return s.counters(); }, impl_);
  }
  void load_counters(std::span<const double> counters) {
    std::visit([&](auto& s) { s.load_counters(counters); }, impl_);
  }

  /// Collect-region shape for the fused forecaster kernels (the compact
  /// backend's threshold scan covers the value counters only).
  std::size_t collect_rows() const {
    return std::visit(
        [](const auto& s) -> std::size_t { return s.config().num_stages; },
        impl_);
  }
  std::size_t collect_cols() const {
    return std::visit(
        [](const auto& s) -> std::size_t { return s.config().num_buckets(); },
        impl_);
  }

  std::size_t memory_bytes() const {
    return std::visit([](const auto& s) { return s.memory_bytes(); }, impl_);
  }
  std::size_t memory_bytes_hw() const {
    return std::visit([](const auto& s) { return s.memory_bytes_hw(); },
                      impl_);
  }
  std::size_t accesses_per_update() const {
    return std::visit([](const auto& s) { return s.accesses_per_update(); },
                      impl_);
  }
  std::uint64_t update_count() const {
    return std::visit([](const auto& s) { return s.update_count(); }, impl_);
  }

 private:
  friend struct SketchKernelAccess;
  using Impl = std::variant<ReversibleSketch, CompactInvertibleSketch>;

  void check_same(const InvertibleSketch& other, const char* what) const {
    if (impl_.index() != other.impl_.index()) {
      throw std::invalid_argument(std::string("InvertibleSketch::") + what +
                                  ": backends differ");
    }
  }

  InvertibleSketchConfig config_;
  Impl impl_;
};

/// REVERSE for the pluggable sketch: wraps the backend extraction engines
/// behind one begin/run_chunk/take_result surface with the shared
/// InferenceOptions/InferenceResult types. Both engines are kept as members
/// (they retain workspaces across runs), so a long-lived ReverseEngine stays
/// allocation-free on stable shapes, whichever backend drives it.
class ReverseEngine {
 public:
  ReverseEngine() = default;
  ReverseEngine(const ReverseEngine&) = delete;
  ReverseEngine& operator=(const ReverseEngine&) = delete;

  void begin(const InvertibleSketch& sketch, double threshold,
             const InferenceOptions& options, StageBuckets stage_buckets);
  void begin(const InvertibleSketch& sketch, double threshold,
             const InferenceOptions& options);
  bool run_chunk(std::size_t quantum);
  bool done() const {
    return compact_active_ ? extract_.done() : dfs_.done();
  }
  std::size_t work_used() const {
    return compact_active_ ? extract_.work_used() : dfs_.work_used();
  }
  InferenceResult take_result();

 private:
  StreamingInference dfs_;
  CompactExtraction extract_;
  bool compact_active_{false};
};

/// Per-stage heavy-bucket indices of the selected backend (the shared
/// estimate-cut formula; the heavy_buckets() format both engines consume).
StageBuckets heavy_buckets(const InvertibleSketch& sketch, double threshold);

/// One-shot REVERSE through the selected backend.
InferenceResult infer_heavy_keys(const InvertibleSketch& sketch,
                                 double threshold,
                                 const InferenceOptions& options = {});
InferenceResult infer_heavy_keys(const InvertibleSketch& sketch,
                                 double threshold,
                                 const InferenceOptions& options,
                                 StageBuckets stage_buckets);

// SketchKernelAccess dispatch for the wrapper (declared in
// sketch_kernels.hpp): route the kernel layer straight at the selected
// backend's storage via the template overloads, which are friends of every
// backend type.
inline std::span<double> SketchKernelAccess::counters(InvertibleSketch& s) {
  return std::visit(
      [](auto& impl) { return SketchKernelAccess::counters(impl); }, s.impl_);
}
inline std::span<const double> SketchKernelAccess::counters(
    const InvertibleSketch& s) {
  return std::visit(
      [](const auto& impl) { return SketchKernelAccess::counters(impl); },
      s.impl_);
}
inline std::span<double> SketchKernelAccess::stage_sums(InvertibleSketch& s) {
  return std::visit(
      [](auto& impl) { return SketchKernelAccess::stage_sums(impl); },
      s.impl_);
}
inline std::span<const double> SketchKernelAccess::stage_sums(
    const InvertibleSketch& s) {
  return std::visit(
      [](const auto& impl) { return SketchKernelAccess::stage_sums(impl); },
      s.impl_);
}
inline std::uint64_t SketchKernelAccess::update_count(
    const InvertibleSketch& s) {
  return std::visit(
      [](const auto& impl) { return SketchKernelAccess::update_count(impl); },
      s.impl_);
}
inline void SketchKernelAccess::set_update_count(InvertibleSketch& s,
                                                 std::uint64_t n) {
  std::visit([&](auto& impl) { SketchKernelAccess::set_update_count(impl, n); },
             s.impl_);
}

}  // namespace hifind
