// Two-dimensional k-ary sketch (the paper's Sec. 4 contribution).
//
// Motivation: after reverse inference names an anomalous {SIP,DIP} pair, is
// it a SYN flood (un-responded SYNs concentrated on 1-2 destination ports) or
// a vertical scan (spread over many ports)? A 1D sketch cannot answer — it
// aggregated the ports away. The 2D sketch keeps H independent Kx-by-Ky
// matrices: the x-hash of the primary key selects a column, the y-hash of the
// secondary key a row. UPDATE touches one cell per matrix (5 memory accesses
// for H = 5 — paper Sec. 5.5.2). Classification reads the column selected by
// the primary key and tests how concentrated its mass is: if the top-p cells
// hold more than a fraction phi of the column total in a majority of the H
// matrices, the secondary dimension is concentrated (flooding-like);
// otherwise it is spread (scan-like).
//
// HiFIND instantiates two of these: {SIP,DIP} x {Dport} to split vertical
// scans from non-spoofed floods, and {SIP,Dport} x {DIP} to split horizontal
// scans from floods. Linearity (COMBINE) holds exactly as for 1D sketches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "common/mem_policy.hpp"
#include "sketch/sketch_ops.hpp"

namespace hifind {

struct SketchKernelAccess;

/// Shape parameters of a 2D sketch.
struct Sketch2dConfig {
  std::size_t num_stages{5};     ///< H (paper: 5)
  std::size_t x_buckets{1u << 12};  ///< Kx: columns (paper: 2^12)
  std::size_t y_buckets{64};     ///< Ky: rows per column (paper: 64)
  std::uint64_t seed{1};

  bool operator==(const Sketch2dConfig&) const = default;
};

/// Verdict of the column-concentration test.
enum class ColumnShape : std::uint8_t {
  kConcentrated,  ///< mass on few rows — flooding-like
  kSpread,        ///< mass across many rows — scan-like
};

class TwoDSketch {
 public:
  explicit TwoDSketch(const Sketch2dConfig& config);

  /// Adds `delta` at (x_key, y_key): one cell per matrix.
  void update(std::uint64_t x_key, std::uint64_t y_key, double delta);

  /// Applies a block of updates: hashes every operand's cell indices first
  /// (prefetching the cell lines), then applies the deltas. Bit-identical to
  /// calling update() per operand in order.
  void update_batch(std::span<const KeyDelta2d> ops);

  /// The column selected by x_key in one matrix: Ky cell values.
  std::vector<double> column(std::size_t stage, std::uint64_t x_key) const;

  /// Concentration test for one matrix: sum of the largest `top_p` cells
  /// exceeds `phi` times the column total. Columns with non-positive total
  /// (no un-responded-SYN mass) report kSpread.
  ColumnShape classify_column(std::size_t stage, std::uint64_t x_key,
                              std::size_t top_p, double phi) const;

  /// Majority vote of classify_column over all H matrices.
  /// Paper defaults: top_p = 5 of Ky = 64, phi = 0.8.
  ColumnShape classify(std::uint64_t x_key, std::size_t top_p = 5,
                       double phi = 0.8) const;

  /// Estimated number of distinct active rows in the column (cells holding a
  /// meaningful positive share); an observable proxy for "how many ports did
  /// this source touch", used by the Figure 4 reproduction.
  std::size_t active_rows(std::uint64_t x_key, double min_cell) const;

  bool combinable_with(const TwoDSketch& other) const {
    return config_ == other.config_;
  }

  /// this += coeff * other. Throws std::invalid_argument on shape mismatch.
  void accumulate(const TwoDSketch& other, double coeff = 1.0);

  void scale(double coeff);
  void clear();

  static TwoDSketch combine(
      std::span<const std::pair<double, const TwoDSketch*>> terms);

  /// Destination-reuse COMBINE: this = sum ci*Si in place — no sketch
  /// construction, no allocation. `this` may appear only as the FIRST term;
  /// every term must be combinable_with(*this). Hot at interval seal, where
  /// the sharded recorder reduces per-core shard replicas.
  void combine_into(
      std::span<const std::pair<double, const TwoDSketch*>> terms);

  const Sketch2dConfig& config() const { return config_; }
  std::span<const double> cells() const { return cells_; }

  /// Deserialization support: replaces the cell array.
  /// Throws std::invalid_argument on size mismatch.
  void load_cells(std::span<const double> cells);
  std::size_t memory_bytes() const { return cells_.size() * sizeof(double); }
  std::size_t memory_bytes_hw() const {
    return cells_.size() * sizeof(std::uint32_t);
  }
  std::size_t accesses_per_update() const { return config_.num_stages; }
  std::uint64_t update_count() const { return update_count_; }

 private:
  friend struct SketchKernelAccess;  // fused kernels (sketch_kernels.hpp)

  /// The original per-operand index loop (BatchIndexMode::kLegacy, and the
  /// fallback for shapes the vectorized path's u32 flat indices can't hold).
  void update_batch_legacy(std::span<const KeyDelta2d> ops);

  std::size_t cell_index(std::size_t stage, std::uint64_t x_key,
                         std::uint64_t y_key) const {
    // Hashes carry their bucket counts (power-of-two fast path applies).
    const std::size_t col = x_hashes_[stage].bucket(x_key);
    const std::size_t row = y_hashes_[stage].bucket(y_key);
    return (stage * config_.x_buckets + col) * config_.y_buckets + row;
  }

  Sketch2dConfig config_;
  std::vector<TabulationHash> x_hashes_;
  std::vector<TabulationHash> y_hashes_;
  mem::CounterVec cells_;  // stage-major, then column-major; hugepage-backed
  std::uint64_t update_count_{0};
};

}  // namespace hifind
