// Verification sketch: screens reverse-inference output.
//
// Reverse inference can emit false keys when unrelated heavy buckets
// intersect consistently across stages. The reversible-sketch papers pair
// each RS with an independent ordinary k-ary sketch over the *full* key
// (hashes unrelated to the modular word hashes); a candidate key survives
// only if this second sketch also estimates it above threshold. Paper config:
// 2^14 buckets per stage for every verification sketch.
#pragma once

#include <vector>

#include "sketch/kary_sketch.hpp"
#include "sketch/reverse_inference.hpp"

namespace hifind {

class VerificationSketch {
 public:
  explicit VerificationSketch(const KarySketchConfig& config)
      : sketch_(config) {}

  /// Records the same stream the paired reversible sketch records.
  void update(std::uint64_t key, double delta) { sketch_.update(key, delta); }

  /// Keeps only candidates whose verification estimate also clears
  /// `threshold`; re-reports each key with the *minimum* of the two
  /// estimates (a conservative value for downstream ranking).
  std::vector<HeavyKey> filter(const std::vector<HeavyKey>& candidates,
                               double threshold) const;

  /// Underlying sketch, e.g. for COMBINE across routers.
  KarySketch& sketch() { return sketch_; }
  const KarySketch& sketch() const { return sketch_; }

 private:
  KarySketch sketch_;
};

}  // namespace hifind
