// Fused sketch-level kernels for the detection epoch.
//
// Forecasting in sketch space is linear algebra over the flat counter
// arrays, and the seed implementation spelled each forecaster step as a
// sequence of whole-array passes (copy, scale, accumulate) plus a separate
// heavy-bucket threshold scan per stage. These kernels collapse each step
// into ONE pass over the counters (dispatched to simd_ops), maintain the
// cached per-stage sums analytically with the exact scalar expressions the
// multi-pass sequence produced, and can collect the per-stage heavy-bucket
// candidate lists during that same pass — so reverse inference starts with
// its `heavy_buckets` input already in hand.
//
// Bit-identity: for EWMA and Holt, every per-element and per-stage-sum
// expression is operation-for-operation the one the unfused
// copy/scale/accumulate sequence evaluated, so fused output is
// bit-identical to the seed path (tests assert this). The moving-average
// forecaster's *incremental* running sum is the one deliberate deviation —
// it re-associates the window sum — and is equivalence-tested under
// tolerance instead.
//
// All kernels work on KarySketch, ReversibleSketch and TwoDSketch; heavy
// collection requires per-stage sums and therefore degrades to plain
// rolling (empty `heavy`) on TwoDSketch.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sketch/kary_sketch.hpp"
#include "sketch/reversible_sketch.hpp"
#include "sketch/simd_ops.hpp"
#include "sketch/sketch2d.hpp"

namespace hifind {

class InvertibleSketch;  // backend wrapper (sketch_backend.hpp)

/// Per-stage heavy-bucket candidate lists (ascending bucket ids) — the
/// format reverse inference consumes (see heavy_buckets()).
using StageBuckets = std::vector<std::vector<std::uint32_t>>;

/// Counter-storage access for the kernel layer. Befriended by the sketch
/// types so fused kernels can run single passes over raw storage while
/// keeping the cached stage sums consistent; nothing else should touch
/// counters directly. The InvertibleSketch overloads (defined inline in
/// sketch_backend.hpp — non-template, so they beat the generic template on
/// exact match) dispatch through the backend variant, which lets every
/// kernel below instantiate for the wrapper without per-kernel
/// specializations.
struct SketchKernelAccess {
  template <class S>
  static std::span<double> counters(S& s) {
    return s.counters_;
  }
  template <class S>
  static std::span<const double> counters(const S& s) {
    return s.counters_;
  }
  static std::span<double> counters(TwoDSketch& s) { return s.cells_; }
  static std::span<const double> counters(const TwoDSketch& s) {
    return s.cells_;
  }
  static std::span<double> counters(InvertibleSketch& s);
  static std::span<const double> counters(const InvertibleSketch& s);

  template <class S>
  static std::span<double> stage_sums(S& s) {
    return s.stage_sums_;
  }
  template <class S>
  static std::span<const double> stage_sums(const S& s) {
    return s.stage_sums_;
  }
  static std::span<double> stage_sums(InvertibleSketch& s);
  static std::span<const double> stage_sums(const InvertibleSketch& s);

  template <class S>
  static std::uint64_t update_count(const S& s) {
    return s.update_count_;
  }
  template <class S>
  static void set_update_count(S& s, std::uint64_t n) {
    s.update_count_ = n;
  }
  static std::uint64_t update_count(const InvertibleSketch& s);
  static void set_update_count(InvertibleSketch& s, std::uint64_t n);
};

namespace kernels {

/// True for sketch types that cache per-stage counter sums (everything but
/// the 2D sketch) — the prerequisite for fused heavy-bucket collection.
template <class S>
concept HasStageSums = requires(const S& s) {
  { s.stage_sum(std::size_t{0}) } -> std::convertible_to<double>;
};

/// True for sketch types whose heavy-bucket collect region is a PREFIX of
/// the flat counter array rather than all of it. The compact invertible
/// backend appends per-bucket key-bit counters after the value counters: the
/// threshold scan must cover only the first collect_rows() x collect_cols()
/// elements (the value region the stage sums describe), while the bit tail
/// still receives the identical per-element roll. Plain sketch types don't
/// expose the members, making the whole-array layout (K = size / H, empty
/// tail) the default.
template <class S>
concept HasCollectRegion = requires(const S& s) {
  { s.collect_rows() } -> std::convertible_to<std::size_t>;
  { s.collect_cols() } -> std::convertible_to<std::size_t>;
};

namespace detail {

template <class S>
inline void check_combinable(const S& a, const S& b, const char* what) {
  if (!a.combinable_with(b)) {
    throw std::invalid_argument(std::string("sketch kernel ") + what +
                                ": sketches have different shape or seed");
  }
}

/// Reusable per-thread index buffer for the *_collect kernels (sized to the
/// largest stage seen; TaskPool workers each get their own).
inline std::vector<std::uint32_t>& collect_scratch(std::size_t stage_len) {
  thread_local std::vector<std::uint32_t> scratch;
  if (scratch.size() < stage_len) scratch.resize(stage_len);
  return scratch;
}

/// Heavy-bucket cut for one stage, given the error sketch's stage sum:
/// estimate >= t  <=>  bucket >= t*(1 - 1/K) + sum/K (the exact expression
/// heavy_buckets() uses).
inline double stage_cut(double threshold, double err_sum, double k) {
  return threshold * (1.0 - 1.0 / k) + err_sum / k;
}

}  // namespace detail

/// dst <- value-copy of src. Reuses dst's existing storage (no reallocation
/// when shapes match, which check_combinable guarantees).
template <class S>
void assign(S& dst, const S& src) {
  detail::check_combinable(dst, src, "assign");
  using A = SketchKernelAccess;
  const auto s = A::counters(src);
  std::copy(s.begin(), s.end(), A::counters(dst).begin());
  if constexpr (HasStageSums<S>) {
    const auto ss = A::stage_sums(src);
    std::copy(ss.begin(), ss.end(), A::stage_sums(dst).begin());
  }
  A::set_update_count(dst, A::update_count(src));
}

/// Fused EWMA step: err = obs - fc; fc = (1-alpha)*fc + alpha*obs, one pass.
/// Bit-identical to { err = copy(obs); err.accumulate(fc, -1);
/// fc.scale(1-alpha); fc.accumulate(obs, alpha); }.
template <class S>
void ewma_roll(S& fc, const S& obs, S& err, double alpha) {
  detail::check_combinable(fc, obs, "ewma_roll");
  detail::check_combinable(err, obs, "ewma_roll");
  using A = SketchKernelAccess;
  const auto o = A::counters(obs);
  simd::ewma_roll(A::counters(fc).data(), o.data(), A::counters(err).data(),
                  o.size(), alpha);
  if constexpr (HasStageSums<S>) {
    const auto os = A::stage_sums(obs);
    auto fs = A::stage_sums(fc);
    auto es = A::stage_sums(err);
    for (std::size_t h = 0; h < os.size(); ++h) {
      es[h] = os[h] + (-1.0) * fs[h];
      fs[h] = ((1.0 - alpha) * fs[h]) + (alpha * os[h]);
    }
  }
  A::set_update_count(err, A::update_count(obs));
}

/// ewma_roll + per-stage heavy-bucket collection in the same counter pass:
/// heavy[h] receives exactly heavy_buckets(err, threshold)[h]. Requires
/// stage sums; on sketch types without them, degrades to ewma_roll with
/// `heavy` cleared.
template <class S>
void ewma_roll_collect(S& fc, const S& obs, S& err, double alpha,
                       double threshold, StageBuckets& heavy) {
  if constexpr (!HasStageSums<S>) {
    heavy.clear();
    ewma_roll(fc, obs, err, alpha);
  } else {
    detail::check_combinable(fc, obs, "ewma_roll_collect");
    detail::check_combinable(err, obs, "ewma_roll_collect");
    using A = SketchKernelAccess;
    const auto o = A::counters(obs);
    auto f = A::counters(fc);
    auto e = A::counters(err);
    const auto os = A::stage_sums(obs);
    auto fs = A::stage_sums(fc);
    auto es = A::stage_sums(err);
    const std::size_t H = os.size();
    std::size_t K = o.size() / H;
    if constexpr (HasCollectRegion<S>) K = obs.collect_cols();
    heavy.resize(H);
    auto& scratch = detail::collect_scratch(K);
    for (std::size_t h = 0; h < H; ++h) {
      const double err_sum = os[h] + (-1.0) * fs[h];
      const double cut =
          detail::stage_cut(threshold, err_sum, static_cast<double>(K));
      const std::size_t emitted = simd::ewma_roll_collect(
          f.data() + h * K, o.data() + h * K, e.data() + h * K, K, alpha, cut,
          scratch.data());
      heavy[h].assign(scratch.begin(),
                      scratch.begin() + static_cast<std::ptrdiff_t>(emitted));
      es[h] = err_sum;
      fs[h] = ((1.0 - alpha) * fs[h]) + (alpha * os[h]);
    }
    // Counters past the collect region (the compact backend's key-bit tail)
    // take the identical per-element roll, just without the threshold scan.
    if (const std::size_t tail = o.size() - H * K; tail != 0) {
      simd::ewma_roll(f.data() + H * K, o.data() + H * K, e.data() + H * K,
                      tail, alpha);
    }
    A::set_update_count(err, A::update_count(obs));
  }
}

/// Fused Holt step: err = obs - (level+trend); level/trend rolled, one pass.
/// Bit-identical to the unfused copy/scale/accumulate sequence.
template <class S>
void holt_roll(S& level, S& trend, const S& obs, S& err, double alpha,
               double beta) {
  detail::check_combinable(level, obs, "holt_roll");
  detail::check_combinable(trend, obs, "holt_roll");
  detail::check_combinable(err, obs, "holt_roll");
  using A = SketchKernelAccess;
  const auto o = A::counters(obs);
  simd::holt_roll(A::counters(level).data(), A::counters(trend).data(),
                  o.data(), A::counters(err).data(), o.size(), alpha, beta);
  if constexpr (HasStageSums<S>) {
    const auto os = A::stage_sums(obs);
    auto ls = A::stage_sums(level);
    auto ts = A::stage_sums(trend);
    auto es = A::stage_sums(err);
    for (std::size_t h = 0; h < os.size(); ++h) {
      const double f_sum = ls[h] + 1.0 * ts[h];
      es[h] = os[h] + (-1.0) * f_sum;
      const double nl_sum = ((1.0 - alpha) * f_sum) + (alpha * os[h]);
      const double d_sum = nl_sum + (-1.0) * ls[h];
      ts[h] = ((1.0 - beta) * ts[h]) + (beta * d_sum);
      ls[h] = nl_sum;
    }
  }
  A::set_update_count(err, A::update_count(obs));
}

/// holt_roll + heavy-bucket collection (see ewma_roll_collect).
template <class S>
void holt_roll_collect(S& level, S& trend, const S& obs, S& err, double alpha,
                       double beta, double threshold, StageBuckets& heavy) {
  if constexpr (!HasStageSums<S>) {
    heavy.clear();
    holt_roll(level, trend, obs, err, alpha, beta);
  } else {
    detail::check_combinable(level, obs, "holt_roll_collect");
    detail::check_combinable(trend, obs, "holt_roll_collect");
    detail::check_combinable(err, obs, "holt_roll_collect");
    using A = SketchKernelAccess;
    const auto o = A::counters(obs);
    auto l = A::counters(level);
    auto t = A::counters(trend);
    auto e = A::counters(err);
    const auto os = A::stage_sums(obs);
    auto ls = A::stage_sums(level);
    auto ts = A::stage_sums(trend);
    auto es = A::stage_sums(err);
    const std::size_t H = os.size();
    std::size_t K = o.size() / H;
    if constexpr (HasCollectRegion<S>) K = obs.collect_cols();
    heavy.resize(H);
    auto& scratch = detail::collect_scratch(K);
    for (std::size_t h = 0; h < H; ++h) {
      const double f_sum = ls[h] + 1.0 * ts[h];
      const double err_sum = os[h] + (-1.0) * f_sum;
      const double cut =
          detail::stage_cut(threshold, err_sum, static_cast<double>(K));
      const std::size_t emitted = simd::holt_roll_collect(
          l.data() + h * K, t.data() + h * K, o.data() + h * K,
          e.data() + h * K, K, alpha, beta, cut, scratch.data());
      heavy[h].assign(scratch.begin(),
                      scratch.begin() + static_cast<std::ptrdiff_t>(emitted));
      es[h] = err_sum;
      const double nl_sum = ((1.0 - alpha) * f_sum) + (alpha * os[h]);
      const double d_sum = nl_sum + (-1.0) * ls[h];
      ts[h] = ((1.0 - beta) * ts[h]) + (beta * d_sum);
      ls[h] = nl_sum;
    }
    if (const std::size_t tail = o.size() - H * K; tail != 0) {
      simd::holt_roll(l.data() + H * K, t.data() + H * K, o.data() + H * K,
                      e.data() + H * K, tail, alpha, beta);
    }
    A::set_update_count(err, A::update_count(obs));
  }
}

/// Fused moving-average error: err = obs - inv_n * sum, one pass. `sum` is
/// the caller-maintained running window sum; this kernel does not modify it.
template <class S>
void ma_roll(const S& sum, const S& obs, S& err, double inv_n) {
  detail::check_combinable(sum, obs, "ma_roll");
  detail::check_combinable(err, obs, "ma_roll");
  using A = SketchKernelAccess;
  const auto o = A::counters(obs);
  simd::ma_roll(A::counters(sum).data(), o.data(), A::counters(err).data(),
                o.size(), inv_n);
  if constexpr (HasStageSums<S>) {
    const auto os = A::stage_sums(obs);
    const auto ss = A::stage_sums(sum);
    auto es = A::stage_sums(err);
    for (std::size_t h = 0; h < os.size(); ++h) {
      es[h] = os[h] - inv_n * ss[h];
    }
  }
  A::set_update_count(err, A::update_count(obs));
}

/// ma_roll + heavy-bucket collection (see ewma_roll_collect).
template <class S>
void ma_roll_collect(const S& sum, const S& obs, S& err, double inv_n,
                     double threshold, StageBuckets& heavy) {
  if constexpr (!HasStageSums<S>) {
    heavy.clear();
    ma_roll(sum, obs, err, inv_n);
  } else {
    detail::check_combinable(sum, obs, "ma_roll_collect");
    detail::check_combinable(err, obs, "ma_roll_collect");
    using A = SketchKernelAccess;
    const auto o = A::counters(obs);
    const auto s = A::counters(sum);
    auto e = A::counters(err);
    const auto os = A::stage_sums(obs);
    const auto ss = A::stage_sums(sum);
    auto es = A::stage_sums(err);
    const std::size_t H = os.size();
    std::size_t K = o.size() / H;
    if constexpr (HasCollectRegion<S>) K = obs.collect_cols();
    heavy.resize(H);
    auto& scratch = detail::collect_scratch(K);
    for (std::size_t h = 0; h < H; ++h) {
      const double err_sum = os[h] - inv_n * ss[h];
      const double cut =
          detail::stage_cut(threshold, err_sum, static_cast<double>(K));
      const std::size_t emitted = simd::ma_roll_collect(
          s.data() + h * K, o.data() + h * K, e.data() + h * K, K, inv_n, cut,
          scratch.data());
      heavy[h].assign(scratch.begin(),
                      scratch.begin() + static_cast<std::ptrdiff_t>(emitted));
      es[h] = err_sum;
    }
    if (const std::size_t tail = o.size() - H * K; tail != 0) {
      simd::ma_roll(s.data() + H * K, o.data() + H * K, e.data() + H * K,
                    tail, inv_n);
    }
    A::set_update_count(err, A::update_count(obs));
  }
}

}  // namespace kernels
}  // namespace hifind
