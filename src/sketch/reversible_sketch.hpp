// Reversible sketch (Schweller et al., IMC 2004 / INFOCOM 2006).
//
// A k-ary sketch answers "how big is key y?" but not "which keys are big?".
// The reversible sketch restores that INFERENCE capability while keeping
// UPDATE/ESTIMATE/COMBINE, by constraining how bucket indices are computed:
//
//  * IP mangling — a bijection on the n-bit key space (common/mangler.hpp)
//    applied first, so real-world key skew cannot concentrate bucket load.
//  * Modular hashing — the mangled key is split into q = n/8 words of 8 bits;
//    each stage hashes every word independently to n_b = log2(K)/q bits and
//    concatenates the sub-indices into the bucket index. A bucket index
//    therefore *constrains each key word separately*, which is what makes
//    reverse inference (reverse_inference.hpp) tractable.
//
// Paper shapes: 48-bit keys ({IP,port}) with 2^12 buckets/stage = 6 words x
// 2 bits; 64-bit keys ({IP,IP}) with 2^16 buckets = 8 words x 2 bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "common/mangler.hpp"
#include "common/mem_policy.hpp"
#include "sketch/sketch_ops.hpp"

namespace hifind {

struct SketchKernelAccess;

/// Shape parameters of a reversible sketch.
struct ReversibleSketchConfig {
  int key_bits{48};          ///< n: key width; must be a multiple of 8, <= 64
  std::size_t num_stages{6}; ///< H (paper: 6)
  int bucket_bits{12};       ///< log2(K); must be a multiple of key_bits/8
  std::uint64_t seed{1};     ///< hash/mangler seed; equal seeds => combinable

  int num_words() const { return key_bits / 8; }
  int bits_per_word() const { return bucket_bits / num_words(); }
  std::size_t num_buckets() const { return std::size_t{1} << bucket_bits; }

  bool operator==(const ReversibleSketchConfig&) const = default;
};

class ReversibleSketch {
 public:
  /// Hard upper bound on stages; lets hot paths use fixed stack scratch
  /// instead of heap allocation. All paper configs use H = 6.
  static constexpr std::size_t kMaxStages = 8;

  /// Validates the shape (word divisibility, stages <= kMaxStages) and builds
  /// the hash family. Throws std::invalid_argument on inconsistent parameters.
  explicit ReversibleSketch(const ReversibleSketchConfig& config);

  /// Adds `delta` to the key's bucket in every stage. O(H * q) word-hash
  /// lookups but exactly H counter memory accesses — the figure the paper
  /// reports in Sec. 5.5.2.
  void update(std::uint64_t key, double delta);

  /// Applies a block of updates: mangles + modular-hashes every operand
  /// first (prefetching the counter lines), then applies the deltas.
  /// Bit-identical to calling update() per operand in order; the word-hash
  /// work of later keys overlaps the counter-memory latency of earlier ones.
  void update_batch(std::span<const KeyDelta> ops);

  /// Mean-corrected median estimate (same estimator as the k-ary sketch).
  double estimate(std::uint64_t key) const;

  /// Bucket index of a (raw, unmangled) key in one stage.
  std::size_t bucket_of(std::size_t stage, std::uint64_t key) const {
    return index_of_mangled(stage, mangler_.mangle(key));
  }

  /// Bucket index of an already-mangled key in one stage. Exposed for the
  /// inference engine, which works in mangled space throughout.
  std::size_t index_of_mangled(std::size_t stage, std::uint64_t mangled) const;

  bool combinable_with(const ReversibleSketch& other) const {
    return config_ == other.config_;
  }

  /// this += coeff * other. Throws std::invalid_argument on shape mismatch.
  void accumulate(const ReversibleSketch& other, double coeff = 1.0);

  /// this *= coeff.
  void scale(double coeff);

  void clear();

  /// COMBINE — linear combination as a new sketch.
  static ReversibleSketch combine(
      std::span<const std::pair<double, const ReversibleSketch*>> terms);

  /// Destination-reuse COMBINE: this = sum ci*Si in place — no sketch
  /// construction, no allocation. `this` may appear only as the FIRST term;
  /// every term must be combinable_with(*this). Hot at interval seal, where
  /// the sharded recorder reduces per-core shard replicas.
  void combine_into(
      std::span<const std::pair<double, const ReversibleSketch*>> terms);

  const ReversibleSketchConfig& config() const { return config_; }
  const KeyMangler& mangler() const { return mangler_; }

  /// Per-word hash of one stage (inference needs the preimage tables).
  const WordHash& word_hash(std::size_t stage, int word) const {
    return word_hashes_[stage * config_.num_words() + word];
  }

  /// Raw counter of one stage/bucket (inference scans these directly).
  double bucket_value(std::size_t stage, std::size_t bucket) const {
    return counters_[stage * config_.num_buckets() + bucket];
  }

  double stage_sum(std::size_t stage) const { return stage_sums_[stage]; }

  std::span<const double> counters() const { return counters_; }

  /// Deserialization support: replaces the counter array (stage sums are
  /// recomputed). Throws std::invalid_argument on size mismatch.
  void load_counters(std::span<const double> counters);

  std::size_t memory_bytes() const { return counters_.size() * sizeof(double); }
  std::size_t memory_bytes_hw() const {
    return counters_.size() * sizeof(std::uint32_t);
  }

  /// Counter memory accesses per update: H (one bucket per stage). The
  /// paper's 15/16 figure additionally counts its word-hash SRAM reads; we
  /// report both from bench/accesses_per_packet.
  std::size_t accesses_per_update() const { return config_.num_stages; }
  std::size_t word_hash_reads_per_update() const {
    return config_.num_stages * static_cast<std::size_t>(config_.num_words());
  }

  std::uint64_t update_count() const { return update_count_; }

 private:
  friend struct SketchKernelAccess;  // fused kernels (sketch_kernels.hpp)

  /// The original per-operand index loop (BatchIndexMode::kLegacy).
  void update_batch_legacy(std::span<const KeyDelta> ops);

  ReversibleSketchConfig config_;
  KeyMangler mangler_;
  std::vector<WordHash> word_hashes_;  // stage-major, H*q
  /// Modular hashing flattened into per-stage byte tables for
  /// simd::tab_hash64: row p of stage h holds word_hash(h, q-1-p).map(v)
  /// pre-shifted into its disjoint sub-index bit range, so the XOR fold over
  /// key bytes (LSB first) reproduces index_of_mangled() exactly. Layout:
  /// [stage][byte][value], H*q*256 entries.
  std::vector<std::uint64_t> flat_tables_;
  mem::CounterVec counters_;           // stage-major, H*K; hugepage-backed
  std::vector<double> stage_sums_;
  std::uint64_t update_count_{0};
};

}  // namespace hifind
