// k-ary sketch (Krishnamurthy, Sen, Zhang, Chen — IMC 2003).
//
// A k-ary sketch is H independent hash tables ("stages") of K counters each.
// UPDATE adds a signed value to one counter per stage; ESTIMATE reconstructs a
// key's aggregate with the mean-corrected median estimator; COMBINE takes
// linear combinations of same-shaped sketches (the property that lets HiFIND
// aggregate sketches across routers and run EWMA forecasting directly in
// sketch space). This class is also used as the "original sketch" (OS) and as
// the verification sketch that screens reversible-sketch inference output.
//
// Counters are doubles: recording sketches hold exact integers (all counts
// are far below 2^53) and forecast/error sketches hold fractional EWMA state,
// so one representation serves the whole pipeline, keeping COMBINE closed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "common/mem_policy.hpp"
#include "sketch/sketch_ops.hpp"

namespace hifind {

struct SketchKernelAccess;

/// Shape parameters of a k-ary sketch.
struct KarySketchConfig {
  std::size_t num_stages{6};    ///< H: independent hash tables (paper: 6)
  std::size_t num_buckets{1u << 14};  ///< K: counters per stage (paper OS: 2^14)
  std::uint64_t seed{1};        ///< hash-family seed; equal seeds => combinable

  bool operator==(const KarySketchConfig&) const = default;
};

class KarySketch {
 public:
  explicit KarySketch(const KarySketchConfig& config);

  /// Adds `delta` to the key's counter in every stage. O(H).
  void update(std::uint64_t key, double delta);

  /// Applies a block of updates: hashes every operand's bucket indices first
  /// (prefetching the counter lines), then applies the deltas. Bit-identical
  /// to calling update() per operand in order, but overlaps hash computation
  /// with counter-memory latency across the block.
  void update_batch(std::span<const KeyDelta> ops);

  /// Mean-corrected median estimate of the key's aggregate value:
  /// per stage, (bucket − sum/K) / (1 − 1/K); the median over stages.
  /// Unbiased and sharply concentrated when K >> number of heavy keys.
  double estimate(std::uint64_t key) const;

  /// Raw per-stage bucket values for a key (diagnostics, tests).
  std::vector<double> stage_values(std::uint64_t key) const;

  /// True if `other` was built with the same config (shape AND seed), which
  /// is the precondition for linear combination.
  bool combinable_with(const KarySketch& other) const {
    return config_ == other.config_;
  }

  /// In-place linear accumulate: this += coeff * other.
  /// Throws std::invalid_argument if shapes/seeds differ.
  void accumulate(const KarySketch& other, double coeff = 1.0);

  /// this *= coeff (used by forecasting).
  void scale(double coeff);

  /// Resets all counters to zero, keeping the hash family.
  void clear();

  /// COMBINE(c1,S1,...,cn,Sn) = sum ci*Si as a new sketch.
  static KarySketch combine(
      std::span<const std::pair<double, const KarySketch*>> terms);

  /// Destination-reuse COMBINE: this = sum ci*Si, overwriting this sketch's
  /// counters in place — no sketch construction, no allocation. `this` may
  /// itself appear as the FIRST term (the in-place reduction case); any
  /// later term must be a distinct sketch. Every term must be
  /// combinable_with(*this). The seal-time shard merge of the sharded
  /// recording pipeline runs on this path so an interval close constructs
  /// nothing.
  void combine_into(
      std::span<const std::pair<double, const KarySketch*>> terms);

  const KarySketchConfig& config() const { return config_; }
  std::size_t num_stages() const { return config_.num_stages; }
  std::size_t num_buckets() const { return config_.num_buckets; }

  /// Flat counter storage (stage-major), exposed read-only for tests and
  /// serialization. Mutation goes through update/accumulate/scale so the
  /// cached stage sums stay consistent.
  std::span<const double> counters() const { return counters_; }

  /// Deserialization support: replaces the counter array (stage sums are
  /// recomputed). Throws std::invalid_argument on size mismatch.
  void load_counters(std::span<const double> counters);

  /// Total of one stage's counters, maintained incrementally so ESTIMATE is
  /// O(H) rather than O(H*K).
  double stage_sum(std::size_t stage) const { return stage_sums_[stage]; }

  /// Counter memory in bytes (the recording-path footprint).
  std::size_t memory_bytes() const { return counters_.size() * sizeof(double); }

  /// Counter memory if realized with the paper's 32-bit hardware counters.
  std::size_t memory_bytes_hw() const {
    return counters_.size() * sizeof(std::uint32_t);
  }

  /// Memory accesses (counter reads+writes) a single update performs: H.
  std::size_t accesses_per_update() const { return config_.num_stages; }

  /// Cumulative number of update() calls (throughput accounting).
  std::uint64_t update_count() const { return update_count_; }

 private:
  friend struct SketchKernelAccess;  // fused kernels (sketch_kernels.hpp)

  /// The original per-operand index loop (BatchIndexMode::kLegacy, and the
  /// fallback for shapes the vectorized path's u32 flat indices can't hold).
  void update_batch_legacy(std::span<const KeyDelta> ops);

  std::size_t bucket_index(std::size_t stage, std::uint64_t key) const {
    // Stage hashes are constructed with the bucket count, so this dispatches
    // to the power-of-two shift fast path for every standard config.
    return stage * config_.num_buckets + hashes_[stage].bucket(key);
  }

  KarySketchConfig config_;
  std::vector<TabulationHash> hashes_;  // one per stage
  mem::CounterVec counters_;            // stage-major, H*K; hugepage-backed
  std::vector<double> stage_sums_;      // cached sum per stage
  std::uint64_t update_count_{0};
};

}  // namespace hifind
