#include "sketch/compact_invertible.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

#include "sketch/simd_ops.hpp"

namespace hifind {
namespace {

double median_of(std::span<double> v) {
  const std::size_t n = v.size();
  const std::size_t mid = n / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  if (n % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(), v.begin() + mid);
  return (lo + hi) / 2.0;
}

/// Top-N-anomalies cap, same contract as the reversible path: keep each
/// stage's largest VALUE buckets, ties toward the lower index, report the
/// drop count. Kept lists go back to ascending order so the extraction walk
/// stays a deterministic function of the sketch.
std::size_t apply_top_n(const CompactInvertibleSketch& sketch,
                        const InferenceOptions& options,
                        std::vector<std::vector<std::uint32_t>>& buckets) {
  if (options.max_heavy_per_stage == 0) return 0;
  std::size_t dropped = 0;
  for (std::size_t h = 0; h < buckets.size(); ++h) {
    auto& stage = buckets[h];
    if (stage.size() <= options.max_heavy_per_stage) continue;
    std::partial_sort(
        stage.begin(),
        stage.begin() +
            static_cast<std::ptrdiff_t>(options.max_heavy_per_stage),
        stage.end(), [&](std::uint32_t a, std::uint32_t b) {
          const double va = sketch.bucket_value(h, a);
          const double vb = sketch.bucket_value(h, b);
          return va > vb || (va == vb && a < b);
        });
    dropped += stage.size() - options.max_heavy_per_stage;
    stage.resize(options.max_heavy_per_stage);
    std::sort(stage.begin(), stage.end());
  }
  return dropped;
}

}  // namespace

CompactInvertibleSketch::CompactInvertibleSketch(
    const CompactInvertibleConfig& config)
    : config_(config) {
  if (config_.key_bits < 8 || config_.key_bits > 64) {
    throw std::invalid_argument(
        "CompactInvertibleSketch key_bits must be in [8, 64]");
  }
  if (config_.num_stages == 0 || config_.num_stages > kMaxStages) {
    throw std::invalid_argument(
        "CompactInvertibleSketch needs between 1 and kMaxStages stages");
  }
  if (config_.bucket_bits < 1 || config_.bucket_bits > 28) {
    throw std::invalid_argument(
        "CompactInvertibleSketch bucket_bits must be in [1, 28]");
  }
  hashes_.reserve(config_.num_stages);
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    hashes_.emplace_back(mix64(config_.seed) ^ mix64(0xC0117ULL + h),
                         config_.num_buckets());
  }
  value_len_ = config_.num_stages * config_.num_buckets();
  counters_.assign(value_len_ * config_.words_per_bucket(), 0.0);
  stage_sums_.assign(config_.num_stages, 0.0);
}

void CompactInvertibleSketch::update(std::uint64_t key, double delta) {
  const std::uint64_t mask =
      config_.key_bits == 64 ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << config_.key_bits) - 1;
  const std::uint64_t bits = key & mask;
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    const std::size_t b = hashes_[h].bucket(key);
    counters_[h * config_.num_buckets() + b] += delta;
    stage_sums_[h] += delta;
    double* run = counters_.data() + bit_base(h, b);
    for (std::uint64_t m = bits; m != 0; m &= m - 1) {
      run[std::countr_zero(m)] += delta;
    }
  }
  ++update_count_;
}

void CompactInvertibleSketch::update_batch(std::span<const KeyDelta> ops) {
  // Index pass computes each operand's buckets once and prefetches the value
  // counter plus the head of the bit run; the apply pass then replays
  // update()'s exact add sequence, so batch is bit-identical to scalar.
  constexpr std::size_t kBlock = 16;
  const std::size_t H = config_.num_stages;
  const std::uint64_t mask =
      config_.key_bits == 64 ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << config_.key_bits) - 1;
  std::size_t bucket[kBlock * kMaxStages];
  for (std::size_t base = 0; base < ops.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, ops.size() - base);
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t key = ops[base + j].key;
      for (std::size_t h = 0; h < H; ++h) {
        const std::size_t b = hashes_[h].bucket(key);
        bucket[j * H + h] = b;
        prefetch_write(&counters_[h * config_.num_buckets() + b]);
        prefetch_write(&counters_[bit_base(h, b)]);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      const double delta = ops[base + j].delta;
      const std::uint64_t bits = ops[base + j].key & mask;
      for (std::size_t h = 0; h < H; ++h) {
        const std::size_t b = bucket[j * H + h];
        counters_[h * config_.num_buckets() + b] += delta;
        stage_sums_[h] += delta;
        double* run = counters_.data() + bit_base(h, b);
        for (std::uint64_t m = bits; m != 0; m &= m - 1) {
          run[std::countr_zero(m)] += delta;
        }
      }
    }
    update_count_ += n;
  }
}

double CompactInvertibleSketch::estimate(std::uint64_t key) const {
  const double k = static_cast<double>(config_.num_buckets());
  std::array<double, kMaxStages> est{};
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    const double bucket =
        counters_[h * config_.num_buckets() + hashes_[h].bucket(key)];
    est[h] = (bucket - stage_sums_[h] / k) / (1.0 - 1.0 / k);
  }
  return median_of(std::span<double>(est.data(), config_.num_stages));
}

std::uint64_t CompactInvertibleSketch::decode_bucket(std::size_t stage,
                                                     std::size_t bucket)
    const {
  const double v = counters_[stage * config_.num_buckets() + bucket];
  const double* run = counters_.data() + bit_base(stage, bucket);
  const double half = v * 0.5;
  std::uint64_t key = 0;
  for (int b = 0; b < config_.key_bits; ++b) {
    if (run[b] > half) key |= std::uint64_t{1} << b;
  }
  return key;
}

void CompactInvertibleSketch::accumulate(const CompactInvertibleSketch& other,
                                         double coeff) {
  if (!combinable_with(other)) {
    throw std::invalid_argument(
        "CompactInvertibleSketch::accumulate: sketches have different shape "
        "or seed");
  }
  simd::accumulate(counters_.data(), other.counters_.data(), counters_.size(),
                   coeff);
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    stage_sums_[h] += coeff * other.stage_sums_[h];
  }
}

void CompactInvertibleSketch::scale(double coeff) {
  simd::scale(counters_.data(), counters_.size(), coeff);
  for (auto& s : stage_sums_) s *= coeff;
}

void CompactInvertibleSketch::clear() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
  std::fill(stage_sums_.begin(), stage_sums_.end(), 0.0);
  update_count_ = 0;
}

void CompactInvertibleSketch::load_counters(std::span<const double> counters) {
  if (counters.size() != counters_.size()) {
    throw std::invalid_argument(
        "CompactInvertibleSketch::load_counters: size mismatch");
  }
  std::copy(counters.begin(), counters.end(), counters_.begin());
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    double sum = 0.0;
    for (std::size_t b = 0; b < config_.num_buckets(); ++b) {
      sum += counters_[h * config_.num_buckets() + b];
    }
    stage_sums_[h] = sum;
  }
}

CompactInvertibleSketch CompactInvertibleSketch::combine(
    std::span<const std::pair<double, const CompactInvertibleSketch*>> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("CompactInvertibleSketch::combine: no terms");
  }
  CompactInvertibleSketch out(terms.front().second->config());
  out.combine_into(terms);
  return out;
}

void CompactInvertibleSketch::combine_into(
    std::span<const std::pair<double, const CompactInvertibleSketch*>> terms) {
  if (terms.empty()) {
    throw std::invalid_argument(
        "CompactInvertibleSketch::combine_into: no terms");
  }
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (!combinable_with(*terms[i].second)) {
      throw std::invalid_argument(
          "CompactInvertibleSketch::combine_into: sketches have different "
          "shape or seed");
    }
    if (i > 0 && terms[i].second == this) {
      throw std::invalid_argument(
          "CompactInvertibleSketch::combine_into: destination may only alias "
          "term 0");
    }
  }
  std::uint64_t updates = 0;
  for (const auto& [coeff, sketch] : terms) {
    (void)coeff;
    updates += sketch->update_count_;
  }
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    double s = 0.0;
    for (const auto& [coeff, sketch] : terms) {
      s += coeff * sketch->stage_sums_[h];
    }
    stage_sums_[h] = s;
  }
  simd::axpby(counters_.data(), terms[0].second->counters_.data(),
              counters_.size(), 0.0, terms[0].first);
  for (const auto& [coeff, sketch] : terms.subspan(1)) {
    simd::accumulate(counters_.data(), sketch->counters_.data(),
                     counters_.size(), coeff);
  }
  update_count_ = updates;
}

std::vector<std::vector<std::uint32_t>> heavy_buckets(
    const CompactInvertibleSketch& sketch, double threshold) {
  const auto& cfg = sketch.config();
  const double k = static_cast<double>(cfg.num_buckets());
  std::vector<std::vector<std::uint32_t>> out(cfg.num_stages);
  for (std::size_t h = 0; h < cfg.num_stages; ++h) {
    // estimate >= t  <=>  bucket >= t*(1 - 1/K) + sum/K
    const double cut = threshold * (1.0 - 1.0 / k) + sketch.stage_sum(h) / k;
    for (std::size_t b = 0; b < cfg.num_buckets(); ++b) {
      if (sketch.bucket_value(h, b) >= cut) {
        out[h].push_back(static_cast<std::uint32_t>(b));
      }
    }
  }
  return out;
}

void CompactExtraction::begin(
    const CompactInvertibleSketch& sketch, double threshold,
    const InferenceOptions& options,
    std::vector<std::vector<std::uint32_t>> stage_buckets) {
  sketch_ = &sketch;
  threshold_ = threshold;
  options_ = options;
  result_ = InferenceResult{};
  buckets_ = std::move(stage_buckets);
  result_.heavy_buckets_dropped = apply_top_n(sketch, options_, buckets_);
  for (const auto& b : buckets_) result_.heavy_bucket_total += b.size();
  stage_ = 0;
  pos_ = 0;
  seen_.clear();
  done_ = false;
}

void CompactExtraction::begin(const CompactInvertibleSketch& sketch,
                              double threshold,
                              const InferenceOptions& options) {
  begin(sketch, threshold, options, heavy_buckets(sketch, threshold));
}

bool CompactExtraction::run_chunk(std::size_t quantum) {
  if (done_) return true;
  // Work cost commensurate with the DFS meter: decoding one bucket touches
  // key_bits counters — call it 1 + key words; screening a fresh candidate
  // (estimate + verifier) costs 2 more, exactly like a DFS leaf.
  const std::size_t decode_cost =
      1 + static_cast<std::size_t>((sketch_->config().key_bits + 7) / 8);
  const std::size_t chunk_start = result_.work_used;
  while (result_.work_used - chunk_start < quantum) {
    if (options_.max_work != 0 && result_.work_used >= options_.max_work) {
      result_.work_exhausted = true;
      done_ = true;
      break;
    }
    while (stage_ < buckets_.size() && pos_ >= buckets_[stage_].size()) {
      ++stage_;
      pos_ = 0;
    }
    if (stage_ >= buckets_.size()) {  // every heavy bucket decoded
      done_ = true;
      break;
    }
    const std::uint32_t bucket = buckets_[stage_][pos_++];
    result_.work_used += decode_cost;
    const std::uint64_t key = sketch_->decode_bucket(stage_, bucket);
    // The same dominant key surfaces from its bucket in every stage; emit on
    // first decode only. Rejected keys are remembered too — re-screening the
    // same noise key per stage would just triple the verifier traffic.
    const auto it = std::lower_bound(seen_.begin(), seen_.end(), key);
    if (it != seen_.end() && *it == key) continue;
    seen_.insert(it, key);
    result_.work_used += 2;  // estimate + screen
    const double est = sketch_->estimate(key);
    if (est < threshold_) continue;  // decode noise: no dominant key here
    if (options_.verifier && !options_.verifier(key, est)) continue;
    if (result_.keys.size() >= options_.max_candidates) {
      result_.truncated = true;
      done_ = true;
      break;
    }
    result_.keys.push_back(HeavyKey{key, est});
  }
  return done_;
}

InferenceResult CompactExtraction::take_result() {
  InferenceResult out = std::move(result_);
  result_ = InferenceResult{};
  options_ = InferenceOptions{};  // drop any captured verifier
  sketch_ = nullptr;
  buckets_.clear();
  seen_.clear();
  stage_ = 0;
  pos_ = 0;
  done_ = true;
  return out;
}

InferenceResult infer_heavy_keys(const CompactInvertibleSketch& sketch,
                                 double threshold,
                                 const InferenceOptions& options) {
  return infer_heavy_keys(sketch, threshold, options,
                          heavy_buckets(sketch, threshold));
}

InferenceResult infer_heavy_keys(
    const CompactInvertibleSketch& sketch, double threshold,
    const InferenceOptions& options,
    std::vector<std::vector<std::uint32_t>> stage_buckets) {
  CompactExtraction search;
  search.begin(sketch, threshold, options, std::move(stage_buckets));
  while (!search.run_chunk(~std::size_t{0})) {
  }
  return search.take_result();
}

}  // namespace hifind
