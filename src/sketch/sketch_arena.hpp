// Buffer pool for forecaster working sketches.
//
// Forecaster warm-up and reset used to clone full sketches (counter arrays
// plus hash tables — megabytes for the paper shapes). The arena keeps
// released sketches and satisfies the next shape-compatible acquire by
// copy-assigning into the pooled object's existing counter storage, so a
// detector that resets/rewarms forecasters (degraded-mode recovery, config
// swaps) reaches an allocation-free steady state. Acquires that find no
// compatible pooled sketch fall back to a clone; reuse/clone counters are
// exposed so tests can assert pooling actually happens.
//
// Thread safety: acquire/release are mutex-guarded — forecaster steps
// running on different TaskPool workers may hit the shared arena during
// warm-up or reset. (Steady-state steps never touch the arena at all.)
//
// Memory placement: sketch counter arrays allocate through
// mem::CounterAllocator (common/mem_policy.hpp), so every pooled sketch —
// and every per-shard bank replica — sits on 2 MiB-aligned, MADV_HUGEPAGE
// mmap backing. Pooling preserves that placement across acquire/release
// cycles: copy-assignment into an existing sketch reuses its (huge-backed,
// possibly NUMA-bound) counter storage rather than reallocating.
#pragma once

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "sketch/sketch_kernels.hpp"

namespace hifind {

template <class SketchT>
class SketchArena {
 public:
  SketchArena() = default;
  SketchArena(const SketchArena&) = delete;
  SketchArena& operator=(const SketchArena&) = delete;

  /// Returns a value-copy of `src`, reusing a pooled shape-compatible
  /// sketch's storage when one is available (no allocation), cloning
  /// otherwise.
  SketchT acquire_copy(const SketchT& src) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t i = 0; i < pool_.size(); ++i) {
        if (pool_[i].combinable_with(src)) {
          SketchT out = std::move(pool_[i]);
          pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(i));
          ++reuses_;
          kernels::assign(out, src);
          return out;
        }
      }
      ++clones_;
    }
    return SketchT(src);
  }

  /// Returns a sketch to the pool for later reuse.
  void release(SketchT&& sketch) {
    std::lock_guard<std::mutex> lock(mutex_);
    pool_.push_back(std::move(sketch));
  }

  std::size_t pooled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pool_.size();
  }
  std::size_t reuses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reuses_;
  }
  std::size_t clones() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return clones_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<SketchT> pool_;
  std::size_t reuses_{0};
  std::size_t clones_{0};
};

}  // namespace hifind
