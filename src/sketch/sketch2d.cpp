#include "sketch/sketch2d.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "sketch/simd_ops.hpp"

namespace hifind {

TwoDSketch::TwoDSketch(const Sketch2dConfig& config) : config_(config) {
  if (config_.num_stages == 0 || config_.x_buckets < 2 ||
      config_.y_buckets < 2) {
    throw std::invalid_argument(
        "TwoDSketch needs >=1 stage and >=2 buckets per dimension");
  }
  x_hashes_.reserve(config_.num_stages);
  y_hashes_.reserve(config_.num_stages);
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    x_hashes_.emplace_back(mix64(config_.seed) ^ mix64(0x1000 + h),
                           config_.x_buckets);
    y_hashes_.emplace_back(mix64(config_.seed) ^ mix64(0x2000 + h),
                           config_.y_buckets);
  }
  cells_.assign(config_.num_stages * config_.x_buckets * config_.y_buckets,
                0.0);
}

void TwoDSketch::update(std::uint64_t x_key, std::uint64_t y_key,
                        double delta) {
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    cells_[cell_index(h, x_key, y_key)] += delta;
  }
  ++update_count_;
}

void TwoDSketch::update_batch(std::span<const KeyDelta2d> ops) {
  constexpr std::size_t kMaxStagesVec = 16;
  const std::size_t H = config_.num_stages;
  if (batch_index_mode() == BatchIndexMode::kLegacy || H > kMaxStagesVec ||
      cells_.size() > std::numeric_limits<std::uint32_t>::max()) {
    update_batch_legacy(ops);
    return;
  }
  // Vectorized cell-index precomputation: one tab_hash64 pass per stage per
  // dimension, then the fold pair is combined into the flat cell index with a
  // write-prefetch issued as each index lands — the rest of the index pass
  // overlaps the cell-line misses. The apply loop adds deltas in scalar
  // per-op, per-stage order — bit-identical to update() per operand. A short
  // chunk keeps the prefetch-to-use distance inside what the miss buffers
  // can hold (a 256-op chunk would issue 1280 hints and drop most of them).
  constexpr std::size_t kChunk = 32;
  const std::size_t Kx = config_.x_buckets;
  const std::size_t Ky = config_.y_buckets;
  std::uint64_t xkeys[kChunk];
  std::uint64_t ykeys[kChunk];
  std::uint64_t xh[kChunk];
  std::uint64_t yh[kChunk];
  std::uint32_t idx[kChunk * kMaxStagesVec];
  for (std::size_t base = 0; base < ops.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, ops.size() - base);
    for (std::size_t j = 0; j < n; ++j) {
      xkeys[j] = ops[base + j].x_key;
      ykeys[j] = ops[base + j].y_key;
    }
    for (std::size_t h = 0; h < H; ++h) {
      const TabulationHash& thx = x_hashes_[h];
      const TabulationHash& thy = y_hashes_[h];
      simd::tab_hash64(xkeys, n, thx.table_data(), 8, xh);
      simd::tab_hash64(ykeys, n, thy.table_data(), 8, yh);
      const std::size_t stage_off = h * Kx;
      for (std::size_t j = 0; j < n; ++j) {
        const auto i = static_cast<std::uint32_t>(
            (stage_off + thx.fold(xh[j])) * Ky + thy.fold(yh[j]));
        idx[j * H + h] = i;
        prefetch_write(&cells_[i]);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      const double delta = ops[base + j].delta;
      for (std::size_t h = 0; h < H; ++h) {
        cells_[idx[j * H + h]] += delta;
      }
    }
    update_count_ += n;
  }
}

void TwoDSketch::update_batch_legacy(std::span<const KeyDelta2d> ops) {
  constexpr std::size_t kBlock = 32;
  constexpr std::size_t kMaxStagesInBlock = 16;
  const std::size_t H = config_.num_stages;
  if (H > kMaxStagesInBlock) {
    for (const auto& op : ops) update(op.x_key, op.y_key, op.delta);
    return;
  }
  std::size_t idx[kBlock * kMaxStagesInBlock];
  for (std::size_t base = 0; base < ops.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, ops.size() - base);
    for (std::size_t j = 0; j < n; ++j) {
      const auto& op = ops[base + j];
      for (std::size_t h = 0; h < H; ++h) {
        const std::size_t i = cell_index(h, op.x_key, op.y_key);
        idx[j * H + h] = i;
        prefetch_write(&cells_[i]);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      const double delta = ops[base + j].delta;
      for (std::size_t h = 0; h < H; ++h) {
        cells_[idx[j * H + h]] += delta;
      }
    }
    update_count_ += n;
  }
}

std::vector<double> TwoDSketch::column(std::size_t stage,
                                       std::uint64_t x_key) const {
  const std::size_t col = x_hashes_[stage].bucket(x_key, config_.x_buckets);
  const std::size_t base =
      (stage * config_.x_buckets + col) * config_.y_buckets;
  return {cells_.begin() + static_cast<std::ptrdiff_t>(base),
          cells_.begin() + static_cast<std::ptrdiff_t>(base +
                                                       config_.y_buckets)};
}

ColumnShape TwoDSketch::classify_column(std::size_t stage,
                                        std::uint64_t x_key,
                                        std::size_t top_p, double phi) const {
  std::vector<double> cells = column(stage, x_key);
  // Negative cells (more SYN/ACKs than SYNs from colliding benign flows)
  // carry no attack mass; clamp so they cannot inflate the "spread" verdict.
  double total = 0.0;
  for (auto& c : cells) {
    c = std::max(c, 0.0);
    total += c;
  }
  if (total <= 0.0) return ColumnShape::kSpread;
  top_p = std::min(top_p, cells.size());
  std::partial_sort(cells.begin(),
                    cells.begin() + static_cast<std::ptrdiff_t>(top_p),
                    cells.end(), std::greater<>());
  const double top_sum = std::accumulate(
      cells.begin(), cells.begin() + static_cast<std::ptrdiff_t>(top_p), 0.0);
  return top_sum > phi * total ? ColumnShape::kConcentrated
                               : ColumnShape::kSpread;
}

ColumnShape TwoDSketch::classify(std::uint64_t x_key, std::size_t top_p,
                                 double phi) const {
  std::size_t concentrated = 0;
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    if (classify_column(h, x_key, top_p, phi) == ColumnShape::kConcentrated) {
      ++concentrated;
    }
  }
  return concentrated * 2 > config_.num_stages ? ColumnShape::kConcentrated
                                               : ColumnShape::kSpread;
}

std::size_t TwoDSketch::active_rows(std::uint64_t x_key,
                                    double min_cell) const {
  // Median across stages of the per-stage active-cell count; the median
  // suppresses collision inflation from any single matrix.
  std::vector<std::size_t> counts(config_.num_stages);
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    const auto cells = column(h, x_key);
    counts[h] = static_cast<std::size_t>(
        std::count_if(cells.begin(), cells.end(),
                      [min_cell](double c) { return c >= min_cell; }));
  }
  std::nth_element(counts.begin(), counts.begin() + counts.size() / 2,
                   counts.end());
  return counts[counts.size() / 2];
}

void TwoDSketch::accumulate(const TwoDSketch& other, double coeff) {
  if (!combinable_with(other)) {
    throw std::invalid_argument(
        "TwoDSketch::accumulate: sketches have different shape or seed");
  }
  simd::accumulate(cells_.data(), other.cells_.data(), cells_.size(), coeff);
}

void TwoDSketch::scale(double coeff) {
  simd::scale(cells_.data(), cells_.size(), coeff);
}

void TwoDSketch::clear() {
  std::fill(cells_.begin(), cells_.end(), 0.0);
  update_count_ = 0;
}

void TwoDSketch::load_cells(std::span<const double> cells) {
  if (cells.size() != cells_.size()) {
    throw std::invalid_argument("TwoDSketch::load_cells: size mismatch");
  }
  std::copy(cells.begin(), cells.end(), cells_.begin());
}

TwoDSketch TwoDSketch::combine(
    std::span<const std::pair<double, const TwoDSketch*>> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("TwoDSketch::combine: no terms");
  }
  TwoDSketch out(terms.front().second->config());
  out.combine_into(terms);
  return out;
}

void TwoDSketch::combine_into(
    std::span<const std::pair<double, const TwoDSketch*>> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("TwoDSketch::combine_into: no terms");
  }
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (!combinable_with(*terms[i].second)) {
      throw std::invalid_argument(
          "TwoDSketch::combine_into: sketches have different shape or seed");
    }
    if (i > 0 && terms[i].second == this) {
      throw std::invalid_argument(
          "TwoDSketch::combine_into: destination may only alias term 0");
    }
  }
  std::uint64_t updates = 0;
  for (const auto& [coeff, sketch] : terms) {
    (void)coeff;
    updates += sketch->update_count_;
  }
  // First term assigns (y = 0*y + c*x is exact and alias-safe for finite
  // cells), the rest accumulate — one pass per term over the reused array.
  simd::axpby(cells_.data(), terms[0].second->cells_.data(), cells_.size(),
              0.0, terms[0].first);
  for (const auto& [coeff, sketch] : terms.subspan(1)) {
    simd::accumulate(cells_.data(), sketch->cells_.data(), cells_.size(),
                     coeff);
  }
  update_count_ = updates;
}

}  // namespace hifind
