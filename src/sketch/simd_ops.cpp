#include "sketch/simd_ops.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "sketch/sketch_ops.hpp"

namespace hifind::simd {
namespace detail {

// ---------------------------------------------------------------------------
// Portable scalar backend. Per-element expressions here are the reference
// semantics; the AVX2 backend reproduces them operation-for-operation.

namespace scalar {

void scale(double* y, std::size_t n, double c) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= c;
}

void accumulate(double* y, const double* x, std::size_t n, double c) {
  for (std::size_t i = 0; i < n; ++i) y[i] += c * x[i];
}

void axpby(double* y, const double* x, std::size_t n, double a, double b) {
  for (std::size_t i = 0; i < n; ++i) y[i] = (a * y[i]) + (b * x[i]);
}

void ewma_roll(double* fc, const double* obs, double* err, std::size_t n,
               double alpha) {
  const double keep = 1.0 - alpha;
  for (std::size_t i = 0; i < n; ++i) {
    const double o = obs[i];
    err[i] = o - fc[i];
    fc[i] = (keep * fc[i]) + (alpha * o);
  }
}

std::size_t ewma_roll_collect(double* fc, const double* obs, double* err,
                              std::size_t n, double alpha, double cut,
                              std::uint32_t* out_idx) {
  const double keep = 1.0 - alpha;
  std::size_t emitted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double o = obs[i];
    const double e = o - fc[i];
    err[i] = e;
    fc[i] = (keep * fc[i]) + (alpha * o);
    if (e >= cut) out_idx[emitted++] = static_cast<std::uint32_t>(i);
  }
  return emitted;
}

void holt_roll(double* level, double* trend, const double* obs, double* err,
               std::size_t n, double alpha, double beta) {
  const double keep_a = 1.0 - alpha;
  const double keep_b = 1.0 - beta;
  for (std::size_t i = 0; i < n; ++i) {
    const double o = obs[i];
    const double f = level[i] + trend[i];
    err[i] = o - f;
    const double nl = (keep_a * f) + (alpha * o);
    const double d = nl - level[i];
    trend[i] = (keep_b * trend[i]) + (beta * d);
    level[i] = nl;
  }
}

std::size_t holt_roll_collect(double* level, double* trend, const double* obs,
                              double* err, std::size_t n, double alpha,
                              double beta, double cut,
                              std::uint32_t* out_idx) {
  const double keep_a = 1.0 - alpha;
  const double keep_b = 1.0 - beta;
  std::size_t emitted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double o = obs[i];
    const double f = level[i] + trend[i];
    const double e = o - f;
    err[i] = e;
    const double nl = (keep_a * f) + (alpha * o);
    const double d = nl - level[i];
    trend[i] = (keep_b * trend[i]) + (beta * d);
    level[i] = nl;
    if (e >= cut) out_idx[emitted++] = static_cast<std::uint32_t>(i);
  }
  return emitted;
}

void ma_roll(const double* sum, const double* obs, double* err, std::size_t n,
             double inv_n) {
  for (std::size_t i = 0; i < n; ++i) err[i] = obs[i] - inv_n * sum[i];
}

std::size_t ma_roll_collect(const double* sum, const double* obs, double* err,
                            std::size_t n, double inv_n, double cut,
                            std::uint32_t* out_idx) {
  std::size_t emitted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = obs[i] - inv_n * sum[i];
    err[i] = e;
    if (e >= cut) out_idx[emitted++] = static_cast<std::uint32_t>(i);
  }
  return emitted;
}

void tab_hash64(const std::uint64_t* keys, std::size_t n,
                const std::uint64_t* table, int nbytes, std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    std::uint64_t h = 0;
    for (int b = 0; b < nbytes; ++b) {
      h ^= table[b * 256 + ((k >> (8 * b)) & 0xff)];
    }
    out[i] = h;
  }
}

}  // namespace scalar

#if defined(HIFIND_HAVE_AVX2)
// Defined in simd_ops_avx2.cpp (compiled with -mavx2 -ffp-contract=off).
namespace avx2 {
void scale(double* y, std::size_t n, double c);
void accumulate(double* y, const double* x, std::size_t n, double c);
void axpby(double* y, const double* x, std::size_t n, double a, double b);
void ewma_roll(double* fc, const double* obs, double* err, std::size_t n,
               double alpha);
std::size_t ewma_roll_collect(double* fc, const double* obs, double* err,
                              std::size_t n, double alpha, double cut,
                              std::uint32_t* out_idx);
void holt_roll(double* level, double* trend, const double* obs, double* err,
               std::size_t n, double alpha, double beta);
std::size_t holt_roll_collect(double* level, double* trend, const double* obs,
                              double* err, std::size_t n, double alpha,
                              double beta, double cut, std::uint32_t* out_idx);
void ma_roll(const double* sum, const double* obs, double* err, std::size_t n,
             double inv_n);
std::size_t ma_roll_collect(const double* sum, const double* obs, double* err,
                            std::size_t n, double inv_n, double cut,
                            std::uint32_t* out_idx);
void tab_hash64(const std::uint64_t* keys, std::size_t n,
                const std::uint64_t* table, int nbytes, std::uint64_t* out);
}  // namespace avx2
#endif

/// One backend = one table of kernel entry points.
struct Backend {
  const char* name;
  void (*scale)(double*, std::size_t, double);
  void (*accumulate)(double*, const double*, std::size_t, double);
  void (*axpby)(double*, const double*, std::size_t, double, double);
  void (*ewma_roll)(double*, const double*, double*, std::size_t, double);
  std::size_t (*ewma_roll_collect)(double*, const double*, double*,
                                   std::size_t, double, double,
                                   std::uint32_t*);
  void (*holt_roll)(double*, double*, const double*, double*, std::size_t,
                    double, double);
  std::size_t (*holt_roll_collect)(double*, double*, const double*, double*,
                                   std::size_t, double, double, double,
                                   std::uint32_t*);
  void (*ma_roll)(const double*, const double*, double*, std::size_t, double);
  std::size_t (*ma_roll_collect)(const double*, const double*, double*,
                                 std::size_t, double, double, std::uint32_t*);
  void (*tab_hash64)(const std::uint64_t*, std::size_t, const std::uint64_t*,
                     int, std::uint64_t*);
};

constexpr Backend kScalarBackend{
    "scalar",        scalar::scale,
    scalar::accumulate, scalar::axpby,
    scalar::ewma_roll,  scalar::ewma_roll_collect,
    scalar::holt_roll,  scalar::holt_roll_collect,
    scalar::ma_roll,    scalar::ma_roll_collect,
    scalar::tab_hash64,
};

#if defined(HIFIND_HAVE_AVX2)
constexpr Backend kAvx2Backend{
    "avx2",          avx2::scale,
    avx2::accumulate,   avx2::axpby,
    avx2::ewma_roll,    avx2::ewma_roll_collect,
    avx2::holt_roll,    avx2::holt_roll_collect,
    avx2::ma_roll,      avx2::ma_roll_collect,
    avx2::tab_hash64,
};
#endif

bool cpu_has_avx2() {
#if defined(HIFIND_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Backend* pick_backend() {
#if defined(HIFIND_HAVE_AVX2)
  const char* env = std::getenv("HIFIND_SIMD");
  const bool forced_off = env != nullptr && std::strcmp(env, "scalar") == 0;
  if (!forced_off && cpu_has_avx2()) return &kAvx2Backend;
#endif
  return &kScalarBackend;
}

std::atomic<bool> g_force_scalar{false};

const Backend& active() {
  static const Backend* best = pick_backend();  // resolved once, thread-safe
  return g_force_scalar.load(std::memory_order_relaxed) ? kScalarBackend
                                                        : *best;
}

}  // namespace detail

void scale(double* y, std::size_t n, double c) {
  detail::active().scale(y, n, c);
}

void accumulate(double* y, const double* x, std::size_t n, double c) {
  detail::active().accumulate(y, x, n, c);
}

void axpby(double* y, const double* x, std::size_t n, double a, double b) {
  detail::active().axpby(y, x, n, a, b);
}

void ewma_roll(double* fc, const double* obs, double* err, std::size_t n,
               double alpha) {
  detail::active().ewma_roll(fc, obs, err, n, alpha);
}

std::size_t ewma_roll_collect(double* fc, const double* obs, double* err,
                              std::size_t n, double alpha, double cut,
                              std::uint32_t* out_idx) {
  return detail::active().ewma_roll_collect(fc, obs, err, n, alpha, cut,
                                            out_idx);
}

void holt_roll(double* level, double* trend, const double* obs, double* err,
               std::size_t n, double alpha, double beta) {
  detail::active().holt_roll(level, trend, obs, err, n, alpha, beta);
}

std::size_t holt_roll_collect(double* level, double* trend, const double* obs,
                              double* err, std::size_t n, double alpha,
                              double beta, double cut,
                              std::uint32_t* out_idx) {
  return detail::active().holt_roll_collect(level, trend, obs, err, n, alpha,
                                            beta, cut, out_idx);
}

void ma_roll(const double* sum, const double* obs, double* err, std::size_t n,
             double inv_n) {
  detail::active().ma_roll(sum, obs, err, n, inv_n);
}

std::size_t ma_roll_collect(const double* sum, const double* obs, double* err,
                            std::size_t n, double inv_n, double cut,
                            std::uint32_t* out_idx) {
  return detail::active().ma_roll_collect(sum, obs, err, n, inv_n, cut,
                                          out_idx);
}

void tab_hash64(const std::uint64_t* keys, std::size_t n,
                const std::uint64_t* table, int nbytes, std::uint64_t* out) {
  detail::active().tab_hash64(keys, n, table, nbytes, out);
}

const char* active_backend() { return detail::active().name; }

void set_force_scalar(bool force) {
  detail::g_force_scalar.store(force, std::memory_order_relaxed);
}

bool avx2_available() { return detail::cpu_has_avx2(); }

}  // namespace hifind::simd

namespace hifind {

namespace {
std::atomic<BatchIndexMode> g_batch_index_mode{BatchIndexMode::kVectorized};
}  // namespace

void set_batch_index_mode(BatchIndexMode mode) {
  g_batch_index_mode.store(mode, std::memory_order_relaxed);
}

BatchIndexMode batch_index_mode() {
  return g_batch_index_mode.load(std::memory_order_relaxed);
}

}  // namespace hifind
