// Reverse inference for reversible sketches: INFERENCE(S, t).
//
// Given a (typically forecast-error) reversible sketch and a threshold t,
// recover the set of keys whose estimated value exceeds t — without iterating
// the key space. This implements the bucket-intersection search of Schweller
// et al. (INFOCOM 2006):
//
//  1. Per stage, collect the "heavy buckets" whose mean-corrected estimate
//     exceeds t. A culprit key must land in a heavy bucket in (almost) every
//     stage; `stage_slack` (the paper's r) tolerates stages where a culprit's
//     bucket was pulled below threshold by colliding negative mass.
//  2. Depth-first search over the q key-word positions. Because of modular
//     hashing, a heavy bucket constrains each word independently: at word w,
//     the viable byte values are the word-hash preimages of the sub-indices
//     that the still-consistent heavy buckets expose at position w. The DFS
//     state is, per stage, the subset of heavy buckets consistent with the
//     chosen prefix; a branch dies when fewer than H - r stages remain alive.
//  3. At a leaf, the surviving word choices form a mangled key; it is
//     unmangled and reported with its sketch estimate.
//
// Output is a small SUPERSET of the true heavy keys: with stage_slack = r,
// keys whose mangled form differs from a heavy key in one word but collides
// in >= H - r stages ("near collisions", O(q * 256 * C(H,r) / 4^(H-r)) of
// them per heavy key) are also emitted. Screen the output against an
// independent verification sketch (see VerificationSketch) — its full-key
// hash family is uncorrelated with the modular word hashes, so near
// collisions carry no mass there and are removed.
//
// The search itself is RESUMABLE: StreamingInference holds the DFS state
// explicitly and advances it in bounded work chunks (run_chunk), so the
// detection epoch can spread an attack-heavy bucket-reversal burst across
// idle task-pool slots of the next interval instead of stalling at close,
// and a hard work budget (InferenceOptions::max_work) can stop the search
// at a DETERMINISTIC point: work is metered in search steps, not wall time,
// so the same sketch + options yield the same (possibly truncated) key set
// regardless of chunk size, thread count, or host speed.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sketch/reversible_sketch.hpp"

namespace hifind {

/// One recovered heavy key.
struct HeavyKey {
  std::uint64_t key{0};   ///< original (unmangled) key
  double estimate{0.0};   ///< sketch estimate of its value

  bool operator==(const HeavyKey&) const = default;
};

/// Tuning knobs for inference.
struct InferenceOptions {
  /// r: number of stages allowed to miss the heavy-bucket set. 0 = strict
  /// intersection. Paper guidance: 1 for H = 6.
  std::size_t stage_slack{1};
  /// Hard cap on emitted candidates; guards against adversarially dense
  /// heavy-bucket sets blowing up the search. Truncation is reported.
  std::size_t max_candidates{100000};
  /// Optional screen applied to each candidate at the leaves, BEFORE it
  /// counts toward max_candidates. Pass the paired verification sketch's
  /// test here (key, sketch_estimate) -> keep? — with many concurrent
  /// anomalies the raw candidate set contains cross-product artifacts, and
  /// verifying inside the search keeps the output (and the cap) meaningful.
  std::function<bool(std::uint64_t key, double estimate)> verifier;
  /// Cap on heavy buckets considered per stage, keeping the LARGEST ones —
  /// the paper's "detect the top N anomalies" stress-test mode (Sec. 5.5.3).
  /// Bounds the search tree when an interval carries hundreds of anomalies.
  /// Ties on bucket value break toward the lower index, so the kept set is a
  /// deterministic function of the sketch. 0 = unlimited.
  std::size_t max_heavy_per_stage{0};
  /// Hard budget on search work, in deterministic work units (one unit ~ one
  /// heavy bucket regrouped at a DFS node, or one leaf screened — see
  /// InferenceResult::work_used). The search stops once the meter reaches
  /// the budget and reports work_exhausted; because the meter advances only
  /// with search steps, the stop point — and therefore the emitted key set —
  /// is identical for any chunk size or thread count. 0 = unlimited.
  std::size_t max_work{0};
};

/// Result of an inference run.
struct InferenceResult {
  std::vector<HeavyKey> keys;
  bool truncated{false};              ///< hit max_candidates
  bool work_exhausted{false};         ///< hit max_work (latency-budget mode)
  std::size_t heavy_bucket_total{0};  ///< sum of per-stage heavy-bucket counts
  /// Heavy buckets dropped by the max_heavy_per_stage top-N cap (0 when the
  /// cap is off or no stage exceeded it).
  std::size_t heavy_buckets_dropped{0};
  /// Work units the search actually spent (grows monotonically with the
  /// search; comparable across runs of the same shape).
  std::size_t work_used{0};

  /// Any degradation at all? (budget tripped, candidates capped, or heavy
  /// buckets dropped). When false, the key set is exactly the unbudgeted
  /// search's output.
  bool degraded() const {
    return truncated || work_exhausted || heavy_buckets_dropped > 0;
  }
};

/// Resumable bucket-reversal search. Usage:
///
///   StreamingInference s;                       // reusable across runs
///   s.begin(sketch, t, options, buckets);       // or the scanning overload
///   while (!s.run_chunk(quantum)) { /* yield / interleave */ }
///   InferenceResult r = s.take_result();
///
/// Chunking NEVER changes the output: state persists exactly across chunks
/// and all truncation decisions key off the deterministic work meter.
/// Workspace storage is retained across begin() calls, so a long-lived
/// engine reaches an allocation-free steady state on stable shapes.
class StreamingInference {
 public:
  StreamingInference() = default;
  StreamingInference(const StreamingInference&) = delete;
  StreamingInference& operator=(const StreamingInference&) = delete;

  /// Prepares a search over (sketch, threshold), starting from precomputed
  /// per-stage heavy-bucket lists (ascending bucket ids; the heavy_buckets()
  /// format — the detection epoch gets these for free from the fused
  /// forecaster pass). Discards any previous search. The sketch must outlive
  /// the run; `options` is copied.
  void begin(const ReversibleSketch& sketch, double threshold,
             const InferenceOptions& options,
             std::vector<std::vector<std::uint32_t>> stage_buckets);

  /// As above, but scans the sketch counters for the heavy buckets itself.
  void begin(const ReversibleSketch& sketch, double threshold,
             const InferenceOptions& options);

  /// Advances the search by roughly `quantum` work units (it finishes the
  /// step in flight, so slight overshoot is possible). Returns true when the
  /// search is complete (exhausted, candidate-capped, or out of budget).
  bool run_chunk(std::size_t quantum);

  bool done() const { return done_; }

  /// Work units spent so far (valid mid-search).
  std::size_t work_used() const { return result_.work_used; }

  /// Moves the finished result out. Call once, after run_chunk returned
  /// true; the engine is then ready for the next begin().
  InferenceResult take_result();

 private:
  using BucketSpan = std::span<const std::uint32_t>;

  /// Per-depth DFS state. The search holds exactly one active node per
  /// depth, so one workspace per level serves all siblings; `groups` storage
  /// is cleared (capacity kept) on re-entry, making the steady state
  /// allocation-free.
  struct Level {
    /// groups[h * sub_range + v] = this node's consistent heavy buckets of
    /// stage h whose sub-index at this word is v. Child nodes' consistent
    /// sets are spans into this storage, valid while the subtree is active.
    std::vector<std::vector<std::uint32_t>> groups;
    /// Byte values at this word still to be explored (256-bit mask).
    std::array<std::uint64_t, 4> viable{};
    /// Mangled-key prefix chosen above this level.
    std::uint64_t prefix{0};
  };

  /// Groups `consistent` at word `w`, computes the viable-byte mask, and
  /// activates levels_[w]. Returns false if no byte is viable.
  void enter_level(int w, std::uint64_t prefix,
                   std::span<const BucketSpan> consistent);
  void emit(std::uint64_t mangled);
  std::uint32_t sub_index(std::uint32_t index, int w) const;

  const ReversibleSketch* sketch_{nullptr};
  double threshold_{0.0};
  InferenceOptions options_;
  std::size_t num_stages_{0};
  int num_words_{0};
  int bits_per_word_{0};
  std::size_t sub_range_{0};
  std::size_t effective_slack_{0};

  std::vector<std::vector<std::uint32_t>> roots_;
  std::vector<BucketSpan> root_spans_;
  std::vector<BucketSpan> child_;  ///< scratch spans for the step in flight
  std::vector<Level> levels_;
  int depth_{-1};
  bool done_{true};
  InferenceResult result_;
};

/// Returns all keys whose sketch estimate exceeds `threshold`.
/// The candidate set is exact up to hash-collision false positives/negatives;
/// every emitted key's reported estimate is re-read from the sketch.
InferenceResult infer_heavy_keys(const ReversibleSketch& sketch,
                                 double threshold,
                                 const InferenceOptions& options = {});

/// As above, but starting from precomputed per-stage heavy-bucket lists
/// (ascending bucket ids; the heavy_buckets() format). The detection epoch
/// obtains these for free from the fused forecaster pass (step_collect) and
/// hands them here, skipping the full-counter threshold scan. The lists must
/// correspond to (sketch, threshold) for the estimates to be meaningful.
InferenceResult infer_heavy_keys(
    const ReversibleSketch& sketch, double threshold,
    const InferenceOptions& options,
    std::vector<std::vector<std::uint32_t>> stage_buckets);

/// Per-stage heavy-bucket indices (exposed for tests and diagnostics):
/// buckets whose mean-corrected estimate exceeds `threshold`.
std::vector<std::vector<std::uint32_t>> heavy_buckets(
    const ReversibleSketch& sketch, double threshold);

}  // namespace hifind
