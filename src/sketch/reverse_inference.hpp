// Reverse inference for reversible sketches: INFERENCE(S, t).
//
// Given a (typically forecast-error) reversible sketch and a threshold t,
// recover the set of keys whose estimated value exceeds t — without iterating
// the key space. This implements the bucket-intersection search of Schweller
// et al. (INFOCOM 2006):
//
//  1. Per stage, collect the "heavy buckets" whose mean-corrected estimate
//     exceeds t. A culprit key must land in a heavy bucket in (almost) every
//     stage; `stage_slack` (the paper's r) tolerates stages where a culprit's
//     bucket was pulled below threshold by colliding negative mass.
//  2. Depth-first search over the q key-word positions. Because of modular
//     hashing, a heavy bucket constrains each word independently: at word w,
//     the viable byte values are the word-hash preimages of the sub-indices
//     that the still-consistent heavy buckets expose at position w. The DFS
//     state is, per stage, the subset of heavy buckets consistent with the
//     chosen prefix; a branch dies when fewer than H - r stages remain alive.
//  3. At a leaf, the surviving word choices form a mangled key; it is
//     unmangled and reported with its sketch estimate.
//
// Output is a small SUPERSET of the true heavy keys: with stage_slack = r,
// keys whose mangled form differs from a heavy key in one word but collides
// in >= H - r stages ("near collisions", O(q * 256 * C(H,r) / 4^(H-r)) of
// them per heavy key) are also emitted. Screen the output against an
// independent verification sketch (see VerificationSketch) — its full-key
// hash family is uncorrelated with the modular word hashes, so near
// collisions carry no mass there and are removed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sketch/reversible_sketch.hpp"

namespace hifind {

/// One recovered heavy key.
struct HeavyKey {
  std::uint64_t key{0};   ///< original (unmangled) key
  double estimate{0.0};   ///< sketch estimate of its value

  bool operator==(const HeavyKey&) const = default;
};

/// Tuning knobs for inference.
struct InferenceOptions {
  /// r: number of stages allowed to miss the heavy-bucket set. 0 = strict
  /// intersection. Paper guidance: 1 for H = 6.
  std::size_t stage_slack{1};
  /// Hard cap on emitted candidates; guards against adversarially dense
  /// heavy-bucket sets blowing up the search. Truncation is reported.
  std::size_t max_candidates{100000};
  /// Optional screen applied to each candidate at the leaves, BEFORE it
  /// counts toward max_candidates. Pass the paired verification sketch's
  /// test here (key, sketch_estimate) -> keep? — with many concurrent
  /// anomalies the raw candidate set contains cross-product artifacts, and
  /// verifying inside the search keeps the output (and the cap) meaningful.
  std::function<bool(std::uint64_t key, double estimate)> verifier;
  /// Cap on heavy buckets considered per stage, keeping the LARGEST ones —
  /// the paper's "detect the top N anomalies" stress-test mode (Sec. 5.5.3).
  /// Bounds the search tree when an interval carries hundreds of anomalies.
  /// 0 = unlimited.
  std::size_t max_heavy_per_stage{0};
};

/// Result of an inference run.
struct InferenceResult {
  std::vector<HeavyKey> keys;
  bool truncated{false};              ///< hit max_candidates
  std::size_t heavy_bucket_total{0};  ///< sum of per-stage heavy-bucket counts
};

/// Returns all keys whose sketch estimate exceeds `threshold`.
/// The candidate set is exact up to hash-collision false positives/negatives;
/// every emitted key's reported estimate is re-read from the sketch.
InferenceResult infer_heavy_keys(const ReversibleSketch& sketch,
                                 double threshold,
                                 const InferenceOptions& options = {});

/// As above, but starting from precomputed per-stage heavy-bucket lists
/// (ascending bucket ids; the heavy_buckets() format). The detection epoch
/// obtains these for free from the fused forecaster pass (step_collect) and
/// hands them here, skipping the full-counter threshold scan. The lists must
/// correspond to (sketch, threshold) for the estimates to be meaningful.
InferenceResult infer_heavy_keys(
    const ReversibleSketch& sketch, double threshold,
    const InferenceOptions& options,
    std::vector<std::vector<std::uint32_t>> stage_buckets);

/// Per-stage heavy-bucket indices (exposed for tests and diagnostics):
/// buckets whose mean-corrected estimate exceeds `threshold`.
std::vector<std::vector<std::uint32_t>> heavy_buckets(
    const ReversibleSketch& sketch, double threshold);

}  // namespace hifind
