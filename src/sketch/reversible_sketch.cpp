#include "sketch/reversible_sketch.hpp"

#include <algorithm>
#include <array>
#include <span>
#include <stdexcept>

#include "sketch/simd_ops.hpp"

namespace hifind {
namespace {

double median_of(std::span<double> v) {
  const std::size_t n = v.size();
  const std::size_t mid = n / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  if (n % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(), v.begin() + mid);
  return (lo + hi) / 2.0;
}

}  // namespace

ReversibleSketch::ReversibleSketch(const ReversibleSketchConfig& config)
    : config_(config), mangler_(mix64(config.seed) ^ 0xb5f1c6a3d2e49807ULL,
                                config.key_bits) {
  if (config_.key_bits < 8 || config_.key_bits > 64 ||
      config_.key_bits % 8 != 0) {
    throw std::invalid_argument(
        "ReversibleSketch key_bits must be a multiple of 8 in [8,64]");
  }
  if (config_.num_stages == 0 || config_.num_stages > kMaxStages) {
    throw std::invalid_argument(
        "ReversibleSketch needs between 1 and kMaxStages stages");
  }
  if (config_.bucket_bits < 1 || config_.bucket_bits > 28 ||
      config_.bucket_bits % config_.num_words() != 0) {
    throw std::invalid_argument(
        "ReversibleSketch bucket_bits must divide evenly across key words");
  }
  const int q = config_.num_words();
  const int nb = config_.bits_per_word();
  word_hashes_.reserve(config_.num_stages * static_cast<std::size_t>(q));
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    for (int w = 0; w < q; ++w) {
      word_hashes_.emplace_back(
          mix64(config_.seed) ^ mix64((h << 8) | static_cast<unsigned>(w)),
          nb);
    }
  }
  // Flatten modular hashing for batched index precomputation: byte p of the
  // mangled key (LSB first) is word w = q-1-p, whose sub-index occupies bits
  // [nb*p, nb*(p+1)) of the bucket index. Sub-index ranges are disjoint, so
  // the tab_hash64 XOR fold equals index_of_mangled()'s shift-or concat.
  flat_tables_.assign(config_.num_stages * static_cast<std::size_t>(q) * 256,
                      0);
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    for (int p = 0; p < q; ++p) {
      const WordHash& wh = word_hash(h, q - 1 - p);
      std::uint64_t* row =
          flat_tables_.data() + (h * static_cast<std::size_t>(q) + p) * 256;
      for (int v = 0; v < 256; ++v) {
        row[v] = static_cast<std::uint64_t>(wh.map(static_cast<std::uint8_t>(v)))
                 << (nb * p);
      }
    }
  }
  counters_.assign(config_.num_stages * config_.num_buckets(), 0.0);
  stage_sums_.assign(config_.num_stages, 0.0);
}

std::size_t ReversibleSketch::index_of_mangled(std::size_t stage,
                                               std::uint64_t mangled) const {
  const int q = config_.num_words();
  const int nb = config_.bits_per_word();
  std::size_t index = 0;
  // Word 0 is the most-significant key byte and occupies the most-significant
  // sub-index bits; the layout choice is arbitrary but must match inference.
  for (int w = 0; w < q; ++w) {
    const auto word = static_cast<std::uint8_t>(
        (mangled >> (8 * (q - 1 - w))) & 0xff);
    index = (index << nb) | word_hash(stage, w).map(word);
  }
  return index;
}

void ReversibleSketch::update(std::uint64_t key, double delta) {
  const std::uint64_t mangled = mangler_.mangle(key);
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    counters_[h * config_.num_buckets() + index_of_mangled(h, mangled)] +=
        delta;
    stage_sums_[h] += delta;
  }
  ++update_count_;
}

void ReversibleSketch::update_batch(std::span<const KeyDelta> ops) {
  if (batch_index_mode() == BatchIndexMode::kLegacy) {
    update_batch_legacy(ops);
    return;
  }
  // Vectorized index precomputation: mangle a whole chunk, then one
  // tab_hash64 pass per stage over the flattened modular-hash tables yields
  // every bucket index before any counter line is touched. The apply loop
  // walks the flat u32 index array (op-major, stride H — max flat index
  // H*K <= 8*2^28 < 2^32) with a sliding prefetch window, and adds deltas in
  // the same per-op, per-stage order as scalar update() — bit-identical.
  constexpr std::size_t kChunk = 256;
  constexpr std::size_t kAhead = 16;  // ops of prefetch lead in the apply loop
  const std::size_t H = config_.num_stages;
  const std::size_t K = config_.num_buckets();
  const int q = config_.num_words();
  std::uint64_t mangled[kChunk];
  std::uint64_t hbuf[kChunk];
  std::uint32_t idx[kChunk * kMaxStages];
  for (std::size_t base = 0; base < ops.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, ops.size() - base);
    for (std::size_t j = 0; j < n; ++j) {
      mangled[j] = mangler_.mangle(ops[base + j].key);
    }
    for (std::size_t h = 0; h < H; ++h) {
      simd::tab_hash64(mangled, n,
                       flat_tables_.data() + h * static_cast<std::size_t>(q) * 256,
                       q, hbuf);
      const std::size_t off = h * K;
      for (std::size_t j = 0; j < n; ++j) {
        idx[j * H + h] = static_cast<std::uint32_t>(off + hbuf[j]);
      }
    }
    const std::size_t lead = std::min(kAhead, n);
    for (std::size_t j = 0; j < lead; ++j) {
      for (std::size_t h = 0; h < H; ++h) {
        prefetch_write(&counters_[idx[j * H + h]]);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (j + kAhead < n) {
        for (std::size_t h = 0; h < H; ++h) {
          prefetch_write(&counters_[idx[(j + kAhead) * H + h]]);
        }
      }
      const double delta = ops[base + j].delta;
      for (std::size_t h = 0; h < H; ++h) {
        counters_[idx[j * H + h]] += delta;
        stage_sums_[h] += delta;
      }
    }
    update_count_ += n;
  }
}

void ReversibleSketch::update_batch_legacy(std::span<const KeyDelta> ops) {
  constexpr std::size_t kBlock = 16;
  const std::size_t H = config_.num_stages;
  std::size_t idx[kBlock * kMaxStages];
  for (std::size_t base = 0; base < ops.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, ops.size() - base);
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t mangled = mangler_.mangle(ops[base + j].key);
      for (std::size_t h = 0; h < H; ++h) {
        const std::size_t i =
            h * config_.num_buckets() + index_of_mangled(h, mangled);
        idx[j * H + h] = i;
        prefetch_write(&counters_[i]);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      const double delta = ops[base + j].delta;
      for (std::size_t h = 0; h < H; ++h) {
        counters_[idx[j * H + h]] += delta;
        stage_sums_[h] += delta;
      }
    }
    update_count_ += n;
  }
}

double ReversibleSketch::estimate(std::uint64_t key) const {
  const std::uint64_t mangled = mangler_.mangle(key);
  const double k = static_cast<double>(config_.num_buckets());
  // Fixed scratch: estimate() sits on the detection inner loop (every
  // candidate the inference engine screens), so no per-call allocation.
  std::array<double, kMaxStages> est{};
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    const double bucket =
        counters_[h * config_.num_buckets() + index_of_mangled(h, mangled)];
    est[h] = (bucket - stage_sums_[h] / k) / (1.0 - 1.0 / k);
  }
  return median_of(std::span<double>(est.data(), config_.num_stages));
}

void ReversibleSketch::accumulate(const ReversibleSketch& other,
                                  double coeff) {
  if (!combinable_with(other)) {
    throw std::invalid_argument(
        "ReversibleSketch::accumulate: sketches have different shape or seed");
  }
  simd::accumulate(counters_.data(), other.counters_.data(), counters_.size(),
                   coeff);
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    stage_sums_[h] += coeff * other.stage_sums_[h];
  }
}

void ReversibleSketch::scale(double coeff) {
  simd::scale(counters_.data(), counters_.size(), coeff);
  for (auto& s : stage_sums_) s *= coeff;
}

void ReversibleSketch::clear() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
  std::fill(stage_sums_.begin(), stage_sums_.end(), 0.0);
  update_count_ = 0;
}

void ReversibleSketch::load_counters(std::span<const double> counters) {
  if (counters.size() != counters_.size()) {
    throw std::invalid_argument(
        "ReversibleSketch::load_counters: size mismatch");
  }
  std::copy(counters.begin(), counters.end(), counters_.begin());
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    double sum = 0.0;
    for (std::size_t b = 0; b < config_.num_buckets(); ++b) {
      sum += counters_[h * config_.num_buckets() + b];
    }
    stage_sums_[h] = sum;
  }
}

ReversibleSketch ReversibleSketch::combine(
    std::span<const std::pair<double, const ReversibleSketch*>> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("ReversibleSketch::combine: no terms");
  }
  ReversibleSketch out(terms.front().second->config());
  out.combine_into(terms);
  return out;
}

void ReversibleSketch::combine_into(
    std::span<const std::pair<double, const ReversibleSketch*>> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("ReversibleSketch::combine_into: no terms");
  }
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (!combinable_with(*terms[i].second)) {
      throw std::invalid_argument(
          "ReversibleSketch::combine_into: sketches have different shape or "
          "seed");
    }
    if (i > 0 && terms[i].second == this) {
      throw std::invalid_argument(
          "ReversibleSketch::combine_into: destination may only alias term 0");
    }
  }
  // Derived state first, while this sketch's own values (it may be term 0)
  // are still readable.
  std::uint64_t updates = 0;
  for (const auto& [coeff, sketch] : terms) {
    (void)coeff;
    updates += sketch->update_count_;
  }
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    double s = 0.0;
    for (const auto& [coeff, sketch] : terms) {
      s += coeff * sketch->stage_sums_[h];
    }
    stage_sums_[h] = s;
  }
  // First term assigns (y = 0*y + c*x is exact and alias-safe for finite
  // counters), the rest accumulate — one pass per term over the reused
  // counter array.
  simd::axpby(counters_.data(), terms[0].second->counters_.data(),
              counters_.size(), 0.0, terms[0].first);
  for (const auto& [coeff, sketch] : terms.subspan(1)) {
    simd::accumulate(counters_.data(), sketch->counters_.data(),
                     counters_.size(), coeff);
  }
  update_count_ = updates;
}

}  // namespace hifind
