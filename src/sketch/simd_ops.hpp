// SIMD linear-algebra kernels for sketch counter arrays.
//
// The detection epoch (interval close) is memory-pass bound: every
// forecaster step and every heavy-bucket scan walks multi-megabyte counter
// arrays, and the seed implementation walked them several times per step
// (copy, scale, accumulate, then a separate threshold scan). This layer
// provides the single-pass fused kernels those phases compile down to:
//
//   scale       y *= c
//   accumulate  y += c*x
//   axpby       y  = a*y + b*x
//   ewma_roll   err = obs - fc;  fc = (1-a)*fc + a*obs          (one pass)
//   holt_roll   Holt level/trend/error update                    (one pass)
//   ma_roll     err = obs - inv_n*sum                            (one pass)
//   *_collect   as above, additionally emitting the indices where
//               err >= cut — the per-stage heavy-bucket candidate list
//               falls out of the forecast pass for free.
//
// Every kernel has a portable scalar implementation and an AVX2
// implementation (compiled when HIFIND_NATIVE is ON and the toolchain
// supports it), selected once at startup via cpuid. BIT-IDENTITY is a hard
// contract: the AVX2 bodies use only IEEE mul/add/sub (no FMA, and the TU
// is built with -ffp-contract=off), and every fused kernel evaluates the
// exact per-element expressions of the scalar multi-pass sequence it
// replaces, so scalar vs. SIMD and fused vs. unfused produce bit-identical
// counters. Tests assert this property; the parallel detection epoch's
// determinism rests on it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hifind::simd {

/// y *= c over n doubles.
void scale(double* y, std::size_t n, double c);

/// y += c * x over n doubles (the accumulate() inner loop).
void accumulate(double* y, const double* x, std::size_t n, double c);

/// y = a*y + b*x over n doubles, evaluated as (a*y) + (b*x).
void axpby(double* y, const double* x, std::size_t n, double a, double b);

/// Fused EWMA step over n counters:
///   err[i] = obs[i] - fc[i]
///   fc[i]  = ((1-alpha)*fc[i]) + (alpha*obs[i])
void ewma_roll(double* fc, const double* obs, double* err, std::size_t n,
               double alpha);

/// ewma_roll + heavy-candidate collection: appends to out_idx (caller
/// guarantees room for n entries) every index i with err[i] >= cut, in
/// ascending order; returns the number emitted.
std::size_t ewma_roll_collect(double* fc, const double* obs, double* err,
                              std::size_t n, double alpha, double cut,
                              std::uint32_t* out_idx);

/// Fused Holt (double-exponential) step over n counters:
///   f      = level[i] + trend[i]
///   err[i] = obs[i] - f
///   nl     = ((1-alpha)*f) + (alpha*obs[i])
///   d      = nl - level[i]
///   trend[i] = ((1-beta)*trend[i]) + (beta*d)
///   level[i] = nl
void holt_roll(double* level, double* trend, const double* obs, double* err,
               std::size_t n, double alpha, double beta);

/// holt_roll + heavy-candidate collection (see ewma_roll_collect).
std::size_t holt_roll_collect(double* level, double* trend, const double* obs,
                              double* err, std::size_t n, double alpha,
                              double beta, double cut, std::uint32_t* out_idx);

/// Fused moving-average error: err[i] = obs[i] - inv_n*sum[i].
void ma_roll(const double* sum, const double* obs, double* err, std::size_t n,
             double inv_n);

/// ma_roll + heavy-candidate collection (see ewma_roll_collect).
std::size_t ma_roll_collect(const double* sum, const double* obs, double* err,
                            std::size_t n, double inv_n, double cut,
                            std::uint32_t* out_idx);

/// Batched byte-table hash: out[i] = XOR over b < nbytes of
/// table[b*256 + ((keys[i] >> 8*b) & 0xff)]. This is the shared shape of
/// every bucket-index computation on the recording hot path: tabulation
/// hashing XORs eight per-byte tables, and reversible-sketch modular
/// hashing concatenates per-word sub-indices — which, with each sub-index
/// pre-shifted into its disjoint bit range, IS an XOR fold over per-byte
/// tables. The AVX2 backend gathers 4 keys' table entries per step; being
/// pure integer arithmetic it is EXACTLY equal to the scalar backend (no
/// FP-contraction caveats apply), so batch-index precomputation is
/// bit-identical to per-op hashing by construction.
/// `nbytes` must be in [1, 8]; `table` holds nbytes*256 entries.
void tab_hash64(const std::uint64_t* keys, std::size_t n,
                const std::uint64_t* table, int nbytes, std::uint64_t* out);

/// Name of the active backend: "avx2" or "scalar".
const char* active_backend();

/// Forces the portable scalar backend on (true) or restores the
/// best-available backend (false). For tests and benchmarks that compare
/// the two paths; not thread-safe against concurrent kernel calls.
void set_force_scalar(bool force);

/// True when the AVX2 backend was compiled in AND the CPU supports it.
bool avx2_available();

}  // namespace hifind::simd
