#include "sketch/sketch_backend.hpp"

#include <array>
#include <string>

namespace hifind {

std::string_view sketch_backend_name(SketchBackendKind kind) {
  switch (kind) {
    case SketchBackendKind::kReversible:
      return "reversible";
    case SketchBackendKind::kCompact:
      return "compact";
  }
  return "unknown";
}

SketchBackendKind sketch_backend_from_name(std::string_view name) {
  if (name == "reversible") return SketchBackendKind::kReversible;
  if (name == "compact") return SketchBackendKind::kCompact;
  throw std::invalid_argument("unknown sketch backend: " + std::string(name));
}

void InvertibleSketch::combine_into(
    std::span<const std::pair<double, const InvertibleSketch*>> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("InvertibleSketch::combine_into: no terms");
  }
  if (terms.size() > kMaxTerms) {
    throw std::invalid_argument(
        "InvertibleSketch::combine_into: too many terms");
  }
  for (const auto& [coeff, sketch] : terms) {
    (void)coeff;
    check_same(*sketch, "combine_into");
  }
  std::visit(
      [&](auto& self) {
        using S = std::remove_reference_t<decltype(self)>;
        std::array<std::pair<double, const S*>, kMaxTerms> proj;
        for (std::size_t i = 0; i < terms.size(); ++i) {
          proj[i] = {terms[i].first, &std::get<S>(terms[i].second->impl_)};
        }
        self.combine_into(std::span<const std::pair<double, const S*>>(
            proj.data(), terms.size()));
      },
      impl_);
}

void ReverseEngine::begin(const InvertibleSketch& sketch, double threshold,
                          const InferenceOptions& options,
                          StageBuckets stage_buckets) {
  compact_active_ = sketch.kind() == SketchBackendKind::kCompact;
  if (compact_active_) {
    extract_.begin(sketch.compact(), threshold, options,
                   std::move(stage_buckets));
  } else {
    dfs_.begin(sketch.reversible(), threshold, options,
               std::move(stage_buckets));
  }
}

void ReverseEngine::begin(const InvertibleSketch& sketch, double threshold,
                          const InferenceOptions& options) {
  begin(sketch, threshold, options, heavy_buckets(sketch, threshold));
}

bool ReverseEngine::run_chunk(std::size_t quantum) {
  return compact_active_ ? extract_.run_chunk(quantum)
                         : dfs_.run_chunk(quantum);
}

InferenceResult ReverseEngine::take_result() {
  return compact_active_ ? extract_.take_result() : dfs_.take_result();
}

StageBuckets heavy_buckets(const InvertibleSketch& sketch, double threshold) {
  if (sketch.kind() == SketchBackendKind::kCompact) {
    return heavy_buckets(sketch.compact(), threshold);
  }
  return heavy_buckets(sketch.reversible(), threshold);
}

InferenceResult infer_heavy_keys(const InvertibleSketch& sketch,
                                 double threshold,
                                 const InferenceOptions& options) {
  return infer_heavy_keys(sketch, threshold, options,
                          heavy_buckets(sketch, threshold));
}

InferenceResult infer_heavy_keys(const InvertibleSketch& sketch,
                                 double threshold,
                                 const InferenceOptions& options,
                                 StageBuckets stage_buckets) {
  ReverseEngine engine;
  engine.begin(sketch, threshold, options, std::move(stage_buckets));
  while (!engine.run_chunk(~std::size_t{0})) {
  }
  return engine.take_result();
}

}  // namespace hifind
