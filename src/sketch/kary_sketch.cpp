#include "sketch/kary_sketch.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sketch/simd_ops.hpp"

namespace hifind {
namespace {

/// Median of a small scratch vector (destructive).
double median_of(std::vector<double>& v) {
  const std::size_t n = v.size();
  const std::size_t mid = n / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  if (n % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(), v.begin() + mid);
  return (lo + hi) / 2.0;
}

}  // namespace

KarySketch::KarySketch(const KarySketchConfig& config) : config_(config) {
  if (config_.num_stages == 0 || config_.num_buckets < 2) {
    throw std::invalid_argument("KarySketch needs >=1 stage and >=2 buckets");
  }
  hashes_.reserve(config_.num_stages);
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    hashes_.emplace_back(mix64(config_.seed) ^ mix64(h + 0x9e37u),
                         config_.num_buckets);
  }
  counters_.assign(config_.num_stages * config_.num_buckets, 0.0);
  stage_sums_.assign(config_.num_stages, 0.0);
}

void KarySketch::update(std::uint64_t key, double delta) {
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    counters_[bucket_index(h, key)] += delta;
    stage_sums_[h] += delta;
  }
  ++update_count_;
}

void KarySketch::update_batch(std::span<const KeyDelta> ops) {
  constexpr std::size_t kMaxStagesVec = 16;
  // Below this footprint the apply pass hits L2 anyway and ANY index
  // staging — vectorized included — loses to the plain scalar loop
  // (measured: 0.96x on the 6x2^14 k-ary shape). Small sketches route to
  // the legacy path, whose small-footprint branch IS the scalar loop; the
  // vectorized precomputation is reserved for cache-busting shapes where
  // the flat index array feeds a deep prefetch pipeline. SketchBank's
  // sketch-major record_ops keeps these counters resident for a sketch's
  // whole turn, which is exactly the regime this routing assumes.
  constexpr std::size_t kPrefetchMinBytes = std::size_t{2} << 20;
  const std::size_t H = config_.num_stages;
  if (batch_index_mode() == BatchIndexMode::kLegacy || H > kMaxStagesVec ||
      counters_.size() * sizeof(double) < kPrefetchMinBytes ||
      counters_.size() > std::numeric_limits<std::uint32_t>::max()) {
    update_batch_legacy(ops);
    return;
  }
  constexpr std::size_t kChunk = 256;
  constexpr std::size_t kAhead = 16;  // ops of prefetch lead in the apply loop
  const std::size_t K = config_.num_buckets;
  std::uint64_t keys[kChunk];
  std::uint64_t hbuf[kChunk];
  std::uint32_t idx[kChunk * kMaxStagesVec];
  for (std::size_t base = 0; base < ops.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, ops.size() - base);
    for (std::size_t j = 0; j < n; ++j) keys[j] = ops[base + j].key;
    for (std::size_t h = 0; h < H; ++h) {
      const TabulationHash& th = hashes_[h];
      simd::tab_hash64(keys, n, th.table_data(), 8, hbuf);
      const std::size_t off = h * K;
      for (std::size_t j = 0; j < n; ++j) {
        idx[j * H + h] = static_cast<std::uint32_t>(off + th.fold(hbuf[j]));
      }
    }
    const std::size_t lead = std::min(kAhead, n);
    for (std::size_t j = 0; j < lead; ++j) {
      for (std::size_t h = 0; h < H; ++h) {
        prefetch_write(&counters_[idx[j * H + h]]);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (j + kAhead < n) {
        for (std::size_t h = 0; h < H; ++h) {
          prefetch_write(&counters_[idx[(j + kAhead) * H + h]]);
        }
      }
      const double delta = ops[base + j].delta;
      for (std::size_t h = 0; h < H; ++h) {
        counters_[idx[j * H + h]] += delta;
        stage_sums_[h] += delta;
      }
    }
    update_count_ += n;
  }
}

void KarySketch::update_batch_legacy(std::span<const KeyDelta> ops) {
  // Small index block: indices for kBlock operands across all stages. The
  // index pass issues prefetches; the apply pass then mostly hits cache.
  constexpr std::size_t kBlock = 32;
  constexpr std::size_t kMaxStagesInBlock = 16;
  // Prefetching only pays when the counter array outgrows the fast caches:
  // below this footprint the apply pass hits L2 anyway, and the extra
  // index-staging pass makes the batch path SLOWER than plain scalar
  // updates (measured: 29.9M vs 35.8M items/s on the 6x2^14 k-ary shape,
  // 786 KiB). Small sketches therefore take the scalar loop — bit-identical
  // to update() per op, same order, same adds — and only cache-busting
  // shapes (e.g. RS64's 3 MiB array) stage and prefetch.
  constexpr std::size_t kPrefetchMinBytes = std::size_t{2} << 20;
  const std::size_t H = config_.num_stages;
  const bool footprint_small = counters_.size() * sizeof(double) <
                               kPrefetchMinBytes;
  if (H > kMaxStagesInBlock || footprint_small) {
    // Same adds in the same order as update() per op; only the per-op
    // update_count_ increment is hoisted, so batch never trails scalar.
    for (const auto& op : ops) {
      for (std::size_t h = 0; h < H; ++h) {
        counters_[bucket_index(h, op.key)] += op.delta;
        stage_sums_[h] += op.delta;
      }
    }
    update_count_ += ops.size();
    return;
  }
  std::size_t idx[kBlock * kMaxStagesInBlock];
  for (std::size_t base = 0; base < ops.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, ops.size() - base);
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t key = ops[base + j].key;
      for (std::size_t h = 0; h < H; ++h) {
        const std::size_t i = bucket_index(h, key);
        idx[j * H + h] = i;
        prefetch_write(&counters_[i]);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      const double delta = ops[base + j].delta;
      for (std::size_t h = 0; h < H; ++h) {
        counters_[idx[j * H + h]] += delta;
        stage_sums_[h] += delta;
      }
    }
    update_count_ += n;
  }
}

double KarySketch::estimate(std::uint64_t key) const {
  const double k = static_cast<double>(config_.num_buckets);
  std::vector<double> est(config_.num_stages);
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    const double bucket = counters_[bucket_index(h, key)];
    const double sum = stage_sum(h);
    est[h] = (bucket - sum / k) / (1.0 - 1.0 / k);
  }
  return median_of(est);
}

std::vector<double> KarySketch::stage_values(std::uint64_t key) const {
  std::vector<double> v(config_.num_stages);
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    v[h] = counters_[bucket_index(h, key)];
  }
  return v;
}

void KarySketch::accumulate(const KarySketch& other, double coeff) {
  if (!combinable_with(other)) {
    throw std::invalid_argument(
        "KarySketch::accumulate: sketches have different shape or seed");
  }
  simd::accumulate(counters_.data(), other.counters_.data(), counters_.size(),
                   coeff);
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    stage_sums_[h] += coeff * other.stage_sums_[h];
  }
}

void KarySketch::scale(double coeff) {
  simd::scale(counters_.data(), counters_.size(), coeff);
  for (auto& s : stage_sums_) s *= coeff;
}

void KarySketch::clear() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
  std::fill(stage_sums_.begin(), stage_sums_.end(), 0.0);
  update_count_ = 0;
}

void KarySketch::load_counters(std::span<const double> counters) {
  if (counters.size() != counters_.size()) {
    throw std::invalid_argument("KarySketch::load_counters: size mismatch");
  }
  std::copy(counters.begin(), counters.end(), counters_.begin());
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    double sum = 0.0;
    for (std::size_t b = 0; b < config_.num_buckets; ++b) {
      sum += counters_[h * config_.num_buckets + b];
    }
    stage_sums_[h] = sum;
  }
}

KarySketch KarySketch::combine(
    std::span<const std::pair<double, const KarySketch*>> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("KarySketch::combine: no terms");
  }
  KarySketch out(terms.front().second->config());
  out.combine_into(terms);
  return out;
}

void KarySketch::combine_into(
    std::span<const std::pair<double, const KarySketch*>> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("KarySketch::combine_into: no terms");
  }
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (!combinable_with(*terms[i].second)) {
      throw std::invalid_argument(
          "KarySketch::combine_into: sketches have different shape or seed");
    }
    if (i > 0 && terms[i].second == this) {
      throw std::invalid_argument(
          "KarySketch::combine_into: destination may only alias term 0");
    }
  }
  // Derived state first, while this sketch's own values (it may be term 0)
  // are still readable.
  std::uint64_t updates = 0;
  for (const auto& [coeff, sketch] : terms) {
    (void)coeff;
    updates += sketch->update_count_;
  }
  for (std::size_t h = 0; h < config_.num_stages; ++h) {
    double s = 0.0;
    for (const auto& [coeff, sketch] : terms) {
      s += coeff * sketch->stage_sums_[h];
    }
    stage_sums_[h] = s;
  }
  // First term assigns (y = 0*y + c*x is exact and alias-safe for finite
  // counters), the rest accumulate — one pass per term, reusing this
  // sketch's counter array.
  simd::axpby(counters_.data(), terms[0].second->counters_.data(),
              counters_.size(), 0.0, terms[0].first);
  for (const auto& [coeff, sketch] : terms.subspan(1)) {
    simd::accumulate(counters_.data(), sketch->counters_.data(),
                     counters_.size(), coeff);
  }
  update_count_ = updates;
}

}  // namespace hifind
