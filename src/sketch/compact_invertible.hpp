// Compact invertible sketch (Tang/Huang/Lee-style, arXiv:1910.10441):
// UPDATE/ESTIMATE/COMBINE with O(1)-per-bucket REVERSE.
//
// The reversible sketch (reversible_sketch.hpp) buys invertibility with
// modular hashing and pays for it at detection time: reversing a heavy
// interval is a DFS over per-word candidate sets whose cost grows with the
// number of concurrent anomalies (cross-product "near collisions" included).
// The compact invertible sketch instead EMBEDS the key material in the
// bucket itself: alongside each bucket's value counter it keeps one counter
// per key bit, and every update adds its delta to the value counter and to
// the counters of the key's set bits. Extraction is then direct — for a
// heavy bucket, bit b of the dominant key is 1 iff bitsum[b] > value/2
// (majority decode) — O(key_bits) per heavy bucket, no candidate sweep, no
// cross-product, no per-stage intersection search.
//
// One deliberate deviation from the literal paper structure: Tang et al.'s
// bucket cells carry a majority-vote <key, count> pair whose final state
// depends on update ORDER and whose merge is lossy. This repo's shard merge
// and multi-router aggregation contracts require exact COMBINE linearity
// (bit-identical serial-vs-sharded alerts, PR 5), so we use the linear
// group-testing (Deltoid/CountSketch-style) form of the same idea: every
// per-bucket counter is a plain linear accumulator, so the whole sketch is
// one flat double array and COMBINE/scale/accumulate are exact whole-array
// linear algebra — order-independent, shard-mergeable, forecastable with the
// fused kernels. Decode stays O(key_bits) per bucket.
//
// Layout (one flat array, stage-major):
//   [0, H*K)                     value counters (the "collect region" the
//                                fused forecaster kernels threshold-scan)
//   [H*K, H*K*(1+key_bits))      bit counters, bucket-major: bucket (h, i)
//                                owns the key_bits-long run starting at
//                                H*K + (h*K + i)*key_bits
// stage_sums_ caches the per-stage sums of the VALUE region only — exactly
// the quantity the k-ary mean-corrected estimator and the heavy-bucket cut
// need. Bit counters roll along under the same whole-array kernels (they are
// linear in the same updates), so forecast-error sketches decode the same
// way observation sketches do.
//
// Estimation uses full-key tabulation hashing per stage (no mangling, no
// word splitting) with the k-ary mean-corrected median estimator, so its
// accuracy profile matches the k-ary sketch at equal H x K. The price of
// O(1) reversal is update cost (1 + key_bits counter adds per stage instead
// of 1) and memory ((1 + key_bits) x the value-only footprint) — the
// reversal-cost model in DESIGN.md quantifies the trade.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "common/mem_policy.hpp"
#include "sketch/reverse_inference.hpp"
#include "sketch/sketch_ops.hpp"

namespace hifind {

struct SketchKernelAccess;

/// Shape parameters of a compact invertible sketch. Fewer, larger buckets
/// than the reversible shapes: each bucket costs (1 + key_bits) doubles, and
/// decode needs the dominant key to carry a majority of its bucket's mass,
/// which low collision pressure (large K) provides.
struct CompactInvertibleConfig {
  int key_bits{48};           ///< n: key width, in [8, 64]
  std::size_t num_stages{3};  ///< H: independent hash stages
  int bucket_bits{12};        ///< log2(K)
  std::uint64_t seed{1};      ///< hash seed; equal seeds => combinable

  std::size_t num_buckets() const { return std::size_t{1} << bucket_bits; }
  /// Doubles per bucket: 1 value counter + key_bits bit counters.
  std::size_t words_per_bucket() const {
    return 1 + static_cast<std::size_t>(key_bits);
  }

  bool operator==(const CompactInvertibleConfig&) const = default;
};

class CompactInvertibleSketch {
 public:
  /// Same hard stage cap as the reversible sketch — hot paths use fixed
  /// stack scratch.
  static constexpr std::size_t kMaxStages = 8;

  /// Validates the shape and builds the per-stage tabulation hash family.
  /// Throws std::invalid_argument on inconsistent parameters.
  explicit CompactInvertibleSketch(const CompactInvertibleConfig& config);

  /// Adds `delta` to the key's value counter and to each set key bit's
  /// counter, in every stage: H * (1 + popcount(key)) counter adds.
  void update(std::uint64_t key, double delta);

  /// Applies a block of updates, prefetching each operand's bucket run
  /// during an index pass. Bit-identical to update() per operand in order.
  void update_batch(std::span<const KeyDelta> ops);

  /// Mean-corrected median estimate over the VALUE counters (the k-ary
  /// estimator; bit counters play no part in estimation).
  double estimate(std::uint64_t key) const;

  /// Bucket index of a key in one stage.
  std::size_t bucket_of(std::size_t stage, std::uint64_t key) const {
    return hashes_[stage].bucket(key);
  }

  /// O(key_bits) direct candidate extraction from one bucket: majority
  /// decode of the embedded bit counters against the value counter. The
  /// returned key is the bucket's dominant key whenever one key carries a
  /// majority of the bucket's mass; otherwise it is noise — always screen
  /// with estimate() (and a verification sketch) before trusting it.
  std::uint64_t decode_bucket(std::size_t stage, std::size_t bucket) const;

  bool combinable_with(const CompactInvertibleSketch& other) const {
    return config_ == other.config_;
  }

  /// this += coeff * other — exact, whole-array (value AND bit counters).
  void accumulate(const CompactInvertibleSketch& other, double coeff = 1.0);

  /// this *= coeff.
  void scale(double coeff);

  void clear();

  /// COMBINE — linear combination as a new sketch.
  static CompactInvertibleSketch combine(
      std::span<const std::pair<double, const CompactInvertibleSketch*>>
          terms);

  /// Destination-reuse COMBINE (see ReversibleSketch::combine_into): this =
  /// sum ci*Si in place; `this` may appear only as the FIRST term.
  void combine_into(
      std::span<const std::pair<double, const CompactInvertibleSketch*>>
          terms);

  const CompactInvertibleConfig& config() const { return config_; }

  /// VALUE counter of one stage/bucket.
  double bucket_value(std::size_t stage, std::size_t bucket) const {
    return counters_[stage * config_.num_buckets() + bucket];
  }

  double stage_sum(std::size_t stage) const { return stage_sums_[stage]; }

  /// The full flat array (value region then bit region) — serialization and
  /// the fused kernels operate on all of it.
  std::span<const double> counters() const { return counters_; }

  /// Collect region for the fused forecaster kernels: the heavy-bucket
  /// threshold scan covers only the first collect_rows() x collect_cols()
  /// elements (the value counters); the bit-counter tail rolls plainly.
  std::size_t collect_rows() const { return config_.num_stages; }
  std::size_t collect_cols() const { return config_.num_buckets(); }

  /// Deserialization support: replaces the whole flat array (stage sums are
  /// recomputed from the value region). Throws on size mismatch.
  void load_counters(std::span<const double> counters);

  std::size_t memory_bytes() const { return counters_.size() * sizeof(double); }
  std::size_t memory_bytes_hw() const {
    return counters_.size() * sizeof(std::uint32_t);
  }

  /// Counter memory accesses per update: H * (1 + key_bits) in the worst
  /// case (all key bits set) — the honest hardware figure for this backend.
  std::size_t accesses_per_update() const {
    return config_.num_stages * config_.words_per_bucket();
  }

  std::uint64_t update_count() const { return update_count_; }

 private:
  friend struct SketchKernelAccess;  // fused kernels (sketch_kernels.hpp)

  /// Start of bucket (h, i)'s bit-counter run in counters_.
  std::size_t bit_base(std::size_t stage, std::size_t bucket) const {
    return value_len_ +
           (stage * config_.num_buckets() + bucket) *
               static_cast<std::size_t>(config_.key_bits);
  }

  CompactInvertibleConfig config_;
  std::vector<TabulationHash> hashes_;  // one full-key hash per stage
  std::size_t value_len_{0};            // H*K: size of the value region
  mem::CounterVec counters_;            // value + bit regions; hugepage-backed
  std::vector<double> stage_sums_;      // value region only
  std::uint64_t update_count_{0};
};

/// Resumable direct extraction — the compact backend's REVERSE, with the
/// StreamingInference driving contract (begin / run_chunk / take_result) and
/// the same deterministic degradation semantics:
///   * buckets are visited in a fixed order (stage-major, the given
///     ascending-bucket lists), so the emitted key set is a pure function of
///     (sketch, threshold, options, stage_buckets);
///   * work is metered in search units (one bucket decode = 1 + key words,
///     one candidate screen = 2 — commensurate with the DFS meter), so
///     max_work truncation is identical at any chunk size or thread count;
///   * max_heavy_per_stage keeps the LARGEST buckets with the same
///     value-descending / index-ascending tie-break as the DFS path;
///   * duplicate decodes (the same key recovered from several stages) are
///     emitted once, at their first appearance.
/// stage_slack does not apply: buckets decode independently, there is no
/// cross-stage intersection to relax.
class CompactExtraction {
 public:
  CompactExtraction() = default;
  CompactExtraction(const CompactExtraction&) = delete;
  CompactExtraction& operator=(const CompactExtraction&) = delete;

  /// Prepares extraction from precomputed per-stage heavy-bucket lists
  /// (ascending bucket ids — the heavy_buckets() / step_collect format).
  /// The sketch must outlive the run; `options` is copied.
  void begin(const CompactInvertibleSketch& sketch, double threshold,
             const InferenceOptions& options,
             std::vector<std::vector<std::uint32_t>> stage_buckets);

  /// As above, but scans the value counters for the heavy buckets itself.
  void begin(const CompactInvertibleSketch& sketch, double threshold,
             const InferenceOptions& options);

  /// Advances extraction by roughly `quantum` work units. Returns true when
  /// done (exhausted, candidate-capped, or out of budget).
  bool run_chunk(std::size_t quantum);

  bool done() const { return done_; }
  std::size_t work_used() const { return result_.work_used; }

  /// Moves the finished result out; the engine is then ready for the next
  /// begin().
  InferenceResult take_result();

 private:
  const CompactInvertibleSketch* sketch_{nullptr};
  double threshold_{0.0};
  InferenceOptions options_;
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::size_t stage_{0};  ///< cursor: current stage list
  std::size_t pos_{0};    ///< cursor: next index within buckets_[stage_]
  std::vector<std::uint64_t> seen_;  ///< sorted-unique decoded keys
  bool done_{true};
  InferenceResult result_;
};

/// One-shot extraction (drives CompactExtraction to completion).
InferenceResult infer_heavy_keys(const CompactInvertibleSketch& sketch,
                                 double threshold,
                                 const InferenceOptions& options = {});
InferenceResult infer_heavy_keys(
    const CompactInvertibleSketch& sketch, double threshold,
    const InferenceOptions& options,
    std::vector<std::vector<std::uint32_t>> stage_buckets);

/// Per-stage heavy-bucket indices: VALUE buckets whose mean-corrected
/// estimate exceeds `threshold` (same cut as the reversible path).
std::vector<std::vector<std::uint32_t>> heavy_buckets(
    const CompactInvertibleSketch& sketch, double threshold);

}  // namespace hifind
