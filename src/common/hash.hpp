// Hash families used by the sketch substrates.
//
// Two distinct needs:
//  1. k-ary / verification sketches hash a full 64-bit key to a bucket index.
//     We use seeded tabulation hashing over the key bytes — 3-independent,
//     fast (8 table lookups), and implementable in hardware as parallel SRAM
//     reads, matching the paper's "hardware implementable" requirement.
//  2. Reversible sketches hash each 8-bit key *word* independently to a small
//     bucket sub-index ("modular hashing", Schweller et al.). Those per-word
//     functions are random lookup tables, which makes computing preimage sets
//     for reverse inference a table scan.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace hifind {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) over a byte span.
/// This is the iSCSI/RFC 3720 checksum that guards the HFB2 sketch-shipment
/// frames: it detects every single- and double-bit error and all burst errors
/// up to 32 bits, which covers the corruption modes a router->central link
/// realistically produces. `crc` chains across calls (pass the previous
/// return value to continue a running checksum).
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t crc = 0);

/// SplitMix64 finalizer: a fast, well-distributed 64 -> 64 bit mixer.
/// Used for seeding and for cheap non-reversible key scrambling.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seeded tabulation hash over the 8 bytes of a 64-bit key. The output is
/// folded to a caller-chosen bucket count with a multiply-shift, so bucket
/// counts need not be powers of two.
///
/// Constructing with a fixed bucket count selects a fold at construction:
/// power-of-two counts (every sketch config in the bank) take a shift fast
/// path instead of the 128-bit multiply-high. The shift IS the multiply-high
/// fold specialized to buckets = 2^k — (h * 2^k) >> 64 == h >> (64 − k) — so
/// the bucket mapping is bit-identical either way.
class TabulationHash {
 public:
  /// Builds the 8x256 random table from the seed. Distinct seeds give
  /// (statistically) independent hash functions.
  explicit TabulationHash(std::uint64_t seed);

  /// As above, additionally fixing the bucket count served by the one-argument
  /// bucket() overload. `buckets` must be >= 1.
  TabulationHash(std::uint64_t seed, std::size_t buckets);

  /// Full 64-bit hash of the key.
  std::uint64_t hash(std::uint64_t key) const {
    std::uint64_t h = 0;
    for (int b = 0; b < 8; ++b) {
      h ^= table_[b][(key >> (8 * b)) & 0xff];
    }
    return h;
  }

  /// Hash folded to [0, buckets).
  std::size_t bucket(std::uint64_t key, std::size_t buckets) const {
    // Multiply-high fold: unbiased for bucket counts << 2^64.
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(hash(key)) * buckets) >> 64);
  }

  /// Hash folded to the construction-time bucket count, dispatching to the
  /// shift fast path when that count is a power of two.
  std::size_t bucket(std::uint64_t key) const { return fold(hash(key)); }

  /// Folds an already-computed hash() value to the construction-time bucket
  /// count — exactly the fold bucket(key) applies. Batched index
  /// precomputation hashes a whole block of keys through simd::tab_hash64
  /// over table_data(), then folds each output here; the split is
  /// bit-identical to per-key bucket() calls by construction.
  std::size_t fold(std::uint64_t h) const {
    if (shift_ < 64) return static_cast<std::size_t>(h >> shift_);
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(h) * buckets_) >> 64);
  }

  /// The 8x256 byte table as a flat [byte][value] row-major array, laid out
  /// for simd::tab_hash64 (row b holds the table XORed for key byte b, LSB
  /// first — matching hash()'s `(key >> 8*b) & 0xff` extraction).
  const std::uint64_t* table_data() const { return table_[0].data(); }

  /// The construction-time bucket count (1 when none was given).
  std::size_t fixed_buckets() const { return buckets_; }

 private:
  std::array<std::array<std::uint64_t, 256>, 8> table_;
  std::size_t buckets_{1};
  int shift_{64};  ///< 64 − log2(buckets) when power of two, else 64 (off)
};

/// A random function from 8-bit words to [0, 2^out_bits), represented as a
/// lookup table. Building block of modular hashing in reversible sketches.
/// Exposes preimage sets for reverse inference.
class WordHash {
 public:
  /// @param out_bits  width of the output sub-index, in [1, 8].
  WordHash(std::uint64_t seed, int out_bits);

  /// Maps a word to its sub-index.
  std::uint8_t map(std::uint8_t word) const { return table_[word]; }

  int out_bits() const { return out_bits_; }

  /// All words w with map(w) == value. Precomputed; cheap to call in the
  /// inference inner loop.
  const std::vector<std::uint8_t>& preimage(std::uint8_t value) const {
    return preimages_[value];
  }

  /// The same preimage set as a 256-bit bitmask (bit w of word w/64 set iff
  /// map(w) == value). Lets reverse inference combine per-stage byte
  /// constraints with a handful of bitwise ops instead of per-byte loops.
  const std::array<std::uint64_t, 4>& preimage_mask(std::uint8_t value) const {
    return preimage_masks_[value];
  }

 private:
  int out_bits_;
  std::array<std::uint8_t, 256> table_;
  std::vector<std::vector<std::uint8_t>> preimages_;
  std::vector<std::array<std::uint64_t, 4>> preimage_masks_;
};

}  // namespace hifind
