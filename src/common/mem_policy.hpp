// Hugepage- and NUMA-aware placement for sketch counter memory.
//
// At million-flow scale the recording hot path is bound by the memory
// hierarchy, not arithmetic: every update touches H random counter lines in
// multi-megabyte arrays, so 4 KiB pages thrash the dTLB, and on multi-socket
// hosts a shard whose replica landed on the remote node pays ~2x the load
// latency. This layer addresses both without adding dependencies:
//
//  * CounterAllocator<T> — a std allocator that backs large allocations
//    (>= kHugeThresholdBytes) with a 2 MiB-aligned anonymous mmap marked
//    MADV_HUGEPAGE, so transparent huge pages can map each sketch stage with
//    a handful of TLB entries. Small allocations go through operator new
//    untouched. The huge/small decision is a pure function of the byte size,
//    so deallocate() routes to the matching release path deterministically.
//
//  * bind_to_node() — best-effort mbind(MPOL_PREFERRED) of an address range
//    to one NUMA node, issued through raw syscalls (no libnuma). The sharded
//    recorder binds each worker's private SketchBank replica to the node of
//    the core that runs the worker.
//
// Fallback ladder: numa -> THP -> plain pages. Every rung degrades
// gracefully — kernels without NUMA support, builds with HIFIND_NUMA=OFF,
// single-node hosts, and filesystems without THP all end up with correct
// (just slower) plain allocations. Env gates for measurement and triage:
// HIFIND_NUMA=off disables binding at runtime, HIFIND_THP=off disables the
// MADV_HUGEPAGE advice (the mmap backing remains).
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace hifind::mem {

/// Allocations at or above this byte size take the hugepage-aware mmap path.
/// 1 MiB: the TLB-busting counter arrays of the default bank shapes clear it
/// (rs64: 3 MiB, the 2D sketches: 10 MiB each), while stage-sum vectors,
/// hash tables, and forecaster scratch stay on the cheap operator-new path.
inline constexpr std::size_t kHugeThresholdBytes = std::size_t{1} << 20;

/// Rounds `bytes` up to the mmap length the huge path would reserve (whole
/// 4 KiB pages). Exposed so deallocate() and tests recompute it exactly.
std::size_t huge_alloc_length(std::size_t bytes);

/// True when MADV_HUGEPAGE advice is issued on huge-path allocations
/// (compile-time support present and HIFIND_THP != "off").
bool thp_enabled();

/// True when mbind() calls are attempted (built with HIFIND_NUMA=ON,
/// HIFIND_NUMA != "off" in the environment, and the host exposes > 1 node).
bool numa_enabled();

/// Number of online NUMA nodes (parsed from sysfs; 1 when unknown).
int node_count();

/// The CPU the calling thread is currently on, or -1 when unavailable.
int current_cpu();

/// The NUMA node of the calling thread's current CPU, or -1.
int current_node();

/// Best-effort MPOL_PREFERRED binding of [addr, addr+len) to `node`,
/// migrating already-touched pages (MPOL_MF_MOVE). The range is widened to
/// page boundaries. Returns true when the kernel accepted the request;
/// false on any failure or when numa_enabled() is false — callers treat the
/// result as telemetry, never as an error.
bool bind_to_node(const void* addr, std::size_t len, int node);

/// Best-effort pin of the calling thread to one CPU. Used by the sharded
/// recorder when HIFIND_PIN_CORES=1 so worker i stays on core i % ncpu and
/// its replica's NUMA binding stays meaningful. Returns true on success.
bool pin_current_thread_to_cpu(int cpu);

/// Raw allocation entry points of the hugepage path (also used by tests).
/// alloc_counters throws std::bad_alloc on failure; free_counters must be
/// called with the original byte size.
void* alloc_counters(std::size_t bytes);
void free_counters(void* p, std::size_t bytes) noexcept;

/// std allocator over alloc_counters/free_counters. Stateless; all
/// instances are interchangeable.
template <class T>
struct CounterAllocator {
  using value_type = T;

  CounterAllocator() noexcept = default;
  template <class U>
  CounterAllocator(const CounterAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(alloc_counters(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    free_counters(p, n * sizeof(T));
  }

  template <class U>
  bool operator==(const CounterAllocator<U>&) const noexcept {
    return true;
  }
};

/// Counter storage type shared by the sketch substrates: a double vector on
/// hugepage-aware backing. Same element layout as std::vector<double>;
/// every external consumer reads through std::span, so only the sketch
/// classes see the allocator.
using CounterVec = std::vector<double, CounterAllocator<double>>;

}  // namespace hifind::mem
