#include "common/hash.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace hifind {
namespace {

/// Slicing-by-4 tables for CRC-32C, built once at first use. Table 0 is the
/// classic byte-at-a-time table; tables 1-3 fold 4 input bytes per step.
struct Crc32cTables {
  std::uint32_t t[4][256];

  Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (c >> 1) ^ kPoly : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t crc) {
  static const Crc32cTables tables;
  const auto& t = tables.t;
  std::uint32_t c = ~crc;
  std::size_t i = 0;
#if defined(__SSE4_2__)
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, data.data() + i, 8);
    c = static_cast<std::uint32_t>(
        __builtin_ia32_crc32di(c, chunk));
  }
#else
  for (; i + 4 <= data.size(); i += 4) {
    c ^= static_cast<std::uint32_t>(data[i]) |
         (static_cast<std::uint32_t>(data[i + 1]) << 8) |
         (static_cast<std::uint32_t>(data[i + 2]) << 16) |
         (static_cast<std::uint32_t>(data[i + 3]) << 24);
    c = t[3][c & 0xff] ^ t[2][(c >> 8) & 0xff] ^ t[1][(c >> 16) & 0xff] ^
        t[0][c >> 24];
  }
#endif
  for (; i < data.size(); ++i) {
    c = (c >> 8) ^ t[0][(c ^ data[i]) & 0xff];
  }
  return ~c;
}

TabulationHash::TabulationHash(std::uint64_t seed) {
  Pcg32 rng(mix64(seed), mix64(seed ^ 0x7462bea6d89c4a1dULL));
  for (auto& row : table_) {
    for (auto& cell : row) {
      cell = rng.next64();
    }
  }
}

TabulationHash::TabulationHash(std::uint64_t seed, std::size_t buckets)
    : TabulationHash(seed) {
  if (buckets == 0) {
    throw std::invalid_argument("TabulationHash needs >=1 bucket");
  }
  buckets_ = buckets;
  if (buckets >= 2 && (buckets & (buckets - 1)) == 0) {
    shift_ = 64 - std::countr_zero(buckets);
  }
}

WordHash::WordHash(std::uint64_t seed, int out_bits) : out_bits_(out_bits) {
  if (out_bits < 1 || out_bits > 8) {
    throw std::invalid_argument("WordHash out_bits must be in [1,8]");
  }
  const auto range = static_cast<std::uint32_t>(1u << out_bits);
  Pcg32 rng(mix64(seed ^ 0x51ab3e0c92dd7f64ULL), mix64(seed));
  preimages_.resize(range);
  // Balanced construction: fill with an equal share of each output value and
  // shuffle. A perfectly balanced word hash keeps bucket loads even when key
  // words are uniform post-mangling, which tightens inference candidate sets.
  for (std::size_t w = 0; w < table_.size(); ++w) {
    table_[w] = static_cast<std::uint8_t>(w % range);
  }
  for (std::size_t w = table_.size() - 1; w > 0; --w) {
    const std::uint32_t j = rng.bounded(static_cast<std::uint32_t>(w + 1));
    std::swap(table_[w], table_[j]);
  }
  preimage_masks_.assign(range, {});
  for (std::size_t w = 0; w < table_.size(); ++w) {
    preimages_[table_[w]].push_back(static_cast<std::uint8_t>(w));
    preimage_masks_[table_[w]][w / 64] |= std::uint64_t{1} << (w % 64);
  }
}

}  // namespace hifind
