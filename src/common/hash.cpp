#include "common/hash.hpp"

#include <bit>
#include <stdexcept>

namespace hifind {

TabulationHash::TabulationHash(std::uint64_t seed) {
  Pcg32 rng(mix64(seed), mix64(seed ^ 0x7462bea6d89c4a1dULL));
  for (auto& row : table_) {
    for (auto& cell : row) {
      cell = rng.next64();
    }
  }
}

TabulationHash::TabulationHash(std::uint64_t seed, std::size_t buckets)
    : TabulationHash(seed) {
  if (buckets == 0) {
    throw std::invalid_argument("TabulationHash needs >=1 bucket");
  }
  buckets_ = buckets;
  if (buckets >= 2 && (buckets & (buckets - 1)) == 0) {
    shift_ = 64 - std::countr_zero(buckets);
  }
}

WordHash::WordHash(std::uint64_t seed, int out_bits) : out_bits_(out_bits) {
  if (out_bits < 1 || out_bits > 8) {
    throw std::invalid_argument("WordHash out_bits must be in [1,8]");
  }
  const auto range = static_cast<std::uint32_t>(1u << out_bits);
  Pcg32 rng(mix64(seed ^ 0x51ab3e0c92dd7f64ULL), mix64(seed));
  preimages_.resize(range);
  // Balanced construction: fill with an equal share of each output value and
  // shuffle. A perfectly balanced word hash keeps bucket loads even when key
  // words are uniform post-mangling, which tightens inference candidate sets.
  for (std::size_t w = 0; w < table_.size(); ++w) {
    table_[w] = static_cast<std::uint8_t>(w % range);
  }
  for (std::size_t w = table_.size() - 1; w > 0; --w) {
    const std::uint32_t j = rng.bounded(static_cast<std::uint32_t>(w + 1));
    std::swap(table_[w], table_[j]);
  }
  preimage_masks_.assign(range, {});
  for (std::size_t w = 0; w < table_.size(); ++w) {
    preimages_[table_[w]].push_back(static_cast<std::uint8_t>(w));
    preimage_masks_[table_[w]][w / 64] |= std::uint64_t{1} << (w % 64);
  }
}

}  // namespace hifind
