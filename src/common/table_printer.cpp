#include "common/table_printer.hpp"

#include <algorithm>
#include <ostream>

namespace hifind {

void TablePrinter::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TablePrinter::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < r.size() ? r[c] : "";
      os << cell << std::string(width[c] - cell.size(), ' ');
      os << (c + 1 < cols ? "  " : "");
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += width[c] + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

}  // namespace hifind
