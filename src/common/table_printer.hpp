// Minimal fixed-width table rendering for bench/example output.
//
// The bench harness reproduces the paper's tables; this helper keeps their
// textual rendering consistent (aligned columns, a rule under the header)
// without pulling in a formatting dependency.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hifind {

/// Accumulates rows of strings and prints them as an aligned ASCII table.
class TablePrinter {
 public:
  /// @param title  printed above the table, e.g. "Table 4. Detection results".
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  /// Sets the header row (column names).
  void header(std::vector<std::string> cells);

  /// Appends one data row. Rows may be ragged; short rows render blank cells.
  void row(std::vector<std::string> cells);

  /// Renders the table to the stream.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hifind
