#include "common/task_pool.hpp"

#include <utility>

namespace hifind {

TaskPool::TaskPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void TaskPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    try {
      task();
    } catch (...) {
      record_exception(std::current_exception());
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void TaskPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void TaskPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      record_exception(std::current_exception());
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void TaskPool::record_exception(std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!first_error_) first_error_ = std::move(e);
}

}  // namespace hifind
