// Interval bookkeeping for time-series detection.
//
// The data-recording path is continuous; the detection path runs once per
// interval (paper: one minute by default). IntervalClock converts packet
// timestamps (microseconds since trace start) to interval indices and tells
// stream consumers when an interval boundary has been crossed.
#pragma once

#include <cstdint>

namespace hifind {

/// Microseconds since the start of a trace.
using Timestamp = std::uint64_t;

constexpr Timestamp kMicrosPerSecond = 1'000'000;

/// Maps timestamps to fixed-width interval indices.
class IntervalClock {
 public:
  /// @param interval_seconds  width of each detection interval (> 0).
  explicit IntervalClock(std::uint32_t interval_seconds = 60)
      : width_us_(Timestamp{interval_seconds} * kMicrosPerSecond) {}

  /// Index of the interval containing ts (0-based).
  std::uint64_t interval_of(Timestamp ts) const { return ts / width_us_; }

  /// First timestamp of interval i.
  Timestamp interval_start(std::uint64_t i) const { return i * width_us_; }

  Timestamp width_us() const { return width_us_; }
  double width_seconds() const {
    return static_cast<double>(width_us_) / kMicrosPerSecond;
  }

 private:
  Timestamp width_us_;
};

}  // namespace hifind
