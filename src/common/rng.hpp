// Deterministic pseudo-random number generation.
//
// Everything in this repository that involves randomness — hash-function
// seeding, synthetic trace generation, the multi-router packet splitter —
// draws from explicitly seeded generators so that every experiment is
// reproducible bit-for-bit. We use PCG32 (O'Neill, pcg-random.org): small
// state, excellent statistical quality, and trivially header-only.
#pragma once

#include <cstdint>
#include <limits>

namespace hifind {

/// PCG32 generator (XSH-RR variant). Satisfies std::uniform_random_bit_engine
/// so it can drive <random> distributions.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Seeds with a state/stream pair. Distinct streams yield independent
  /// sequences even with equal state seeds.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1) | 1u;
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Uniform 32-bit draw.
  std::uint32_t next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    const auto rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform 64-bit draw (two 32-bit draws).
  std::uint64_t next64() {
    return (std::uint64_t{next()} << 32) | std::uint64_t{next()};
  }

  /// Uniform draw in [0, bound) without modulo bias (Lemire's method).
  std::uint32_t bounded(std::uint32_t bound) {
    if (bound <= 1) return 0;
    std::uint64_t m = std::uint64_t{next()} * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = std::uint64_t{next()} * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform double in [0, 1): 27 random bits over 2^27.
  double uniform() { return (next() >> 5) * (1.0 / 134217728.0); }

  /// Bernoulli draw with success probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_{0};
  std::uint64_t inc_{1};
};

}  // namespace hifind
