#include "common/types.hpp"

#include <cstdio>
#include <stdexcept>

namespace hifind {

std::string to_string(IPv4 ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip.addr >> 24) & 0xff,
                (ip.addr >> 16) & 0xff, (ip.addr >> 8) & 0xff, ip.addr & 0xff);
  return buf;
}

IPv4 parse_ipv4(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  const int n =
      std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("malformed IPv4 address: " + text);
  }
  return IPv4(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
              static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

const char* key_kind_name(KeyKind kind) {
  switch (kind) {
    case KeyKind::SipDport:
      return "{SIP,Dport}";
    case KeyKind::DipDport:
      return "{DIP,Dport}";
    case KeyKind::SipDip:
      return "{SIP,DIP}";
  }
  return "{?}";
}

std::string format_key(KeyKind kind, std::uint64_t key) {
  switch (kind) {
    case KeyKind::SipDport:
      return "SIP=" + to_string(unpack_key_ip(key)) +
             " Dport=" + std::to_string(unpack_key_port(key));
    case KeyKind::DipDport:
      return "DIP=" + to_string(unpack_key_ip(key)) +
             " Dport=" + std::to_string(unpack_key_port(key));
    case KeyKind::SipDip:
      return "SIP=" + to_string(unpack_key_sip(key)) +
             " DIP=" + to_string(unpack_key_dip(key));
  }
  return "?";
}

}  // namespace hifind
