// Little-endian byte-buffer serialization helpers.
//
// Used by the sketch wire format (router -> central site shipping) and kept
// deliberately tiny: explicit field-by-field encoding, no reflection, no
// endianness surprises.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace hifind {

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void f64_span(std::span<const double> values) {
    u64(values.size());
    for (const double v : values) f64(v);
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential little-endian decoder. Throws std::runtime_error on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::vector<double> f64_vector() {
    const std::uint64_t n = u64();
    // Divide instead of multiplying (n * 8 can wrap for corrupt counts).
    if (n > (data_.size() - pos_) / 8) {
      throw std::runtime_error("ByteReader: truncated input");
    }
    std::vector<double> out(n);
    for (auto& v : out) v = f64();
    return out;
  }

  bool exhausted() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::uint64_t n) const {
    // Compare against the remaining span instead of `pos_ + n` so an
    // attacker-controlled length (e.g. a corrupted element count, n = count *
    // 8) cannot wrap std::uint64_t and sneak past the bound.
    if (n > data_.size() - pos_) {
      throw std::runtime_error("ByteReader: truncated input");
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
};

}  // namespace hifind
