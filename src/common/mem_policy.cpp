#include "common/mem_policy.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sched.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace hifind::mem {
namespace {

constexpr std::size_t kPage = 4096;
constexpr std::size_t kHugeAlign = std::size_t{2} << 20;  // 2 MiB

bool env_off(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::strcmp(v, "off") == 0;
}

// Parses the last node id out of /sys/devices/system/node/online
// (e.g. "0" or "0-3" or "0,2-3"); returns the online node count.
int read_node_count() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/sys/devices/system/node/online", "re");
  if (f == nullptr) return 1;
  char buf[256];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return 1;
  buf[n] = '\0';
  int max_node = 0;
  for (const char* p = buf; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    if (v > max_node) max_node = static_cast<int>(v);
    p = end;
    while (*p == '-' || *p == ',') ++p;
  }
  return max_node + 1;
#else
  return 1;
#endif
}

}  // namespace

std::size_t huge_alloc_length(std::size_t bytes) {
  return (bytes + kPage - 1) & ~(kPage - 1);
}

bool thp_enabled() {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  static const bool on = !env_off("HIFIND_THP");
  return on;
#else
  return false;
#endif
}

int node_count() {
  static const int n = read_node_count();
  return n;
}

bool numa_enabled() {
#if defined(HIFIND_NUMA_SYSCALLS)
  static const bool on = !env_off("HIFIND_NUMA") && node_count() > 1;
  return on;
#else
  return false;
#endif
}

int current_cpu() {
#if defined(__linux__) && defined(SYS_getcpu)
  unsigned cpu = 0;
  unsigned node = 0;
  if (syscall(SYS_getcpu, &cpu, &node, nullptr) != 0) return -1;
  return static_cast<int>(cpu);
#else
  return -1;
#endif
}

int current_node() {
#if defined(__linux__) && defined(SYS_getcpu)
  unsigned cpu = 0;
  unsigned node = 0;
  if (syscall(SYS_getcpu, &cpu, &node, nullptr) != 0) return -1;
  return static_cast<int>(node);
#else
  return -1;
#endif
}

bool bind_to_node(const void* addr, std::size_t len, int node) {
#if defined(HIFIND_NUMA_SYSCALLS) && defined(__linux__) && defined(SYS_mbind)
  if (!numa_enabled() || node < 0 || node >= node_count() || len == 0) {
    return false;
  }
  // mbind() constants, defined locally so no libnuma headers are required.
  constexpr int kMpolPreferred = 1;
  constexpr unsigned kMpolMfMove = 1u << 1;
  const auto start = reinterpret_cast<std::uintptr_t>(addr) & ~(kPage - 1);
  const auto end = (reinterpret_cast<std::uintptr_t>(addr) + len + kPage - 1) &
                   ~(kPage - 1);
  unsigned long nodemask[1] = {1ul << node};
  return syscall(SYS_mbind, start, end - start, kMpolPreferred, nodemask,
                 sizeof(nodemask) * 8 + 1, kMpolMfMove) == 0;
#else
  (void)addr;
  (void)len;
  (void)node;
  return false;
#endif
}

bool pin_current_thread_to_cpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

void* alloc_counters(std::size_t bytes) {
#if defined(__linux__)
  if (bytes >= kHugeThresholdBytes) {
    // Over-map by one huge-page stride, trim to a 2 MiB-aligned window, and
    // advise THP — the kernel can then back the whole array with 2 MiB
    // leaves. Deallocation recomputes the same trimmed window from the size
    // alone (see free_counters), so no header is needed.
    const std::size_t len = huge_alloc_length(bytes);
    void* raw = mmap(nullptr, len + kHugeAlign, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw == MAP_FAILED) throw std::bad_alloc{};
    const auto base = reinterpret_cast<std::uintptr_t>(raw);
    const std::uintptr_t aligned = (base + kHugeAlign - 1) & ~(kHugeAlign - 1);
    if (aligned > base) munmap(raw, aligned - base);
    const std::uintptr_t tail = aligned + len;
    const std::uintptr_t raw_end = base + len + kHugeAlign;
    if (raw_end > tail) munmap(reinterpret_cast<void*>(tail), raw_end - tail);
    void* p = reinterpret_cast<void*>(aligned);
#if defined(MADV_HUGEPAGE)
    if (thp_enabled()) madvise(p, len, MADV_HUGEPAGE);
#endif
    return p;
  }
#endif
  return ::operator new(bytes);
}

void free_counters(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
#if defined(__linux__)
  if (bytes >= kHugeThresholdBytes) {
    munmap(p, huge_alloc_length(bytes));
    return;
  }
#endif
  ::operator delete(p);
}

}  // namespace hifind::mem
