// Core value types shared across the HiFIND library: IPv4 addresses, flow-key
// packing, and small utilities for rendering them.
//
// HiFIND's detection algorithm (paper Sec. 3.3) operates on three key spaces:
//   {SIP, Dport}  48-bit   step 3: horizontal scans / non-spoofed flooding
//   {DIP, Dport}  48-bit   step 1: SYN-flooding victims
//   {SIP, DIP}    64-bit   step 2: vertical scans / flooder identification
// Keys are packed big-field-first into a uint64_t so that reversible-sketch
// word decomposition (8-bit words) aligns with header-field byte boundaries.
#pragma once

#include <cstdint>
#include <string>

namespace hifind {

/// An IPv4 address in host byte order. A plain value type: comparisons and
/// hashing treat it as a 32-bit integer.
struct IPv4 {
  std::uint32_t addr{0};

  constexpr IPv4() = default;
  constexpr explicit IPv4(std::uint32_t a) : addr(a) {}
  /// Builds an address from dotted-quad components: IPv4(10,1,2,3) == 10.1.2.3.
  constexpr IPv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : addr((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
             (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr auto operator<=>(const IPv4&) const = default;
};

/// Renders an address as dotted-quad text ("10.1.2.3").
std::string to_string(IPv4 ip);

/// Parses dotted-quad text. Throws std::invalid_argument on malformed input.
IPv4 parse_ipv4(const std::string& text);

/// Key-space identifiers for the three reversible sketches the detector keeps.
enum class KeyKind : std::uint8_t {
  SipDport,  ///< {source IP, destination port}, 48 bits
  DipDport,  ///< {destination IP, destination port}, 48 bits
  SipDip,    ///< {source IP, destination IP}, 64 bits
};

/// Human-readable name of a key kind ("{SIP,Dport}" etc.).
const char* key_kind_name(KeyKind kind);

/// Bit width of the packed key for a key space (48 or 64).
constexpr int key_kind_bits(KeyKind kind) {
  return kind == KeyKind::SipDip ? 64 : 48;
}

/// Packs {IP, port} into the low 48 bits: IP in bits [16,48), port in [0,16).
constexpr std::uint64_t pack_ip_port(IPv4 ip, std::uint16_t port) {
  return (std::uint64_t{ip.addr} << 16) | std::uint64_t{port};
}

/// Packs {srcIP, dstIP} into 64 bits: source in the high half.
constexpr std::uint64_t pack_ip_ip(IPv4 src, IPv4 dst) {
  return (std::uint64_t{src.addr} << 32) | std::uint64_t{dst.addr};
}

/// Extracts the IP half of a 48-bit {IP, port} key.
constexpr IPv4 unpack_key_ip(std::uint64_t key) {
  return IPv4{static_cast<std::uint32_t>(key >> 16)};
}

/// Extracts the port half of a 48-bit {IP, port} key.
constexpr std::uint16_t unpack_key_port(std::uint64_t key) {
  return static_cast<std::uint16_t>(key & 0xffff);
}

/// Extracts the source-IP half of a 64-bit {SIP, DIP} key.
constexpr IPv4 unpack_key_sip(std::uint64_t key) {
  return IPv4{static_cast<std::uint32_t>(key >> 32)};
}

/// Extracts the destination-IP half of a 64-bit {SIP, DIP} key.
constexpr IPv4 unpack_key_dip(std::uint64_t key) {
  return IPv4{static_cast<std::uint32_t>(key & 0xffffffffu)};
}

/// Renders a packed key of the given kind for logs and reports.
std::string format_key(KeyKind kind, std::uint64_t key);

}  // namespace hifind
