#include "common/mangler.hpp"

#include <stdexcept>

#include "common/hash.hpp"

namespace hifind {

KeyMangler::KeyMangler(std::uint64_t seed, int key_bits)
    : key_bits_(key_bits) {
  if (key_bits < 2 || key_bits > 64) {
    throw std::invalid_argument("KeyMangler key_bits must be in [2,64]");
  }
  shift_ = key_bits / 2;
  mask_ = key_bits == 64 ? ~std::uint64_t{0}
                         : ((std::uint64_t{1} << key_bits) - 1);
  a_ = mix64(seed) | 1;  // odd => invertible mod 2^n
  b_ = mix64(seed ^ 0xa076bc57d1e31f08ULL) | 1;
  a_inv_ = inverse_odd_u64(a_);
  b_inv_ = inverse_odd_u64(b_);
}

}  // namespace hifind
