// Small reusable task pool for the detection epoch.
//
// The detector's interval close runs its independent pieces (forecaster
// steps, per-sketch inference preludes) as tasks on this pool and joins with
// wait_idle() at each dependency barrier. Unlike the recording path's
// ParallelRecorder (whose workers own SPSC rings and live for the pipeline's
// lifetime), epoch tasks are coarse and few, so a plain mutex+condvar queue
// is plenty. Under the double-buffered pipeline (detect/overlapped.hpp) the
// epoch for interval N runs on this pool WHILE interval N+1 records; the
// pool's workers occupy the interval's otherwise-idle close-time slots, and
// the streaming-inference drivers yield between chunks (see pending()) so a
// small pool still interleaves all three inferences.
//
// Determinism: the pool imposes no ordering between queued tasks, so callers
// must make tasks write to disjoint result slots and sequence any dependent
// reads after wait_idle(). Under that discipline results are independent of
// scheduling, and with bit-identical task arithmetic the parallel epoch's
// output is bit-identical to the serial one (tested).
//
// threads <= 1 means "inline": submit() runs the task on the calling thread
// and no workers are spawned — the degenerate case is the serial epoch.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hifind {

class TaskPool {
 public:
  /// Spawns `threads` workers (0 or 1 = inline mode, no workers).
  explicit TaskPool(std::size_t threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues a task (runs it immediately in inline mode). A task that
  /// throws has its exception captured and rethrown from the next
  /// wait_idle() — first one wins, the rest are dropped.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first captured task exception, if any.
  void wait_idle();

  /// Worker count (0 in inline mode).
  std::size_t threads() const { return workers_.size(); }

  /// Tasks queued but not yet picked up by a worker (always 0 in inline
  /// mode). A point-in-time hint, not a synchronization primitive: chunked
  /// long-running tasks (the streaming-inference drivers) use it to decide
  /// whether to yield their slot — re-enqueue their continuation so a
  /// waiting task can interleave — or keep running on an otherwise idle
  /// pool. The decision affects only scheduling, never results.
  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  void worker_loop();
  void record_exception(std::exception_ptr e);

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_{0};
  std::exception_ptr first_error_;
  bool stopping_{false};
  std::vector<std::thread> workers_;
};

}  // namespace hifind
