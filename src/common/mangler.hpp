// Invertible key mangling for reversible sketches.
//
// Real traffic keys are highly non-uniform (shared prefixes, popular ports),
// which would skew per-word modular hashing. The reversible-sketch papers fix
// this with an "IP mangling" step: a bijection on the key space applied
// before word decomposition, inverted after inference.
//
// A plain affine map (a*x + b mod 2^n) is NOT enough: multiplication only
// carries information upward, so keys differing in high bits share all their
// low words and bucket load collapses onto a slice of the table. We use a
// splitmix-style finalizer restricted to n bits — alternating right-xorshift
// (diffuses high -> low) and odd multiplication (low -> high) — every step of
// which is exactly invertible:
//     x ^= x >> s;  x *= a (mod 2^n);  x ^= x >> s;  x *= b;  x ^= x >> s
#pragma once

#include <cstdint>

namespace hifind {

/// Multiplicative inverse of an odd 64-bit integer modulo 2^64
/// (Newton iteration; exact in 5 steps).
constexpr std::uint64_t inverse_odd_u64(std::uint64_t a) {
  std::uint64_t x = a;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) {
    x *= 2 - a * x;  // doubles the number of correct bits
  }
  return x;
}

/// Bijective mixing transform on n-bit keys, n in [2, 64].
class KeyMangler {
 public:
  /// Derives the two odd multipliers from the seed.
  KeyMangler(std::uint64_t seed, int key_bits);

  /// Forward mangle: uniformizes the key distribution across all words.
  std::uint64_t mangle(std::uint64_t key) const {
    std::uint64_t x = key & mask_;
    x ^= x >> shift_;
    x = (x * a_) & mask_;
    x ^= x >> shift_;
    x = (x * b_) & mask_;
    x ^= x >> shift_;
    return x;
  }

  /// Exact inverse of mangle().
  std::uint64_t unmangle(std::uint64_t mangled) const {
    std::uint64_t x = invert_xorshift(mangled & mask_);
    x = (x * b_inv_) & mask_;
    x = invert_xorshift(x);
    x = (x * a_inv_) & mask_;
    return invert_xorshift(x);
  }

  int key_bits() const { return key_bits_; }

 private:
  /// Inverse of y = x ^ (x >> shift_) on the n-bit domain.
  std::uint64_t invert_xorshift(std::uint64_t y) const {
    std::uint64_t x = y;
    for (int recovered = shift_; recovered < key_bits_;
         recovered += shift_) {
      x = y ^ (x >> shift_);
    }
    return x & mask_;
  }

  int key_bits_;
  int shift_;
  std::uint64_t mask_;
  std::uint64_t a_;
  std::uint64_t a_inv_;
  std::uint64_t b_;
  std::uint64_t b_inv_;
};

}  // namespace hifind
