// Scalar time-series primitives for the baseline detectors.
//
// CPM (Wang/Zhang/Shin, INFOCOM 2002) monitors a single aggregate statistic
// with a non-parametric CUSUM; these helpers keep that logic reusable and
// unit-testable apart from the packet plumbing.
#pragma once

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace hifind {

/// Scalar exponentially weighted moving average.
class ScalarEwma {
 public:
  explicit ScalarEwma(double alpha) : alpha_(alpha) {
    if (alpha <= 0.0 || alpha > 1.0) {
      throw std::invalid_argument("EWMA alpha must be in (0,1]");
    }
  }

  /// Feeds one sample; returns the updated mean.
  double update(double x) {
    if (!mean_) {
      mean_ = x;
    } else {
      mean_ = alpha_ * x + (1.0 - alpha_) * *mean_;
    }
    return *mean_;
  }

  bool primed() const { return mean_.has_value(); }
  double mean() const { return mean_.value_or(0.0); }
  void reset() { mean_.reset(); }

 private:
  double alpha_;
  std::optional<double> mean_;
};

/// Non-parametric CUSUM (Brodsky & Darkhovsky form used by CPM):
///   y_n = max(0, y_{n-1} + x_n - offset)
/// and an alarm fires while y_n exceeds the threshold. `offset` shifts the
/// in-control mean of x below zero so y drifts back down between changes.
class Cusum {
 public:
  /// @param offset     drift removed from each sample (the "a" in CPM).
  /// @param threshold  alarm level for the accumulated statistic.
  Cusum(double offset, double threshold)
      : offset_(offset), threshold_(threshold) {
    if (threshold <= 0.0) {
      throw std::invalid_argument("CUSUM threshold must be positive");
    }
  }

  /// Feeds one sample; returns true while in the alarm state.
  bool update(double x) {
    value_ = std::max(0.0, value_ + x - offset_);
    return value_ > threshold_;
  }

  double value() const { return value_; }
  bool alarmed() const { return value_ > threshold_; }
  void reset() { value_ = 0.0; }

 private:
  double offset_;
  double threshold_;
  double value_{0.0};
};

}  // namespace hifind
