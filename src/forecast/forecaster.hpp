// Time-series forecasting in sketch space.
//
// HiFIND's change detection runs entirely on sketches: at each interval the
// observed sketch M_0(t) is compared against a forecast M_f(t) built from
// history, and the *forecast-error sketch* e(t) = M_0(t) - M_f(t) is what
// reverse inference thresholds. Because sketches are linear, any forecast
// model expressible as a linear combination of past observations works
// unchanged — we provide the paper's EWMA (Eq. 1) plus the moving-average and
// Holt linear models evaluated in the sketch change-detection paper (IMC'03).
//
// Steps are allocation-free in steady state: each model keeps its state and
// error sketches as members and rolls them in place with the fused kernels
// (sketch_kernels.hpp) — one pass over the counters per step instead of the
// copy/scale/accumulate chains of the original formulation, with bit-identical
// results for EWMA and Holt. Warm-up and reset go through an optional
// SketchArena so even those transitions reuse counter storage. step_collect()
// additionally folds the per-stage heavy-bucket threshold scan into the same
// pass, handing reverse inference its candidate lists for free.
//
// All forecasters are templates over the sketch type; KarySketch,
// ReversibleSketch and TwoDSketch all satisfy the required operations
// (copy, accumulate, scale, combinable_with).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sketch/sketch_arena.hpp"
#include "sketch/sketch_kernels.hpp"

namespace hifind {

/// Interface: feed one observation per interval; receive the forecast-error
/// sketch once the model has enough history (nullptr/nullopt before that).
template <class SketchT>
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Consumes the interval's observed sketch; returns e(t) = M_0(t) - M_f(t)
  /// as a pointer into forecaster-owned storage (valid until the next
  /// step/reset), or nullptr while the model is still warming up. No heap
  /// allocation in steady state.
  virtual const SketchT* step_inplace(const SketchT& observed) = 0;

  /// As step_inplace, but fuses the heavy-bucket scan into the same counter
  /// pass: on a non-warmup step, heavy[h] receives the ascending bucket ids
  /// of stage h whose error value is at or above the heavy_buckets() cut for
  /// `threshold` — exactly heavy_buckets(*error, threshold). Sketch types
  /// without per-stage sums (TwoDSketch) leave `heavy` empty.
  virtual const SketchT* step_collect(const SketchT& observed,
                                      double threshold,
                                      StageBuckets& heavy) = 0;

  /// Copying convenience wrapper (the original interface; tests and offline
  /// tooling). Steady-state hot paths should prefer step_inplace.
  std::optional<SketchT> step(const SketchT& observed) {
    const SketchT* error = step_inplace(observed);
    if (error == nullptr) return std::nullopt;
    return std::optional<SketchT>(*error);
  }

  /// Discards history (e.g. when a trace restarts). Pooled storage is
  /// returned to the arena, if one was provided.
  virtual void reset() = 0;
};

namespace forecast_detail {

/// Fills `slot` with a value-copy of `src`, going through the arena (storage
/// reuse) when one is present.
template <class SketchT>
void acquire_copy_into(std::optional<SketchT>& slot, const SketchT& src,
                       SketchArena<SketchT>* arena) {
  if (arena != nullptr) {
    slot.emplace(arena->acquire_copy(src));
  } else {
    slot.emplace(src);
  }
}

template <class SketchT>
void release_into(std::optional<SketchT>& slot, SketchArena<SketchT>* arena) {
  if (arena != nullptr && slot.has_value()) {
    arena->release(std::move(*slot));
  }
  slot.reset();
}

}  // namespace forecast_detail

/// EWMA (paper Eq. 1): M_f(t) = alpha*M_0(t-1) + (1-alpha)*M_f(t-1), seeded
/// with M_f(2) = M_0(1). Emits errors from the second interval on.
template <class SketchT>
class EwmaForecaster final : public Forecaster<SketchT> {
 public:
  explicit EwmaForecaster(double alpha = 0.5,
                          SketchArena<SketchT>* arena = nullptr)
      : alpha_(alpha), arena_(arena) {
    if (alpha <= 0.0 || alpha > 1.0) {
      throw std::invalid_argument("EWMA alpha must be in (0,1]");
    }
  }

  const SketchT* step_inplace(const SketchT& observed) override {
    return roll(observed, nullptr, 0.0);
  }

  const SketchT* step_collect(const SketchT& observed, double threshold,
                              StageBuckets& heavy) override {
    return roll(observed, &heavy, threshold);
  }

  void reset() override {
    forecast_detail::release_into(forecast_, arena_);
    forecast_detail::release_into(error_, arena_);
  }

  /// Current forecast sketch (for tests); nullopt before the first step.
  const std::optional<SketchT>& forecast() const { return forecast_; }

 private:
  const SketchT* roll(const SketchT& observed, StageBuckets* heavy,
                      double threshold) {
    if (!forecast_) {
      forecast_detail::acquire_copy_into(forecast_, observed, arena_);
      return nullptr;  // M_f(2) = M_0(1)
    }
    if (!error_) {
      forecast_detail::acquire_copy_into(error_, observed, arena_);
    }
    // e(t) = M_0(t) - M_f(t); M_f(t+1) = alpha*M_0(t) + (1-alpha)*M_f(t),
    // one fused pass.
    if (heavy != nullptr) {
      kernels::ewma_roll_collect(*forecast_, observed, *error_, alpha_,
                                 threshold, *heavy);
    } else {
      kernels::ewma_roll(*forecast_, observed, *error_, alpha_);
    }
    return &*error_;
  }

  double alpha_;
  SketchArena<SketchT>* arena_;
  std::optional<SketchT> forecast_;
  std::optional<SketchT> error_;
};

/// Simple moving average over the last `window` observations. The window sum
/// is maintained incrementally (add newest, subtract evicted) instead of
/// re-summing the window each step — an O(window)-to-O(1) change in sketch
/// passes that re-associates the sum, so MA errors match the naive
/// formulation to rounding (not bitwise; see the equivalence test).
template <class SketchT>
class MovingAverageForecaster final : public Forecaster<SketchT> {
 public:
  explicit MovingAverageForecaster(std::size_t window = 5,
                                   SketchArena<SketchT>* arena = nullptr)
      : window_(window), arena_(arena) {
    if (window == 0) {
      throw std::invalid_argument("moving-average window must be >= 1");
    }
  }

  const SketchT* step_inplace(const SketchT& observed) override {
    return roll(observed, nullptr, 0.0);
  }

  const SketchT* step_collect(const SketchT& observed, double threshold,
                              StageBuckets& heavy) override {
    return roll(observed, &heavy, threshold);
  }

  void reset() override {
    for (auto& slot : ring_) {
      if (arena_ != nullptr) arena_->release(std::move(slot));
    }
    ring_.clear();
    head_ = 0;
    forecast_detail::release_into(sum_, arena_);
    forecast_detail::release_into(error_, arena_);
  }

 private:
  const SketchT* roll(const SketchT& observed, StageBuckets* heavy,
                      double threshold) {
    const SketchT* out = nullptr;
    if (!ring_.empty()) {
      if (!error_) {
        forecast_detail::acquire_copy_into(error_, observed, arena_);
      }
      const double inv = 1.0 / static_cast<double>(ring_.size());
      if (heavy != nullptr) {
        kernels::ma_roll_collect(*sum_, observed, *error_, inv, threshold,
                                 *heavy);
      } else {
        kernels::ma_roll(*sum_, observed, *error_, inv);
      }
      out = &*error_;
    }
    // Push the observation into the window: running sum + ring slot.
    if (!sum_) {
      forecast_detail::acquire_copy_into(sum_, observed, arena_);
    } else {
      sum_->accumulate(observed, 1.0);
    }
    if (ring_.size() < window_) {
      if (ring_.capacity() < window_) ring_.reserve(window_);
      if (arena_ != nullptr) {
        ring_.push_back(arena_->acquire_copy(observed));
      } else {
        ring_.push_back(observed);
      }
    } else {
      SketchT& oldest = ring_[head_];
      sum_->accumulate(oldest, -1.0);
      kernels::assign(oldest, observed);
      head_ = (head_ + 1) % window_;
    }
    return out;
  }

  std::size_t window_;
  SketchArena<SketchT>* arena_;
  std::vector<SketchT> ring_;  // last min(window, t) observations
  std::size_t head_{0};        // index of the oldest ring entry
  std::optional<SketchT> sum_; // running sum over the ring
  std::optional<SketchT> error_;
};

/// Holt's linear (double-exponential) model: tracks level and trend. Useful
/// when baseline traffic has a sustained ramp (e.g. diurnal rise) that plain
/// EWMA would flag as persistent error.
template <class SketchT>
class HoltForecaster final : public Forecaster<SketchT> {
 public:
  explicit HoltForecaster(double alpha = 0.5, double beta = 0.2,
                          SketchArena<SketchT>* arena = nullptr)
      : alpha_(alpha), beta_(beta), arena_(arena) {
    if (alpha <= 0.0 || alpha > 1.0 || beta <= 0.0 || beta > 1.0) {
      throw std::invalid_argument("Holt alpha/beta must be in (0,1]");
    }
  }

  const SketchT* step_inplace(const SketchT& observed) override {
    return roll(observed, nullptr, 0.0);
  }

  const SketchT* step_collect(const SketchT& observed, double threshold,
                              StageBuckets& heavy) override {
    return roll(observed, &heavy, threshold);
  }

  void reset() override {
    forecast_detail::release_into(level_, arena_);
    forecast_detail::release_into(trend_, arena_);
    forecast_detail::release_into(error_, arena_);
  }

 private:
  const SketchT* roll(const SketchT& observed, StageBuckets* heavy,
                      double threshold) {
    if (!level_) {
      forecast_detail::acquire_copy_into(level_, observed, arena_);
      return nullptr;
    }
    if (!trend_) {
      // Second observation: trend = M_0(2) - M_0(1); no error yet (matching
      // the IMC'03 convention that Holt needs two warmup intervals).
      forecast_detail::acquire_copy_into(trend_, observed, arena_);
      trend_->accumulate(*level_, -1.0);
      kernels::assign(*level_, observed);
      return nullptr;
    }
    if (!error_) {
      forecast_detail::acquire_copy_into(error_, observed, arena_);
    }
    // err = M_0 - (level+trend); level/trend rolled — one fused pass.
    if (heavy != nullptr) {
      kernels::holt_roll_collect(*level_, *trend_, observed, *error_, alpha_,
                                 beta_, threshold, *heavy);
    } else {
      kernels::holt_roll(*level_, *trend_, observed, *error_, alpha_, beta_);
    }
    return &*error_;
  }

  double alpha_;
  double beta_;
  SketchArena<SketchT>* arena_;
  std::optional<SketchT> level_;
  std::optional<SketchT> trend_;
  std::optional<SketchT> error_;
};

/// Forecast model selector for configs.
enum class ForecastModel : std::uint8_t { kEwma, kMovingAverage, kHolt };

/// Factory for the configured model. The optional arena is shared by the
/// caller across forecasters of the same sketch type.
template <class SketchT>
std::unique_ptr<Forecaster<SketchT>> make_forecaster(
    ForecastModel model, double alpha = 0.5, double beta = 0.2,
    std::size_t window = 5, SketchArena<SketchT>* arena = nullptr) {
  switch (model) {
    case ForecastModel::kEwma:
      return std::make_unique<EwmaForecaster<SketchT>>(alpha, arena);
    case ForecastModel::kMovingAverage:
      return std::make_unique<MovingAverageForecaster<SketchT>>(window, arena);
    case ForecastModel::kHolt:
      return std::make_unique<HoltForecaster<SketchT>>(alpha, beta, arena);
  }
  throw std::invalid_argument("unknown forecast model");
}

}  // namespace hifind
