// Time-series forecasting in sketch space.
//
// HiFIND's change detection runs entirely on sketches: at each interval the
// observed sketch M_0(t) is compared against a forecast M_f(t) built from
// history, and the *forecast-error sketch* e(t) = M_0(t) - M_f(t) is what
// reverse inference thresholds. Because sketches are linear, any forecast
// model expressible as a linear combination of past observations works
// unchanged — we provide the paper's EWMA (Eq. 1) plus the moving-average and
// Holt linear models evaluated in the sketch change-detection paper (IMC'03).
//
// All forecasters are templates over the sketch type; KarySketch,
// ReversibleSketch and TwoDSketch all satisfy the required operations
// (copy, accumulate, scale, combinable_with).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>

namespace hifind {

/// Interface: feed one observation per interval; receive the forecast-error
/// sketch once the model has enough history (nullopt before that).
template <class SketchT>
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Consumes the interval's observed sketch; returns e(t) = M_0(t) - M_f(t),
  /// or nullopt while the model is still warming up.
  virtual std::optional<SketchT> step(const SketchT& observed) = 0;

  /// Discards history (e.g. when a trace restarts).
  virtual void reset() = 0;
};

/// EWMA (paper Eq. 1): M_f(t) = alpha*M_0(t-1) + (1-alpha)*M_f(t-1), seeded
/// with M_f(2) = M_0(1). Emits errors from the second interval on.
template <class SketchT>
class EwmaForecaster final : public Forecaster<SketchT> {
 public:
  explicit EwmaForecaster(double alpha = 0.5) : alpha_(alpha) {
    if (alpha <= 0.0 || alpha > 1.0) {
      throw std::invalid_argument("EWMA alpha must be in (0,1]");
    }
  }

  std::optional<SketchT> step(const SketchT& observed) override {
    if (!forecast_) {
      forecast_.emplace(observed);  // M_f(2) = M_0(1)
      return std::nullopt;
    }
    SketchT error(observed);
    error.accumulate(*forecast_, -1.0);
    // Roll the model: M_f(t+1) = alpha*M_0(t) + (1-alpha)*M_f(t).
    forecast_->scale(1.0 - alpha_);
    forecast_->accumulate(observed, alpha_);
    return error;
  }

  void reset() override { forecast_.reset(); }

  /// Current forecast sketch (for tests); nullopt before the first step.
  const std::optional<SketchT>& forecast() const { return forecast_; }

 private:
  double alpha_;
  std::optional<SketchT> forecast_;
};

/// Simple moving average over the last `window` observations.
template <class SketchT>
class MovingAverageForecaster final : public Forecaster<SketchT> {
 public:
  explicit MovingAverageForecaster(std::size_t window = 5) : window_(window) {
    if (window == 0) {
      throw std::invalid_argument("moving-average window must be >= 1");
    }
  }

  std::optional<SketchT> step(const SketchT& observed) override {
    std::optional<SketchT> error;
    if (!history_.empty()) {
      SketchT forecast(history_.front());
      for (std::size_t i = 1; i < history_.size(); ++i) {
        forecast.accumulate(history_[i], 1.0);
      }
      forecast.scale(1.0 / static_cast<double>(history_.size()));
      error.emplace(observed);
      error->accumulate(forecast, -1.0);
    }
    history_.push_back(observed);
    if (history_.size() > window_) history_.pop_front();
    return error;
  }

  void reset() override { history_.clear(); }

 private:
  std::size_t window_;
  std::deque<SketchT> history_;
};

/// Holt's linear (double-exponential) model: tracks level and trend. Useful
/// when baseline traffic has a sustained ramp (e.g. diurnal rise) that plain
/// EWMA would flag as persistent error.
template <class SketchT>
class HoltForecaster final : public Forecaster<SketchT> {
 public:
  HoltForecaster(double alpha = 0.5, double beta = 0.2)
      : alpha_(alpha), beta_(beta) {
    if (alpha <= 0.0 || alpha > 1.0 || beta <= 0.0 || beta > 1.0) {
      throw std::invalid_argument("Holt alpha/beta must be in (0,1]");
    }
  }

  std::optional<SketchT> step(const SketchT& observed) override {
    if (!level_) {
      level_.emplace(observed);
      return std::nullopt;
    }
    if (!trend_) {
      // Second observation: trend = M_0(2) - M_0(1); no error yet (matching
      // the IMC'03 convention that Holt needs two warmup intervals).
      trend_.emplace(observed);
      trend_->accumulate(*level_, -1.0);
      level_->clear();
      level_->accumulate(observed, 1.0);
      return std::nullopt;
    }
    // Forecast = level + trend.
    SketchT forecast(*level_);
    forecast.accumulate(*trend_, 1.0);
    SketchT error(observed);
    error.accumulate(forecast, -1.0);
    // level' = alpha*observed + (1-alpha)*(level + trend)
    SketchT new_level(forecast);
    new_level.scale(1.0 - alpha_);
    new_level.accumulate(observed, alpha_);
    // trend' = beta*(level' - level) + (1-beta)*trend
    SketchT delta(new_level);
    delta.accumulate(*level_, -1.0);
    trend_->scale(1.0 - beta_);
    trend_->accumulate(delta, beta_);
    *level_ = std::move(new_level);
    return error;
  }

  void reset() override {
    level_.reset();
    trend_.reset();
  }

 private:
  double alpha_;
  double beta_;
  std::optional<SketchT> level_;
  std::optional<SketchT> trend_;
};

/// Forecast model selector for configs.
enum class ForecastModel : std::uint8_t { kEwma, kMovingAverage, kHolt };

/// Factory for the configured model.
template <class SketchT>
std::unique_ptr<Forecaster<SketchT>> make_forecaster(ForecastModel model,
                                                     double alpha = 0.5,
                                                     double beta = 0.2,
                                                     std::size_t window = 5) {
  switch (model) {
    case ForecastModel::kEwma:
      return std::make_unique<EwmaForecaster<SketchT>>(alpha);
    case ForecastModel::kMovingAverage:
      return std::make_unique<MovingAverageForecaster<SketchT>>(window);
    case ForecastModel::kHolt:
      return std::make_unique<HoltForecaster<SketchT>>(alpha, beta);
  }
  throw std::invalid_argument("unknown forecast model");
}

}  // namespace hifind
