// Attack and anomaly injectors.
//
// Each injector appends packets to a trace AND records a GroundTruthEvent, so
// downstream evaluation is exact. Packet-level behaviour follows how the
// paper characterizes each class:
//   SYN flood     high-rate SYNs at one {DIP,Dport}; spoofed floods draw a
//                 fresh random source per packet (the DoS-resilience stressor
//                 of Sec. 3.5); the overwhelmed victim answers only a sliver.
//   Hscan         one source, one port, a sweep of destinations; scanners
//                 send a single SYN per target (no stack retransmits); a few
//                 targets are live and answer.
//   Vscan         one source, one destination, a sweep of ports; a few open.
//   Block scan    destinations x ports grid.
//   Flash crowd   many REAL clients, one service, mostly successful — must
//                 survive the ratio filter as a non-attack.
//   Misconfig     real clients persistently re-knocking a dead service —
//                 must be removed by the active-service filter.
#pragma once

#include <string>

#include "gen/ground_truth.hpp"
#include "gen/network_model.hpp"
#include "packet/trace.hpp"

namespace hifind {

struct SynFloodSpec {
  IPv4 victim_ip{};
  std::uint16_t victim_port{80};
  Timestamp start{0};
  Timestamp duration{60 * kMicrosPerSecond};
  double rate_pps{500.0};
  bool spoofed{true};
  IPv4 attacker{};               ///< used when !spoofed
  double victim_answer_fraction{0.02};  ///< backlog lets a few through
  std::string label{"SYN flood"};
};

struct HscanSpec {
  IPv4 attacker{};
  std::uint16_t dport{1433};
  std::size_t num_targets{2000};
  Timestamp start{0};
  Timestamp duration{120 * kMicrosPerSecond};
  double open_fraction{0.03};  ///< targets that answer (port open)
  bool targets_internal{true}; ///< inbound sweep of the edge net
  std::string label{"horizontal scan"};
};

struct VscanSpec {
  IPv4 attacker{};
  IPv4 target{};
  std::uint16_t first_port{1};
  std::size_t num_ports{1024};
  Timestamp start{0};
  Timestamp duration{120 * kMicrosPerSecond};
  double open_fraction{0.01};
  std::string label{"vertical scan"};
};

struct BlockScanSpec {
  IPv4 attacker{};
  std::size_t num_targets{64};
  std::size_t num_ports{32};
  std::uint16_t first_port{1};
  Timestamp start{0};
  Timestamp duration{180 * kMicrosPerSecond};
  double open_fraction{0.01};
  std::string label{"block scan"};
};

struct FlashCrowdSpec {
  IPv4 service_ip{};
  std::uint16_t service_port{80};
  Timestamp start{0};
  Timestamp duration{120 * kMicrosPerSecond};
  double rate_pps{300.0};
  double success_fraction{0.7};  ///< overloaded but mostly answering
  std::string label{"flash crowd"};
};

struct MisconfigSpec {
  IPv4 dead_ip{};
  std::uint16_t dead_port{80};
  std::size_t num_clients{40};
  Timestamp start{0};
  Timestamp duration{600 * kMicrosPerSecond};
  double rate_pps{90.0};
  std::string label{"stale DNS entry"};
};

void inject_syn_flood(const SynFloodSpec& spec, const NetworkModel& net,
                      Pcg32& rng, Trace& trace, GroundTruthLedger& ledger);

void inject_horizontal_scan(const HscanSpec& spec, const NetworkModel& net,
                            Pcg32& rng, Trace& trace,
                            GroundTruthLedger& ledger);

void inject_vertical_scan(const VscanSpec& spec, const NetworkModel& net,
                          Pcg32& rng, Trace& trace, GroundTruthLedger& ledger);

void inject_block_scan(const BlockScanSpec& spec, const NetworkModel& net,
                       Pcg32& rng, Trace& trace, GroundTruthLedger& ledger);

void inject_flash_crowd(const FlashCrowdSpec& spec, const NetworkModel& net,
                        Pcg32& rng, Trace& trace, GroundTruthLedger& ledger);

void inject_misconfiguration(const MisconfigSpec& spec,
                             const NetworkModel& net, Pcg32& rng, Trace& trace,
                             GroundTruthLedger& ledger);

}  // namespace hifind
