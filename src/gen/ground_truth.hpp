// Ground-truth ledger for synthetic traces.
//
// The paper validates detections by hand (Sec. 5.4); a synthetic trace lets
// us do better — every injected event is recorded here, so the evaluation
// module can compute exact detection/false-positive/false-negative counts,
// and benches can label detected scans with their generating cause the way
// the paper's Tables 7/8 label theirs ("SQLSnake scan", "Sasser worm", ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/interval.hpp"
#include "common/types.hpp"

namespace hifind {

/// Everything the generator can inject, attacks and benign anomalies alike.
enum class EventKind : std::uint8_t {
  kSynFloodSpoofed,     ///< flood with per-packet random source IPs
  kSynFloodFixed,       ///< flood from one real (non-spoofed) source
  kHorizontalScan,      ///< one SIP, one Dport, many DIPs
  kVerticalScan,        ///< one SIP, one DIP, many Dports
  kBlockScan,           ///< one SIP, many DIPs x many Dports
  kFlashCrowd,          ///< many real clients, one service, mostly successful
  kMisconfiguration,    ///< persistent SYNs to a dead service (stale DNS)
  kServerFailure,       ///< live service stops answering for a window
};

const char* event_kind_name(EventKind kind);

/// True for the kinds a correct IDS should alert on.
constexpr bool is_attack(EventKind kind) {
  return kind == EventKind::kSynFloodSpoofed ||
         kind == EventKind::kSynFloodFixed ||
         kind == EventKind::kHorizontalScan ||
         kind == EventKind::kVerticalScan || kind == EventKind::kBlockScan;
}

/// One injected event with its identifying flow facets. Facets that vary
/// per packet (e.g. the spoofed SIP of a flood, the scanned DIPs of an
/// Hscan) are left unset.
struct GroundTruthEvent {
  EventKind kind{EventKind::kHorizontalScan};
  std::string label;               ///< human cause, e.g. "SQLSnake scan"
  Timestamp start{0};
  Timestamp end{0};
  std::optional<IPv4> sip;         ///< attacker, if fixed
  std::optional<IPv4> dip;         ///< victim/target, if fixed
  std::optional<std::uint16_t> dport;  ///< service, if fixed
  double rate_pps{0.0};            ///< injected SYN rate

  bool active_during(Timestamp a, Timestamp b) const {
    return start < b && end > a;
  }
};

/// Append-only ledger; the generator fills it, the evaluator queries it.
class GroundTruthLedger {
 public:
  void add(GroundTruthEvent event) { events_.push_back(std::move(event)); }

  const std::vector<GroundTruthEvent>& events() const { return events_; }

  /// Events of attack kinds only.
  std::vector<GroundTruthEvent> attacks() const;

  /// Events (of any kind) overlapping [a, b).
  std::vector<GroundTruthEvent> active(Timestamp a, Timestamp b) const;

 private:
  std::vector<GroundTruthEvent> events_;
};

}  // namespace hifind
