#include "gen/network_model.hpp"

#include "common/hash.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hifind {
namespace {

/// Well-known service ports with rough real-world weights; scan-magnet ports
/// (1433, 445, ...) intentionally included so attack and benign traffic share
/// key space the way real traces do.
struct PortWeight {
  std::uint16_t port;
  double weight;
};
constexpr PortWeight kPortMix[] = {
    {80, 35.0},  {443, 25.0}, {25, 8.0},   {22, 6.0},  {53, 5.0},
    {110, 3.0},  {143, 3.0},  {993, 2.0},  {3306, 2.0}, {1433, 1.5},
    {8080, 1.5}, {445, 1.5},  {139, 1.0},  {21, 1.0},  {8443, 1.0},
};

}  // namespace

NetworkModel::NetworkModel(const NetworkModelConfig& config)
    : config_(config) {
  if (config_.internal_prefixes.empty() || config_.num_servers == 0) {
    throw std::invalid_argument(
        "NetworkModel needs >=1 internal prefix and >=1 server");
  }
  Pcg32 rng(mix64(config_.seed), mix64(config_.seed ^ 0x6d5c4b3a29180716ULL));

  // Servers: internal addresses hosting one weighted-random service each,
  // with Zipf-like per-server popularity so a few services dominate.
  double total_port_weight = 0.0;
  for (const auto& pw : kPortMix) total_port_weight += pw.weight;
  services_.reserve(config_.num_servers);
  for (std::size_t i = 0; i < config_.num_servers; ++i) {
    double pick = rng.uniform() * total_port_weight;
    std::uint16_t port = kPortMix[0].port;
    for (const auto& pw : kPortMix) {
      if (pick < pw.weight) {
        port = pw.port;
        break;
      }
      pick -= pw.weight;
    }
    Service s;
    s.ip = sample_internal_address(rng);
    s.port = port;
    s.popularity = 1.0 / static_cast<double>(i + 1);  // Zipf rank weight
    services_.push_back(s);
  }
  // One stable dead service: a host slot that answers nothing, pointed at by
  // "stale DNS". Give it a plausible port and zero benign popularity.
  dead_index_ = services_.size() - 1;
  services_[dead_index_].alive = false;
  services_[dead_index_].popularity = 0.0;

  service_cdf_.resize(services_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < services_.size(); ++i) {
    acc += services_[i].alive ? services_[i].popularity : 0.0;
    service_cdf_[i] = acc;
  }
  if (acc <= 0.0) {
    throw std::invalid_argument("NetworkModel: no live service popularity");
  }

  internal_clients_.reserve(config_.num_internal_clients);
  for (std::size_t i = 0; i < config_.num_internal_clients; ++i) {
    internal_clients_.push_back(sample_internal_address(rng));
  }
  // External clients cluster in a few hundred real /16s (ISP blocks), which
  // keeps their first-octet distribution NON-uniform — the property the
  // backscatter validator uses to tell flash crowds from spoofed floods.
  std::vector<std::uint32_t> isp_blocks;
  const std::size_t num_blocks = 300;
  isp_blocks.reserve(num_blocks);
  for (std::size_t i = 0; i < num_blocks; ++i) {
    std::uint32_t prefix;
    do {
      prefix = rng.next() & 0xffff0000u;
    } while (is_internal(IPv4{prefix}));
    isp_blocks.push_back(prefix);
  }
  external_clients_.reserve(config_.num_external_clients);
  for (std::size_t i = 0; i < config_.num_external_clients; ++i) {
    const std::uint32_t block = isp_blocks[rng.bounded(
        static_cast<std::uint32_t>(isp_blocks.size()))];
    external_clients_.push_back(IPv4{block | (rng.next() & 0xffffu)});
  }
}

bool NetworkModel::is_internal(IPv4 ip) const {
  const auto prefix = static_cast<std::uint16_t>(ip.addr >> 16);
  return std::find(config_.internal_prefixes.begin(),
                   config_.internal_prefixes.end(),
                   prefix) != config_.internal_prefixes.end();
}

const Service& NetworkModel::sample_service(Pcg32& rng) const {
  const double pick = rng.uniform() * service_cdf_.back();
  const auto it =
      std::upper_bound(service_cdf_.begin(), service_cdf_.end(), pick);
  const std::size_t idx = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - service_cdf_.begin(),
                               static_cast<std::ptrdiff_t>(services_.size()) -
                                   1));
  return services_[idx];
}

IPv4 NetworkModel::sample_internal_client(Pcg32& rng) const {
  return internal_clients_[rng.bounded(
      static_cast<std::uint32_t>(internal_clients_.size()))];
}

IPv4 NetworkModel::sample_external_client(Pcg32& rng) const {
  return external_clients_[rng.bounded(
      static_cast<std::uint32_t>(external_clients_.size()))];
}

IPv4 NetworkModel::sample_internal_address(Pcg32& rng) const {
  const std::uint16_t prefix = config_.internal_prefixes[rng.bounded(
      static_cast<std::uint32_t>(config_.internal_prefixes.size()))];
  return IPv4{(std::uint32_t{prefix} << 16) | (rng.next() & 0xffffu)};
}

}  // namespace hifind
