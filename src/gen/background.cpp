#include "gen/background.hpp"

#include "common/hash.hpp"

#include <cmath>

namespace hifind {
namespace {

/// Exponential inter-arrival draw for a Poisson process at `rate` per second.
Timestamp exp_gap_us(Pcg32& rng, double rate) {
  const double u = std::max(rng.uniform(), 1e-12);
  const double seconds = -std::log(u) / rate;
  return static_cast<Timestamp>(seconds * kMicrosPerSecond) + 1;
}

struct ConnectionOptions {
  bool success{true};
  bool rst_on_failure{false};
  bool emit_fins{true};
  std::size_t failed_retries{0};
  bool client_is_internal{false};
};

/// Emits the packets of one connection attempt: SYN (+retries when ignored),
/// then SYN/ACK + optional FIN close on success, or an RST on refusal.
void emit_connection(Trace& trace, Pcg32& rng, Timestamp ts, IPv4 client,
                     std::uint16_t sport, IPv4 server, std::uint16_t dport,
                     const ConnectionOptions& opt) {
  PacketRecord syn;
  syn.ts = ts;
  syn.sip = client;
  syn.dip = server;
  syn.sport = sport;
  syn.dport = dport;
  syn.len = 40;
  syn.flags = kSyn;
  syn.outbound = opt.client_is_internal;
  trace.push_back(syn);

  const Timestamp rtt = 2000 + rng.bounded(80000);  // 2-82 ms
  if (opt.success) {
    PacketRecord synack;
    synack.ts = ts + rtt;
    synack.sip = server;
    synack.dip = client;
    synack.sport = dport;
    synack.dport = sport;
    synack.len = 40;
    synack.flags = kSyn | kAck;
    synack.outbound = !opt.client_is_internal;
    trace.push_back(synack);

    if (opt.emit_fins) {
      const Timestamp life = 50000 + rng.bounded(20 * 1000000);  // 50ms-20s
      PacketRecord fin1 = syn;
      fin1.ts = ts + rtt + life;
      fin1.flags = kFin | kAck;
      trace.push_back(fin1);
      PacketRecord fin2 = synack;
      fin2.ts = ts + rtt + life + rtt;
      fin2.flags = kFin | kAck;
      trace.push_back(fin2);
    }
    return;
  }

  if (opt.rst_on_failure) {
    PacketRecord rst;
    rst.ts = ts + rtt;
    rst.sip = server;
    rst.dip = client;
    rst.sport = dport;
    rst.dport = sport;
    rst.len = 40;
    rst.flags = kRst | kAck;
    rst.outbound = !opt.client_is_internal;
    trace.push_back(rst);
    return;
  }

  // Silent failure: the client's stack retransmits with backoff (3s, 9s, ...)
  Timestamp retry_gap = 3 * kMicrosPerSecond;
  Timestamp retry_ts = ts;
  for (std::size_t i = 0; i < opt.failed_retries; ++i) {
    retry_ts += retry_gap;
    retry_gap *= 3;
    PacketRecord retry = syn;
    retry.ts = retry_ts;
    trace.push_back(retry);
  }
}

bool in_failure_window(const std::vector<ServerFailureWindow>& failures,
                       std::size_t service_index, Timestamp ts) {
  for (const auto& w : failures) {
    if (w.service_index == service_index && ts >= w.start && ts < w.end) {
      return true;
    }
  }
  return false;
}

}  // namespace

void generate_background(const BackgroundConfig& config,
                         const NetworkModel& net, Timestamp duration,
                         const std::vector<ServerFailureWindow>& failures,
                         Trace& trace, GroundTruthLedger& ledger) {
  Pcg32 rng(mix64(config.seed), mix64(config.seed ^ 0x77a3d2c1b0e9f806ULL));

  // External service endpoints for outbound connections.
  std::vector<Service> external_services(config.num_external_services);
  constexpr std::uint16_t kExternalPorts[] = {80, 443, 22, 25, 53, 8080, 993};
  for (auto& s : external_services) {
    IPv4 ip;
    do {
      ip = IPv4{rng.next()};
    } while (net.is_internal(ip));
    s.ip = ip;
    s.port = kExternalPorts[rng.bounded(std::size(kExternalPorts))];
  }

  // A small pool of internal P2P participants, each with a peer list.
  std::vector<IPv4> p2p_hosts(config.num_p2p_hosts);
  for (auto& h : p2p_hosts) h = net.sample_internal_client(rng);

  for (const auto& w : failures) {
    const Service& svc = net.services()[w.service_index];
    GroundTruthEvent ev;
    ev.kind = EventKind::kServerFailure;
    ev.label = "server failure";
    ev.start = w.start;
    ev.end = w.end;
    ev.dip = svc.ip;
    ev.dport = svc.port;
    ledger.add(ev);
  }

  // Benign TCP connections.
  Timestamp ts = exp_gap_us(rng, config.connections_per_second);
  while (ts < duration) {
    const double what = rng.uniform();
    ConnectionOptions opt;
    opt.failed_retries = config.failed_syn_retries;

    if (what < config.p2p_fraction) {
      // P2P: internal host to a random external peer on a high port.
      const IPv4 host =
          p2p_hosts[rng.bounded(static_cast<std::uint32_t>(p2p_hosts.size()))];
      IPv4 peer;
      do {
        peer = IPv4{rng.next()};
      } while (net.is_internal(peer));
      const auto peer_port =
          static_cast<std::uint16_t>(1024 + rng.bounded(60000));
      opt.client_is_internal = true;
      opt.success = rng.chance(0.7);  // many stale peers
      opt.rst_on_failure = rng.chance(0.5);
      opt.emit_fins = rng.chance(config.fin_prob);
      emit_connection(trace, rng, ts, host,
                      static_cast<std::uint16_t>(1024 + rng.bounded(60000)),
                      peer, peer_port, opt);
    } else if (what < config.p2p_fraction +
                          config.inbound_fraction * (1 - config.p2p_fraction)) {
      // Inbound: external client to internal service.
      std::size_t svc_index = 0;
      const Service* svc = nullptr;
      // sample_service never returns dead services; find its roster index for
      // failure-window lookup.
      const Service& picked = net.sample_service(rng);
      for (std::size_t i = 0; i < net.services().size(); ++i) {
        if (net.services()[i].ip == picked.ip &&
            net.services()[i].port == picked.port) {
          svc_index = i;
          svc = &net.services()[i];
          break;
        }
      }
      const IPv4 client = net.sample_external_client(rng);
      opt.client_is_internal = false;
      const bool failed_window = in_failure_window(failures, svc_index, ts);
      const double fail_p =
          failed_window ? 0.95 : config.benign_failure_prob;
      opt.success = svc != nullptr && !rng.chance(fail_p);
      opt.rst_on_failure = !failed_window && rng.chance(config.rst_prob);
      opt.emit_fins = rng.chance(config.fin_prob);
      emit_connection(trace, rng, ts, client,
                      static_cast<std::uint16_t>(1024 + rng.bounded(60000)),
                      picked.ip, picked.port, opt);
    } else {
      // Outbound: internal client to external service.
      const IPv4 client = net.sample_internal_client(rng);
      const Service& svc = external_services[rng.bounded(
          static_cast<std::uint32_t>(external_services.size()))];
      opt.client_is_internal = true;
      opt.success = !rng.chance(config.benign_failure_prob);
      opt.rst_on_failure = rng.chance(config.rst_prob);
      opt.emit_fins = rng.chance(config.fin_prob);
      emit_connection(trace, rng, ts, client,
                      static_cast<std::uint16_t>(1024 + rng.bounded(60000)),
                      svc.ip, svc.port, opt);
    }
    ts += exp_gap_us(rng, config.connections_per_second);
  }

  // Non-TCP noise: keeps the recorders honest about ignoring other protocols.
  if (config.udp_noise_per_second > 0) {
    Timestamp uts = exp_gap_us(rng, config.udp_noise_per_second);
    while (uts < duration) {
      PacketRecord udp;
      udp.ts = uts;
      udp.sip = net.sample_external_client(rng);
      udp.dip = net.sample_internal_address(rng);
      udp.sport = static_cast<std::uint16_t>(1024 + rng.bounded(60000));
      udp.dport = 53;
      udp.len = static_cast<std::uint16_t>(60 + rng.bounded(400));
      udp.proto = Protocol::kUdp;
      trace.push_back(udp);
      uts += exp_gap_us(rng, config.udp_noise_per_second);
    }
  }
}

}  // namespace hifind
