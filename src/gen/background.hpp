// Benign background traffic.
//
// Connections arrive as a Poisson process, split between inbound (external
// client -> internal service) and outbound (internal client -> external
// service) directions, plus a P2P component in which one internal host
// contacts many external peers with mediocre success — the traffic class the
// paper notes trips superspreader detectors. Successful connections complete
// the handshake and (usually) close with FINs, keeping the SYN/FIN balance
// CPM relies on. A small benign failure rate, plus optional server-failure
// windows during which a service answers almost nothing, gives the Phase-3
// heuristics realistic false-positive pressure.
#pragma once

#include <vector>

#include "common/interval.hpp"
#include "gen/ground_truth.hpp"
#include "gen/network_model.hpp"
#include "packet/trace.hpp"

namespace hifind {

struct BackgroundConfig {
  double connections_per_second{80.0};
  double inbound_fraction{0.6};      ///< share targeting internal services
  double p2p_fraction{0.08};         ///< share that is P2P fan-out
  double benign_failure_prob{0.02};  ///< unanswered benign attempts
  double fin_prob{0.9};              ///< successful connections closing w/ FIN
  double rst_prob{0.3};              ///< failed attempts answered by RST
  std::size_t failed_syn_retries{2}; ///< real stacks retransmit lost SYNs
  double udp_noise_per_second{5.0};
  std::size_t num_external_services{500};
  std::size_t num_p2p_hosts{20};
  std::uint64_t seed{23};
};

/// A window during which one internal service stops answering (overload,
/// crash, upstream congestion). Benign clients keep knocking.
struct ServerFailureWindow {
  std::size_t service_index{0};  ///< into NetworkModel::services()
  Timestamp start{0};
  Timestamp end{0};
};

/// Generates background traffic over [0, duration) into `trace`, recording
/// failure windows into `ledger` (kind kServerFailure) so the evaluator
/// knows these intervals may legitimately look anomalous.
void generate_background(const BackgroundConfig& config,
                         const NetworkModel& net, Timestamp duration,
                         const std::vector<ServerFailureWindow>& failures,
                         Trace& trace, GroundTruthLedger& ledger);

}  // namespace hifind
