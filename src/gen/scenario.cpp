#include "gen/scenario.hpp"

#include "common/hash.hpp"

#include <cmath>

namespace hifind {
namespace {

/// Scan-magnet destination ports and the worm/tool causes the paper's
/// Tables 7/8 attribute to them.
struct ScanCause {
  std::uint16_t port;
  const char* label;
};
constexpr ScanCause kScanCauses[] = {
    {1433, "SQLSnake scan"},       {22, "Scan SSH"},
    {3306, "MySQL Bot scans"},     {6101, "Unknown scan"},
    {4899, "Rahack worm"},         {135, "Nachi or MSBlast worm"},
    {445, "Sasser and Korgo worm"}, {139, "NetBIOS scan"},
    {5554, "Sasser worm"},         {2745, "Bagle backdoor scan"},
    {1025, "RPC scan"},            {6129, "Dameware scan"},
};

Timestamp seconds(double s) {
  return static_cast<Timestamp>(s * kMicrosPerSecond);
}

/// Uniform draw in [lo, hi).
double uniform_in(Pcg32& rng, double lo, double hi) {
  return lo + rng.uniform() * (hi - lo);
}

/// Log-uniform integer draw in [lo, hi) — used for scan breadths, whose
/// real-world distribution spans three orders of magnitude (Tables 7/8:
/// 56275 targets at the top, 62 at the bottom).
std::size_t log_uniform(Pcg32& rng, double lo, double hi) {
  return static_cast<std::size_t>(
      std::exp(uniform_in(rng, std::log(lo), std::log(hi))));
}

/// A start time leaving two warm-up intervals at the head and `dur` room at
/// the tail.
Timestamp place(Pcg32& rng, Timestamp total, Timestamp dur) {
  const Timestamp lead = seconds(120);
  if (total <= lead + dur) return lead;
  return lead + static_cast<Timestamp>(rng.uniform() *
                                       static_cast<double>(total - lead - dur));
}

/// Picks a live (answering) service for flood/flash-crowd targets.
const Service& pick_live_service(const NetworkModel& net, Pcg32& rng) {
  return net.sample_service(rng);  // sampler never returns dead services
}

}  // namespace

Scenario build_scenario(const ScenarioConfig& config) {
  NetworkModelConfig net_config = config.network;
  net_config.seed = mix64(net_config.seed ^ mix64(config.seed));
  Scenario scenario(net_config);
  const NetworkModel& net = scenario.network;

  Pcg32 rng(mix64(config.seed), mix64(config.seed ^ 0x2f4a1c6e8b3d5079ULL));
  const Timestamp total = seconds(config.duration_seconds);

  // Server-failure windows (benign anomalies for the ratio filter to catch).
  std::vector<ServerFailureWindow> failures;
  for (std::size_t i = 0; i < config.num_server_failures; ++i) {
    const Timestamp dur = seconds(uniform_in(rng, 120, 300));
    ServerFailureWindow w;
    // Only live services fail interestingly; index 0..n-2 (last is dead).
    w.service_index = rng.bounded(
        static_cast<std::uint32_t>(net.services().size() - 1));
    w.start = place(rng, total, dur);
    w.end = w.start + dur;
    failures.push_back(w);
  }

  BackgroundConfig bg = config.background;
  bg.connections_per_second = config.background_cps;
  bg.seed = mix64(config.seed ^ 0x5ca1ab1e0ddba11ULL);
  generate_background(bg, net, total, failures, scenario.trace,
                      scenario.truth);

  // SYN floods.
  for (std::size_t i = 0; i < config.num_spoofed_floods; ++i) {
    const Service& victim = pick_live_service(net, rng);
    SynFloodSpec spec;
    spec.victim_ip = victim.ip;
    spec.victim_port = victim.port;
    spec.duration = seconds(uniform_in(rng, config.spoofed_flood_duration_min,
                                       config.spoofed_flood_duration_max));
    spec.start = place(rng, total, spec.duration);
    spec.rate_pps = uniform_in(rng, config.spoofed_flood_rate_min,
                               config.spoofed_flood_rate_max);
    spec.spoofed = true;
    spec.label = "spoofed SYN flood";
    inject_syn_flood(spec, net, rng, scenario.trace, scenario.truth);
  }
  for (std::size_t i = 0; i < config.num_fixed_floods; ++i) {
    const Service& victim = pick_live_service(net, rng);
    SynFloodSpec spec;
    spec.victim_ip = victim.ip;
    spec.victim_port = victim.port;
    spec.duration = seconds(uniform_in(rng, 120, 360));
    spec.start = place(rng, total, spec.duration);
    spec.rate_pps = uniform_in(rng, 120, 500);
    spec.spoofed = false;
    spec.attacker = net.sample_external_client(rng);
    spec.label = "non-spoofed SYN flood";
    inject_syn_flood(spec, net, rng, scenario.trace, scenario.truth);
  }

  // Horizontal scans: breadth log-uniform across three decades.
  for (std::size_t i = 0; i < config.num_hscans; ++i) {
    const ScanCause& cause = kScanCauses[rng.bounded(std::size(kScanCauses))];
    HscanSpec spec;
    spec.attacker = net.sample_external_client(rng);
    spec.dport = cause.port;
    spec.label = cause.label;
    spec.num_targets = log_uniform(rng, 80, 60000);
    spec.duration = seconds(uniform_in(
        rng, 60, std::min(600.0, config.duration_seconds / 2.0)));
    spec.start = place(rng, total, spec.duration);
    spec.open_fraction = uniform_in(rng, 0.0, 0.06);
    inject_horizontal_scan(spec, net, rng, scenario.trace, scenario.truth);
  }

  // Vertical scans.
  for (std::size_t i = 0; i < config.num_vscans; ++i) {
    VscanSpec spec;
    spec.attacker = net.sample_external_client(rng);
    spec.target = net.sample_internal_address(rng);
    spec.first_port = static_cast<std::uint16_t>(1 + rng.bounded(100));
    spec.num_ports = log_uniform(rng, 150, 8000);
    spec.duration = seconds(uniform_in(rng, 60, 300));
    spec.start = place(rng, total, spec.duration);
    spec.open_fraction = uniform_in(rng, 0.0, 0.03);
    spec.label = "port sweep (vertical)";
    inject_vertical_scan(spec, net, rng, scenario.trace, scenario.truth);
  }

  // Block scans.
  for (std::size_t i = 0; i < config.num_block_scans; ++i) {
    BlockScanSpec spec;
    spec.attacker = net.sample_external_client(rng);
    spec.num_targets = 32 + rng.bounded(96);
    spec.num_ports = 16 + rng.bounded(48);
    spec.first_port = static_cast<std::uint16_t>(1 + rng.bounded(1000));
    spec.duration = seconds(uniform_in(rng, 120, 300));
    spec.start = place(rng, total, spec.duration);
    spec.label = "block scan";
    inject_block_scan(spec, net, rng, scenario.trace, scenario.truth);
  }

  // Flash crowds on the most popular services.
  for (std::size_t i = 0; i < config.num_flash_crowds; ++i) {
    const Service& svc = pick_live_service(net, rng);
    FlashCrowdSpec spec;
    spec.service_ip = svc.ip;
    spec.service_port = svc.port;
    spec.duration = seconds(uniform_in(rng, 120, 300));
    spec.start = place(rng, total, spec.duration);
    spec.rate_pps = uniform_in(rng, 150, 400);
    spec.success_fraction = uniform_in(rng, 0.6, 0.85);
    inject_flash_crowd(spec, net, rng, scenario.trace, scenario.truth);
  }

  // Misconfigurations: persistent knocking on the dead service.
  for (std::size_t i = 0; i < config.num_misconfigs; ++i) {
    MisconfigSpec spec;
    spec.dead_ip = net.dead_service().ip;
    spec.dead_port = net.dead_service().port;
    spec.num_clients = 20 + rng.bounded(40);
    spec.duration = seconds(uniform_in(rng, 300, config.duration_seconds / 2.0));
    spec.start = place(rng, total, spec.duration);
    spec.rate_pps = uniform_in(rng, 60, 140);
    inject_misconfiguration(spec, net, rng, scenario.trace, scenario.truth);
  }

  scenario.trace.sort();
  return scenario;
}

ScenarioConfig nu_like_config(std::uint64_t seed,
                              std::uint32_t duration_seconds) {
  ScenarioConfig c;
  c.seed = seed;
  c.duration_seconds = duration_seconds;
  c.background_cps = 80.0;
  c.num_spoofed_floods = 4;
  c.num_fixed_floods = 3;
  c.num_hscans = 24;
  c.num_vscans = 6;
  c.num_block_scans = 1;
  c.num_flash_crowds = 2;
  c.num_misconfigs = 2;
  c.num_server_failures = 2;
  return c;
}

ScenarioConfig million_flow_config(std::uint64_t seed,
                                   std::size_t distinct_clients_per_interval) {
  ScenarioConfig c;
  c.seed = seed;
  // 180 s = two warm-up intervals + one measured interval. Flood duration is
  // pinned to 60 s, so place()'s 120 s lead puts every flood exactly in the
  // measured window [120 s, 180 s).
  c.duration_seconds = 180;
  c.background_cps = 50.0;
  c.num_spoofed_floods = 4;
  // Rate such that the four floods together emit ~distinct_clients_per_
  // interval spoofed SYNs per 60 s window; each draws a fresh uniform 32-bit
  // source, so the distinct count tracks the emission count while it is
  // << 2^32 (birthday collisions are <0.1% at 4M).
  const double rate =
      static_cast<double>(distinct_clients_per_interval) / (4.0 * 60.0);
  c.spoofed_flood_rate_min = rate;
  c.spoofed_flood_rate_max = rate;
  c.spoofed_flood_duration_min = 60.0;
  c.spoofed_flood_duration_max = 60.0;
  // Pure ingest stress: no scans or benign anomalies — the point is the
  // counter-memory working set, not detection variety.
  c.num_fixed_floods = 0;
  c.num_hscans = 0;
  c.num_vscans = 0;
  c.num_block_scans = 0;
  c.num_flash_crowds = 0;
  c.num_misconfigs = 0;
  c.num_server_failures = 0;
  return c;
}

ScenarioConfig lbl_like_config(std::uint64_t seed,
                               std::uint32_t duration_seconds) {
  ScenarioConfig c;
  c.seed = seed;
  c.duration_seconds = duration_seconds;
  c.background_cps = 50.0;
  // Scan-heavy, flood-free: the trace character that defeats CPM (Table 6).
  c.num_spoofed_floods = 0;
  c.num_fixed_floods = 0;
  c.num_hscans = 20;
  c.num_vscans = 1;
  c.num_block_scans = 0;
  c.num_flash_crowds = 0;
  c.num_misconfigs = 1;
  c.num_server_failures = 1;
  // LBL's network is a single lab prefix.
  c.network.internal_prefixes = {0x83e5};
  c.network.num_servers = 80;
  c.network.num_internal_clients = 1500;
  return c;
}

}  // namespace hifind
