// Scenario composition: background + attacks + anomalies => labelled trace.
//
// Two presets stand in for the paper's datasets:
//   nu_like_scenario  — campus edge with a full attack mix: spoofed and
//                       non-spoofed SYN floods, many horizontal scans
//                       (labelled with the worm causes of Tables 7/8),
//                       vertical scans, a block scan, flash crowds,
//                       misconfigurations and server-failure windows.
//   lbl_like_scenario — lab edge: scan-heavy, ZERO SYN floods (the property
//                       that makes CPM fail in Table 6).
#pragma once

#include <cstdint>

#include "gen/attacks.hpp"
#include "gen/background.hpp"
#include "gen/ground_truth.hpp"
#include "gen/network_model.hpp"
#include "packet/trace.hpp"

namespace hifind {

/// High-level knobs of a synthetic experiment.
struct ScenarioConfig {
  std::uint64_t seed{1};
  std::uint32_t duration_seconds{1800};
  double background_cps{80.0};

  std::size_t num_spoofed_floods{4};
  std::size_t num_fixed_floods{3};

  /// Spoofed-flood intensity/length draw ranges. Defaults reproduce the
  /// original preset draws bit-exactly; the million-flow preset pins them so
  /// per-interval distinct-source counts are a direct function of the knobs
  /// (each spoofed packet draws a fresh uniform 32-bit source, so distinct
  /// clients per interval ~= num_spoofed_floods * rate_pps * 60 while that
  /// is << 2^32).
  double spoofed_flood_rate_min{150.0};
  double spoofed_flood_rate_max{800.0};
  double spoofed_flood_duration_min{120.0};
  double spoofed_flood_duration_max{360.0};
  std::size_t num_hscans{24};
  std::size_t num_vscans{6};
  std::size_t num_block_scans{1};
  std::size_t num_flash_crowds{2};
  std::size_t num_misconfigs{2};
  std::size_t num_server_failures{2};

  NetworkModelConfig network{};
  BackgroundConfig background{};
};

/// A fully built experiment: packets, labels, and the network they live in.
struct Scenario {
  Trace trace;
  GroundTruthLedger truth;
  NetworkModel network;

  explicit Scenario(const NetworkModelConfig& net_config)
      : network(net_config) {}
};

/// Builds the scenario: generates background, injects every configured event
/// at deterministic (seeded) random offsets, and time-sorts the trace.
Scenario build_scenario(const ScenarioConfig& config);

/// Preset mirroring the NU trace's character (attack-rich campus edge).
ScenarioConfig nu_like_config(std::uint64_t seed = 1,
                              std::uint32_t duration_seconds = 1800);

/// Preset mirroring the LBL trace's character (scan-heavy, no floods).
ScenarioConfig lbl_like_config(std::uint64_t seed = 2,
                               std::uint32_t duration_seconds = 1800);

/// TLB/memory-hierarchy stress preset: spoofed SYN floods sized so roughly
/// `distinct_clients_per_interval` distinct client IPs hit the sketches in
/// each 60 s interval (every spoofed SYN draws a fresh uniform 32-bit
/// source). Duration is 180 s — two warm-up intervals plus one measured
/// interval [120 s, 180 s) in which all floods run concurrently. This is the
/// ROADMAP's millions-of-distinct-clients ingest scenario; the BM_MillionFlow
/// bench variants and bench/million_flow_alerts drive it.
ScenarioConfig million_flow_config(
    std::uint64_t seed = 7,
    std::size_t distinct_clients_per_interval = 2'000'000);

}  // namespace hifind
