// Address-space and service model of the monitored edge network.
//
// Mirrors the paper's vantage point: an edge router of a campus network
// ("several Class B networks", like Northwestern). Internal hosts live in a
// small set of /16 prefixes; external hosts are everything else. Servers run
// a handful of popular services with Zipf-ish popularity, which gives the
// benign traffic the concentrated key distribution that IP mangling exists
// to flatten.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace hifind {

/// A service endpoint inside the edge network.
struct Service {
  IPv4 ip{};
  std::uint16_t port{0};
  double popularity{1.0};  ///< relative share of benign connections
  bool alive{true};        ///< dead services never answer (misconfig targets)
};

struct NetworkModelConfig {
  /// /16 prefixes forming the edge network, as the top-16-bits value.
  std::vector<std::uint16_t> internal_prefixes{0x8aa1, 0x8aa2, 0x8aa3};
  std::size_t num_servers{200};
  std::size_t num_internal_clients{4000};
  std::size_t num_external_clients{20000};
  std::uint64_t seed{17};
};

class NetworkModel {
 public:
  explicit NetworkModel(const NetworkModelConfig& config);

  /// True if the address falls in one of the edge /16 prefixes.
  bool is_internal(IPv4 ip) const;

  /// The service roster (servers x ports); stable for a given seed.
  const std::vector<Service>& services() const { return services_; }

  /// Draws a service weighted by popularity. Dead services are never drawn
  /// here — benign clients use DNS that (mostly) points at live endpoints.
  const Service& sample_service(Pcg32& rng) const;

  /// Uniform member of the internal client pool.
  IPv4 sample_internal_client(Pcg32& rng) const;

  /// Uniform member of the external client pool (real, routable hosts).
  IPv4 sample_external_client(Pcg32& rng) const;

  /// Uniformly random 32-bit address — what a spoofing attacker forges.
  IPv4 sample_spoofed_source(Pcg32& rng) const {
    return IPv4{static_cast<std::uint32_t>(rng.next64())};
  }

  /// Random internal address (any host slot, not only known clients):
  /// the target space of inbound horizontal scans.
  IPv4 sample_internal_address(Pcg32& rng) const;

  /// A service marked dead (never answers); misconfiguration target.
  /// Returns the same endpoint for a given model (stable across intervals,
  /// like a stale DNS entry).
  const Service& dead_service() const { return services_[dead_index_]; }

 private:
  NetworkModelConfig config_;
  std::vector<Service> services_;
  std::vector<double> service_cdf_;
  std::vector<IPv4> internal_clients_;
  std::vector<IPv4> external_clients_;
  std::size_t dead_index_{0};
};

}  // namespace hifind
