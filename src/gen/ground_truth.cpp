#include "gen/ground_truth.hpp"

namespace hifind {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSynFloodSpoofed:
      return "spoofed SYN flood";
    case EventKind::kSynFloodFixed:
      return "non-spoofed SYN flood";
    case EventKind::kHorizontalScan:
      return "horizontal scan";
    case EventKind::kVerticalScan:
      return "vertical scan";
    case EventKind::kBlockScan:
      return "block scan";
    case EventKind::kFlashCrowd:
      return "flash crowd";
    case EventKind::kMisconfiguration:
      return "misconfiguration";
    case EventKind::kServerFailure:
      return "server failure";
  }
  return "unknown";
}

std::vector<GroundTruthEvent> GroundTruthLedger::attacks() const {
  std::vector<GroundTruthEvent> out;
  for (const auto& e : events_) {
    if (is_attack(e.kind)) out.push_back(e);
  }
  return out;
}

std::vector<GroundTruthEvent> GroundTruthLedger::active(Timestamp a,
                                                        Timestamp b) const {
  std::vector<GroundTruthEvent> out;
  for (const auto& e : events_) {
    if (e.active_during(a, b)) out.push_back(e);
  }
  return out;
}

}  // namespace hifind
