#include "gen/attacks.hpp"

#include <algorithm>
#include <cmath>

namespace hifind {
namespace {

Timestamp exp_gap_us(Pcg32& rng, double rate) {
  const double u = std::max(rng.uniform(), 1e-12);
  return static_cast<Timestamp>(-std::log(u) / rate * kMicrosPerSecond) + 1;
}

PacketRecord make_syn(Timestamp ts, IPv4 sip, std::uint16_t sport, IPv4 dip,
                      std::uint16_t dport, bool outbound) {
  PacketRecord p;
  p.ts = ts;
  p.sip = sip;
  p.dip = dip;
  p.sport = sport;
  p.dport = dport;
  p.len = 40;
  p.flags = kSyn;
  p.outbound = outbound;
  return p;
}

PacketRecord make_synack(Timestamp ts, IPv4 sip, std::uint16_t sport,
                         IPv4 dip, std::uint16_t dport, bool outbound) {
  PacketRecord p;
  p.ts = ts;
  p.sip = sip;
  p.dip = dip;
  p.sport = sport;
  p.dport = dport;
  p.len = 40;
  p.flags = kSyn | kAck;
  p.outbound = outbound;
  return p;
}

}  // namespace

void inject_syn_flood(const SynFloodSpec& spec, const NetworkModel& net,
                      Pcg32& rng, Trace& trace, GroundTruthLedger& ledger) {
  GroundTruthEvent ev;
  ev.kind = spec.spoofed ? EventKind::kSynFloodSpoofed
                         : EventKind::kSynFloodFixed;
  ev.label = spec.label;
  ev.start = spec.start;
  ev.end = spec.start + spec.duration;
  if (!spec.spoofed) ev.sip = spec.attacker;
  ev.dip = spec.victim_ip;
  ev.dport = spec.victim_port;
  ev.rate_pps = spec.rate_pps;
  ledger.add(ev);

  Timestamp ts = spec.start;
  const Timestamp end = spec.start + spec.duration;
  while ((ts += exp_gap_us(rng, spec.rate_pps)) < end) {
    const IPv4 sip =
        spec.spoofed ? net.sample_spoofed_source(rng) : spec.attacker;
    const auto sport = static_cast<std::uint16_t>(1024 + rng.bounded(60000));
    trace.push_back(make_syn(ts, sip, sport, spec.victim_ip, spec.victim_port,
                             /*outbound=*/false));
    if (rng.chance(spec.victim_answer_fraction)) {
      trace.push_back(make_synack(ts + 1000 + rng.bounded(50000),
                                  spec.victim_ip, spec.victim_port, sip,
                                  sport, /*outbound=*/true));
    }
  }
}

void inject_horizontal_scan(const HscanSpec& spec, const NetworkModel& net,
                            Pcg32& rng, Trace& trace,
                            GroundTruthLedger& ledger) {
  GroundTruthEvent ev;
  ev.kind = EventKind::kHorizontalScan;
  ev.label = spec.label;
  ev.start = spec.start;
  ev.end = spec.start + spec.duration;
  ev.sip = spec.attacker;
  ev.dport = spec.dport;
  ev.rate_pps = static_cast<double>(spec.num_targets) /
                (static_cast<double>(spec.duration) / kMicrosPerSecond);
  ledger.add(ev);

  // Even sweep with jitter, one SYN per target (scanners do not retransmit).
  const Timestamp gap =
      spec.num_targets > 0 ? spec.duration / spec.num_targets : spec.duration;
  Timestamp ts = spec.start;
  const bool inbound = spec.targets_internal;
  for (std::size_t i = 0; i < spec.num_targets; ++i) {
    IPv4 target;
    if (spec.targets_internal) {
      target = net.sample_internal_address(rng);
    } else {
      do {
        target = IPv4{rng.next()};
      } while (net.is_internal(target));
    }
    const auto sport = static_cast<std::uint16_t>(1024 + rng.bounded(60000));
    trace.push_back(
        make_syn(ts, spec.attacker, sport, target, spec.dport, !inbound));
    if (rng.chance(spec.open_fraction)) {
      trace.push_back(make_synack(ts + 1000 + rng.bounded(30000), target,
                                  spec.dport, spec.attacker, sport, inbound));
    }
    ts += gap > 1 ? 1 + rng.bounded(static_cast<std::uint32_t>(
                            std::min<Timestamp>(2 * gap, 0xffffffffu)))
                  : 1;
  }
}

void inject_vertical_scan(const VscanSpec& spec, const NetworkModel& net,
                          Pcg32& rng, Trace& trace,
                          GroundTruthLedger& ledger) {
  GroundTruthEvent ev;
  ev.kind = EventKind::kVerticalScan;
  ev.label = spec.label;
  ev.start = spec.start;
  ev.end = spec.start + spec.duration;
  ev.sip = spec.attacker;
  ev.dip = spec.target;
  ev.rate_pps = static_cast<double>(spec.num_ports) /
                (static_cast<double>(spec.duration) / kMicrosPerSecond);
  ledger.add(ev);

  const bool inbound = net.is_internal(spec.target);
  const Timestamp gap =
      spec.num_ports > 0 ? spec.duration / spec.num_ports : spec.duration;
  Timestamp ts = spec.start;
  for (std::size_t i = 0; i < spec.num_ports; ++i) {
    const auto dport = static_cast<std::uint16_t>(
        spec.first_port + (i % 65535));
    const auto sport = static_cast<std::uint16_t>(1024 + rng.bounded(60000));
    trace.push_back(
        make_syn(ts, spec.attacker, sport, spec.target, dport, !inbound));
    if (rng.chance(spec.open_fraction)) {
      trace.push_back(make_synack(ts + 1000 + rng.bounded(30000), spec.target,
                                  dport, spec.attacker, sport, inbound));
    }
    ts += gap > 1 ? 1 + rng.bounded(static_cast<std::uint32_t>(
                            std::min<Timestamp>(2 * gap, 0xffffffffu)))
                  : 1;
  }
}

void inject_block_scan(const BlockScanSpec& spec, const NetworkModel& net,
                       Pcg32& rng, Trace& trace, GroundTruthLedger& ledger) {
  GroundTruthEvent ev;
  ev.kind = EventKind::kBlockScan;
  ev.label = spec.label;
  ev.start = spec.start;
  ev.end = spec.start + spec.duration;
  ev.sip = spec.attacker;
  ev.rate_pps =
      static_cast<double>(spec.num_targets * spec.num_ports) /
      (static_cast<double>(spec.duration) / kMicrosPerSecond);
  ledger.add(ev);

  std::vector<IPv4> targets(spec.num_targets);
  for (auto& t : targets) t = net.sample_internal_address(rng);

  const std::size_t probes = spec.num_targets * spec.num_ports;
  const Timestamp gap = probes > 0 ? spec.duration / probes : spec.duration;
  Timestamp ts = spec.start;
  for (std::size_t pi = 0; pi < spec.num_ports; ++pi) {
    const auto dport =
        static_cast<std::uint16_t>(spec.first_port + (pi % 65535));
    for (const IPv4 target : targets) {
      const auto sport =
          static_cast<std::uint16_t>(1024 + rng.bounded(60000));
      trace.push_back(
          make_syn(ts, spec.attacker, sport, target, dport, false));
      if (rng.chance(spec.open_fraction)) {
        trace.push_back(make_synack(ts + 1000 + rng.bounded(30000), target,
                                    dport, spec.attacker, sport, true));
      }
      ts += gap > 1 ? 1 + rng.bounded(static_cast<std::uint32_t>(
                              std::min<Timestamp>(2 * gap, 0xffffffffu)))
                    : 1;
    }
  }
}

void inject_flash_crowd(const FlashCrowdSpec& spec, const NetworkModel& net,
                        Pcg32& rng, Trace& trace, GroundTruthLedger& ledger) {
  GroundTruthEvent ev;
  ev.kind = EventKind::kFlashCrowd;
  ev.label = spec.label;
  ev.start = spec.start;
  ev.end = spec.start + spec.duration;
  ev.dip = spec.service_ip;
  ev.dport = spec.service_port;
  ev.rate_pps = spec.rate_pps;
  ledger.add(ev);

  Timestamp ts = spec.start;
  const Timestamp end = spec.start + spec.duration;
  while ((ts += exp_gap_us(rng, spec.rate_pps)) < end) {
    const IPv4 client = net.sample_external_client(rng);
    const auto sport = static_cast<std::uint16_t>(1024 + rng.bounded(60000));
    trace.push_back(make_syn(ts, client, sport, spec.service_ip,
                             spec.service_port, false));
    if (rng.chance(spec.success_fraction)) {
      trace.push_back(make_synack(ts + 1000 + rng.bounded(100000),
                                  spec.service_ip, spec.service_port, client,
                                  sport, true));
    }
  }
}

void inject_misconfiguration(const MisconfigSpec& spec,
                             const NetworkModel& net, Pcg32& rng,
                             Trace& trace, GroundTruthLedger& ledger) {
  GroundTruthEvent ev;
  ev.kind = EventKind::kMisconfiguration;
  ev.label = spec.label;
  ev.start = spec.start;
  ev.end = spec.start + spec.duration;
  ev.dip = spec.dead_ip;
  ev.dport = spec.dead_port;
  ev.rate_pps = spec.rate_pps;
  ledger.add(ev);

  // A fixed cohort of real clients keeps retrying the dead endpoint; their
  // stacks retransmit, so the SYN volume is sustained and flood-like.
  std::vector<IPv4> clients(spec.num_clients);
  for (auto& c : clients) c = net.sample_external_client(rng);

  Timestamp ts = spec.start;
  const Timestamp end = spec.start + spec.duration;
  while ((ts += exp_gap_us(rng, spec.rate_pps)) < end) {
    const IPv4 client =
        clients[rng.bounded(static_cast<std::uint32_t>(clients.size()))];
    const auto sport = static_cast<std::uint16_t>(1024 + rng.bounded(60000));
    trace.push_back(
        make_syn(ts, client, sport, spec.dead_ip, spec.dead_port, false));
    // No answer, ever — and a stack retransmission 3s later.
    if (ts + 3 * kMicrosPerSecond < end) {
      trace.push_back(make_syn(ts + 3 * kMicrosPerSecond, client, sport,
                               spec.dead_ip, spec.dead_port, false));
    }
  }
}

}  // namespace hifind
