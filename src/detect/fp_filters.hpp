// False-positive reduction heuristics for SYN-flooding alerts (paper
// Sec. 3.4). Three independent, individually-testable filters:
//
//  * RatioFilter — bursty congestion or server brown-outs leave *some*
//    SYN/ACKs flowing; a flood leaves (almost) none. Requires
//    #SYN >= min_ratio * #SYN/ACK for the victim key, reconstructed from the
//    OS({DIP,Dport}, #SYN) sketch and the RS #SYN−#SYN/ACK estimate.
//  * PersistenceFilter — "attacks may last some time": the same victim key
//    must stay anomalous for at least `min_intervals` consecutive intervals.
//  * ActiveServiceFilter — misconfigurations (stale DNS, dead hosts) produce
//    unanswered SYNs to services that have *never* answered anyone. A real
//    DoS targets a live service. The filter keeps a cumulative (never-reset)
//    k-ary sketch of #SYN/ACK per {DIP,Dport}; keys whose service has no
//    lifetime SYN/ACK history are dropped. Sketch-backed, so the filter
//    itself stays DoS-resilient (fixed memory).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sketch/kary_sketch.hpp"

namespace hifind {

/// SYN-to-SYN/ACK ratio test for one victim key.
class RatioFilter {
 public:
  /// @param min_ratio  keep the alert only if syn >= min_ratio * synack.
  explicit RatioFilter(double min_ratio = 3.0) : min_ratio_(min_ratio) {}

  /// @param syn_count     estimated #SYN to the victim this interval.
  /// @param unresponded   estimated #SYN − #SYN/ACK (the alert magnitude).
  bool keep(double syn_count, double unresponded) const {
    const double synack = syn_count - unresponded;
    if (synack <= 0) return true;  // nothing answered: flood-consistent
    return syn_count >= min_ratio_ * synack;
  }

 private:
  double min_ratio_;
};

/// Consecutive-interval persistence test, keyed by packed victim key.
class PersistenceFilter {
 public:
  explicit PersistenceFilter(std::uint32_t min_intervals = 2)
      : min_intervals_(min_intervals) {}

  /// Reports the keys anomalous *this* interval; returns, via keep(),
  /// whether each has now persisted long enough. Call once per interval.
  void begin_interval();

  /// Marks `key` anomalous this interval and returns true if its run length
  /// (including this interval) reaches the minimum.
  bool observe(std::uint64_t key);

  /// Drops run-length state for keys not observed this interval.
  void end_interval();

  std::uint32_t min_intervals() const { return min_intervals_; }

 private:
  std::uint32_t min_intervals_;
  std::unordered_map<std::uint64_t, std::uint32_t> runs_;
  std::unordered_map<std::uint64_t, std::uint32_t> current_;
};

/// Lifetime service-activity memory backed by a k-ary sketch.
class ActiveServiceFilter {
 public:
  /// @param min_history  minimum lifetime #SYN/ACK estimate for a service to
  ///                     count as alive (0.5 tolerates sketch noise).
  explicit ActiveServiceFilter(const KarySketchConfig& config,
                               double min_history = 0.5)
      : history_(config), min_history_(min_history) {}

  /// Feed every observed SYN/ACK's {DIP,Dport} key (cumulative; never reset).
  void record_synack(std::uint64_t dip_dport_key) {
    history_.update(dip_dport_key, 1.0);
  }

  /// True if the victim service has ever completed a handshake.
  bool keep(std::uint64_t dip_dport_key) const {
    return history_.estimate(dip_dport_key) >= min_history_;
  }

  const KarySketch& history() const { return history_; }

 private:
  KarySketch history_;
  double min_history_;
};

}  // namespace hifind
