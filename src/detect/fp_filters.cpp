#include "detect/fp_filters.hpp"

namespace hifind {

void PersistenceFilter::begin_interval() { current_.clear(); }

bool PersistenceFilter::observe(std::uint64_t key) {
  const auto it = runs_.find(key);
  const std::uint32_t run = (it == runs_.end() ? 0 : it->second) + 1;
  current_[key] = run;
  return run >= min_intervals_;
}

void PersistenceFilter::end_interval() { runs_ = current_; }

}  // namespace hifind
