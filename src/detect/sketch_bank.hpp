// SketchBank: the complete data-recording state of one HiFIND monitor.
//
// Exactly the paper's Sec. 5.1 inventory:
//   - three reversible sketches — RS({SIP,Dport}), RS({DIP,Dport}),
//     RS({SIP,DIP}) — recording #SYN − #SYN/ACK,
//   - three paired verification sketches,
//   - one original (k-ary) sketch OS({DIP,Dport}) recording #SYN,
//   - two 2D sketches: {SIP,DIP} x {Dport} and {SIP,Dport} x {DIP}.
//
// The bank is the unit of distribution: each router records into its own
// bank, banks are linearly COMBINEd at a central site (router/aggregator),
// and the detector consumes one (possibly combined) bank per interval.
#pragma once

#include <cstdint>
#include <span>

#include "packet/packet.hpp"
#include "sketch/kary_sketch.hpp"
#include "sketch/sketch2d.hpp"
#include "sketch/sketch_backend.hpp"

namespace hifind {

class TaskPool;

/// Shapes for every sketch in a bank. Defaults are the paper's Sec. 5.1
/// parameters (H=6 stages RS/OS, H=5 2D, 2^12/2^16/2^14 buckets).
/// `backend` selects the invertible-sketch implementation behind the three
/// per-key-space sketches: the reference reversible backend uses the
/// rs48/rs64 shapes, the compact invertible backend the ci48/ci64 shapes
/// (fewer stages, bucket-embedded key material — see sketch_backend.hpp).
struct SketchBankConfig {
  std::uint64_t seed{42};  ///< master seed; per-sketch seeds derive from it

  ReversibleSketchConfig rs48{.key_bits = 48,
                              .num_stages = 6,
                              .bucket_bits = 12,
                              .seed = 0};  // seed filled from master
  ReversibleSketchConfig rs64{.key_bits = 64,
                              .num_stages = 6,
                              .bucket_bits = 16,
                              .seed = 0};
  KarySketchConfig verification{.num_stages = 6,
                                .num_buckets = 1u << 14,
                                .seed = 0};
  KarySketchConfig original{.num_stages = 6, .num_buckets = 1u << 14,
                            .seed = 0};
  Sketch2dConfig twod{.num_stages = 5,
                      .x_buckets = 1u << 12,
                      .y_buckets = 64,
                      .seed = 0};
  SketchBackendKind backend{SketchBackendKind::kReversible};
  CompactInvertibleConfig ci48{.key_bits = 48,
                               .num_stages = 3,
                               .bucket_bits = 12,
                               .seed = 0};
  CompactInvertibleConfig ci64{.key_bits = 64,
                               .num_stages = 3,
                               .bucket_bits = 12,
                               .seed = 0};

  bool operator==(const SketchBankConfig&) const = default;
};

class SketchBank {
 public:
  explicit SketchBank(const SketchBankConfig& config);

  /// Records one packet into every sketch: SYN => +weight, SYN/ACK =>
  /// -weight at the connection's initiator-oriented keys; other packets are
  /// ignored (but still cheap to feed — the common case on a real link).
  /// `weight` supports sampled deployments: recording every admitted packet
  /// with weight 1/rate keeps the counters unbiased (see
  /// bench/ablation_sampling for what sampling costs in detection power).
  void record(const PacketRecord& p, double weight = 1.0);

  /// Sketch-group selectors for record_masked (parallel recording, paper
  /// Sec. 5.5.3: one thread per sketch group). Groups partition the bank:
  /// two record_masked calls with DISJOINT masks touch disjoint state and
  /// are safe to run concurrently. kGroupMeta owns packets_recorded_.
  enum SketchGroup : unsigned {
    kGroupRsSipDport = 1u << 0,
    kGroupRsDipDport = 1u << 1,
    kGroupRsSipDip = 1u << 2,
    kGroupVerification = 1u << 3,  ///< all three verification sketches
    kGroupOsAndHistory = 1u << 4,  ///< OS + lifetime SYN/ACK history
    kGroupTwoD = 1u << 5,          ///< both 2D sketches
    kGroupMeta = 1u << 6,          ///< packets_recorded_ counter
    kGroupAll = (1u << 7) - 1,
  };
  static constexpr unsigned kNumSketchGroups = 7;

  /// record(), restricted to the sketch groups in `mask`. record(p, w) is
  /// exactly record_masked(p, kGroupAll, w).
  void record_masked(const PacketRecord& p, unsigned mask,
                     double weight = 1.0);

  /// Applies one precomputed RecordOp to the sketch groups in `mask`.
  /// record_masked(p, mask, w) is make_record_op(p, w, op) + record_op(op,
  /// mask); the split lets a producer classify/extract once for many
  /// consumers (parallel recording, paper Sec. 5.5.3).
  void record_op(const RecordOp& op, unsigned mask);

  /// Applies a batch of RecordOps to the sketch groups in `mask`, feeding
  /// each sketch through its prefetched update_batch path. Final bank state
  /// is BIT-IDENTICAL to record_op per op in order: every sketch sees the
  /// same deltas in the same sequence.
  void record_ops(std::span<const RecordOp> ops, unsigned mask);

  /// Resets per-interval counters for the next interval; hash families and
  /// the cumulative service-activity history persist.
  void clear();

  /// Resets everything including lifetime history (trace restart).
  void reset_all();

  /// Overwrites this bank's cumulative SYN/ACK service history with a
  /// bit-exact copy of `other`'s. The double-buffered pipeline
  /// (detect/overlapped.hpp) alternates between two bank generations, so
  /// each generation only witnesses every other interval; syncing at the
  /// generation swap keeps the lifetime history — the one piece of bank
  /// state that outlives clear() — identical to what a single-bank serial
  /// deployment would carry, which is what keeps the misconfiguration
  /// filter's decisions (and therefore the alerts) bit-identical.
  void sync_history_from(const SketchBank& other);

  bool combinable_with(const SketchBank& other) const {
    return config_ == other.config_;
  }

  /// this += coeff * other, across every sketch. Shape-checked.
  void accumulate(const SketchBank& other, double coeff = 1.0);

  /// COMBINE over banks (aggregated detection, paper Sec. 3.1).
  static SketchBank combine(
      std::span<const std::pair<double, const SketchBank*>> terms);

  /// Destination-reuse COMBINE: this = sum ci*Bi across every sketch
  /// (including the lifetime SYN/ACK history) plus summed packet counts,
  /// reusing this bank's counter arrays — no sketch construction, no
  /// allocation. `this` may appear only as the FIRST term; every term must
  /// be combinable_with(*this).
  void combine_into(
      std::span<const std::pair<double, const SketchBank*>> terms);

  /// Hard cap on shard replicas one merge accepts; lets the seal-time
  /// reduction stage terms in fixed stack arrays.
  static constexpr std::size_t kMaxShards = 32;

  /// Seal-time shard reduction for shared-nothing recording: overwrites
  /// every PER-INTERVAL sketch of this bank with the sum over `shards`
  /// (combine_into, destination-reuse), ADDS the shards' SYN/ACK-history
  /// deltas into this bank's cumulative history, and replaces
  /// packets_recorded with the shard total. Shards hold exactly one
  /// interval's worth of state (they are reset after every merge), so after
  /// this call the bank is state-equivalent to a single serially reused
  /// bank that recorded the whole stream — by COMBINE linearity the merge
  /// is exact, and for unit/power-of-two op weights (all deltas ±w with
  /// w = 2^k) every partial sum is exactly representable, making the merged
  /// counters BIT-IDENTICAL to serial recording at any shard count.
  ///
  /// The ten per-sketch reductions are independent and run as tasks on
  /// `pool` (nullptr or an inline pool = sequential); per-sketch fan-out
  /// beats a bank-level pairwise tree here because it mutates no shard and
  /// needs no level barriers. Throws std::invalid_argument on shape
  /// mismatch, empty input, or more than kMaxShards shards.
  void merge_shards(std::span<const SketchBank* const> shards,
                    TaskPool* pool = nullptr);

  const SketchBankConfig& config() const { return config_; }

  const InvertibleSketch& rs_sip_dport() const { return rs_sip_dport_; }
  const InvertibleSketch& rs_dip_dport() const { return rs_dip_dport_; }
  const InvertibleSketch& rs_sip_dip() const { return rs_sip_dip_; }
  const KarySketch& verif_sip_dport() const { return verif_sip_dport_; }
  const KarySketch& verif_dip_dport() const { return verif_dip_dport_; }
  const KarySketch& verif_sip_dip() const { return verif_sip_dip_; }
  const KarySketch& os_dip_dport() const { return os_dip_dport_; }
  const TwoDSketch& twod_sipdip_dport() const { return twod_sipdip_dport_; }
  const TwoDSketch& twod_sipdport_dip() const { return twod_sipdport_dip_; }

  /// Cumulative lifetime #SYN/ACK per {DIP,Dport} — never cleared by
  /// clear(); backs the misconfiguration (active-service) filter.
  const KarySketch& synack_history() const { return synack_history_; }

  /// Total counter memory across all sketches (actual, 8-byte counters).
  std::size_t memory_bytes() const;
  /// Counter memory with the paper's 32-bit hardware counters; this is the
  /// number comparable to the paper's "13.2MB".
  std::size_t memory_bytes_hw() const;

  /// Counter memory accesses one recorded SYN/SYN-ACK performs across all
  /// sketches (paper Sec. 5.5.2 accounting).
  std::size_t accesses_per_packet() const;

  /// Best-effort NUMA binding of every sketch's counter array to `node`
  /// (mem::bind_to_node over the ten counter spans; already-touched pages
  /// migrate). Returns the number of ranges the kernel accepted — 0 when
  /// NUMA placement is unavailable or disabled, which callers treat as
  /// telemetry, not failure. The sharded recorder calls this from each
  /// worker with the worker's own node, so shard replicas live local to the
  /// core that writes them.
  std::size_t bind_memory_to_node(int node);

  std::uint64_t packets_recorded() const { return packets_recorded_; }

 private:
  friend class SketchBankWire;  // serialization (detect/sketch_wire.cpp)

  SketchBankConfig config_;
  InvertibleSketch rs_sip_dport_;
  InvertibleSketch rs_dip_dport_;
  InvertibleSketch rs_sip_dip_;
  KarySketch verif_sip_dport_;
  KarySketch verif_dip_dport_;
  KarySketch verif_sip_dip_;
  KarySketch os_dip_dport_;
  TwoDSketch twod_sipdip_dport_;
  TwoDSketch twod_sipdport_dip_;
  KarySketch synack_history_;
  std::uint64_t packets_recorded_{0};
};

}  // namespace hifind
