#include "detect/overload_injector.hpp"

#include "common/rng.hpp"

namespace hifind {
namespace {

PacketRecord syn(Timestamp ts, IPv4 sip, IPv4 dip, std::uint16_t dport,
                 std::uint16_t sport) {
  PacketRecord p;
  p.ts = ts;
  p.sip = sip;
  p.dip = dip;
  p.sport = sport;
  p.dport = dport;
  p.flags = kSyn;
  return p;
}

PacketRecord synack(Timestamp ts, IPv4 server, std::uint16_t service_port,
                    IPv4 client, std::uint16_t client_port) {
  PacketRecord p;
  p.ts = ts;
  p.sip = server;
  p.dip = client;
  p.sport = service_port;
  p.dport = client_port;
  p.flags = kSyn | kAck;
  p.outbound = true;
  return p;
}

}  // namespace

const char* overload_scenario_name(OverloadScenarioConfig::Kind kind) {
  switch (kind) {
    case OverloadScenarioConfig::Kind::kBurstBeyondRings:
      return "burst-beyond-rings";
    case OverloadScenarioConfig::Kind::kSlowConsumerEpochs:
      return "slow-consumer-epochs";
    case OverloadScenarioConfig::Kind::kShedRestoreCycles:
      return "shed-restore-cycles";
  }
  return "unknown";
}

OverloadInjector::OverloadInjector(const OverloadScenarioConfig& config)
    : config_(config) {}

std::uint64_t OverloadInjector::attack_syns_for_interval(
    std::uint64_t i) const {
  const auto burst = static_cast<std::uint64_t>(
      config_.burst_ring_factor *
      static_cast<double>(config_.ring_capacity));
  switch (config_.kind) {
    case OverloadScenarioConfig::Kind::kBurstBeyondRings:
      // Interval 0 is benign-only so forecasters have a baseline to flag
      // the burst against; every later interval is the sustained attack.
      return i == 0 ? 0 : burst;
    case OverloadScenarioConfig::Kind::kSlowConsumerEpochs:
      // Moderate steady load: the fault here is the slow EPOCH (injected
      // via the pipeline config), not the traffic volume.
      return static_cast<std::uint64_t>(config_.ring_capacity) / 2;
    case OverloadScenarioConfig::Kind::kShedRestoreCycles:
      // heavy,heavy,quiet,quiet,... after a benign warm-up interval: two
      // bursts escalate the level, two quiet intervals let the seal-time
      // hysteresis restore it.
      if (i == 0) return 0;
      return ((i - 1) % 4) < 2 ? burst : 0;
  }
  return 0;
}

OverloadRun OverloadInjector::run(OverlappedPipeline& pipe) {
  OverloadRun out;
  out.intervals.reserve(config_.intervals);
  Pcg32 rng(config_.seed, 0x1e57 + static_cast<std::uint64_t>(config_.kind));
  const IPv4 service(192, 168, 7, 7);
  for (std::uint64_t i = 0; i < config_.intervals; ++i) {
    const auto ts = static_cast<Timestamp>(i);
    for (int h = 0; h < config_.benign_handshakes; ++h) {
      const IPv4 client(10, 0, static_cast<std::uint8_t>(h >> 8),
                        static_cast<std::uint8_t>(h & 0xFF));
      const auto sport = static_cast<std::uint16_t>(30000 + (h % 20000));
      pipe.offer(syn(ts, client, service, 443, sport));
      pipe.offer(synack(ts, service, 443, client, sport));
      // The flood victim runs a LIVE service (some handshakes complete), so
      // phase 3's dead-service heuristic keeps its flood alert — the
      // scenario tests overload handling, not misconfiguration filtering.
      if (h < config_.benign_handshakes / 4) {
        pipe.offer(syn(ts, client, config_.victim, config_.victim_port,
                       sport));
        pipe.offer(synack(ts, config_.victim, config_.victim_port, client,
                          sport));
      }
    }
    const std::uint64_t attack = attack_syns_for_interval(i);
    for (std::uint64_t a = 0; a < attack; ++a) {
      pipe.offer(syn(ts, IPv4{rng.next()}, config_.victim,
                     config_.victim_port,
                     static_cast<std::uint16_t>(1024 + (a % 60000))));
    }
    const std::uint64_t stall_before = pipe.close_stall_us();
    pipe.close_interval();
    OverloadIntervalStats stats;
    stats.interval = i;
    stats.attack_syns = attack;
    stats.close_stall_us = pipe.close_stall_us() - stall_before;
    stats.shed_level_after = pipe.shed_level();
    out.intervals.push_back(stats);
  }
  pipe.wait_epoch_idle();
  out.results = pipe.take_results();
  out.total_close_stall_us = pipe.close_stall_us();
  return out;
}

}  // namespace hifind
