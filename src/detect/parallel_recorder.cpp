#include "detect/parallel_recorder.hpp"

#include <algorithm>

namespace hifind {

ParallelRecorder::ParallelRecorder(SketchBank& bank, unsigned num_threads)
    : bank_(bank) {
  const unsigned n = std::clamp(num_threads, 1u,
                                SketchBank::kNumSketchGroups);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Deal the sketch groups round-robin across workers; masks are disjoint,
  // so concurrent record_masked calls touch disjoint bank state.
  for (unsigned g = 0; g < SketchBank::kNumSketchGroups; ++g) {
    workers_[g % n]->mask |= 1u << g;
  }
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { run_worker(*worker); });
  }
  batch_.reserve(kBatchSize);
}

ParallelRecorder::~ParallelRecorder() {
  drain();
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->stop = true;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ParallelRecorder::offer(const PacketRecord& p) {
  batch_.push_back(p);
  if (batch_.size() >= kBatchSize) flush_batch();
}

void ParallelRecorder::flush_batch() {
  if (batch_.empty()) return;
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    w->queue.insert(w->queue.end(), batch_.begin(), batch_.end());
    w->idle = false;
    w->cv.notify_all();
  }
  batch_.clear();
}

void ParallelRecorder::drain() {
  flush_batch();
  for (auto& w : workers_) {
    std::unique_lock<std::mutex> lock(w->mu);
    w->cv.wait(lock, [&w] { return w->idle && w->queue.empty(); });
  }
}

void ParallelRecorder::run_worker(Worker& w) {
  std::vector<PacketRecord> local;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait(lock, [&w] { return w.stop || !w.queue.empty(); });
      if (w.queue.empty()) {
        if (w.stop) return;
        continue;
      }
      local.swap(w.queue);
    }
    for (const PacketRecord& p : local) {
      bank_.record_masked(p, w.mask);
    }
    local.clear();
    {
      std::lock_guard<std::mutex> lock(w.mu);
      if (w.queue.empty()) {
        w.idle = true;
        w.cv.notify_all();
      }
    }
  }
}

}  // namespace hifind
