#include "detect/parallel_recorder.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <thread>

#include "common/mem_policy.hpp"

namespace hifind {
namespace {

/// One step of spin-then-yield backoff. A few pause iterations cover the
/// common "other side is about to make progress" window on multi-core
/// machines; past that we yield so oversubscribed configurations (more
/// threads than cores) keep making progress instead of burning the quantum.
inline void backoff(unsigned& spins) {
  if (spins < 16) {
    ++spins;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
  } else {
    std::this_thread::yield();
  }
}

/// Producer-side backoff while a ring is FULL. Unlike the idle-poll
/// backoff above, this one must bound the producer's burn when a consumer
/// is wedged or descheduled for a long time (the drain() escalation's
/// producer twin): pause-spins for the common about-to-drain window, yields
/// for oversubscription, then 50 us sleeps — a stalled publish costs
/// (bounded) latency, never a spinning core.
inline void publish_backoff(unsigned& spins) {
  constexpr unsigned kPauseBudget = 16;
  constexpr unsigned kYieldBudget = 1024;
  if (spins < kPauseBudget) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
  } else if (spins < kPauseBudget + kYieldBudget) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  ++spins;
}

}  // namespace

ParallelRecorder::ParallelRecorder(SketchBank& bank, unsigned num_threads,
                                   std::size_t ring_capacity)
    : bank_(&bank),
      capacity_(std::bit_ceil(std::max<std::size_t>(ring_capacity, 2))) {
  const unsigned n = std::clamp(num_threads, 1u,
                                SketchBank::kNumSketchGroups);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>(capacity_));
  }
  // Deal the sketch groups round-robin across workers; masks are disjoint,
  // so concurrent record_ops calls touch disjoint bank state.
  for (unsigned g = 0; g < SketchBank::kNumSketchGroups; ++g) {
    workers_[g % n]->group_mask |= 1u << g;
  }
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { run_worker(*worker); });
  }
  pending_.reserve(kProducerBatch);
  ring_full_.assign(workers_.size(), 0);
  ring_full_snapshot_.assign(workers_.size(), 0);
}

ParallelRecorder::~ParallelRecorder() {
  drain();
  for (auto& w : workers_) {
    w->stop.store(true, std::memory_order_release);
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ParallelRecorder::offer(const PacketRecord& p, double weight) {
  RecordOp op;
  if (!make_record_op(p, weight, op)) return;  // shared extraction, done once
  offer_op(op);
}

void ParallelRecorder::offer_op(const RecordOp& op) {
  pending_.push_back(op);
  if (pending_.size() >= kProducerBatch) flush_pending();
}

void ParallelRecorder::flush_pending() {
  if (pending_.empty()) return;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    publish(*workers_[i], i, pending_.data(), pending_.size());
  }
  pending_.clear();
}

void ParallelRecorder::publish(Worker& w, std::size_t idx,
                               const RecordOp* ops, std::size_t n) {
  const std::size_t mask = capacity_ - 1;
  std::size_t tail = w.tail.load(std::memory_order_relaxed);  // we own tail
  std::size_t pushed = 0;
  unsigned spins = 0;
  while (pushed < n) {
    const std::size_t head = w.head.load(std::memory_order_acquire);
    const std::size_t space = capacity_ - (tail - head);
    if (space == 0) {
      if (spins == 0) ++ring_full_[idx];  // one count per full-ring episode
      publish_backoff(spins);
      continue;
    }
    spins = 0;
    const std::size_t take = std::min(space, n - pushed);
    for (std::size_t i = 0; i < take; ++i) {
      w.slots[(tail + i) & mask] = ops[pushed + i];
    }
    tail += take;
    pushed += take;
    w.tail.store(tail, std::memory_order_release);
  }
}

void ParallelRecorder::drain() {
  // Spin budget before escalating: pause-spins cover the "worker is mid
  // batch" window, yields cover oversubscription; past both we sleep so a
  // wedged worker cannot make drain() burn a core indefinitely.
  constexpr unsigned kSpinBudget = 256;
  constexpr unsigned kYieldBudget = 1024;
  flush_pending();
  for (auto& w : workers_) {
    unsigned spins = 0;
    // head == tail means every published op has been APPLIED (workers only
    // advance head after record_ops returns), so this is a full barrier.
    const std::size_t tail = w->tail.load(std::memory_order_relaxed);
    while (w->head.load(std::memory_order_acquire) != tail) {
      if (spins < kSpinBudget) {
        ++spins;
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("yield");
#endif
      } else if (spins < kSpinBudget + kYieldBudget) {
        ++spins;
        drain_spin_yields_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      } else {
        drain_spin_yields_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  }
}

void ParallelRecorder::rebind(SketchBank& bank) {
  drain();  // every op already offered lands in the OLD bank
  bank_.store(&bank, std::memory_order_relaxed);
}

std::uint64_t ParallelRecorder::ring_full_spins() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : ring_full_) total += c;
  return total;
}

std::vector<std::uint64_t> ParallelRecorder::take_ring_full_spins() {
  std::vector<std::uint64_t> out(ring_full_.size());
  for (std::size_t i = 0; i < ring_full_.size(); ++i) {
    out[i] = ring_full_[i] - ring_full_snapshot_[i];
    ring_full_snapshot_[i] = ring_full_[i];
  }
  return out;
}

double ParallelRecorder::producer_backlog() const {
  std::size_t worst = 0;
  for (const auto& w : workers_) {
    const std::size_t tail = w->tail.load(std::memory_order_relaxed);
    const std::size_t head = w->head.load(std::memory_order_acquire);
    worst = std::max(worst, tail - head);
  }
  return static_cast<double>(worst) / static_cast<double>(capacity_);
}

// ---------------------------------------------------------------------------
// ShardedRecorder

ShardedRecorder::ShardedRecorder(std::span<SketchBank* const> shards,
                                 std::size_t ring_capacity)
    : capacity_(std::bit_ceil(std::max<std::size_t>(ring_capacity, 2))) {
  if (shards.empty() || shards.size() > SketchBank::kMaxShards) {
    throw std::invalid_argument(
        "ShardedRecorder: shard count must be in [1, SketchBank::kMaxShards]");
  }
  shards_.reserve(shards.size());
  for (SketchBank* bank : shards) {
    auto shard = std::make_unique<Shard>(capacity_);
    shard->index = shards_.size();
    shard->bank.store(bank, std::memory_order_relaxed);
    shards_.push_back(std::move(shard));
  }
  shard_ops_snapshot_.assign(shards_.size(), 0);
  ring_full_.assign(shards_.size(), 0);
  ring_full_snapshot_.assign(shards_.size(), 0);
  for (auto& s : shards_) {
    s->thread = std::thread([this, shard = s.get()] { run_worker(*shard); });
  }
  pending_.reserve(kProducerBatch);
}

ShardedRecorder::~ShardedRecorder() {
  drain();
  for (auto& s : shards_) {
    s->stop.store(true, std::memory_order_release);
  }
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
}

void ShardedRecorder::offer(const PacketRecord& p, double weight) {
  RecordOp op;
  if (!make_record_op(p, weight, op)) return;  // shared extraction, done once
  offer_op(op);
}

void ShardedRecorder::offer_op(const RecordOp& op) {
  pending_.push_back(op);
  if (pending_.size() >= kProducerBatch) flush_pending();
}

void ShardedRecorder::flush_pending() {
  if (pending_.empty()) return;
  // Whole batch to ONE shard, shards dealt round-robin: each op is copied
  // exactly once (the shared-bank recorder pays one ring copy per worker),
  // and batch granularity keeps the consumer on the prefetched
  // record_ops path. The deal-out is a pure function of the offer/drain
  // sequence, so shard contents are reproducible run to run.
  publish(*shards_[next_shard_], next_shard_, pending_.data(),
          pending_.size());
  next_shard_ = (next_shard_ + 1) % shards_.size();
  pending_.clear();
}

void ShardedRecorder::publish(Shard& s, std::size_t idx, const RecordOp* ops,
                              std::size_t n) {
  const std::size_t mask = capacity_ - 1;
  std::size_t tail = s.tail.load(std::memory_order_relaxed);  // we own tail
  std::size_t pushed = 0;
  unsigned spins = 0;
  while (pushed < n) {
    const std::size_t head = s.head.load(std::memory_order_acquire);
    const std::size_t space = capacity_ - (tail - head);
    if (space == 0) {
      if (spins == 0) ++ring_full_[idx];  // one count per full-ring episode
      publish_backoff(spins);
      continue;
    }
    spins = 0;
    const std::size_t take = std::min(space, n - pushed);
    for (std::size_t i = 0; i < take; ++i) {
      s.slots[(tail + i) & mask] = ops[pushed + i];
    }
    tail += take;
    pushed += take;
    s.tail.store(tail, std::memory_order_release);
  }
}

void ShardedRecorder::drain() {
  constexpr unsigned kSpinBudget = 256;
  constexpr unsigned kYieldBudget = 1024;
  flush_pending();
  for (auto& s : shards_) {
    unsigned spins = 0;
    // head == tail means every published op has been APPLIED to the shard's
    // private bank (the worker advances head only after record_ops).
    const std::size_t tail = s->tail.load(std::memory_order_relaxed);
    while (s->head.load(std::memory_order_acquire) != tail) {
      if (spins < kSpinBudget) {
        ++spins;
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("yield");
#endif
      } else if (spins < kSpinBudget + kYieldBudget) {
        ++spins;
        drain_spin_yields_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      } else {
        drain_spin_yields_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  }
}

void ShardedRecorder::rebind(std::span<SketchBank* const> shards) {
  if (shards.size() != shards_.size()) {
    throw std::invalid_argument(
        "ShardedRecorder::rebind: shard count must match construction");
  }
  drain();  // every op already offered lands in the OLD generation
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->bank.store(shards[i], std::memory_order_relaxed);
  }
}

std::uint64_t ShardedRecorder::ring_full_spins() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : ring_full_) total += c;
  return total;
}

std::vector<std::uint64_t> ShardedRecorder::take_ring_full_spins() {
  std::vector<std::uint64_t> out(ring_full_.size());
  for (std::size_t i = 0; i < ring_full_.size(); ++i) {
    out[i] = ring_full_[i] - ring_full_snapshot_[i];
    ring_full_snapshot_[i] = ring_full_[i];
  }
  return out;
}

double ShardedRecorder::producer_backlog() const {
  std::size_t worst = 0;
  for (const auto& s : shards_) {
    const std::size_t tail = s->tail.load(std::memory_order_relaxed);
    const std::size_t head = s->head.load(std::memory_order_acquire);
    worst = std::max(worst, tail - head);
  }
  return static_cast<double>(worst) / static_cast<double>(capacity_);
}

std::vector<std::uint64_t> ShardedRecorder::take_shard_ops() {
  std::vector<std::uint64_t> out(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::uint64_t applied =
        shards_[i]->ops_applied.load(std::memory_order_relaxed);
    out[i] = applied - shard_ops_snapshot_[i];
    shard_ops_snapshot_[i] = applied;
  }
  return out;
}

void ShardedRecorder::run_worker(Shard& s) {
  // Optional core pinning (HIFIND_PIN_CORES=1): worker i sticks to core
  // i % ncpu, so the replica's NUMA binding below stays meaningful — an
  // unpinned worker the scheduler migrates across sockets would leave its
  // counters on the old node.
  static const bool pin_cores = [] {
    const char* v = std::getenv("HIFIND_PIN_CORES");
    return v != nullptr && v[0] == '1';
  }();
  if (pin_cores) {
    const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
    mem::pin_current_thread_to_cpu(static_cast<int>(s.index % ncpu));
  }
  // The bank this worker last NUMA-bound. Generations alternate between two
  // banks, so the pointer changes at every seal; re-binding an already-local
  // bank is a cheap no-op, and binding the incoming generation migrates any
  // pages first-touched elsewhere to this worker's node.
  SketchBank* numa_bound = nullptr;
  const std::size_t mask = capacity_ - 1;
  unsigned spins = 0;
  std::size_t head = s.head.load(std::memory_order_relaxed);  // we own head
  for (;;) {
    const std::size_t tail = s.tail.load(std::memory_order_acquire);
    if (head == tail) {
      if (s.stop.load(std::memory_order_acquire) &&
          s.tail.load(std::memory_order_acquire) == head) {
        return;
      }
      backoff(spins);
      continue;
    }
    spins = 0;
    // The tail acquire publishes any rebind() that preceded these ops (the
    // rebind store happens on the producer thread before the next
    // publish()'s tail release).
    SketchBank* bank = s.bank.load(std::memory_order_relaxed);
    if (bank != numa_bound) {
      if (mem::numa_enabled()) {
        const int node = mem::current_node();
        if (node >= 0) bank->bind_memory_to_node(node);
      }
      numa_bound = bank;
    }
    while (head != tail) {
      const std::size_t i = head & mask;
      const std::size_t run = std::min(tail - head, capacity_ - i);
      // Full-bank update, plain stores: this bank belongs to this worker
      // alone until the seal's drain/rebind barrier hands it to the merge.
      bank->record_ops(std::span<const RecordOp>(&s.slots[i], run),
                       SketchBank::kGroupAll);
      s.ops_applied.fetch_add(run, std::memory_order_relaxed);
      head += run;
      s.head.store(head, std::memory_order_release);
    }
  }
}

void ParallelRecorder::run_worker(Worker& w) {
  const std::size_t mask = capacity_ - 1;
  unsigned spins = 0;
  std::size_t head = w.head.load(std::memory_order_relaxed);  // we own head
  for (;;) {
    const std::size_t tail = w.tail.load(std::memory_order_acquire);
    if (head == tail) {
      if (w.stop.load(std::memory_order_acquire) &&
          w.tail.load(std::memory_order_acquire) == head) {
        return;
      }
      backoff(spins);
      continue;
    }
    spins = 0;
    // The tail acquire above also publishes any rebind() that preceded the
    // ops: rebind() stores the pointer on the producer thread before the
    // next publish()'s tail release, so this load always names the bank the
    // producer intended for this run.
    SketchBank* bank = bank_.load(std::memory_order_relaxed);
    // Consume the published run in at most two contiguous pieces (the run
    // may wrap the ring's physical end), applying straight from the slots.
    while (head != tail) {
      const std::size_t i = head & mask;
      const std::size_t run = std::min(tail - head, capacity_ - i);
      bank->record_ops(std::span<const RecordOp>(&w.slots[i], run),
                       w.group_mask);
      head += run;
      w.head.store(head, std::memory_order_release);
    }
  }
}

}  // namespace hifind
