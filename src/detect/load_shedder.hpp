// Adaptive load shedding for the ingest path (the system's answer to
// "what happens at 2x line rate").
//
// When traffic outruns the recording budget, the shedder degrades to
// DETERMINISTIC hash-based flow sampling at power-of-two rates: at shed
// level k, a recordable op is admitted iff the low k bits of
// mix64(k_sip_dip ^ seed) are zero — a nested family of 2^-k samples
// (level k+1 admits a subset of level k), which is Azzana et al.'s
// sampling-rate adaptation (arXiv:0901.4846) specialized to flows. Keying
// on the packed {SIP,DIP} pair matters twice over:
//
//  - extract_key() reflects SYN/ACK direction, so a SYN and the SYN/ACK
//    answering it hash identically — a sampled flow is sampled in BOTH
//    directions, and the #SYN − #SYN/ACK signal stays unbiased instead of
//    manufacturing phantom un-responded SYNs;
//  - a spoofed flood spreads over random {SIP,DIP} flows, so its victim's
//    aggregated keys ({DIP,Dport} etc.) retain a 2^-k fraction of the
//    attack — rescaling recovers the magnitude.
//
// Admitted ops are recorded with weight 2^k (Horvitz–Thompson inverse
// probability), which bakes the 1/coverage rescale of degraded-mode
// detection (router/collector.hpp) into the counters themselves — exactly
// right even when the level changes mid-interval, where one end-of-interval
// scalar rescale could not be. Because every weight is a power of two, all
// partial sums stay exactly representable and the sharded seal merge keeps
// its BIT-identity contract (SketchBank::merge_shards).
//
// Two escalation triggers:
//
//  - recording budget (deterministic): the level for the n-th recordable op
//    of an interval is a pure function of n and the config — it steps up
//    each time the offered count crosses budget << level. Combined with the
//    deterministic admit test, the admitted weighted op multiset is a pure
//    function of (packet stream, config): alerts are bit-identical at any
//    shard count, ring size, or host speed. This is the default and the
//    only trigger the determinism tests enable.
//  - ring occupancy (best-effort): note_ring_pressure() escalates when the
//    producer observes a ring above the high watermark. Timing-coupled by
//    nature — the admitted SET depends on consumer scheduling — but every
//    rate is still a power of two and inline-weighted, so counters remain
//    unbiased; only reproducibility is traded. Off by default.
//
// The level decays by restore_levels_per_interval at each seal, so a burst
// sheds immediately but coverage is restored one octave per quiet interval
// (shed/restore cycles, exercised by detect/overload_injector.hpp).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/hash.hpp"
#include "packet/packet.hpp"

namespace hifind {

struct LoadShedderConfig {
  /// Recordable ops per interval before shedding starts; the level then
  /// escalates at budget<<1, budget<<2, ... 0 disables the budget trigger.
  std::uint64_t budget_ops_per_interval{0};
  /// Deepest shed level (rate 2^-max_level); min_coverage() is the floor
  /// the CI soak gate asserts against.
  std::uint32_t max_level{6};
  /// Seal-time hysteresis: levels restored per interval once pressure ends.
  std::uint32_t restore_levels_per_interval{1};
  /// Level the shedder starts at (fixed-rate sampling when no trigger is
  /// configured; benches use it to pin a rate).
  std::uint32_t initial_level{0};
  /// Salt for the admit hash; same salt + same stream => same decisions.
  std::uint64_t hash_seed{0x9e3779b97f4a7c15ull};
  /// Enables the timing-coupled occupancy escalation (see file comment).
  bool occupancy_trigger{false};
  /// Ring-occupancy fraction above which note_ring_pressure() escalates.
  double occupancy_high_watermark{0.75};

  bool enabled() const {
    return budget_ops_per_interval > 0 || occupancy_trigger ||
           initial_level > 0;
  }
  /// Worst-case sampling coverage the config can degrade to.
  double min_coverage() const {
    return std::ldexp(1.0, -static_cast<int>(max_level));
  }
};

/// Per-interval shedding outcome, sealed at each interval close and folded
/// into the interval's CoverageReport by the pipeline.
struct ShedReport {
  std::uint64_t ops_offered{0};   ///< recordable ops seen
  std::uint64_t ops_admitted{0};  ///< recorded (with weight 2^level)
  std::uint64_t ops_shed{0};      ///< dropped by the admit test
  std::uint32_t level_max{0};     ///< deepest level this interval
  std::uint32_t level_end{0};     ///< carry-out level after restore decay
  std::uint64_t occupancy_escalations{0};  ///< ring-pressure level bumps
  /// Admitted fraction of recordable ops. The counters are already
  /// weight-compensated; this is the evidence fraction behind them.
  double sample_coverage{1.0};

  bool shed() const { return ops_shed > 0; }
};

class LoadShedder {
 public:
  explicit LoadShedder(const LoadShedderConfig& config);

  bool enabled() const { return enabled_; }

  /// Admit test for one recordable op. Returns the recording weight: 1.0 at
  /// level 0, 2^level for an admitted sampled op, 0.0 for a shed op. Pure
  /// function of the offered-op sequence when only the budget trigger is in
  /// play. Producer-thread only.
  double admit(const RecordOp& op) {
    if (!enabled_) return 1.0;
    ++offered_;
    while (budget_ != 0 && level_ < config_.max_level &&
           offered_ > (budget_ << level_)) {
      escalate();
    }
    if (level_ == 0) {
      ++admitted_;
      return 1.0;
    }
    const std::uint64_t h = mix64(op.k_sip_dip ^ config_.hash_seed);
    if ((h & ((std::uint64_t{1} << level_) - 1)) != 0) {
      ++shed_;
      return 0.0;
    }
    ++admitted_;
    return std::ldexp(1.0, static_cast<int>(level_));
  }

  /// Occupancy trigger (see file comment): escalates one level when the
  /// observed ring occupancy fraction is at or above the watermark. No-op
  /// unless the config enables the trigger. Producer-thread only.
  void note_ring_pressure(double occupancy_fraction) {
    if (!config_.occupancy_trigger || level_ >= config_.max_level) return;
    if (occupancy_fraction < config_.occupancy_high_watermark) return;
    escalate();
    ++occupancy_escalations_;
  }

  /// Seals the interval: returns its ShedReport, decays the level by the
  /// restore hysteresis, and resets the per-interval counters.
  ShedReport seal_interval();

  std::uint32_t level() const { return level_; }
  const LoadShedderConfig& config() const { return config_; }

 private:
  void escalate() {
    ++level_;
    if (level_ > level_max_) level_max_ = level_;
  }

  LoadShedderConfig config_;
  bool enabled_{false};
  std::uint64_t budget_{0};
  std::uint32_t level_{0};
  std::uint32_t level_max_{0};
  std::uint64_t offered_{0};
  std::uint64_t admitted_{0};
  std::uint64_t shed_{0};
  std::uint64_t occupancy_escalations_{0};
};

}  // namespace hifind
