// Seeded overload fault-injection harness (the PR 2 FaultyChannel idea
// pointed at the INGEST path instead of the wire): drives an
// OverlappedPipeline through reproducible overload scenarios and reports
// what the overload layer did about them.
//
// Scenarios:
//   kBurstBeyondRings   — every post-warm-up interval carries a spoofed
//                         SYN flood sized at burst_ring_factor x the
//                         pipeline's ring capacity, the "4x line rate"
//                         case the shedder exists for.
//   kSlowConsumerEpochs — steady moderate traffic; pair it with
//                         OverlappedPipelineConfig::inject_epoch_stall_us
//                         to make every epoch slow and watch close_stall_us
//                         absorb (and bound) the backpressure.
//   kShedRestoreCycles  — alternating heavy/quiet interval pairs, so the
//                         shed level escalates under the bursts and the
//                         seal-time hysteresis walks it back down between
//                         them.
//
// The packet stream is a pure function of (config, seed): two runs with
// the same scenario against identically configured pipelines must produce
// identical shed decisions, coverage reports, and alerts — which is
// exactly what the overload determinism tests assert.
#pragma once

#include <cstdint>
#include <vector>

#include "detect/overlapped.hpp"

namespace hifind {

struct OverloadScenarioConfig {
  enum class Kind : std::uint8_t {
    kBurstBeyondRings,
    kSlowConsumerEpochs,
    kShedRestoreCycles,
  };

  Kind kind{Kind::kBurstBeyondRings};
  std::uint64_t seed{0x0ddba11};
  std::uint64_t intervals{8};
  /// Ring capacity of the pipeline under test; attack volume is expressed
  /// as a multiple of it so "beyond ring capacity" stays true whatever the
  /// pipeline config says.
  std::size_t ring_capacity{ParallelRecorder::kDefaultRingCapacity};
  double burst_ring_factor{4.0};
  /// Benign completed handshakes per interval (keeps forecasters fed and
  /// gives the flood's victim a contrast population).
  int benign_handshakes{64};
  IPv4 victim{IPv4(129, 105, 9, 9)};
  std::uint16_t victim_port{80};
};

const char* overload_scenario_name(OverloadScenarioConfig::Kind kind);

/// What one interval of the scenario did and what it cost at the close.
struct OverloadIntervalStats {
  std::uint64_t interval{0};
  std::uint64_t attack_syns{0};         ///< spoofed flood SYNs offered
  std::uint64_t close_stall_us{0};      ///< stall accrued by THIS close
  std::uint32_t shed_level_after{0};    ///< shedder level after the seal
};

struct OverloadRun {
  std::vector<OverloadIntervalStats> intervals;
  /// Epoch results in interval order (pipeline drained before return).
  std::vector<IntervalResult> results;
  std::uint64_t total_close_stall_us{0};
};

class OverloadInjector {
 public:
  explicit OverloadInjector(const OverloadScenarioConfig& config);

  /// Attack SYNs interval `i` will offer — a pure function of the config,
  /// exposed so tests can assert the scenario shape independently.
  std::uint64_t attack_syns_for_interval(std::uint64_t i) const;

  /// Feeds the whole scenario through the pipeline, closing every interval,
  /// then drains the final epoch and collects the results.
  OverloadRun run(OverlappedPipeline& pipe);

  const OverloadScenarioConfig& config() const { return config_; }

 private:
  OverloadScenarioConfig config_;
};

}  // namespace hifind
