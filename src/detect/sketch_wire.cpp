#include "detect/sketch_wire.hpp"

#include <utility>

#include "common/byte_io.hpp"
#include "common/hash.hpp"

namespace hifind {

const char* wire_fault_name(WireFault fault) {
  switch (fault) {
    case WireFault::kBadMagic:
      return "bad magic";
    case WireFault::kTruncated:
      return "truncated";
    case WireFault::kBadLength:
      return "bad length";
    case WireFault::kChecksumMismatch:
      return "checksum mismatch";
    case WireFault::kBadPayload:
      return "bad payload";
    case WireFault::kTrailingBytes:
      return "trailing bytes";
  }
  return "unknown";
}

WireError::WireError(WireFault fault, const std::string& detail)
    : std::runtime_error("SketchBank wire [" +
                         std::string(wire_fault_name(fault)) + "]: " + detail),
      fault_(fault) {}

/// Friend of SketchBank: packs/unpacks the counter arrays.
///
/// Backend handling: HFB2 predates backend selection, so its config block
/// has no backend fields — banks on the default reversible backend still
/// serialize as byte-identical HFB2 frames (old collectors keep working).
/// A bank on any other backend gets an HFB3 frame, whose config block
/// appends the backend tag and the compact shapes; everything after the
/// config (ten flat f64 arrays + packet count) is layout-identical.
class SketchBankWire {
 public:
  static constexpr std::uint32_t kMagicV1 = 0x31424648;  // "HFB1"
  static constexpr std::uint32_t kMagicV2 = 0x32424648;  // "HFB2"
  static constexpr std::uint32_t kMagicV3 = 0x33424648;  // "HFB3"

  static bool needs_v3(const SketchBank& bank) {
    // V2 is chosen iff the config is FULLY representable in a V2 frame: the
    // default backend and the default compact shapes (which is what a V2
    // reader reconstructs). A reversible bank with customized compact
    // shapes must ship them, or the round-trip would break the config
    // equality that gates COMBINE.
    static const SketchBankConfig defaults{};
    const SketchBankConfig& c = bank.config();
    return c.backend != SketchBackendKind::kReversible ||
           c.ci48 != defaults.ci48 || c.ci64 != defaults.ci64;
  }

  static void serialize_body(ByteWriter& w, const SketchBank& bank,
                             bool extended) {
    write_config(w, bank.config(), extended);
    w.f64_span(bank.rs_sip_dport_.counters());
    w.f64_span(bank.rs_dip_dport_.counters());
    w.f64_span(bank.rs_sip_dip_.counters());
    w.f64_span(bank.verif_sip_dport_.counters());
    w.f64_span(bank.verif_dip_dport_.counters());
    w.f64_span(bank.verif_sip_dip_.counters());
    w.f64_span(bank.os_dip_dport_.counters());
    w.f64_span(bank.twod_sipdip_dport_.cells());
    w.f64_span(bank.twod_sipdport_dip_.cells());
    w.f64_span(bank.synack_history_.counters());
    w.u64(bank.packets_recorded_);
  }

  /// Parses the body (config + counters); shared by every frame version.
  /// Translates the untyped ByteReader/load_counters errors into WireError.
  static SketchBank deserialize_body(ByteReader& r, bool extended) {
    try {
      const SketchBankConfig cfg = read_config(r, extended);
      // Refuse before constructing the bank unless the config's implied
      // counter footprint matches the bytes actually present. Without this,
      // a flipped byte in a num_buckets/num_stages field makes the decoder
      // ALLOCATE the corrupt (possibly multi-GB) shape before the size
      // mismatch is noticed — an allocation-DoS a flood of corrupt frames
      // could drive at the central site.
      check_footprint(cfg, r.remaining());
      SketchBank bank(cfg);
      try {
        bank.rs_sip_dport_.load_counters(r.f64_vector());
        bank.rs_dip_dport_.load_counters(r.f64_vector());
        bank.rs_sip_dip_.load_counters(r.f64_vector());
        bank.verif_sip_dport_.load_counters(r.f64_vector());
        bank.verif_dip_dport_.load_counters(r.f64_vector());
        bank.verif_sip_dip_.load_counters(r.f64_vector());
        bank.os_dip_dport_.load_counters(r.f64_vector());
        bank.twod_sipdip_dport_.load_cells(r.f64_vector());
        bank.twod_sipdport_dip_.load_cells(r.f64_vector());
        bank.synack_history_.load_counters(r.f64_vector());
      } catch (const std::invalid_argument& e) {
        // Counter-array sizes disagree with the embedded config.
        throw WireError(WireFault::kBadPayload, e.what());
      }
      bank.packets_recorded_ = r.u64();
      return bank;
    } catch (const WireError&) {
      throw;
    } catch (const std::invalid_argument& e) {
      // The embedded config itself violates a sketch invariant.
      throw WireError(WireFault::kBadPayload, e.what());
    } catch (const std::runtime_error& e) {
      // ByteReader underrun: the body ends mid-field.
      throw WireError(WireFault::kTruncated, e.what());
    }
  }

 private:
  /// Exact serialized body size the config implies, compared against the
  /// bytes that follow it. Loose per-field caps first, so the arithmetic
  /// cannot overflow and absurd shapes are rejected without allocation.
  static void check_footprint(const SketchBankConfig& c,
                              std::uint64_t remaining) {
    const auto cap = [](std::uint64_t v, std::uint64_t max) {
      if (v > max) {
        throw WireError(WireFault::kBadPayload,
                        "config field exceeds sane bounds");
      }
      return v;
    };
    using u128 = unsigned __int128;
    const auto rs_len = [&](const ReversibleSketchConfig& rs) {
      return u128{cap(static_cast<std::uint64_t>(rs.num_stages), 64)}
             << cap(static_cast<std::uint64_t>(rs.bucket_bits), 30);
    };
    // Compact backend: per bucket 1 value counter + key_bits bit counters.
    const auto ci_len = [&](const CompactInvertibleConfig& ci) {
      return (u128{cap(static_cast<std::uint64_t>(ci.num_stages), 64)}
              << cap(static_cast<std::uint64_t>(ci.bucket_bits), 30)) *
             (1 + cap(static_cast<std::uint64_t>(ci.key_bits), 64));
    };
    const auto kary_len = [&](const KarySketchConfig& k) {
      return u128{cap(k.num_stages, 64)} * cap(k.num_buckets, 1u << 30);
    };
    const u128 twod_len = u128{cap(c.twod.num_stages, 64)} *
                          cap(c.twod.x_buckets, 1u << 30) *
                          cap(c.twod.y_buckets, 1u << 30);
    const bool compact = c.backend == SketchBackendKind::kCompact;
    const u128 inv_doubles = compact ? 2 * ci_len(c.ci48) + ci_len(c.ci64)
                                     : 2 * rs_len(c.rs48) + rs_len(c.rs64);
    const u128 doubles = inv_doubles +
                         4 * kary_len(c.verification) +  // 3 verif + history
                         kary_len(c.original) + 2 * twod_len;
    // Ten length-prefixed f64 arrays plus the packets_recorded trailer.
    const u128 expected = 8 * doubles + 10 * 8 + 8;
    if (expected > remaining) {
      throw WireError(WireFault::kTruncated,
                      "payload shorter than the embedded config implies");
    }
    if (expected < remaining) {
      throw WireError(WireFault::kTrailingBytes,
                      "payload longer than the embedded config implies");
    }
  }

  static void write_config(ByteWriter& w, const SketchBankConfig& c,
                           bool extended) {
    w.u64(c.seed);
    w.u8(static_cast<std::uint8_t>(c.rs48.key_bits));
    w.u64(c.rs48.num_stages);
    w.u8(static_cast<std::uint8_t>(c.rs48.bucket_bits));
    w.u8(static_cast<std::uint8_t>(c.rs64.key_bits));
    w.u64(c.rs64.num_stages);
    w.u8(static_cast<std::uint8_t>(c.rs64.bucket_bits));
    w.u64(c.verification.num_stages);
    w.u64(c.verification.num_buckets);
    w.u64(c.original.num_stages);
    w.u64(c.original.num_buckets);
    w.u64(c.twod.num_stages);
    w.u64(c.twod.x_buckets);
    w.u64(c.twod.y_buckets);
    if (extended) {  // HFB3 appendix: backend tag + compact shapes
      w.u8(static_cast<std::uint8_t>(c.backend));
      w.u8(static_cast<std::uint8_t>(c.ci48.key_bits));
      w.u64(c.ci48.num_stages);
      w.u8(static_cast<std::uint8_t>(c.ci48.bucket_bits));
      w.u8(static_cast<std::uint8_t>(c.ci64.key_bits));
      w.u64(c.ci64.num_stages);
      w.u8(static_cast<std::uint8_t>(c.ci64.bucket_bits));
    }
  }

  static SketchBankConfig read_config(ByteReader& r, bool extended) {
    SketchBankConfig c;
    c.seed = r.u64();
    c.rs48.key_bits = r.u8();
    c.rs48.num_stages = r.u64();
    c.rs48.bucket_bits = r.u8();
    c.rs64.key_bits = r.u8();
    c.rs64.num_stages = r.u64();
    c.rs64.bucket_bits = r.u8();
    c.verification.num_stages = r.u64();
    c.verification.num_buckets = r.u64();
    c.original.num_stages = r.u64();
    c.original.num_buckets = r.u64();
    c.twod.num_stages = r.u64();
    c.twod.x_buckets = r.u64();
    c.twod.y_buckets = r.u64();
    if (extended) {
      const std::uint8_t backend = r.u8();
      if (backend > static_cast<std::uint8_t>(SketchBackendKind::kCompact)) {
        throw WireError(WireFault::kBadPayload, "unknown sketch backend tag");
      }
      c.backend = static_cast<SketchBackendKind>(backend);
      c.ci48.key_bits = r.u8();
      c.ci48.num_stages = r.u64();
      c.ci48.bucket_bits = r.u8();
      c.ci64.key_bits = r.u8();
      c.ci64.num_stages = r.u64();
      c.ci64.bucket_bits = r.u8();
    }
    return c;
  }
};

namespace {

/// Fixed HFB2 preamble: magic u32 | router u32 | interval u64 | payload_len
/// u64 | crc u32.
constexpr std::size_t kV2HeaderBytes = 4 + 4 + 8 + 8 + 4;

SketchBank parse_body_span(std::span<const std::uint8_t> body,
                           bool extended) {
  ByteReader r(body);
  SketchBank bank = SketchBankWire::deserialize_body(r, extended);
  if (!r.exhausted()) {
    throw WireError(WireFault::kTrailingBytes, "payload longer than bank");
  }
  return bank;
}

}  // namespace

std::vector<std::uint8_t> serialize_frame(const SketchBank& bank,
                                          std::uint32_t router_id,
                                          std::uint64_t interval) {
  const bool v3 = SketchBankWire::needs_v3(bank);
  ByteWriter payload;
  SketchBankWire::serialize_body(payload, bank, v3);
  const std::vector<std::uint8_t>& body = payload.bytes();

  ByteWriter w;
  w.u32(v3 ? SketchBankWire::kMagicV3 : SketchBankWire::kMagicV2);
  w.u32(router_id);
  w.u64(interval);
  w.u64(body.size());
  w.u32(crc32c(body));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

BankFrame deserialize_frame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) {
    throw WireError(WireFault::kTruncated, "no room for magic");
  }
  ByteReader r(bytes);
  const std::uint32_t magic = r.u32();

  if (magic == SketchBankWire::kMagicV1) {
    SketchBank bank = SketchBankWire::deserialize_body(r, false);
    if (!r.exhausted()) {
      throw WireError(WireFault::kTrailingBytes, "bytes after HFB1 bank");
    }
    return BankFrame{1, 0, 0, std::move(bank)};
  }
  if (magic != SketchBankWire::kMagicV2 && magic != SketchBankWire::kMagicV3) {
    throw WireError(WireFault::kBadMagic, "not an HFB1/HFB2/HFB3 frame");
  }
  const bool extended = magic == SketchBankWire::kMagicV3;

  if (bytes.size() < kV2HeaderBytes) {
    throw WireError(WireFault::kTruncated, "frame shorter than HFB2 header");
  }
  const std::uint32_t router_id = r.u32();
  const std::uint64_t interval = r.u64();
  const std::uint64_t payload_len = r.u64();
  const std::uint32_t crc = r.u32();
  const std::span<const std::uint8_t> payload = bytes.subspan(kV2HeaderBytes);
  if (payload.size() < payload_len) {
    throw WireError(WireFault::kTruncated, "payload shorter than declared");
  }
  if (payload.size() > payload_len) {
    throw WireError(WireFault::kBadLength, "payload longer than declared");
  }
  if (crc32c(payload) != crc) {
    throw WireError(WireFault::kChecksumMismatch, "payload CRC-32C failed");
  }
  return BankFrame{static_cast<std::uint8_t>(extended ? 3 : 2), router_id,
                   interval, parse_body_span(payload, extended)};
}

std::vector<std::uint8_t> serialize_bank(const SketchBank& bank) {
  return serialize_frame(bank, 0, 0);
}

SketchBank deserialize_bank(std::span<const std::uint8_t> bytes) {
  return std::move(deserialize_frame(bytes).bank);
}

std::vector<std::uint8_t> serialize_bank_hfb1(const SketchBank& bank) {
  if (SketchBankWire::needs_v3(bank)) {
    throw std::invalid_argument(
        "serialize_bank_hfb1: HFB1 predates backend selection and can only "
        "encode banks on the reversible backend");
  }
  ByteWriter w;
  w.u32(SketchBankWire::kMagicV1);
  SketchBankWire::serialize_body(w, bank, false);
  return w.take();
}

}  // namespace hifind
