#include "detect/sketch_wire.hpp"

#include <stdexcept>

#include "common/byte_io.hpp"

namespace hifind {

/// Friend of SketchBank: packs/unpacks the counter arrays.
class SketchBankWire {
 public:
  static constexpr std::uint32_t kMagic = 0x31424648;  // "HFB1"

  static std::vector<std::uint8_t> serialize(const SketchBank& bank) {
    ByteWriter w;
    w.u32(kMagic);
    write_config(w, bank.config());
    w.f64_span(bank.rs_sip_dport_.counters());
    w.f64_span(bank.rs_dip_dport_.counters());
    w.f64_span(bank.rs_sip_dip_.counters());
    w.f64_span(bank.verif_sip_dport_.counters());
    w.f64_span(bank.verif_dip_dport_.counters());
    w.f64_span(bank.verif_sip_dip_.counters());
    w.f64_span(bank.os_dip_dport_.counters());
    w.f64_span(bank.twod_sipdip_dport_.cells());
    w.f64_span(bank.twod_sipdport_dip_.cells());
    w.f64_span(bank.synack_history_.counters());
    w.u64(bank.packets_recorded_);
    return w.take();
  }

  static SketchBank deserialize(std::span<const std::uint8_t> bytes) {
    ByteReader r(bytes);
    if (r.u32() != kMagic) {
      throw std::runtime_error("SketchBank wire: bad magic");
    }
    SketchBank bank(read_config(r));
    try {
      bank.rs_sip_dport_.load_counters(r.f64_vector());
      bank.rs_dip_dport_.load_counters(r.f64_vector());
      bank.rs_sip_dip_.load_counters(r.f64_vector());
      bank.verif_sip_dport_.load_counters(r.f64_vector());
      bank.verif_dip_dport_.load_counters(r.f64_vector());
      bank.verif_sip_dip_.load_counters(r.f64_vector());
      bank.os_dip_dport_.load_counters(r.f64_vector());
      bank.twod_sipdip_dport_.load_cells(r.f64_vector());
      bank.twod_sipdport_dip_.load_cells(r.f64_vector());
      bank.synack_history_.load_counters(r.f64_vector());
    } catch (const std::invalid_argument& e) {
      // Counter-array sizes disagree with the embedded config.
      throw std::runtime_error(std::string("SketchBank wire: ") + e.what());
    }
    bank.packets_recorded_ = r.u64();
    if (!r.exhausted()) {
      throw std::runtime_error("SketchBank wire: trailing bytes");
    }
    return bank;
  }

 private:
  static void write_config(ByteWriter& w, const SketchBankConfig& c) {
    w.u64(c.seed);
    w.u8(static_cast<std::uint8_t>(c.rs48.key_bits));
    w.u64(c.rs48.num_stages);
    w.u8(static_cast<std::uint8_t>(c.rs48.bucket_bits));
    w.u8(static_cast<std::uint8_t>(c.rs64.key_bits));
    w.u64(c.rs64.num_stages);
    w.u8(static_cast<std::uint8_t>(c.rs64.bucket_bits));
    w.u64(c.verification.num_stages);
    w.u64(c.verification.num_buckets);
    w.u64(c.original.num_stages);
    w.u64(c.original.num_buckets);
    w.u64(c.twod.num_stages);
    w.u64(c.twod.x_buckets);
    w.u64(c.twod.y_buckets);
  }

  static SketchBankConfig read_config(ByteReader& r) {
    SketchBankConfig c;
    c.seed = r.u64();
    c.rs48.key_bits = r.u8();
    c.rs48.num_stages = r.u64();
    c.rs48.bucket_bits = r.u8();
    c.rs64.key_bits = r.u8();
    c.rs64.num_stages = r.u64();
    c.rs64.bucket_bits = r.u8();
    c.verification.num_stages = r.u64();
    c.verification.num_buckets = r.u64();
    c.original.num_stages = r.u64();
    c.original.num_buckets = r.u64();
    c.twod.num_stages = r.u64();
    c.twod.x_buckets = r.u64();
    c.twod.y_buckets = r.u64();
    return c;
  }
};

std::vector<std::uint8_t> serialize_bank(const SketchBank& bank) {
  return SketchBankWire::serialize(bank);
}

SketchBank deserialize_bank(std::span<const std::uint8_t> bytes) {
  return SketchBankWire::deserialize(bytes);
}

}  // namespace hifind
