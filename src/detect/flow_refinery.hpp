// Exact-flow alert refinement: a bounded in-DRAM working set of active
// flows (Jang et al., arXiv:1902.04143) scoped to the keys the sketches
// already flagged.
//
// Sketches answer "which keys look anomalous" but cannot say whether a
// flagged key's magnitude is real traffic or hash-collision noise, and
// under load shedding they only see a sampled substream. The refinery
// closes both gaps with a small amount of EXACT state:
//
//   epoch N-1 finishes -> its final alerts become CANDIDATE keys
//   close(N)           -> candidates installed into the ActiveFlowTable
//   interval N+1       -> the ingest thread feeds every recordable op
//                         (PRE-shed, weight-uncompensated) through
//                         observe(), so tracked keys accumulate exact
//                         weighted #SYN / #SYN-ACK counts even while the
//                         sketches run at 2^-k coverage
//   close(N+1)         -> seal() snapshots the evidence; the epoch thread
//                         refines interval N+1's alerts against it
//
// A key flagged at epoch E is therefore confirmable from epoch E+2 onward
// (one interval to install, one to accumulate a FULL interval of evidence).
// That lag is deliberate: partial-interval counts would under-read real
// attacks and kill true alerts, and the detector's persistence heuristics
// already expect attacks to span intervals. Alerts whose keys have no full
// evidence yet pass through as "unverified" — refinement only ever adds
// confidence, it never suppresses a first sighting.
//
// The table is fixed-capacity with eviction-by-staleness (the flow_table
// baseline's map idiom, bounded): keys stop being refreshed when the
// detector stops flagging them, go idle, and age out; overflow evicts the
// stalest entry deterministically (ties broken by key) so the working set
// is a pure function of the alert/op streams. Everything here is
// single-threaded by contract: observe/seal/install run on the ingest
// thread, and the epoch thread sees only the sealed, by-value FlowEvidence
// snapshot — refine_alerts() is a pure function of (evidence, alerts,
// config), which is what the determinism test asserts.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "detect/alerts.hpp"
#include "packet/packet.hpp"

namespace hifind {

struct FlowRefineryConfig {
  bool enabled{true};
  /// Max tracked keys across all three key spaces (exact state is the
  /// scarce resource; 4096 entries ~ 256 KiB of map state).
  std::size_t capacity{4096};
  /// Entries not re-flagged for this many intervals age out at seal.
  std::uint32_t max_idle_intervals{4};
  /// An alert is CONFIRMED iff its key's exact un-responded-SYN count over
  /// a full evidence interval reaches this fraction of the detector's
  /// per-interval threshold; below it the alert is KILLED as collision
  /// noise. 0.5 leaves headroom for flows straddling interval edges while
  /// still sitting far above what a hash collision accumulates.
  double confirm_fraction{0.5};

  /// Candidate-flood guard (Azzana-style Bloom pre-filter, see
  /// arXiv:1902.04143's new-flow memory): when a single interval flags MORE
  /// than this many candidate keys — an attacker driving the sketches into
  /// mass false flags to churn the exact table — install() admits only keys
  /// the Bloom filter has already seen in the current or previous interval
  /// (repeat offenders). Below the limit every candidate installs as
  /// before, so the guard is invisible in benign operation. 0 disables it.
  std::size_t bloom_gate_min_candidates{1024};
  /// log2 of the Bloom bitset size per generation (2^20 bits = 128 KiB).
  std::size_t bloom_bits_log2{20};
  /// Hard cap on Bloom inserts per generation: bounds the filter's
  /// false-positive rate under flood (a saturated filter would wave every
  /// key through). Inserts past the cap are dropped in candidate order, so
  /// the filter state stays a pure function of the candidate stream.
  std::size_t bloom_max_inserts_per_generation{32768};
  /// Seed of the Bloom hash family (independent of every sketch family).
  std::uint64_t bloom_seed{0xB100F17Eu};
};

/// One tracked key's exact evidence for a sealed interval.
struct FlowEvidenceEntry {
  KeyKind kind{KeyKind::DipDport};
  std::uint64_t key{0};
  double syn{0.0};     ///< exact weighted #SYN observed (pre-shed)
  double synack{0.0};  ///< exact weighted #SYN-ACK observed (pre-shed)
  /// True iff the entry was installed before the sealed interval began and
  /// its counts therefore cover the whole interval. Partial entries are
  /// never used to kill an alert.
  bool full_interval{false};

  double unresponded() const { return syn - synack; }
};

/// Sealed, by-value snapshot handed from the ingest thread to the epoch
/// thread at each interval close.
struct FlowEvidence {
  std::uint64_t interval{0};
  std::vector<FlowEvidenceEntry> entries;
};

/// A key the detector flagged, queued for exact tracking.
struct FlowCandidate {
  KeyKind kind{KeyKind::DipDport};
  std::uint64_t key{0};
};

/// Two-generation rotating Bloom filter over flagged candidate keys. A key
/// tests positive iff it was inserted in the current or the previous
/// generation; rotate() (called once per interval seal) retires the older
/// generation, so membership spans a sliding ~2-interval window without any
/// per-key state. Deterministic by construction: seeded hash family, and a
/// per-generation insert cap that drops excess inserts in arrival order.
class CandidateBloom {
 public:
  CandidateBloom(std::uint64_t seed, std::size_t bits_log2,
                 std::size_t max_inserts_per_generation);

  bool test(KeyKind kind, std::uint64_t key) const;
  /// No-op once the generation's insert cap is reached.
  void insert(KeyKind kind, std::uint64_t key);
  /// Ages the current generation into "previous"; drops the old previous.
  void rotate();

 private:
  static constexpr std::size_t kNumHashes = 4;
  void bit_positions(KeyKind kind, std::uint64_t key,
                     std::array<std::size_t, kNumHashes>& out) const;

  std::uint64_t seed_;
  std::size_t mask_;
  std::size_t max_inserts_;
  std::size_t inserts_this_gen_{0};
  std::vector<std::uint64_t> current_;
  std::vector<std::uint64_t> previous_;
};

/// Bounded exact-counter table over sketch-flagged candidate keys.
/// Ingest-thread only; see file comment for the thread discipline.
class ActiveFlowTable {
 public:
  explicit ActiveFlowTable(const FlowRefineryConfig& config);

  /// True when nothing is tracked — the ingest fast path's skip test.
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Accumulates one recordable op into any tracked key it matches. Call
  /// with the PRE-shed op (weight as offered, not inverse-probability
  /// compensated): the whole point is exact evidence under sampling.
  void observe(const RecordOp& op) {
    accumulate(KeyKind::SipDport, op.k_sip_dport, op);
    accumulate(KeyKind::DipDport, op.k_dip_dport, op);
    accumulate(KeyKind::SipDip, op.k_sip_dip, op);
  }

  /// Snapshots every tracked key's counts for the interval being sealed,
  /// resets the per-interval counters, and ages out idle entries.
  FlowEvidence seal(std::uint64_t interval);

  /// Installs (or refreshes) candidate keys flagged at interval `interval`.
  /// Call AFTER seal() at a close, so a fresh entry never seals a partial
  /// interval as full evidence. Overflow evicts the stalest entry.
  void install(const std::vector<FlowCandidate>& candidates,
               std::uint64_t interval);

  /// Lifetime count of entries evicted (staleness + overflow).
  std::uint64_t evicted() const { return evicted_; }

  /// Lifetime count of candidates the Bloom pre-filter turned away during
  /// flood-gated installs (first-sighting keys under candidate flood).
  std::uint64_t bloom_rejected() const { return bloom_rejected_; }

 private:
  struct Entry {
    double syn{0.0};
    double synack{0.0};
    std::uint64_t installed{0};     ///< interval index install() ran at
    std::uint64_t last_flagged{0};  ///< most recent install/refresh interval
  };
  using Map = std::unordered_map<std::uint64_t, Entry>;

  void accumulate(KeyKind kind, std::uint64_t key, const RecordOp& op) {
    Map& map = maps_[static_cast<std::size_t>(kind)];
    if (map.empty()) return;
    auto it = map.find(key);
    if (it == map.end()) return;
    (op.syn ? it->second.syn : it->second.synack) += op.weight;
  }

  void evict_stalest();

  FlowRefineryConfig config_;
  std::array<Map, 3> maps_;  ///< one map per KeyKind
  std::size_t size_{0};
  std::uint64_t evicted_{0};
  CandidateBloom bloom_;
  std::uint64_t bloom_rejected_{0};
};

/// Pure refinement: splits `final_alerts` into confirmed / killed /
/// unverified against the sealed evidence. Returns the surviving list
/// (confirmed + unverified, original order) and the verdict counts. The
/// output depends only on the arguments — no clocks, no table access — so
/// verdicts are reproducible from (bank-derived alerts, flow table
/// snapshot, config) alone.
struct RefinementOutcome {
  std::vector<Alert> refined;
  RefinementReport report;
};
RefinementOutcome refine_alerts(const std::vector<Alert>& final_alerts,
                                const FlowEvidence& evidence,
                                double interval_threshold,
                                const FlowRefineryConfig& config);

}  // namespace hifind
