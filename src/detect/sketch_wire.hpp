// Wire format for shipping SketchBanks from edge routers to the central
// aggregation site (paper Sec. 3.1: "we summarize the traffic information
// with compact sketches at each edge router, and deliver them quickly to
// some central site").
//
// Format "HFB1": the bank's configuration (so the receiver can verify the
// banks are combinable) followed by every sketch's counter array. Hash
// families are NOT shipped — they are deterministic functions of the config
// seed, which is the property that makes cross-site COMBINE meaningful.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "detect/sketch_bank.hpp"

namespace hifind {

/// Serializes a bank (config + counters) to a byte buffer.
std::vector<std::uint8_t> serialize_bank(const SketchBank& bank);

/// Reconstructs a bank from serialize_bank output. Throws
/// std::runtime_error on malformed input.
SketchBank deserialize_bank(std::span<const std::uint8_t> bytes);

}  // namespace hifind
