// Wire format for shipping SketchBanks from edge routers to the central
// aggregation site (paper Sec. 3.1: "we summarize the traffic information
// with compact sketches at each edge router, and deliver them quickly to
// some central site").
//
// Three frame versions, dispatched on the leading magic:
//
//   "HFB1" (legacy)   magic | config | counter arrays | packets_recorded
//   "HFB2" (current)  magic | router_id u32 | interval u64 | payload_len u64
//                     | crc32c(payload) u32 | payload
//                     where payload = config | counter arrays |
//                     packets_recorded (the HFB1 body, unchanged)
//   "HFB3"            HFB2 with the backend tag and the compact invertible
//                     shapes appended to the config block. Banks on the
//                     default reversible backend still serialize as
//                     byte-identical HFB2 frames; only a non-default backend
//                     selects HFB3, so pre-backend collectors interoperate
//                     until the day a compact bank actually reaches them.
//
// HFB2 exists because the collection path between routers and the central
// site is a real network: frames get truncated, corrupted, replayed and
// reordered. The header binds each frame to its sender and interval (replay
// / cross-wiring detection at the collector), the explicit payload length
// catches truncation before parsing, and the CRC-32C rejects bit corruption
// that would otherwise silently poison the central COMBINE. Hash families
// are NOT shipped — they are deterministic functions of the config seed,
// which is the property that makes cross-site COMBINE meaningful.
//
// Banks serialized before HFB2 existed still load: deserialize_bank /
// deserialize_frame accept both magics.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "detect/sketch_bank.hpp"

namespace hifind {

/// Why a frame was rejected. Collector-side policy keys off this (e.g. a
/// checksum mismatch counts toward sender quarantine; a truncated read on a
/// pull that raced the writer is retried).
enum class WireFault : std::uint8_t {
  kBadMagic,          ///< first four bytes are neither HFB1 nor HFB2
  kTruncated,         ///< frame shorter than its header/payload claims
  kBadLength,         ///< payload_len disagrees with the bytes present
  kChecksumMismatch,  ///< CRC-32C over the payload failed
  kBadPayload,        ///< payload parsed but is internally inconsistent
  kTrailingBytes,     ///< well-formed frame followed by extra bytes
};

const char* wire_fault_name(WireFault fault);

/// Typed rejection of a malformed frame. Derives from std::runtime_error so
/// pre-HFB2 call sites that caught the untyped error keep working.
class WireError : public std::runtime_error {
 public:
  WireError(WireFault fault, const std::string& detail);
  WireFault fault() const { return fault_; }

 private:
  WireFault fault_;
};

/// A decoded shipment: the bank plus the HFB2 header that routes it.
/// Legacy HFB1 frames decode with version 1 and zeroed header fields (the
/// collector then trusts the fetch address instead of the frame header).
struct BankFrame {
  std::uint8_t version{2};
  std::uint32_t router_id{0};
  std::uint64_t interval{0};
  SketchBank bank;
};

/// Serializes one router's bank for one interval as an HFB2 frame.
std::vector<std::uint8_t> serialize_frame(const SketchBank& bank,
                                          std::uint32_t router_id,
                                          std::uint64_t interval);

/// Decodes either frame version; throws WireError on malformed input.
BankFrame deserialize_frame(std::span<const std::uint8_t> bytes);

/// Serializes a bank with a default header (router 0, interval 0). Kept as
/// the simple API for single-site uses that don't care about provenance.
std::vector<std::uint8_t> serialize_bank(const SketchBank& bank);

/// Reconstructs a bank from serialize_bank / serialize_frame output, either
/// version. Throws WireError (a std::runtime_error) on malformed input.
SketchBank deserialize_bank(std::span<const std::uint8_t> bytes);

/// Legacy HFB1 writer: no header, no checksum. Kept so version-compat tests
/// (and any pre-HFB2 archive reader) can produce v1 frames.
std::vector<std::uint8_t> serialize_bank_hfb1(const SketchBank& bank);

}  // namespace hifind
