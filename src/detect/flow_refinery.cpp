#include "detect/flow_refinery.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace hifind {

CandidateBloom::CandidateBloom(std::uint64_t seed, std::size_t bits_log2,
                               std::size_t max_inserts_per_generation)
    : seed_(seed),
      mask_((std::size_t{1} << bits_log2) - 1),
      max_inserts_(max_inserts_per_generation),
      current_((std::size_t{1} << bits_log2) / 64, 0),
      previous_((std::size_t{1} << bits_log2) / 64, 0) {}

void CandidateBloom::bit_positions(
    KeyKind kind, std::uint64_t key,
    std::array<std::size_t, kNumHashes>& out) const {
  // Kirsch–Mitzenmacher double hashing; the KeyKind salt keeps the three
  // key spaces' memberships independent even where raw keys collide.
  const std::uint64_t salted =
      key ^ mix64(seed_ + static_cast<std::uint64_t>(kind) + 1);
  const std::uint64_t h1 = mix64(salted);
  const std::uint64_t h2 = mix64(salted ^ 0x9e3779b97f4a7c15ULL) | 1;
  for (std::size_t i = 0; i < kNumHashes; ++i) {
    out[i] = static_cast<std::size_t>(h1 + i * h2) & mask_;
  }
}

bool CandidateBloom::test(KeyKind kind, std::uint64_t key) const {
  std::array<std::size_t, kNumHashes> bits;
  bit_positions(kind, key, bits);
  const auto in = [&](const std::vector<std::uint64_t>& gen) {
    for (const std::size_t b : bits) {
      if ((gen[b / 64] & (std::uint64_t{1} << (b % 64))) == 0) return false;
    }
    return true;
  };
  return in(current_) || in(previous_);
}

void CandidateBloom::insert(KeyKind kind, std::uint64_t key) {
  if (inserts_this_gen_ >= max_inserts_) return;
  ++inserts_this_gen_;
  std::array<std::size_t, kNumHashes> bits;
  bit_positions(kind, key, bits);
  for (const std::size_t b : bits) {
    current_[b / 64] |= std::uint64_t{1} << (b % 64);
  }
}

void CandidateBloom::rotate() {
  std::swap(current_, previous_);
  std::fill(current_.begin(), current_.end(), 0);
  inserts_this_gen_ = 0;
}

ActiveFlowTable::ActiveFlowTable(const FlowRefineryConfig& config)
    : config_(config),
      bloom_(config.bloom_seed, config.bloom_bits_log2,
             config.bloom_max_inserts_per_generation) {}

FlowEvidence ActiveFlowTable::seal(std::uint64_t interval) {
  // One Bloom generation per interval: seal() runs exactly once per close,
  // BEFORE install(), so candidates flagged at this close land in the fresh
  // generation and stay visible through the next interval's gate.
  bloom_.rotate();
  FlowEvidence evidence;
  evidence.interval = interval;
  evidence.entries.reserve(size_);
  for (std::size_t k = 0; k < maps_.size(); ++k) {
    Map& map = maps_[k];
    for (auto it = map.begin(); it != map.end();) {
      Entry& e = it->second;
      FlowEvidenceEntry out;
      out.kind = static_cast<KeyKind>(k);
      out.key = it->first;
      out.syn = e.syn;
      out.synack = e.synack;
      out.full_interval = e.installed < interval;
      evidence.entries.push_back(out);
      e.syn = 0.0;
      e.synack = 0.0;
      // Staleness eviction: the detector stopped flagging this key long
      // enough ago that tracking it buys nothing.
      if (interval - e.last_flagged >= config_.max_idle_intervals) {
        it = map.erase(it);
        --size_;
        ++evicted_;
      } else {
        ++it;
      }
    }
  }
  // Snapshot order must not leak unordered_map iteration order into
  // anything downstream: sort so the evidence — and any report built from
  // it — is a pure function of the table's CONTENTS.
  std::sort(evidence.entries.begin(), evidence.entries.end(),
            [](const FlowEvidenceEntry& a, const FlowEvidenceEntry& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.key < b.key;
            });
  return evidence;
}

void ActiveFlowTable::install(const std::vector<FlowCandidate>& candidates,
                              std::uint64_t interval) {
  if (!config_.enabled || config_.capacity == 0) return;
  // Candidate-flood gate: an attacker who mass-triggers sketch false flags
  // would otherwise churn the table through evict_stalest() and wash out
  // the real flows' evidence. Over the limit, only keys the Bloom filter
  // remembers from the current/previous interval (repeat offenders) are
  // admitted; every candidate is still recorded so it qualifies next
  // interval if the detector keeps flagging it.
  const bool gated = config_.bloom_gate_min_candidates != 0 &&
                     candidates.size() > config_.bloom_gate_min_candidates;
  for (const FlowCandidate& c : candidates) {
    const bool seen = bloom_.test(c.kind, c.key);
    bloom_.insert(c.kind, c.key);
    if (gated && !seen) {
      ++bloom_rejected_;
      continue;
    }
    Map& map = maps_[static_cast<std::size_t>(c.kind)];
    auto it = map.find(c.key);
    if (it != map.end()) {
      it->second.last_flagged = interval;
      continue;
    }
    if (size_ >= config_.capacity) evict_stalest();
    Entry e;
    e.installed = interval;
    e.last_flagged = interval;
    map.emplace(c.key, e);
    ++size_;
  }
}

void ActiveFlowTable::evict_stalest() {
  // O(size) scan, but only on overflow of a table whose membership changes
  // by at most a handful of alert keys per interval. Ties break on
  // (kind, key) so the victim never depends on hash-map iteration order.
  Map* victim_map = nullptr;
  Map::iterator victim;
  std::size_t victim_kind = 0;
  for (std::size_t k = 0; k < maps_.size(); ++k) {
    for (auto it = maps_[k].begin(); it != maps_[k].end(); ++it) {
      if (victim_map == nullptr ||
          it->second.last_flagged < victim->second.last_flagged ||
          (it->second.last_flagged == victim->second.last_flagged &&
           (k < victim_kind ||
            (k == victim_kind && it->first < victim->first)))) {
        victim_map = &maps_[k];
        victim = it;
        victim_kind = k;
      }
    }
  }
  if (victim_map != nullptr) {
    victim_map->erase(victim);
    --size_;
    ++evicted_;
  }
}

RefinementOutcome refine_alerts(const std::vector<Alert>& final_alerts,
                                const FlowEvidence& evidence,
                                double interval_threshold,
                                const FlowRefineryConfig& config) {
  RefinementOutcome out;
  out.refined = final_alerts;
  if (!config.enabled) return out;
  out.report.active = true;
  out.report.tracked = evidence.entries.size();
  if (final_alerts.empty()) return out;

  std::array<std::unordered_map<std::uint64_t, const FlowEvidenceEntry*>, 3>
      by_key;
  for (const FlowEvidenceEntry& e : evidence.entries) {
    by_key[static_cast<std::size_t>(e.kind)].emplace(e.key, &e);
  }

  const double confirm_floor = config.confirm_fraction * interval_threshold;
  out.refined.clear();
  out.refined.reserve(final_alerts.size());
  for (const Alert& a : final_alerts) {
    const auto& map = by_key[static_cast<std::size_t>(a.key_kind)];
    const auto it = map.find(a.key);
    if (it == map.end() || !it->second->full_interval) {
      // No full-interval exact evidence yet (first sighting, or installed
      // mid-stream): pass through unrefined.
      ++out.report.unverified;
      out.refined.push_back(a);
      continue;
    }
    if (it->second->unresponded() >= confirm_floor) {
      ++out.report.confirmed;
      out.refined.push_back(a);
    } else {
      // The sketches said "anomalous", the exact per-flow counters say the
      // key's real un-responded-SYN mass is nowhere near the threshold:
      // collision noise, killed before it reaches a consumer.
      ++out.report.killed;
    }
  }
  return out;
}

}  // namespace hifind
