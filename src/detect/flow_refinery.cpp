#include "detect/flow_refinery.hpp"

#include <algorithm>

namespace hifind {

ActiveFlowTable::ActiveFlowTable(const FlowRefineryConfig& config)
    : config_(config) {}

FlowEvidence ActiveFlowTable::seal(std::uint64_t interval) {
  FlowEvidence evidence;
  evidence.interval = interval;
  evidence.entries.reserve(size_);
  for (std::size_t k = 0; k < maps_.size(); ++k) {
    Map& map = maps_[k];
    for (auto it = map.begin(); it != map.end();) {
      Entry& e = it->second;
      FlowEvidenceEntry out;
      out.kind = static_cast<KeyKind>(k);
      out.key = it->first;
      out.syn = e.syn;
      out.synack = e.synack;
      out.full_interval = e.installed < interval;
      evidence.entries.push_back(out);
      e.syn = 0.0;
      e.synack = 0.0;
      // Staleness eviction: the detector stopped flagging this key long
      // enough ago that tracking it buys nothing.
      if (interval - e.last_flagged >= config_.max_idle_intervals) {
        it = map.erase(it);
        --size_;
        ++evicted_;
      } else {
        ++it;
      }
    }
  }
  // Snapshot order must not leak unordered_map iteration order into
  // anything downstream: sort so the evidence — and any report built from
  // it — is a pure function of the table's CONTENTS.
  std::sort(evidence.entries.begin(), evidence.entries.end(),
            [](const FlowEvidenceEntry& a, const FlowEvidenceEntry& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.key < b.key;
            });
  return evidence;
}

void ActiveFlowTable::install(const std::vector<FlowCandidate>& candidates,
                              std::uint64_t interval) {
  if (!config_.enabled || config_.capacity == 0) return;
  for (const FlowCandidate& c : candidates) {
    Map& map = maps_[static_cast<std::size_t>(c.kind)];
    auto it = map.find(c.key);
    if (it != map.end()) {
      it->second.last_flagged = interval;
      continue;
    }
    if (size_ >= config_.capacity) evict_stalest();
    Entry e;
    e.installed = interval;
    e.last_flagged = interval;
    map.emplace(c.key, e);
    ++size_;
  }
}

void ActiveFlowTable::evict_stalest() {
  // O(size) scan, but only on overflow of a table whose membership changes
  // by at most a handful of alert keys per interval. Ties break on
  // (kind, key) so the victim never depends on hash-map iteration order.
  Map* victim_map = nullptr;
  Map::iterator victim;
  std::size_t victim_kind = 0;
  for (std::size_t k = 0; k < maps_.size(); ++k) {
    for (auto it = maps_[k].begin(); it != maps_[k].end(); ++it) {
      if (victim_map == nullptr ||
          it->second.last_flagged < victim->second.last_flagged ||
          (it->second.last_flagged == victim->second.last_flagged &&
           (k < victim_kind ||
            (k == victim_kind && it->first < victim->first)))) {
        victim_map = &maps_[k];
        victim = it;
        victim_kind = k;
      }
    }
  }
  if (victim_map != nullptr) {
    victim_map->erase(victim);
    --size_;
    ++evicted_;
  }
}

RefinementOutcome refine_alerts(const std::vector<Alert>& final_alerts,
                                const FlowEvidence& evidence,
                                double interval_threshold,
                                const FlowRefineryConfig& config) {
  RefinementOutcome out;
  out.refined = final_alerts;
  if (!config.enabled) return out;
  out.report.active = true;
  out.report.tracked = evidence.entries.size();
  if (final_alerts.empty()) return out;

  std::array<std::unordered_map<std::uint64_t, const FlowEvidenceEntry*>, 3>
      by_key;
  for (const FlowEvidenceEntry& e : evidence.entries) {
    by_key[static_cast<std::size_t>(e.kind)].emplace(e.key, &e);
  }

  const double confirm_floor = config.confirm_fraction * interval_threshold;
  out.refined.clear();
  out.refined.reserve(final_alerts.size());
  for (const Alert& a : final_alerts) {
    const auto& map = by_key[static_cast<std::size_t>(a.key_kind)];
    const auto it = map.find(a.key);
    if (it == map.end() || !it->second->full_interval) {
      // No full-interval exact evidence yet (first sighting, or installed
      // mid-stream): pass through unrefined.
      ++out.report.unverified;
      out.refined.push_back(a);
      continue;
    }
    if (it->second->unresponded() >= confirm_floor) {
      ++out.report.confirmed;
      out.refined.push_back(a);
    } else {
      // The sketches said "anomalous", the exact per-flow counters say the
      // key's real un-responded-SYN mass is nowhere near the threshold:
      // collision noise, killed before it reaches a consumer.
      ++out.report.killed;
    }
  }
  return out;
}

}  // namespace hifind
