// Parallel sketch recording (paper Sec. 5.5.3: "we can also use
// multi-processors to record multiple sketches simultaneously in software").
//
// The bank's sketches partition into SketchBank::SketchGroup groups with
// disjoint state; each worker thread owns one or more groups and records
// every packet into only its groups. Packets are distributed in batches
// through per-worker queues, so the bank's final state is IDENTICAL to a
// serial record() of the same stream (each sketch sees every packet exactly
// once, in order).
//
// Usage:
//   ParallelRecorder rec(bank, 4);
//   for (packet : interval) rec.offer(packet);
//   rec.drain();                 // barrier: all packets applied
//   detector.process(bank, i);   // bank is now safe to read
//   bank.clear();
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "detect/sketch_bank.hpp"

namespace hifind {

class ParallelRecorder {
 public:
  /// @param num_threads  worker count, clamped to [1, kNumSketchGroups];
  ///                     groups are dealt round-robin to workers.
  ParallelRecorder(SketchBank& bank, unsigned num_threads);

  /// Stops workers (draining first). The bank remains valid.
  ~ParallelRecorder();

  ParallelRecorder(const ParallelRecorder&) = delete;
  ParallelRecorder& operator=(const ParallelRecorder&) = delete;

  /// Enqueues one packet for recording by every worker.
  void offer(const PacketRecord& p);

  /// Blocks until every offered packet has been applied to every group.
  void drain();

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  struct Worker {
    std::thread thread;
    unsigned mask{0};
    std::mutex mu;
    std::condition_variable cv;
    std::vector<PacketRecord> queue;      // producer side
    bool stop{false};
    bool idle{true};                      // worker has no pending work
  };

  void run_worker(Worker& w);
  void flush_batch();

  SketchBank& bank_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<PacketRecord> batch_;  // producer-side buffer
  static constexpr std::size_t kBatchSize = 1024;
};

}  // namespace hifind
