// Parallel sketch recording (paper Sec. 5.5.3: "we can also use
// multi-processors to record multiple sketches simultaneously in software").
//
// The bank's sketches partition into SketchBank::SketchGroup groups with
// disjoint state; each worker thread owns one or more groups and records
// every packet into only its groups. The producer classifies and
// key-extracts each packet exactly ONCE into a RecordOp (SYN => +w,
// SYN-ACK => −w, other => skipped), then publishes batches of ops into one
// fixed-capacity lock-free SPSC ring buffer per worker. Workers drain their
// ring through SketchBank::record_ops, the prefetched batch-update path.
//
// Because every sketch still sees every op exactly once, in stream order,
// the bank's final state is BIT-IDENTICAL to a serial record() of the same
// stream.
//
// Usage (serial close):
//   ParallelRecorder rec(bank, 4);
//   for (packet : interval) rec.offer(packet);
//   rec.drain();                 // barrier: all packets applied
//   detector.process(bank, i);   // bank is now safe to read
//   bank.clear();
//
// Under the double-buffered pipeline (detect/overlapped.hpp) the recorder
// instead rebind()s to the spare bank generation at each interval seal, so
// recording resumes immediately while the sealed generation's detection
// epoch runs in the background.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "detect/sketch_bank.hpp"

namespace hifind {

class ParallelRecorder {
 public:
  /// Default per-worker ring capacity (RecordOps; 4096 * 48 B = 192 KiB).
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 12;

  /// @param num_threads    worker count, clamped to [1, kNumSketchGroups];
  ///                       groups are dealt round-robin to workers.
  /// @param ring_capacity  per-worker SPSC ring capacity, rounded up to a
  ///                       power of two (>= 2). Small values force frequent
  ///                       wrap-around/backpressure; tests use them to
  ///                       exercise those paths.
  explicit ParallelRecorder(SketchBank& bank, unsigned num_threads,
                            std::size_t ring_capacity = kDefaultRingCapacity);

  /// Stops workers (draining first). The bank remains valid.
  ~ParallelRecorder();

  ParallelRecorder(const ParallelRecorder&) = delete;
  ParallelRecorder& operator=(const ParallelRecorder&) = delete;

  /// Enqueues one packet for recording by every worker. `weight` is the
  /// sampling weight, as in SketchBank::record().
  void offer(const PacketRecord& p, double weight = 1.0);

  /// Enqueues an already-extracted op (the offer() fast path after
  /// make_record_op). Lets callers that must see the op BEFORE recording —
  /// the load shedder's admit test, the active-flow table — classify once
  /// and still use the batched ring path.
  void offer_op(const RecordOp& op);

  /// Blocks until every offered packet has been applied to every group.
  ///
  /// Waiting escalates: a short pause-spin burst (the common case — workers
  /// are about to catch up), then thread yields, then short sleeps. The
  /// escalation bounds the cost of a wedged or descheduled worker: drain()
  /// still blocks (it is a correctness barrier), but it stops burning a core
  /// while it waits.
  void drain();

  /// Atomically retargets the recorder at a new bank generation. Drains
  /// first, so every previously offered packet lands in the OLD bank, and
  /// every packet offered after rebind() lands in the new one — the seal is
  /// exact. Caller-thread only (same thread as offer()/drain()); workers
  /// pick up the new target through the ring's existing release/acquire
  /// edge, so no extra synchronization is needed. The old bank is safe to
  /// read the moment rebind() returns.
  void rebind(SketchBank& bank);

  /// Times drain() exhausted its spin budget and had to yield or sleep.
  /// Stays 0 when workers keep up; a growing value under steady load means
  /// the consumer side is the bottleneck (or a worker is wedged).
  std::uint64_t drain_spin_yields() const {
    return drain_spin_yields_.load(std::memory_order_relaxed);
  }

  /// Times publish() found a worker's ring FULL and had to back off (one
  /// count per full-ring episode, lifetime). The producer-side twin of
  /// drain_spin_yields(): nonzero means ingest stalled on a consumer.
  /// Producer thread only.
  std::uint64_t ring_full_spins() const;

  /// Per-worker ring-full episode counts since the last call (producer
  /// thread only; same delta discipline as ShardedRecorder::take_shard_ops).
  std::vector<std::uint64_t> take_ring_full_spins();

  /// Occupancy fraction of the FULLEST ring right now, in [0, 1] — the
  /// producer's cheap overload probe (relaxed tail + acquire head; a
  /// slightly stale answer is fine for a pressure signal). Producer thread
  /// only.
  double producer_backlog() const;

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  std::size_t ring_capacity() const { return capacity_; }

 private:
  /// One worker and its SPSC ring.
  ///
  /// False-sharing audit (the hot-path layout contract, shared with
  /// ShardedRecorder::Shard):
  ///   - `head`/`tail` are monotonically increasing cursors (slot = cursor
  ///     & (capacity−1)); the worker owns `head`, the producer owns `tail`,
  ///     and each sits alone on its own 64-byte line (alignas on each atomic
  ///     pads the previous field out to a line) so cursor publication never
  ///     invalidates the other side's line.
  ///   - `stop` is also isolated: it is written once at shutdown, and
  ///     sharing a line with `tail` would otherwise ping-pong the
  ///     producer's line on every worker idle-poll.
  ///   - The cold fields (slots pointer, mask, thread handle) stay packed at
  ///     the front; they are read-only after construction, so sharing a line
  ///     among THEM is free — only mutating fields need isolation.
  /// The worker advances `head` only AFTER applying the ops, so head ==
  /// tail means "fully applied", which is what drain() waits on.
  struct Worker {
    explicit Worker(std::size_t capacity) : slots(capacity) {}

    std::vector<RecordOp> slots;
    unsigned group_mask{0};
    std::thread thread;
    alignas(64) std::atomic<std::size_t> head{0};  ///< consumer cursor
    alignas(64) std::atomic<std::size_t> tail{0};  ///< producer cursor
    alignas(64) std::atomic<bool> stop{false};
  };

  void run_worker(Worker& w);
  /// Copies `n` ops into worker `idx`'s ring. Publishes the whole span with
  /// one release store when the ring has room, or in as many chunks as
  /// backpressure dictates; a FULL ring escalates pause -> yield -> sleep
  /// (see publish_backoff) and bumps ring_full_[idx], so a wedged consumer
  /// costs a counter and a sleeping producer, never a spinning core.
  void publish(Worker& w, std::size_t idx, const RecordOp* ops,
               std::size_t n);
  void flush_pending();

  /// Current target bank. Plain-relaxed atomics suffice: rebind() stores it
  /// on the producer thread after drain() (rings empty), and workers load it
  /// only after acquiring a tail advance that was released after the store,
  /// so the pointer is never read concurrently with its update.
  std::atomic<SketchBank*> bank_;
  std::size_t capacity_;  ///< ring capacity, power of two
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<RecordOp> pending_;  ///< producer-side op batch
  /// Per-worker full-ring episode counts + take_ring_full_spins() baseline.
  /// Producer-thread plain state — never touched by workers.
  std::vector<std::uint64_t> ring_full_;
  std::vector<std::uint64_t> ring_full_snapshot_;
  /// Shared stat the producer bumps while a worker polls its cursors: give
  /// it its own line so accounting never dirties a ring line.
  alignas(64) std::atomic<std::uint64_t> drain_spin_yields_{0};
  static constexpr std::size_t kProducerBatch = 256;
};

/// Shared-nothing sharded recording (the paper's COMBINE-linearity argument
/// applied to multi-core ingest): every worker owns a FULL private
/// SketchBank replica and records a partition of the op stream into it with
/// plain non-atomic stores through the prefetched batch-update path — no
/// shared counter, no atomic RMW, anywhere on the hot path. The producer
/// classifies/extracts each packet once into a RecordOp (exactly as
/// ParallelRecorder) and deals op batches round-robin across the shards'
/// SPSC rings, so each op is copied ONCE (the shared-bank recorder copies
/// every op into every worker's ring).
///
/// At interval seal the shard replicas are reduced with the static COMBINE
/// linearity APIs (SketchBank::merge_shards -> combine_into -> the SIMD
/// accumulate kernels): the merged bank equals a serial record() of the
/// whole stream — exactly, and BIT-identically whenever all op weights are
/// unit or power-of-two (all partial sums exactly representable; arbitrary
/// fractional sampling weights are exact up to FP associativity in the
/// merge order). The recorder does not merge by itself: the caller owns the
/// shard banks and the merge (see detect/overlapped.hpp, which runs the
/// merge as the first stage of the background epoch so seal cost never
/// stalls ingest).
///
/// Usage (serial close):
///   std::vector<SketchBank*> shards = ...;      // N private replicas
///   ShardedRecorder rec(shards);
///   for (packet : interval) rec.offer(packet);
///   rec.drain();                                // all ops applied
///   merged.merge_shards(shards, pool);          // exact, off hot path
///   for (SketchBank* s : shards) s->reset_all();// shards are per-interval
class ShardedRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity =
      ParallelRecorder::kDefaultRingCapacity;

  /// @param shards         one private bank per worker (1..kMaxShards);
  ///                       caller retains ownership. Banks must all be
  ///                       combinable (same config) for the seal merge.
  /// @param ring_capacity  per-shard SPSC ring capacity, rounded up to a
  ///                       power of two (>= 2).
  explicit ShardedRecorder(std::span<SketchBank* const> shards,
                           std::size_t ring_capacity = kDefaultRingCapacity);

  /// Stops workers (draining first). Shard banks remain valid.
  ~ShardedRecorder();

  ShardedRecorder(const ShardedRecorder&) = delete;
  ShardedRecorder& operator=(const ShardedRecorder&) = delete;

  /// Enqueues one packet; it will be recorded into exactly one shard.
  void offer(const PacketRecord& p, double weight = 1.0);

  /// Enqueues an already-extracted op (see ParallelRecorder::offer_op).
  void offer_op(const RecordOp& op);

  /// Blocks until every offered packet has been applied to its shard (same
  /// escalation as ParallelRecorder::drain()).
  void drain();

  /// Atomically retargets every worker at a new shard-bank generation
  /// (same count as construction). Drains first, so the seal is exact:
  /// packets offered before land in the old generation, packets after in
  /// the new one. Caller-thread only. The old generation is safe to read —
  /// and merge — the moment rebind() returns.
  void rebind(std::span<SketchBank* const> shards);

  /// Per-shard ops applied since the last call (producer thread, after
  /// drain()): the per-shard occupancy signal the pipeline surfaces in
  /// EpochReport. Deterministic given the offer/drain sequence — batch
  /// deal-out is round-robin and drain() flushes the partial batch.
  std::vector<std::uint64_t> take_shard_ops();

  /// Times drain() exhausted its spin budget (see ParallelRecorder).
  std::uint64_t drain_spin_yields() const {
    return drain_spin_yields_.load(std::memory_order_relaxed);
  }

  /// Lifetime full-ring episode count, all shards (see ParallelRecorder).
  /// Producer thread only.
  std::uint64_t ring_full_spins() const;

  /// Per-shard full-ring episode counts since the last call (producer
  /// thread only) — the EpochReport per-shard backpressure telemetry.
  std::vector<std::uint64_t> take_ring_full_spins();

  /// Occupancy fraction of the fullest shard ring, in [0, 1] (see
  /// ParallelRecorder::producer_backlog). Producer thread only.
  double producer_backlog() const;

  unsigned num_shards() const {
    return static_cast<unsigned>(shards_.size());
  }

  std::size_t ring_capacity() const { return capacity_; }

 private:
  /// One shard: a worker, its SPSC ring, and its private bank. Layout
  /// follows the false-sharing audit on ParallelRecorder::Worker — mutable
  /// cursors and stats each own a 64-byte line; read-mostly fields (slots,
  /// bank pointer, thread handle) pack together. `ops_applied` is written
  /// by the worker every batch while the producer polls `head`, so it gets
  /// its own line too.
  struct Shard {
    explicit Shard(std::size_t capacity) : slots(capacity) {}

    std::vector<RecordOp> slots;
    std::size_t index{0};  ///< shard position; read-only after construction
    /// Worker-side target bank. Relaxed atomics suffice for the same reason
    /// as ParallelRecorder::bank_: rebind() stores on the producer thread
    /// after drain(), and the worker loads only after acquiring a tail
    /// advance released after the store.
    std::atomic<SketchBank*> bank{nullptr};
    std::thread thread;
    alignas(64) std::atomic<std::size_t> head{0};  ///< consumer cursor
    alignas(64) std::atomic<std::size_t> tail{0};  ///< producer cursor
    alignas(64) std::atomic<bool> stop{false};
    alignas(64) std::atomic<std::uint64_t> ops_applied{0};
  };

  void run_worker(Shard& s);
  /// See ParallelRecorder::publish — same escalation and counting, against
  /// shard `idx`'s ring.
  void publish(Shard& s, std::size_t idx, const RecordOp* ops,
               std::size_t n);
  void flush_pending();

  std::size_t capacity_;  ///< ring capacity, power of two
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<RecordOp> pending_;  ///< producer-side op batch
  std::size_t next_shard_{0};      ///< round-robin batch deal-out cursor
  std::vector<std::uint64_t> shard_ops_snapshot_;  ///< take_shard_ops base
  /// Per-shard full-ring episode counts + take baseline (producer-thread
  /// plain state, like pending_).
  std::vector<std::uint64_t> ring_full_;
  std::vector<std::uint64_t> ring_full_snapshot_;
  alignas(64) std::atomic<std::uint64_t> drain_spin_yields_{0};
  static constexpr std::size_t kProducerBatch = 256;
};

}  // namespace hifind
