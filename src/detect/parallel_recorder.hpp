// Parallel sketch recording (paper Sec. 5.5.3: "we can also use
// multi-processors to record multiple sketches simultaneously in software").
//
// The bank's sketches partition into SketchBank::SketchGroup groups with
// disjoint state; each worker thread owns one or more groups and records
// every packet into only its groups. The producer classifies and
// key-extracts each packet exactly ONCE into a RecordOp (SYN => +w,
// SYN-ACK => −w, other => skipped), then publishes batches of ops into one
// fixed-capacity lock-free SPSC ring buffer per worker. Workers drain their
// ring through SketchBank::record_ops, the prefetched batch-update path.
//
// Because every sketch still sees every op exactly once, in stream order,
// the bank's final state is BIT-IDENTICAL to a serial record() of the same
// stream.
//
// Usage (serial close):
//   ParallelRecorder rec(bank, 4);
//   for (packet : interval) rec.offer(packet);
//   rec.drain();                 // barrier: all packets applied
//   detector.process(bank, i);   // bank is now safe to read
//   bank.clear();
//
// Under the double-buffered pipeline (detect/overlapped.hpp) the recorder
// instead rebind()s to the spare bank generation at each interval seal, so
// recording resumes immediately while the sealed generation's detection
// epoch runs in the background.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "detect/sketch_bank.hpp"

namespace hifind {

class ParallelRecorder {
 public:
  /// Default per-worker ring capacity (RecordOps; 4096 * 48 B = 192 KiB).
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 12;

  /// @param num_threads    worker count, clamped to [1, kNumSketchGroups];
  ///                       groups are dealt round-robin to workers.
  /// @param ring_capacity  per-worker SPSC ring capacity, rounded up to a
  ///                       power of two (>= 2). Small values force frequent
  ///                       wrap-around/backpressure; tests use them to
  ///                       exercise those paths.
  explicit ParallelRecorder(SketchBank& bank, unsigned num_threads,
                            std::size_t ring_capacity = kDefaultRingCapacity);

  /// Stops workers (draining first). The bank remains valid.
  ~ParallelRecorder();

  ParallelRecorder(const ParallelRecorder&) = delete;
  ParallelRecorder& operator=(const ParallelRecorder&) = delete;

  /// Enqueues one packet for recording by every worker. `weight` is the
  /// sampling weight, as in SketchBank::record().
  void offer(const PacketRecord& p, double weight = 1.0);

  /// Blocks until every offered packet has been applied to every group.
  ///
  /// Waiting escalates: a short pause-spin burst (the common case — workers
  /// are about to catch up), then thread yields, then short sleeps. The
  /// escalation bounds the cost of a wedged or descheduled worker: drain()
  /// still blocks (it is a correctness barrier), but it stops burning a core
  /// while it waits.
  void drain();

  /// Atomically retargets the recorder at a new bank generation. Drains
  /// first, so every previously offered packet lands in the OLD bank, and
  /// every packet offered after rebind() lands in the new one — the seal is
  /// exact. Caller-thread only (same thread as offer()/drain()); workers
  /// pick up the new target through the ring's existing release/acquire
  /// edge, so no extra synchronization is needed. The old bank is safe to
  /// read the moment rebind() returns.
  void rebind(SketchBank& bank);

  /// Times drain() exhausted its spin budget and had to yield or sleep.
  /// Stays 0 when workers keep up; a growing value under steady load means
  /// the consumer side is the bottleneck (or a worker is wedged).
  std::uint64_t drain_spin_yields() const {
    return drain_spin_yields_.load(std::memory_order_relaxed);
  }

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  std::size_t ring_capacity() const { return capacity_; }

 private:
  /// One worker and its SPSC ring. `head`/`tail` are monotonically
  /// increasing cursors (slot = cursor & (capacity−1)); the producer owns
  /// `tail`, the worker owns `head`, and each is cache-line-aligned so the
  /// two sides never false-share. The worker advances `head` only AFTER
  /// applying the ops, so head == tail means "fully applied", which is what
  /// drain() waits on.
  struct Worker {
    explicit Worker(std::size_t capacity) : slots(capacity) {}

    std::vector<RecordOp> slots;
    unsigned group_mask{0};
    std::thread thread;
    alignas(64) std::atomic<std::size_t> head{0};  ///< consumer cursor
    alignas(64) std::atomic<std::size_t> tail{0};  ///< producer cursor
    alignas(64) std::atomic<bool> stop{false};
  };

  void run_worker(Worker& w);
  /// Copies `n` ops into `w`'s ring, spinning (then yielding) on
  /// backpressure. Publishes the whole span with one release store when the
  /// ring has room, or in as many chunks as backpressure dictates.
  void publish(Worker& w, const RecordOp* ops, std::size_t n);
  void flush_pending();

  /// Current target bank. Plain-relaxed atomics suffice: rebind() stores it
  /// on the producer thread after drain() (rings empty), and workers load it
  /// only after acquiring a tail advance that was released after the store,
  /// so the pointer is never read concurrently with its update.
  std::atomic<SketchBank*> bank_;
  std::size_t capacity_;  ///< ring capacity, power of two
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<RecordOp> pending_;  ///< producer-side op batch
  std::atomic<std::uint64_t> drain_spin_yields_{0};
  static constexpr std::size_t kProducerBatch = 256;
};

}  // namespace hifind
