#include "detect/load_shedder.hpp"

namespace hifind {

LoadShedder::LoadShedder(const LoadShedderConfig& config)
    : config_(config),
      enabled_(config.enabled()),
      budget_(config.budget_ops_per_interval),
      level_(std::min(config.initial_level, config.max_level)),
      level_max_(level_) {}

ShedReport LoadShedder::seal_interval() {
  ShedReport report;
  report.ops_offered = offered_;
  report.ops_admitted = admitted_;
  report.ops_shed = shed_;
  report.level_max = level_max_;
  report.occupancy_escalations = occupancy_escalations_;
  report.sample_coverage =
      offered_ == 0 ? 1.0
                    : static_cast<double>(admitted_) /
                          static_cast<double>(offered_);
  // Restore hysteresis: shed immediately under pressure, come back one
  // restore step per quiet interval so a sustained attack cannot flap the
  // rate every interval.
  const std::uint32_t restore = config_.restore_levels_per_interval;
  level_ = level_ > restore ? level_ - restore : 0;
  report.level_end = level_;
  level_max_ = level_;  // the carry-in level counts toward next interval's max
  offered_ = admitted_ = shed_ = 0;
  occupancy_escalations_ = 0;
  return report;
}

}  // namespace hifind
