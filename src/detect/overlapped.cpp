#include "detect/overlapped.hpp"

#include <chrono>
#include <utility>

namespace hifind {

OverlappedPipeline::OverlappedPipeline(const OverlappedPipelineConfig& config)
    : config_(config),
      bank_a_(config.bank),
      bank_b_(config.bank),
      active_(&bank_a_),
      spare_(&bank_b_),
      detector_(config.detector),
      recorder_(bank_a_, config.record_threads, config.ring_capacity) {
  epoch_thread_ = std::thread([this] { epoch_loop(); });
}

OverlappedPipeline::~OverlappedPipeline() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !epoch_busy_; });
    stop_ = true;
  }
  cv_.notify_all();
  if (epoch_thread_.joinable()) epoch_thread_.join();
}

void OverlappedPipeline::offer(const PacketRecord& p, double weight) {
  recorder_.offer(p, weight);
}

void OverlappedPipeline::rethrow_epoch_error_locked() {
  if (epoch_error_) {
    std::exception_ptr e = std::exchange(epoch_error_, nullptr);
    std::rethrow_exception(e);
  }
}

void OverlappedPipeline::close_interval() {
  using Clock = std::chrono::steady_clock;

  // 1. Backpressure point: the previous epoch gets the whole interval to
  //    finish; if it is still running now, the seal must wait for it (the
  //    spare generation is its input). This wait is the ONLY place the
  //    epoch can block ingest, and it is measured.
  {
    const Clock::time_point t0 = Clock::now();
    std::unique_lock<std::mutex> lock(mu_);
    if (epoch_busy_) {
      cv_.wait(lock, [this] { return !epoch_busy_; });
      close_stall_us_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                t0)
              .count());
    }
    rethrow_epoch_error_locked();
  }

  // 2. Seal generation `active_`: every offered packet applied.
  recorder_.drain();

  // 3. Prepare the spare generation for the next interval. clear() drops
  //    its two-intervals-old per-interval counters; the history sync keeps
  //    the lifetime SYN/ACK state identical to a serially reused bank.
  spare_->clear();
  spare_->sync_history_from(*active_);

  // 4. Resume ingest into the spare generation.
  recorder_.rebind(*spare_);
  std::swap(active_, spare_);

  // 5. Kick the sealed generation's epoch (now pointed to by spare_).
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_bank_ = spare_;
    epoch_interval_ = interval_++;
    epoch_busy_ = true;
  }
  cv_.notify_all();
}

void OverlappedPipeline::wait_epoch_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !epoch_busy_; });
  rethrow_epoch_error_locked();
}

std::vector<IntervalResult> OverlappedPipeline::take_results() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(results_, {});
}

void OverlappedPipeline::epoch_loop() {
  for (;;) {
    const SketchBank* bank = nullptr;
    std::uint64_t interval = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || epoch_busy_; });
      if (stop_ && !epoch_busy_) return;
      bank = epoch_bank_;
      interval = epoch_interval_;
    }
    IntervalResult result;
    std::exception_ptr error;
    try {
      result = detector_.process(*bank, interval);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error) {
        if (!epoch_error_) epoch_error_ = error;
      } else {
        results_.push_back(std::move(result));
      }
      epoch_busy_ = false;
    }
    cv_.notify_all();
  }
}

}  // namespace hifind
