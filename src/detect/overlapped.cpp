#include "detect/overlapped.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <utility>

#include "common/task_pool.hpp"

namespace hifind {
namespace {

/// Same resolution the detector uses for epoch_threads = 0: one worker per
/// hardware thread, capped. The merge pool mirrors the detector pool's size
/// so the shard merge gets the same parallel budget as the epoch it feeds.
std::size_t resolve_epoch_threads(std::size_t configured) {
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(hw == 0 ? 1 : hw, 8);
}

}  // namespace

OverlappedPipeline::OverlappedPipeline(const OverlappedPipelineConfig& config)
    : config_(config),
      detector_(config.detector),
      shedder_(config.shed),
      flow_table_(config.refinery) {
  using RecordMode = OverlappedPipelineConfig::RecordMode;
  if (config.record_mode == RecordMode::kShardedReplicas) {
    const std::size_t n = std::clamp<std::size_t>(config.record_threads, 1,
                                                  SketchBank::kMaxShards);
    // Two generations of N replicas: while the epoch merges one set, the
    // recorder fills the other. All 2N banks share one config, so any
    // generation is combinable into merged_.
    shard_banks_.reserve(2 * n);
    shards_active_.reserve(n);
    shards_spare_.reserve(n);
    for (std::size_t i = 0; i < 2 * n; ++i) {
      shard_banks_.push_back(std::make_unique<SketchBank>(config.bank));
    }
    for (std::size_t i = 0; i < n; ++i) {
      shards_active_.push_back(shard_banks_[i].get());
      shards_spare_.push_back(shard_banks_[n + i].get());
    }
    merged_ = std::make_unique<SketchBank>(config.bank);
    merge_pool_ = std::make_unique<TaskPool>(
        resolve_epoch_threads(config.detector.epoch_threads));
    sharded_recorder_ = std::make_unique<ShardedRecorder>(
        std::span<SketchBank* const>(shards_active_), config.ring_capacity);
  } else {
    bank_a_ = std::make_unique<SketchBank>(config.bank);
    bank_b_ = std::make_unique<SketchBank>(config.bank);
    active_ = bank_a_.get();
    spare_ = bank_b_.get();
    shared_recorder_ = std::make_unique<ParallelRecorder>(
        *bank_a_, config.record_threads, config.ring_capacity);
  }
  epoch_thread_ = std::thread([this] { epoch_loop(); });
}

OverlappedPipeline::~OverlappedPipeline() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !epoch_busy_; });
    stop_ = true;
  }
  cv_.notify_all();
  if (epoch_thread_.joinable()) epoch_thread_.join();
}

void OverlappedPipeline::offer(const PacketRecord& p, double weight) {
  RecordOp op;
  if (!make_record_op(p, weight, op)) return;
  // Exact-flow evidence accumulates from the PRE-shed op stream: the table
  // sees every recordable op at its offered weight even when the sketches
  // run at 2^-k coverage. empty() keeps the common no-candidates case at
  // one branch.
  if (!flow_table_.empty()) flow_table_.observe(op);
  if (shedder_.enabled()) {
    if (config_.shed.occupancy_trigger &&
        (++occupancy_probe_ & 0xFF) == 0) {
      // Decimated ring probe: a relaxed cursor read every 256 recordable
      // ops, only worth paying when the timing-coupled trigger is on.
      shedder_.note_ring_pressure(sharded_recorder_
                                      ? sharded_recorder_->producer_backlog()
                                      : shared_recorder_->producer_backlog());
    }
    const double w = shedder_.admit(op);
    if (w == 0.0) return;  // shed: the flow's 2^-k cohort carries its mass
    if (w != 1.0) {
      // Inline Horvitz–Thompson compensation: the counters themselves carry
      // the 1/coverage rescale, exactly, even across mid-interval level
      // changes — and 2^k weights keep the shard merge bit-exact.
      op.delta *= w;
      op.weight *= w;
    }
  }
  if (sharded_recorder_) {
    sharded_recorder_->offer_op(op);
  } else {
    shared_recorder_->offer_op(op);
  }
}

void OverlappedPipeline::rethrow_epoch_error_locked() {
  if (epoch_error_) {
    std::exception_ptr e = std::exchange(epoch_error_, nullptr);
    std::rethrow_exception(e);
  }
}

void OverlappedPipeline::close_interval() {
  using Clock = std::chrono::steady_clock;

  // 1. Backpressure point: the previous epoch gets the whole interval to
  //    finish; if it is still running now, the seal must wait for it (the
  //    spare generation is its input). This wait is the ONLY place the
  //    epoch can block ingest, and it is measured. The same wait is what
  //    makes the candidate hand-off safe: once it returns, the previous
  //    epoch has posted its flagged keys and will not touch them again.
  std::vector<FlowCandidate> candidates;
  {
    const Clock::time_point t0 = Clock::now();
    std::unique_lock<std::mutex> lock(mu_);
    if (epoch_busy_) {
      cv_.wait(lock, [this] { return !epoch_busy_; });
      close_stall_us_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                t0)
              .count());
    }
    rethrow_epoch_error_locked();
    candidates = std::exchange(pending_candidates_, {});
  }

  // 2. Seal the recording generation: every offered packet applied. The
  //    backpressure counters are snapshotted right after the drain so the
  //    interval's report covers its own drain as well.
  std::vector<std::uint64_t> shard_ops;
  std::vector<std::uint64_t> ring_full;
  std::uint64_t drain_yields_total = 0;
  if (sharded_recorder_) {
    sharded_recorder_->drain();
    shard_ops = sharded_recorder_->take_shard_ops();
    ring_full = sharded_recorder_->take_ring_full_spins();
    drain_yields_total = sharded_recorder_->drain_spin_yields();
  } else {
    shared_recorder_->drain();
    ring_full = shared_recorder_->take_ring_full_spins();
    drain_yields_total = shared_recorder_->drain_spin_yields();
  }
  const std::uint64_t drain_yields = drain_yields_total - last_drain_yields_;
  last_drain_yields_ = drain_yields_total;

  // 3. Seal the overload layer. Order matters: seal() snapshots evidence
  //    for keys installed BEFORE this interval (full-interval counts), and
  //    only then are the previous epoch's fresh candidates installed — a
  //    just-flagged key must not seal a partial interval as evidence and
  //    kill a real attack.
  FlowEvidence evidence = flow_table_.seal(interval_);
  flow_table_.install(candidates, interval_);
  ShedReport shed = shedder_.seal_interval();

  // 4. Resume ingest into the spare generation.
  if (sharded_recorder_) {
    // Sharded seal: drain + rebind ONLY. The spare generation comes back
    // from the previous epoch already reset (the epoch thread resets its
    // input shards right after merging them), and the cumulative SYN/ACK
    // history lives in the epoch-owned merged bank — so the ingest path
    // pays no clear and no history copy at the seal.
    sharded_recorder_->rebind(std::span<SketchBank* const>(shards_spare_));
    std::swap(shards_active_, shards_spare_);
  } else {
    // Prepare the spare generation for the next interval. clear() drops
    // its two-intervals-old per-interval counters; the history sync keeps
    // the lifetime SYN/ACK state identical to a serially reused bank.
    spare_->clear();
    spare_->sync_history_from(*active_);
    shared_recorder_->rebind(*spare_);
    std::swap(active_, spare_);
  }

  // 5. Kick the sealed generation's epoch (now pointed to by the spare
  //    side), with the interval's overload inputs riding the same mailbox.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sharded_recorder_) {
      epoch_shards_ = shards_spare_;
      epoch_shard_ops_ = std::move(shard_ops);
    } else {
      epoch_bank_ = spare_;
    }
    epoch_shed_ = shed;
    epoch_evidence_ = std::move(evidence);
    epoch_ring_full_ = std::move(ring_full);
    epoch_drain_yields_ = drain_yields;
    epoch_interval_ = interval_++;
    epoch_busy_ = true;
  }
  cv_.notify_all();
}

void OverlappedPipeline::wait_epoch_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !epoch_busy_; });
  rethrow_epoch_error_locked();
}

std::vector<IntervalResult> OverlappedPipeline::take_results() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(results_, {});
}

void OverlappedPipeline::epoch_loop() {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    const SketchBank* bank = nullptr;
    std::vector<SketchBank*> shards;
    std::vector<std::uint64_t> shard_ops;
    std::uint64_t interval = 0;
    ShedReport shed;
    FlowEvidence evidence;
    std::vector<std::uint64_t> ring_full;
    std::uint64_t drain_yields = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || epoch_busy_; });
      if (stop_ && !epoch_busy_) return;
      bank = epoch_bank_;
      shards = epoch_shards_;
      shard_ops = std::move(epoch_shard_ops_);
      shed = epoch_shed_;
      evidence = std::move(epoch_evidence_);
      ring_full = std::move(epoch_ring_full_);
      drain_yields = epoch_drain_yields_;
      interval = epoch_interval_;
    }
    IntervalResult result;
    std::exception_ptr error;
    try {
      // Slow-consumer fault injection (tests/benches): pretend this epoch
      // is expensive before doing any real work, so the NEXT close sees
      // the stall exactly as it would behind a genuinely slow epoch.
      if (config_.inject_epoch_stall_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(config_.inject_epoch_stall_us));
      }
      if (!shards.empty()) {
        // Stage 1 — reduce the sealed shard replicas into the merged bank
        // (per-interval sketches overwritten, shard SYN/ACK history deltas
        // ADDED to the merged bank's cumulative history). Fanned out per
        // sketch on the merge pool; runs here, off the ingest path, which
        // is the whole point of making it the epoch's first stage.
        const Clock::time_point t0 = Clock::now();
        merged_->merge_shards(
            std::span<const SketchBank* const>(shards.data(), shards.size()),
            merge_pool_.get());
        const std::uint64_t merge_us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - t0)
                .count());
        // Stage 2 — the shards are per-interval accumulators: zero them
        // (history included) before the next seal rebinds into them. Done
        // before process() so a throwing epoch cannot hand a generation
        // with stale counters back to the recorder.
        for (SketchBank* s : shards) s->reset_all();
        // Stage 3 — detection on the merged bank, exactly as a serial
        // single-bank pipeline would see it.
        result = detector_.process(*merged_, interval);
        // Telemetry (reporting only; excluded from EpochReport equality).
        result.epoch.shards = shards.size();
        result.epoch.merge_us = merge_us;
        std::uint64_t total_ops = 0;
        for (std::uint64_t ops : shard_ops) total_ops += ops;
        if (total_ops > 0 && !shard_ops.empty()) {
          const auto [lo, hi] =
              std::minmax_element(shard_ops.begin(), shard_ops.end());
          const double scale =
              static_cast<double>(shard_ops.size()) /
              static_cast<double>(total_ops);
          result.epoch.shard_occupancy_min =
              static_cast<double>(*lo) * scale;
          result.epoch.shard_occupancy_max =
              static_cast<double>(*hi) * scale;
        }
      } else {
        result = detector_.process(*bank, interval);
      }

      // Overload stamping, both modes. Coverage: the counters already carry
      // the inline 2^k compensation, so sample_coverage is REPORTING — no
      // further rescale happens (or may happen) downstream.
      result.coverage.sample_coverage = shed.sample_coverage;
      result.coverage.shed = shed.shed();
      result.coverage.ops_offered = shed.ops_offered;
      result.coverage.ops_shed = shed.ops_shed;
      result.coverage.shed_level_max = shed.level_max;

      // Exact-flow refinement against the interval's sealed evidence — a
      // pure function of (final alerts, evidence, config), off the ingest
      // path like everything else in the epoch.
      RefinementOutcome refined = refine_alerts(
          result.final, evidence, detector_.config().interval_threshold(),
          config_.refinery);
      result.refined = std::move(refined.refined);
      result.refinement = refined.report;

      // Ring backpressure telemetry (reporting only, like shards/merge_us).
      std::uint64_t ring_full_total = 0;
      for (std::uint64_t c : ring_full) ring_full_total += c;
      result.epoch.ring_full_spins = ring_full_total;
      result.epoch.shard_ring_full_spins = std::move(ring_full);
      result.epoch.drain_spin_yields = drain_yields;
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error) {
        if (!epoch_error_) epoch_error_ = error;
      } else {
        if (config_.refinery.enabled) {
          // Queue this epoch's flagged keys for exact tracking. Derived
          // from the PRE-refinement final list on purpose: a killed
          // phantom stays tracked while the sketches keep flagging it, so
          // it keeps being killed instead of flapping back to unverified.
          pending_candidates_.clear();
          pending_candidates_.reserve(result.final.size());
          for (const Alert& a : result.final) {
            pending_candidates_.push_back(FlowCandidate{a.key_kind, a.key});
          }
          std::sort(pending_candidates_.begin(), pending_candidates_.end(),
                    [](const FlowCandidate& x, const FlowCandidate& y) {
                      if (x.kind != y.kind) return x.kind < y.kind;
                      return x.key < y.key;
                    });
          pending_candidates_.erase(
              std::unique(pending_candidates_.begin(),
                          pending_candidates_.end(),
                          [](const FlowCandidate& x, const FlowCandidate& y) {
                            return x.kind == y.kind && x.key == y.key;
                          }),
              pending_candidates_.end());
        }
        results_.push_back(std::move(result));
      }
      epoch_busy_ = false;
    }
    cv_.notify_all();
  }
}

}  // namespace hifind
