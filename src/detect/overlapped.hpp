// OverlappedPipeline: double-buffered recording + background detection.
//
// The serial pipeline (record -> drain -> process -> clear) blocks ingest
// for the whole detection epoch at every interval close; on attack-heavy
// intervals the reverse-inference burst makes that a multi-second stall —
// exactly the window an adversary wants the monitor blind in. This pipeline
// removes the epoch from the ingest path with two recording GENERATIONS:
//
//   close_interval():
//     1. wait for the PREVIOUS epoch to finish (normally instant — an epoch
//        has a whole interval, e.g. 60 s, to complete; time spent here is
//        backpressure and is surfaced via close_stall_us()),
//     2. drain the recorder (all of interval N applied to generation A),
//     3. [shared-bank mode only] prepare generation B: clear per-interval
//        counters, then copy A's cumulative SYN/ACK service history
//        bit-exactly (SketchBank::sync_history_from),
//     4. rebind the recorder to B — ingest resumes immediately,
//     5. hand generation A to the dedicated epoch thread, which runs the
//        detection epoch in the background while interval N+1 records into B.
//
// Recording modes (OverlappedPipelineConfig::record_mode):
//
//   kShardedReplicas (default) — shared-nothing recording: each of the N
//     record threads owns a FULL private SketchBank replica and applies its
//     partition of the op stream with plain non-atomic stores
//     (ShardedRecorder). A generation is a SET of N shard banks; the seal is
//     drain + rebind only — no clear, no history sync on the ingest path.
//     The background epoch first REDUCES the sealed shards by COMBINE
//     linearity (SketchBank::merge_shards, fanned out per sketch on the
//     merge pool) into a single epoch-thread-owned merged bank that carries
//     the cumulative SYN/ACK history across intervals, then resets the
//     shards (they hold per-interval state only) and runs
//     HifindDetector::process on the merged bank. Merge time and per-shard
//     occupancy are surfaced in each result's EpochReport.
//
//   kSharedBank — the PR 1 recorder: one bank per generation, the bank's
//     sketch GROUPS dealt across workers (ParallelRecorder). Kept as the
//     baseline the sharded bench variants are gated against, and for hosts
//     where N full replicas do not fit in cache/memory.
//
// The epoch runs on its own thread (not a detector-pool worker) so the
// detector's wait_idle() joins inside process() can never deadlock against
// the coordinator; the detector's epoch_threads pool still parallelizes the
// work inside the epoch (and the shard merge), and the streaming-inference
// drivers chunk the reversal sweep so a burst spreads across that pool's
// idle slots.
//
// Overload control (the DoS-resilience story for the monitor ITSELF):
//
//   - A LoadShedder sits in front of the recorder on the ingest thread.
//     Every recordable op passes its admit test BEFORE touching a ring;
//     under pressure (recording budget exceeded, or optionally ring
//     occupancy past the high watermark) ops are hash-sampled at 2^-k
//     rates and admitted ops carry inline 2^k weights, so sketch counters
//     stay unbiased and shard merges stay bit-exact. Per-interval shedding
//     coverage is sealed into the interval's CoverageReport
//     (sample_coverage et al.), composing with — never double-applying —
//     the collector's 1/coverage bank rescale.
//   - An ActiveFlowTable tracks EXACT per-flow counters for the keys the
//     previous epoch flagged, fed pre-shed on the ingest thread; the epoch
//     thread refines each interval's final alerts against the sealed
//     evidence (IntervalResult::refined / RefinementReport), confirming
//     real attacks and killing collision phantoms with per-flow proof.
//   - Ring backpressure telemetry (per-shard full-ring episodes, drain
//     yields) rides each interval's EpochReport, and
//     inject_epoch_stall_us gives tests/benches a deterministic
//     slow-consumer fault to provoke all of the above
//     (detect/overload_injector.hpp drives the scenarios).
//
// Determinism: every stage of the epoch is bit-exact and each generation is
// kept semantically identical to one serially reused bank — shared mode via
// history sync + exact seal, sharded mode because the shard sum plus the
// merged bank's retained history IS the serial bank's state (merge_shards'
// bit-identity contract) — so the alert stream is bit-identical to the
// serial pipeline on the same packet stream, in BOTH modes. Tested.
//
// Usage:
//   OverlappedPipeline pipe(cfg);
//   for (interval) {
//     for (packet : interval) pipe.offer(packet);
//     pipe.close_interval();          // blocks ~drain time, not epoch time
//   }
//   pipe.wait_epoch_idle();
//   for (IntervalResult& r : pipe.take_results()) ...
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "detect/flow_refinery.hpp"
#include "detect/hifind.hpp"
#include "detect/load_shedder.hpp"
#include "detect/parallel_recorder.hpp"
#include "detect/sketch_bank.hpp"

namespace hifind {

class TaskPool;

struct OverlappedPipelineConfig {
  /// How recording parallelizes across record_threads (see file comment).
  enum class RecordMode : std::uint8_t {
    kSharedBank,       ///< one bank/generation, sketch groups dealt out
    kShardedReplicas,  ///< one full private replica per thread, merged at seal
  };

  SketchBankConfig bank{};
  HifindDetectorConfig detector{};
  RecordMode record_mode{RecordMode::kShardedReplicas};
  /// Recording worker threads. Sharded mode allocates one full bank replica
  /// per thread per generation (2 * record_threads banks), clamped to
  /// [1, SketchBank::kMaxShards]; shared mode clamps to the group count.
  /// The epoch thread and the detector's epoch pool run CONCURRENTLY with
  /// these during an interval, so budget the sum against the host, not each
  /// piece separately.
  unsigned record_threads{2};
  std::size_t ring_capacity{ParallelRecorder::kDefaultRingCapacity};
  /// Overload shedding in front of the recorder; default-disabled (every
  /// op admitted at weight 1).
  LoadShedderConfig shed{};
  /// Exact-flow alert refinement; enabled by default but inert until the
  /// detector flags its first candidate keys.
  FlowRefineryConfig refinery{};
  /// Fault injection for tests/benches: the epoch thread sleeps this long
  /// at the start of EVERY epoch — a deterministic slow-consumer stand-in
  /// that provokes close_stall_us and, with occupancy shedding on, shed/
  /// restore cycles. 0 (the default) injects nothing.
  std::uint64_t inject_epoch_stall_us{0};
};

class OverlappedPipeline {
 public:
  explicit OverlappedPipeline(const OverlappedPipelineConfig& config);
  /// Joins the epoch thread; any interval not yet closed is discarded.
  ~OverlappedPipeline();

  OverlappedPipeline(const OverlappedPipeline&) = delete;
  OverlappedPipeline& operator=(const OverlappedPipeline&) = delete;

  /// Enqueues one packet into the current interval.
  void offer(const PacketRecord& p, double weight = 1.0);

  /// Seals the current interval and kicks its detection epoch off in the
  /// background. Blocks only for the seal itself (previous-epoch
  /// backpressure + recorder drain [+ clear/history sync in shared mode] +
  /// rebind), NOT for the epoch. Rethrows any exception the previous epoch
  /// raised.
  void close_interval();

  /// Blocks until the in-flight epoch (if any) has finished; rethrows its
  /// exception, if any. Call before take_results() at end of stream.
  void wait_epoch_idle();

  /// Moves out every finished IntervalResult, in interval order (the single
  /// epoch thread finishes epochs in submission order). Call after
  /// wait_epoch_idle() for a complete set.
  std::vector<IntervalResult> take_results();

  /// Total microseconds close_interval() spent waiting for a previous epoch
  /// that was still running — the pipeline's backpressure signal. 0 means
  /// every epoch finished within its interval and ingest never waited on
  /// detection.
  std::uint64_t close_stall_us() const { return close_stall_us_; }

  std::uint64_t intervals_closed() const { return interval_; }
  const HifindDetectorConfig& detector_config() const {
    return detector_.config();
  }
  /// Shard replicas per generation (0 in shared-bank mode).
  std::size_t num_shards() const { return shards_active_.size(); }

  /// Current shed level (rate 2^-level); 0 when not shedding. Ingest-thread
  /// view, between offers.
  std::uint32_t shed_level() const { return shedder_.level(); }
  /// Keys currently tracked for exact-flow refinement.
  std::size_t flow_table_size() const { return flow_table_.size(); }

 private:
  void epoch_loop();
  /// Pre: caller holds mu_. Rethrows and clears a stored epoch exception.
  void rethrow_epoch_error_locked();

  OverlappedPipelineConfig config_;
  HifindDetector detector_;  ///< epoch-thread only, after construction

  // --- Overload layer (ingest-thread state) ------------------------------
  LoadShedder shedder_;
  ActiveFlowTable flow_table_;
  std::uint64_t occupancy_probe_{0};  ///< decimates the ring-pressure probe
  std::uint64_t last_drain_yields_{0};  ///< per-interval delta baseline

  // --- Shared-bank mode state (null/empty in sharded mode) ---------------
  std::unique_ptr<SketchBank> bank_a_;
  std::unique_ptr<SketchBank> bank_b_;
  SketchBank* active_{nullptr};  ///< generation the recorder currently fills
  SketchBank* spare_{nullptr};   ///< generation the background epoch reads
  std::unique_ptr<ParallelRecorder> shared_recorder_;

  // --- Sharded mode state (null/empty in shared-bank mode) ---------------
  std::vector<std::unique_ptr<SketchBank>> shard_banks_;  ///< 2N replicas
  std::vector<SketchBank*> shards_active_;  ///< generation being recorded
  std::vector<SketchBank*> shards_spare_;   ///< generation the epoch reads
  /// Epoch-thread-owned reduction target; its SYN/ACK history is the
  /// pipeline's cumulative lifetime state (shards are per-interval only).
  std::unique_ptr<SketchBank> merged_;
  /// Fans the 10-sketch merge out; sized like the detector's epoch pool.
  std::unique_ptr<TaskPool> merge_pool_;
  std::unique_ptr<ShardedRecorder> sharded_recorder_;

  std::uint64_t interval_{0};
  std::uint64_t close_stall_us_{0};

  /// Epoch-thread mailbox: close_interval() posts the sealed input (bank or
  /// shard set + per-shard op counts) under mu_; the epoch thread processes
  /// it and posts the result back.
  std::mutex mu_;
  std::condition_variable cv_;
  bool epoch_busy_{false};
  bool stop_{false};
  const SketchBank* epoch_bank_{nullptr};  ///< shared mode epoch input
  std::vector<SketchBank*> epoch_shards_;  ///< sharded mode epoch input
  std::vector<std::uint64_t> epoch_shard_ops_;  ///< occupancy telemetry
  std::uint64_t epoch_interval_{0};
  // Overload inputs sealed alongside each epoch's bank: the interval's shed
  // outcome, exact-flow evidence, and ring backpressure deltas.
  ShedReport epoch_shed_;
  FlowEvidence epoch_evidence_;
  std::vector<std::uint64_t> epoch_ring_full_;
  std::uint64_t epoch_drain_yields_{0};
  /// Epoch -> ingest: keys the last epoch's final alerts flagged, picked up
  /// (under the same wait that already serializes close against the epoch)
  /// and installed into the flow table at the next close.
  std::vector<FlowCandidate> pending_candidates_;
  std::vector<IntervalResult> results_;
  std::exception_ptr epoch_error_;
  std::thread epoch_thread_;
};

}  // namespace hifind
