// OverlappedPipeline: double-buffered recording + background detection.
//
// The serial pipeline (record -> drain -> process -> clear) blocks ingest
// for the whole detection epoch at every interval close; on attack-heavy
// intervals the reverse-inference burst makes that a multi-second stall —
// exactly the window an adversary wants the monitor blind in. This pipeline
// removes the epoch from the ingest path with two SketchBank GENERATIONS:
//
//   close_interval():
//     1. wait for the PREVIOUS epoch to finish (normally instant — an epoch
//        has a whole interval, e.g. 60 s, to complete; time spent here is
//        backpressure and is surfaced via close_stall_us()),
//     2. drain the recorder (all of interval N applied to generation A),
//     3. prepare generation B: clear per-interval counters, then copy A's
//        cumulative SYN/ACK service history bit-exactly
//        (SketchBank::sync_history_from) so B starts the next interval with
//        the same lifetime state a single-bank deployment would carry,
//     4. rebind the recorder to B — ingest resumes immediately,
//     5. hand generation A to the dedicated epoch thread, which runs
//        HifindDetector::process in the background while interval N+1
//        records into B.
//
// The epoch runs on its own thread (not a detector-pool worker) so the
// detector's wait_idle() joins inside process() can never deadlock against
// the coordinator; the detector's epoch_threads pool still parallelizes the
// work inside the epoch, and the streaming-inference drivers chunk the
// reversal sweep so a burst spreads across that pool's idle slots.
//
// Determinism: every stage of the epoch is bit-exact and the generations
// are kept semantically identical to one serially reused bank (history
// sync, exact seal via rebind-after-drain), so the alert stream is
// bit-identical to the serial pipeline on the same packet stream — tested.
//
// Usage:
//   OverlappedPipeline pipe(cfg);
//   for (interval) {
//     for (packet : interval) pipe.offer(packet);
//     pipe.close_interval();          // blocks ~drain time, not epoch time
//   }
//   pipe.wait_epoch_idle();
//   for (IntervalResult& r : pipe.take_results()) ...
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "detect/hifind.hpp"
#include "detect/parallel_recorder.hpp"
#include "detect/sketch_bank.hpp"

namespace hifind {

struct OverlappedPipelineConfig {
  SketchBankConfig bank{};
  HifindDetectorConfig detector{};
  /// Recording worker threads (ParallelRecorder). The epoch thread and the
  /// detector's epoch pool run CONCURRENTLY with these during an interval,
  /// so budget the sum against the host, not each piece separately.
  unsigned record_threads{2};
  std::size_t ring_capacity{ParallelRecorder::kDefaultRingCapacity};
};

class OverlappedPipeline {
 public:
  explicit OverlappedPipeline(const OverlappedPipelineConfig& config);
  /// Joins the epoch thread; any interval not yet closed is discarded.
  ~OverlappedPipeline();

  OverlappedPipeline(const OverlappedPipeline&) = delete;
  OverlappedPipeline& operator=(const OverlappedPipeline&) = delete;

  /// Enqueues one packet into the current interval.
  void offer(const PacketRecord& p, double weight = 1.0);

  /// Seals the current interval and kicks its detection epoch off in the
  /// background. Blocks only for the seal itself (previous-epoch
  /// backpressure + recorder drain + history sync + rebind), NOT for the
  /// epoch. Rethrows any exception the previous epoch raised.
  void close_interval();

  /// Blocks until the in-flight epoch (if any) has finished; rethrows its
  /// exception, if any. Call before take_results() at end of stream.
  void wait_epoch_idle();

  /// Moves out every finished IntervalResult, in interval order (the single
  /// epoch thread finishes epochs in submission order). Call after
  /// wait_epoch_idle() for a complete set.
  std::vector<IntervalResult> take_results();

  /// Total microseconds close_interval() spent waiting for a previous epoch
  /// that was still running — the pipeline's backpressure signal. 0 means
  /// every epoch finished within its interval and ingest never waited on
  /// detection.
  std::uint64_t close_stall_us() const { return close_stall_us_; }

  std::uint64_t intervals_closed() const { return interval_; }
  const HifindDetectorConfig& detector_config() const {
    return detector_.config();
  }

 private:
  void epoch_loop();
  /// Pre: caller holds mu_. Rethrows and clears a stored epoch exception.
  void rethrow_epoch_error_locked();

  OverlappedPipelineConfig config_;
  SketchBank bank_a_;
  SketchBank bank_b_;
  SketchBank* active_;  ///< generation the recorder currently fills
  SketchBank* spare_;   ///< generation the background epoch reads (or idle)
  HifindDetector detector_;  ///< epoch-thread only, after construction
  ParallelRecorder recorder_;
  std::uint64_t interval_{0};
  std::uint64_t close_stall_us_{0};

  /// Epoch-thread mailbox: close_interval() posts (bank, interval) under
  /// mu_; the epoch thread processes it and posts the result back.
  std::mutex mu_;
  std::condition_variable cv_;
  bool epoch_busy_{false};
  bool stop_{false};
  const SketchBank* epoch_bank_{nullptr};
  std::uint64_t epoch_interval_{0};
  std::vector<IntervalResult> results_;
  std::exception_ptr epoch_error_;
  std::thread epoch_thread_;
};

}  // namespace hifind
