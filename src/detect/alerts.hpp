// Alert model: what HiFIND reports and how phases refine it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace hifind {

/// Final attack classification (paper Sec. 3.2/3.3).
enum class AttackType : std::uint8_t {
  kSynFlooding,            ///< victim {DIP, Dport}; source possibly spoofed
  kNonSpoofedSynFlooding,  ///< flooding with identified attacker SIP
  kHorizontalScan,         ///< one SIP probing one Dport across many DIPs
  kVerticalScan,           ///< one SIP probing many Dports on one DIP
};

const char* attack_type_name(AttackType type);

/// One detection: a key in one of the three key spaces whose forecast error
/// exceeded the threshold, tagged with the attack class the three-step
/// algorithm assigned.
struct Alert {
  AttackType type{AttackType::kSynFlooding};
  std::uint64_t interval{0};   ///< detection interval index
  KeyKind key_kind{KeyKind::DipDport};
  std::uint64_t key{0};        ///< packed key (see common/types.hpp)
  double magnitude{0.0};       ///< forecast-error estimate (un-responded SYNs)

  /// Attacker source IP, where the key carries one (vscan/hscan/non-spoofed).
  IPv4 sip() const {
    return key_kind == KeyKind::SipDip ? unpack_key_sip(key)
                                       : unpack_key_ip(key);
  }
  /// Victim IP, where the key carries one ({DIP,Dport} or {SIP,DIP}).
  IPv4 dip() const {
    return key_kind == KeyKind::SipDip ? unpack_key_dip(key)
                                       : unpack_key_ip(key);
  }
  /// Destination port, where the key carries one.
  std::uint16_t dport() const { return unpack_key_port(key); }

  /// Field-wise equality — exact, including the double magnitude; the
  /// parallel-epoch determinism tests compare alert lists bit-for-bit.
  bool operator==(const Alert&) const = default;

  std::string describe() const;
};

/// How much of the traffic the interval's combined bank actually covers.
///
/// Under distributed collection (paper Sec. 3.1) the central site COMBINEs
/// per-router banks; routers can fail, lag past the collection deadline, or
/// be quarantined for shipping corrupt frames, in which case detection runs
/// on the partial sum with its inputs rescaled by the covered fraction. The
/// report lets alert consumers distinguish "clean interval" from "detected
/// under 7/8 coverage". A default-constructed report means a single-vantage
/// interval: full coverage, nothing distributed.
struct CoverageReport {
  std::size_t routers_total{1};
  std::vector<std::uint32_t> routers_combined;  ///< banks in the sum (sorted)
  std::vector<std::uint32_t> routers_missing;   ///< lost/late/quarantined
  /// Fraction of traffic the combined bank covers, estimated as
  /// |combined| / total under the uniform per-packet split the router layer
  /// load-balances with. 1.0 for clean intervals, 0.0 when nothing arrived.
  double fraction{1.0};
  bool degraded{false};  ///< true iff any expected bank was not combined

  // --- Local load-shedding coverage (detect/load_shedder.hpp) -------------
  // Orthogonal to the distributed fields above: `fraction` says how many
  // ROUTER banks made it into the sum, `sample_coverage` says what fraction
  // of the local recordable ops each bank actually sampled. The two faults
  // COMPOSE — total evidence fraction = fraction * sample_coverage — but
  // their rescales must not: shed ops are compensated INLINE (weight
  // 2^level at record time), so the collector's 1/fraction bank rescale is
  // still the only end-of-interval scaling. The combined-fault test pins
  // this down.
  /// Fraction of locally recordable ops admitted past the shedder; 1.0 when
  /// no shedding occurred.
  double sample_coverage{1.0};
  bool shed{false};                 ///< any op dropped by the shedder
  std::uint64_t ops_offered{0};     ///< recordable ops seen by the shedder
  std::uint64_t ops_shed{0};        ///< ops dropped (hash-sampled out)
  std::uint32_t shed_level_max{0};  ///< deepest shed level (rate 2^-level)

  /// Evidence fraction behind this interval's counters: router coverage
  /// times local sampling coverage.
  double effective_coverage() const { return fraction * sample_coverage; }

  std::string describe() const;
};

/// Outcome of exact-flow alert refinement (detect/flow_refinery.hpp): how
/// many of the interval's final alerts the bounded active-flow table could
/// confirm or kill with per-flow evidence. Verdict counts are a pure
/// function of (alerts, sealed evidence, config) — the determinism tests
/// compare reports across shard counts — so the struct carries no
/// wall-clock or capacity-pressure telemetry.
struct RefinementReport {
  bool active{false};          ///< refinement ran for this interval
  std::size_t tracked{0};      ///< evidence entries at refine time
  std::size_t confirmed{0};    ///< alerts backed by exact evidence
  std::size_t killed{0};       ///< alerts contradicted (collision noise)
  std::size_t unverified{0};   ///< alerts with no full-interval evidence yet

  bool operator==(const RefinementReport&) const = default;

  std::string describe() const;
};

/// Close-time degradation report: whether the detection epoch ran under a
/// latency budget and what, if anything, it truncated to stay inside it.
///
/// The budget (HifindDetectorConfig::budget) bounds the reverse-inference
/// burst deterministically — work is metered in search steps, never wall
/// time — so `truncated` is a pure function of the interval's bank and the
/// configuration: the same traffic yields the same (possibly degraded) alert
/// set at any epoch thread count. When `truncated` is false the alerts are
/// bit-identical to an unbudgeted run; consumers should treat a truncated
/// interval like a degraded-coverage one (the alert set is a deterministic
/// subset biased toward the LARGEST anomalies, which the top-N heavy-bucket
/// cap keeps by construction).
struct EpochReport {
  bool budgeted{false};    ///< latency-budget mode was active
  bool truncated{false};   ///< any cap tripped (work, candidates, buckets)
  std::size_t inference_work{0};         ///< work units spent, all inferences
  std::size_t work_budget{0};            ///< per-epoch cap (0 = unlimited)
  std::size_t heavy_buckets_dropped{0};  ///< dropped by the top-N stage cap
  bool candidates_truncated{false};      ///< max_candidates or work cap hit

  // Shared-nothing recording telemetry (sharded pipeline only; 0/defaults
  // under shared-bank or serial recording). Reporting-only: recording
  // topology and wall-clock, deliberately EXCLUDED from operator== — the
  // determinism contract covers what was detected and what was truncated,
  // not how the interval's counters were recorded or how long the merge
  // took.
  std::size_t shards{0};        ///< shard replicas merged at this seal
  std::uint64_t merge_us{0};    ///< shard-merge wall time (epoch thread)
  /// Least/most-loaded shard's share of the interval's ops, normalized so
  /// 1.0 = perfectly balanced (share * shard count).
  double shard_occupancy_min{1.0};
  double shard_occupancy_max{1.0};
  /// Producer backpressure: times the producer found a ring FULL and had to
  /// back off while publishing this interval's ops, summed over shards
  /// (shared mode: over workers). 0 means ingest never waited on a
  /// consumer.
  std::uint64_t ring_full_spins{0};
  /// Per-ring breakdown of `ring_full_spins` (one entry per shard in
  /// sharded mode, per worker in shared mode): which ring is the choke
  /// point.
  std::vector<std::uint64_t> shard_ring_full_spins;
  /// Times this interval's drain() exhausted its spin budget and yielded or
  /// slept (delta of the recorder's lifetime counter).
  std::uint64_t drain_spin_yields{0};

  /// Equality covers the deterministic degradation contract only (budget +
  /// truncation state); see the telemetry comment above.
  bool operator==(const EpochReport& o) const {
    return budgeted == o.budgeted && truncated == o.truncated &&
           inference_work == o.inference_work &&
           work_budget == o.work_budget &&
           heavy_buckets_dropped == o.heavy_buckets_dropped &&
           candidates_truncated == o.candidates_truncated;
  }

  std::string describe() const;
};

/// Phase-by-phase outcome of one detection interval (paper Table 4 layout):
/// raw three-step output, after 2D-sketch scan screening, after the SYN-flood
/// false-positive heuristics.
struct IntervalResult {
  std::uint64_t interval{0};
  std::vector<Alert> raw;       ///< Phase 1
  std::vector<Alert> after_2d;  ///< Phase 2
  std::vector<Alert> final;     ///< Phase 3
  /// Phase 3 after exact-flow refinement (final minus alerts the active
  /// flow table killed as collision noise; see detect/flow_refinery.hpp).
  /// Equals `final` when refinement is off or no evidence existed —
  /// consumers can always read this field. `final` is left untouched so the
  /// sketch-level determinism contract is unchanged by refinement.
  std::vector<Alert> refined;
  /// Verdict counts behind `refined`; default-inactive when refinement
  /// never ran.
  RefinementReport refinement;
  /// Collection quality behind this interval's bank; defaults to the clean
  /// single-vantage report.
  CoverageReport coverage;
  /// Close-time budget/truncation report; default means "ran to completion".
  /// Warm-up intervals (no alerts yet) keep the default report.
  EpochReport epoch;

  /// Count of alerts of a type within one phase's list.
  static std::size_t count(const std::vector<Alert>& alerts, AttackType type);
};

}  // namespace hifind
