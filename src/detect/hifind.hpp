// HifindDetector: the paper's three-step detection algorithm plus the
// Phase-2 (2D-sketch classification) and Phase-3 (SYN-flood heuristics)
// false-positive reduction stages.
//
// Usage per interval:
//   SketchBank bank(bank_config);
//   for (packet : interval) bank.record(packet);
//   IntervalResult r = detector.process(bank, interval_index);
//   bank.clear();
//
// The detector holds the time-series state (forecasters per sketch, the
// persistence filter's run lengths); the bank holds the per-interval
// counters. Splitting the two is what makes aggregated multi-router
// detection work: the central site combines per-router banks into one and
// feeds it to a single detector, and — by sketch linearity — obtains exactly
// the alerts a single monitor seeing all traffic would have produced.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/task_pool.hpp"
#include "detect/alerts.hpp"
#include "detect/fp_filters.hpp"
#include "detect/sketch_bank.hpp"
#include "forecast/forecaster.hpp"
#include "sketch/sketch_arena.hpp"
#include "sketch/sketch_backend.hpp"

namespace hifind {

/// Hard close-time latency budget: bounds one epoch's reverse-inference
/// burst so an attack-heavy interval degrades deterministically instead of
/// stalling the detector for seconds (the paper's DoS-resilience claim,
/// applied to the detector itself).
///
/// The deadline converts to a SEARCH-WORK budget via a fixed calibration
/// constant, and enforcement meters search steps — never wall time — so the
/// truncated alert set is a pure function of (bank, config): identical at
/// any epoch thread count, chunk size, or host speed. When no cap trips,
/// alerts are bit-identical to an unbudgeted run (IntervalResult::epoch
/// reports which case occurred).
struct EpochBudget {
  /// Per-epoch deadline. 0 disables budget mode entirely.
  double deadline_ms{0.0};
  /// Deterministic calibration from deadline to search work: work units the
  /// inference search retires per millisecond (one unit ~ one heavy bucket
  /// regrouped at a DFS node). Deliberately a config constant rather than a
  /// measured rate — see the determinism contract above. Calibrate per
  /// deployment from BENCH_detect_epoch.json's `budget_work_rate` line.
  double work_units_per_ms{25000.0};
  /// Stage-level degradation: in budget mode each inference also caps its
  /// per-stage heavy buckets to this top-N (largest value, bucket-index
  /// tie-break), bounding the search tree before the work meter has to and
  /// biasing a truncated epoch toward the LARGEST anomalies. 0 = off.
  std::size_t max_heavy_per_stage{128};

  bool enabled() const { return deadline_ms > 0.0; }
  /// Total work budget for one epoch, split evenly over the 3 inferences.
  std::size_t work_budget() const {
    return enabled()
               ? static_cast<std::size_t>(deadline_ms * work_units_per_ms)
               : 0;
  }
};

/// Detection-stage tuning. Defaults follow paper Sec. 5.1 where stated.
struct HifindDetectorConfig {
  std::uint32_t interval_seconds{60};
  /// Threshold: un-responded SYNs *per second* of interval (paper: 1/s).
  double syn_rate_threshold{1.0};

  ForecastModel forecast_model{ForecastModel::kEwma};
  double ewma_alpha{0.5};
  double holt_beta{0.2};
  std::size_t ma_window{5};

  InferenceOptions inference{};

  // Phase 2: 2D-sketch column-concentration parameters (paper: 5/64, 0.8).
  bool enable_phase2{true};
  std::size_t twod_top_p{5};
  double twod_phi{0.8};

  // Phase 3: SYN-flood FP heuristics (paper Sec. 3.4).
  bool enable_phase3{true};
  double min_syn_ratio{3.0};
  std::uint32_t min_persist_intervals{2};
  double min_service_history{0.5};
  /// SYN-surge heuristic: a real flood RAISES the victim's #SYN arrival
  /// rate, while a server failure/congestion leaves arrivals normal and
  /// merely unanswered. Keep a flood alert only if the OS({DIP,Dport},#SYN)
  /// forecast error is at least this fraction of the alert magnitude.
  double min_syn_surge_fraction{0.5};

  /// Worker threads for the interval-close epoch (forecaster steps and
  /// per-sketch inference preludes run as parallel tasks). 1 = serial
  /// (inline, no worker threads); 0 = auto: min(hardware threads, 8).
  /// Under the double-buffered pipeline (detect/overlapped.hpp) the epoch
  /// overlaps the next interval's recording, so size this against the
  /// recorder's thread budget rather than assuming exclusive use of the
  /// host. Alerts are bit-identical across thread counts: tasks write
  /// disjoint slots, joins happen in a fixed order, and the kernels are
  /// bit-exact on every backend.
  std::size_t epoch_threads{0};

  /// Close-time latency budget; disabled by default (run to completion).
  EpochBudget budget{};

  /// Alert threshold for one interval, in un-responded SYNs.
  double interval_threshold() const {
    return syn_rate_threshold * interval_seconds;
  }
};

class HifindDetector {
 public:
  /// Forecast state is allocated lazily from the first bank's shape, so the
  /// detector needs no advance knowledge of the bank configuration.
  explicit HifindDetector(const HifindDetectorConfig& config);

  /// Runs detection on one interval's (possibly combined) bank.
  /// The first interval only primes the forecasters and returns no alerts.
  IntervalResult process(const SketchBank& bank, std::uint64_t interval);

  /// As above, stamping the result with the collection-coverage report the
  /// aggregation layer observed for this interval. The caller is expected to
  /// have already rescaled a partial-coverage bank by 1/coverage (sketch
  /// linearity makes that an unbiased full-traffic estimate, which keeps the
  /// forecasters' time series on a consistent scale across degraded and
  /// clean intervals — see router/collector.hpp).
  IntervalResult process(const SketchBank& bank, std::uint64_t interval,
                         CoverageReport coverage);

  /// Drops all time-series state (new trace).
  void reset();

  const HifindDetectorConfig& config() const { return config_; }

 private:
  void ensure_pool();
  /// Chunked driver for one streaming inference engine: runs the search in
  /// bounded work quanta, re-enqueuing its continuation whenever other tasks
  /// are waiting so a small pool interleaves all three inferences (and, in
  /// the overlapped pipeline, spreads an attack-heavy reversal burst across
  /// the next interval's idle pool slots). Scheduling choices never affect
  /// results — truncation keys off the deterministic work meter alone.
  void drive_inference(std::size_t slot);
  std::vector<Alert> phase1(std::uint64_t interval,
                            const std::vector<HeavyKey>& keys_dip_dport,
                            const std::vector<HeavyKey>& keys_sip_dip,
                            const std::vector<HeavyKey>& keys_sip_dport);
  std::vector<Alert> phase2(const SketchBank& bank,
                            const std::vector<Alert>& alerts) const;
  std::vector<Alert> phase3(const SketchBank& bank,
                            const KarySketch* os_error,
                            const std::vector<Alert>& alerts);

  HifindDetectorConfig config_;
  /// Storage pools for forecaster state (declared before the forecasters,
  /// which hold pointers into them). Warm-up/reset cycles reuse counter
  /// arrays instead of cloning sketches.
  SketchArena<InvertibleSketch> rs_arena_;
  SketchArena<KarySketch> kary_arena_;
  /// Epoch task pool, created on first process() (tests that never process
  /// an interval spawn no threads).
  std::unique_ptr<TaskPool> pool_;
  /// Per-RS heavy-bucket candidates from the fused forecaster pass; filled
  /// by step_collect in stage A, consumed (moved out) by inference in
  /// stage B of the same interval.
  StageBuckets hb_sip_dport_;
  StageBuckets hb_dip_dport_;
  StageBuckets hb_sip_dip_;
  /// Stage-B reversal engines and their per-interval results (slot order:
  /// dip_dport, sip_dip, sip_dport). Long-lived so the search workspaces —
  /// DFS levels or compact extraction buffers, per the bank's backend —
  /// reach an allocation-free steady state.
  std::array<ReverseEngine, 3> inference_;
  std::array<InferenceResult, 3> inference_result_;
  /// Step-2 provenance for the current interval: the victim DIP that put
  /// each source into FLOODING_SIP_SET. Phase 3 uses it to drop non-spoofed
  /// flooding alerts whose victim's own flood alert was filtered out (e.g.
  /// as a misconfiguration), keeping the two alert families consistent.
  std::unordered_map<std::uint32_t, std::uint32_t> flooding_sip_victim_;
  std::unique_ptr<Forecaster<InvertibleSketch>> f_sip_dport_;
  std::unique_ptr<Forecaster<InvertibleSketch>> f_dip_dport_;
  std::unique_ptr<Forecaster<InvertibleSketch>> f_sip_dip_;
  std::unique_ptr<Forecaster<KarySketch>> fv_sip_dport_;
  std::unique_ptr<Forecaster<KarySketch>> fv_dip_dport_;
  std::unique_ptr<Forecaster<KarySketch>> fv_sip_dip_;
  std::unique_ptr<Forecaster<KarySketch>> f_os_;
  RatioFilter ratio_filter_;
  PersistenceFilter persistence_filter_;
};

}  // namespace hifind
