#include "detect/sketch_bank.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "common/mem_policy.hpp"
#include "common/task_pool.hpp"
#include "sketch/sketch_kernels.hpp"

namespace hifind {
namespace {

/// Derives the per-sketch seed from the master seed and a role tag, so that
/// the nine sketches use independent hash families while two banks built from
/// the same master seed remain combinable sketch-by-sketch.
std::uint64_t role_seed(std::uint64_t master, std::uint64_t role) {
  return mix64(master ^ mix64(role));
}

/// Copies a sketch shape with a seed derived from the bank's master seed and
/// a role tag. The nine sketches get independent hash families; two banks
/// built from equal configs derive identical seeds and stay combinable.
/// The caller's config is stored untouched, so combine() can reconstruct a
/// bank from a stored config without double-deriving seeds.
ReversibleSketchConfig derive(ReversibleSketchConfig c, std::uint64_t master,
                              std::uint64_t role) {
  c.seed = role_seed(master, role);
  return c;
}
KarySketchConfig derive(KarySketchConfig c, std::uint64_t master,
                        std::uint64_t role) {
  c.seed = role_seed(master, role);
  return c;
}
Sketch2dConfig derive(Sketch2dConfig c, std::uint64_t master,
                      std::uint64_t role) {
  c.seed = role_seed(master, role);
  return c;
}
CompactInvertibleConfig derive(CompactInvertibleConfig c, std::uint64_t master,
                               std::uint64_t role) {
  c.seed = role_seed(master, role);
  return c;
}

/// Assembles one invertible-sketch config for a bank role: both backend
/// shapes get role-derived seeds so a backend flip alone never changes which
/// hash families the OTHER backend would use.
InvertibleSketchConfig derive_inv(const SketchBankConfig& bank,
                                  const ReversibleSketchConfig& rs,
                                  const CompactInvertibleConfig& ci,
                                  std::uint64_t role) {
  return InvertibleSketchConfig{
      .kind = bank.backend,
      .reversible = derive(rs, bank.seed, role),
      .compact = derive(ci, bank.seed, role),
  };
}

}  // namespace

SketchBank::SketchBank(const SketchBankConfig& config)
    : config_(config),
      rs_sip_dport_(derive_inv(config, config.rs48, config.ci48, 11)),
      rs_dip_dport_(derive_inv(config, config.rs48, config.ci48, 12)),
      rs_sip_dip_(derive_inv(config, config.rs64, config.ci64, 13)),
      verif_sip_dport_(derive(config.verification, config.seed, 21)),
      verif_dip_dport_(derive(config.verification, config.seed, 22)),
      verif_sip_dip_(derive(config.verification, config.seed, 23)),
      os_dip_dport_(derive(config.original, config.seed, 24)),
      twod_sipdip_dport_(derive(config.twod, config.seed, 31)),
      twod_sipdport_dip_(derive(config.twod, config.seed, 32)),
      synack_history_(derive(config.verification, config.seed, 25)) {}

void SketchBank::record(const PacketRecord& p, double weight) {
  record_masked(p, kGroupAll, weight);
}

void SketchBank::record_masked(const PacketRecord& p, unsigned mask,
                               double weight) {
  RecordOp op;
  // Only SYN / SYN-ACK move the detection metric.
  if (!make_record_op(p, weight, op)) return;
  record_op(op, mask);
}

void SketchBank::record_op(const RecordOp& op, unsigned mask) {
  if (mask & kGroupRsSipDport) rs_sip_dport_.update(op.k_sip_dport, op.delta);
  if (mask & kGroupRsDipDport) rs_dip_dport_.update(op.k_dip_dport, op.delta);
  if (mask & kGroupRsSipDip) rs_sip_dip_.update(op.k_sip_dip, op.delta);
  if (mask & kGroupVerification) {
    verif_sip_dport_.update(op.k_sip_dport, op.delta);
    verif_dip_dport_.update(op.k_dip_dport, op.delta);
    verif_sip_dip_.update(op.k_sip_dip, op.delta);
  }
  if (mask & kGroupOsAndHistory) {
    if (op.syn) {
      os_dip_dport_.update(op.k_dip_dport, op.weight);  // OS: #SYN only
    } else {
      synack_history_.update(op.k_dip_dport, op.weight);  // lifetime activity
    }
  }
  if (mask & kGroupTwoD) {
    // 2D sketches: secondary dimension is the field the primary aggregates
    // out.
    twod_sipdip_dport_.update(op.k_sip_dip, unpack_key_port(op.k_sip_dport),
                              op.delta);
    twod_sipdport_dip_.update(
        op.k_sip_dport, std::uint64_t{unpack_key_ip(op.k_dip_dport).addr},
        op.delta);
  }
  if (mask & kGroupMeta) ++packets_recorded_;
}

void SketchBank::record_ops(std::span<const RecordOp> ops, unsigned mask) {
  // Operand staging is chunked either way; the loop NEST is what the batch
  // index mode selects.
  //
  // Vectorized mode is sketch-major: each sketch consumes the entire span
  // (in 256-op staged chunks) before the next sketch starts, so the counter
  // lines it pulls in on its first chunks stay cache-resident for the rest
  // of its turn. The op-major nest below instead cycles all ~27 MB of bank
  // state between any one sketch's 256-op turns, leaving every sketch cold
  // at every turn — measured ~25% slower on the million-flow span. Each
  // sketch still sees the full op stream in order under either nest, so
  // counters and stage sums are bit-identical to record_op per op.
  constexpr std::size_t kChunk = 256;
  std::array<KeyDelta, kChunk> kd;
  std::array<KeyDelta2d, kChunk> kd2;
  if (batch_index_mode() == BatchIndexMode::kVectorized) {
    const auto feed = [&](auto& sketch, std::uint64_t RecordOp::* key) {
      for (std::size_t base = 0; base < ops.size(); base += kChunk) {
        const std::size_t n = std::min(kChunk, ops.size() - base);
        for (std::size_t j = 0; j < n; ++j) {
          kd[j] = {ops[base + j].*key, ops[base + j].delta};
        }
        sketch.update_batch(std::span<const KeyDelta>(kd.data(), n));
      }
    };
    // Direction-filtered feed (OS sketch counts SYNs, history counts
    // SYN/ACKs): the kept subsequence preserves stream order.
    const auto feed_dir = [&](KarySketch& sketch, bool want_syn) {
      std::size_t m = 0;
      for (const auto& op : ops) {
        if (op.syn != want_syn) continue;
        kd[m++] = {op.k_dip_dport, op.weight};
        if (m == kChunk) {
          sketch.update_batch(std::span<const KeyDelta>(kd.data(), m));
          m = 0;
        }
      }
      if (m > 0) {
        sketch.update_batch(std::span<const KeyDelta>(kd.data(), m));
      }
    };
    const auto feed_2d = [&](TwoDSketch& sketch, auto&& cell) {
      for (std::size_t base = 0; base < ops.size(); base += kChunk) {
        const std::size_t n = std::min(kChunk, ops.size() - base);
        for (std::size_t j = 0; j < n; ++j) kd2[j] = cell(ops[base + j]);
        sketch.update_batch(std::span<const KeyDelta2d>(kd2.data(), n));
      }
    };
    if (mask & kGroupRsSipDport) feed(rs_sip_dport_, &RecordOp::k_sip_dport);
    if (mask & kGroupRsDipDport) feed(rs_dip_dport_, &RecordOp::k_dip_dport);
    if (mask & kGroupRsSipDip) feed(rs_sip_dip_, &RecordOp::k_sip_dip);
    if (mask & kGroupVerification) {
      feed(verif_sip_dport_, &RecordOp::k_sip_dport);
      feed(verif_dip_dport_, &RecordOp::k_dip_dport);
      feed(verif_sip_dip_, &RecordOp::k_sip_dip);
    }
    if (mask & kGroupOsAndHistory) {
      feed_dir(os_dip_dport_, true);
      feed_dir(synack_history_, false);
    }
    if (mask & kGroupTwoD) {
      // 2D sketches: secondary dimension is the field the primary
      // aggregates out.
      feed_2d(twod_sipdip_dport_, [](const RecordOp& op) {
        return KeyDelta2d{op.k_sip_dip,
                          std::uint64_t{unpack_key_port(op.k_sip_dport)},
                          op.delta};
      });
      feed_2d(twod_sipdport_dip_, [](const RecordOp& op) {
        return KeyDelta2d{op.k_sip_dport,
                          std::uint64_t{unpack_key_ip(op.k_dip_dport).addr},
                          op.delta};
      });
    }
    if (mask & kGroupMeta) packets_recorded_ += ops.size();
    return;
  }
  // Legacy op-major nest — the pre-vectorization pipeline path the bench
  // runner baselines the vectorized mode against.
  for (std::size_t base = 0; base < ops.size(); base += kChunk) {
    const std::span<const RecordOp> chunk = ops.subspan(
        base, std::min(kChunk, ops.size() - base));
    const std::size_t n = chunk.size();
    auto fill_1d = [&](std::uint64_t RecordOp::* key) {
      for (std::size_t j = 0; j < n; ++j) {
        kd[j] = {chunk[j].*key, chunk[j].delta};
      }
      return std::span<const KeyDelta>(kd.data(), n);
    };
    if (mask & kGroupRsSipDport) {
      rs_sip_dport_.update_batch(fill_1d(&RecordOp::k_sip_dport));
    }
    if (mask & kGroupRsDipDport) {
      rs_dip_dport_.update_batch(fill_1d(&RecordOp::k_dip_dport));
    }
    if (mask & kGroupRsSipDip) {
      rs_sip_dip_.update_batch(fill_1d(&RecordOp::k_sip_dip));
    }
    if (mask & kGroupVerification) {
      verif_sip_dport_.update_batch(fill_1d(&RecordOp::k_sip_dport));
      verif_dip_dport_.update_batch(fill_1d(&RecordOp::k_dip_dport));
      verif_sip_dip_.update_batch(fill_1d(&RecordOp::k_sip_dip));
    }
    if (mask & kGroupOsAndHistory) {
      // Split by direction; each subsequence keeps stream order.
      std::size_t m = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (chunk[j].syn) kd[m++] = {chunk[j].k_dip_dport, chunk[j].weight};
      }
      os_dip_dport_.update_batch(std::span<const KeyDelta>(kd.data(), m));
      m = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (!chunk[j].syn) kd[m++] = {chunk[j].k_dip_dport, chunk[j].weight};
      }
      synack_history_.update_batch(std::span<const KeyDelta>(kd.data(), m));
    }
    if (mask & kGroupTwoD) {
      for (std::size_t j = 0; j < n; ++j) {
        kd2[j] = {chunk[j].k_sip_dip,
                  std::uint64_t{unpack_key_port(chunk[j].k_sip_dport)},
                  chunk[j].delta};
      }
      twod_sipdip_dport_.update_batch(
          std::span<const KeyDelta2d>(kd2.data(), n));
      for (std::size_t j = 0; j < n; ++j) {
        kd2[j] = {chunk[j].k_sip_dport,
                  std::uint64_t{unpack_key_ip(chunk[j].k_dip_dport).addr},
                  chunk[j].delta};
      }
      twod_sipdport_dip_.update_batch(
          std::span<const KeyDelta2d>(kd2.data(), n));
    }
    if (mask & kGroupMeta) packets_recorded_ += n;
  }
}

void SketchBank::clear() {
  rs_sip_dport_.clear();
  rs_dip_dport_.clear();
  rs_sip_dip_.clear();
  verif_sip_dport_.clear();
  verif_dip_dport_.clear();
  verif_sip_dip_.clear();
  os_dip_dport_.clear();
  twod_sipdip_dport_.clear();
  twod_sipdport_dip_.clear();
  packets_recorded_ = 0;
}

void SketchBank::reset_all() {
  clear();
  synack_history_.clear();
}

void SketchBank::sync_history_from(const SketchBank& other) {
  if (!combinable_with(other)) {
    throw std::invalid_argument(
        "SketchBank::sync_history_from: banks have different shape or seed");
  }
  // clear + accumulate(1.0) is a bit-exact copy: 0.0 + 1.0 * x == x for
  // every double, so the spare generation's history matches the active one
  // counter-for-counter.
  synack_history_.clear();
  synack_history_.accumulate(other.synack_history_, 1.0);
}

void SketchBank::accumulate(const SketchBank& other, double coeff) {
  if (!combinable_with(other)) {
    throw std::invalid_argument(
        "SketchBank::accumulate: banks have different shape or seed");
  }
  rs_sip_dport_.accumulate(other.rs_sip_dport_, coeff);
  rs_dip_dport_.accumulate(other.rs_dip_dport_, coeff);
  rs_sip_dip_.accumulate(other.rs_sip_dip_, coeff);
  verif_sip_dport_.accumulate(other.verif_sip_dport_, coeff);
  verif_dip_dport_.accumulate(other.verif_dip_dport_, coeff);
  verif_sip_dip_.accumulate(other.verif_sip_dip_, coeff);
  os_dip_dport_.accumulate(other.os_dip_dport_, coeff);
  twod_sipdip_dport_.accumulate(other.twod_sipdip_dport_, coeff);
  twod_sipdport_dip_.accumulate(other.twod_sipdport_dip_, coeff);
  synack_history_.accumulate(other.synack_history_, coeff);
  packets_recorded_ += other.packets_recorded_;
}

SketchBank SketchBank::combine(
    std::span<const std::pair<double, const SketchBank*>> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("SketchBank::combine: no terms");
  }
  // Rebuild from the ORIGINAL (pre-seeding) master config; the constructor
  // re-derives identical per-sketch seeds, so shapes match exactly.
  SketchBank out(terms.front().second->config());
  for (const auto& [coeff, bank] : terms) {
    out.accumulate(*bank, coeff);
  }
  return out;
}

namespace {

/// Projects bank-level terms onto one member sketch, staging them in a
/// fixed stack array (no allocation on the seal path).
template <class Sketch, std::size_t N>
std::span<const std::pair<double, const Sketch*>> project_terms(
    std::span<const std::pair<double, const SketchBank*>> terms,
    const Sketch& (SketchBank::*member)() const,
    std::array<std::pair<double, const Sketch*>, N>& scratch) {
  for (std::size_t i = 0; i < terms.size(); ++i) {
    scratch[i] = {terms[i].first, &(terms[i].second->*member)()};
  }
  return {scratch.data(), terms.size()};
}

}  // namespace

void SketchBank::combine_into(
    std::span<const std::pair<double, const SketchBank*>> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("SketchBank::combine_into: no terms");
  }
  if (terms.size() > kMaxShards) {
    throw std::invalid_argument("SketchBank::combine_into: too many terms");
  }
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (!combinable_with(*terms[i].second)) {
      throw std::invalid_argument(
          "SketchBank::combine_into: banks have different shape or seed");
    }
    if (i > 0 && terms[i].second == this) {
      throw std::invalid_argument(
          "SketchBank::combine_into: destination may only alias term 0");
    }
  }
  std::uint64_t packets = 0;
  for (const auto& [coeff, bank] : terms) {
    (void)coeff;
    packets += bank->packets_recorded_;
  }
  std::array<std::pair<double, const InvertibleSketch*>, kMaxShards> rs;
  std::array<std::pair<double, const KarySketch*>, kMaxShards> ks;
  std::array<std::pair<double, const TwoDSketch*>, kMaxShards> ts;
  rs_sip_dport_.combine_into(
      project_terms(terms, &SketchBank::rs_sip_dport, rs));
  rs_dip_dport_.combine_into(
      project_terms(terms, &SketchBank::rs_dip_dport, rs));
  rs_sip_dip_.combine_into(project_terms(terms, &SketchBank::rs_sip_dip, rs));
  verif_sip_dport_.combine_into(
      project_terms(terms, &SketchBank::verif_sip_dport, ks));
  verif_dip_dport_.combine_into(
      project_terms(terms, &SketchBank::verif_dip_dport, ks));
  verif_sip_dip_.combine_into(
      project_terms(terms, &SketchBank::verif_sip_dip, ks));
  os_dip_dport_.combine_into(
      project_terms(terms, &SketchBank::os_dip_dport, ks));
  twod_sipdip_dport_.combine_into(
      project_terms(terms, &SketchBank::twod_sipdip_dport, ts));
  twod_sipdport_dip_.combine_into(
      project_terms(terms, &SketchBank::twod_sipdport_dip, ts));
  synack_history_.combine_into(
      project_terms(terms, &SketchBank::synack_history, ks));
  packets_recorded_ = packets;
}

void SketchBank::merge_shards(std::span<const SketchBank* const> shards,
                              TaskPool* pool) {
  if (shards.empty()) {
    throw std::invalid_argument("SketchBank::merge_shards: no shards");
  }
  if (shards.size() > kMaxShards) {
    throw std::invalid_argument("SketchBank::merge_shards: too many shards");
  }
  for (const SketchBank* shard : shards) {
    if (shard == this || !combinable_with(*shard)) {
      throw std::invalid_argument(
          "SketchBank::merge_shards: shard aliases the destination or has a "
          "different shape/seed");
    }
  }
  // Unit-coefficient terms, staged once; every task reads them concurrently.
  std::array<std::pair<double, const SketchBank*>, kMaxShards> terms;
  for (std::size_t i = 0; i < shards.size(); ++i) terms[i] = {1.0, shards[i]};
  const std::span<const std::pair<double, const SketchBank*>> span(
      terms.data(), shards.size());

  // One task per member sketch: the reductions touch disjoint destination
  // arrays, so they fan out on the pool with no further coordination; a
  // null/inline pool degenerates to the sequential merge. Term staging
  // arrays live in each task's frame — fixed-size, allocation-free.
  auto run = [&](auto&& task) {
    if (pool != nullptr) {
      pool->submit(std::forward<decltype(task)>(task));
    } else {
      task();
    }
  };
  run([this, span] {
    std::array<std::pair<double, const InvertibleSketch*>, kMaxShards> t;
    rs_sip_dport_.combine_into(
        project_terms(span, &SketchBank::rs_sip_dport, t));
  });
  run([this, span] {
    std::array<std::pair<double, const InvertibleSketch*>, kMaxShards> t;
    rs_dip_dport_.combine_into(
        project_terms(span, &SketchBank::rs_dip_dport, t));
  });
  run([this, span] {
    std::array<std::pair<double, const InvertibleSketch*>, kMaxShards> t;
    rs_sip_dip_.combine_into(project_terms(span, &SketchBank::rs_sip_dip, t));
  });
  run([this, span] {
    std::array<std::pair<double, const KarySketch*>, kMaxShards> t;
    verif_sip_dport_.combine_into(
        project_terms(span, &SketchBank::verif_sip_dport, t));
  });
  run([this, span] {
    std::array<std::pair<double, const KarySketch*>, kMaxShards> t;
    verif_dip_dport_.combine_into(
        project_terms(span, &SketchBank::verif_dip_dport, t));
  });
  run([this, span] {
    std::array<std::pair<double, const KarySketch*>, kMaxShards> t;
    verif_sip_dip_.combine_into(
        project_terms(span, &SketchBank::verif_sip_dip, t));
  });
  run([this, span] {
    std::array<std::pair<double, const KarySketch*>, kMaxShards> t;
    os_dip_dport_.combine_into(
        project_terms(span, &SketchBank::os_dip_dport, t));
  });
  run([this, span] {
    std::array<std::pair<double, const TwoDSketch*>, kMaxShards> t;
    twod_sipdip_dport_.combine_into(
        project_terms(span, &SketchBank::twod_sipdip_dport, t));
  });
  run([this, span] {
    std::array<std::pair<double, const TwoDSketch*>, kMaxShards> t;
    twod_sipdport_dip_.combine_into(
        project_terms(span, &SketchBank::twod_sipdport_dip, t));
  });
  run([this, span] {
    // The lifetime history is CUMULATIVE: shards carry only this interval's
    // SYN/ACK deltas (they are reset after every merge), which accumulate
    // onto the merged bank's history in shard order.
    for (const auto& [coeff, bank] : span) {
      synack_history_.accumulate(bank->synack_history_, coeff);
    }
  });
  if (pool != nullptr) pool->wait_idle();

  std::uint64_t packets = 0;
  for (const SketchBank* shard : shards) {
    packets += shard->packets_recorded_;
  }
  packets_recorded_ = packets;
}

std::size_t SketchBank::memory_bytes() const {
  return rs_sip_dport_.memory_bytes() + rs_dip_dport_.memory_bytes() +
         rs_sip_dip_.memory_bytes() + verif_sip_dport_.memory_bytes() +
         verif_dip_dport_.memory_bytes() + verif_sip_dip_.memory_bytes() +
         os_dip_dport_.memory_bytes() + twod_sipdip_dport_.memory_bytes() +
         twod_sipdport_dip_.memory_bytes() + synack_history_.memory_bytes();
}

std::size_t SketchBank::memory_bytes_hw() const {
  return rs_sip_dport_.memory_bytes_hw() + rs_dip_dport_.memory_bytes_hw() +
         rs_sip_dip_.memory_bytes_hw() + verif_sip_dport_.memory_bytes_hw() +
         verif_dip_dport_.memory_bytes_hw() + verif_sip_dip_.memory_bytes_hw() +
         os_dip_dport_.memory_bytes_hw() +
         twod_sipdip_dport_.memory_bytes_hw() +
         twod_sipdport_dip_.memory_bytes_hw() +
         synack_history_.memory_bytes_hw();
}

std::size_t SketchBank::accesses_per_packet() const {
  return rs_sip_dport_.accesses_per_update() +
         rs_dip_dport_.accesses_per_update() +
         rs_sip_dip_.accesses_per_update() +
         verif_sip_dport_.accesses_per_update() +
         verif_dip_dport_.accesses_per_update() +
         verif_sip_dip_.accesses_per_update() +
         os_dip_dport_.accesses_per_update() +
         twod_sipdip_dport_.accesses_per_update() +
         twod_sipdport_dip_.accesses_per_update();
}

std::size_t SketchBank::bind_memory_to_node(int node) {
  using A = SketchKernelAccess;
  const std::span<double> ranges[] = {
      A::counters(rs_sip_dport_),      A::counters(rs_dip_dport_),
      A::counters(rs_sip_dip_),        A::counters(verif_sip_dport_),
      A::counters(verif_dip_dport_),   A::counters(verif_sip_dip_),
      A::counters(os_dip_dport_),      A::counters(twod_sipdip_dport_),
      A::counters(twod_sipdport_dip_), A::counters(synack_history_),
  };
  std::size_t bound = 0;
  for (const auto& r : ranges) {
    if (mem::bind_to_node(r.data(), r.size_bytes(), node)) ++bound;
  }
  return bound;
}

}  // namespace hifind
