#include "detect/alerts.hpp"

#include <algorithm>

namespace hifind {

const char* attack_type_name(AttackType type) {
  switch (type) {
    case AttackType::kSynFlooding:
      return "SYN flooding";
    case AttackType::kNonSpoofedSynFlooding:
      return "SYN flooding (non-spoofed)";
    case AttackType::kHorizontalScan:
      return "horizontal scan";
    case AttackType::kVerticalScan:
      return "vertical scan";
  }
  return "unknown";
}

std::string Alert::describe() const {
  return std::string(attack_type_name(type)) + " " +
         format_key(key_kind, key) + " magnitude=" +
         std::to_string(static_cast<long long>(magnitude)) + " interval=" +
         std::to_string(interval);
}

std::string CoverageReport::describe() const {
  std::string out;
  if (!degraded) {
    out = "coverage " + std::to_string(routers_combined.empty()
                                           ? routers_total
                                           : routers_combined.size()) +
          "/" + std::to_string(routers_total) + " (clean)";
  } else {
    out = "coverage " + std::to_string(routers_combined.size()) + "/" +
          std::to_string(routers_total) + " DEGRADED, missing{";
    for (std::size_t i = 0; i < routers_missing.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(routers_missing[i]);
    }
    out += '}';
  }
  if (shed) {
    out += "; SHED " + std::to_string(ops_shed) + "/" +
           std::to_string(ops_offered) + " ops (sample coverage " +
           std::to_string(sample_coverage) + ", max level " +
           std::to_string(shed_level_max) + ")";
  }
  return out;
}

std::string RefinementReport::describe() const {
  if (!active) return "refinement inactive";
  return "refinement tracked=" + std::to_string(tracked) + " confirmed=" +
         std::to_string(confirmed) + " killed=" + std::to_string(killed) +
         " unverified=" + std::to_string(unverified);
}

std::string EpochReport::describe() const {
  std::string out;
  if (!budgeted) {
    out = "epoch unbudgeted (complete)";
  } else {
    out = "epoch budget " + std::to_string(inference_work) + "/" +
          std::to_string(work_budget) + " work units";
    if (!truncated) {
      out += " (complete)";
    } else {
      out += " TRUNCATED";
      if (heavy_buckets_dropped > 0) {
        out += ", dropped " + std::to_string(heavy_buckets_dropped) +
               " heavy buckets";
      }
      if (candidates_truncated) out += ", candidate set cut short";
    }
  }
  if (shards > 0) {
    out += "; sharded x" + std::to_string(shards) + ", merge " +
           std::to_string(merge_us) + "us, occupancy [" +
           std::to_string(shard_occupancy_min) + ", " +
           std::to_string(shard_occupancy_max) + "]";
  }
  if (ring_full_spins > 0 || drain_spin_yields > 0) {
    out += "; ring backpressure full=" + std::to_string(ring_full_spins) +
           " drain_yields=" + std::to_string(drain_spin_yields);
  }
  return out;
}

std::size_t IntervalResult::count(const std::vector<Alert>& alerts,
                                  AttackType type) {
  return static_cast<std::size_t>(
      std::count_if(alerts.begin(), alerts.end(),
                    [type](const Alert& a) { return a.type == type; }));
}

}  // namespace hifind
