#include "detect/hifind.hpp"

#include <algorithm>
#include <thread>
#include <unordered_set>
#include <utility>

namespace hifind {
namespace {

template <class SketchT>
std::unique_ptr<Forecaster<SketchT>> build_forecaster(
    const HifindDetectorConfig& c, SketchArena<SketchT>* arena) {
  return make_forecaster<SketchT>(c.forecast_model, c.ewma_alpha, c.holt_beta,
                                  c.ma_window, arena);
}

}  // namespace

HifindDetector::HifindDetector(const HifindDetectorConfig& config)
    : config_(config),
      f_sip_dport_(build_forecaster<InvertibleSketch>(config, &rs_arena_)),
      f_dip_dport_(build_forecaster<InvertibleSketch>(config, &rs_arena_)),
      f_sip_dip_(build_forecaster<InvertibleSketch>(config, &rs_arena_)),
      fv_sip_dport_(build_forecaster<KarySketch>(config, &kary_arena_)),
      fv_dip_dport_(build_forecaster<KarySketch>(config, &kary_arena_)),
      fv_sip_dip_(build_forecaster<KarySketch>(config, &kary_arena_)),
      f_os_(build_forecaster<KarySketch>(config, &kary_arena_)),
      ratio_filter_(config.min_syn_ratio),
      persistence_filter_(config.min_persist_intervals) {}

void HifindDetector::ensure_pool() {
  if (pool_) return;
  std::size_t threads = config_.epoch_threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min<std::size_t>(hw == 0 ? 1 : hw, 8);
  }
  pool_ = std::make_unique<TaskPool>(threads);
}

IntervalResult HifindDetector::process(const SketchBank& bank,
                                       std::uint64_t interval) {
  IntervalResult result;
  result.interval = interval;
  const double t = config_.interval_threshold();
  ensure_pool();

  // Stage A — the 7 forecaster steps are independent tasks; each writes one
  // distinct slot. The RS steps collect their heavy-bucket candidates in the
  // same fused counter pass, so stage B starts with its scan already done.
  const InvertibleSketch* e_sip_dport = nullptr;
  const InvertibleSketch* e_dip_dport = nullptr;
  const InvertibleSketch* e_sip_dip = nullptr;
  const KarySketch* ev_sip_dport = nullptr;
  const KarySketch* ev_dip_dport = nullptr;
  const KarySketch* ev_sip_dip = nullptr;
  const KarySketch* e_os = nullptr;
  pool_->submit([&, t] {
    e_sip_dport = f_sip_dport_->step_collect(bank.rs_sip_dport(), t,
                                             hb_sip_dport_);
  });
  pool_->submit([&, t] {
    e_dip_dport = f_dip_dport_->step_collect(bank.rs_dip_dport(), t,
                                             hb_dip_dport_);
  });
  pool_->submit([&, t] {
    e_sip_dip = f_sip_dip_->step_collect(bank.rs_sip_dip(), t, hb_sip_dip_);
  });
  pool_->submit(
      [&] { ev_sip_dport = fv_sip_dport_->step_inplace(bank.verif_sip_dport()); });
  pool_->submit(
      [&] { ev_dip_dport = fv_dip_dport_->step_inplace(bank.verif_dip_dport()); });
  pool_->submit(
      [&] { ev_sip_dip = fv_sip_dip_->step_inplace(bank.verif_sip_dip()); });
  pool_->submit([&] { e_os = f_os_->step_inplace(bank.os_dip_dport()); });
  pool_->wait_idle();
  if (!e_sip_dport || !e_dip_dport || !e_sip_dip || !ev_sip_dport ||
      !ev_dip_dport || !ev_sip_dip) {
    return result;  // forecaster warm-up interval
  }

  // Stage B — the three verified inferences are independent of each other;
  // only the set logic joining their outputs (phase 1) is sequential. Each
  // runs as a streaming search driven in bounded chunks (drive_inference) so
  // attack-heavy reversal bursts interleave across the pool instead of
  // serializing behind one long task. Budget mode converts the deadline to
  // a deterministic work cap split evenly over the three searches.
  InferenceOptions opts = config_.inference;
  std::size_t work_budget = 0;
  if (config_.budget.enabled()) {
    work_budget = config_.budget.work_budget();
    opts.max_work = work_budget / 3;
    if (config_.budget.max_heavy_per_stage != 0) {
      opts.max_heavy_per_stage =
          opts.max_heavy_per_stage == 0
              ? config_.budget.max_heavy_per_stage
              : std::min(opts.max_heavy_per_stage,
                         config_.budget.max_heavy_per_stage);
    }
  }
  auto begin_inference = [&](std::size_t slot, const InvertibleSketch& error,
                             const KarySketch& verif, StageBuckets& buckets) {
    InferenceOptions o = opts;
    o.verifier = [&verif, t](std::uint64_t key, double /*estimate*/) {
      return verif.estimate(key) >= t;
    };
    inference_[slot].begin(error, t, o, std::move(buckets));
    pool_->submit([this, slot] { drive_inference(slot); });
  };
  begin_inference(0, *e_dip_dport, *ev_dip_dport, hb_dip_dport_);
  begin_inference(1, *e_sip_dip, *ev_sip_dip, hb_sip_dip_);
  begin_inference(2, *e_sip_dport, *ev_sip_dport, hb_sip_dport_);
  pool_->wait_idle();

  result.epoch.budgeted = config_.budget.enabled();
  result.epoch.work_budget = work_budget;
  for (const InferenceResult& r : inference_result_) {
    result.epoch.inference_work += r.work_used;
    result.epoch.heavy_buckets_dropped += r.heavy_buckets_dropped;
    result.epoch.candidates_truncated |= r.truncated || r.work_exhausted;
  }
  result.epoch.truncated = result.epoch.candidates_truncated ||
                           result.epoch.heavy_buckets_dropped > 0;

  result.raw = phase1(interval, inference_result_[0].keys,
                      inference_result_[1].keys, inference_result_[2].keys);
  result.after_2d =
      config_.enable_phase2 ? phase2(bank, result.raw) : result.raw;
  result.final = config_.enable_phase3
                     ? phase3(bank, e_os, result.after_2d)
                     : result.after_2d;
  // Consumers can always read `refined`; refinement-capable drivers (the
  // overlapped pipeline) overwrite it with the evidence-filtered list.
  result.refined = result.final;
  return result;
}

void HifindDetector::drive_inference(std::size_t slot) {
  // Chunk quantum: large enough that re-enqueue overhead is noise, small
  // enough that an attack-heavy search yields to waiting tasks every few
  // hundred microseconds. Affects scheduling only, never results.
  constexpr std::size_t kChunkWork = std::size_t{1} << 15;
  ReverseEngine& engine = inference_[slot];
  for (;;) {
    if (engine.run_chunk(kChunkWork)) {
      inference_result_[slot] = engine.take_result();
      return;
    }
    if (pool_->threads() > 0 && pool_->pending() > 0) {
      // Other tasks are starving behind this search: put the continuation at
      // the back of the queue and free the slot.
      pool_->submit([this, slot] { drive_inference(slot); });
      return;
    }
  }
}

IntervalResult HifindDetector::process(const SketchBank& bank,
                                       std::uint64_t interval,
                                       CoverageReport coverage) {
  IntervalResult result = process(bank, interval);
  result.coverage = std::move(coverage);
  return result;
}

std::vector<Alert> HifindDetector::phase1(
    std::uint64_t interval, const std::vector<HeavyKey>& keys_dip_dport,
    const std::vector<HeavyKey>& keys_sip_dip,
    const std::vector<HeavyKey>& keys_sip_dport) {
  std::vector<Alert> alerts;

  // Step 1 — RS({DIP,Dport}): SYN-flooding victims.
  std::unordered_set<std::uint32_t> flooding_dips;
  for (const HeavyKey& k : keys_dip_dport) {
    alerts.push_back(Alert{AttackType::kSynFlooding, interval,
                           KeyKind::DipDport, k.key, k.estimate});
    flooding_dips.insert(unpack_key_ip(k.key).addr);
  }

  // Step 2 — RS({SIP,DIP}): flooder identification or vertical scan.
  flooding_sip_victim_.clear();
  std::unordered_set<std::uint32_t> flooding_sips;
  for (const HeavyKey& k : keys_sip_dip) {
    if (flooding_dips.contains(unpack_key_dip(k.key).addr)) {
      flooding_sips.insert(unpack_key_sip(k.key).addr);
      flooding_sip_victim_.emplace(unpack_key_sip(k.key).addr,
                                   unpack_key_dip(k.key).addr);
    } else {
      alerts.push_back(Alert{AttackType::kVerticalScan, interval,
                             KeyKind::SipDip, k.key, k.estimate});
    }
  }

  // Step 3 — RS({SIP,Dport}): non-spoofed flooding or horizontal scan.
  for (const HeavyKey& k : keys_sip_dport) {
    if (flooding_sips.contains(unpack_key_ip(k.key).addr)) {
      alerts.push_back(Alert{AttackType::kNonSpoofedSynFlooding, interval,
                             KeyKind::SipDport, k.key, k.estimate});
    } else {
      alerts.push_back(Alert{AttackType::kHorizontalScan, interval,
                             KeyKind::SipDport, k.key, k.estimate});
    }
  }
  return alerts;
}

std::vector<Alert> HifindDetector::phase2(
    const SketchBank& bank, const std::vector<Alert>& alerts) const {
  // A non-spoofed SYN flood below the step-1 threshold (or with an unstable
  // victim set) leaks into the scan alerts; the 2D sketches expose its
  // concentrated secondary dimension and remove it (paper Sec. 4).
  std::vector<Alert> kept;
  kept.reserve(alerts.size());
  for (const Alert& a : alerts) {
    if (a.type == AttackType::kVerticalScan) {
      // A true vertical scan spreads over many Dports.
      if (bank.twod_sipdip_dport().classify(a.key, config_.twod_top_p,
                                            config_.twod_phi) ==
          ColumnShape::kConcentrated) {
        continue;  // flooding-like: drop from the scan list
      }
    } else if (a.type == AttackType::kHorizontalScan) {
      // A true horizontal scan spreads over many DIPs.
      if (bank.twod_sipdport_dip().classify(a.key, config_.twod_top_p,
                                            config_.twod_phi) ==
          ColumnShape::kConcentrated) {
        continue;
      }
    }
    kept.push_back(a);
  }
  return kept;
}

std::vector<Alert> HifindDetector::phase3(const SketchBank& bank,
                                          const KarySketch* os_error,
                                          const std::vector<Alert>& alerts) {
  persistence_filter_.begin_interval();
  std::vector<Alert> kept;
  kept.reserve(alerts.size());
  std::unordered_set<std::uint32_t> surviving_victims;
  for (const Alert& a : alerts) {
    if (a.type != AttackType::kSynFlooding) {
      continue;  // victim-keyed floods first; dependents in a second pass
    }
    // Ratio heuristic: congestion leaves some SYN/ACKs; floods leave none.
    const double syn_now = bank.os_dip_dport().estimate(a.key);
    const double unresp_now = bank.verif_dip_dport().estimate(a.key);
    const bool ratio_ok = ratio_filter_.keep(syn_now, unresp_now);
    // Misconfiguration heuristic: real DoS targets a live service.
    const bool service_ok =
        bank.synack_history().estimate(a.key) >= config_.min_service_history;
    // SYN-surge heuristic: a flood raises #SYN itself; a failed/congested
    // server has normal arrivals that merely go unanswered.
    const bool surge_ok =
        os_error == nullptr ||
        os_error->estimate(a.key) >=
            config_.min_syn_surge_fraction * a.magnitude;
    // Persistence heuristic: attacks last; track runs for every candidate so
    // a flood filtered this interval still builds history.
    const bool persist_ok = persistence_filter_.observe(a.key);
    if (ratio_ok && service_ok && surge_ok && persist_ok) {
      kept.push_back(a);
      surviving_victims.insert(a.dip().addr);
    }
  }
  persistence_filter_.end_interval();

  // Second pass: scan alerts pass through; a non-spoofed flooding alert is
  // kept only if the victim that linked its source into FLOODING_SIP_SET
  // itself survived the heuristics — if the "flood" was really a
  // misconfiguration or congestion event, its per-attacker echoes must go
  // with it.
  for (const Alert& a : alerts) {
    if (a.type == AttackType::kSynFlooding) continue;
    if (a.type == AttackType::kNonSpoofedSynFlooding) {
      const auto it = flooding_sip_victim_.find(a.sip().addr);
      if (it == flooding_sip_victim_.end() ||
          !surviving_victims.contains(it->second)) {
        continue;
      }
    }
    kept.push_back(a);
  }
  return kept;
}

void HifindDetector::reset() {
  f_sip_dport_->reset();
  f_dip_dport_->reset();
  f_sip_dip_->reset();
  fv_sip_dport_->reset();
  fv_dip_dport_->reset();
  fv_sip_dip_->reset();
  f_os_->reset();
  persistence_filter_ = PersistenceFilter(config_.min_persist_intervals);
}

}  // namespace hifind
