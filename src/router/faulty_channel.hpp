// Deterministic fault-injection harness for the router -> central
// collection path.
//
// Routers push serialized bank frames in (`ship`); the collector pulls them
// out (`fetch`, CollectorState::FetchFn-compatible). Between the two, a
// per-router FaultPlan injects the failure modes a real deployment sees —
// every one driven by one seeded Pcg32, so a test run is reproducible
// bit-for-bit:
//
//   drop        the fetch attempt returns nothing (transient loss; the
//               frame stays available for retries)
//   corrupt     the frame is delivered with byte flips (HFB2's CRC-32C must
//               catch these)
//   delay       frames become fetchable N interval boundaries late
//               (stragglers; exercises late -> received vs deadline expiry)
//   duplicate   the previously delivered frame is replayed instead of the
//               requested one (exercises (router, interval) dedupe)
//   reorder     a neighboring interval's frame answers the request
//               (exercises header-directed re-filing)
//
// An outage window (`set_outage`) makes a router disappear entirely for a
// range of intervals — the hard failure the CoverageReport exists for.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace hifind {

struct FaultPlan {
  double drop_prob{0.0};
  double corrupt_prob{0.0};
  double duplicate_prob{0.0};
  double reorder_prob{0.0};
  std::uint64_t delay_intervals{0};
  std::size_t corrupt_byte_flips{3};  ///< byte flips per corrupted frame
};

class FaultyChannel {
 public:
  FaultyChannel(std::size_t num_routers, std::uint64_t seed);

  void set_plan(std::size_t router, const FaultPlan& plan);

  /// Router `router` goes dark for intervals [first, last]: every fetch for
  /// those shipments returns nothing, forever.
  void set_outage(std::size_t router, std::uint64_t first, std::uint64_t last);

  /// Router side: publish the frame for one interval.
  void ship(std::size_t router, std::uint64_t interval,
            std::vector<std::uint8_t> frame);

  /// Advances the channel clock (delay faults compare against it).
  void advance_to(std::uint64_t interval);

  /// Collector side; bind as CollectorState::FetchFn. Deterministic given
  /// the seed and the sequence of calls.
  std::optional<std::vector<std::uint8_t>> fetch(std::size_t router,
                                                 std::uint64_t interval);

  /// Attempts answered with nothing (drops, outages, not-yet-shipped).
  std::uint64_t fetches_suppressed() const { return fetches_suppressed_; }
  /// Frames delivered with injected byte flips.
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  /// Requests answered with a replayed or reordered frame.
  std::uint64_t frames_misdelivered() const { return frames_misdelivered_; }

 private:
  struct PerRouter {
    FaultPlan plan;
    std::map<std::uint64_t, std::vector<std::uint8_t>> frames;
    std::vector<std::uint8_t> last_delivered;
    std::uint64_t outage_first{1};
    std::uint64_t outage_last{0};  ///< empty range by default
  };

  std::vector<PerRouter> routers_;
  Pcg32 rng_;
  std::uint64_t now_{0};
  std::uint64_t fetches_suppressed_{0};
  std::uint64_t frames_corrupted_{0};
  std::uint64_t frames_misdelivered_{0};
};

}  // namespace hifind
