// Resilient collection layer between edge routers and the central detector.
//
// The paper's multi-router story (Sec. 3.1 / Sec. 5.3.2) assumes every
// per-router bank reaches the central site intact and on time. A production
// edge deployment cannot: frames get dropped, delayed past the interval
// boundary, corrupted in flight, duplicated and reordered. This layer keeps
// the central detector running through all of that:
//
//  - CollectorState tracks each (router, interval) shipment through
//    pending -> received | late -> missing, pulling frames through a
//    caller-supplied fetch callback with bounded per-poll retries,
//    deduplicating replays, routing reordered frames to the interval they
//    belong to, and quarantining a sender after K consecutive bad frames
//    (CRC failures, header mismatches, shape mismatches).
//  - When an interval's deadline expires, it finalizes anyway: the received
//    banks are COMBINEd into a partial sum and reported together with a
//    CoverageReport naming exactly which routers made it.
//  - ResilientAggregator feeds each finalized interval to one
//    HifindDetector, rescaling partial sums by 1/coverage first. Sketch
//    linearity makes the rescaled bank an unbiased estimate of the
//    full-traffic bank under the router layer's uniform per-packet split,
//    so thresholds and forecaster state need no special-casing — and every
//    IntervalResult carries the coverage report so alert consumers can
//    discount detections made under partial coverage.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "detect/alerts.hpp"
#include "detect/hifind.hpp"
#include "detect/sketch_bank.hpp"

namespace hifind {

/// Lifecycle of one (router, interval) shipment.
enum class ShipmentStatus : std::uint8_t {
  kPending,      ///< due, not yet fetched successfully
  kReceived,     ///< decoded, deduplicated, shape-checked; in the sum
  kLate,         ///< missed at least one poll; still inside the deadline
  kMissing,      ///< deadline expired without a good frame
  kQuarantined,  ///< sender quarantined for repeated bad frames
};

const char* shipment_status_name(ShipmentStatus status);

struct CollectorConfig {
  std::size_t num_routers{1};
  /// Fetch attempts per outstanding shipment per poll (bounded retry: a
  /// transiently lossy pull can succeed on the immediate retry without
  /// waiting a full interval).
  std::size_t fetch_attempts_per_poll{2};
  /// Extra polls (interval boundaries) an incomplete interval waits for
  /// stragglers before finalizing on the partial sum. 0 = finalize at its
  /// own boundary, never wait.
  std::uint64_t deadline_polls{1};
  /// Consecutive bad frames (corrupt, mis-addressed, wrong shape) from one
  /// router before it is quarantined and excluded from collection.
  std::size_t quarantine_after{3};
};

/// Collection-path observability; every count is cumulative.
struct CollectorStats {
  std::uint64_t fetch_attempts{0};
  std::uint64_t fetch_retries{0};      ///< attempts beyond the first per poll
  std::uint64_t frames_received{0};
  std::uint64_t frames_corrupt{0};     ///< WireError on decode
  std::uint64_t frames_mismatched{0};  ///< header router != fetch address
  std::uint64_t frames_wrong_shape{0};  ///< bank config != expected config
  std::uint64_t frames_duplicate{0};   ///< replay of an already-received one
  std::uint64_t frames_reordered{0};   ///< delivered to a different pending
                                       ///< interval than asked for
  std::uint64_t frames_stale{0};       ///< for an already-finalized interval
  std::uint64_t intervals_degraded{0};
  std::size_t routers_quarantined{0};
};

/// One interval the collector has closed out, in order.
struct FinalizedInterval {
  std::uint64_t interval{0};
  CoverageReport coverage;
  /// Clean COMBINE (coefficient 1) of exactly the received banks — the
  /// partial sum detection runs on (after 1/coverage rescale). Kept
  /// unscaled so callers can bit-compare it against the received banks.
  SketchBank partial_sum;
  /// The received banks themselves, keyed by router id.
  std::vector<std::pair<std::uint32_t, SketchBank>> banks;
};

class CollectorState {
 public:
  /// Pull callback: return the (possibly faulty) frame bytes for one
  /// (router, interval) shipment, or nullopt if nothing is available yet.
  using FetchFn = std::function<std::optional<std::vector<std::uint8_t>>(
      std::size_t router, std::uint64_t interval)>;

  /// @param bank_config  the agreed bank shape; frames whose embedded config
  ///                     differs are rejected as bad (they would poison the
  ///                     COMBINE), and all-missing intervals still produce a
  ///                     well-shaped zero partial sum.
  CollectorState(const CollectorConfig& config, SketchBankConfig bank_config,
                 FetchFn fetch);

  /// Called at the boundary of `interval` (monotonically increasing):
  /// registers shipments for every interval up to and including it, polls
  /// all outstanding shipments (bounded retries, dedupe, quarantine), and
  /// returns every interval that finalized — complete, or past its deadline
  /// — in interval order.
  std::vector<FinalizedInterval> poll(std::uint64_t interval);

  /// Status of one shipment: outstanding intervals answer live state;
  /// recently finalized intervals answer from a bounded history window.
  ShipmentStatus status(std::size_t router, std::uint64_t interval) const;

  bool quarantined(std::size_t router) const {
    return quarantined_.at(router);
  }

  const CollectorStats& stats() const { return stats_; }
  const CollectorConfig& config() const { return config_; }

 private:
  struct Shipment {
    ShipmentStatus status{ShipmentStatus::kPending};
    std::optional<SketchBank> bank;
  };
  struct PendingInterval {
    std::uint64_t interval{0};
    std::uint64_t first_poll{0};  ///< poll at which the interval became due
    std::vector<Shipment> shipments;
  };

  PendingInterval* find_pending(std::uint64_t interval);
  void fetch_into(PendingInterval& due, std::size_t router);
  /// Files one decoded frame under the interval its header names (reorder
  /// handling); returns true if it landed as a new reception anywhere.
  bool accept_frame(PendingInterval& asked, std::size_t router,
                    std::uint8_t version, std::uint32_t header_router,
                    std::uint64_t header_interval, SketchBank&& bank);
  void note_bad_frame(std::size_t router);
  FinalizedInterval finalize(PendingInterval& p);

  CollectorConfig config_;
  SketchBankConfig bank_config_;
  FetchFn fetch_;
  std::deque<PendingInterval> pending_;  ///< in interval order
  std::vector<std::size_t> consecutive_bad_;
  std::vector<bool> quarantined_;
  std::uint64_t next_due_{0};
  bool started_{false};
  std::uint64_t polls_{0};
  /// Status history of finalized intervals, bounded to the last
  /// kStatusHistory intervals (observability, not correctness).
  static constexpr std::size_t kStatusHistory = 64;
  std::map<std::uint64_t, std::vector<ShipmentStatus>> finalized_status_;
  CollectorStats stats_;
};

/// CollectorState wired to one central HifindDetector: the DoS-resilient
/// replacement for DistributedMonitor::end_interval's perfect-network
/// COMBINE.
class ResilientAggregator {
 public:
  ResilientAggregator(const CollectorConfig& collector_config,
                      const SketchBankConfig& bank_config,
                      const HifindDetectorConfig& detector_config,
                      CollectorState::FetchFn fetch);

  /// Interval boundary: polls shipments and runs detection on every interval
  /// that finalized, in order. Partial sums are rescaled by 1/coverage; a
  /// zero-coverage interval skips the detector entirely (feeding it an empty
  /// bank would drag the forecasters toward zero) and yields an alert-free,
  /// degraded-flagged result.
  std::vector<IntervalResult> end_interval(std::uint64_t interval);

  const CollectorState& collector() const { return collector_; }

 private:
  CollectorState collector_;
  SketchBankConfig bank_config_;
  HifindDetector detector_;
};

}  // namespace hifind
