#include "router/collector.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

#include "detect/sketch_wire.hpp"

namespace hifind {

const char* shipment_status_name(ShipmentStatus status) {
  switch (status) {
    case ShipmentStatus::kPending:
      return "pending";
    case ShipmentStatus::kReceived:
      return "received";
    case ShipmentStatus::kLate:
      return "late";
    case ShipmentStatus::kMissing:
      return "missing";
    case ShipmentStatus::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

CollectorState::CollectorState(const CollectorConfig& config,
                               SketchBankConfig bank_config, FetchFn fetch)
    : config_(config),
      bank_config_(std::move(bank_config)),
      fetch_(std::move(fetch)),
      consecutive_bad_(config.num_routers, 0),
      quarantined_(config.num_routers, false) {
  if (config_.num_routers == 0) {
    throw std::invalid_argument("CollectorState needs >=1 router");
  }
  if (config_.fetch_attempts_per_poll == 0) {
    throw std::invalid_argument(
        "CollectorState needs >=1 fetch attempt per poll");
  }
  if (!fetch_) {
    throw std::invalid_argument("CollectorState needs a fetch callback");
  }
}

CollectorState::PendingInterval* CollectorState::find_pending(
    std::uint64_t interval) {
  for (auto& p : pending_) {
    if (p.interval == interval) return &p;
  }
  return nullptr;
}

void CollectorState::note_bad_frame(std::size_t router) {
  if (quarantined_[router]) return;
  if (++consecutive_bad_[router] < config_.quarantine_after) return;
  quarantined_[router] = true;
  ++stats_.routers_quarantined;
  for (auto& p : pending_) {
    if (p.shipments[router].status != ShipmentStatus::kReceived) {
      p.shipments[router].status = ShipmentStatus::kQuarantined;
    }
  }
}

bool CollectorState::accept_frame(PendingInterval& asked, std::size_t router,
                                  std::uint8_t version,
                                  std::uint32_t header_router,
                                  std::uint64_t header_interval,
                                  SketchBank&& bank) {
  // Legacy HFB1 frames carry no header; trust the fetch address.
  if (version >= 2 && header_router != router) {
    ++stats_.frames_mismatched;
    note_bad_frame(router);
    return false;
  }
  if (!(bank.config() == bank_config_)) {
    // A mis-shaped bank would poison the COMBINE; reject before it can.
    ++stats_.frames_wrong_shape;
    note_bad_frame(router);
    return false;
  }
  PendingInterval* target = &asked;
  if (version >= 2 && header_interval != asked.interval) {
    // The channel answered with a frame for a different interval (reorder /
    // replay). File it where it belongs if that interval is still open.
    target = find_pending(header_interval);
    if (target == nullptr) {
      ++stats_.frames_stale;
      return false;
    }
    if (target->shipments[router].status == ShipmentStatus::kReceived) {
      ++stats_.frames_duplicate;
      return false;
    }
    ++stats_.frames_reordered;
  } else if (asked.shipments[router].status == ShipmentStatus::kReceived) {
    ++stats_.frames_duplicate;
    return false;
  }
  target->shipments[router].bank = std::move(bank);
  target->shipments[router].status = ShipmentStatus::kReceived;
  ++stats_.frames_received;
  consecutive_bad_[router] = 0;
  return target == &asked;
}

void CollectorState::fetch_into(PendingInterval& due, std::size_t router) {
  Shipment& s = due.shipments[router];
  if (s.status == ShipmentStatus::kReceived ||
      s.status == ShipmentStatus::kQuarantined) {
    return;
  }
  for (std::size_t attempt = 0; attempt < config_.fetch_attempts_per_poll;
       ++attempt) {
    ++stats_.fetch_attempts;
    if (attempt > 0) ++stats_.fetch_retries;
    std::optional<std::vector<std::uint8_t>> bytes =
        fetch_(router, due.interval);
    if (!bytes) continue;  // nothing on the wire yet; retry within budget
    try {
      BankFrame frame = deserialize_frame(*bytes);
      if (accept_frame(due, router, frame.version, frame.router_id,
                       frame.interval, std::move(frame.bank))) {
        return;
      }
      if (quarantined_[router]) return;
    } catch (const WireError&) {
      ++stats_.frames_corrupt;
      note_bad_frame(router);
      if (quarantined_[router]) return;
    }
  }
  // Retry budget exhausted without this interval's frame: the shipment is
  // now officially a straggler (the deadline decides when it turns missing).
  s.status = ShipmentStatus::kLate;
}

std::vector<FinalizedInterval> CollectorState::poll(std::uint64_t interval) {
  if (started_ && interval < next_due_ - 1) {
    throw std::invalid_argument("CollectorState::poll: interval went back");
  }
  // Register every newly due interval (a caller skipping quiet intervals
  // still gets one pending entry each — routers ship every interval).
  const std::uint64_t from = started_ ? next_due_ : interval;
  for (std::uint64_t iv = from; iv <= interval; ++iv) {
    PendingInterval p;
    p.interval = iv;
    p.first_poll = polls_;
    p.shipments.resize(config_.num_routers);
    for (std::size_t r = 0; r < config_.num_routers; ++r) {
      if (quarantined_[r]) {
        p.shipments[r].status = ShipmentStatus::kQuarantined;
      }
    }
    pending_.push_back(std::move(p));
  }
  started_ = true;
  next_due_ = interval + 1;

  for (auto& p : pending_) {
    for (std::size_t r = 0; r < config_.num_routers; ++r) {
      fetch_into(p, r);
    }
  }
  ++polls_;

  // Finalize strictly from the front: the detector's forecasters need
  // intervals in order, so a complete interval still waits behind an
  // incomplete one that is inside its straggler deadline.
  std::vector<FinalizedInterval> out;
  while (!pending_.empty()) {
    PendingInterval& front = pending_.front();
    const bool complete = std::all_of(
        front.shipments.begin(), front.shipments.end(), [](const Shipment& s) {
          return s.status == ShipmentStatus::kReceived ||
                 s.status == ShipmentStatus::kQuarantined;
        });
    const bool expired = polls_ - front.first_poll > config_.deadline_polls;
    if (!complete && !expired) break;
    out.push_back(finalize(front));
    pending_.pop_front();
  }
  return out;
}

FinalizedInterval CollectorState::finalize(PendingInterval& p) {
  FinalizedInterval f{p.interval, CoverageReport{}, SketchBank(bank_config_),
                      {}};
  f.coverage.routers_total = config_.num_routers;
  std::vector<ShipmentStatus> statuses(config_.num_routers);
  for (std::size_t r = 0; r < config_.num_routers; ++r) {
    Shipment& s = p.shipments[r];
    if (s.status == ShipmentStatus::kReceived) {
      f.coverage.routers_combined.push_back(static_cast<std::uint32_t>(r));
      f.partial_sum.accumulate(*s.bank);
      f.banks.emplace_back(static_cast<std::uint32_t>(r),
                           std::move(*s.bank));
    } else {
      if (s.status != ShipmentStatus::kQuarantined) {
        s.status = ShipmentStatus::kMissing;
      }
      f.coverage.routers_missing.push_back(static_cast<std::uint32_t>(r));
    }
    statuses[r] = s.status;
  }
  f.coverage.fraction =
      static_cast<double>(f.coverage.routers_combined.size()) /
      static_cast<double>(config_.num_routers);
  f.coverage.degraded = !f.coverage.routers_missing.empty();
  if (f.coverage.degraded) ++stats_.intervals_degraded;

  finalized_status_.emplace(p.interval, std::move(statuses));
  while (finalized_status_.size() > kStatusHistory) {
    finalized_status_.erase(finalized_status_.begin());
  }
  return f;
}

ShipmentStatus CollectorState::status(std::size_t router,
                                      std::uint64_t interval) const {
  if (router >= config_.num_routers) {
    throw std::out_of_range("CollectorState::status: bad router");
  }
  for (const auto& p : pending_) {
    if (p.interval == interval) return p.shipments[router].status;
  }
  const auto it = finalized_status_.find(interval);
  if (it == finalized_status_.end()) {
    throw std::out_of_range(
        "CollectorState::status: interval not tracked (never due, or aged "
        "out of the history window)");
  }
  return it->second[router];
}

ResilientAggregator::ResilientAggregator(
    const CollectorConfig& collector_config,
    const SketchBankConfig& bank_config,
    const HifindDetectorConfig& detector_config, CollectorState::FetchFn fetch)
    : collector_(collector_config, bank_config, std::move(fetch)),
      bank_config_(bank_config),
      detector_(detector_config) {}

std::vector<IntervalResult> ResilientAggregator::end_interval(
    std::uint64_t interval) {
  std::vector<IntervalResult> results;
  for (FinalizedInterval& f : collector_.poll(interval)) {
    if (f.coverage.routers_combined.empty()) {
      // Nothing arrived: there is no data to detect on, and feeding the
      // forecasters a zero bank would poison later intervals' baselines.
      IntervalResult r;
      r.interval = f.interval;
      r.coverage = std::move(f.coverage);
      results.push_back(std::move(r));
      continue;
    }
    if (!f.coverage.degraded) {
      results.push_back(detector_.process(f.partial_sum, f.interval,
                                          std::move(f.coverage)));
      continue;
    }
    // Partial coverage: rescale the sum by 1/coverage. Linearity makes this
    // an unbiased full-traffic estimate under the uniform per-packet split,
    // keeping thresholds and forecaster state on a consistent scale.
    const std::array<std::pair<double, const SketchBank*>, 1> term{
        {{1.0 / f.coverage.fraction, &f.partial_sum}}};
    const SketchBank scaled = SketchBank::combine(term);
    results.push_back(
        detector_.process(scaled, f.interval, std::move(f.coverage)));
  }
  return results;
}

}  // namespace hifind
