// Per-packet load-balancing splitter (paper Sec. 5.3.2's experiment setup).
//
// Models the asymmetric/multi-path routing of Figure 3: each packet —
// independently, including the SYN and SYN/ACK of one connection — takes a
// uniformly random edge router. With R routers, the two directions of a
// connection traverse different monitors with probability (R-1)/R, which is
// exactly the condition that breaks per-connection-state IDSes and that
// sketch COMBINE is immune to.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "packet/packet.hpp"

namespace hifind {

class PacketSplitter {
 public:
  PacketSplitter(std::size_t num_routers, std::uint64_t seed)
      : num_routers_(num_routers),
        rng_(mix64(seed), mix64(seed ^ 0x13579bdf2468aceULL)) {}

  /// Router index for the next packet (uniform, per packet).
  std::size_t route(const PacketRecord& /*p*/) {
    return rng_.bounded(static_cast<std::uint32_t>(num_routers_));
  }

  std::size_t num_routers() const { return num_routers_; }

 private:
  std::size_t num_routers_;
  Pcg32 rng_;
};

}  // namespace hifind
