#include "router/distributed.hpp"

#include <stdexcept>
#include <utility>

#include "detect/sketch_wire.hpp"

namespace hifind {

DistributedMonitor::DistributedMonitor(
    std::size_t num_routers, const SketchBankConfig& bank_config,
    const HifindDetectorConfig& detector_config, std::uint64_t splitter_seed)
    : detector_(detector_config), splitter_(num_routers, splitter_seed) {
  if (num_routers == 0) {
    throw std::invalid_argument("DistributedMonitor needs >=1 router");
  }
  banks_.reserve(num_routers);
  for (std::size_t i = 0; i < num_routers; ++i) {
    banks_.emplace_back(bank_config);  // same config => combinable
  }
}

void DistributedMonitor::feed(const PacketRecord& p) {
  banks_[splitter_.route(p)].record(p);
}

void DistributedMonitor::feed_at(std::size_t router, const PacketRecord& p) {
  banks_.at(router).record(p);
}

IntervalResult DistributedMonitor::end_interval(std::uint64_t interval) {
  std::vector<std::pair<double, const SketchBank*>> terms;
  terms.reserve(banks_.size());
  for (const SketchBank& b : banks_) terms.emplace_back(1.0, &b);
  const SketchBank combined = SketchBank::combine(terms);
  CoverageReport coverage;
  coverage.routers_total = banks_.size();
  coverage.routers_combined.resize(banks_.size());
  for (std::size_t i = 0; i < banks_.size(); ++i) {
    coverage.routers_combined[i] = static_cast<std::uint32_t>(i);
  }
  IntervalResult result =
      detector_.process(combined, interval, std::move(coverage));
  for (SketchBank& b : banks_) b.clear();
  return result;
}

std::vector<std::uint8_t> DistributedMonitor::ship_and_clear(
    std::size_t router, std::uint64_t interval) {
  SketchBank& bank = banks_.at(router);
  std::vector<std::uint8_t> frame =
      serialize_frame(bank, static_cast<std::uint32_t>(router), interval);
  bank.clear();
  return frame;
}

std::size_t DistributedMonitor::bytes_shipped_per_interval() const {
  std::size_t total = 0;
  for (const SketchBank& b : banks_) total += b.memory_bytes_hw();
  return total;
}

}  // namespace hifind
