// Distributed monitoring: per-router sketch recording plus central
// aggregation (paper Sec. 3.1, Figure 1c, and the Sec. 5.3.2 experiment).
//
// Each router records its share of the traffic into its own SketchBank. At
// every interval boundary the central site COMBINEs the banks — a few MB of
// linear state per router, not packet traces — and runs one HifindDetector
// on the sum. Sketch linearity guarantees the combined bank equals the bank
// a single router seeing all traffic would have built, so detection results
// are identical under any traffic split.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "detect/hifind.hpp"
#include "detect/sketch_bank.hpp"
#include "packet/packet.hpp"
#include "router/splitter.hpp"

namespace hifind {

class DistributedMonitor {
 public:
  /// @param num_routers  edge routers sharing the traffic.
  DistributedMonitor(std::size_t num_routers,
                     const SketchBankConfig& bank_config,
                     const HifindDetectorConfig& detector_config,
                     std::uint64_t splitter_seed = 97);

  /// Routes one packet to its (random) router's bank.
  void feed(const PacketRecord& p);

  /// Records a packet at a specific router (for non-random splits).
  void feed_at(std::size_t router, const PacketRecord& p);

  /// Combines all router banks, runs central detection, clears the banks.
  /// This is the perfect-network path: the result's CoverageReport always
  /// says full coverage. Deployments that cannot assume a perfect network
  /// pair ship_and_clear with the resilient collection layer
  /// (router/collector.hpp) instead.
  IntervalResult end_interval(std::uint64_t interval);

  /// Router-side half of resilient collection: serializes `router`'s bank as
  /// an HFB2 frame stamped (router, interval) and clears the bank for the
  /// next interval. The frame is what a real edge router would put on the
  /// wire toward the central site.
  std::vector<std::uint8_t> ship_and_clear(std::size_t router,
                                           std::uint64_t interval);

  std::size_t num_routers() const { return banks_.size(); }
  const SketchBank& bank(std::size_t router) const { return banks_[router]; }

  /// Bytes shipped router->central per interval (the paper's bandwidth
  /// argument: sketches, not traces, cross the network).
  std::size_t bytes_shipped_per_interval() const;

 private:
  std::vector<SketchBank> banks_;
  HifindDetector detector_;
  PacketSplitter splitter_;
};

}  // namespace hifind
