#include "router/faulty_channel.hpp"

#include <stdexcept>

#include "common/hash.hpp"

namespace hifind {

FaultyChannel::FaultyChannel(std::size_t num_routers, std::uint64_t seed)
    : routers_(num_routers),
      rng_(mix64(seed ^ 0xfa017c4a9e2b63d5ULL), mix64(seed)) {
  if (num_routers == 0) {
    throw std::invalid_argument("FaultyChannel needs >=1 router");
  }
}

void FaultyChannel::set_plan(std::size_t router, const FaultPlan& plan) {
  routers_.at(router).plan = plan;
}

void FaultyChannel::set_outage(std::size_t router, std::uint64_t first,
                               std::uint64_t last) {
  routers_.at(router).outage_first = first;
  routers_.at(router).outage_last = last;
}

void FaultyChannel::ship(std::size_t router, std::uint64_t interval,
                         std::vector<std::uint8_t> frame) {
  routers_.at(router).frames[interval] = std::move(frame);
}

void FaultyChannel::advance_to(std::uint64_t interval) { now_ = interval; }

std::optional<std::vector<std::uint8_t>> FaultyChannel::fetch(
    std::size_t router, std::uint64_t interval) {
  PerRouter& r = routers_.at(router);
  const FaultPlan& plan = r.plan;

  if (interval >= r.outage_first && interval <= r.outage_last) {
    ++fetches_suppressed_;
    return std::nullopt;
  }
  const auto it = r.frames.find(interval);
  if (it == r.frames.end()) {
    ++fetches_suppressed_;
    return std::nullopt;
  }
  // Straggler: the frame exists but has not "arrived" yet.
  if (plan.delay_intervals > 0 && now_ < interval + plan.delay_intervals) {
    ++fetches_suppressed_;
    return std::nullopt;
  }
  if (plan.drop_prob > 0.0 && rng_.chance(plan.drop_prob)) {
    ++fetches_suppressed_;
    return std::nullopt;
  }

  // Replay: answer with whatever this router delivered last time.
  if (plan.duplicate_prob > 0.0 && !r.last_delivered.empty() &&
      rng_.chance(plan.duplicate_prob)) {
    ++frames_misdelivered_;
    return r.last_delivered;
  }
  // Reorder: answer with a neighboring interval's frame if one is shipped.
  if (plan.reorder_prob > 0.0 && rng_.chance(plan.reorder_prob)) {
    auto other = r.frames.find(interval + 1);
    if (other == r.frames.end() && interval > 0) {
      other = r.frames.find(interval - 1);
    }
    if (other != r.frames.end() && other->first != interval) {
      ++frames_misdelivered_;
      r.last_delivered = other->second;
      return other->second;
    }
  }

  std::vector<std::uint8_t> out = it->second;
  if (plan.corrupt_prob > 0.0 && !out.empty() &&
      rng_.chance(plan.corrupt_prob)) {
    for (std::size_t i = 0; i < plan.corrupt_byte_flips; ++i) {
      const std::size_t pos =
          rng_.bounded(static_cast<std::uint32_t>(out.size()));
      out[pos] ^= static_cast<std::uint8_t>(1u + rng_.bounded(255));
    }
    ++frames_corrupted_;
    return out;  // a corrupt delivery is not a "last delivered" frame
  }
  r.last_delivered = out;
  return out;
}

}  // namespace hifind
