// CollectorState machine: shipment statuses, bounded retry, straggler
// deadlines, dedupe, reorder re-filing, quarantine, coverage reporting.
#include "router/collector.hpp"

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "../testing/synthetic.hpp"
#include "detect/sketch_wire.hpp"
#include "router/faulty_channel.hpp"

namespace hifind {
namespace {

using testing::feed_completed;
using testing::feed_flood;

SketchBankConfig bank_cfg() {
  SketchBankConfig c;
  c.seed = 17;
  c.rs48.bucket_bits = 6;
  c.rs48.num_stages = 2;
  c.rs64.bucket_bits = 8;
  c.rs64.num_stages = 2;
  c.verification.num_buckets = 1u << 8;
  c.verification.num_stages = 2;
  c.original.num_buckets = 1u << 8;
  c.original.num_stages = 2;
  c.twod.x_buckets = 1u << 6;
  c.twod.y_buckets = 8;
  c.twod.num_stages = 2;
  return c;
}

CollectorConfig coll_cfg(std::size_t routers, std::uint64_t deadline = 1) {
  CollectorConfig c;
  c.num_routers = routers;
  c.deadline_polls = deadline;
  c.fetch_attempts_per_poll = 2;
  c.quarantine_after = 3;
  return c;
}

/// Bank with distinct per-router content (so sums are distinguishable).
SketchBank router_bank(std::size_t router, std::uint64_t interval) {
  SketchBank b(bank_cfg());
  Pcg32 rng(1000 * interval + router);
  feed_completed(b, IPv4(10, 0, 0, static_cast<std::uint8_t>(router + 1)),
                 IPv4(129, 105, 1, 1), 443, 20 + static_cast<int>(router));
  feed_flood(b, IPv4(129, 105, 9, 9), 80, 50, true, rng);
  return b;
}

std::vector<std::uint8_t> frame_for(std::size_t router,
                                    std::uint64_t interval) {
  return serialize_frame(router_bank(router, interval),
                         static_cast<std::uint32_t>(router), interval);
}

bool same_counters(const SketchBank& a, const SketchBank& b) {
  return serialize_bank_hfb1(a) == serialize_bank_hfb1(b);
}

TEST(CollectorStateTest, CleanIntervalFinalizesImmediatelyWithFullCoverage) {
  FaultyChannel chan(3, 1);
  for (std::size_t r = 0; r < 3; ++r) chan.ship(r, 0, frame_for(r, 0));
  chan.advance_to(0);
  CollectorState coll(coll_cfg(3), bank_cfg(),
                      [&](std::size_t r, std::uint64_t iv) {
                        return chan.fetch(r, iv);
                      });
  const auto done = coll.poll(0);
  ASSERT_EQ(done.size(), 1u);
  const FinalizedInterval& f = done[0];
  EXPECT_EQ(f.interval, 0u);
  EXPECT_FALSE(f.coverage.degraded);
  EXPECT_DOUBLE_EQ(f.coverage.fraction, 1.0);
  EXPECT_EQ(f.coverage.routers_combined,
            (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_TRUE(f.coverage.routers_missing.empty());
  ASSERT_EQ(f.banks.size(), 3u);

  // partial_sum is the clean COMBINE of the received banks.
  std::vector<std::pair<double, const SketchBank*>> terms;
  for (const auto& [r, b] : f.banks) terms.emplace_back(1.0, &b);
  EXPECT_TRUE(same_counters(f.partial_sum, SketchBank::combine(terms)));
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(coll.status(r, 0), ShipmentStatus::kReceived);
  }
}

TEST(CollectorStateTest, StragglerInsideDeadlineStillFullCoverage) {
  FaultyChannel chan(2, 2);
  FaultPlan slow;
  slow.delay_intervals = 1;  // router 1's frames arrive one interval late
  chan.set_plan(1, slow);
  CollectorState coll(coll_cfg(2, /*deadline=*/2), bank_cfg(),
                      [&](std::size_t r, std::uint64_t iv) {
                        return chan.fetch(r, iv);
                      });

  chan.ship(0, 0, frame_for(0, 0));
  chan.ship(1, 0, frame_for(1, 0));
  chan.advance_to(0);
  EXPECT_TRUE(coll.poll(0).empty());  // waiting on the straggler
  EXPECT_EQ(coll.status(0, 0), ShipmentStatus::kReceived);
  EXPECT_EQ(coll.status(1, 0), ShipmentStatus::kLate);

  chan.ship(0, 1, frame_for(0, 1));
  chan.ship(1, 1, frame_for(1, 1));
  chan.advance_to(1);
  const auto done = coll.poll(1);  // straggler for 0 now fetchable
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].interval, 0u);
  EXPECT_FALSE(done[0].coverage.degraded);
  EXPECT_EQ(coll.status(1, 0), ShipmentStatus::kReceived);
  EXPECT_GT(coll.stats().fetch_retries, 0u);
}

TEST(CollectorStateTest, DeadlineExpiryFinalizesDegradedWithMissingList) {
  FaultyChannel chan(4, 3);
  chan.set_outage(2, 0, 0);  // router 2 dark for interval 0
  CollectorState coll(coll_cfg(4, /*deadline=*/1), bank_cfg(),
                      [&](std::size_t r, std::uint64_t iv) {
                        return chan.fetch(r, iv);
                      });
  for (std::size_t r = 0; r < 4; ++r) chan.ship(r, 0, frame_for(r, 0));
  chan.advance_to(0);
  EXPECT_TRUE(coll.poll(0).empty());

  for (std::size_t r = 0; r < 4; ++r) chan.ship(r, 1, frame_for(r, 1));
  chan.advance_to(1);
  const auto done = coll.poll(1);  // deadline for 0 expired; 1 is complete
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].interval, 0u);
  EXPECT_TRUE(done[0].coverage.degraded);
  EXPECT_EQ(done[0].coverage.routers_missing,
            (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(done[0].coverage.routers_combined,
            (std::vector<std::uint32_t>{0, 1, 3}));
  EXPECT_DOUBLE_EQ(done[0].coverage.fraction, 0.75);
  EXPECT_EQ(coll.status(2, 0), ShipmentStatus::kMissing);

  EXPECT_EQ(done[1].interval, 1u);
  EXPECT_FALSE(done[1].coverage.degraded);
  EXPECT_EQ(coll.stats().intervals_degraded, 1u);
}

TEST(CollectorStateTest, CompleteIntervalWaitsBehindStraggler) {
  // Detection is order-sensitive (forecasters): interval 1, though complete,
  // must not finalize before interval 0 resolves.
  FaultyChannel chan(2, 5);
  chan.set_outage(1, 0, 0);
  CollectorState coll(coll_cfg(2, /*deadline=*/2), bank_cfg(),
                      [&](std::size_t r, std::uint64_t iv) {
                        return chan.fetch(r, iv);
                      });
  for (std::uint64_t iv = 0; iv < 2; ++iv) {
    for (std::size_t r = 0; r < 2; ++r) chan.ship(r, iv, frame_for(r, iv));
  }
  chan.advance_to(0);
  EXPECT_TRUE(coll.poll(0).empty());
  chan.advance_to(1);
  EXPECT_TRUE(coll.poll(1).empty()) << "interval 1 must wait behind 0";
  chan.advance_to(2);
  chan.ship(0, 2, frame_for(0, 2));
  chan.ship(1, 2, frame_for(1, 2));
  const auto done = coll.poll(2);  // 0 expires; 1 and 2 complete
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].interval, 0u);
  EXPECT_TRUE(done[0].coverage.degraded);
  EXPECT_EQ(done[1].interval, 1u);
  EXPECT_FALSE(done[1].coverage.degraded);
  EXPECT_EQ(done[2].interval, 2u);
}

TEST(CollectorStateTest, CorruptFramesRetryThenQuarantineAfterK) {
  // Router 1 ships garbage every time; K=3 consecutive bad frames must
  // quarantine it, and coverage must then count it missing.
  std::uint64_t bad_frames_served = 0;
  CollectorState coll(
      coll_cfg(2), bank_cfg(),
      [&](std::size_t r,
          std::uint64_t iv) -> std::optional<std::vector<std::uint8_t>> {
        if (r == 1) {
          ++bad_frames_served;
          return std::vector<std::uint8_t>{'H', 'F', 'B', '2', 0, 1, 2, 3};
        }
        return serialize_frame(router_bank(r, iv),
                               static_cast<std::uint32_t>(r), iv);
      });

  const auto done0 = coll.poll(0);
  // 2 attempts/poll and K=3: quarantine lands mid-poll-1; interval 0
  // (deadline 1) then finalizes because every router is received or
  // quarantined.
  EXPECT_TRUE(done0.empty());
  EXPECT_FALSE(coll.quarantined(1));
  const auto done1 = coll.poll(1);
  EXPECT_TRUE(coll.quarantined(1));
  EXPECT_EQ(coll.stats().routers_quarantined, 1u);
  EXPECT_EQ(bad_frames_served, 3u) << "no fetches after quarantine";
  ASSERT_EQ(done1.size(), 2u);
  for (const auto& f : done1) {
    EXPECT_TRUE(f.coverage.degraded);
    EXPECT_EQ(f.coverage.routers_missing, (std::vector<std::uint32_t>{1}));
  }
  EXPECT_EQ(coll.status(1, 0), ShipmentStatus::kQuarantined);
  EXPECT_EQ(coll.stats().frames_corrupt, 3u);

  // Later intervals skip the quarantined router entirely.
  const auto done2 = coll.poll(2);
  ASSERT_EQ(done2.size(), 1u);
  EXPECT_EQ(done2[0].coverage.routers_combined,
            (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(bad_frames_served, 3u);
}

TEST(CollectorStateTest, ReplayedFrameIsDeduplicatedNotDoubleCounted) {
  // The channel replays router 0's interval-0 frame (already finalized) for
  // every interval-1 ask in poll(1); the stale frame must not land anywhere
  // and the real frame — arriving next poll — must be counted exactly once.
  int iv1_asks = 0;
  CollectorState coll(
      coll_cfg(1, /*deadline=*/2), bank_cfg(),
      [&](std::size_t, std::uint64_t iv)
          -> std::optional<std::vector<std::uint8_t>> {
        if (iv == 1 && ++iv1_asks <= 2) return frame_for(0, 0);  // replay
        return frame_for(0, iv);
      });
  const auto done0 = coll.poll(0);
  ASSERT_EQ(done0.size(), 1u);
  // Both poll(1) attempts replay the finalized interval-0 frame.
  EXPECT_TRUE(coll.poll(1).empty());
  EXPECT_EQ(coll.stats().frames_stale, 2u);
  // Next poll the real frame arrives; intervals 1 and 2 finalize clean.
  const auto done = coll.poll(2);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].interval, 1u);
  EXPECT_FALSE(done[0].coverage.degraded);
  EXPECT_TRUE(same_counters(done[0].partial_sum, router_bank(0, 1)));
}

TEST(CollectorStateTest, ReorderedFrameIsFiledToItsOwnInterval) {
  // While interval 0 is a straggler, the ask for it is answered with
  // interval 1's frame; the collector files that under pending interval 1
  // (frames_reordered) and still collects interval 0 on the retry.
  int calls = 0;
  CollectorState coll(
      coll_cfg(1, /*deadline=*/2), bank_cfg(),
      [&](std::size_t, std::uint64_t iv)
          -> std::optional<std::vector<std::uint8_t>> {
        ++calls;
        if (calls <= 2) return std::nullopt;   // poll(0): interval 0 misses
        if (calls == 3) return frame_for(0, 1);  // asked 0, answered 1
        return frame_for(0, iv);
      });
  EXPECT_TRUE(coll.poll(0).empty());
  EXPECT_EQ(coll.status(0, 0), ShipmentStatus::kLate);
  // poll(1): attempt 1 for interval 0 delivers interval 1's frame (filed
  // there), attempt 2 delivers the real interval-0 frame; both finalize.
  const auto done = coll.poll(1);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].interval, 0u);
  EXPECT_EQ(done[1].interval, 1u);
  EXPECT_FALSE(done[0].coverage.degraded);
  EXPECT_FALSE(done[1].coverage.degraded);
  EXPECT_EQ(coll.stats().frames_reordered, 1u);
  EXPECT_TRUE(same_counters(done[1].partial_sum, router_bank(0, 1)));
}

TEST(CollectorStateTest, ZeroCoverageIntervalReportsFractionZero) {
  CollectorState coll(coll_cfg(2, /*deadline=*/0), bank_cfg(),
                      [](std::size_t, std::uint64_t)
                          -> std::optional<std::vector<std::uint8_t>> {
                        return std::nullopt;
                      });
  const auto done = coll.poll(5);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].interval, 5u);
  EXPECT_TRUE(done[0].coverage.degraded);
  EXPECT_DOUBLE_EQ(done[0].coverage.fraction, 0.0);
  EXPECT_EQ(done[0].coverage.routers_missing.size(), 2u);
  EXPECT_TRUE(done[0].banks.empty());
  // The partial sum is a well-shaped zero bank, not a crash.
  EXPECT_EQ(done[0].partial_sum.packets_recorded(), 0u);
}

TEST(CollectorStateTest, MisaddressedFrameCountsTowardQuarantine) {
  // Frames whose header names the wrong router are rejected even though
  // they are otherwise pristine (cross-wired collection plumbing).
  CollectorState coll(
      coll_cfg(2), bank_cfg(),
      [&](std::size_t r,
          std::uint64_t iv) -> std::optional<std::vector<std::uint8_t>> {
        // Router 1 always ships frames claiming to be router 0.
        return serialize_frame(router_bank(r, iv), 0, iv);
      });
  coll.poll(0);
  coll.poll(1);
  EXPECT_GT(coll.stats().frames_mismatched, 0u);
  EXPECT_TRUE(coll.quarantined(1));
  EXPECT_FALSE(coll.quarantined(0));
}

TEST(CollectorStateTest, WrongShapeBankRejected) {
  SketchBankConfig other = bank_cfg();
  other.seed = 12345;  // different seed => not combinable
  CollectorState coll(
      coll_cfg(1), bank_cfg(),
      [&](std::size_t, std::uint64_t iv)
          -> std::optional<std::vector<std::uint8_t>> {
        return serialize_frame(SketchBank(other), 0, iv);
      });
  const auto done = coll.poll(0);
  EXPECT_GT(coll.stats().frames_wrong_shape, 0u);
  EXPECT_TRUE(done.empty() || done[0].coverage.degraded);
}

TEST(ResilientAggregatorTest, FullCoverageMatchesDirectDetection) {
  // With every frame arriving clean, the resilient path must be bit-for-bit
  // the plain COMBINE + detect.
  HifindDetectorConfig det;
  det.min_persist_intervals = 1;
  FaultyChannel chan(3, 7);
  ResilientAggregator agg(coll_cfg(3), bank_cfg(), det,
                          [&](std::size_t r, std::uint64_t iv) {
                            return chan.fetch(r, iv);
                          });
  HifindDetector ref(det);

  std::vector<IntervalResult> got;
  for (std::uint64_t iv = 0; iv < 3; ++iv) {
    std::vector<std::pair<double, const SketchBank*>> terms;
    std::vector<SketchBank> banks;
    banks.reserve(3);
    for (std::size_t r = 0; r < 3; ++r) {
      banks.push_back(router_bank(r, iv));
      if (iv == 1) {
        // Interval 1 carries an extra flood so there is something to detect.
        Pcg32 rng(99 + r);
        feed_flood(banks.back(), IPv4(129, 105, 9, 9), 80, 300, true, rng);
      }
      chan.ship(r, iv,
                serialize_frame(banks.back(),
                                static_cast<std::uint32_t>(r), iv));
    }
    for (const auto& b : banks) terms.emplace_back(1.0, &b);
    const IntervalResult expect =
        ref.process(SketchBank::combine(terms), iv);
    chan.advance_to(iv);
    auto out = agg.end_interval(iv);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].coverage.degraded);
    ASSERT_EQ(out[0].final.size(), expect.final.size());
    for (std::size_t i = 0; i < expect.final.size(); ++i) {
      EXPECT_EQ(out[0].final[i].key, expect.final[i].key);
      EXPECT_EQ(out[0].final[i].type, expect.final[i].type);
      EXPECT_DOUBLE_EQ(out[0].final[i].magnitude, expect.final[i].magnitude);
    }
    got.push_back(std::move(out[0]));
  }
  // The flood interval actually produced alerts (the comparison is not
  // vacuous).
  EXPECT_GE(got[1].final.size(), 1u);
}

}  // namespace
}  // namespace hifind
