#include "router/distributed.hpp"

#include <gtest/gtest.h>

#include "../testing/synthetic.hpp"

namespace hifind {
namespace {

using testing::feed_completed;
using testing::syn_packet;
using testing::synack_packet;

SketchBankConfig bank_cfg() {
  SketchBankConfig c;
  c.seed = 42;
  c.twod.x_buckets = 1u << 10;
  return c;
}

HifindDetectorConfig det_cfg() {
  HifindDetectorConfig c;
  c.min_persist_intervals = 1;
  return c;
}

TEST(PacketSplitterTest, RoutesUniformly) {
  PacketSplitter splitter(3, 7);
  std::vector<int> counts(3, 0);
  PacketRecord p;
  for (int i = 0; i < 30000; ++i) ++counts[splitter.route(p)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(DistributedMonitorTest, RejectsZeroRouters) {
  EXPECT_THROW(DistributedMonitor(0, bank_cfg(), det_cfg()),
               std::invalid_argument);
}

TEST(DistributedMonitorTest, SplitTrafficLandsOnAllBanks) {
  DistributedMonitor mon(3, bank_cfg(), det_cfg());
  Pcg32 rng(2);
  for (int i = 0; i < 3000; ++i) {
    mon.feed(syn_packet(i, IPv4{rng.next()},
                        IPv4{0x81690000u | (rng.next() & 0xffff)}, 80));
  }
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_GT(mon.bank(r).packets_recorded(), 800u) << "router " << r;
  }
}

// The heart of Sec. 5.3.2: detection over the COMBINED banks must match what
// a single monitor seeing the whole stream reports — even though each
// connection's SYN and SYN/ACK likely took different routers.
TEST(DistributedMonitorTest, AggregateMatchesSingleMonitor) {
  DistributedMonitor mon(3, bank_cfg(), det_cfg());
  SketchBank single(bank_cfg());
  HifindDetector single_det(det_cfg());
  Pcg32 rng(11);

  auto run_interval = [&](bool flood, std::uint64_t idx) {
    // Benign baseline: completed handshakes whose halves split randomly.
    for (int i = 0; i < 100; ++i) {
      const IPv4 client{0x64000000u + static_cast<std::uint32_t>(i)};
      const IPv4 server(129, 105, 1, 1);
      const auto sport = static_cast<std::uint16_t>(20000 + i);
      const auto s = syn_packet(i, client, server, 443, sport);
      const auto sa = synack_packet(i, server, 443, client, sport);
      mon.feed(s);
      mon.feed(sa);
      single.record(s);
      single.record(sa);
    }
    if (flood) {
      for (int i = 0; i < 400; ++i) {
        const auto p = syn_packet(1000 + i, IPv4{rng.next()},
                                  IPv4(129, 105, 1, 1), 443,
                                  static_cast<std::uint16_t>(1024 + i));
        mon.feed(p);
        single.record(p);
      }
    }
    const IntervalResult agg = mon.end_interval(idx);
    const IntervalResult ref = single_det.process(single, idx);
    single.clear();
    return std::make_pair(agg, ref);
  };

  run_interval(false, 0);
  const auto [agg, ref] = run_interval(true, 1);

  ASSERT_EQ(agg.final.size(), ref.final.size());
  for (std::size_t i = 0; i < agg.final.size(); ++i) {
    EXPECT_EQ(agg.final[i].type, ref.final[i].type);
    EXPECT_EQ(agg.final[i].key, ref.final[i].key);
    EXPECT_NEAR(agg.final[i].magnitude, ref.final[i].magnitude, 1e-6);
  }
  ASSERT_GE(agg.final.size(), 1u) << "the flood must actually be detected";
}

TEST(DistributedMonitorTest, ShippedBytesAreSketchSizedNotTraceSized) {
  DistributedMonitor mon(3, bank_cfg(), det_cfg());
  // Three routers ship three banks; each a fixed few MB (hw counters).
  const std::size_t shipped = mon.bytes_shipped_per_interval();
  EXPECT_EQ(shipped, 3 * SketchBank(bank_cfg()).memory_bytes_hw());
  EXPECT_LT(shipped, 64u * 1024 * 1024);
}

TEST(DistributedMonitorTest, FeedAtTargetsSpecificRouter) {
  DistributedMonitor mon(2, bank_cfg(), det_cfg());
  mon.feed_at(1, syn_packet(0, IPv4(1, 1, 1, 1), IPv4(2, 2, 2, 2), 80));
  EXPECT_EQ(mon.bank(0).packets_recorded(), 0u);
  EXPECT_EQ(mon.bank(1).packets_recorded(), 1u);
  EXPECT_THROW(
      mon.feed_at(5, syn_packet(0, IPv4(1, 1, 1, 1), IPv4(2, 2, 2, 2), 80)),
      std::out_of_range);
}

}  // namespace
}  // namespace hifind
