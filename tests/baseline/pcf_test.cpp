#include "baseline/pcf.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace hifind {
namespace {

PacketRecord syn(IPv4 sip, IPv4 dip, std::uint16_t dport = 80) {
  PacketRecord p;
  p.sip = sip;
  p.dip = dip;
  p.dport = dport;
  p.sport = 40000;
  p.flags = kSyn;
  return p;
}

PacketRecord synack(IPv4 server, IPv4 client, std::uint16_t sport = 80) {
  PacketRecord p;
  p.sip = server;
  p.dip = client;
  p.sport = sport;
  p.dport = 40000;
  p.flags = kSyn | kAck;
  p.outbound = true;
  return p;
}

TEST(PcfTest, RejectsDegenerateShapes) {
  EXPECT_THROW(Pcf(PcfConfig{.num_stages = 0}), std::invalid_argument);
  EXPECT_THROW(Pcf(PcfConfig{.num_buckets = 1}), std::invalid_argument);
}

TEST(PcfTest, BalancedHandshakesCancel) {
  Pcf pcf{PcfConfig{}};
  const IPv4 server(129, 105, 1, 1);
  for (int i = 0; i < 200; ++i) {
    const IPv4 client{0x64000000u + static_cast<std::uint32_t>(i)};
    pcf.observe(syn(client, server));
    pcf.observe(synack(server, client));
  }
  EXPECT_LE(pcf.min_estimate(server.addr), 1.0);
  EXPECT_FALSE(pcf.suspicious(server.addr));
}

TEST(PcfTest, FloodVictimShowsImbalance) {
  Pcf pcf{PcfConfig{}};
  const IPv4 victim(129, 105, 1, 1);
  Pcg32 rng(3);
  for (int i = 0; i < 500; ++i) {
    pcf.observe(syn(IPv4{rng.next()}, victim));
  }
  EXPECT_GE(pcf.min_estimate(victim.addr), 500.0 - 1.0);
  EXPECT_TRUE(pcf.suspicious(victim.addr));
  EXPECT_GE(pcf.alarmed_buckets(), 1u);
}

TEST(PcfTest, MinOverStagesSuppressesCollisionInflation) {
  // One stage's bucket may be inflated by unrelated mass; the min across
  // stages (independent hashes) bounds the overestimate — PCF's core trick.
  PcfConfig cfg;
  cfg.num_buckets = 64;  // force collisions
  Pcf pcf{cfg};
  Pcg32 rng(7);
  for (int i = 0; i < 2000; ++i) {
    pcf.observe(syn(IPv4{rng.next()},
                    IPv4{0x81690000u + (rng.next() & 0x3ffu)}));
  }
  const IPv4 quiet(129, 106, 9, 9);  // never targeted
  // Expected mass per bucket ~31; min over 3 stages is close to that, far
  // below a flood-scale signal.
  EXPECT_LT(pcf.min_estimate(quiet.addr), 200.0);
}

// The limitation the HiFIND paper calls out: PCF cannot NAME the victim
// (no reverse capability) and cannot tell floods from scans.
TEST(PcfTest, CannotDistinguishFloodFromScanTraffic) {
  Pcf flood_pcf{PcfConfig{}}, scan_pcf{PcfConfig{}};
  Pcg32 rng(9);
  // Flood: 300 SYNs to one victim.
  for (int i = 0; i < 300; ++i) {
    flood_pcf.observe(syn(IPv4{rng.next()}, IPv4(129, 105, 1, 1)));
  }
  // Vertical scan: 300 SYNs to one target across ports.
  for (int i = 0; i < 300; ++i) {
    scan_pcf.observe(syn(IPv4(6, 6, 6, 6), IPv4(129, 105, 1, 1),
                         static_cast<std::uint16_t>(1 + i)));
  }
  // Identical statistic for both: a key-level imbalance with no type info.
  EXPECT_TRUE(flood_pcf.suspicious(IPv4(129, 105, 1, 1).addr));
  EXPECT_TRUE(scan_pcf.suspicious(IPv4(129, 105, 1, 1).addr));
}

TEST(PcfTest, ClearResets) {
  Pcf pcf{PcfConfig{}};
  Pcg32 rng(11);
  for (int i = 0; i < 100; ++i) {
    pcf.observe(syn(IPv4{rng.next()}, IPv4(129, 105, 1, 1)));
  }
  pcf.clear();
  EXPECT_DOUBLE_EQ(pcf.min_estimate(IPv4(129, 105, 1, 1).addr), 0.0);
}

TEST(PcfTest, MemoryIsFixed) {
  Pcf pcf{PcfConfig{}};
  const std::size_t before = pcf.memory_bytes();
  Pcg32 rng(13);
  for (int i = 0; i < 100000; ++i) {
    pcf.observe(syn(IPv4{rng.next()}, IPv4{rng.next()}));
  }
  EXPECT_EQ(pcf.memory_bytes(), before);
}

}  // namespace
}  // namespace hifind
