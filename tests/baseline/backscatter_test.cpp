#include "baseline/backscatter.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hifind {
namespace {

TEST(BackscatterTest, SpoofedUniformSourcesPass) {
  BackscatterValidator v;
  Pcg32 rng(3);
  for (int i = 0; i < 2000; ++i) v.add_source(IPv4{rng.next()});
  const BackscatterVerdict verdict = v.verdict();
  EXPECT_TRUE(verdict.spoofed_uniform);
  EXPECT_GT(verdict.distinct_octets, 200u);
  EXPECT_LT(verdict.top_octet_share, 0.05);
}

TEST(BackscatterTest, SingleRealSourceFails) {
  BackscatterValidator v;
  for (int i = 0; i < 2000; ++i) v.add_source(IPv4(66, 1, 2, 3));
  EXPECT_FALSE(v.verdict().spoofed_uniform);
  EXPECT_EQ(v.verdict().distinct_octets, 1u);
}

TEST(BackscatterTest, ClusteredClientPopulationFails) {
  // Flash crowd: real clients concentrated in a handful of ISP /8s.
  BackscatterValidator v;
  Pcg32 rng(5);
  const std::uint8_t octets[] = {24, 66, 98, 130};
  for (int i = 0; i < 2000; ++i) {
    const std::uint8_t o = octets[rng.bounded(4)];
    v.add_source(IPv4{(std::uint32_t{o} << 24) | (rng.next() & 0xffffffu)});
  }
  const auto verdict = v.verdict();
  EXPECT_FALSE(verdict.spoofed_uniform);
  EXPECT_GT(verdict.top_octet_share, 0.15);
}

TEST(BackscatterTest, TooFewSamplesNeverPass) {
  BackscatterValidator v{BackscatterConfig{.min_samples = 50}};
  Pcg32 rng(7);
  for (int i = 0; i < 49; ++i) v.add_source(IPv4{rng.next()});
  EXPECT_FALSE(v.verdict().spoofed_uniform);
}

TEST(BackscatterTest, ChiSquareSmallForUniformLargeForSkewed) {
  BackscatterValidator uniform, skewed;
  Pcg32 rng(9);
  for (int i = 0; i < 25600; ++i) {
    uniform.add_source(IPv4{rng.next()});
    skewed.add_source(IPv4(10, 0, 0, 1));
  }
  // Uniform: chi-square ~ 255 (dof); skewed: ~ N*255.
  EXPECT_LT(uniform.verdict().chi_square, 400.0);
  EXPECT_GT(skewed.verdict().chi_square, 100000.0);
}

TEST(BackscatterTest, ResetClearsState) {
  BackscatterValidator v;
  Pcg32 rng(1);
  for (int i = 0; i < 500; ++i) v.add_source(IPv4{rng.next()});
  v.reset();
  EXPECT_EQ(v.verdict().samples, 0u);
  EXPECT_FALSE(v.verdict().spoofed_uniform);
}

}  // namespace
}  // namespace hifind
