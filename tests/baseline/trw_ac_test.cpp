#include "baseline/trw_ac.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hifind {
namespace {

PacketRecord syn(Timestamp ts, IPv4 sip, IPv4 dip, std::uint16_t dport) {
  PacketRecord p;
  p.ts = ts;
  p.sip = sip;
  p.dip = dip;
  p.sport = 40000;
  p.dport = dport;
  p.flags = kSyn;
  return p;
}

PacketRecord synack(Timestamp ts, IPv4 sip, IPv4 dip) {
  PacketRecord p;
  p.ts = ts;
  p.sip = sip;
  p.dip = dip;
  p.sport = 80;
  p.dport = 40000;
  p.flags = kSyn | kAck;
  return p;
}

TrwAcConfig small_cfg(std::size_t conn_entries = 1u << 12) {
  TrwAcConfig c;
  c.connection_cache_entries = conn_entries;
  c.address_table_entries = 1u << 12;
  return c;
}

TEST(TrwAcTest, RejectsEmptyTables) {
  TrwAcConfig c;
  c.connection_cache_entries = 0;
  EXPECT_THROW(TrwAc{c}, std::invalid_argument);
}

TEST(TrwAcTest, MemoryIsFixedRegardlessOfTraffic) {
  TrwAc ac{small_cfg()};
  const std::size_t before = ac.memory_bytes();
  Pcg32 rng(3);
  for (int i = 0; i < 50000; ++i) {
    ac.observe(syn(i, IPv4{rng.next()}, IPv4(129, 105, 1, 1), 80));
  }
  EXPECT_EQ(ac.memory_bytes(), before)
      << "approximate caches must not grow (their design goal)";
}

TEST(TrwAcTest, DetectsScannerInQuietCache) {
  TrwAc ac{small_cfg()};
  const IPv4 scanner(6, 6, 6, 6);
  for (int i = 0; i < 50; ++i) {
    ac.observe(syn(i, scanner, IPv4{0x81690000u + static_cast<std::uint32_t>(i)}, 445));
  }
  ac.flush(3600 * kMicrosPerSecond);  // all half-open attempts fail
  bool found = false;
  for (const auto& a : ac.alerts()) found |= a.sip == scanner;
  EXPECT_TRUE(found);
}

TEST(TrwAcTest, BenignHostNotFlagged) {
  TrwAc ac{small_cfg()};
  const IPv4 client(100, 1, 1, 1);
  for (int i = 0; i < 50; ++i) {
    const IPv4 server{0x81690000u + static_cast<std::uint32_t>(i)};
    ac.observe(syn(i * 1000, client, server, 80));
    ac.observe(synack(i * 1000 + 10, server, client));
  }
  ac.flush(3600 * kMicrosPerSecond);
  for (const auto& a : ac.alerts()) {
    EXPECT_NE(a.sip, client);
  }
}

// The HiFIND paper's Sec. 3.5 argument: a spoofed stream fills the cache and
// aliasing makes subsequent scan attempts invisible.
TEST(TrwAcTest, SpoofedFloodFillsCacheAndCausesAliasing) {
  TrwAc ac{small_cfg(1u << 12)};  // 4096-entry cache
  Pcg32 rng(7);
  // Establish plenty of connections so slots hold established entries.
  for (int i = 0; i < 4096 * 4; ++i) {
    const IPv4 src{rng.next()};
    const IPv4 dst{0x81690000u + (rng.next() & 0xffffu)};
    ac.observe(syn(i, src, dst, 80));
    ac.observe(synack(i, dst, src));
  }
  EXPECT_GT(ac.cache_occupancy(), 0.5);
  const std::uint64_t aliased_before = ac.aliased_attempts();
  // Now a real scanner probes; many attempts must alias established slots.
  const IPv4 scanner(6, 6, 6, 6);
  for (int i = 0; i < 2000; ++i) {
    ac.observe(syn(1000000 + i, scanner,
                   IPv4{0x82000000u + static_cast<std::uint32_t>(i)}, 445));
  }
  EXPECT_GT(ac.aliased_attempts(), aliased_before)
      << "scan attempts landing on established slots go unrecorded";
}

TEST(TrwAcTest, AliasRateTracksOccupancyAsPaperClaims) {
  // HiFIND Sec. 3.5 (quoting Weaver et al.): "when the connection cache...
  // reaches about 20% full, each new scan attempt has a 20% chance of not
  // being recorded". Fill the cache to a known occupancy with established
  // connections, probe with fresh attempts, and check the alias fraction
  // tracks the occupancy.
  TrwAc ac{small_cfg(1u << 14)};  // 16384 entries
  Pcg32 rng(21);
  // Establish connections until ~20% occupancy.
  while (ac.cache_occupancy() < 0.20) {
    const IPv4 src{rng.next()};
    const IPv4 dst{0x81690000u + (rng.next() & 0xffffu)};
    ac.observe(syn(0, src, dst, 80));
    ac.observe(synack(1, dst, src));
  }
  const double occupancy = ac.cache_occupancy();
  const std::uint64_t before = ac.aliased_attempts();
  constexpr int kProbes = 5000;
  for (int i = 0; i < kProbes; ++i) {
    ac.observe(syn(100 + i, IPv4(6, 6, 6, 6),
                   IPv4{0x82000000u + static_cast<std::uint32_t>(i)}, 445));
  }
  const double alias_rate =
      static_cast<double>(ac.aliased_attempts() - before) / kProbes;
  EXPECT_NEAR(alias_rate, occupancy, 0.05)
      << "alias probability should approximate cache occupancy";
}

TEST(TrwAcTest, FlushEvictsIdleEntries) {
  TrwAcConfig cfg = small_cfg();
  cfg.idle_timeout_us = 10 * kMicrosPerSecond;
  TrwAc ac{cfg};
  ac.observe(syn(0, IPv4(1, 1, 1, 1), IPv4(2, 2, 2, 2), 80));
  EXPECT_GT(ac.cache_occupancy(), 0.0);
  ac.flush(20 * kMicrosPerSecond);
  EXPECT_DOUBLE_EQ(ac.cache_occupancy(), 0.0);
}

}  // namespace
}  // namespace hifind
