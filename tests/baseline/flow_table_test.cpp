#include "baseline/flow_table.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hifind {
namespace {

HifindDetectorConfig cfg() {
  HifindDetectorConfig c;
  c.interval_seconds = 60;
  c.syn_rate_threshold = 1.0;
  c.min_persist_intervals = 1;
  return c;
}

PacketRecord syn(Timestamp ts, IPv4 sip, IPv4 dip, std::uint16_t dport,
                 std::uint16_t sport = 40000) {
  PacketRecord p;
  p.ts = ts;
  p.sip = sip;
  p.dip = dip;
  p.sport = sport;
  p.dport = dport;
  p.flags = kSyn;
  return p;
}

PacketRecord synack(Timestamp ts, IPv4 server, std::uint16_t service,
                    IPv4 client, std::uint16_t sport = 40000) {
  PacketRecord p;
  p.ts = ts;
  p.sip = server;
  p.dip = client;
  p.sport = service;
  p.dport = sport;
  p.flags = kSyn | kAck;
  p.outbound = true;
  return p;
}

void feed_baseline(FlowTableDetector& d) {
  for (int i = 0; i < 30; ++i) {
    const auto sport = static_cast<std::uint16_t>(30000 + i);
    d.observe(syn(i, IPv4(100, 1, 1, 1), IPv4(129, 105, 1, 1), 443, sport));
    d.observe(synack(i, IPv4(129, 105, 1, 1), 443, IPv4(100, 1, 1, 1),
                     sport));
  }
}

TEST(FlowTableDetectorTest, WarmupIntervalSilent) {
  FlowTableDetector d(cfg());
  feed_baseline(d);
  const IntervalResult r = d.end_interval(0);
  EXPECT_TRUE(r.final.empty());
}

TEST(FlowTableDetectorTest, DetectsFloodExactly) {
  FlowTableDetector d(cfg());
  feed_baseline(d);
  d.end_interval(0);
  feed_baseline(d);
  Pcg32 rng(3);
  for (int i = 0; i < 300; ++i) {
    d.observe(syn(i, IPv4{rng.next()}, IPv4(129, 105, 1, 1), 443,
                  static_cast<std::uint16_t>(1024 + i)));
  }
  const IntervalResult r = d.end_interval(1);
  ASSERT_GE(IntervalResult::count(r.final, AttackType::kSynFlooding), 1u);
  const Alert& a = r.final.front();
  EXPECT_EQ(a.dip(), IPv4(129, 105, 1, 1));
  EXPECT_EQ(a.dport(), 443);
  EXPECT_NEAR(a.magnitude, 300.0, 5.0) << "exact tables: exact magnitudes";
}

TEST(FlowTableDetectorTest, DetectsScansWithCorrectTypes) {
  FlowTableDetector d(cfg());
  feed_baseline(d);
  d.end_interval(0);
  feed_baseline(d);
  for (std::uint32_t i = 0; i < 200; ++i) {
    d.observe(syn(i, IPv4(6, 6, 6, 6), IPv4{0x81690000u + i}, 1433));
  }
  for (int port = 1; port <= 200; ++port) {
    d.observe(syn(port, IPv4(7, 7, 7, 7), IPv4(129, 105, 50, 50),
                  static_cast<std::uint16_t>(port)));
  }
  const IntervalResult r = d.end_interval(1);
  EXPECT_EQ(IntervalResult::count(r.final, AttackType::kHorizontalScan), 1u);
  EXPECT_EQ(IntervalResult::count(r.final, AttackType::kVerticalScan), 1u);
  EXPECT_EQ(IntervalResult::count(r.final, AttackType::kSynFlooding), 0u);
}

TEST(FlowTableDetectorTest, Phase3DropsDeadServiceFlood) {
  FlowTableDetector d(cfg());
  feed_baseline(d);
  d.end_interval(0);
  feed_baseline(d);
  Pcg32 rng(5);
  for (int i = 0; i < 200; ++i) {
    d.observe(syn(i, IPv4{rng.next()}, IPv4(129, 105, 200, 200), 8080));
  }
  const IntervalResult r = d.end_interval(1);
  EXPECT_GE(IntervalResult::count(r.after_2d, AttackType::kSynFlooding), 1u);
  EXPECT_EQ(IntervalResult::count(r.final, AttackType::kSynFlooding), 0u);
}

TEST(FlowTableDetectorTest, MemoryGrowsWithDistinctFlows) {
  FlowTableDetector d(cfg());
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    d.observe(syn(i, IPv4{rng.next()}, IPv4(129, 105, 1, 1), 80));
  }
  const std::size_t at_1k = d.memory_bytes();
  for (int i = 0; i < 9000; ++i) {
    d.observe(syn(i, IPv4{rng.next()}, IPv4(129, 105, 1, 1), 80));
  }
  EXPECT_GT(d.memory_bytes(), 5 * at_1k)
      << "the DoS vulnerability HiFIND avoids";
}

TEST(FlowTableDetectorTest, ResetRestoresWarmup) {
  FlowTableDetector d(cfg());
  feed_baseline(d);
  d.end_interval(0);
  d.reset();
  feed_baseline(d);
  Pcg32 rng(9);
  for (int i = 0; i < 300; ++i) {
    d.observe(syn(i, IPv4{rng.next()}, IPv4(129, 105, 1, 1), 443));
  }
  const IntervalResult r = d.end_interval(0);
  EXPECT_TRUE(r.final.empty()) << "first post-reset interval is warmup";
}

}  // namespace
}  // namespace hifind
