#include "baseline/trw.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hifind {
namespace {

PacketRecord syn(Timestamp ts, IPv4 sip, IPv4 dip, std::uint16_t dport) {
  PacketRecord p;
  p.ts = ts;
  p.sip = sip;
  p.dip = dip;
  p.sport = 40000;
  p.dport = dport;
  p.flags = kSyn;
  return p;
}

PacketRecord synack(Timestamp ts, IPv4 sip, IPv4 dip,
                    std::uint16_t sport) {
  PacketRecord p;
  p.ts = ts;
  p.sip = sip;
  p.dip = dip;
  p.sport = sport;
  p.dport = 40000;
  p.flags = kSyn | kAck;
  p.outbound = true;
  return p;
}

TEST(TrwTest, RejectsInvertedThetas) {
  TrwConfig bad;
  bad.theta0 = 0.2;
  bad.theta1 = 0.8;
  EXPECT_THROW(Trw{bad}, std::invalid_argument);
}

TEST(TrwTest, ScannerWithManyFailuresIsFlagged) {
  Trw trw{TrwConfig{}};
  const IPv4 scanner(6, 6, 6, 6);
  for (int i = 0; i < 50; ++i) {
    trw.observe(syn(i, scanner, IPv4{0x81690000u + static_cast<std::uint32_t>(i)}, 445));
  }
  trw.flush(200 * kMicrosPerSecond);  // all attempts time out as failures
  ASSERT_EQ(trw.alerts().size(), 1u);
  EXPECT_EQ(trw.alerts()[0].sip, scanner);
}

TEST(TrwTest, BenignClientWithSuccessesIsNotFlagged) {
  Trw trw{TrwConfig{}};
  const IPv4 client(100, 1, 1, 1);
  for (int i = 0; i < 50; ++i) {
    const IPv4 server{0x81690000u + static_cast<std::uint32_t>(i)};
    trw.observe(syn(i * 1000, client, server, 80));
    trw.observe(synack(i * 1000 + 10, server, client, 80));
  }
  trw.flush(200 * kMicrosPerSecond);
  EXPECT_TRUE(trw.alerts().empty());
}

TEST(TrwTest, SourceAlertsOnlyOnce) {
  Trw trw{TrwConfig{}};
  const IPv4 scanner(6, 6, 6, 6);
  for (int i = 0; i < 500; ++i) {
    trw.observe(syn(i, scanner, IPv4{0x81690000u + static_cast<std::uint32_t>(i)}, 445));
    if (i % 50 == 49) trw.flush(i + 100 * kMicrosPerSecond);
  }
  trw.flush(1000 * kMicrosPerSecond);
  EXPECT_EQ(trw.alerts().size(), 1u);
}

TEST(TrwTest, RepeatContactsAreNotNewTrials) {
  // Retransmissions to the SAME destination must not add failures.
  Trw trw{TrwConfig{}};
  const IPv4 host(100, 2, 2, 2);
  for (int i = 0; i < 100; ++i) {
    trw.observe(syn(i, host, IPv4(129, 105, 1, 1), 80));  // same dest
  }
  trw.flush(200 * kMicrosPerSecond);
  EXPECT_TRUE(trw.alerts().empty())
      << "one destination = at most one first-contact failure";
}

TEST(TrwTest, RstCountsAsFailure) {
  Trw trw{TrwConfig{}};
  const IPv4 scanner(6, 6, 6, 7);
  for (int i = 0; i < 30; ++i) {
    const IPv4 target{0x81690000u + static_cast<std::uint32_t>(i)};
    trw.observe(syn(i * 100, scanner, target, 22));
    PacketRecord rst;
    rst.ts = i * 100 + 10;
    rst.sip = target;
    rst.dip = scanner;
    rst.sport = 22;
    rst.dport = 40000;
    rst.flags = kRst | kAck;
    trw.observe(rst);
  }
  EXPECT_EQ(trw.alerts().size(), 1u);
}

// The DoS vulnerability the HiFIND paper highlights (Sec. 3.5): per-source
// state grows linearly under a spoofed flood.
TEST(TrwTest, MemoryGrowsLinearlyUnderSpoofedFlood) {
  Trw trw{TrwConfig{}};
  Pcg32 rng(5);
  for (int i = 0; i < 1000; ++i) {
    trw.observe(syn(i, IPv4{rng.next()}, IPv4(129, 105, 1, 1), 80));
  }
  const std::size_t at_1k = trw.memory_bytes();
  for (int i = 1000; i < 10000; ++i) {
    trw.observe(syn(i, IPv4{rng.next()}, IPv4(129, 105, 1, 1), 80));
  }
  const std::size_t at_10k = trw.memory_bytes();
  EXPECT_GT(at_10k, 8 * at_1k) << "state must track distinct spoofed sources";
  EXPECT_GE(trw.tracked_sources(), 9900u);
}

TEST(TrwTest, FlushHonorsTimeout) {
  TrwConfig cfg;
  cfg.failure_timeout_us = 10 * kMicrosPerSecond;
  Trw trw{cfg};
  trw.observe(syn(0, IPv4(1, 1, 1, 1), IPv4(2, 2, 2, 2), 80));
  trw.flush(5 * kMicrosPerSecond);  // too early: still pending
  EXPECT_EQ(trw.pending_connections(), 1u);
  trw.flush(11 * kMicrosPerSecond);
  EXPECT_EQ(trw.pending_connections(), 0u);
}

}  // namespace
}  // namespace hifind
