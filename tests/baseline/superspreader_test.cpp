#include "baseline/superspreader.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hifind {
namespace {

PacketRecord syn(IPv4 sip, IPv4 dip) {
  PacketRecord p;
  p.sip = sip;
  p.dip = dip;
  p.dport = 80;
  p.flags = kSyn;
  return p;
}

TEST(SuperspreaderTest, RejectsBadConfig) {
  SuperspreaderConfig c;
  c.sample_rate = 0.0;
  EXPECT_THROW(SuperspreaderDetector{c}, std::invalid_argument);
  c.sample_rate = 0.5;
  c.k = 0;
  EXPECT_THROW(SuperspreaderDetector{c}, std::invalid_argument);
}

TEST(SuperspreaderTest, WideFanOutIsReported) {
  SuperspreaderConfig c;
  c.k = 100;
  c.sample_rate = 0.5;
  SuperspreaderDetector d{c};
  const IPv4 spreader(6, 6, 6, 6);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    d.observe(syn(spreader, IPv4{0x81690000u + i}));
  }
  bool found = false;
  for (const auto& a : d.alerts()) found |= a.sip == spreader;
  EXPECT_TRUE(found);
}

TEST(SuperspreaderTest, NarrowTalkerIsNot) {
  SuperspreaderConfig c;
  c.k = 100;
  c.sample_rate = 0.5;
  SuperspreaderDetector d{c};
  const IPv4 host(100, 1, 1, 1);
  // Thousands of connections, but only to 5 destinations.
  for (int i = 0; i < 5000; ++i) {
    d.observe(syn(host, IPv4{0x81690000u + static_cast<std::uint32_t>(i % 5)}));
  }
  EXPECT_TRUE(d.alerts().empty());
}

TEST(SuperspreaderTest, SamplingIsConsistentPerPair) {
  // Repeating one pair must never accumulate duplicate samples.
  SuperspreaderConfig c;
  c.k = 10;
  c.sample_rate = 1.0;  // sample everything: exact distinct counting
  SuperspreaderDetector d{c};
  const IPv4 host(100, 1, 1, 1);
  for (int rep = 0; rep < 100; ++rep) {
    for (std::uint32_t i = 0; i < 9; ++i) {
      d.observe(syn(host, IPv4{0x81690000u + i}));
    }
  }
  EXPECT_TRUE(d.alerts().empty()) << "9 distinct destinations < k=10";
  d.observe(syn(host, IPv4{0x81690000u + 9}));
  EXPECT_EQ(d.alerts().size(), 1u);
}

// The paper's Table 1 criticism: P2P hosts legitimately contact many peers
// and get flagged — success of connections is ignored.
TEST(SuperspreaderTest, P2pHostIsMisflagged) {
  SuperspreaderConfig c;
  c.k = 100;
  c.sample_rate = 0.5;
  SuperspreaderDetector d{c};
  const IPv4 p2p(100, 9, 9, 9);
  Pcg32 rng(3);
  for (int i = 0; i < 800; ++i) {
    d.observe(syn(p2p, IPv4{rng.next()}));  // all would have SUCCEEDED
  }
  bool found = false;
  for (const auto& a : d.alerts()) found |= a.sip == p2p;
  EXPECT_TRUE(found) << "false positive by design: no success signal";
}

TEST(SuperspreaderTest, MemoryScalesWithSampledPairsOnly) {
  SuperspreaderConfig low, high;
  low.sample_rate = 0.05;
  high.sample_rate = 1.0;
  SuperspreaderDetector dl{low}, dh{high};
  Pcg32 rng(11);
  for (int i = 0; i < 20000; ++i) {
    const auto p = syn(IPv4{rng.next() & 0xffffu}, IPv4{rng.next()});
    dl.observe(p);
    dh.observe(p);
  }
  EXPECT_LT(dl.memory_bytes(), dh.memory_bytes() / 5);
}

}  // namespace
}  // namespace hifind
