#include "baseline/cpm.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

PacketRecord flagged(std::uint8_t flags) {
  PacketRecord p;
  p.sip = IPv4(1, 1, 1, 1);
  p.dip = IPv4(2, 2, 2, 2);
  p.dport = 80;
  p.flags = flags;
  return p;
}

/// Feeds an interval with `syns` SYNs and `fins` FINs.
bool run_interval(Cpm& cpm, int syns, int fins) {
  for (int i = 0; i < syns; ++i) cpm.observe(flagged(kSyn));
  for (int i = 0; i < fins; ++i) cpm.observe(flagged(kFin | kAck));
  return cpm.end_interval();
}

TEST(CpmTest, BalancedTrafficStaysQuiet) {
  Cpm cpm{CpmConfig{}};
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(run_interval(cpm, 1000, 980)) << "interval " << i;
  }
}

TEST(CpmTest, FloodRaisesAlarmWithinFewIntervals) {
  Cpm cpm{CpmConfig{}};
  for (int i = 0; i < 5; ++i) run_interval(cpm, 1000, 990);  // baseline
  bool alarmed = false;
  for (int i = 0; i < 5; ++i) {
    alarmed |= run_interval(cpm, 6000, 990);  // orphan SYN surge
  }
  EXPECT_TRUE(alarmed);
}

TEST(CpmTest, AlarmClearsAfterFloodEnds) {
  Cpm cpm{CpmConfig{}};
  for (int i = 0; i < 5; ++i) run_interval(cpm, 1000, 990);
  for (int i = 0; i < 5; ++i) run_interval(cpm, 6000, 990);
  bool still_alarmed = true;
  for (int i = 0; i < 30; ++i) {
    still_alarmed = run_interval(cpm, 1000, 990);
  }
  EXPECT_FALSE(still_alarmed);
}

// The weakness Table 6 exposes: port scans also produce orphan SYNs, so a
// scan-heavy, flood-free trace still alarms CPM.
TEST(CpmTest, PortScansLookLikeFloodsToCpm) {
  Cpm cpm{CpmConfig{}};
  for (int i = 0; i < 5; ++i) run_interval(cpm, 1000, 990);
  bool alarmed = false;
  // A scanner adds 4000 SYNs/interval, none completing (no FINs).
  for (int i = 0; i < 5; ++i) {
    alarmed |= run_interval(cpm, 5000, 990);
  }
  EXPECT_TRUE(alarmed) << "CPM cannot tell scans from floods (paper Table 6)";
}

TEST(CpmTest, MemoryIsConstant) {
  Cpm cpm{CpmConfig{}};
  const std::size_t before = cpm.memory_bytes();
  run_interval(cpm, 100000, 100);
  EXPECT_EQ(cpm.memory_bytes(), before);
}

TEST(CpmTest, AlarmHistoryTracksIntervals) {
  Cpm cpm{CpmConfig{}};
  run_interval(cpm, 100, 100);
  run_interval(cpm, 100, 100);
  EXPECT_EQ(cpm.alarm_history().size(), 2u);
}

}  // namespace
}  // namespace hifind
