#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace hifind {
namespace {

TEST(Mix64Test, IsDeterministicAndSpreadsBits) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Adjacent inputs should disagree in many output bits (avalanche).
  int differing = __builtin_popcountll(mix64(1000) ^ mix64(1001));
  EXPECT_GT(differing, 16);
  EXPECT_LT(differing, 48);
}

TEST(TabulationHashTest, DeterministicPerSeed) {
  TabulationHash a(7), b(7), c(8);
  EXPECT_EQ(a.hash(0x123456789abcdef0ULL), b.hash(0x123456789abcdef0ULL));
  EXPECT_NE(a.hash(0x123456789abcdef0ULL), c.hash(0x123456789abcdef0ULL));
}

TEST(TabulationHashTest, BucketAlwaysInRange) {
  TabulationHash h(3);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    EXPECT_LT(h.bucket(k * 0x9e3779b97f4a7c15ULL, 100), 100u);
  }
}

TEST(TabulationHashTest, BucketsRoughlyUniformOverSequentialKeys) {
  // Sequential keys are the adversarial input for weak hashes; tabulation
  // should still spread them evenly.
  TabulationHash h(11);
  constexpr std::size_t kBuckets = 64;
  constexpr std::size_t kKeys = 64000;
  std::array<std::size_t, kBuckets> load{};
  for (std::uint64_t k = 0; k < kKeys; ++k) ++load[h.bucket(k, kBuckets)];
  const double expected = static_cast<double>(kKeys) / kBuckets;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    EXPECT_GT(load[b], expected * 0.7) << "bucket " << b;
    EXPECT_LT(load[b], expected * 1.3) << "bucket " << b;
  }
}

TEST(WordHashTest, RejectsBadWidth) {
  EXPECT_THROW(WordHash(1, 0), std::invalid_argument);
  EXPECT_THROW(WordHash(1, 9), std::invalid_argument);
}

class WordHashWidth : public ::testing::TestWithParam<int> {};

TEST_P(WordHashWidth, OutputInRangeAndBalanced) {
  const int bits = GetParam();
  WordHash wh(99, bits);
  const std::size_t range = std::size_t{1} << bits;
  std::vector<std::size_t> load(range, 0);
  for (int w = 0; w < 256; ++w) {
    const std::uint8_t v = wh.map(static_cast<std::uint8_t>(w));
    ASSERT_LT(v, range);
    ++load[v];
  }
  // Balanced construction: loads differ by at most 1.
  const std::size_t lo = *std::min_element(load.begin(), load.end());
  const std::size_t hi = *std::max_element(load.begin(), load.end());
  EXPECT_LE(hi - lo, 1u);
}

TEST_P(WordHashWidth, PreimagesExactlyInvertMap) {
  const int bits = GetParam();
  WordHash wh(123, bits);
  const std::size_t range = std::size_t{1} << bits;
  std::size_t total = 0;
  for (std::size_t v = 0; v < range; ++v) {
    for (const std::uint8_t w : wh.preimage(static_cast<std::uint8_t>(v))) {
      EXPECT_EQ(wh.map(w), v);
    }
    total += wh.preimage(static_cast<std::uint8_t>(v)).size();
  }
  EXPECT_EQ(total, 256u) << "preimages must partition the word space";
}

INSTANTIATE_TEST_SUITE_P(AllWidths, WordHashWidth,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(WordHashTest, PreimageMaskAgreesWithPreimageList) {
  WordHash wh(321, 2);
  for (int v = 0; v < 4; ++v) {
    const auto& mask = wh.preimage_mask(static_cast<std::uint8_t>(v));
    std::set<int> from_mask;
    for (int i = 0; i < 4; ++i) {
      for (int b = 0; b < 64; ++b) {
        if (mask[i] >> b & 1) from_mask.insert(i * 64 + b);
      }
    }
    std::set<int> from_list;
    for (const std::uint8_t w : wh.preimage(static_cast<std::uint8_t>(v))) {
      from_list.insert(w);
    }
    EXPECT_EQ(from_mask, from_list) << "value " << v;
  }
}

TEST(WordHashTest, PreimageMasksPartitionTheWordSpace) {
  WordHash wh(555, 3);
  std::array<std::uint64_t, 4> all{};
  for (int v = 0; v < 8; ++v) {
    const auto& mask = wh.preimage_mask(static_cast<std::uint8_t>(v));
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(all[i] & mask[i], 0u) << "masks must be disjoint";
      all[i] |= mask[i];
    }
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(all[i], ~std::uint64_t{0}) << "masks must cover all bytes";
  }
}

TEST(Crc32cTest, MatchesKnownVectors) {
  // RFC 3720 / Castagnoli reference vectors.
  const char* ascii = "123456789";
  EXPECT_EQ(crc32c(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(ascii), 9)),
            0xe3069283u);
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
  std::vector<std::uint8_t> ones(32, 0xff);
  EXPECT_EQ(crc32c(ones), 0x62a8ab43u);
  std::vector<std::uint8_t> inc(32);
  for (std::size_t i = 0; i < inc.size(); ++i) {
    inc[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(crc32c(inc), 0x46dd794eu);
  EXPECT_EQ(crc32c({}), 0u);
}

TEST(Crc32cTest, ChainsAcrossCalls) {
  std::vector<std::uint8_t> data(100);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(mix64(i));
  }
  const std::uint32_t whole = crc32c(data);
  for (const std::size_t split : {0u, 1u, 7u, 50u, 99u, 100u}) {
    const std::span<const std::uint8_t> s(data);
    EXPECT_EQ(crc32c(s.subspan(split), crc32c(s.first(split))), whole);
  }
}

TEST(Crc32cTest, DetectsEverySingleByteFlip) {
  std::vector<std::uint8_t> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(mix64(i) >> 13);
  }
  const std::uint32_t clean = crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xff}) {
      auto corrupt = data;
      corrupt[i] ^= flip;
      EXPECT_NE(crc32c(corrupt), clean) << "byte " << i;
    }
  }
}

TEST(WordHashTest, DifferentSeedsGiveDifferentTables) {
  WordHash a(1, 2), b(2, 2);
  int diffs = 0;
  for (int w = 0; w < 256; ++w) {
    diffs += a.map(static_cast<std::uint8_t>(w)) !=
                     b.map(static_cast<std::uint8_t>(w))
                 ? 1
                 : 0;
  }
  EXPECT_GT(diffs, 100);
}

}  // namespace
}  // namespace hifind
