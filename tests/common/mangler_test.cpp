#include "common/mangler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace hifind {
namespace {

TEST(InverseOddTest, ProducesExactModularInverse) {
  const std::uint64_t odds[] = {1, 3, 0x9e3779b97f4a7c15ULL | 1,
                                0xffffffffffffffffULL, 12345677};
  for (const std::uint64_t a : odds) {
    EXPECT_EQ(a * inverse_odd_u64(a), 1ULL) << a;
  }
}

TEST(KeyManglerTest, RejectsBadWidth) {
  EXPECT_THROW(KeyMangler(1, 0), std::invalid_argument);
  EXPECT_THROW(KeyMangler(1, 65), std::invalid_argument);
}

class KeyManglerWidth : public ::testing::TestWithParam<int> {};

TEST_P(KeyManglerWidth, RoundTripsRandomKeys) {
  const int bits = GetParam();
  KeyMangler m(42, bits);
  const std::uint64_t mask =
      bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  Pcg32 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t key = rng.next64() & mask;
    const std::uint64_t mangled = m.mangle(key);
    EXPECT_LE(mangled, mask);
    EXPECT_EQ(m.unmangle(mangled), key);
  }
}

TEST_P(KeyManglerWidth, IsInjectiveOnSequentialKeys) {
  const int bits = GetParam();
  KeyMangler m(7, bits);
  std::set<std::uint64_t> images;
  for (std::uint64_t k = 0; k < 4096; ++k) {
    EXPECT_TRUE(images.insert(m.mangle(k)).second) << "collision at " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperWidths, KeyManglerWidth,
                         ::testing::Values(32, 48, 64));

TEST(KeyManglerTest, SpreadsClusteredKeysAcrossWords) {
  // Real keys share prefixes; post-mangling the HIGH byte should take many
  // values even when inputs differ only in the low bits.
  KeyMangler m(13, 48);
  std::set<std::uint8_t> high_bytes;
  for (std::uint64_t k = 0; k < 256; ++k) {
    high_bytes.insert(static_cast<std::uint8_t>(m.mangle(k) >> 40));
  }
  EXPECT_GT(high_bytes.size(), 32u);
}

TEST(KeyManglerTest, DifferentSeedsGiveDifferentMappings) {
  KeyMangler a(1, 48), b(2, 48);
  int diffs = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    diffs += a.mangle(k) != b.mangle(k) ? 1 : 0;
  }
  EXPECT_GT(diffs, 90);
}

}  // namespace
}  // namespace hifind
