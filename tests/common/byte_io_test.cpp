#include "common/byte_io.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

TEST(ByteIoTest, RoundTripsScalars) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.f64(-1234.5678);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), -1234.5678);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteIoTest, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304u);
  ASSERT_EQ(w.bytes().size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(ByteIoTest, RoundTripsDoubleSpans) {
  ByteWriter w;
  const std::vector<double> values{0.0, -0.0, 1.5, 1e300, -2.25};
  w.f64_span(values);
  ByteReader r(w.bytes());
  const auto back = r.f64_vector();
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i], values[i]);
  }
}

TEST(ByteIoTest, ReaderThrowsOnUnderrun) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.u32(), std::runtime_error);
}

TEST(ByteIoTest, VectorReadRejectsBogusLength) {
  ByteWriter w;
  w.u64(1u << 30);  // claims a gigantic vector with no payload
  ByteReader r(w.bytes());
  EXPECT_THROW(r.f64_vector(), std::runtime_error);
}

TEST(ByteIoTest, VectorReadRejectsOverflowingLength) {
  // A corrupt count chosen so count * 8 wraps std::uint64_t to a small
  // number; the bound check must not be fooled into allocating.
  ByteWriter w;
  w.u64(0x2000000000000001ULL);  // * 8 == 8 (mod 2^64)
  w.f64(1.0);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.f64_vector(), std::runtime_error);
}

}  // namespace
}  // namespace hifind
