#include "common/interval.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

TEST(IntervalClockTest, MapsTimestampsToMinuteIntervals) {
  IntervalClock clock(60);
  EXPECT_EQ(clock.interval_of(0), 0u);
  EXPECT_EQ(clock.interval_of(59 * kMicrosPerSecond + 999999), 0u);
  EXPECT_EQ(clock.interval_of(60 * kMicrosPerSecond), 1u);
  EXPECT_EQ(clock.interval_of(3600 * kMicrosPerSecond), 60u);
}

TEST(IntervalClockTest, IntervalStartIsInverseOfIntervalOf) {
  IntervalClock clock(30);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(clock.interval_of(clock.interval_start(i)), i);
    EXPECT_EQ(clock.interval_of(clock.interval_start(i + 1) - 1), i);
  }
}

TEST(IntervalClockTest, WidthAccessors) {
  IntervalClock clock(5);
  EXPECT_EQ(clock.width_us(), 5 * kMicrosPerSecond);
  EXPECT_DOUBLE_EQ(clock.width_seconds(), 5.0);
}

}  // namespace
}  // namespace hifind
