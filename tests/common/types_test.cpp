#include "common/types.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

TEST(IPv4Test, DottedQuadConstructionMatchesShift) {
  const IPv4 ip(10, 20, 30, 40);
  EXPECT_EQ(ip.addr, (10u << 24) | (20u << 16) | (30u << 8) | 40u);
}

TEST(IPv4Test, ToStringRoundTripsThroughParse) {
  const IPv4 cases[] = {IPv4(0, 0, 0, 0), IPv4(255, 255, 255, 255),
                        IPv4(129, 105, 1, 42), IPv4(10, 0, 0, 1)};
  for (const IPv4 ip : cases) {
    EXPECT_EQ(parse_ipv4(to_string(ip)), ip) << to_string(ip);
  }
}

TEST(IPv4Test, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_ipv4(""), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("1.2.3"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("256.1.1.1"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("a.b.c.d"), std::invalid_argument);
}

TEST(IPv4Test, OrderingFollowsNumericValue) {
  EXPECT_LT(IPv4(1, 0, 0, 0), IPv4(2, 0, 0, 0));
  EXPECT_LT(IPv4(1, 0, 0, 1), IPv4(1, 0, 1, 0));
}

TEST(KeyPackingTest, IpPortRoundTrip) {
  const IPv4 ip(192, 168, 7, 9);
  const std::uint16_t port = 1433;
  const std::uint64_t key = pack_ip_port(ip, port);
  EXPECT_EQ(unpack_key_ip(key), ip);
  EXPECT_EQ(unpack_key_port(key), port);
  EXPECT_LT(key, std::uint64_t{1} << 48) << "48-bit key must fit 48 bits";
}

TEST(KeyPackingTest, IpIpRoundTrip) {
  const IPv4 src(1, 2, 3, 4);
  const IPv4 dst(250, 40, 30, 20);
  const std::uint64_t key = pack_ip_ip(src, dst);
  EXPECT_EQ(unpack_key_sip(key), src);
  EXPECT_EQ(unpack_key_dip(key), dst);
}

TEST(KeyPackingTest, DistinctInputsGiveDistinctKeys) {
  EXPECT_NE(pack_ip_port(IPv4(1, 2, 3, 4), 80),
            pack_ip_port(IPv4(1, 2, 3, 4), 81));
  EXPECT_NE(pack_ip_port(IPv4(1, 2, 3, 4), 80),
            pack_ip_port(IPv4(1, 2, 3, 5), 80));
  EXPECT_NE(pack_ip_ip(IPv4(1, 2, 3, 4), IPv4(5, 6, 7, 8)),
            pack_ip_ip(IPv4(5, 6, 7, 8), IPv4(1, 2, 3, 4)))
      << "source and destination are not interchangeable";
}

TEST(KeyKindTest, BitsAndNames) {
  EXPECT_EQ(key_kind_bits(KeyKind::SipDport), 48);
  EXPECT_EQ(key_kind_bits(KeyKind::DipDport), 48);
  EXPECT_EQ(key_kind_bits(KeyKind::SipDip), 64);
  EXPECT_STREQ(key_kind_name(KeyKind::SipDport), "{SIP,Dport}");
  EXPECT_STREQ(key_kind_name(KeyKind::SipDip), "{SIP,DIP}");
}

TEST(KeyKindTest, FormatKeyShowsBothFacets) {
  const std::uint64_t key = pack_ip_port(IPv4(129, 105, 5, 6), 22);
  const std::string text = format_key(KeyKind::SipDport, key);
  EXPECT_NE(text.find("129.105.5.6"), std::string::npos) << text;
  EXPECT_NE(text.find("22"), std::string::npos) << text;
}

}  // namespace
}  // namespace hifind
