// Hugepage-aware counter allocation (common/mem_policy.hpp): the huge path
// must hand back 2 MiB-aligned, fully writable ranges whose release is a
// pure function of the byte size; the small path must stay plain operator
// new; and every placement helper must degrade gracefully (telemetry-style
// false, never a crash) on hosts without NUMA, THP, or affinity support —
// that graceful rung IS the fallback ladder the HIFIND_NUMA=OFF CI job
// exercises end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>

#include "common/mem_policy.hpp"

namespace hifind::mem {
namespace {

constexpr std::size_t kHugeAlign = std::size_t{2} << 20;

TEST(MemPolicyTest, HugeAllocIsAlignedAndWritable) {
  const std::size_t bytes = 3u << 20;  // rs64-sized: above the threshold
  void* p = alloc_counters(bytes);
  ASSERT_NE(p, nullptr);
#if defined(__linux__)
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kHugeAlign, 0u)
      << "huge-path allocation not 2 MiB-aligned";
#endif
  // Touch every page: first/last byte plus a page-strided sweep.
  auto* bytes_p = static_cast<unsigned char*>(p);
  std::memset(bytes_p, 0xab, bytes);
  EXPECT_EQ(bytes_p[0], 0xab);
  EXPECT_EQ(bytes_p[bytes - 1], 0xab);
  free_counters(p, bytes);
}

TEST(MemPolicyTest, SmallAllocWorks) {
  const std::size_t bytes = 64 * 1024;  // below kHugeThresholdBytes
  void* p = alloc_counters(bytes);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5c, bytes);
  free_counters(p, bytes);
}

TEST(MemPolicyTest, HugeAllocLengthRoundsToWholePages) {
  EXPECT_EQ(huge_alloc_length(1), 4096u);
  EXPECT_EQ(huge_alloc_length(4096), 4096u);
  EXPECT_EQ(huge_alloc_length(4097), 8192u);
  const std::size_t bytes = (3u << 20) + 5;
  EXPECT_GE(huge_alloc_length(bytes), bytes);
  EXPECT_EQ(huge_alloc_length(bytes) % 4096u, 0u);
  // Deallocate recomputes the window from the size alone — the function
  // must be deterministic.
  EXPECT_EQ(huge_alloc_length(bytes), huge_alloc_length(bytes));
}

TEST(MemPolicyTest, CounterVecRoundTripsThroughHugeBacking) {
  CounterVec v(512 * 1024);  // 4 MiB of doubles: huge path
#if defined(__linux__)
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kHugeAlign, 0u);
#endif
  std::iota(v.begin(), v.end(), 0.0);
  CounterVec copy = v;  // copy through the allocator
  ASSERT_EQ(copy.size(), v.size());
  EXPECT_EQ(copy.front(), 0.0);
  EXPECT_EQ(copy.back(), static_cast<double>(v.size() - 1));
  copy.resize(16);  // shrink to the small regime and back
  copy.resize(512 * 1024, -1.0);
  EXPECT_EQ(copy[0], 0.0);
  EXPECT_EQ(copy[15], 15.0);
  EXPECT_EQ(copy.back(), -1.0);
}

TEST(MemPolicyTest, PlacementHelpersDegradeGracefully) {
  // node_count is at least 1 everywhere; numa_enabled implies > 1 node.
  EXPECT_GE(node_count(), 1);
  if (numa_enabled()) {
    EXPECT_GT(node_count(), 1);
  }
  // current_cpu/current_node: valid index or the documented -1 sentinel.
  EXPECT_GE(current_cpu(), -1);
  EXPECT_GE(current_node(), -1);
  // Out-of-range / degenerate bind requests must return false, not crash.
  double scratch[16] = {};
  EXPECT_FALSE(bind_to_node(scratch, sizeof(scratch), -1));
  EXPECT_FALSE(bind_to_node(scratch, sizeof(scratch), node_count()));
  EXPECT_FALSE(bind_to_node(scratch, 0, 0));
  // On a single-node host every bind is a polite no-op.
  if (node_count() == 1) {
    EXPECT_FALSE(bind_to_node(scratch, sizeof(scratch), 0));
  }
  // Pinning to an invalid CPU must fail cleanly; pinning to the current CPU
  // may fail under restricted affinity masks, but must not crash.
  EXPECT_FALSE(pin_current_thread_to_cpu(-1));
  const int cpu = current_cpu();
  if (cpu >= 0) {
    (void)pin_current_thread_to_cpu(cpu);
  }
}

}  // namespace
}  // namespace hifind::mem
