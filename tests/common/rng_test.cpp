#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hifind {
namespace {

TEST(Pcg32Test, DeterministicForEqualSeeds) {
  Pcg32 a(1, 2), b(1, 2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32Test, DifferentStreamsDiverge) {
  Pcg32 a(1, 2), b(1, 3);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Pcg32Test, BoundedStaysInRangeIncludingEdges) {
  Pcg32 rng(9);
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(7), 7u);
  }
}

TEST(Pcg32Test, BoundedIsRoughlyUniform) {
  Pcg32 rng(77);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(Pcg32Test, UniformInUnitInterval) {
  Pcg32 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Pcg32Test, ChanceMatchesProbability) {
  Pcg32 rng(31);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.2) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.2, 0.01);
}

TEST(Pcg32Test, SatisfiesUniformRandomBitEngineShape) {
  EXPECT_EQ(Pcg32::min(), 0u);
  EXPECT_EQ(Pcg32::max(), 0xffffffffu);
  Pcg32 rng(1);
  (void)rng();  // callable
}

}  // namespace
}  // namespace hifind
