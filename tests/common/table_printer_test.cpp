#include "common/table_printer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hifind {
namespace {

TEST(TablePrinterTest, RendersTitleHeaderAndRows) {
  TablePrinter t("Table X. Demo");
  t.header({"col1", "column2"});
  t.row({"a", "b"});
  t.row({"longer-cell", "c"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Table X. Demo"), std::string::npos);
  EXPECT_NE(out.find("col1"), std::string::npos);
  EXPECT_NE(out.find("longer-cell"), std::string::npos);
}

TEST(TablePrinterTest, AlignsColumnsToWidestCell) {
  TablePrinter t("");
  t.header({"h", "k"});
  t.row({"wide-value", "x"});
  std::ostringstream os;
  t.print(os);
  // The 'k' header must start at the same offset as 'x'.
  std::istringstream lines(os.str());
  std::string header, rule, row;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row);
  EXPECT_EQ(header.find('k'), row.find('x'));
}

TEST(TablePrinterTest, ToleratesRaggedRows) {
  TablePrinter t("ragged");
  t.header({"a", "b", "c"});
  t.row({"1"});
  t.row({"1", "2", "3", "4"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
  EXPECT_NE(os.str().find('4'), std::string::npos);
}

}  // namespace
}  // namespace hifind
