#include "packet/packet.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

PacketRecord syn(IPv4 sip, std::uint16_t sport, IPv4 dip,
                 std::uint16_t dport) {
  PacketRecord p;
  p.sip = sip;
  p.dip = dip;
  p.sport = sport;
  p.dport = dport;
  p.flags = kSyn;
  return p;
}

PacketRecord synack(IPv4 sip, std::uint16_t sport, IPv4 dip,
                    std::uint16_t dport) {
  PacketRecord p = syn(sip, sport, dip, dport);
  p.flags = kSyn | kAck;
  return p;
}

TEST(PacketFlagsTest, ClassifiesSynAndSynAck) {
  const PacketRecord s = syn(IPv4(1, 1, 1, 1), 5000, IPv4(2, 2, 2, 2), 80);
  EXPECT_TRUE(s.is_syn());
  EXPECT_FALSE(s.is_synack());
  const PacketRecord sa =
      synack(IPv4(2, 2, 2, 2), 80, IPv4(1, 1, 1, 1), 5000);
  EXPECT_FALSE(sa.is_syn());
  EXPECT_TRUE(sa.is_synack());
}

TEST(PacketFlagsTest, UdpIsNeverSynRegardlessOfFlagBits) {
  PacketRecord p = syn(IPv4(1, 1, 1, 1), 5000, IPv4(2, 2, 2, 2), 53);
  p.proto = Protocol::kUdp;
  EXPECT_FALSE(p.is_syn());
  EXPECT_FALSE(p.is_synack());
  EXPECT_EQ(syn_delta(p), 0);
}

TEST(SynDeltaTest, SignConvention) {
  EXPECT_EQ(syn_delta(syn(IPv4(1, 1, 1, 1), 1, IPv4(2, 2, 2, 2), 80)), 1);
  EXPECT_EQ(syn_delta(synack(IPv4(2, 2, 2, 2), 80, IPv4(1, 1, 1, 1), 1)), -1);
  PacketRecord fin = syn(IPv4(1, 1, 1, 1), 1, IPv4(2, 2, 2, 2), 80);
  fin.flags = kFin | kAck;
  EXPECT_EQ(syn_delta(fin), 0);
}

// The core cancellation property: a SYN and the SYN/ACK answering it must
// update the SAME key in every key space, so a completed handshake nets to
// zero. This is what makes #SYN - #SYN/ACK a failed-connection counter.
TEST(ExtractKeyTest, SynAndItsSynAckHitTheSameKeys) {
  const IPv4 client(100, 1, 2, 3);
  const IPv4 server(129, 105, 8, 9);
  const PacketRecord s = syn(client, 44321, server, 443);
  const PacketRecord sa = synack(server, 443, client, 44321);
  for (const KeyKind kind :
       {KeyKind::SipDport, KeyKind::DipDport, KeyKind::SipDip}) {
    EXPECT_EQ(extract_key(kind, s), extract_key(kind, sa))
        << key_kind_name(kind);
  }
}

TEST(ExtractKeyTest, KeysCarryInitiatorOrientedFields) {
  const IPv4 client(100, 1, 2, 3);
  const IPv4 server(129, 105, 8, 9);
  const PacketRecord s = syn(client, 44321, server, 443);
  EXPECT_EQ(extract_key(KeyKind::SipDport, s), pack_ip_port(client, 443));
  EXPECT_EQ(extract_key(KeyKind::DipDport, s), pack_ip_port(server, 443));
  EXPECT_EQ(extract_key(KeyKind::SipDip, s), pack_ip_ip(client, server));
}

TEST(ExtractKeyTest, SourcePortNeverEntersAnyKey) {
  const IPv4 client(100, 1, 2, 3);
  const IPv4 server(129, 105, 8, 9);
  const PacketRecord a = syn(client, 1111, server, 443);
  const PacketRecord b = syn(client, 2222, server, 443);
  for (const KeyKind kind :
       {KeyKind::SipDport, KeyKind::DipDport, KeyKind::SipDip}) {
    EXPECT_EQ(extract_key(kind, a), extract_key(kind, b))
        << "Sport must be ignored (paper Sec. 3.3)";
  }
}

}  // namespace
}  // namespace hifind
