#include "packet/netflow.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

PacketRecord pkt(Timestamp ts, IPv4 sip, std::uint16_t sport, IPv4 dip,
                 std::uint16_t dport, std::uint8_t flags = kSyn) {
  PacketRecord p;
  p.ts = ts;
  p.sip = sip;
  p.dip = dip;
  p.sport = sport;
  p.dport = dport;
  p.flags = flags;
  return p;
}

TEST(FlowAggregatorTest, GroupsByFiveTuple) {
  FlowAggregator agg;
  const IPv4 a(1, 1, 1, 1), b(2, 2, 2, 2);
  agg.add(pkt(0, a, 1000, b, 80));
  agg.add(pkt(10, a, 1000, b, 80, kAck));
  agg.add(pkt(20, a, 1001, b, 80));  // different sport => new flow
  agg.add(pkt(30, b, 80, a, 1000, kSyn | kAck));  // reverse => new flow

  const auto flows = agg.flows();
  ASSERT_EQ(flows.size(), 3u);
  EXPECT_EQ(flows[0].packets, 2u);
  EXPECT_EQ(flows[0].first_ts, 0u);
  EXPECT_EQ(flows[0].last_ts, 10u);
  EXPECT_EQ(flows[0].bytes, 80u);
  EXPECT_EQ(flows[0].flags_or, kSyn | kAck);
}

TEST(FlowAggregatorTest, ProtocolDistinguishesFlows) {
  FlowAggregator agg;
  PacketRecord tcp = pkt(0, IPv4(1, 1, 1, 1), 53, IPv4(2, 2, 2, 2), 53);
  PacketRecord udp = tcp;
  udp.proto = Protocol::kUdp;
  agg.add(tcp);
  agg.add(udp);
  EXPECT_EQ(agg.flow_count(), 2u);
}

TEST(FlowAggregatorTest, ClearResets) {
  FlowAggregator agg;
  agg.add(pkt(0, IPv4(1, 1, 1, 1), 1, IPv4(2, 2, 2, 2), 2));
  agg.clear();
  EXPECT_EQ(agg.flow_count(), 0u);
  EXPECT_EQ(agg.memory_bytes(), 0u);
}

TEST(FlowAggregatorTest, MemoryGrowsWithFlows) {
  FlowAggregator agg;
  for (int i = 0; i < 100; ++i) {
    agg.add(pkt(0, IPv4{static_cast<std::uint32_t>(i)}, 1, IPv4(2, 2, 2, 2),
                80));
  }
  const std::size_t m100 = agg.memory_bytes();
  for (int i = 100; i < 200; ++i) {
    agg.add(pkt(0, IPv4{static_cast<std::uint32_t>(i)}, 1, IPv4(2, 2, 2, 2),
                80));
  }
  EXPECT_EQ(agg.memory_bytes(), 2 * m100);
}

TEST(AggregateFlowsTest, ConvenienceMatchesManual) {
  Trace t;
  t.push_back(pkt(0, IPv4(1, 1, 1, 1), 1, IPv4(2, 2, 2, 2), 80));
  t.push_back(pkt(5, IPv4(1, 1, 1, 1), 1, IPv4(2, 2, 2, 2), 80));
  t.push_back(pkt(9, IPv4(3, 3, 3, 3), 1, IPv4(2, 2, 2, 2), 80));
  const auto flows = aggregate_flows(t);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].packets, 2u);
  EXPECT_EQ(flows[1].packets, 1u);
}

}  // namespace
}  // namespace hifind
