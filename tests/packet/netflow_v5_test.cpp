#include "packet/netflow_v5.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.hpp"

namespace hifind {
namespace {

class NetflowV5Test : public ::testing::Test {
 protected:
  std::string path() {
    auto p = (std::filesystem::temp_directory_path() /
              ("hifind_nf5_test_" + std::to_string(counter_++) + ".nf5"))
                 .string();
    created_.push_back(p);
    return p;
  }
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }
  int counter_{0};
  std::vector<std::string> created_;
};

Trace handshake_trace() {
  Trace t;
  PacketRecord syn;
  syn.ts = 5000;  // netflow keeps millisecond granularity
  syn.sip = IPv4(100, 1, 2, 3);
  syn.dip = IPv4(129, 105, 1, 1);
  syn.sport = 40000;
  syn.dport = 443;
  syn.flags = kSyn;
  t.push_back(syn);

  PacketRecord synack;
  synack.ts = 9000;
  synack.sip = IPv4(129, 105, 1, 1);
  synack.dip = IPv4(100, 1, 2, 3);
  synack.sport = 443;
  synack.dport = 40000;
  synack.flags = kSyn | kAck;
  synack.outbound = true;
  t.push_back(synack);

  PacketRecord fin = syn;
  fin.ts = 2000000;
  fin.flags = kFin | kAck;
  t.push_back(fin);
  return t;
}

TEST_F(NetflowV5Test, RoundTripPreservesHandshakeSemantics) {
  const std::string file = path();
  write_netflow_v5(handshake_trace(), file);
  NetflowV5ReadStats stats;
  const Trace back = read_netflow_v5(file, &stats);

  EXPECT_EQ(stats.datagrams, 1u);
  EXPECT_EQ(stats.records, 3u);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_TRUE(back[0].is_syn());
  EXPECT_EQ(back[0].sip, IPv4(100, 1, 2, 3));
  EXPECT_EQ(back[0].dport, 443);
  EXPECT_TRUE(back[1].is_synack());
  EXPECT_EQ(back[1].sport, 443);
  EXPECT_TRUE(back[2].is_fin());
  // Millisecond granularity, rebased to the first event.
  EXPECT_EQ(back[1].ts - back[0].ts, 4000u);
  EXPECT_EQ(syn_delta(back[0]), 1);
  EXPECT_EQ(syn_delta(back[1]), -1);
}

TEST_F(NetflowV5Test, ManyRecordsSplitAcrossDatagrams) {
  Trace t;
  Pcg32 rng(3);
  for (int i = 0; i < 100; ++i) {
    PacketRecord p;
    p.ts = static_cast<Timestamp>(i) * 1000;
    p.sip = IPv4{rng.next()};
    p.dip = IPv4(129, 105, 1, 1);
    p.sport = 40000;
    p.dport = 80;
    p.flags = kSyn;
    t.push_back(p);
  }
  const std::string file = path();
  write_netflow_v5(t, file);
  NetflowV5ReadStats stats;
  const Trace back = read_netflow_v5(file, &stats);
  EXPECT_EQ(stats.datagrams, 4u) << "30-record packing => ceil(100/30)";
  EXPECT_EQ(back.size(), 100u);
  for (std::size_t i = 1; i < back.size(); ++i) {
    EXPECT_LE(back[i - 1].ts, back[i].ts);
  }
}

TEST_F(NetflowV5Test, UdpRecordsPassThrough) {
  Trace t;
  PacketRecord udp;
  udp.ts = 0;
  udp.sip = IPv4(10, 0, 0, 1);
  udp.dip = IPv4(129, 105, 2, 2);
  udp.dport = 53;
  udp.proto = Protocol::kUdp;
  t.push_back(udp);
  const std::string file = path();
  write_netflow_v5(t, file);
  NetflowV5ReadStats stats;
  const Trace back = read_netflow_v5(file, &stats);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].proto, Protocol::kUdp);
  EXPECT_EQ(stats.non_tcp, 1u);
}

TEST_F(NetflowV5Test, RejectsBadVersionAndTruncation) {
  const std::string file = path();
  write_netflow_v5(handshake_trace(), file);
  {
    // Corrupt the version field.
    std::fstream f(file,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(1);
    f.put(9);
  }
  EXPECT_THROW(read_netflow_v5(file, nullptr), std::runtime_error);

  const std::string file2 = path();
  write_netflow_v5(handshake_trace(), file2);
  std::filesystem::resize_file(file2,
                               std::filesystem::file_size(file2) - 7);
  EXPECT_THROW(read_netflow_v5(file2, nullptr), std::runtime_error);
}

TEST_F(NetflowV5Test, EmptyTraceMakesEmptyFile) {
  const std::string file = path();
  write_netflow_v5(Trace{}, file);
  const Trace back = read_netflow_v5(file, nullptr);
  EXPECT_TRUE(back.empty());
}

}  // namespace
}  // namespace hifind
