#include "packet/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.hpp"

namespace hifind {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string path() const {
    return (std::filesystem::temp_directory_path() /
            ("hifind_trace_io_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + std::to_string(counter_++)))
        .string();
  }
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }
  std::string track(std::string p) {
    created_.push_back(p);
    return p;
  }
  mutable int counter_{0};
  std::vector<std::string> created_;
};

TEST_F(TraceIoTest, RoundTripsEveryField) {
  Trace t;
  Pcg32 rng(4);
  for (int i = 0; i < 500; ++i) {
    PacketRecord p;
    p.ts = rng.next64() >> 20;
    p.sip = IPv4{rng.next()};
    p.dip = IPv4{rng.next()};
    p.sport = static_cast<std::uint16_t>(rng.next());
    p.dport = static_cast<std::uint16_t>(rng.next());
    p.len = static_cast<std::uint16_t>(40 + rng.bounded(1460));
    p.flags = static_cast<std::uint8_t>(rng.bounded(32));
    p.proto = rng.chance(0.9) ? Protocol::kTcp : Protocol::kUdp;
    p.outbound = rng.chance(0.5);
    t.push_back(p);
  }

  const std::string file = track(path());
  write_trace(t, file);
  const Trace back = read_trace(file);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back[i].ts, t[i].ts);
    EXPECT_EQ(back[i].sip, t[i].sip);
    EXPECT_EQ(back[i].dip, t[i].dip);
    EXPECT_EQ(back[i].sport, t[i].sport);
    EXPECT_EQ(back[i].dport, t[i].dport);
    EXPECT_EQ(back[i].len, t[i].len);
    EXPECT_EQ(back[i].flags, t[i].flags);
    EXPECT_EQ(back[i].proto, t[i].proto);
    EXPECT_EQ(back[i].outbound, t[i].outbound);
  }
}

TEST_F(TraceIoTest, RoundTripsEmptyTrace) {
  const std::string file = track(path());
  write_trace(Trace{}, file);
  EXPECT_EQ(read_trace(file).size(), 0u);
}

TEST_F(TraceIoTest, ReadRejectsMissingFile) {
  EXPECT_THROW(read_trace("/nonexistent/dir/file.hft"), std::runtime_error);
}

TEST_F(TraceIoTest, ReadRejectsBadMagic) {
  const std::string file = track(path());
  std::ofstream(file) << "this is not a trace file at all............";
  EXPECT_THROW(read_trace(file), std::runtime_error);
}

TEST_F(TraceIoTest, ReadRejectsTruncatedBody) {
  Trace t;
  PacketRecord p;
  p.ts = 1;
  t.push_back(p);
  t.push_back(p);
  const std::string file = track(path());
  write_trace(t, file);
  // Chop the last 10 bytes.
  std::filesystem::resize_file(file,
                               std::filesystem::file_size(file) - 10);
  EXPECT_THROW(read_trace(file), std::runtime_error);
}

}  // namespace
}  // namespace hifind
