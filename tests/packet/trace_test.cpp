#include "packet/trace.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

PacketRecord at(Timestamp ts, std::uint8_t flags = kSyn) {
  PacketRecord p;
  p.ts = ts;
  p.sip = IPv4(1, 2, 3, 4);
  p.dip = IPv4(5, 6, 7, 8);
  p.flags = flags;
  return p;
}

TEST(TraceTest, SortOrdersByTimestamp) {
  Trace t;
  t.push_back(at(300));
  t.push_back(at(100));
  t.push_back(at(200));
  t.sort();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].ts, 100u);
  EXPECT_EQ(t[1].ts, 200u);
  EXPECT_EQ(t[2].ts, 300u);
}

TEST(TraceTest, SortIsStableForEqualTimestamps) {
  Trace t;
  t.push_back(at(100, kSyn));
  t.push_back(at(100, kSyn | kAck));
  t.sort();
  EXPECT_TRUE(t[0].is_syn());
  EXPECT_TRUE(t[1].is_synack());
}

TEST(TraceTest, AppendConcatenates) {
  Trace a, b;
  a.push_back(at(1));
  b.push_back(at(2));
  b.push_back(at(3));
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 2u) << "append must not consume the source";
}

TEST(TraceStatsTest, CountsFlagClassesAndBytes) {
  Trace t;
  t.push_back(at(0, kSyn));
  t.push_back(at(10, kSyn | kAck));
  PacketRecord udp = at(20, 0);
  udp.proto = Protocol::kUdp;
  udp.len = 100;
  t.push_back(udp);
  PacketRecord out = at(30, kFin);
  out.outbound = true;
  t.push_back(out);

  const TraceStats s = t.stats();
  EXPECT_EQ(s.packets, 4u);
  EXPECT_EQ(s.tcp_packets, 3u);
  EXPECT_EQ(s.syn_packets, 1u);
  EXPECT_EQ(s.synack_packets, 1u);
  EXPECT_EQ(s.outbound_packets, 1u);
  EXPECT_EQ(s.total_bytes, 40u + 40u + 100u + 40u);
  EXPECT_EQ(s.first_ts, 0u);
  EXPECT_EQ(s.last_ts, 30u);
}

TEST(TraceStatsTest, EmptyTraceIsSafe) {
  const TraceStats s = Trace{}.stats();
  EXPECT_EQ(s.packets, 0u);
  EXPECT_DOUBLE_EQ(s.duration_seconds(), 0.0);
}

}  // namespace
}  // namespace hifind
