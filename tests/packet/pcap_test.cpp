#include "packet/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/rng.hpp"

namespace hifind {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  std::string path() {
    auto p = (std::filesystem::temp_directory_path() /
              ("hifind_pcap_test_" + std::to_string(counter_++) + ".pcap"))
                 .string();
    created_.push_back(p);
    return p;
  }
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }
  static bool internal(IPv4 ip) { return (ip.addr >> 16) == 0x8169; }

  int counter_{0};
  std::vector<std::string> created_;
};

Trace sample_trace() {
  Trace t;
  PacketRecord syn;
  syn.ts = 0;
  syn.sip = IPv4(100, 1, 2, 3);
  syn.dip = IPv4(129, 105, 1, 1);
  syn.sport = 44444;
  syn.dport = 443;
  syn.flags = kSyn;
  t.push_back(syn);

  PacketRecord synack;
  synack.ts = 1500;
  synack.sip = IPv4(129, 105, 1, 1);
  synack.dip = IPv4(100, 1, 2, 3);
  synack.sport = 443;
  synack.dport = 44444;
  synack.flags = kSyn | kAck;
  t.push_back(synack);

  PacketRecord udp;
  udp.ts = 2 * kMicrosPerSecond + 7;
  udp.sip = IPv4(10, 0, 0, 1);
  udp.dip = IPv4(129, 105, 2, 2);
  udp.sport = 5353;
  udp.dport = 53;
  udp.proto = Protocol::kUdp;
  t.push_back(udp);
  return t;
}

TEST_F(PcapTest, WriteReadRoundTrip) {
  const std::string file = path();
  write_pcap(sample_trace(), file);
  PcapReadStats stats;
  const Trace back = read_pcap(file, internal, &stats);

  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(stats.frames, 3u);
  EXPECT_EQ(stats.packets, 3u);
  EXPECT_EQ(back[0].sip, IPv4(100, 1, 2, 3));
  EXPECT_EQ(back[0].dport, 443);
  EXPECT_TRUE(back[0].is_syn());
  EXPECT_FALSE(back[0].outbound) << "external source => inbound";
  EXPECT_TRUE(back[1].is_synack());
  EXPECT_TRUE(back[1].outbound) << "internal source => outbound";
  EXPECT_EQ(back[1].ts, 1500u) << "timestamps rebased to first frame";
  EXPECT_EQ(back[2].proto, Protocol::kUdp);
  EXPECT_EQ(back[2].dport, 53);
  EXPECT_EQ(back[2].flags, 0);
}

TEST_F(PcapTest, SynDeltaSurvivesRoundTrip) {
  // The property detection relies on: flag semantics survive the format.
  const std::string file = path();
  write_pcap(sample_trace(), file);
  const Trace back = read_pcap(file, internal, nullptr);
  EXPECT_EQ(syn_delta(back[0]), 1);
  EXPECT_EQ(syn_delta(back[1]), -1);
  EXPECT_EQ(syn_delta(back[2]), 0);
}

TEST_F(PcapTest, RejectsGarbage) {
  const std::string file = path();
  std::ofstream(file) << "definitely not a pcap file, sorry about that";
  EXPECT_THROW(read_pcap(file, internal, nullptr), std::runtime_error);
  EXPECT_THROW(read_pcap("/no/such/file.pcap", internal, nullptr),
               std::runtime_error);
}

TEST_F(PcapTest, RejectsTruncatedFrameBody) {
  const std::string file = path();
  write_pcap(sample_trace(), file);
  std::filesystem::resize_file(file, std::filesystem::file_size(file) - 5);
  EXPECT_THROW(read_pcap(file, internal, nullptr), std::runtime_error);
}

TEST_F(PcapTest, SkipsNonIpEthernetFrames) {
  // Hand-build an Ethernet-linktype capture: one ARP frame, one IPv4 TCP.
  const std::string file = path();
  std::ofstream os(file, std::ios::binary);
  auto put32 = [&](std::uint32_t v) {
    os.write(reinterpret_cast<const char*>(&v), 4);
  };
  auto put16 = [&](std::uint16_t v) {
    os.write(reinterpret_cast<const char*>(&v), 2);
  };
  put32(0xa1b2c3d4);
  put16(2);
  put16(4);
  put32(0);
  put32(0);
  put32(65535);
  put32(1);  // Ethernet

  auto frame = [&](std::uint16_t ethertype,
                   const std::vector<unsigned char>& payload) {
    put32(0);  // ts_sec
    put32(0);  // ts_usec
    put32(static_cast<std::uint32_t>(14 + payload.size()));
    put32(static_cast<std::uint32_t>(14 + payload.size()));
    unsigned char eth[14] = {};
    eth[12] = static_cast<unsigned char>(ethertype >> 8);
    eth[13] = static_cast<unsigned char>(ethertype & 0xff);
    os.write(reinterpret_cast<const char*>(eth), 14);
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  };

  frame(0x0806, std::vector<unsigned char>(28, 0));  // ARP

  std::vector<unsigned char> ip(40, 0);
  ip[0] = 0x45;
  ip[2] = 0;
  ip[3] = 40;
  ip[9] = 6;  // TCP
  ip[12] = 129;
  ip[13] = 105;
  ip[14] = 1;
  ip[15] = 1;
  ip[16] = 100;
  ip[17] = 1;
  ip[18] = 1;
  ip[19] = 1;
  ip[20 + 13] = kSyn | kAck;
  ip[20 + 12] = 5 << 4;
  ip[20 + 0] = 443 >> 8;
  ip[20 + 1] = 443 & 0xff;
  frame(0x0800, ip);
  os.close();

  PcapReadStats stats;
  const Trace back = read_pcap(file, internal, &stats);
  EXPECT_EQ(stats.frames, 2u);
  EXPECT_EQ(stats.non_ip, 1u);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_TRUE(back[0].is_synack());
  EXPECT_EQ(back[0].sport, 443);
}

TEST_F(PcapTest, ReadsSwappedByteOrder) {
  // Same file as write_pcap produces, but with all header fields swapped —
  // a capture written on an opposite-endianness machine.
  const std::string native = path();
  write_pcap(sample_trace(), native);
  std::ifstream is(native, std::ios::binary);
  std::vector<unsigned char> raw((std::istreambuf_iterator<char>(is)),
                                 std::istreambuf_iterator<char>());
  auto swap32 = [&](std::size_t off) {
    std::swap(raw[off], raw[off + 3]);
    std::swap(raw[off + 1], raw[off + 2]);
  };
  auto swap16 = [&](std::size_t off) { std::swap(raw[off], raw[off + 1]); };
  swap32(0);
  swap16(4);
  swap16(6);
  swap32(8);
  swap32(12);
  swap32(16);
  swap32(20);
  std::size_t off = 24;
  while (off + 16 <= raw.size()) {
    // read incl_len BEFORE swapping it (file is currently native order)
    std::uint32_t incl;
    std::memcpy(&incl, raw.data() + off + 8, 4);
    swap32(off);
    swap32(off + 4);
    swap32(off + 8);
    swap32(off + 12);
    off += 16 + incl;
  }
  const std::string swapped = path();
  std::ofstream(swapped, std::ios::binary)
      .write(reinterpret_cast<const char*>(raw.data()),
             static_cast<std::streamsize>(raw.size()));

  const Trace back = read_pcap(swapped, internal, nullptr);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_TRUE(back[0].is_syn());
  EXPECT_EQ(back[1].ts, 1500u);
}

TEST_F(PcapTest, LargeTraceRoundTripsEfficiently) {
  Trace t;
  Pcg32 rng(7);
  for (int i = 0; i < 20000; ++i) {
    PacketRecord p;
    p.ts = static_cast<Timestamp>(i) * 50;
    p.sip = IPv4{rng.next()};
    p.dip = IPv4{0x81690000u | (rng.next() & 0xffff)};
    p.sport = static_cast<std::uint16_t>(1024 + rng.bounded(60000));
    p.dport = static_cast<std::uint16_t>(rng.bounded(1024));
    p.flags = rng.chance(0.5) ? kSyn : (kSyn | kAck);
    t.push_back(p);
  }
  const std::string file = path();
  write_pcap(t, file);
  const Trace back = read_pcap(file, internal, nullptr);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); i += 997) {
    EXPECT_EQ(back[i].sip, t[i].sip);
    EXPECT_EQ(back[i].dport, t[i].dport);
    EXPECT_EQ(back[i].flags, t[i].flags);
  }
}

}  // namespace
}  // namespace hifind
