// Shared helpers for detector-level tests: tiny hand-rolled packet streams
// with known structure (completed handshakes, floods, scans).
//
// Feeders are generic over the SINK so the same scenario replays through a
// bare SketchBank (record), the overlapped pipeline (offer), or any callable
// taking a PacketRecord — which is what lets the determinism tests compare
// pipelines on literally the same packet stream.
#pragma once

#include <cstdint>
#include <utility>

#include "common/rng.hpp"
#include "detect/sketch_bank.hpp"
#include "packet/packet.hpp"

namespace hifind::testing {

inline PacketRecord syn_packet(Timestamp ts, IPv4 sip, IPv4 dip,
                               std::uint16_t dport,
                               std::uint16_t sport = 40000) {
  PacketRecord p;
  p.ts = ts;
  p.sip = sip;
  p.dip = dip;
  p.sport = sport;
  p.dport = dport;
  p.flags = kSyn;
  return p;
}

inline PacketRecord synack_packet(Timestamp ts, IPv4 server,
                                  std::uint16_t service_port, IPv4 client,
                                  std::uint16_t client_port = 40000) {
  PacketRecord p;
  p.ts = ts;
  p.sip = server;
  p.dip = client;
  p.sport = service_port;
  p.dport = client_port;
  p.flags = kSyn | kAck;
  p.outbound = true;
  return p;
}

/// Routes one packet into whatever the sink is.
template <class Sink>
inline void emit(Sink& sink, const PacketRecord& p) {
  if constexpr (requires { sink.record(p); }) {
    sink.record(p);
  } else if constexpr (requires { sink.offer(p); }) {
    sink.offer(p);
  } else {
    sink(p);
  }
}

/// Feeds `count` completed handshakes client->server into the sink.
template <class Sink>
inline void feed_completed(Sink& sink, IPv4 client, IPv4 server,
                           std::uint16_t dport, int count,
                           Timestamp base_ts = 0) {
  for (int i = 0; i < count; ++i) {
    const auto sport = static_cast<std::uint16_t>(30000 + i % 20000);
    emit(sink, syn_packet(base_ts + i, client, server, dport, sport));
    emit(sink, synack_packet(base_ts + i, server, dport, client, sport));
  }
}

/// Feeds `count` un-answered SYNs (one per spoofed source if spoofed).
template <class Sink>
inline void feed_flood(Sink& sink, IPv4 victim, std::uint16_t dport,
                       int count, bool spoofed, Pcg32& rng,
                       IPv4 attacker = IPv4(6, 6, 6, 6),
                       Timestamp base_ts = 0) {
  for (int i = 0; i < count; ++i) {
    const IPv4 sip = spoofed ? IPv4{rng.next()} : attacker;
    emit(sink, syn_packet(base_ts + i, sip, victim, dport,
                          static_cast<std::uint16_t>(1024 + (i % 60000))));
  }
}

/// Feeds a horizontal scan: one SYN to `count` distinct destinations.
template <class Sink>
inline void feed_hscan(Sink& sink, IPv4 attacker, std::uint16_t dport,
                       int count, Timestamp base_ts = 0) {
  for (int i = 0; i < count; ++i) {
    const IPv4 target{0x81690000u + static_cast<std::uint32_t>(i)};
    emit(sink, syn_packet(base_ts + i, attacker, target, dport));
  }
}

/// Feeds a vertical scan: one SYN to `count` distinct ports on one target.
template <class Sink>
inline void feed_vscan(Sink& sink, IPv4 attacker, IPv4 target, int count,
                       Timestamp base_ts = 0) {
  for (int i = 0; i < count; ++i) {
    emit(sink, syn_packet(base_ts + i, attacker, target,
                          static_cast<std::uint16_t>(1 + i)));
  }
}

}  // namespace hifind::testing
