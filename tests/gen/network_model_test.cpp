#include "gen/network_model.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace hifind {
namespace {

NetworkModelConfig cfg(std::uint64_t seed = 17) {
  NetworkModelConfig c;
  c.seed = seed;
  return c;
}

TEST(NetworkModelTest, RejectsEmptyConfig) {
  NetworkModelConfig c;
  c.internal_prefixes.clear();
  EXPECT_THROW(NetworkModel{c}, std::invalid_argument);
}

TEST(NetworkModelTest, InternalAddressesMatchPrefixes) {
  NetworkModel net{cfg()};
  Pcg32 rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(net.is_internal(net.sample_internal_address(rng)));
    EXPECT_TRUE(net.is_internal(net.sample_internal_client(rng)));
  }
}

TEST(NetworkModelTest, ExternalClientsAreExternal) {
  NetworkModel net{cfg()};
  Pcg32 rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(net.is_internal(net.sample_external_client(rng)));
  }
}

TEST(NetworkModelTest, ServicesLiveInsideAndDeadServiceNeverSampled) {
  NetworkModel net{cfg()};
  Pcg32 rng(3);
  const Service& dead = net.dead_service();
  EXPECT_FALSE(dead.alive);
  for (int i = 0; i < 5000; ++i) {
    const Service& s = net.sample_service(rng);
    EXPECT_TRUE(s.alive);
    EXPECT_TRUE(net.is_internal(s.ip));
    EXPECT_FALSE(s.ip == dead.ip && s.port == dead.port);
  }
}

TEST(NetworkModelTest, ServicePopularityIsSkewed) {
  NetworkModel net{cfg()};
  Pcg32 rng(4);
  std::map<std::uint64_t, int> hits;
  for (int i = 0; i < 20000; ++i) {
    const Service& s = net.sample_service(rng);
    ++hits[pack_ip_port(s.ip, s.port)];
  }
  int top = 0;
  for (const auto& [k, n] : hits) top = std::max(top, n);
  // Zipf head: the hottest service should dwarf the uniform share.
  EXPECT_GT(top, 20000 / static_cast<int>(net.services().size()) * 5);
}

TEST(NetworkModelTest, ExternalClientsClusterInBlocks) {
  // Real client populations occupy few /16s — the anti-spoofing signal.
  NetworkModel net{cfg()};
  Pcg32 rng(5);
  std::set<std::uint32_t> blocks;
  for (int i = 0; i < 5000; ++i) {
    blocks.insert(net.sample_external_client(rng).addr >> 16);
  }
  EXPECT_LE(blocks.size(), 400u);
}

TEST(NetworkModelTest, SpoofedSourcesCoverAddressSpace) {
  NetworkModel net{cfg()};
  Pcg32 rng(6);
  std::set<std::uint8_t> octets;
  for (int i = 0; i < 2000; ++i) {
    octets.insert(
        static_cast<std::uint8_t>(net.sample_spoofed_source(rng).addr >> 24));
  }
  EXPECT_GT(octets.size(), 200u);
}

TEST(NetworkModelTest, DeterministicForSeed) {
  NetworkModel a{cfg(55)}, b{cfg(55)}, c{cfg(56)};
  ASSERT_EQ(a.services().size(), b.services().size());
  for (std::size_t i = 0; i < a.services().size(); ++i) {
    EXPECT_EQ(a.services()[i].ip, b.services()[i].ip);
    EXPECT_EQ(a.services()[i].port, b.services()[i].port);
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < a.services().size(); ++i) {
    any_diff |= !(a.services()[i].ip == c.services()[i].ip);
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace hifind
