#include "gen/scenario.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

TEST(ScenarioTest, NuLikeContainsFullAttackMix) {
  ScenarioConfig cfg = nu_like_config(3, 600);
  const Scenario s = build_scenario(cfg);

  std::size_t floods = 0, hscans = 0, vscans = 0, benign_anomalies = 0;
  for (const auto& e : s.truth.events()) {
    switch (e.kind) {
      case EventKind::kSynFloodSpoofed:
      case EventKind::kSynFloodFixed:
        ++floods;
        break;
      case EventKind::kHorizontalScan:
        ++hscans;
        break;
      case EventKind::kVerticalScan:
        ++vscans;
        break;
      case EventKind::kFlashCrowd:
      case EventKind::kMisconfiguration:
      case EventKind::kServerFailure:
        ++benign_anomalies;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(floods, cfg.num_spoofed_floods + cfg.num_fixed_floods);
  EXPECT_EQ(hscans, cfg.num_hscans);
  EXPECT_EQ(vscans, cfg.num_vscans);
  EXPECT_EQ(benign_anomalies, cfg.num_flash_crowds + cfg.num_misconfigs +
                                  cfg.num_server_failures);
  EXPECT_GT(s.trace.size(), 10000u);
}

TEST(ScenarioTest, LblLikeHasNoFloods) {
  const Scenario s = build_scenario(lbl_like_config(4, 600));
  for (const auto& e : s.truth.events()) {
    EXPECT_NE(e.kind, EventKind::kSynFloodSpoofed);
    EXPECT_NE(e.kind, EventKind::kSynFloodFixed);
  }
}

TEST(ScenarioTest, TraceIsTimeSorted) {
  const Scenario s = build_scenario(nu_like_config(5, 300));
  for (std::size_t i = 1; i < s.trace.size(); ++i) {
    ASSERT_LE(s.trace[i - 1].ts, s.trace[i].ts) << "at " << i;
  }
}

TEST(ScenarioTest, AttacksStartAfterWarmup) {
  const Scenario s = build_scenario(nu_like_config(6, 600));
  for (const auto& e : s.truth.attacks()) {
    EXPECT_GE(e.start, 120 * kMicrosPerSecond)
        << "two warmup intervals must stay clean";
  }
}

TEST(ScenarioTest, DeterministicForSeed) {
  const Scenario a = build_scenario(nu_like_config(7, 300));
  const Scenario b = build_scenario(nu_like_config(7, 300));
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); i += 97) {
    EXPECT_EQ(a.trace[i].ts, b.trace[i].ts);
    EXPECT_EQ(a.trace[i].sip, b.trace[i].sip);
    EXPECT_EQ(a.trace[i].dport, b.trace[i].dport);
  }
}

TEST(ScenarioTest, SeedChangesTrace) {
  const Scenario a = build_scenario(nu_like_config(8, 300));
  const Scenario b = build_scenario(nu_like_config(9, 300));
  bool differs = a.trace.size() != b.trace.size();
  if (!differs) {
    for (std::size_t i = 0; i < a.trace.size(); i += 101) {
      differs |= a.trace[i].sip.addr != b.trace[i].sip.addr;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ScenarioTest, LedgerActiveQueryFindsOverlaps) {
  const Scenario s = build_scenario(nu_like_config(10, 600));
  const auto& events = s.truth.events();
  ASSERT_FALSE(events.empty());
  const auto& e = events.front();
  EXPECT_FALSE(s.truth.active(e.start, e.end).empty());
  EXPECT_TRUE(e.active_during(e.start, e.end));
  EXPECT_FALSE(e.active_during(e.end, e.end + 1));
}

}  // namespace
}  // namespace hifind
