#include "gen/attacks.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hifind {
namespace {

struct Fixture {
  NetworkModel net{NetworkModelConfig{}};
  Pcg32 rng{std::uint64_t{5}};
  Trace trace;
  GroundTruthLedger ledger;
};

TEST(SynFloodInjectorTest, SpoofedFloodHasUniformSources) {
  Fixture f;
  SynFloodSpec spec;
  spec.victim_ip = IPv4(129, 105, 1, 1);
  spec.victim_port = 80;
  spec.rate_pps = 400;
  spec.duration = 10 * kMicrosPerSecond;
  spec.spoofed = true;
  inject_syn_flood(spec, f.net, f.rng, f.trace, f.ledger);

  std::set<std::uint32_t> sources;
  std::size_t syns = 0;
  for (const auto& p : f.trace.packets()) {
    if (p.is_syn()) {
      EXPECT_EQ(p.dip, spec.victim_ip);
      EXPECT_EQ(p.dport, 80);
      sources.insert(p.sip.addr);
      ++syns;
    }
  }
  EXPECT_NEAR(static_cast<double>(syns), 4000.0, 400.0);
  EXPECT_GT(sources.size(), syns * 95 / 100) << "fresh source per packet";
  ASSERT_EQ(f.ledger.events().size(), 1u);
  EXPECT_EQ(f.ledger.events()[0].kind, EventKind::kSynFloodSpoofed);
}

TEST(SynFloodInjectorTest, NonSpoofedUsesFixedAttacker) {
  Fixture f;
  SynFloodSpec spec;
  spec.victim_ip = IPv4(129, 105, 1, 1);
  spec.spoofed = false;
  spec.attacker = IPv4(66, 66, 66, 66);
  spec.duration = 5 * kMicrosPerSecond;
  inject_syn_flood(spec, f.net, f.rng, f.trace, f.ledger);
  for (const auto& p : f.trace.packets()) {
    if (p.is_syn()) EXPECT_EQ(p.sip, spec.attacker);
  }
  EXPECT_EQ(f.ledger.events()[0].kind, EventKind::kSynFloodFixed);
  EXPECT_EQ(f.ledger.events()[0].sip->addr, spec.attacker.addr);
}

TEST(SynFloodInjectorTest, VictimAnswersConfiguredFraction) {
  Fixture f;
  SynFloodSpec spec;
  spec.victim_ip = IPv4(129, 105, 1, 1);
  spec.rate_pps = 1000;
  spec.duration = 20 * kMicrosPerSecond;
  spec.victim_answer_fraction = 0.1;
  inject_syn_flood(spec, f.net, f.rng, f.trace, f.ledger);
  const TraceStats s = f.trace.stats();
  EXPECT_NEAR(static_cast<double>(s.synack_packets),
              0.1 * static_cast<double>(s.syn_packets),
              0.04 * static_cast<double>(s.syn_packets));
}

TEST(HscanInjectorTest, SweepsDistinctInternalTargets) {
  Fixture f;
  HscanSpec spec;
  spec.attacker = IPv4(6, 6, 6, 6);
  spec.dport = 1433;
  spec.num_targets = 500;
  spec.duration = 10 * kMicrosPerSecond;
  spec.open_fraction = 0.0;
  inject_horizontal_scan(spec, f.net, f.rng, f.trace, f.ledger);

  std::set<std::uint32_t> targets;
  for (const auto& p : f.trace.packets()) {
    ASSERT_TRUE(p.is_syn());
    EXPECT_EQ(p.sip, spec.attacker);
    EXPECT_EQ(p.dport, 1433);
    EXPECT_TRUE(f.net.is_internal(p.dip));
    targets.insert(p.dip.addr);
  }
  EXPECT_EQ(f.trace.size(), 500u) << "single SYN per probe, no retransmits";
  EXPECT_GT(targets.size(), 490u);
  // Probes stay within the declared window (with jitter slack).
  EXPECT_LE(f.trace.stats().last_ts, spec.start + 2 * spec.duration);
}

TEST(HscanInjectorTest, OpenPortsAnswer) {
  Fixture f;
  HscanSpec spec;
  spec.attacker = IPv4(6, 6, 6, 6);
  spec.num_targets = 1000;
  spec.open_fraction = 0.2;
  spec.duration = 10 * kMicrosPerSecond;
  inject_horizontal_scan(spec, f.net, f.rng, f.trace, f.ledger);
  const TraceStats s = f.trace.stats();
  EXPECT_NEAR(static_cast<double>(s.synack_packets), 200.0, 60.0);
}

TEST(VscanInjectorTest, SweepsPortsOnOneTarget) {
  Fixture f;
  VscanSpec spec;
  spec.attacker = IPv4(7, 7, 7, 7);
  spec.target = IPv4(129, 105, 50, 50);
  spec.first_port = 100;
  spec.num_ports = 400;
  spec.duration = 10 * kMicrosPerSecond;
  spec.open_fraction = 0.0;
  inject_vertical_scan(spec, f.net, f.rng, f.trace, f.ledger);

  std::set<std::uint16_t> ports;
  for (const auto& p : f.trace.packets()) {
    EXPECT_EQ(p.dip, spec.target);
    ports.insert(p.dport);
  }
  EXPECT_EQ(ports.size(), 400u);
  EXPECT_EQ(*ports.begin(), 100);
}

TEST(BlockScanInjectorTest, CoversTargetPortGrid) {
  Fixture f;
  BlockScanSpec spec;
  spec.attacker = IPv4(8, 8, 8, 8);
  spec.num_targets = 10;
  spec.num_ports = 8;
  spec.duration = 10 * kMicrosPerSecond;
  spec.open_fraction = 0.0;
  inject_block_scan(spec, f.net, f.rng, f.trace, f.ledger);
  std::set<std::pair<std::uint32_t, std::uint16_t>> probes;
  for (const auto& p : f.trace.packets()) {
    probes.insert({p.dip.addr, p.dport});
  }
  EXPECT_EQ(probes.size(), 80u);
  EXPECT_EQ(f.ledger.events()[0].kind, EventKind::kBlockScan);
}

TEST(FlashCrowdInjectorTest, RealClientsAndHighSuccess) {
  Fixture f;
  FlashCrowdSpec spec;
  spec.service_ip = IPv4(129, 105, 1, 1);
  spec.service_port = 80;
  spec.rate_pps = 500;
  spec.duration = 10 * kMicrosPerSecond;
  spec.success_fraction = 0.7;
  inject_flash_crowd(spec, f.net, f.rng, f.trace, f.ledger);
  const TraceStats s = f.trace.stats();
  EXPECT_NEAR(static_cast<double>(s.synack_packets),
              0.7 * static_cast<double>(s.syn_packets),
              0.08 * static_cast<double>(s.syn_packets));
  // Sources are real external clients, not uniform spoof.
  std::set<std::uint32_t> blocks;
  for (const auto& p : f.trace.packets()) {
    if (p.is_syn()) blocks.insert(p.sip.addr >> 16);
  }
  EXPECT_LE(blocks.size(), 400u);
}

TEST(MisconfigInjectorTest, DeadServiceNeverAnswers) {
  Fixture f;
  MisconfigSpec spec;
  spec.dead_ip = f.net.dead_service().ip;
  spec.dead_port = f.net.dead_service().port;
  spec.rate_pps = 100;
  spec.duration = 20 * kMicrosPerSecond;
  inject_misconfiguration(spec, f.net, f.rng, f.trace, f.ledger);
  for (const auto& p : f.trace.packets()) {
    EXPECT_TRUE(p.is_syn()) << "misconfig traffic is pure unanswered SYNs";
    EXPECT_EQ(p.dip, spec.dead_ip);
  }
  // Fixed client cohort: few distinct sources, many repeats.
  std::set<std::uint32_t> sources;
  for (const auto& p : f.trace.packets()) sources.insert(p.sip.addr);
  EXPECT_LE(sources.size(), spec.num_clients);
}

}  // namespace
}  // namespace hifind
