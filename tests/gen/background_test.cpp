#include "gen/background.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

NetworkModel make_net() { return NetworkModel{NetworkModelConfig{}}; }

TEST(BackgroundTest, ProducesExpectedVolume) {
  const NetworkModel net = make_net();
  BackgroundConfig cfg;
  cfg.connections_per_second = 50.0;
  Trace trace;
  GroundTruthLedger ledger;
  generate_background(cfg, net, 120 * kMicrosPerSecond, {}, trace, ledger);
  const TraceStats s = trace.stats();
  // ~6000 connections, each >= 1 SYN.
  EXPECT_GT(s.syn_packets, 4500u);
  EXPECT_LT(s.syn_packets, 9000u);
}

TEST(BackgroundTest, MostConnectionsComplete) {
  const NetworkModel net = make_net();
  BackgroundConfig cfg;
  Trace trace;
  GroundTruthLedger ledger;
  generate_background(cfg, net, 120 * kMicrosPerSecond, {}, trace, ledger);
  const TraceStats s = trace.stats();
  EXPECT_GT(static_cast<double>(s.synack_packets),
            0.75 * static_cast<double>(s.syn_packets))
      << "benign traffic must mostly complete handshakes";
}

TEST(BackgroundTest, SynFinBalanceHoldsForCpm) {
  const NetworkModel net = make_net();
  BackgroundConfig cfg;
  Trace trace;
  GroundTruthLedger ledger;
  generate_background(cfg, net, 300 * kMicrosPerSecond, {}, trace, ledger);
  std::size_t fins = 0, syns = 0;
  for (const auto& p : trace.packets()) {
    if (p.is_syn()) ++syns;
    if (p.is_fin()) ++fins;
  }
  EXPECT_GT(fins, syns / 2) << "completed connections must close";
}

TEST(BackgroundTest, FailureWindowSuppressesService) {
  const NetworkModel net = make_net();
  BackgroundConfig cfg;
  cfg.connections_per_second = 200.0;
  cfg.seed = 5;

  ServerFailureWindow w;
  w.service_index = 0;  // most popular service
  w.start = 60 * kMicrosPerSecond;
  w.end = 120 * kMicrosPerSecond;

  Trace trace;
  GroundTruthLedger ledger;
  generate_background(cfg, net, 180 * kMicrosPerSecond, {w}, trace, ledger);

  const Service& svc = net.services()[0];
  std::size_t syn_in = 0, synack_in = 0, syn_out = 0, synack_out = 0;
  for (const auto& p : trace.packets()) {
    const bool in_window = p.ts >= w.start && p.ts < w.end;
    if (p.is_syn() && p.dip == svc.ip && p.dport == svc.port) {
      (in_window ? syn_in : syn_out) += 1;
    }
    if (p.is_synack() && p.sip == svc.ip && p.sport == svc.port) {
      (in_window ? synack_in : synack_out) += 1;
    }
  }
  ASSERT_GT(syn_in, 20u) << "clients keep knocking during the failure";
  EXPECT_LT(static_cast<double>(synack_in), 0.2 * static_cast<double>(syn_in));
  EXPECT_GT(static_cast<double>(synack_out),
            0.8 * static_cast<double>(syn_out));
  // Ledger records the failure window for the evaluator.
  ASSERT_EQ(ledger.events().size(), 1u);
  EXPECT_EQ(ledger.events()[0].kind, EventKind::kServerFailure);
}

TEST(BackgroundTest, EmitsUdpNoise) {
  const NetworkModel net = make_net();
  BackgroundConfig cfg;
  cfg.udp_noise_per_second = 20.0;
  Trace trace;
  GroundTruthLedger ledger;
  generate_background(cfg, net, 60 * kMicrosPerSecond, {}, trace, ledger);
  std::size_t udp = 0;
  for (const auto& p : trace.packets()) udp += p.is_tcp() ? 0 : 1;
  EXPECT_GT(udp, 500u);
}

TEST(BackgroundTest, DeterministicForSeed) {
  const NetworkModel net = make_net();
  BackgroundConfig cfg;
  cfg.seed = 99;
  Trace a, b;
  GroundTruthLedger la, lb;
  generate_background(cfg, net, 30 * kMicrosPerSecond, {}, a, la);
  generate_background(cfg, net, 30 * kMicrosPerSecond, {}, b, lb);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].sip, b[i].sip);
  }
}

}  // namespace
}  // namespace hifind
