// Determinism contract of the overload layer: with load shedding ACTIVE,
// alerts must stay bit-identical to a serial reference applying the same
// shedder inline, at any shard count and ring size — the shed decision is a
// pure function of the packet stream, never of scheduling. Refinement
// verdicts must likewise be a pure function of (bank, flow table, config).
// Suite name is in the CI TSan filter (the shed/evidence mailbox handoffs
// are new cross-thread state).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../testing/synthetic.hpp"
#include "detect/hifind.hpp"
#include "detect/load_shedder.hpp"
#include "detect/overlapped.hpp"
#include "detect/parallel_recorder.hpp"

namespace hifind {
namespace {

using testing::feed_completed;
using testing::feed_flood;
using testing::feed_hscan;
using testing::feed_vscan;

SketchBankConfig bank_cfg() {
  SketchBankConfig c;
  c.seed = 42;
  c.twod.x_buckets = 1u << 10;
  return c;
}

HifindDetectorConfig det_cfg(std::size_t epoch_threads = 1) {
  HifindDetectorConfig c;
  c.interval_seconds = 60;
  c.syn_rate_threshold = 1.0;
  c.min_persist_intervals = 2;
  c.epoch_threads = epoch_threads;
  return c;
}

/// Budget sized so the mixed-attack scenario escalates to level 2 at its
/// peak (~1360 recordable ops/interval) but records un-shed on the benign
/// warm-up intervals — both regimes exercised in one run.
LoadShedderConfig shed_cfg() {
  LoadShedderConfig c;
  c.budget_ops_per_interval = 512;
  return c;
}

/// Same fixed 10-interval mixed-attack scenario as overlap_determinism_test,
/// regenerated per replay so every pipeline sees the identical stream.
template <class Sink, class Close>
void run_scenario(Sink& sink, Close&& close) {
  Pcg32 rng(7, 11);
  const IPv4 victim(129, 105, 1, 1);
  const IPv4 victim2(129, 105, 2, 2);
  for (std::uint64_t interval = 0; interval < 10; ++interval) {
    feed_completed(sink, IPv4(100, 1, 1, 1), victim, 80, 30);
    feed_completed(sink, IPv4(100, 1, 1, 2), victim2, 443, 30);
    feed_completed(sink, IPv4(100, 1, 1, 3), IPv4(129, 105, 1, 3), 22, 20);
    if (interval >= 2) {
      feed_flood(sink, victim, 80, 400, /*spoofed=*/true, rng);
    }
    if (interval >= 3 && interval <= 7) {
      feed_flood(sink, victim2, 443, 300, /*spoofed=*/false, rng,
                 IPv4(6, 6, 6, 6));
    }
    if (interval >= 4) {
      feed_hscan(sink, IPv4(7, 7, 7, 7), 445, 250);
      feed_vscan(sink, IPv4(8, 8, 8, 8), IPv4(129, 105, 9, 9), 250);
    }
    close(interval);
  }
}

/// The ground truth: serial record -> process loop with the SAME shedder
/// applied inline. bank.record(p, 2^k) is bit-identical to the pipeline's
/// op-level compensation (delta = syn_delta * w, weight = w in both).
std::vector<IntervalResult> replay_serial_shed() {
  SketchBank bank(bank_cfg());
  HifindDetector detector(det_cfg());
  LoadShedder shed(shed_cfg());
  std::vector<IntervalResult> results;
  auto sink = [&](const PacketRecord& p) {
    RecordOp op{};
    if (!make_record_op(p, 1.0, op)) return;
    const double w = shed.admit(op);
    if (w != 0.0) bank.record(p, w);
  };
  run_scenario(sink, [&](std::uint64_t interval) {
    IntervalResult r = detector.process(bank, interval);
    const ShedReport sr = shed.seal_interval();
    r.coverage.sample_coverage = sr.sample_coverage;
    r.coverage.shed = sr.shed();
    r.coverage.ops_offered = sr.ops_offered;
    r.coverage.ops_shed = sr.ops_shed;
    r.coverage.shed_level_max = sr.level_max;
    results.push_back(std::move(r));
    bank.clear();
  });
  return results;
}

std::vector<IntervalResult> replay_overloaded_pipeline(
    unsigned record_threads, std::size_t epoch_threads = 1,
    std::size_t ring_capacity = ParallelRecorder::kDefaultRingCapacity) {
  OverlappedPipelineConfig cfg;
  cfg.bank = bank_cfg();
  cfg.detector = det_cfg(epoch_threads);
  cfg.record_mode = OverlappedPipelineConfig::RecordMode::kShardedReplicas;
  cfg.record_threads = record_threads;
  cfg.ring_capacity = ring_capacity;
  cfg.shed = shed_cfg();
  OverlappedPipeline pipe(cfg);
  run_scenario(pipe, [&](std::uint64_t) { pipe.close_interval(); });
  pipe.wait_epoch_idle();
  return pipe.take_results();
}

void expect_same_alerts(const std::vector<IntervalResult>& a,
                        const std::vector<IntervalResult>& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].interval, b[i].interval) << what << " interval " << i;
    EXPECT_EQ(a[i].raw, b[i].raw) << what << " raw, interval " << i;
    EXPECT_EQ(a[i].after_2d, b[i].after_2d)
        << what << " after_2d, interval " << i;
    EXPECT_EQ(a[i].final, b[i].final) << what << " final, interval " << i;
  }
}

void expect_same_overload_outcome(const std::vector<IntervalResult>& a,
                                  const std::vector<IntervalResult>& b,
                                  const char* what) {
  expect_same_alerts(a, b, what);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].refined, b[i].refined) << what << " refined, interval " << i;
    EXPECT_EQ(a[i].refinement, b[i].refinement)
        << what << " refinement, interval " << i;
    EXPECT_EQ(a[i].coverage.sample_coverage, b[i].coverage.sample_coverage)
        << what << " sample_coverage, interval " << i;
    EXPECT_EQ(a[i].coverage.shed, b[i].coverage.shed)
        << what << " shed, interval " << i;
    EXPECT_EQ(a[i].coverage.ops_offered, b[i].coverage.ops_offered)
        << what << " ops_offered, interval " << i;
    EXPECT_EQ(a[i].coverage.ops_shed, b[i].coverage.ops_shed)
        << what << " ops_shed, interval " << i;
    EXPECT_EQ(a[i].coverage.shed_level_max, b[i].coverage.shed_level_max)
        << what << " shed_level_max, interval " << i;
  }
}

TEST(OverloadDeterminism, SheddingAndRefinementActuallyFire) {
  // Guard against vacuous equality downstream: the scenario must shed on
  // the attack intervals, keep full coverage on the warm-up, still alert,
  // and drive the refinement loop through at least one confirmed verdict.
  const auto results = replay_overloaded_pipeline(2);
  ASSERT_EQ(results.size(), 10u);
  EXPECT_FALSE(results[0].coverage.shed) << "warm-up interval shed";
  EXPECT_EQ(results[0].coverage.sample_coverage, 1.0);
  std::size_t shed_intervals = 0, final_alerts = 0, confirmed = 0;
  std::uint32_t level_max = 0;
  for (const auto& r : results) {
    shed_intervals += r.coverage.shed ? 1 : 0;
    final_alerts += r.final.size();
    confirmed += r.refinement.confirmed;
    level_max = std::max(level_max, r.coverage.shed_level_max);
    if (r.coverage.shed) {
      EXPECT_LT(r.coverage.effective_coverage(), 1.0);
      EXPECT_GE(r.coverage.effective_coverage(),
                shed_cfg().min_coverage());
    }
  }
  EXPECT_GE(shed_intervals, 6u);
  EXPECT_GE(level_max, 2u) << "peak load never escalated past level 1";
  EXPECT_GT(final_alerts, 0u) << "shedding suppressed every alert";
  EXPECT_GT(confirmed, 0u) << "refinement never confirmed an attack";
}

TEST(OverloadDeterminism, ShardedSheddingBitIdenticalToSerialShed) {
  // The acceptance-criteria check: same seed, same config, shedding active,
  // 1/2/4/8 shards — all bit-identical to the serial inline-shed loop.
  const auto serial = replay_serial_shed();
  bool any_shed = false;
  for (const auto& r : serial) any_shed |= r.coverage.shed;
  ASSERT_TRUE(any_shed) << "reference never shed — vacuous test";
  expect_same_alerts(serial, replay_overloaded_pipeline(1), "1 shard");
  expect_same_alerts(serial, replay_overloaded_pipeline(2), "2 shards");
  expect_same_alerts(serial, replay_overloaded_pipeline(4), "4 shards");
  expect_same_alerts(serial, replay_overloaded_pipeline(8), "8 shards");
}

TEST(OverloadDeterminism, ShardCountInvariantIncludesRefinementAndCoverage) {
  // Pipeline-vs-pipeline: beyond the alert streams, the refined alerts,
  // refinement reports, and shed coverage fields must match at every shard
  // count (the serial reference has no refinement loop to compare against).
  const auto one = replay_overloaded_pipeline(1);
  expect_same_overload_outcome(one, replay_overloaded_pipeline(2, 2),
                               "2 shards");
  expect_same_overload_outcome(one, replay_overloaded_pipeline(4, 2),
                               "4 shards");
  expect_same_overload_outcome(one, replay_overloaded_pipeline(8, 1),
                               "8 shards");
}

TEST(OverloadDeterminism, TinyRingsDoNotChangeShedDecisions) {
  // Tiny rings force constant producer backpressure while shedding is
  // active: the backoff path must stay scheduling-only. Also the natural
  // place to see the ring-full telemetry actually plumbed through.
  const auto serial = replay_serial_shed();
  const auto tiny = replay_overloaded_pipeline(3, 2, /*ring_capacity=*/8);
  expect_same_alerts(serial, tiny, "sharded ring 8, shed");
  std::uint64_t ring_full = 0;
  for (const auto& r : tiny) {
    if (!r.epoch.shard_ring_full_spins.empty()) {
      EXPECT_EQ(r.epoch.shard_ring_full_spins.size(), 3u);
    }
    ring_full += r.epoch.ring_full_spins;
  }
  EXPECT_GT(ring_full, 0u) << "ring 8 never filled — telemetry dead?";
}

TEST(OverloadDeterminism, RepeatedRunsAreIdentical) {
  // Same config twice, refinement and shedding active: the whole
  // IntervalResult stream (incl. verdicts) must reproduce exactly.
  expect_same_overload_outcome(replay_overloaded_pipeline(4, 2),
                               replay_overloaded_pipeline(4, 2),
                               "repeat 4 shards");
}

}  // namespace
}  // namespace hifind
