#include "detect/sketch_wire.hpp"

#include <gtest/gtest.h>

#include "../testing/synthetic.hpp"

namespace hifind {
namespace {

using testing::feed_completed;
using testing::feed_flood;

SketchBankConfig small_cfg() {
  SketchBankConfig c;
  c.seed = 77;
  c.rs48.bucket_bits = 12;
  c.verification.num_buckets = 1u << 12;
  c.original.num_buckets = 1u << 12;
  c.twod.x_buckets = 1u << 10;
  return c;
}

TEST(SketchWireTest, RoundTripPreservesEveryCounter) {
  SketchBank bank(small_cfg());
  Pcg32 rng(3);
  feed_completed(bank, IPv4(100, 1, 1, 1), IPv4(129, 105, 1, 1), 443, 50);
  feed_flood(bank, IPv4(129, 105, 9, 9), 80, 200, true, rng);

  const auto bytes = serialize_bank(bank);
  const SketchBank back = deserialize_bank(bytes);

  ASSERT_TRUE(back.combinable_with(bank));
  EXPECT_EQ(back.packets_recorded(), bank.packets_recorded());
  const auto a = bank.rs_dip_dport().counters();
  const auto b = back.rs_dip_dport().counters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
  // Estimates — which also exercise the recomputed stage sums — agree.
  const std::uint64_t key = pack_ip_port(IPv4(129, 105, 9, 9), 80);
  EXPECT_DOUBLE_EQ(back.rs_dip_dport().estimate(key),
                   bank.rs_dip_dport().estimate(key));
  EXPECT_DOUBLE_EQ(back.synack_history().estimate(
                       pack_ip_port(IPv4(129, 105, 1, 1), 443)),
                   bank.synack_history().estimate(
                       pack_ip_port(IPv4(129, 105, 1, 1), 443)));
}

TEST(SketchWireTest, DeserializedBankCombinesWithLiveBank) {
  // The point of the wire format: a shipped bank must be COMBINE-compatible
  // with banks built locally from the same config.
  SketchBank remote(small_cfg()), local(small_cfg());
  Pcg32 rng(5);
  feed_flood(remote, IPv4(129, 105, 9, 9), 80, 100, true, rng);
  feed_flood(local, IPv4(129, 105, 9, 9), 80, 150, true, rng);

  SketchBank shipped = deserialize_bank(serialize_bank(remote));
  shipped.accumulate(local);
  const std::uint64_t key = pack_ip_port(IPv4(129, 105, 9, 9), 80);
  EXPECT_NEAR(shipped.rs_dip_dport().estimate(key), 250.0, 15.0);
}

TEST(SketchWireTest, RejectsCorruptedInput) {
  SketchBank bank(small_cfg());
  auto bytes = serialize_bank(bank);
  // Bad magic.
  auto bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_THROW(deserialize_bank(bad), std::runtime_error);
  // Truncated body.
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_bank(bytes), std::runtime_error);
}

// --- Versioned frames (HFB1 legacy + HFB2 checksummed) ------------------

std::vector<double> counters_of(const SketchBank& b) {
  const auto span = b.rs_dip_dport().counters();
  return {span.begin(), span.end()};
}

TEST(SketchWireTest, LegacyHfb1RoundTrips) {
  // Banks serialized before HFB2 existed must still load: deserialize_bank
  // dispatches on the magic.
  SketchBank bank(small_cfg());
  Pcg32 rng(9);
  feed_flood(bank, IPv4(129, 105, 9, 9), 80, 120, true, rng);

  const auto v1 = serialize_bank_hfb1(bank);
  ASSERT_EQ(v1[0], 'H');
  ASSERT_EQ(v1[3], '1');
  const SketchBank back = deserialize_bank(v1);
  EXPECT_TRUE(back.combinable_with(bank));
  EXPECT_EQ(back.packets_recorded(), bank.packets_recorded());
  EXPECT_EQ(counters_of(back), counters_of(bank));

  const BankFrame frame = deserialize_frame(v1);
  EXPECT_EQ(frame.version, 1);
  EXPECT_EQ(frame.router_id, 0u);
  EXPECT_EQ(frame.interval, 0u);
}

TEST(SketchWireTest, Hfb2RoundTripsWithHeader) {
  SketchBank bank(small_cfg());
  Pcg32 rng(10);
  feed_flood(bank, IPv4(129, 105, 9, 9), 80, 120, true, rng);

  const auto v2 = serialize_frame(bank, /*router_id=*/6, /*interval=*/41);
  ASSERT_EQ(v2[3], '2');
  const BankFrame frame = deserialize_frame(v2);
  EXPECT_EQ(frame.version, 2);
  EXPECT_EQ(frame.router_id, 6u);
  EXPECT_EQ(frame.interval, 41u);
  EXPECT_EQ(frame.bank.packets_recorded(), bank.packets_recorded());
  EXPECT_EQ(counters_of(frame.bank), counters_of(bank));
}

TEST(SketchWireTest, TypedFaultsNameTheRejection) {
  SketchBank bank(small_cfg());
  const auto bytes = serialize_frame(bank, 1, 2);

  auto expect_fault = [](const std::vector<std::uint8_t>& frame,
                         WireFault want) {
    try {
      deserialize_bank(frame);
      FAIL() << "expected WireError " << wire_fault_name(want);
    } catch (const WireError& e) {
      EXPECT_EQ(e.fault(), want) << e.what();
    }
  };

  auto bad = bytes;
  bad[0] ^= 0xff;
  expect_fault(bad, WireFault::kBadMagic);

  bad = bytes;
  bad.resize(10);  // inside the HFB2 header
  expect_fault(bad, WireFault::kTruncated);

  bad = bytes;
  bad.resize(bytes.size() - 5);  // payload shorter than declared
  expect_fault(bad, WireFault::kTruncated);

  bad = bytes;
  bad.push_back(0);  // payload longer than declared
  expect_fault(bad, WireFault::kBadLength);

  bad = bytes;
  bad.back() ^= 0x40;  // flip payload content
  expect_fault(bad, WireFault::kChecksumMismatch);

  bad = bytes;
  bad[24] ^= 0x01;  // flip the stored CRC field itself (header offset 24)
  expect_fault(bad, WireFault::kChecksumMismatch);
}

TEST(SketchWireTest, Hfb1TrailingBytesRejected) {
  SketchBank bank(small_cfg());
  auto v1 = serialize_bank_hfb1(bank);
  v1.push_back(0xaa);
  try {
    deserialize_bank(v1);
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_EQ(e.fault(), WireFault::kTrailingBytes);
  }
}

TEST(SketchWireTest, WireSizeMatchesCounterFootprint) {
  SketchBank bank(small_cfg());
  const auto bytes = serialize_bank(bank);
  // Counters dominate; config/header overhead is tiny.
  EXPECT_GT(bytes.size(), bank.memory_bytes());
  EXPECT_LT(bytes.size(), bank.memory_bytes() + 4096);
}

}  // namespace
}  // namespace hifind
