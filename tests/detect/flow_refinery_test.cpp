// ActiveFlowTable + refine_alerts contract tests: exact evidence
// accumulation, bounded capacity with deterministic staleness eviction,
// the seal-then-install ordering (no partial-interval kills), and
// refinement verdicts as a pure function of (alerts, evidence, config).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../testing/synthetic.hpp"
#include "detect/flow_refinery.hpp"
#include "packet/packet.hpp"

namespace hifind {
namespace {

RecordOp op_for(const PacketRecord& p) {
  RecordOp op{};
  EXPECT_TRUE(make_record_op(p, 1.0, op));
  return op;
}

FlowRefineryConfig small_cfg(std::size_t capacity = 16) {
  FlowRefineryConfig c;
  c.capacity = capacity;
  c.max_idle_intervals = 4;
  return c;
}

const FlowEvidenceEntry* find_entry(const FlowEvidence& ev, KeyKind kind,
                                    std::uint64_t key) {
  for (const FlowEvidenceEntry& e : ev.entries) {
    if (e.kind == kind && e.key == key) return &e;
  }
  return nullptr;
}

TEST(ActiveFlowTable, TracksExactWeightedCountsPerKeySpace) {
  ActiveFlowTable table(small_cfg());
  const IPv4 client(10, 0, 0, 1), server(10, 0, 0, 2);
  const std::uint64_t dip_key = pack_ip_port(server, 80);
  table.install({{KeyKind::DipDport, dip_key}}, /*interval=*/0);
  ASSERT_EQ(table.size(), 1u);

  // 5 SYNs and 2 SYN-ACKs touching the tracked {DIP,Dport}; one unrelated
  // flow that must not count.
  for (int i = 0; i < 5; ++i) {
    table.observe(op_for(testing::syn_packet(
        0, client, server, 80, static_cast<std::uint16_t>(30000 + i))));
  }
  for (int i = 0; i < 2; ++i) {
    table.observe(op_for(testing::synack_packet(
        0, server, 80, client, static_cast<std::uint16_t>(30000 + i))));
  }
  table.observe(op_for(testing::syn_packet(0, client, IPv4(9, 9, 9, 9), 22)));

  const FlowEvidence ev = table.seal(/*interval=*/1);
  const FlowEvidenceEntry* e = find_entry(ev, KeyKind::DipDport, dip_key);
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->syn, 5.0);
  // The SYN-ACK is server->client; direction reflection folds it onto the
  // same {DIP,Dport} key as the SYNs it answers.
  EXPECT_DOUBLE_EQ(e->synack, 2.0);
  EXPECT_DOUBLE_EQ(e->unresponded(), 3.0);
  EXPECT_TRUE(e->full_interval);  // installed at 0, sealed at 1

  // Counters reset at seal: a second seal with no traffic reads zero.
  const FlowEvidence ev2 = table.seal(/*interval=*/2);
  const FlowEvidenceEntry* e2 = find_entry(ev2, KeyKind::DipDport, dip_key);
  ASSERT_NE(e2, nullptr);
  EXPECT_DOUBLE_EQ(e2->syn, 0.0);
  EXPECT_DOUBLE_EQ(e2->synack, 0.0);
}

TEST(ActiveFlowTable, FreshInstallSealsAsPartialInterval) {
  ActiveFlowTable table(small_cfg());
  const std::uint64_t key = pack_ip_port(IPv4(1, 2, 3, 4), 80);
  table.install({{KeyKind::DipDport, key}}, /*interval=*/5);
  // Sealing the SAME interval the key was installed at: evidence exists but
  // is flagged partial, so refinement must not kill on it.
  const FlowEvidence ev = table.seal(/*interval=*/5);
  const FlowEvidenceEntry* e = find_entry(ev, KeyKind::DipDport, key);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->full_interval);
  // One interval later the same entry covers a full interval.
  const FlowEvidence ev2 = table.seal(/*interval=*/6);
  const FlowEvidenceEntry* e2 = find_entry(ev2, KeyKind::DipDport, key);
  ASSERT_NE(e2, nullptr);
  EXPECT_TRUE(e2->full_interval);
}

TEST(ActiveFlowTable, CapacityBoundHoldsWithStalestEviction) {
  ActiveFlowTable table(small_cfg(/*capacity=*/4));
  // 3 old keys at interval 0, refreshed key 2 at interval 1, then 3 new
  // keys at interval 2: evictions must take the stalest (0, then 1).
  std::vector<FlowCandidate> old_keys;
  for (std::uint64_t k = 0; k < 3; ++k) {
    old_keys.push_back(
        {KeyKind::DipDport,
         pack_ip_port(IPv4(10, 0, 0, static_cast<std::uint8_t>(k + 1)), 80)});
  }
  table.install(old_keys, 0);
  table.install({old_keys[2]}, 1);  // refresh -> not stalest anymore
  std::vector<FlowCandidate> new_keys;
  for (std::uint64_t k = 0; k < 3; ++k) {
    new_keys.push_back({KeyKind::SipDip,
                        pack_ip_ip(IPv4{static_cast<std::uint32_t>(k + 7)},
                                     IPv4(2, 2, 2, 2))});
  }
  table.install(new_keys, 2);
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(table.evicted(), 2u);
  const FlowEvidence ev = table.seal(3);
  // The refreshed old key survived; all three new keys are present.
  EXPECT_NE(find_entry(ev, old_keys[2].kind, old_keys[2].key), nullptr);
  for (const FlowCandidate& c : new_keys) {
    EXPECT_NE(find_entry(ev, c.kind, c.key), nullptr);
  }
}

TEST(ActiveFlowTable, IdleEntriesAgeOutAtSeal) {
  FlowRefineryConfig cfg = small_cfg();
  cfg.max_idle_intervals = 2;
  ActiveFlowTable table(cfg);
  const std::uint64_t key = pack_ip_port(IPv4(1, 1, 1, 1), 80);
  table.install({{KeyKind::DipDport, key}}, 0);
  EXPECT_NE(find_entry(table.seal(1), KeyKind::DipDport, key), nullptr);
  // interval 2 - last_flagged 0 >= 2: evicted at this seal (still reported
  // one last time), gone from the next.
  table.seal(2);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.evicted(), 1u);
}

// ---------------------------------------------------------------------------
// refine_alerts

Alert make_alert(KeyKind kind, std::uint64_t key, double magnitude = 100.0) {
  Alert a;
  a.type = AttackType::kSynFlooding;
  a.key_kind = kind;
  a.key = key;
  a.magnitude = magnitude;
  return a;
}

FlowEvidenceEntry evidence_entry(KeyKind kind, std::uint64_t key, double syn,
                                 double synack, bool full = true) {
  FlowEvidenceEntry e;
  e.kind = kind;
  e.key = key;
  e.syn = syn;
  e.synack = synack;
  e.full_interval = full;
  return e;
}

TEST(RefineAlerts, ConfirmsKillsAndPassesThrough) {
  // threshold 60, confirm_fraction 0.5 -> exact unresponded >= 30 confirms.
  const std::uint64_t real = pack_ip_port(IPv4(1, 1, 1, 1), 80);
  const std::uint64_t phantom = pack_ip_port(IPv4(2, 2, 2, 2), 80);
  const std::uint64_t unseen = pack_ip_port(IPv4(3, 3, 3, 3), 80);
  const std::uint64_t fresh = pack_ip_port(IPv4(4, 4, 4, 4), 80);
  FlowEvidence ev;
  ev.entries = {
      evidence_entry(KeyKind::DipDport, real, 200.0, 10.0),
      // A collision phantom: the sketch shouted, the exact counters show
      // almost nothing un-responded.
      evidence_entry(KeyKind::DipDport, phantom, 5.0, 3.0),
      evidence_entry(KeyKind::DipDport, fresh, 500.0, 0.0, /*full=*/false),
  };
  const std::vector<Alert> final_alerts = {
      make_alert(KeyKind::DipDport, real),
      make_alert(KeyKind::DipDport, phantom),
      make_alert(KeyKind::DipDport, unseen),
      make_alert(KeyKind::DipDport, fresh),
  };
  const RefinementOutcome out =
      refine_alerts(final_alerts, ev, /*interval_threshold=*/60.0,
                    FlowRefineryConfig{});
  EXPECT_TRUE(out.report.active);
  EXPECT_EQ(out.report.tracked, 3u);
  EXPECT_EQ(out.report.confirmed, 1u);
  EXPECT_EQ(out.report.killed, 1u);
  EXPECT_EQ(out.report.unverified, 2u);  // unseen + partial-evidence fresh
  ASSERT_EQ(out.refined.size(), 3u);
  EXPECT_EQ(out.refined[0].key, real);
  EXPECT_EQ(out.refined[1].key, unseen);
  EXPECT_EQ(out.refined[2].key, fresh);
}

TEST(RefineAlerts, DisabledConfigPassesEverythingUnrefined) {
  FlowRefineryConfig cfg;
  cfg.enabled = false;
  const std::vector<Alert> final_alerts = {
      make_alert(KeyKind::DipDport, pack_ip_port(IPv4(2, 2, 2, 2), 80))};
  FlowEvidence ev;
  ev.entries = {evidence_entry(KeyKind::DipDport,
                               pack_ip_port(IPv4(2, 2, 2, 2), 80), 0.0, 0.0)};
  const RefinementOutcome out = refine_alerts(final_alerts, ev, 60.0, cfg);
  EXPECT_FALSE(out.report.active);
  EXPECT_EQ(out.refined, final_alerts);
}

TEST(RefineAlerts, VerdictsArePureFunctionOfInputs) {
  // Same (alerts, evidence, config) => same outcome, call after call — the
  // determinism contract the epoch thread relies on.
  FlowEvidence ev;
  ev.entries = {
      evidence_entry(KeyKind::DipDport, pack_ip_port(IPv4(1, 1, 1, 1), 80),
                     40.0, 5.0),
      evidence_entry(KeyKind::SipDip,
                     pack_ip_ip(IPv4(6, 6, 6, 6), IPv4(1, 1, 1, 1)), 2.0,
                     1.0),
  };
  const std::vector<Alert> final_alerts = {
      make_alert(KeyKind::DipDport, pack_ip_port(IPv4(1, 1, 1, 1), 80)),
      make_alert(KeyKind::SipDip,
                 pack_ip_ip(IPv4(6, 6, 6, 6), IPv4(1, 1, 1, 1))),
  };
  const RefinementOutcome a =
      refine_alerts(final_alerts, ev, 60.0, FlowRefineryConfig{});
  const RefinementOutcome b =
      refine_alerts(final_alerts, ev, 60.0, FlowRefineryConfig{});
  EXPECT_EQ(a.refined, b.refined);
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.report.confirmed, 1u);
  EXPECT_EQ(a.report.killed, 1u);
}

std::vector<FlowCandidate> flood_candidates(std::size_t n,
                                            std::uint64_t base) {
  std::vector<FlowCandidate> c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = {KeyKind::DipDport, base + i};
  }
  return c;
}

TEST(CandidateBloomGate, FloodInstallRateIsCappedToRepeatOffenders) {
  // A flagged-key flood: 10k distinct candidates in one interval, none ever
  // seen before. The Bloom gate must keep (almost) all of them out of the
  // exact table — without it the flood would churn the full capacity
  // through evict_stalest() every interval.
  FlowRefineryConfig cfg = small_cfg(/*capacity=*/4096);
  cfg.bloom_gate_min_candidates = 1024;
  ActiveFlowTable table(cfg);

  // A real attack key, flagged in the previous interval (benign load, no
  // gate), must survive the flood untouched.
  const std::uint64_t real_key = pack_ip_port(IPv4(1, 2, 3, 4), 80);
  table.install({{KeyKind::DipDport, real_key}}, /*interval=*/0);
  ASSERT_EQ(table.size(), 1u);

  table.seal(/*interval=*/1);
  table.install(flood_candidates(10000, /*base=*/1u << 20), /*interval=*/1);
  // First sighting under flood: rejected wholesale (a handful of Bloom
  // false positives notwithstanding), and the previously-installed key is
  // still tracked.
  EXPECT_GE(table.bloom_rejected(), 9900u);
  EXPECT_LE(table.size(), 100u);

  // Repeat offenders DO get in: the same flood next interval tests positive
  // against the previous generation (up to the per-generation insert cap).
  table.seal(/*interval=*/2);
  table.install(flood_candidates(10000, /*base=*/1u << 20), /*interval=*/2);
  EXPECT_GE(table.size(), 1000u);
  EXPECT_LE(table.size(), cfg.capacity);
}

TEST(CandidateBloomGate, BenignInstallRatesAreUnaffected) {
  FlowRefineryConfig cfg = small_cfg(/*capacity=*/4096);
  cfg.bloom_gate_min_candidates = 1024;
  ActiveFlowTable table(cfg);
  // 100 first-sighting candidates — normal alert volume, below the gate
  // threshold: every one installs exactly as before the filter existed.
  table.install(flood_candidates(100, /*base=*/7), /*interval=*/0);
  EXPECT_EQ(table.size(), 100u);
  EXPECT_EQ(table.bloom_rejected(), 0u);
}

TEST(CandidateBloomGate, GateDisabledByZeroThreshold) {
  FlowRefineryConfig cfg = small_cfg(/*capacity=*/100000);
  cfg.bloom_gate_min_candidates = 0;
  ActiveFlowTable table(cfg);
  table.install(flood_candidates(10000, /*base=*/3), /*interval=*/0);
  EXPECT_EQ(table.size(), 10000u);
  EXPECT_EQ(table.bloom_rejected(), 0u);
}

TEST(CandidateBloomGate, FloodDecisionsAreDeterministic) {
  // Two identical tables fed the identical flood make identical admission
  // decisions — the gate may not add any run-to-run variance to the
  // refinement pipeline.
  FlowRefineryConfig cfg = small_cfg(/*capacity=*/4096);
  cfg.bloom_gate_min_candidates = 64;
  ActiveFlowTable a(cfg), b(cfg);
  for (std::uint64_t interval = 0; interval < 4; ++interval) {
    a.seal(interval);
    b.seal(interval);
    const auto flood = flood_candidates(5000, /*base=*/interval * 1000);
    a.install(flood, interval);
    b.install(flood, interval);
    ASSERT_EQ(a.size(), b.size()) << "interval " << interval;
    ASSERT_EQ(a.bloom_rejected(), b.bloom_rejected())
        << "interval " << interval;
  }
}

}  // namespace
}  // namespace hifind
