// The parallel fused detection epoch must be a pure refactor of the serial
// one: for the same packet stream, the detector must emit BIT-IDENTICAL
// alerts (raw, after_2d, final) regardless of epoch thread count or SIMD
// backend. Also exercised under TSan in CI (suite name is in the TSan
// filter), where the task-pool handoffs are checked for races.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../testing/synthetic.hpp"
#include "detect/hifind.hpp"
#include "sketch/simd_ops.hpp"

namespace hifind {
namespace {

using testing::feed_completed;
using testing::feed_flood;
using testing::feed_hscan;
using testing::feed_vscan;

SketchBankConfig bank_cfg() {
  SketchBankConfig c;
  c.seed = 42;
  c.twod.x_buckets = 1u << 10;
  return c;
}

HifindDetectorConfig det_cfg(std::size_t epoch_threads) {
  HifindDetectorConfig c;
  c.interval_seconds = 60;
  c.syn_rate_threshold = 1.0;
  c.min_persist_intervals = 2;  // persistence state must also be identical
  c.epoch_threads = epoch_threads;
  return c;
}

/// Replays a fixed 10-interval mixed-attack scenario (floods, scans, benign
/// churn, on/off attacks) and returns every interval's full result.
std::vector<IntervalResult> replay(std::size_t epoch_threads) {
  SketchBank bank(bank_cfg());
  HifindDetector detector(det_cfg(epoch_threads));
  Pcg32 rng(7, 11);  // same stream for every replay
  std::vector<IntervalResult> results;
  const IPv4 victim(129, 105, 1, 1);
  const IPv4 victim2(129, 105, 2, 2);
  for (std::uint64_t interval = 0; interval < 10; ++interval) {
    // Benign floor: handshakes give victims SYN/ACK history.
    feed_completed(bank, IPv4(100, 1, 1, 1), victim, 80, 30);
    feed_completed(bank, IPv4(100, 1, 1, 2), victim2, 443, 30);
    feed_completed(bank, IPv4(100, 1, 1, 3), IPv4(129, 105, 1, 3), 22, 20);
    if (interval >= 2) {
      feed_flood(bank, victim, 80, 400, /*spoofed=*/true, rng);
    }
    if (interval >= 3 && interval <= 7) {
      feed_flood(bank, victim2, 443, 300, /*spoofed=*/false, rng,
                 IPv4(6, 6, 6, 6));
    }
    if (interval >= 4) {
      feed_hscan(bank, IPv4(7, 7, 7, 7), 445, 250);
      feed_vscan(bank, IPv4(8, 8, 8, 8), IPv4(129, 105, 9, 9), 250);
    }
    results.push_back(detector.process(bank, interval));
    bank.clear();
  }
  return results;
}

void expect_identical(const std::vector<IntervalResult>& a,
                      const std::vector<IntervalResult>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].raw, b[i].raw) << what << " raw, interval " << i;
    EXPECT_EQ(a[i].after_2d, b[i].after_2d)
        << what << " after_2d, interval " << i;
    EXPECT_EQ(a[i].final, b[i].final) << what << " final, interval " << i;
  }
}

TEST(EpochDeterminism, ScenarioProducesAlerts) {
  // Guard against vacuous equality: the scenario must actually alert.
  const auto serial = replay(/*epoch_threads=*/1);
  std::size_t raw = 0, fin = 0;
  for (const auto& r : serial) {
    raw += r.raw.size();
    fin += r.final.size();
  }
  EXPECT_GT(raw, 0u);
  EXPECT_GT(fin, 0u);
}

TEST(EpochDeterminism, ParallelEpochBitIdenticalToSerial) {
  const auto serial = replay(/*epoch_threads=*/1);
  expect_identical(serial, replay(2), "2 threads");
  expect_identical(serial, replay(4), "4 threads");
  expect_identical(serial, replay(8), "8 threads");
}

TEST(EpochDeterminism, SimdBackendDoesNotChangeAlerts) {
  // Scalar serial (the seed configuration) vs SIMD parallel: the strongest
  // cross-cutting equality the PR promises.
  simd::set_force_scalar(true);
  const auto scalar_serial = replay(/*epoch_threads=*/1);
  simd::set_force_scalar(false);
  const auto simd_parallel = replay(/*epoch_threads=*/4);
  expect_identical(scalar_serial, simd_parallel, "scalar/1t vs simd/4t");
}

TEST(EpochDeterminism, AutoThreadCountMatchesSerial) {
  const auto serial = replay(/*epoch_threads=*/1);
  expect_identical(serial, replay(/*epoch_threads=*/0), "auto threads");
}

}  // namespace
}  // namespace hifind
