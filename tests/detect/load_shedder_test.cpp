// LoadShedder contract tests: deterministic admit decisions, nested
// power-of-two sampling, budget-driven escalation, seal-time restore
// hysteresis, and flow-coherent (SYN vs SYN-ACK) decisions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "../testing/synthetic.hpp"
#include "common/rng.hpp"
#include "detect/load_shedder.hpp"
#include "packet/packet.hpp"

namespace hifind {
namespace {

RecordOp op_for(const PacketRecord& p) {
  RecordOp op{};
  EXPECT_TRUE(make_record_op(p, 1.0, op));
  return op;
}

std::vector<RecordOp> random_syn_ops(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed, 99);
  std::vector<RecordOp> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops.push_back(op_for(testing::syn_packet(
        0, IPv4{rng.next()}, IPv4{rng.next()},
        static_cast<std::uint16_t>(rng.bounded(60000) + 1))));
  }
  return ops;
}

TEST(LoadShedder, DisabledConfigAdmitsEverythingAtUnitWeight) {
  LoadShedder shed(LoadShedderConfig{});
  EXPECT_FALSE(shed.enabled());
  for (const RecordOp& op : random_syn_ops(200, 1)) {
    EXPECT_EQ(shed.admit(op), 1.0);
  }
  const ShedReport r = shed.seal_interval();
  // A disabled shedder does not even count: zero overhead, clean report.
  EXPECT_EQ(r.ops_offered, 0u);
  EXPECT_EQ(r.ops_shed, 0u);
  EXPECT_EQ(r.sample_coverage, 1.0);
  EXPECT_FALSE(r.shed());
}

TEST(LoadShedder, BudgetEscalatesAtPowerOfTwoThresholds) {
  LoadShedderConfig cfg;
  cfg.budget_ops_per_interval = 100;
  LoadShedder shed(cfg);
  const auto ops = random_syn_ops(500, 2);
  std::vector<std::uint32_t> level_at;  // level seen by the n-th op
  for (const RecordOp& op : ops) {
    shed.admit(op);
    level_at.push_back(shed.level());
  }
  // Escalation points are a pure function of the offered count: level 1
  // past 100 offered, 2 past 200, 3 past 400.
  EXPECT_EQ(level_at[99], 0u);
  EXPECT_EQ(level_at[100], 1u);
  EXPECT_EQ(level_at[199], 1u);
  EXPECT_EQ(level_at[200], 2u);
  EXPECT_EQ(level_at[399], 2u);
  EXPECT_EQ(level_at[400], 3u);
  EXPECT_EQ(level_at[499], 3u);

  const ShedReport r = shed.seal_interval();
  EXPECT_EQ(r.ops_offered, 500u);
  EXPECT_EQ(r.level_max, 3u);
  EXPECT_EQ(r.level_end, 2u);  // default restore = 1 level per interval
  EXPECT_TRUE(r.shed());
  EXPECT_EQ(r.ops_admitted + r.ops_shed, r.ops_offered);
  EXPECT_DOUBLE_EQ(r.sample_coverage, static_cast<double>(r.ops_admitted) /
                                          static_cast<double>(r.ops_offered));
}

TEST(LoadShedder, AdmitWeightIsExactPowerOfTwo) {
  for (std::uint32_t level = 1; level <= 6; ++level) {
    LoadShedderConfig cfg;
    cfg.initial_level = level;
    LoadShedder shed(cfg);
    for (const RecordOp& op : random_syn_ops(512, 3)) {
      const double w = shed.admit(op);
      if (w != 0.0) {
        EXPECT_EQ(w, std::ldexp(1.0, static_cast<int>(level)));
      }
    }
  }
}

TEST(LoadShedder, SamplesAreNestedAcrossLevels) {
  // The level-(k+1) sample must be a subset of the level-k sample: rate
  // changes refine the same cohort instead of switching populations, so a
  // flow's fate under escalation is monotone.
  const auto ops = random_syn_ops(2048, 4);
  std::vector<std::set<std::uint64_t>> admitted(5);
  for (std::uint32_t level = 0; level <= 4; ++level) {
    LoadShedderConfig cfg;
    cfg.initial_level = level;
    LoadShedder shed(cfg);
    for (const RecordOp& op : ops) {
      if (shed.admit(op) != 0.0) admitted[level].insert(op.k_sip_dip);
    }
  }
  EXPECT_EQ(admitted[0].size(), 2048u);
  for (std::uint32_t level = 1; level <= 4; ++level) {
    for (std::uint64_t key : admitted[level]) {
      EXPECT_TRUE(admitted[level - 1].count(key))
          << "level " << level << " admitted a key level " << level - 1
          << " shed";
    }
    // mix64 is a good mixer: the sample size should sit near n / 2^level.
    const double expect = 2048.0 * std::ldexp(1.0, -static_cast<int>(level));
    EXPECT_NEAR(static_cast<double>(admitted[level].size()), expect,
                expect * 0.5 + 32.0);
    EXPECT_GT(admitted[level].size(), 0u);
  }
}

TEST(LoadShedder, DecisionsAreDeterministic) {
  const auto ops = random_syn_ops(1000, 5);
  LoadShedderConfig cfg;
  cfg.budget_ops_per_interval = 128;
  LoadShedder a(cfg), b(cfg);
  for (const RecordOp& op : ops) {
    EXPECT_EQ(a.admit(op), b.admit(op));
  }
  const ShedReport ra = a.seal_interval();
  const ShedReport rb = b.seal_interval();
  EXPECT_EQ(ra.ops_admitted, rb.ops_admitted);
  EXPECT_EQ(ra.ops_shed, rb.ops_shed);
  EXPECT_EQ(ra.level_max, rb.level_max);
}

TEST(LoadShedder, SynAndSynAckOfSameFlowShareTheVerdict) {
  // extract_key reflects direction, so the SYN and its answering SYN-ACK
  // carry the same k_sip_dip — the shedder must treat them as one flow or
  // the #SYN - #SYN/ACK signal would be biased under sampling.
  LoadShedderConfig cfg;
  cfg.initial_level = 2;
  LoadShedder shed(cfg);
  Pcg32 rng(6, 7);
  int sampled_flows = 0;
  for (int i = 0; i < 512; ++i) {
    const IPv4 client{rng.next()};
    const IPv4 server{rng.next()};
    const auto sport = static_cast<std::uint16_t>(30000 + i);
    const RecordOp s = op_for(testing::syn_packet(0, client, server, 443,
                                                  sport));
    const RecordOp sa = op_for(testing::synack_packet(0, server, 443, client,
                                                      sport));
    ASSERT_EQ(s.k_sip_dip, sa.k_sip_dip);
    const bool syn_admitted = shed.admit(s) != 0.0;
    const bool synack_admitted = shed.admit(sa) != 0.0;
    EXPECT_EQ(syn_admitted, synack_admitted);
    sampled_flows += syn_admitted ? 1 : 0;
  }
  EXPECT_GT(sampled_flows, 0);
  EXPECT_LT(sampled_flows, 512);
}

TEST(LoadShedder, RestoreHysteresisDecaysPerSeal) {
  LoadShedderConfig cfg;
  cfg.initial_level = 4;
  cfg.restore_levels_per_interval = 2;
  LoadShedder shed(cfg);
  EXPECT_EQ(shed.level(), 4u);
  EXPECT_EQ(shed.seal_interval().level_end, 2u);
  EXPECT_EQ(shed.level(), 2u);
  EXPECT_EQ(shed.seal_interval().level_end, 0u);
  EXPECT_EQ(shed.seal_interval().level_end, 0u);  // clamps at 0
}

TEST(LoadShedder, OccupancyTriggerRespectsWatermarkAndCap) {
  LoadShedderConfig cfg;
  cfg.occupancy_trigger = true;
  cfg.occupancy_high_watermark = 0.75;
  cfg.max_level = 3;
  LoadShedder shed(cfg);
  EXPECT_TRUE(shed.enabled());
  shed.note_ring_pressure(0.5);
  EXPECT_EQ(shed.level(), 0u);
  shed.note_ring_pressure(0.8);
  EXPECT_EQ(shed.level(), 1u);
  shed.note_ring_pressure(1.0);
  shed.note_ring_pressure(1.0);
  shed.note_ring_pressure(1.0);  // capped at max_level
  EXPECT_EQ(shed.level(), 3u);
  const ShedReport r = shed.seal_interval();
  EXPECT_EQ(r.occupancy_escalations, 3u);
  EXPECT_EQ(r.level_max, 3u);
}

TEST(LoadShedder, MaxLevelBoundsCoverageFloor) {
  LoadShedderConfig cfg;
  cfg.budget_ops_per_interval = 10;
  cfg.max_level = 3;
  LoadShedder shed(cfg);
  std::uint64_t admitted = 0;
  const auto ops = random_syn_ops(4096, 8);
  for (const RecordOp& op : ops) {
    if (shed.admit(op) != 0.0) ++admitted;
  }
  EXPECT_EQ(shed.level(), 3u);  // would be 8+ without the cap
  const ShedReport r = shed.seal_interval();
  // Even under unbounded pressure the sampled fraction cannot fall below
  // the configured floor (up to hash noise on the tail).
  EXPECT_GE(r.sample_coverage, cfg.min_coverage() * 0.5);
  EXPECT_EQ(r.ops_admitted, admitted);
}

}  // namespace
}  // namespace hifind
