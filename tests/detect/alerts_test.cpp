#include "detect/alerts.hpp"

#include <gtest/gtest.h>

namespace hifind {
namespace {

TEST(AlertTest, FacetAccessorsByKeyKind) {
  Alert flood;
  flood.type = AttackType::kSynFlooding;
  flood.key_kind = KeyKind::DipDport;
  flood.key = pack_ip_port(IPv4(129, 105, 1, 1), 80);
  EXPECT_EQ(flood.dip(), IPv4(129, 105, 1, 1));
  EXPECT_EQ(flood.dport(), 80);

  Alert vscan;
  vscan.type = AttackType::kVerticalScan;
  vscan.key_kind = KeyKind::SipDip;
  vscan.key = pack_ip_ip(IPv4(6, 6, 6, 6), IPv4(129, 105, 2, 2));
  EXPECT_EQ(vscan.sip(), IPv4(6, 6, 6, 6));
  EXPECT_EQ(vscan.dip(), IPv4(129, 105, 2, 2));

  Alert hscan;
  hscan.type = AttackType::kHorizontalScan;
  hscan.key_kind = KeyKind::SipDport;
  hscan.key = pack_ip_port(IPv4(7, 7, 7, 7), 1433);
  EXPECT_EQ(hscan.sip(), IPv4(7, 7, 7, 7));
  EXPECT_EQ(hscan.dport(), 1433);
}

TEST(AlertTest, DescribeMentionsTypeAndKey) {
  Alert a;
  a.type = AttackType::kHorizontalScan;
  a.key_kind = KeyKind::SipDport;
  a.key = pack_ip_port(IPv4(1, 2, 3, 4), 22);
  a.magnitude = 99.0;
  const std::string d = a.describe();
  EXPECT_NE(d.find("horizontal scan"), std::string::npos) << d;
  EXPECT_NE(d.find("1.2.3.4"), std::string::npos) << d;
  EXPECT_NE(d.find("22"), std::string::npos) << d;
}

TEST(IntervalResultTest, CountFiltersByType) {
  std::vector<Alert> alerts(5);
  alerts[0].type = AttackType::kSynFlooding;
  alerts[1].type = AttackType::kHorizontalScan;
  alerts[2].type = AttackType::kHorizontalScan;
  alerts[3].type = AttackType::kVerticalScan;
  alerts[4].type = AttackType::kNonSpoofedSynFlooding;
  EXPECT_EQ(IntervalResult::count(alerts, AttackType::kHorizontalScan), 2u);
  EXPECT_EQ(IntervalResult::count(alerts, AttackType::kSynFlooding), 1u);
  EXPECT_EQ(IntervalResult::count(alerts, AttackType::kVerticalScan), 1u);
}

TEST(AttackTypeTest, NamesAreDistinct) {
  EXPECT_STRNE(attack_type_name(AttackType::kSynFlooding),
               attack_type_name(AttackType::kNonSpoofedSynFlooding));
  EXPECT_STRNE(attack_type_name(AttackType::kHorizontalScan),
               attack_type_name(AttackType::kVerticalScan));
}

}  // namespace
}  // namespace hifind
