#include "detect/hifind.hpp"

#include <gtest/gtest.h>

#include "../testing/synthetic.hpp"

namespace hifind {
namespace {

using testing::feed_completed;
using testing::feed_flood;
using testing::feed_hscan;
using testing::feed_vscan;
using testing::syn_packet;
using testing::synack_packet;

SketchBankConfig bank_cfg(std::uint64_t seed = 42) {
  SketchBankConfig c;
  c.seed = seed;
  c.twod.x_buckets = 1u << 10;
  return c;
}

HifindDetectorConfig det_cfg() {
  HifindDetectorConfig c;
  c.interval_seconds = 60;
  c.syn_rate_threshold = 1.0;  // 60 per interval
  c.min_persist_intervals = 1;  // isolate per-interval behaviour by default
  return c;
}

/// Feeds a benign baseline so forecasters have a stable floor and flood
/// victims acquire SYN/ACK history.
void feed_baseline(SketchBank& bank) {
  feed_completed(bank, IPv4(100, 1, 1, 1), IPv4(129, 105, 1, 1), 443, 30);
  feed_completed(bank, IPv4(100, 1, 1, 2), IPv4(129, 105, 1, 2), 80, 30);
  feed_completed(bank, IPv4(100, 1, 1, 3), IPv4(129, 105, 1, 3), 22, 20);
}

class HifindDetectorTest : public ::testing::Test {
 protected:
  HifindDetectorTest() : bank_(bank_cfg()), detector_(det_cfg()) {}

  /// Runs one interval: baseline + extra packets fed by `fill`.
  template <class Fill>
  IntervalResult interval(Fill&& fill) {
    feed_baseline(bank_);
    fill(bank_);
    const IntervalResult r = detector_.process(bank_, interval_index_++);
    bank_.clear();
    return r;
  }

  IntervalResult quiet_interval() {
    return interval([](SketchBank&) {});
  }

  SketchBank bank_;
  HifindDetector detector_;
  std::uint64_t interval_index_{0};
  Pcg32 rng_{std::uint64_t{1234}};
};

TEST_F(HifindDetectorTest, FirstIntervalWarmsUpSilently) {
  const IntervalResult r = quiet_interval();
  EXPECT_TRUE(r.raw.empty());
  EXPECT_TRUE(r.final.empty());
}

TEST_F(HifindDetectorTest, QuietTrafficRaisesNothing) {
  quiet_interval();
  for (int i = 0; i < 5; ++i) {
    const IntervalResult r = quiet_interval();
    EXPECT_TRUE(r.raw.empty()) << "interval " << i;
  }
}

TEST_F(HifindDetectorTest, SpoofedFloodDetectedWithVictimKey) {
  quiet_interval();
  const IPv4 victim(129, 105, 1, 1);  // has SYN/ACK history from baseline
  const IntervalResult r = interval([&](SketchBank& b) {
    feed_flood(b, victim, 443, 500, /*spoofed=*/true, rng_);
  });
  ASSERT_GE(IntervalResult::count(r.raw, AttackType::kSynFlooding), 1u);
  bool found = false;
  for (const Alert& a : r.final) {
    if (a.type == AttackType::kSynFlooding && a.dip() == victim &&
        a.dport() == 443) {
      found = true;
      EXPECT_NEAR(a.magnitude, 500.0, 100.0);
    }
  }
  EXPECT_TRUE(found) << "victim {DIP,Dport} must be recoverable";
}

TEST_F(HifindDetectorTest, SpoofedFloodDoesNotRaiseScanAlerts) {
  quiet_interval();
  const IntervalResult r = interval([&](SketchBank& b) {
    feed_flood(b, IPv4(129, 105, 1, 1), 443, 800, /*spoofed=*/true, rng_);
  });
  // Spoofed sources each send one SYN: no {SIP,*} key accumulates.
  EXPECT_EQ(IntervalResult::count(r.final, AttackType::kHorizontalScan), 0u);
  EXPECT_EQ(IntervalResult::count(r.final, AttackType::kVerticalScan), 0u);
}

TEST_F(HifindDetectorTest, NonSpoofedFloodClassifiedNotScan) {
  quiet_interval();
  const IPv4 attacker(66, 1, 2, 3);
  const IntervalResult r = interval([&](SketchBank& b) {
    feed_flood(b, IPv4(129, 105, 1, 1), 443, 400, /*spoofed=*/false, rng_,
               attacker);
  });
  EXPECT_GE(IntervalResult::count(r.raw, AttackType::kSynFlooding), 1u);
  // Steps 2/3 must route the attacker through the flooding sets, not the
  // scan branches.
  EXPECT_EQ(IntervalResult::count(r.final, AttackType::kVerticalScan), 0u);
  EXPECT_EQ(IntervalResult::count(r.final, AttackType::kHorizontalScan), 0u);
  EXPECT_GE(
      IntervalResult::count(r.raw, AttackType::kNonSpoofedSynFlooding), 1u);
}

TEST_F(HifindDetectorTest, HorizontalScanDetectedWithScannerKey) {
  quiet_interval();
  const IPv4 scanner(6, 6, 6, 6);
  const IntervalResult r = interval([&](SketchBank& b) {
    feed_hscan(b, scanner, 1433, 300);
  });
  bool found = false;
  for (const Alert& a : r.final) {
    if (a.type == AttackType::kHorizontalScan && a.sip() == scanner &&
        a.dport() == 1433) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(IntervalResult::count(r.final, AttackType::kSynFlooding), 0u)
      << "an hscan spreads over DIPs; no {DIP,Dport} key should fire";
}

TEST_F(HifindDetectorTest, VerticalScanDetectedWithPairKey) {
  quiet_interval();
  const IPv4 scanner(7, 7, 7, 7);
  const IPv4 target(129, 105, 50, 50);
  const IntervalResult r = interval([&](SketchBank& b) {
    feed_vscan(b, scanner, target, 300);
  });
  bool found = false;
  for (const Alert& a : r.final) {
    if (a.type == AttackType::kVerticalScan && a.sip() == scanner &&
        a.dip() == target) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(HifindDetectorTest, MixedAttacksSeparatedSimultaneously) {
  // The paper's headline claim: a MIX of attacks in one interval is
  // separated into the right classes with the right keys.
  quiet_interval();
  const IPv4 victim(129, 105, 1, 1);
  const IPv4 hscanner(6, 6, 6, 6);
  const IPv4 vscanner(7, 7, 7, 7);
  const IPv4 vtarget(129, 105, 50, 50);
  const IntervalResult r = interval([&](SketchBank& b) {
    feed_flood(b, victim, 443, 600, /*spoofed=*/true, rng_);
    feed_hscan(b, hscanner, 445, 250);
    feed_vscan(b, vscanner, vtarget, 250);
  });
  EXPECT_GE(IntervalResult::count(r.final, AttackType::kSynFlooding), 1u);
  EXPECT_GE(IntervalResult::count(r.final, AttackType::kHorizontalScan), 1u);
  EXPECT_GE(IntervalResult::count(r.final, AttackType::kVerticalScan), 1u);
  for (const Alert& a : r.final) {
    switch (a.type) {
      case AttackType::kSynFlooding:
        EXPECT_EQ(a.dip(), victim);
        break;
      case AttackType::kHorizontalScan:
        EXPECT_EQ(a.sip(), hscanner);
        break;
      case AttackType::kVerticalScan:
        EXPECT_EQ(a.sip(), vscanner);
        break;
      default:
        break;
    }
  }
}

TEST_F(HifindDetectorTest, Phase2DropsSplitFloodMasqueradingAsVscan) {
  // A non-spoofed flood split over two ports of one victim: each {DIP,Dport}
  // half stays under threshold (step 1 misses), but {SIP,DIP} totals over
  // threshold => raw vertical-scan alert. The 2D sketch sees two dominant
  // ports (concentrated) and Phase 2 removes it.
  quiet_interval();
  const IPv4 attacker(5, 5, 5, 5);
  const IPv4 victim(129, 105, 1, 1);
  const IntervalResult r = interval([&](SketchBank& b) {
    for (int i = 0; i < 40; ++i) {
      b.record(syn_packet(i, attacker, victim, 80,
                          static_cast<std::uint16_t>(2000 + i)));
      b.record(syn_packet(i, attacker, victim, 443,
                          static_cast<std::uint16_t>(3000 + i)));
    }
  });
  EXPECT_GE(IntervalResult::count(r.raw, AttackType::kVerticalScan), 1u)
      << "step 2 should misread the split flood as a vscan";
  EXPECT_EQ(IntervalResult::count(r.after_2d, AttackType::kVerticalScan), 0u)
      << "phase 2 must remove it";
}

TEST_F(HifindDetectorTest, Phase2KeepsTrueScans) {
  quiet_interval();
  const IntervalResult r = interval([&](SketchBank& b) {
    feed_vscan(b, IPv4(7, 7, 7, 7), IPv4(129, 105, 50, 50), 300);
    feed_hscan(b, IPv4(6, 6, 6, 6), 1433, 300);
  });
  EXPECT_EQ(IntervalResult::count(r.after_2d, AttackType::kVerticalScan),
            IntervalResult::count(r.raw, AttackType::kVerticalScan));
  EXPECT_EQ(IntervalResult::count(r.after_2d, AttackType::kHorizontalScan),
            IntervalResult::count(r.raw, AttackType::kHorizontalScan));
}

TEST_F(HifindDetectorTest, Phase3RatioFilterDropsFlashCrowd) {
  quiet_interval();
  const IPv4 service(129, 105, 1, 1);
  const IntervalResult r = interval([&](SketchBank& b) {
    // 600 SYNs, 70% answered: unresponded 180 > threshold, but ratio ~1.4.
    for (int i = 0; i < 600; ++i) {
      const IPv4 client{0x64000000u + static_cast<std::uint32_t>(i)};
      const auto sport = static_cast<std::uint16_t>(1024 + i % 60000);
      b.record(syn_packet(i, client, service, 443, sport));
      if (i % 10 < 7) {
        b.record(synack_packet(i, service, 443, client, sport));
      }
    }
  });
  EXPECT_GE(IntervalResult::count(r.after_2d, AttackType::kSynFlooding), 1u)
      << "raw detection should fire on the un-responded surplus";
  EXPECT_EQ(IntervalResult::count(r.final, AttackType::kSynFlooding), 0u)
      << "ratio heuristic must drop the flash crowd";
}

TEST_F(HifindDetectorTest, Phase3SurgeFilterDropsServerFailure) {
  // A failed server: the usual clients keep arriving at the usual rate but
  // nothing answers. Un-responded SYNs spike (raw flood alert) while the
  // #SYN arrival rate is UNCHANGED — the SYN-surge heuristic must drop it.
  const IPv4 server(129, 105, 1, 1);
  auto healthy = [&](SketchBank& b) {
    for (int i = 0; i < 200; ++i) {
      const IPv4 client{0x64000000u + static_cast<std::uint32_t>(i)};
      const auto sport = static_cast<std::uint16_t>(1024 + i);
      b.record(syn_packet(i, client, server, 443, sport));
      b.record(synack_packet(i, server, 443, client, sport));
    }
  };
  auto failed = [&](SketchBank& b) {
    for (int i = 0; i < 200; ++i) {
      const IPv4 client{0x64000000u + static_cast<std::uint32_t>(i)};
      b.record(syn_packet(i, client, server, 443,
                          static_cast<std::uint16_t>(1024 + i)));
      // no answers: the server is down
    }
  };
  interval(healthy);
  interval(healthy);
  const IntervalResult r = interval(failed);
  EXPECT_GE(IntervalResult::count(r.after_2d, AttackType::kSynFlooding), 1u)
      << "raw detection fires on the un-responded surplus";
  EXPECT_EQ(IntervalResult::count(r.final, AttackType::kSynFlooding), 0u)
      << "no #SYN surge => not a flood";
}

TEST_F(HifindDetectorTest, Phase3ServiceFilterDropsMisconfiguration) {
  quiet_interval();
  const IPv4 dead(129, 105, 77, 77);  // never SYN/ACKed in any interval
  const IntervalResult r = interval([&](SketchBank& b) {
    feed_flood(b, dead, 8080, 300, /*spoofed=*/true, rng_);
  });
  EXPECT_GE(IntervalResult::count(r.after_2d, AttackType::kSynFlooding), 1u);
  EXPECT_EQ(IntervalResult::count(r.final, AttackType::kSynFlooding), 0u)
      << "floods against never-live services are misconfigurations";
}

TEST_F(HifindDetectorTest, PersistenceFilterNeedsSecondInterval) {
  HifindDetectorConfig cfg = det_cfg();
  cfg.min_persist_intervals = 2;
  HifindDetector det(cfg);
  SketchBank bank(bank_cfg(7));
  Pcg32 rng(9);
  const IPv4 victim(129, 105, 1, 1);

  auto run = [&](bool flood) {
    feed_baseline(bank);
    if (flood) feed_flood(bank, victim, 443, 500, true, rng);
    static std::uint64_t idx = 0;
    const IntervalResult r = det.process(bank, idx++);
    bank.clear();
    return r;
  };

  run(false);  // warmup
  const IntervalResult first = run(true);
  EXPECT_EQ(IntervalResult::count(first.final, AttackType::kSynFlooding), 0u)
      << "first flood interval blocked by persistence";
  const IntervalResult second = run(true);
  EXPECT_GE(IntervalResult::count(second.final, AttackType::kSynFlooding), 1u)
      << "second consecutive interval passes";
}

TEST_F(HifindDetectorTest, PhasesCanBeDisabled) {
  HifindDetectorConfig cfg = det_cfg();
  cfg.enable_phase2 = false;
  cfg.enable_phase3 = false;
  HifindDetector det(cfg);
  SketchBank bank(bank_cfg(8));
  feed_baseline(bank);
  det.process(bank, 0);
  bank.clear();
  feed_baseline(bank);
  Pcg32 rng(3);
  feed_flood(bank, IPv4(129, 105, 77, 77), 8080, 300, true, rng);  // dead svc
  const IntervalResult r = det.process(bank, 1);
  EXPECT_EQ(r.final.size(), r.raw.size())
      << "with both phases off, final == raw";
}

TEST_F(HifindDetectorTest, ResetForgetsForecastState) {
  quiet_interval();
  quiet_interval();
  detector_.reset();
  // After reset the next interval is a warmup again: a flood is invisible.
  const IntervalResult r = interval([&](SketchBank& b) {
    feed_flood(b, IPv4(129, 105, 1, 1), 443, 500, true, rng_);
  });
  EXPECT_TRUE(r.raw.empty());
}

}  // namespace
}  // namespace hifind
