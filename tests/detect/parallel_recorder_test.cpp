#include "detect/parallel_recorder.hpp"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "../testing/synthetic.hpp"

namespace hifind {
namespace {

using testing::syn_packet;
using testing::synack_packet;

SketchBankConfig cfg() {
  SketchBankConfig c;
  c.seed = 42;
  c.rs48.bucket_bits = 12;
  c.verification.num_buckets = 1u << 12;
  c.original.num_buckets = 1u << 12;
  c.twod.x_buckets = 1u << 10;
  return c;
}

std::vector<PacketRecord> mixed_stream(int n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<PacketRecord> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.4)) {
      const IPv4 server{0x81690000u | (rng.next() & 0xffu)};
      const IPv4 client{rng.next()};
      const auto sport = static_cast<std::uint16_t>(1024 + rng.bounded(60000));
      out.push_back(syn_packet(i, client, server, 443, sport));
      out.push_back(synack_packet(i, server, 443, client, sport));
    } else {
      out.push_back(syn_packet(i, IPv4{rng.next()},
                               IPv4{0x81690000u | (rng.next() & 0xffffu)},
                               static_cast<std::uint16_t>(rng.bounded(1024))));
    }
  }
  return out;
}

class ParallelRecorderThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelRecorderThreads, MatchesSerialRecordingExactly) {
  const unsigned threads = GetParam();
  const auto stream = mixed_stream(20000, 7);

  SketchBank serial(cfg());
  for (const auto& p : stream) serial.record(p);

  SketchBank parallel(cfg());
  {
    ParallelRecorder rec(parallel, threads);
    for (const auto& p : stream) rec.offer(p);
    rec.drain();
  }

  EXPECT_EQ(parallel.packets_recorded(), serial.packets_recorded());
  auto expect_same = [](std::span<const double> a,
                        std::span<const double> b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_DOUBLE_EQ(a[i], b[i]) << "counter " << i;
    }
  };
  expect_same(parallel.rs_sip_dport().counters(),
              serial.rs_sip_dport().counters());
  expect_same(parallel.rs_dip_dport().counters(),
              serial.rs_dip_dport().counters());
  expect_same(parallel.rs_sip_dip().counters(),
              serial.rs_sip_dip().counters());
  expect_same(parallel.verif_dip_dport().counters(),
              serial.verif_dip_dport().counters());
  expect_same(parallel.os_dip_dport().counters(),
              serial.os_dip_dport().counters());
  expect_same(parallel.twod_sipdip_dport().cells(),
              serial.twod_sipdip_dport().cells());
  expect_same(parallel.synack_history().counters(),
              serial.synack_history().counters());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelRecorderThreads,
                         ::testing::Values(1u, 2u, 4u, 7u, 16u));

TEST(ParallelRecorderTest, DrainIsReusableAcrossIntervals) {
  SketchBank bank(cfg());
  ParallelRecorder rec(bank, 3);
  const auto stream = mixed_stream(3000, 9);
  for (const auto& p : stream) rec.offer(p);
  rec.drain();
  const auto first = bank.packets_recorded();
  EXPECT_GT(first, 0u);
  bank.clear();
  for (const auto& p : stream) rec.offer(p);
  rec.drain();
  EXPECT_EQ(bank.packets_recorded(), first);
}

TEST(ParallelRecorderTest, DrainOnEmptyIsImmediate) {
  SketchBank bank(cfg());
  ParallelRecorder rec(bank, 2);
  rec.drain();
  rec.drain();
  EXPECT_EQ(bank.packets_recorded(), 0u);
}

// Tentpole determinism guarantee: the lock-free pipeline must be
// BIT-identical (==, not ULP-tolerant) to serial record() for every thread
// count and ring capacity — including rings far smaller than the producer's
// publish batch, which force wrap-around and backpressure on every flush.
struct PipelineCase {
  unsigned threads;
  std::size_t ring_capacity;
};

class PipelineDeterminism : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineDeterminism, BitIdenticalToSerialUnderAdversarialBatching) {
  const auto [threads, ring_capacity] = GetParam();
  Pcg32 stream_rng(0xfeedULL * threads + ring_capacity);
  const auto stream =
      mixed_stream(12000 + static_cast<int>(stream_rng.bounded(5000)),
                   stream_rng.next64());

  SketchBank serial(cfg());
  for (const auto& p : stream) serial.record(p);

  SketchBank parallel(cfg());
  {
    ParallelRecorder rec(parallel, threads, ring_capacity);
    // Interleave offers with mid-stream drains at random points so partially
    // filled producer batches and empty-ring idling both get exercised.
    std::size_t next_drain = 1 + stream_rng.bounded(4096);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      rec.offer(stream[i]);
      if (i == next_drain) {
        rec.drain();
        next_drain += 1 + stream_rng.bounded(4096);
      }
    }
    rec.drain();
  }

  EXPECT_EQ(parallel.packets_recorded(), serial.packets_recorded());
  auto expect_bit_identical = [](std::span<const double> a,
                                 std::span<const double> b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "counter " << i;
    }
  };
  expect_bit_identical(parallel.rs_sip_dport().counters(),
                       serial.rs_sip_dport().counters());
  expect_bit_identical(parallel.rs_dip_dport().counters(),
                       serial.rs_dip_dport().counters());
  expect_bit_identical(parallel.rs_sip_dip().counters(),
                       serial.rs_sip_dip().counters());
  expect_bit_identical(parallel.verif_sip_dport().counters(),
                       serial.verif_sip_dport().counters());
  expect_bit_identical(parallel.verif_dip_dport().counters(),
                       serial.verif_dip_dport().counters());
  expect_bit_identical(parallel.verif_sip_dip().counters(),
                       serial.verif_sip_dip().counters());
  expect_bit_identical(parallel.os_dip_dport().counters(),
                       serial.os_dip_dport().counters());
  expect_bit_identical(parallel.twod_sipdip_dport().cells(),
                       serial.twod_sipdip_dport().cells());
  expect_bit_identical(parallel.twod_sipdport_dip().cells(),
                       serial.twod_sipdport_dip().cells());
  expect_bit_identical(parallel.synack_history().counters(),
                       serial.synack_history().counters());
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndRings, PipelineDeterminism,
    ::testing::Values(PipelineCase{1, 8}, PipelineCase{2, 8},
                      PipelineCase{4, 16}, PipelineCase{7, 8},
                      PipelineCase{2, 64}, PipelineCase{4, 1024},
                      PipelineCase{7, ParallelRecorder::kDefaultRingCapacity}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.threads) + "_ring" +
             std::to_string(info.param.ring_capacity);
    });

TEST(PipelineDeterminismTest, WeightedOffersMatchWeightedSerialRecord) {
  const auto stream = mixed_stream(6000, 21);
  Pcg32 rng(33);
  std::vector<double> weights(stream.size());
  for (auto& w : weights) w = 1.0 / (1.0 + rng.bounded(16));

  SketchBank serial(cfg());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    serial.record(stream[i], weights[i]);
  }
  SketchBank parallel(cfg());
  {
    ParallelRecorder rec(parallel, 4, 32);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      rec.offer(stream[i], weights[i]);
    }
    rec.drain();
  }
  EXPECT_EQ(parallel.packets_recorded(), serial.packets_recorded());
  const auto a = serial.os_dip_dport().counters();
  const auto b = parallel.os_dip_dport().counters();
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  const auto c = serial.rs_sip_dip().counters();
  const auto d = parallel.rs_sip_dip().counters();
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_EQ(c[i], d[i]);
}

TEST(ParallelRecorderTest, DrainYieldsInsteadOfSpinningOnLongBacklogs) {
  // One worker, a deep ring, and a burst far larger than the spin budget:
  // drain() must fall back from pause-spinning to yielding/sleeping while
  // the worker chews through the backlog, and account for it.
  SketchBank bank(cfg());
  ParallelRecorder rec(bank, 1, 4096);
  EXPECT_EQ(rec.drain_spin_yields(), 0u);
  const auto stream = mixed_stream(30000, 13);
  for (const auto& p : stream) rec.offer(p);
  rec.drain();
  const auto yields = rec.drain_spin_yields();
  EXPECT_GT(yields, 0u)
      << "a multi-ms backlog drained inside the pure-spin budget?";
  // Counter is cumulative and an empty drain adds nothing.
  rec.drain();
  EXPECT_EQ(rec.drain_spin_yields(), yields);
  EXPECT_GT(bank.packets_recorded(), 0u);
}

TEST(RecordMaskedTest, GroupsPartitionTheBank) {
  // Applying each group exactly once must equal one full record().
  const auto stream = mixed_stream(2000, 11);
  SketchBank full(cfg()), by_groups(cfg());
  for (const auto& p : stream) full.record(p);
  for (unsigned g = 0; g < SketchBank::kNumSketchGroups; ++g) {
    for (const auto& p : stream) {
      by_groups.record_masked(p, 1u << g);
    }
  }
  EXPECT_EQ(by_groups.packets_recorded(), full.packets_recorded());
  const auto a = full.rs_dip_dport().counters();
  const auto b = by_groups.rs_dip_dport().counters();
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace hifind
