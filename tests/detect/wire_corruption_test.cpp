// Table-driven corruption sweep over the bank wire format: flip every byte
// of a small serialized bank, one at a time, and assert deserialize_bank
// either throws WireError or yields a bank byte-equal to the original —
// never crashes, never silently hands back different counters that would
// mis-combine at the central site.
//
// For HFB2 the CRC-32C makes the contract strict: any payload flip must be
// rejected; only flips confined to the non-checksummed header provenance
// fields (router id, interval) may decode, and those leave the bank itself
// untouched. Legacy HFB1 has no checksum, so counter flips decode to a
// DIFFERENT bank — the sweep documents that gap (it is why HFB2 exists) by
// requiring every decoded-but-unequal case to be impossible under HFB2.
#include <gtest/gtest.h>

#include <vector>

#include "detect/sketch_wire.hpp"

namespace hifind {
namespace {

/// Tiny bank so the sweep (bytes x flips) stays fast: ~8 KB serialized.
SketchBankConfig tiny_cfg() {
  SketchBankConfig c;
  c.seed = 99;
  c.rs48.num_stages = 2;
  c.rs48.bucket_bits = 6;
  c.rs64.num_stages = 2;
  c.rs64.bucket_bits = 8;
  c.verification.num_stages = 2;
  c.verification.num_buckets = 16;
  c.original.num_stages = 2;
  c.original.num_buckets = 16;
  c.twod.num_stages = 1;
  c.twod.x_buckets = 16;
  c.twod.y_buckets = 4;
  return c;
}

SketchBank populated_bank() {
  SketchBank bank(tiny_cfg());
  PacketRecord p;
  p.sip = IPv4(10, 0, 0, 1);
  p.dip = IPv4(129, 105, 1, 1);
  p.sport = 12345;
  p.dport = 443;
  p.flags = kSyn;
  for (int i = 0; i < 200; ++i) {
    p.sip = IPv4{0x0a000000u + static_cast<std::uint32_t>(i)};
    bank.record(p);
  }
  return bank;
}

bool banks_byte_equal(const SketchBank& a, const SketchBank& b) {
  // The serialized body is the complete observable state (config, every
  // counter, packets_recorded), so frame equality == bank equality.
  return serialize_bank_hfb1(a) == serialize_bank_hfb1(b);
}

TEST(WireCorruptionTest, EveryHfb2ByteFlipRejectedOrHarmless) {
  const SketchBank bank = populated_bank();
  const auto clean = serialize_frame(bank, /*router_id=*/3, /*interval=*/7);
  ASSERT_LT(clean.size(), 64u * 1024) << "sweep config grew too big";

  std::size_t rejected = 0, decoded_harmless = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    auto corrupt = clean;
    corrupt[i] ^= 0x5a;
    try {
      const SketchBank back = deserialize_bank(corrupt);
      // Decoding succeeded: only header provenance flips (router id,
      // interval — bytes 4..15) can get here, and the bank must be intact.
      EXPECT_GE(i, 4u) << "magic flip decoded";
      EXPECT_LT(i, 16u) << "checksummed byte " << i << " flip decoded";
      EXPECT_TRUE(banks_byte_equal(back, bank))
          << "byte " << i << ": decoded bank differs (silent mis-combine)";
      ++decoded_harmless;
    } catch (const WireError&) {
      ++rejected;  // typed rejection is the expected outcome
    }
    // Anything else (std::bad_alloc, segfault, untyped error) fails the
    // test by escaping the catch.
  }
  // Exactly the 12 provenance-header bytes may decode; everything else —
  // magic, length, CRC, payload — must be rejected.
  EXPECT_EQ(decoded_harmless, 12u);
  EXPECT_EQ(rejected, clean.size() - 12u);
}

TEST(WireCorruptionTest, EveryHfb1ByteFlipRejectedOrDecodes) {
  // Legacy frames have no checksum: the sweep asserts the weaker "never
  // crashes" contract — every flip either throws WireError or decodes.
  const SketchBank bank = populated_bank();
  const auto clean = serialize_bank_hfb1(bank);

  std::size_t rejected = 0, decoded = 0, silently_different = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    auto corrupt = clean;
    corrupt[i] ^= 0x5a;
    try {
      const SketchBank back = deserialize_bank(corrupt);
      ++decoded;
      if (!banks_byte_equal(back, bank)) ++silently_different;
    } catch (const WireError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected + decoded, clean.size());
  // Counter flips DO decode to a different bank under HFB1 — the gap that
  // motivated HFB2's CRC. Document it: the sweep must see such cases.
  EXPECT_GT(silently_different, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(WireCorruptionTest, TruncationAtEveryLengthRejected) {
  const SketchBank bank = populated_bank();
  const auto clean = serialize_frame(bank, 1, 1);
  // Every proper prefix must be rejected (step 7 keeps the sweep fast while
  // still hitting every header byte and every field-boundary class).
  for (std::size_t len = 0; len < clean.size();
       len += (len < 32 ? 1 : 7)) {
    const std::vector<std::uint8_t> prefix(clean.begin(),
                                           clean.begin() + len);
    EXPECT_THROW(deserialize_bank(prefix), WireError) << "length " << len;
  }
}

}  // namespace
}  // namespace hifind
