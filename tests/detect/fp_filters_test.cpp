#include "detect/fp_filters.hpp"

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace hifind {
namespace {

TEST(RatioFilterTest, KeepsPureFlood) {
  RatioFilter f(3.0);
  // 600 SYNs, none answered: unresponded == syn.
  EXPECT_TRUE(f.keep(600.0, 600.0));
}

TEST(RatioFilterTest, DropsCongestionWithManyAnswers) {
  RatioFilter f(3.0);
  // 600 SYNs, 400 answered: server is alive, just slow -> congestion.
  EXPECT_FALSE(f.keep(600.0, 200.0));
}

TEST(RatioFilterTest, BoundaryAtConfiguredRatio) {
  RatioFilter f(3.0);
  // syn=300, synack=100 -> ratio exactly 3: keep.
  EXPECT_TRUE(f.keep(300.0, 200.0));
  // syn=299, synack=100 -> ratio just under 3: drop.
  EXPECT_FALSE(f.keep(299.0, 199.0));
}

TEST(RatioFilterTest, NegativeSynackEstimateIsFloodConsistent) {
  RatioFilter f(3.0);
  // Sketch noise can make unresponded > syn; treat as flood-consistent.
  EXPECT_TRUE(f.keep(100.0, 120.0));
}

TEST(PersistenceFilterTest, RequiresConsecutiveIntervals) {
  PersistenceFilter f(2);
  f.begin_interval();
  EXPECT_FALSE(f.observe(42)) << "first sighting must not pass";
  f.end_interval();
  f.begin_interval();
  EXPECT_TRUE(f.observe(42)) << "second consecutive sighting passes";
  f.end_interval();
}

TEST(PersistenceFilterTest, GapResetsRun) {
  PersistenceFilter f(2);
  f.begin_interval();
  f.observe(42);
  f.end_interval();
  // Interval with no observation of key 42.
  f.begin_interval();
  f.end_interval();
  f.begin_interval();
  EXPECT_FALSE(f.observe(42)) << "run restarted after a quiet interval";
  f.end_interval();
}

TEST(PersistenceFilterTest, MinOneAlwaysPasses) {
  PersistenceFilter f(1);
  f.begin_interval();
  EXPECT_TRUE(f.observe(7));
  f.end_interval();
}

TEST(PersistenceFilterTest, KeysTrackedIndependently) {
  PersistenceFilter f(2);
  f.begin_interval();
  f.observe(1);
  f.end_interval();
  f.begin_interval();
  EXPECT_TRUE(f.observe(1));
  EXPECT_FALSE(f.observe(2));
  f.end_interval();
}

TEST(ActiveServiceFilterTest, DropsNeverAnsweringService) {
  ActiveServiceFilter f(
      KarySketchConfig{.num_stages = 4, .num_buckets = 1u << 10, .seed = 5});
  const std::uint64_t dead = pack_ip_port(IPv4(129, 105, 1, 200), 80);
  EXPECT_FALSE(f.keep(dead));
}

TEST(ActiveServiceFilterTest, KeepsServiceWithHistory) {
  ActiveServiceFilter f(
      KarySketchConfig{.num_stages = 4, .num_buckets = 1u << 10, .seed = 5});
  const std::uint64_t live = pack_ip_port(IPv4(129, 105, 1, 1), 443);
  for (int i = 0; i < 10; ++i) f.record_synack(live);
  EXPECT_TRUE(f.keep(live));
}

TEST(ActiveServiceFilterTest, HistoryIsPerService) {
  ActiveServiceFilter f(
      KarySketchConfig{.num_stages = 4, .num_buckets = 1u << 12, .seed = 5});
  const std::uint64_t live = pack_ip_port(IPv4(129, 105, 1, 1), 443);
  const std::uint64_t other = pack_ip_port(IPv4(129, 105, 1, 1), 80);
  for (int i = 0; i < 10; ++i) f.record_synack(live);
  EXPECT_TRUE(f.keep(live));
  EXPECT_FALSE(f.keep(other)) << "same host, different port: no history";
}

}  // namespace
}  // namespace hifind
